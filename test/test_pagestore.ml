(* Tests for the log-structured page store: the record log (CRC, segment
   boundaries, compaction) and Bw-Tree checkpoint/recovery on top. *)

module T = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module TS = Bwtree.Make (Index_iface.String_key) (Index_iface.Int_value)
module CP = Pagestore.Checkpoint.Make (Pagestore.Codec.Int) (T)
module CPS = Pagestore.Checkpoint.Make (Pagestore.Codec.Int) (TS)
module Log = Pagestore.Log

(* --- crc32 --- *)

let test_crc32_known_vectors () =
  (* standard zlib test vectors *)
  Alcotest.(check int32) "empty" 0l (Bw_util.Crc32.string "");
  Alcotest.(check int32) "abc" 0x352441C2l (Bw_util.Crc32.string "abc");
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Bw_util.Crc32.string "123456789")

let test_crc32_sensitivity () =
  let a = Bw_util.Crc32.string "hello world" in
  let b = Bw_util.Crc32.string "hello worle" in
  Alcotest.(check bool) "differs" true (a <> b)

(* --- log --- *)

let test_log_roundtrip () =
  let log = Log.create () in
  let offs =
    List.init 100 (fun i -> Log.append log (Printf.sprintf "record %d" i))
  in
  List.iteri
    (fun i off ->
      Alcotest.(check string) "roundtrip" (Printf.sprintf "record %d" i)
        (Log.read log off))
    offs;
  Alcotest.(check int) "count" 100 (Log.records log)

let test_log_segment_boundaries () =
  (* tiny segments force records onto fresh segments *)
  let log = Log.create ~segment_bytes:64 () in
  let payload = String.make 30 'x' in
  let offs = List.init 10 (fun _ -> Log.append log payload) in
  Alcotest.(check bool) "multiple segments" true (Log.segment_count log > 3);
  List.iter
    (fun off -> Alcotest.(check string) "read" payload (Log.read log off))
    offs

let test_log_oversized_record () =
  let log = Log.create ~segment_bytes:64 () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Log.append: record larger than a segment") (fun () ->
      ignore (Log.append log (String.make 100 'y')))

let test_log_corruption_detected () =
  let log = Log.create () in
  let off = Log.append log "precious data" in
  Log.corrupt_for_testing log off;
  Alcotest.check_raises "crc failure"
    (Failure "Log.read: corrupted record (crc mismatch)") (fun () ->
      ignore (Log.read log off))

let test_log_bad_address () =
  let log = Log.create () in
  ignore (Log.append log "x");
  Alcotest.check_raises "bad address" (Failure "Log.read: bad address")
    (fun () -> ignore (Log.read log 999_999))

let test_log_iter_order () =
  let log = Log.create ~segment_bytes:128 () in
  let expected = List.init 50 (fun i -> Printf.sprintf "r%03d" i) in
  List.iter (fun p -> ignore (Log.append log p)) expected;
  let seen = ref [] in
  Log.iter log (fun _ p -> seen := p :: !seen);
  Alcotest.(check (list string)) "log order" expected (List.rev !seen)

let test_log_compact () =
  let log = Log.create ~segment_bytes:128 () in
  let offs = Array.init 50 (fun i -> Log.append log (Printf.sprintf "%02d" i)) in
  (* keep even records only *)
  let keep = Hashtbl.create 32 in
  Array.iteri (fun i off -> if i mod 2 = 0 then Hashtbl.replace keep off i) offs;
  let moves = Hashtbl.create 32 in
  let reclaimed =
    Log.compact log
      ~live:(fun off -> Hashtbl.mem keep off)
      ~relocate:(fun o n -> Hashtbl.replace moves o n)
  in
  Alcotest.(check bool) "reclaimed bytes" true (reclaimed > 0);
  Alcotest.(check int) "survivors" 25 (Log.records log);
  Hashtbl.iter
    (fun old i ->
      let fresh = Hashtbl.find moves old in
      Alcotest.(check string) "moved record intact"
        (Printf.sprintf "%02d" i) (Log.read log fresh))
    keep

(* --- codecs --- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Pagestore.Codec.Int.encode buf 42;
  Pagestore.Codec.Int.encode buf (-7);
  Pagestore.Codec.String.encode buf "hello";
  Pagestore.Codec.String.encode buf "";
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Alcotest.(check int) "int" 42 (Pagestore.Codec.Int.decode s ~pos);
  Alcotest.(check int) "negative int" (-7) (Pagestore.Codec.Int.decode s ~pos);
  Alcotest.(check string) "string" "hello"
    (Pagestore.Codec.String.decode s ~pos);
  Alcotest.(check string) "empty string" ""
    (Pagestore.Codec.String.decode s ~pos)

let test_codec_truncation () =
  Alcotest.check_raises "truncated" (Failure "Codec: truncated int")
    (fun () -> ignore (Pagestore.Codec.Int.decode "abc" ~pos:(ref 0)))

(* qcheck properties: the wire protocol (lib/server) rides on these
   codecs, so their roundtrip/rejection behavior is load-bearing beyond
   the page store *)

let encode_int v =
  let buf = Buffer.create 16 in
  Pagestore.Codec.Int.encode buf v;
  Buffer.contents buf

let encode_str s =
  let buf = Buffer.create 32 in
  Pagestore.Codec.String.encode buf s;
  Buffer.contents buf

let prop_codec_int_roundtrip =
  QCheck.Test.make ~count:2_000 ~name:"int encode/decode identity" QCheck.int
    (fun v ->
      let s = encode_int v in
      let pos = ref 0 in
      Pagestore.Codec.Int.decode s ~pos = v && !pos = String.length s)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~count:2_000 ~name:"string encode/decode identity"
    QCheck.string (fun v ->
      let s = encode_str v in
      let pos = ref 0 in
      Pagestore.Codec.String.decode s ~pos = v && !pos = String.length s)

let prop_codec_mixed_stream_roundtrip =
  QCheck.Test.make ~count:500 ~name:"mixed int/string stream roundtrips"
    QCheck.(
      list
        (oneof
           [ map (fun i -> `I i) int; map (fun s -> `S s) string ]))
    (fun items ->
      let buf = Buffer.create 256 in
      List.iter
        (function
          | `I i -> Pagestore.Codec.Int.encode buf i
          | `S s -> Pagestore.Codec.String.encode buf s)
        items;
      let enc = Buffer.contents buf in
      let pos = ref 0 in
      let decoded =
        List.map
          (function
            | `I _ -> `I (Pagestore.Codec.Int.decode enc ~pos)
            | `S _ -> `S (Pagestore.Codec.String.decode enc ~pos))
          items
      in
      decoded = items && !pos = String.length enc)

let rejects_truncated decode enc cut =
  let prefix = String.sub enc 0 cut in
  match decode prefix ~pos:(ref 0) with
  | _ -> false
  | exception Failure _ -> true

let prop_codec_int_truncated =
  QCheck.Test.make ~count:500 ~name:"truncated int rejected"
    QCheck.(pair int (int_bound 7))
    (fun (v, cut) ->
      rejects_truncated Pagestore.Codec.Int.decode (encode_int v) cut)

let prop_codec_string_truncated =
  QCheck.Test.make ~count:500 ~name:"truncated string rejected"
    QCheck.(pair string (int_bound 10_000))
    (fun (v, cut) ->
      let enc = encode_str v in
      let cut = cut mod String.length enc in
      rejects_truncated Pagestore.Codec.String.decode enc cut)

(* --- checkpoint / recover --- *)

let test_checkpoint_roundtrip () =
  let t = T.create () in
  let rng = Bw_util.Rng.create ~seed:11L in
  for _ = 1 to 20_000 do
    let k = Bw_util.Rng.next_int rng 1_000_000 in
    ignore (T.insert t k (k * 3))
  done;
  let log = Log.create () in
  let root = CP.save t log in
  let t' = CP.load log root in
  Alcotest.(check int) "cardinality preserved" (T.cardinal t) (T.cardinal t');
  Alcotest.(check bool) "contents preserved" true
    (T.scan_all t () = T.scan_all t' ());
  T.verify_invariants t'

let test_checkpoint_empty_tree () =
  let t = T.create () in
  let log = Log.create () in
  let root = CP.save t log in
  let t' = CP.load log root in
  Alcotest.(check int) "empty" 0 (T.cardinal t')

let test_checkpoint_page_granularity () =
  let t = T.create () in
  for k = 0 to 999 do
    ignore (T.insert t k k)
  done;
  let log = Log.create () in
  let root = CP.save t log in
  let m = CP.manifest log root in
  (* record granularity follows the tree's own leaves: one page record
     per non-empty leaf, in key order *)
  let leaves = ref 0 in
  T.iter_leaf_pages t (fun _ -> incr leaves);
  Alcotest.(check int) "one record per leaf" !leaves (Array.length m.pages);
  Alcotest.(check bool) "split across pages" true (Array.length m.pages > 1);
  Alcotest.(check int) "item count" 1_000 m.item_count

let test_checkpoint_string_keys () =
  let t = TS.create () in
  for i = 0 to 5_000 do
    ignore (TS.insert t (Workload.email_key_of i) i)
  done;
  let log = Log.create () in
  let root = CPS.save t log in
  let t' = CPS.load log root in
  Alcotest.(check bool) "emails preserved" true
    (TS.scan_all t () = TS.scan_all t' ())

let test_checkpoint_corruption_fails_load () =
  let t = T.create () in
  for k = 0 to 499 do
    ignore (T.insert t k k)
  done;
  let log = Log.create () in
  let root = CP.save ~page_items:64 t log in
  let m = CP.manifest log root in
  Log.corrupt_for_testing log m.pages.(3);
  Alcotest.check_raises "detected"
    (Failure "Log.read: corrupted record (crc mismatch)") (fun () ->
      ignore (CP.load log root))

let test_checkpoint_gc () =
  (* take several checkpoints, retire all but the newest, compact, and
     recover from the translated root *)
  let t = T.create () in
  let log = Log.create ~segment_bytes:4096 () in
  let roots = ref [] in
  for round = 1 to 5 do
    for k = (round - 1) * 1_000 to (round * 1_000) - 1 do
      ignore (T.insert t k k)
    done;
    roots := CP.save ~page_items:64 t log :: !roots
  done;
  let newest = List.hd !roots in
  let before = Log.bytes_used log in
  let reclaimed, fresh_roots = CP.compact_keeping log [ newest ] in
  Alcotest.(check bool) "space reclaimed" true (reclaimed > 0);
  Alcotest.(check bool) "log shrank" true (Log.bytes_used log < before);
  let root' = List.hd fresh_roots in
  let t' = CP.load log root' in
  Alcotest.(check int) "latest state recovered" 5_000 (T.cardinal t');
  Alcotest.(check bool) "contents equal" true
    (T.scan_all t () = T.scan_all t' ())

let test_checkpoint_non_unique () =
  (* a checkpoint of a non-unique index restores faithfully when loaded
     with the matching configuration, and fails loudly when loaded into a
     unique-keys tree (which would silently drop duplicates) *)
  let nuniq = Bwtree.Config.make ~unique_keys:false () in
  let t = T.create ~config:nuniq () in
  for k = 0 to 99 do
    for v = 0 to 4 do
      ignore (T.insert t k v)
    done
  done;
  let log = Log.create () in
  let root = CP.save ~page_items:64 t log in
  let t' = CP.load ~config:nuniq log root in
  Alcotest.(check bool) "duplicates preserved" true
    (List.sort compare (T.scan_all t ())
    = List.sort compare (T.scan_all t' ()));
  Alcotest.check_raises "unique-mode load rejected"
    (Failure "Checkpoint.load: manifest item count mismatch") (fun () ->
      ignore (CP.load log root))

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint/load is identity" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 300) (pair (int_bound 500) (int_bound 1000)))
    (fun kvs ->
      let t = T.create () in
      List.iter (fun (k, v) -> ignore (T.insert t k v)) kvs;
      let log = Log.create () in
      let root = CP.save ~page_items:32 t log in
      let t' = CP.load log root in
      T.scan_all t () = T.scan_all t' ())


(* --- file-backed log --- *)

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bwt-test-pagestore-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  Pagestore.Store.rm_rf dir;
  Fun.protect ~finally:(fun () -> Pagestore.Store.rm_rf dir) (fun () -> f dir)

let test_file_log_reopen () =
  with_tmp_dir (fun dir ->
      let payloads = List.init 100 (fun i -> Printf.sprintf "record %d" i) in
      let offs =
        let log, st = Log.open_dir ~dir () in
        Alcotest.(check int) "fresh open is empty" 0 st.os_records;
        let offs = List.map (Log.append log) payloads in
        Log.close log;
        offs
      in
      let log, st = Log.open_dir ~dir () in
      Alcotest.(check int) "all records recovered" 100 st.os_records;
      Alcotest.(check int) "no torn bytes" 0 st.os_truncated_bytes;
      Alcotest.(check int) "no dropped segments" 0 st.os_dropped_segments;
      List.iter2
        (fun p off -> Alcotest.(check string) "reopen read" p (Log.read log off))
        payloads offs;
      Log.close log)

let test_file_log_multi_segment_reopen () =
  with_tmp_dir (fun dir ->
      let payloads = List.init 60 (fun i -> Printf.sprintf "r%04d" i) in
      let log, _ = Log.open_dir ~segment_bytes:128 ~dir () in
      List.iter (fun p -> ignore (Log.append log p)) payloads;
      Alcotest.(check bool) "spans segments" true (Log.segment_count log > 3);
      Log.close log;
      let log, st = Log.open_dir ~segment_bytes:128 ~dir () in
      Alcotest.(check int) "records" 60 st.os_records;
      let seen = ref [] in
      Log.iter log (fun _ p -> seen := p :: !seen);
      Alcotest.(check (list string)) "order preserved across sealed segments"
        payloads (List.rev !seen);
      Log.close log)

let test_file_log_torn_tail () =
  with_tmp_dir (fun dir ->
      let log, _ = Log.open_dir ~dir () in
      for i = 0 to 9 do
        ignore (Log.append log (Printf.sprintf "record-%d" i))
      done;
      Log.close log;
      (* tear mid-way through the last record's payload *)
      let path = Log.segment_path ~dir 0 in
      let size = (Unix.stat path).Unix.st_size in
      Unix.truncate path (size - 3);
      let log, st = Log.open_dir ~dir () in
      Alcotest.(check int) "last record dropped" 9 st.os_records;
      Alcotest.(check bool) "torn bytes reported" true
        (st.os_truncated_bytes > 0);
      (* the log must stay appendable after the repair *)
      let off = Log.append log "after-recovery" in
      Alcotest.(check string) "append after tear" "after-recovery"
        (Log.read log off);
      Log.close log;
      let log, st = Log.open_dir ~dir () in
      Alcotest.(check int) "clean after repair" 0 st.os_truncated_bytes;
      Alcotest.(check int) "prefix plus repair append" 10 st.os_records;
      Log.close log)

let test_file_log_flip_drops_later_segments () =
  with_tmp_dir (fun dir ->
      let log, _ = Log.open_dir ~segment_bytes:128 ~dir () in
      let offs = Array.init 40 (fun i -> Log.append log (Printf.sprintf "%05d" i)) in
      let nsegs = Log.segment_count log in
      Alcotest.(check bool) "several segments" true (nsegs >= 4);
      Log.close log;
      (* flip a byte of the first record in segment 1: everything from
         that record on — including all later segments — must go *)
      let path = Log.segment_path ~dir 1 in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      ignore (Unix.lseek fd 2 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xFF') 0 1);
      Unix.close fd;
      let log, st = Log.open_dir ~segment_bytes:128 ~dir () in
      Alcotest.(check bool) "later segments dropped" true
        (st.os_dropped_segments >= 1);
      let survivors = Log.records log in
      Alcotest.(check bool) "only segment-0 records survive" true
        (survivors > 0 && survivors < 40);
      (* every surviving record is the exact prefix *)
      for i = 0 to survivors - 1 do
        Alcotest.(check string) "prefix content" (Printf.sprintf "%05d" i)
          (Log.read log offs.(i))
      done;
      Log.close log)

let test_file_log_compact_persists () =
  with_tmp_dir (fun dir ->
      let log, _ = Log.open_dir ~segment_bytes:256 ~dir () in
      let offs = Array.init 50 (fun i -> Log.append log (Printf.sprintf "%03d" i)) in
      let keep = Hashtbl.create 32 in
      Array.iteri (fun i off -> if i mod 3 = 0 then Hashtbl.replace keep off i) offs;
      let moves = Hashtbl.create 32 in
      ignore
        (Log.compact log
           ~live:(fun off -> Hashtbl.mem keep off)
           ~relocate:(fun o n -> Hashtbl.replace moves o n));
      Log.close log;
      let log, st = Log.open_dir ~segment_bytes:256 ~dir () in
      Alcotest.(check int) "survivors persisted" (Hashtbl.length keep)
        st.os_records;
      Hashtbl.iter
        (fun old i ->
          Alcotest.(check string) "moved record readable after reopen"
            (Printf.sprintf "%03d" i)
            (Log.read log (Hashtbl.find moves old)))
        keep;
      Log.close log)

(* regression: corrupting a zero-length record must damage that record,
   not its successor (the old code flipped the byte at [pos + header],
   which for an empty payload is the next record's magic) *)
let test_corrupt_empty_payload () =
  let log = Log.create () in
  let off_empty = Log.append log "" in
  let off_next = Log.append log "untouched" in
  Log.corrupt_for_testing log off_empty;
  Alcotest.check_raises "empty record is the one damaged"
    (Failure "Log.read: corrupted record (crc mismatch)") (fun () ->
      ignore (Log.read log off_empty));
  Alcotest.(check string) "successor record intact" "untouched"
    (Log.read log off_next)

let test_file_log_corrupt_for_testing () =
  with_tmp_dir (fun dir ->
      let log, _ = Log.open_dir ~dir () in
      let off = Log.append log "precious" in
      Log.corrupt_for_testing log off;
      Log.close log;
      (* the damage must be write-through: a fresh open sees it *)
      let _, st = Log.open_dir ~dir () in
      Alcotest.(check int) "record rejected on reopen" 0 st.os_records;
      Alcotest.(check bool) "torn bytes" true (st.os_truncated_bytes > 0))

(* qcheck: whatever byte of the file a tear or flip lands on, reopening
   recovers exactly the longest valid record prefix *)

let gen_payloads = QCheck.(list_of_size (Gen.int_range 1 40) (string_of_size (Gen.int_range 0 60)))

(* append [payloads] into a fresh single-segment file log, close it, and
   return the cumulative end offset of each record in the file *)
let write_file_log dir payloads =
  let log, _ = Log.open_dir ~segment_bytes:(1 lsl 20) ~dir () in
  let ends =
    List.map
      (fun p ->
        ignore (Log.append log p);
        Log.bytes_used log)
      payloads
  in
  Log.close log;
  ends

let prop_torn_tail_recovers_prefix =
  QCheck.Test.make ~count:60 ~name:"file log: torn tail recovers longest prefix"
    QCheck.(pair gen_payloads (int_bound 10_000))
    (fun (payloads, cut_seed) ->
      with_tmp_dir (fun dir ->
          let ends = write_file_log dir payloads in
          let total = List.fold_left max 0 ends in
          let cut = cut_seed mod (total + 1) in
          Unix.truncate (Log.segment_path ~dir 0) cut;
          let expected = List.length (List.filter (fun e -> e <= cut) ends) in
          let log, st = Log.open_dir ~segment_bytes:(1 lsl 20) ~dir () in
          let seen = ref [] in
          Log.iter log (fun _ p -> seen := p :: !seen);
          Log.close log;
          st.os_records = expected
          && List.rev !seen = List.filteri (fun i _ -> i < expected) payloads))

let prop_bit_flip_recovers_prefix =
  QCheck.Test.make ~count:60 ~name:"file log: bit flip recovers longest prefix"
    QCheck.(triple gen_payloads (int_bound 10_000) (int_bound 7))
    (fun (payloads, off_seed, bit) ->
      with_tmp_dir (fun dir ->
          let ends = write_file_log dir payloads in
          let total = List.fold_left max 0 ends in
          QCheck.assume (total > 0);
          let off = off_seed mod total in
          let path = Log.segment_path ~dir 0 in
          let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl bit)));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1);
          Unix.close fd;
          (* the record containing [off] and everything after it is gone *)
          let expected = List.length (List.filter (fun e -> e <= off) ends) in
          let log, st = Log.open_dir ~segment_bytes:(1 lsl 20) ~dir () in
          let seen = ref [] in
          Log.iter log (fun _ p -> seen := p :: !seen);
          Log.close log;
          st.os_records = expected
          && List.rev !seen = List.filteri (fun i _ -> i < expected) payloads))

(* --- durable store: WAL replay, checkpoint rotation --- *)

module Store_int = Pagestore.Store.Make (Pagestore.Codec.Int) (T)

let test_store_wal_replay () =
  with_tmp_dir (fun dir ->
      let st, stats = Store_int.open_dir ~fsync:false ~dir () in
      Alcotest.(check bool) "fresh" true stats.rs_fresh;
      let t = Store_int.tree st in
      let w = Store_int.wal st in
      for k = 0 to 199 do
        ignore (T.insert t k (k * 7));
        Store_int.W.commit w ~tid:0 [ Store_int.W.W_insert (k, k * 7) ]
      done;
      for k = 0 to 49 do
        ignore (T.delete t k (k * 7));
        Store_int.W.commit w ~tid:0 [ Store_int.W.W_remove k ]
      done;
      Store_int.close st;
      (* no checkpoint was cut: recovery is pure WAL replay *)
      let st, stats = Store_int.open_dir ~fsync:false ~dir () in
      Alcotest.(check bool) "not fresh" false stats.rs_fresh;
      Alcotest.(check int) "all ops replayed" 250 stats.rs_wal_ops;
      Alcotest.(check int) "snapshot was empty" 0 stats.rs_snapshot_items;
      let t = Store_int.tree st in
      Alcotest.(check int) "cardinality" 150 (T.cardinal t);
      Alcotest.(check (list int)) "survivor lookup" [ 350 ] (T.lookup t 50);
      Alcotest.(check (list int)) "deleted key gone" [] (T.lookup t 10);
      Store_int.close st)

let test_store_checkpoint_rotation () =
  with_tmp_dir (fun dir ->
      let st, _ = Store_int.open_dir ~fsync:false ~page_items:32 ~dir () in
      let t = Store_int.tree st in
      for k = 0 to 499 do
        ignore (T.insert t k k);
        Store_int.W.commit (Store_int.wal st) ~tid:0
          [ Store_int.W.W_insert (k, k) ]
      done;
      ignore (Store_int.checkpoint st : int * int);
      Alcotest.(check int) "generation rotated" 1 (Store_int.gen st);
      for k = 500 to 599 do
        ignore (T.insert t k k);
        Store_int.W.commit (Store_int.wal st) ~tid:0
          [ Store_int.W.W_insert (k, k) ]
      done;
      Store_int.close st;
      let st, stats = Store_int.open_dir ~fsync:false ~page_items:32 ~dir () in
      Alcotest.(check int) "recovered into gen 1" 1 stats.rs_gen;
      Alcotest.(check int) "snapshot items" 500 stats.rs_snapshot_items;
      Alcotest.(check int) "wal suffix only" 100 stats.rs_wal_ops;
      Alcotest.(check int) "full state" 600 (T.cardinal (Store_int.tree st));
      Store_int.close st;
      (* exactly one generation's directories remain on disk *)
      let entries = Array.to_list (Sys.readdir dir) in
      let gens =
        List.filter
          (fun e ->
            String.length e > 6
            && (String.sub e 0 6 = "pages-" || String.sub e 0 4 = "wal-"))
          entries
      in
      Alcotest.(check int) "old generations swept" 2 (List.length gens))

(* regression: [compact_keeping log [newest]] must drop the retired
   manifests themselves — the old gc_roots marked every manifest record
   live, so stale manifests with pre-compaction page offsets survived
   forever *)
let test_compact_keeping_drops_old_manifests () =
  let t = T.create () in
  let log = Log.create ~segment_bytes:4096 () in
  let roots = ref [] in
  for round = 1 to 4 do
    for k = (round - 1) * 500 to (round * 500) - 1 do
      ignore (T.insert t k k)
    done;
    roots := CP.save ~page_items:64 t log :: !roots
  done;
  let newest = List.hd !roots in
  let _, fresh_roots = CP.compact_keeping log [ newest ] in
  let root' = List.hd fresh_roots in
  let m = CP.manifest log root' in
  (* survivors: the kept manifest's pages plus the manifest record itself *)
  Alcotest.(check int) "only live pages and one manifest remain"
    (Array.length m.pages + 1)
    (Log.records log);
  let t' = CP.load log root' in
  Alcotest.(check bool) "kept checkpoint still loads" true
    (T.scan_all t () = T.scan_all t' ())

(* qcheck: random ops with a checkpoint cut at a random point, then a
   clean close/reopen — recovery (snapshot + WAL replay) must match a
   sequential oracle, on a single store and on a 3-shard forest *)

let gen_ops =
  QCheck.(
    list_of_size (Gen.int_range 0 120)
      (triple (int_bound 2) (int_bound 60) (int_bound 1000)))

let apply_oracle oracle (op, k, v) =
  match op with
  | 0 -> if not (Hashtbl.mem oracle k) then Hashtbl.replace oracle k v
  | 1 -> if Hashtbl.mem oracle k then Hashtbl.replace oracle k v
  | _ -> Hashtbl.remove oracle k

let scan_driver (d : int Index_iface.driver) keyspace =
  List.filter_map
    (fun k -> Option.map (fun v -> (k, v)) (d.Index_iface.read ~tid:0 k))
    (List.init keyspace Fun.id)

let oracle_bindings oracle keyspace =
  List.filter_map
    (fun k -> Option.map (fun v -> (k, v)) (Hashtbl.find_opt oracle k))
    (List.init keyspace Fun.id)

let run_store_oracle ~shards (ops, cut) =
  with_tmp_dir (fun dir ->
      let open_durable () =
        if shards = 1 then
          Harness.Drivers.durable_bwtree_int ~fsync:false ~dir ()
        else
          Harness.Drivers.durable_bwtree_forest_int ~fsync:false ~lo:0 ~hi:63
            ~shards ~dir ()
      in
      let oracle = Hashtbl.create 64 in
      let dur = open_durable () in
      let d = dur.Harness.Drivers.dur_driver in
      let cut = cut mod (List.length ops + 1) in
      List.iteri
        (fun i (op, k, v) ->
          (match op with
          | 0 -> ignore (d.Index_iface.insert ~tid:0 k v)
          | 1 -> ignore (d.Index_iface.update ~tid:0 k v)
          | _ -> ignore (d.Index_iface.remove ~tid:0 k));
          apply_oracle oracle (op, k, v);
          if i + 1 = cut then dur.Harness.Drivers.dur_checkpoint ~tid:0 ())
        ops;
      d.Index_iface.thread_done ~tid:0;
      dur.Harness.Drivers.dur_close ();
      let dur = open_durable () in
      let got = scan_driver dur.Harness.Drivers.dur_driver 64 in
      dur.Harness.Drivers.dur_close ();
      got = oracle_bindings oracle 64)

let prop_store_recovery_oracle =
  QCheck.Test.make ~count:40
    ~name:"store: checkpoint + WAL replay matches sequential oracle"
    QCheck.(pair gen_ops (int_bound 200))
    (run_store_oracle ~shards:1)

let prop_forest_recovery_oracle =
  QCheck.Test.make ~count:25
    ~name:"3-shard forest: per-shard recovery matches sequential oracle"
    QCheck.(pair gen_ops (int_bound 200))
    (run_store_oracle ~shards:3)

(* --- WAL tail reader: the replication shipper's cursor --- *)

module Wal = Pagestore.Wal

let commit_groups w groups =
  List.iter (fun ops -> Store_int.W.commit w ~tid:0 ops) groups

(* [n] commit groups of 1–3 inserts each, keys starting at [lo] *)
let mk_groups lo n =
  List.init n (fun i ->
      let sz = 1 + (i mod 3) in
      List.init sz (fun j ->
          let k = lo + (i * 4) + j in
          Store_int.W.W_insert (k, k * 2)))

let test_wal_tail_order () =
  let w = Store_int.W.in_memory ~segment_bytes:192 () in
  let groups = mk_groups 0 12 in
  commit_groups w groups;
  Alcotest.(check bool) "spans several sealed segments" true
    (Log.segment_count w.Store_int.W.log > 1);
  let cur = Wal.fresh_cursor () in
  let got = ref [] in
  let fed =
    Store_int.W.tail w cur (fun p -> got := Store_int.W.decode_ops p :: !got)
  in
  Alcotest.(check int) "every record fed" 12 fed;
  Alcotest.(check bool) "payloads decode to the committed groups, in order"
    true
    (List.rev !got = groups);
  Alcotest.(check int) "cursor records" 12 cur.Wal.c_rec;
  Alcotest.(check int) "cursor ops"
    (List.length (List.concat groups))
    cur.Wal.c_ops;
  Alcotest.(check int) "drained" 0 (Store_int.W.tail w cur (fun _ -> ()))

let test_wal_tail_limit_and_resume () =
  let w = Store_int.W.in_memory ~segment_bytes:192 () in
  let groups = mk_groups 0 10 in
  commit_groups w groups;
  let cur = Wal.fresh_cursor () in
  let got = ref [] in
  let feed n = Store_int.W.tail w ~limit:n cur (fun p -> got := p :: !got) in
  Alcotest.(check int) "limit honored" 3 (feed 3);
  Alcotest.(check int) "resumes where it stopped" 4 (feed 4);
  Alcotest.(check int) "remainder" 3 (feed 100);
  Alcotest.(check bool) "exactly once, in order" true
    (List.rev_map Store_int.W.decode_ops !got = groups);
  (* a cursor parked at the sealed tail hops to later commits *)
  let more = mk_groups 1000 4 in
  commit_groups w more;
  got := [];
  Alcotest.(check int) "new records only" 4 (feed 10);
  Alcotest.(check bool) "the fresh suffix" true
    (List.rev_map Store_int.W.decode_ops !got = more)

let test_wal_seek_alignment () =
  let w = Store_int.W.in_memory () in
  let sizes = [ 3; 1; 4; 2 ] in
  let groups =
    List.mapi
      (fun i sz ->
        List.init sz (fun j -> Store_int.W.W_insert ((i * 10) + j, 0)))
      sizes
  in
  commit_groups w groups;
  (* op position 4 is the boundary after records 0 and 1 *)
  let cur = Wal.fresh_cursor () in
  Store_int.W.seek w cur ~ops:4;
  Alcotest.(check int) "aligned to a record boundary" 2 cur.Wal.c_rec;
  let got = ref [] in
  ignore (Store_int.W.tail w cur (fun p -> got := p :: !got) : int);
  Alcotest.(check bool) "tail resumes past the sought prefix" true
    (List.rev_map Store_int.W.decode_ops !got
    = [ List.nth groups 2; List.nth groups 3 ]);
  (* a mid-record position is a cursor/generation mixup: refuse loudly *)
  let cur = Wal.fresh_cursor () in
  match Store_int.W.seek w cur ~ops:5 with
  | () -> Alcotest.fail "seek to a mid-record position must fail"
  | exception Failure _ -> ()

(* [Log.compact] relocates records and invalidates outstanding cursors
   (which is why the store never compacts a WAL in place — it writes
   fresh generations). A re-established cursor must see exactly the
   survivors, still in order. *)
let test_wal_cursor_after_compaction () =
  let w = Store_int.W.in_memory ~segment_bytes:192 () in
  let groups = mk_groups 0 8 in
  commit_groups w groups;
  let offs = ref [] in
  Log.iter w.Store_int.W.log (fun off _ -> offs := off :: !offs);
  let doomed = List.filteri (fun i _ -> i < 4) (List.rev !offs) in
  ignore
    (Log.compact w.Store_int.W.log
       ~live:(fun off -> not (List.mem off doomed))
       ~relocate:(fun _ _ -> ())
      : int);
  let cur = Wal.fresh_cursor () in
  let got = ref [] in
  ignore (Store_int.W.tail w cur (fun p -> got := p :: !got) : int);
  Alcotest.(check bool) "fresh cursor sees exactly the survivors" true
    (List.rev_map Store_int.W.decode_ops !got
    = List.filteri (fun i _ -> i >= 4) groups);
  Alcotest.(check int) "survivor records" 4 cur.Wal.c_rec

(* --- incremental checkpoints: page reuse and crash safety --- *)

(* regression: a long overwrite-heavy incremental chain accretes dead
   page versions in the pages log without bound; once the dead share
   crosses [gc_dead_bytes] the next incremental must escalate to a full
   rotation and actually reclaim the bytes *)
let test_incremental_gc_escalation () =
  with_tmp_dir (fun dir ->
      let st, _ =
        Store_int.open_dir ~fsync:false ~page_items:32 ~gc_dead_bytes:8192
          ~dir ()
      in
      let t = Store_int.tree st in
      let put k v =
        ignore (T.insert t k v);
        Store_int.W.commit (Store_int.wal st) ~tid:0
          [ Store_int.W.W_insert (k, v) ]
      in
      let del k v =
        ignore (T.delete t k v);
        Store_int.W.commit (Store_int.wal st) ~tid:0 [ Store_int.W.W_remove k ]
      in
      for k = 0 to 499 do put k k done;
      ignore (Store_int.checkpoint st : int * int);
      Alcotest.(check int) "seeded in generation 1" 1 (Store_int.gen st);
      Alcotest.(check (pair int int)) "no gc yet" (0, 0) (Store_int.gc_stats st);
      (* churn: every round rewrites every key (so every page), retiring
         the previous round's page copies in the log *)
      let value r k = (r * 1000) + k in
      let rounds = ref 0 in
      while fst (Store_int.gc_stats st) = 0 && !rounds < 32 do
        incr rounds;
        for k = 0 to 499 do
          del k (value (!rounds - 1) k);
          put k (value !rounds k)
        done;
        ignore (Store_int.checkpoint ~mode:`Incremental st : int * int)
      done;
      let runs, reclaimed = Store_int.gc_stats st in
      Alcotest.(check bool) "chain escalated within bound" true (!rounds < 32);
      Alcotest.(check int) "one escalation" 1 runs;
      Alcotest.(check bool)
        (Printf.sprintf "reclaimed bytes pinned positive (got %d)" reclaimed)
        true (reclaimed > 0);
      Alcotest.(check int) "escalation rotated the generation" 2
        (Store_int.gen st);
      (* the escalated checkpoint is a real one: recovery restores the
         newest values with an empty-to-short WAL suffix *)
      put 500 42;
      Store_int.close st;
      let st, rs = Store_int.open_dir ~fsync:false ~page_items:32 ~dir () in
      Alcotest.(check int) "recovered into the gc generation" 2 rs.rs_gen;
      Alcotest.(check int) "replay suffix is the post-gc tail" 1 rs.rs_wal_ops;
      let t = Store_int.tree st in
      Alcotest.(check int) "cardinality" 501 (T.cardinal t);
      Alcotest.(check (list int)) "newest round's value survived"
        [ value !rounds 7 ]
        (T.lookup t 7);
      Store_int.close st)

let test_incremental_checkpoint () =
  with_tmp_dir (fun dir ->
      let st, _ = Store_int.open_dir ~fsync:false ~dir () in
      let t = Store_int.tree st in
      let put k =
        ignore (T.insert t k (k * 3));
        Store_int.W.commit (Store_int.wal st) ~tid:0
          [ Store_int.W.W_insert (k, k * 3) ]
      in
      for k = 0 to 1999 do put k done;
      ignore (Store_int.checkpoint st : int * int);
      Alcotest.(check int) "full checkpoint rotated" 1 (Store_int.gen st);
      for k = 2000 to 2009 do put k done;
      let written, reused = Store_int.checkpoint ~mode:`Incremental st in
      Alcotest.(check int) "no rotation" 1 (Store_int.gen st);
      Alcotest.(check bool) "unchanged leaves reused by address" true
        (reused > written);
      Alcotest.(check bool) "changed leaves written" true (written >= 1);
      for k = 2010 to 2014 do put k done;
      Store_int.close st;
      (* recovery takes the newest decodable manifest: the incremental
         one folds 2010 items and leaves a 5-op replay suffix *)
      let st, rs = Store_int.open_dir ~fsync:false ~dir () in
      Alcotest.(check int) "generation unchanged" 1 rs.rs_gen;
      Alcotest.(check int) "snapshot items from the incremental manifest"
        2010 rs.rs_snapshot_items;
      Alcotest.(check int) "short replay suffix" 5 rs.rs_wal_ops;
      Alcotest.(check int) "full state" 2015 (T.cardinal (Store_int.tree st));
      Store_int.close st;
      (* torn incremental append: corrupt the pages-log tail (the fresh
         manifest); recovery must fall back to the full manifest and
         replay the longer WAL suffix — same final state *)
      let plog, _ =
        Log.open_dir ~dir:(Pagestore.Store.pages_dir dir 1) ()
      in
      let last = ref None in
      Log.iter plog (fun off _ -> last := Some off);
      (match !last with
      | Some off -> Log.corrupt_for_testing plog off
      | None -> Alcotest.fail "pages log is empty");
      Log.close plog;
      let st, rs = Store_int.open_dir ~fsync:false ~dir () in
      Alcotest.(check int) "fell back to the full manifest" 2000
        rs.rs_snapshot_items;
      Alcotest.(check int) "full suffix replayed" 15 rs.rs_wal_ops;
      Alcotest.(check int) "state intact" 2015
        (T.cardinal (Store_int.tree st));
      Store_int.close st)

(* --- read-only inspection must not move a byte --- *)

let digest_dir root =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc e -> walk acc (Filename.concat path e))
        acc (Sys.readdir path)
    else (path, Digest.file path) :: acc
  in
  List.sort compare (walk [] root)

let test_inspect_dir_read_only () =
  with_tmp_dir (fun dir ->
      let st, _ = Store_int.open_dir ~fsync:false ~dir () in
      let t = Store_int.tree st in
      for k = 0 to 99 do
        ignore (T.insert t k (k + 1));
        Store_int.W.commit (Store_int.wal st) ~tid:0
          [ Store_int.W.W_insert (k, k + 1) ]
      done;
      ignore (Store_int.checkpoint st : int * int);
      for k = 100 to 119 do
        ignore (T.insert t k (k + 1));
        Store_int.W.commit (Store_int.wal st) ~tid:0
          [ Store_int.W.W_insert (k, k + 1) ]
      done;
      Store_int.close st;
      let before = digest_dir dir in
      (match Store_int.inspect_dir ~dir () with
      | None -> Alcotest.fail "inspect_dir could not load the store"
      | Some (t, rs) ->
          Alcotest.(check int) "generation" 1 rs.rs_gen;
          Alcotest.(check int) "snapshot items" 100 rs.rs_snapshot_items;
          Alcotest.(check int) "wal suffix" 20 rs.rs_wal_ops;
          Alcotest.(check int) "contents" 120 (T.cardinal t));
      Alcotest.(check bool) "no byte of the store was touched" true
        (digest_dir dir = before))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "pagestore"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "sensitivity" `Quick test_crc32_sensitivity;
        ] );
      ( "log",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "segment boundaries" `Quick
            test_log_segment_boundaries;
          Alcotest.test_case "oversized record" `Quick test_log_oversized_record;
          Alcotest.test_case "corruption detected" `Quick
            test_log_corruption_detected;
          Alcotest.test_case "bad address" `Quick test_log_bad_address;
          Alcotest.test_case "iteration order" `Quick test_log_iter_order;
          Alcotest.test_case "compaction" `Quick test_log_compact;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          q prop_codec_int_roundtrip;
          q prop_codec_string_roundtrip;
          q prop_codec_mixed_stream_roundtrip;
          q prop_codec_int_truncated;
          q prop_codec_string_truncated;
        ] );
      ( "file log",
        [
          Alcotest.test_case "reopen roundtrip" `Quick test_file_log_reopen;
          Alcotest.test_case "multi-segment reopen" `Quick
            test_file_log_multi_segment_reopen;
          Alcotest.test_case "torn tail truncated" `Quick
            test_file_log_torn_tail;
          Alcotest.test_case "bit flip drops later segments" `Quick
            test_file_log_flip_drops_later_segments;
          Alcotest.test_case "compaction persists" `Quick
            test_file_log_compact_persists;
          Alcotest.test_case "corrupt empty payload (regression)" `Quick
            test_corrupt_empty_payload;
          Alcotest.test_case "corruption is write-through" `Quick
            test_file_log_corrupt_for_testing;
          q prop_torn_tail_recovers_prefix;
          q prop_bit_flip_recovers_prefix;
        ] );
      ( "store",
        [
          Alcotest.test_case "WAL replay" `Quick test_store_wal_replay;
          Alcotest.test_case "checkpoint rotation" `Quick
            test_store_checkpoint_rotation;
          Alcotest.test_case "compact_keeping drops old manifests \
                              (regression)" `Quick
            test_compact_keeping_drops_old_manifests;
          Alcotest.test_case "incremental checkpoint" `Quick
            test_incremental_checkpoint;
          Alcotest.test_case "incremental gc escalation (regression)" `Quick
            test_incremental_gc_escalation;
          Alcotest.test_case "inspect_dir is read-only" `Quick
            test_inspect_dir_read_only;
          q prop_store_recovery_oracle;
          q prop_forest_recovery_oracle;
        ] );
      ( "wal tail",
        [
          Alcotest.test_case "feeds committed groups in order" `Quick
            test_wal_tail_order;
          Alcotest.test_case "limit and resume" `Quick
            test_wal_tail_limit_and_resume;
          Alcotest.test_case "seek aligns to record boundaries" `Quick
            test_wal_seek_alignment;
          Alcotest.test_case "compaction invalidates cursors" `Quick
            test_wal_cursor_after_compaction;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "empty tree" `Quick test_checkpoint_empty_tree;
          Alcotest.test_case "page granularity" `Quick
            test_checkpoint_page_granularity;
          Alcotest.test_case "string keys" `Quick test_checkpoint_string_keys;
          Alcotest.test_case "corruption fails load" `Quick
            test_checkpoint_corruption_fails_load;
          Alcotest.test_case "gc keeps newest" `Quick test_checkpoint_gc;
          Alcotest.test_case "non-unique config" `Quick
            test_checkpoint_non_unique;
          q prop_checkpoint_roundtrip;
        ] );
    ]
