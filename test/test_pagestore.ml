(* Tests for the log-structured page store: the record log (CRC, segment
   boundaries, compaction) and Bw-Tree checkpoint/recovery on top. *)

module T = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module TS = Bwtree.Make (Index_iface.String_key) (Index_iface.Int_value)
module CP = Pagestore.Checkpoint.Make (Pagestore.Codec.Int)
    (Pagestore.Codec.Int) (T)
module CPS = Pagestore.Checkpoint.Make (Pagestore.Codec.String)
    (Pagestore.Codec.Int) (TS)
module Log = Pagestore.Log

(* --- crc32 --- *)

let test_crc32_known_vectors () =
  (* standard zlib test vectors *)
  Alcotest.(check int32) "empty" 0l (Bw_util.Crc32.string "");
  Alcotest.(check int32) "abc" 0x352441C2l (Bw_util.Crc32.string "abc");
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Bw_util.Crc32.string "123456789")

let test_crc32_sensitivity () =
  let a = Bw_util.Crc32.string "hello world" in
  let b = Bw_util.Crc32.string "hello worle" in
  Alcotest.(check bool) "differs" true (a <> b)

(* --- log --- *)

let test_log_roundtrip () =
  let log = Log.create () in
  let offs =
    List.init 100 (fun i -> Log.append log (Printf.sprintf "record %d" i))
  in
  List.iteri
    (fun i off ->
      Alcotest.(check string) "roundtrip" (Printf.sprintf "record %d" i)
        (Log.read log off))
    offs;
  Alcotest.(check int) "count" 100 (Log.records log)

let test_log_segment_boundaries () =
  (* tiny segments force records onto fresh segments *)
  let log = Log.create ~segment_bytes:64 () in
  let payload = String.make 30 'x' in
  let offs = List.init 10 (fun _ -> Log.append log payload) in
  Alcotest.(check bool) "multiple segments" true (Log.segment_count log > 3);
  List.iter
    (fun off -> Alcotest.(check string) "read" payload (Log.read log off))
    offs

let test_log_oversized_record () =
  let log = Log.create ~segment_bytes:64 () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Log.append: record larger than a segment") (fun () ->
      ignore (Log.append log (String.make 100 'y')))

let test_log_corruption_detected () =
  let log = Log.create () in
  let off = Log.append log "precious data" in
  Log.corrupt_for_testing log off;
  Alcotest.check_raises "crc failure"
    (Failure "Log.read: corrupted record (crc mismatch)") (fun () ->
      ignore (Log.read log off))

let test_log_bad_address () =
  let log = Log.create () in
  ignore (Log.append log "x");
  Alcotest.check_raises "bad address" (Failure "Log.read: bad address")
    (fun () -> ignore (Log.read log 999_999))

let test_log_iter_order () =
  let log = Log.create ~segment_bytes:128 () in
  let expected = List.init 50 (fun i -> Printf.sprintf "r%03d" i) in
  List.iter (fun p -> ignore (Log.append log p)) expected;
  let seen = ref [] in
  Log.iter log (fun _ p -> seen := p :: !seen);
  Alcotest.(check (list string)) "log order" expected (List.rev !seen)

let test_log_compact () =
  let log = Log.create ~segment_bytes:128 () in
  let offs = Array.init 50 (fun i -> Log.append log (Printf.sprintf "%02d" i)) in
  (* keep even records only *)
  let keep = Hashtbl.create 32 in
  Array.iteri (fun i off -> if i mod 2 = 0 then Hashtbl.replace keep off i) offs;
  let moves = Hashtbl.create 32 in
  let reclaimed =
    Log.compact log
      ~live:(fun off -> Hashtbl.mem keep off)
      ~relocate:(fun o n -> Hashtbl.replace moves o n)
  in
  Alcotest.(check bool) "reclaimed bytes" true (reclaimed > 0);
  Alcotest.(check int) "survivors" 25 (Log.records log);
  Hashtbl.iter
    (fun old i ->
      let fresh = Hashtbl.find moves old in
      Alcotest.(check string) "moved record intact"
        (Printf.sprintf "%02d" i) (Log.read log fresh))
    keep

(* --- codecs --- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Pagestore.Codec.Int.encode buf 42;
  Pagestore.Codec.Int.encode buf (-7);
  Pagestore.Codec.String.encode buf "hello";
  Pagestore.Codec.String.encode buf "";
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Alcotest.(check int) "int" 42 (Pagestore.Codec.Int.decode s ~pos);
  Alcotest.(check int) "negative int" (-7) (Pagestore.Codec.Int.decode s ~pos);
  Alcotest.(check string) "string" "hello"
    (Pagestore.Codec.String.decode s ~pos);
  Alcotest.(check string) "empty string" ""
    (Pagestore.Codec.String.decode s ~pos)

let test_codec_truncation () =
  Alcotest.check_raises "truncated" (Failure "Codec: truncated int")
    (fun () -> ignore (Pagestore.Codec.Int.decode "abc" ~pos:(ref 0)))

(* qcheck properties: the wire protocol (lib/server) rides on these
   codecs, so their roundtrip/rejection behavior is load-bearing beyond
   the page store *)

let encode_int v =
  let buf = Buffer.create 16 in
  Pagestore.Codec.Int.encode buf v;
  Buffer.contents buf

let encode_str s =
  let buf = Buffer.create 32 in
  Pagestore.Codec.String.encode buf s;
  Buffer.contents buf

let prop_codec_int_roundtrip =
  QCheck.Test.make ~count:2_000 ~name:"int encode/decode identity" QCheck.int
    (fun v ->
      let s = encode_int v in
      let pos = ref 0 in
      Pagestore.Codec.Int.decode s ~pos = v && !pos = String.length s)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~count:2_000 ~name:"string encode/decode identity"
    QCheck.string (fun v ->
      let s = encode_str v in
      let pos = ref 0 in
      Pagestore.Codec.String.decode s ~pos = v && !pos = String.length s)

let prop_codec_mixed_stream_roundtrip =
  QCheck.Test.make ~count:500 ~name:"mixed int/string stream roundtrips"
    QCheck.(
      list
        (oneof
           [ map (fun i -> `I i) int; map (fun s -> `S s) string ]))
    (fun items ->
      let buf = Buffer.create 256 in
      List.iter
        (function
          | `I i -> Pagestore.Codec.Int.encode buf i
          | `S s -> Pagestore.Codec.String.encode buf s)
        items;
      let enc = Buffer.contents buf in
      let pos = ref 0 in
      let decoded =
        List.map
          (function
            | `I _ -> `I (Pagestore.Codec.Int.decode enc ~pos)
            | `S _ -> `S (Pagestore.Codec.String.decode enc ~pos))
          items
      in
      decoded = items && !pos = String.length enc)

let rejects_truncated decode enc cut =
  let prefix = String.sub enc 0 cut in
  match decode prefix ~pos:(ref 0) with
  | _ -> false
  | exception Failure _ -> true

let prop_codec_int_truncated =
  QCheck.Test.make ~count:500 ~name:"truncated int rejected"
    QCheck.(pair int (int_bound 7))
    (fun (v, cut) ->
      rejects_truncated Pagestore.Codec.Int.decode (encode_int v) cut)

let prop_codec_string_truncated =
  QCheck.Test.make ~count:500 ~name:"truncated string rejected"
    QCheck.(pair string (int_bound 10_000))
    (fun (v, cut) ->
      let enc = encode_str v in
      let cut = cut mod String.length enc in
      rejects_truncated Pagestore.Codec.String.decode enc cut)

(* --- checkpoint / recover --- *)

let test_checkpoint_roundtrip () =
  let t = T.create () in
  let rng = Bw_util.Rng.create ~seed:11L in
  for _ = 1 to 20_000 do
    let k = Bw_util.Rng.next_int rng 1_000_000 in
    ignore (T.insert t k (k * 3))
  done;
  let log = Log.create () in
  let root = CP.save t log in
  let t' = CP.load log root in
  Alcotest.(check int) "cardinality preserved" (T.cardinal t) (T.cardinal t');
  Alcotest.(check bool) "contents preserved" true
    (T.scan_all t () = T.scan_all t' ());
  T.verify_invariants t'

let test_checkpoint_empty_tree () =
  let t = T.create () in
  let log = Log.create () in
  let root = CP.save t log in
  let t' = CP.load log root in
  Alcotest.(check int) "empty" 0 (T.cardinal t')

let test_checkpoint_page_granularity () =
  let t = T.create () in
  for k = 0 to 999 do
    ignore (T.insert t k k)
  done;
  let log = Log.create () in
  let root = CP.save ~page_items:100 t log in
  let m = CP.manifest log root in
  Alcotest.(check int) "10 pages" 10 (Array.length m.pages);
  Alcotest.(check int) "item count" 1_000 m.item_count

let test_checkpoint_string_keys () =
  let t = TS.create () in
  for i = 0 to 5_000 do
    ignore (TS.insert t (Workload.email_key_of i) i)
  done;
  let log = Log.create () in
  let root = CPS.save t log in
  let t' = CPS.load log root in
  Alcotest.(check bool) "emails preserved" true
    (TS.scan_all t () = TS.scan_all t' ())

let test_checkpoint_corruption_fails_load () =
  let t = T.create () in
  for k = 0 to 499 do
    ignore (T.insert t k k)
  done;
  let log = Log.create () in
  let root = CP.save ~page_items:64 t log in
  let m = CP.manifest log root in
  Log.corrupt_for_testing log m.pages.(3);
  Alcotest.check_raises "detected"
    (Failure "Log.read: corrupted record (crc mismatch)") (fun () ->
      ignore (CP.load log root))

let test_checkpoint_gc () =
  (* take several checkpoints, retire all but the newest, compact, and
     recover from the translated root *)
  let t = T.create () in
  let log = Log.create ~segment_bytes:4096 () in
  let roots = ref [] in
  for round = 1 to 5 do
    for k = (round - 1) * 1_000 to (round * 1_000) - 1 do
      ignore (T.insert t k k)
    done;
    roots := CP.save ~page_items:64 t log :: !roots
  done;
  let newest = List.hd !roots in
  let before = Log.bytes_used log in
  let reclaimed, fresh_roots = CP.compact_keeping log [ newest ] in
  Alcotest.(check bool) "space reclaimed" true (reclaimed > 0);
  Alcotest.(check bool) "log shrank" true (Log.bytes_used log < before);
  let root' = List.hd fresh_roots in
  let t' = CP.load log root' in
  Alcotest.(check int) "latest state recovered" 5_000 (T.cardinal t');
  Alcotest.(check bool) "contents equal" true
    (T.scan_all t () = T.scan_all t' ())

let test_checkpoint_non_unique () =
  (* a checkpoint of a non-unique index restores faithfully when loaded
     with the matching configuration, and fails loudly when loaded into a
     unique-keys tree (which would silently drop duplicates) *)
  let nuniq = Bwtree.Config.make ~unique_keys:false () in
  let t = T.create ~config:nuniq () in
  for k = 0 to 99 do
    for v = 0 to 4 do
      ignore (T.insert t k v)
    done
  done;
  let log = Log.create () in
  let root = CP.save ~page_items:64 t log in
  let t' = CP.load ~config:nuniq log root in
  Alcotest.(check bool) "duplicates preserved" true
    (List.sort compare (T.scan_all t ())
    = List.sort compare (T.scan_all t' ()));
  Alcotest.check_raises "unique-mode load rejected"
    (Failure "Checkpoint.load: manifest item count mismatch") (fun () ->
      ignore (CP.load log root))

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint/load is identity" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 300) (pair (int_bound 500) (int_bound 1000)))
    (fun kvs ->
      let t = T.create () in
      List.iter (fun (k, v) -> ignore (T.insert t k v)) kvs;
      let log = Log.create () in
      let root = CP.save ~page_items:32 t log in
      let t' = CP.load log root in
      T.scan_all t () = T.scan_all t' ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "pagestore"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "sensitivity" `Quick test_crc32_sensitivity;
        ] );
      ( "log",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "segment boundaries" `Quick
            test_log_segment_boundaries;
          Alcotest.test_case "oversized record" `Quick test_log_oversized_record;
          Alcotest.test_case "corruption detected" `Quick
            test_log_corruption_detected;
          Alcotest.test_case "bad address" `Quick test_log_bad_address;
          Alcotest.test_case "iteration order" `Quick test_log_iter_order;
          Alcotest.test_case "compaction" `Quick test_log_compact;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          q prop_codec_int_roundtrip;
          q prop_codec_string_roundtrip;
          q prop_codec_mixed_stream_roundtrip;
          q prop_codec_int_truncated;
          q prop_codec_string_truncated;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "empty tree" `Quick test_checkpoint_empty_tree;
          Alcotest.test_case "page granularity" `Quick
            test_checkpoint_page_granularity;
          Alcotest.test_case "string keys" `Quick test_checkpoint_string_keys;
          Alcotest.test_case "corruption fails load" `Quick
            test_checkpoint_corruption_fails_load;
          Alcotest.test_case "gc keeps newest" `Quick test_checkpoint_gc;
          Alcotest.test_case "non-unique config" `Quick
            test_checkpoint_non_unique;
          q prop_checkpoint_roundtrip;
        ] );
    ]
