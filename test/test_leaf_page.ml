(* Property tests for packed leaf pages: the packed (binary-arena,
   branchless-search) representation must be observationally identical to
   the boxed one for build / lower_bound / iter_from / merge, the merge
   must agree with a sequential-replay oracle, and the on-disk encoding
   must round-trip byte-identically. *)

module LP = Bwtree.Leaf_page.Make (Index_iface.Int_key) (Index_iface.Int_value)
module LPS =
  Bwtree.Leaf_page.Make (Index_iface.String_key) (Index_iface.Int_value)

let q = QCheck_alcotest.to_alcotest

(* ---- generators ---- *)

(* small key space so duplicate keys, adjacent probes and delta/base
   collisions are frequent *)
let items_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 400) (pair (int_bound 60) (int_bound 5)))

let sorted_items kvs =
  Array.of_list (List.stable_sort (fun (a, _) (b, _) -> compare a b) kvs)

(* short strings over a 2-letter alphabet: prefixes of each other, empty
   strings, and shared 8-byte words are all common *)
let str_key_gen =
  QCheck.Gen.(
    int_range 0 10 >>= fun len ->
    string_size ~gen:(oneofl [ 'a'; 'b' ]) (return len))

let str_items_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 200)
      (pair (make ~print:Print.string str_key_gen) (int_bound 5)))

let sorted_str_items kvs =
  Array.of_list (List.stable_sort (fun (a, _) (b, _) -> compare a b) kvs)

(* ---- build / search / iterate equivalence ---- *)

(* reference lower bound over the item array *)
let ref_lb items k =
  let n = Array.length items in
  let i = ref 0 in
  while !i < n && fst items.(!i) < k do
    incr i
  done;
  !i

let prop_build_equiv =
  QCheck.Test.make ~name:"packed == boxed: build/search/iterate" ~count:300
    items_gen (fun kvs ->
      let items = sorted_items kvs in
      let p = LP.build ~packed:true items in
      let b = LP.build ~packed:false items in
      let n = Array.length items in
      assert (LP.length p = n && LP.length b = n);
      assert (n = 0 || LP.is_packed p);
      for i = 0 to n - 1 do
        assert (LP.get p i = items.(i));
        assert (LP.get b i = items.(i))
      done;
      for k = -1 to 62 do
        let want = ref_lb items k in
        assert (LP.lower_bound p k = want);
        assert (LP.lower_bound b k = want)
      done;
      (* restricted ranges must agree too (the §4.4 shortcut) *)
      for k = 0 to 60 do
        let lo = min (k mod 7) n and hi = n - min (k mod 3) n in
        if lo <= hi then
          assert (
            LP.lower_bound_in p k ~lo ~hi = LP.lower_bound_in b k ~lo ~hi)
      done;
      let pos = n / 3 in
      let seen_p = ref [] and seen_b = ref [] in
      LP.iter_from p pos (fun k v -> seen_p := (k, v) :: !seen_p);
      LP.iter_from b pos (fun k v -> seen_b := (k, v) :: !seen_b);
      assert (!seen_p = !seen_b);
      LP.slice p = LP.slice b)

let prop_build_equiv_str =
  QCheck.Test.make ~name:"packed == boxed: string keys" ~count:300
    str_items_gen (fun kvs ->
      let items = sorted_str_items kvs in
      let p = LPS.build ~packed:true items in
      let b = LPS.build ~packed:false items in
      let n = Array.length items in
      let probes =
        [ ""; "a"; "b"; "ab"; "ba"; "aaaa"; "aaaaaaaa"; "aaaaaaaab";
          "bbbbbbbbbb" ]
        @ (List.map fst kvs)
      in
      List.iter
        (fun k ->
          assert (LPS.lower_bound p k = LPS.lower_bound b k);
          (* the branchless arena walk agrees with the cache search *)
          assert (LPS.lower_bound ~arena:true p k = LPS.lower_bound p k))
        probes;
      ignore n;
      LPS.slice p = LPS.slice b)

(* ---- merge oracle ---- *)

(* Sequential replay, oldest op first: an insert adds a pair, a delete
   removes one exact occurrence (no-op when absent — it refers to nothing
   visible), an update rewrites one occurrence of (k, old) to (k, new).
   This is the multiset semantics the merge's newest-first pending-delete
   walk must reproduce. *)
let oracle base ops_oldest_first =
  let remove_one st k v =
    let rec go = function
      | [] -> (false, [])
      | (k', v') :: rest when k' = k && v' = v -> (true, rest)
      | x :: rest ->
          let hit, rest' = go rest in
          (hit, x :: rest')
    in
    go st
  in
  let st =
    List.fold_left
      (fun st op ->
        match op with
        | LP.Ins (k, v) -> (k, v) :: st
        | LP.Del (k, v) -> snd (remove_one st k v)
        | LP.Upd (k, vold, vnew) ->
            let hit, st' = remove_one st k vold in
            if hit then (k, vnew) :: st' else (k, vnew) :: st)
      (Array.to_list base) ops_oldest_first
  in
  List.sort compare st

let delta_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 24)
      (triple (int_bound 3) (int_bound 60) (pair (int_bound 5) (int_bound 5))))

let to_delta (sel, k, (v1, v2)) =
  match sel with
  | 0 | 3 -> LP.Ins (k, v1)
  | 1 -> LP.Del (k, v1)
  | _ -> LP.Upd (k, v1, v2)

let sortedness page =
  let ok = ref true in
  for i = 1 to LP.length page - 1 do
    if fst (LP.get page (i - 1)) > fst (LP.get page i) then ok := false
  done;
  !ok

let prop_merge_equiv =
  QCheck.Test.make
    ~name:"merge_with_deltas: packed == boxed == replay oracle" ~count:500
    QCheck.(pair items_gen delta_gen)
    (fun (kvs, raw) ->
      let items = sorted_items kvs in
      let ops_oldest_first = List.map to_delta raw in
      (* the merge takes the chain newest-first, as the tree walks it *)
      let chain = List.rev ops_oldest_first in
      let want = oracle items ops_oldest_first in
      let check base ~packed ~reuse =
        let m = LP.merge_with_deltas ~packed ~reuse base chain in
        assert (sortedness m.LP.m_page);
        assert (
          List.sort compare (Array.to_list (LP.slice m.LP.m_page)) = want);
        m.LP.m_page
      in
      let pbase = LP.build ~packed:true items in
      let bbase = LP.build ~packed:false items in
      let via_gap = check pbase ~packed:true ~reuse:true in
      let fresh = check (LP.build ~packed:true items) ~packed:true ~reuse:false in
      let boxed = check bbase ~packed:false ~reuse:true in
      (* all three representations agree elementwise and under search *)
      assert (LP.slice via_gap = LP.slice fresh);
      assert (LP.slice via_gap = LP.slice boxed);
      for k = -1 to 62 do
        assert (LP.lower_bound via_gap k = LP.lower_bound boxed k);
        assert (LP.lower_bound fresh k = LP.lower_bound boxed k)
      done;
      true)

(* ---- serialization ---- *)

let venc buf v = Buffer.add_int64_le buf (Int64.of_int v)

let vdec payload pos =
  let v = Int64.to_int (String.get_int64_le payload !pos) in
  pos := !pos + 8;
  v

let enc page =
  let buf = Buffer.create 256 in
  LP.encode buf venc page;
  Buffer.contents buf

let enc_s page =
  let buf = Buffer.create 256 in
  LPS.encode buf venc page;
  Buffer.contents buf

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips byte-identically"
    ~count:300
    QCheck.(pair items_gen delta_gen)
    (fun (kvs, raw) ->
      let items = sorted_items kvs in
      (* exercise every construction path: fresh builds (packed and
         boxed) and a gap-reusing merge, whose arena is out of index
         order — encode must normalize it *)
      let base = LP.build ~packed:true items in
      let merged =
        (LP.merge_with_deltas ~packed:true ~reuse:true base
           (List.rev_map to_delta raw))
          .LP.m_page
      in
      List.for_all
        (fun page ->
          let e1 = enc page in
          let d = LP.decode e1 ~pos:(ref 0) ~value:(fun () -> 0) in
          ignore d;
          let pos = ref 0 in
          let d =
            LP.decode e1 ~pos ~value:(fun () -> vdec e1 pos)
          in
          assert (!pos = String.length e1);
          assert (LP.slice d = LP.slice page);
          assert (LP.length d = 0 || LP.is_packed d);
          enc d = e1)
        [ base; LP.build ~packed:false items; merged; LP.empty ])

let prop_codec_roundtrip_str =
  QCheck.Test.make ~name:"encode/decode round-trips (string keys)"
    ~count:300 str_items_gen (fun kvs ->
      let items = sorted_str_items kvs in
      let page = LPS.build ~packed:true items in
      let e1 = enc_s page in
      let pos = ref 0 in
      let d = LPS.decode e1 ~pos ~value:(fun () -> vdec e1 pos) in
      assert (LPS.slice d = LPS.slice page);
      enc_s d = e1)

let test_decode_malformed () =
  let page = LP.build ~packed:true [| (1, 10); (2, 20) |] in
  let e = enc page in
  List.iter
    (fun payload ->
      match
        LP.decode payload ~pos:(ref 0) ~value:(fun () -> 0)
      with
      | _ -> Alcotest.fail "malformed payload accepted"
      | exception Failure _ -> ())
    [
      "";
      String.sub e 0 4;
      (* item count beyond the payload *)
      "\255\255\255\255\255\255\255\255" ^ String.make 16 'x';
      (* bad flag byte *)
      (let b = Bytes.of_string e in
       Bytes.set b 8 '\042';
       Bytes.to_string b);
    ]

(* ---- gap policy ---- *)

let test_gap_reuse () =
  let items = Array.init 100 (fun i -> (i * 3, i)) in
  let base = LP.build ~packed:true items in
  (* 100 8-byte keys: 800 arena bytes + a 200-byte gap *)
  Alcotest.(check int) "gap" 200 (LP.gap_bytes base);
  (* three new keys (24 fresh bytes) fit the gap *)
  let chain = [ LP.Ins (1, 0); LP.Ins (4, 0); LP.Ins (7, 0) ] in
  let m = LP.merge_with_deltas ~reuse:true base chain in
  Alcotest.(check bool) "reused" true m.LP.m_gap_reused;
  Alcotest.(check int) "gap shrank" 176 (LP.gap_bytes m.LP.m_page);
  (* updates touch only keys the base holds: zero fresh bytes, free *)
  let m2 =
    LP.merge_with_deltas ~reuse:true m.LP.m_page [ LP.Upd (0, 0, 9) ]
  in
  Alcotest.(check bool) "update is byte-free" true m2.LP.m_gap_reused;
  Alcotest.(check int) "gap unchanged" 176 (LP.gap_bytes m2.LP.m_page);
  (* exhaust the gap: reuse must fail over to a fresh arena *)
  let big =
    List.init 30 (fun i -> LP.Ins ((i * 3) + 2, 0))
  in
  let m3 = LP.merge_with_deltas ~reuse:true m2.LP.m_page big in
  Alcotest.(check bool) "fell back to fresh arena" false m3.LP.m_gap_reused;
  Alcotest.(check bool) "contents intact" true
    (Array.length (LP.slice m3.LP.m_page) = 133);
  (* a no-reuse merge never touches the base's gap *)
  let before = LP.gap_bytes base in
  ignore (LP.merge_with_deltas ~reuse:false base chain);
  Alcotest.(check int) "snapshot merge left the base alone" before
    (LP.gap_bytes base)

let test_search_cost () =
  Alcotest.(check int) "0" 0 (LP.search_cost_n 0);
  Alcotest.(check int) "1" 1 (LP.search_cost_n 1);
  Alcotest.(check int) "2" 2 (LP.search_cost_n 2);
  Alcotest.(check int) "128" 8 (LP.search_cost_n 128);
  Alcotest.(check int) "255" 8 (LP.search_cost_n 255);
  let page = LP.build ~packed:true (Array.init 100 (fun i -> (i, i))) in
  Alcotest.(check int) "page" (LP.search_cost_n 100) (LP.search_cost page)

let () =
  Alcotest.run "leaf_page"
    [
      ( "equivalence",
        [ q prop_build_equiv; q prop_build_equiv_str; q prop_merge_equiv ] );
      ( "codec",
        [
          q prop_codec_roundtrip;
          q prop_codec_roundtrip_str;
          Alcotest.test_case "malformed payloads rejected" `Quick
            test_decode_malformed;
        ] );
      ( "policy",
        [
          Alcotest.test_case "gap reuse and fallback" `Quick test_gap_reuse;
          Alcotest.test_case "search cost" `Quick test_search_cost;
        ] );
    ]
