(* Tests for the lock-free mapping table (indirection layer). *)

module MT = Mapping_table

let test_allocate_get () =
  let t = MT.create ~dummy:"" () in
  let a = MT.allocate t "a" and b = MT.allocate t "b" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "get a" "a" (MT.get t a);
  Alcotest.(check string) "get b" "b" (MT.get t b)

let test_cas_semantics () =
  let t = MT.create ~dummy:"" () in
  let id = MT.allocate t "v1" in
  let v1 = MT.get t id in
  Alcotest.(check bool) "cas succeeds" true (MT.cas t id ~expect:v1 ~repl:"v2");
  Alcotest.(check string) "swung" "v2" (MT.get t id);
  Alcotest.(check bool) "stale cas fails" false
    (MT.cas t id ~expect:v1 ~repl:"v3");
  Alcotest.(check string) "unchanged" "v2" (MT.get t id)

let test_cas_physical_equality () =
  (* two structurally-equal but physically-distinct strings must not
     satisfy the CaS expectation *)
  let t = MT.create ~dummy:"" () in
  let v = String.make 3 'x' in
  let id = MT.allocate t v in
  let clone = String.init 3 (fun _ -> 'x') in
  Alcotest.(check bool) "structural twin rejected" false
    (MT.cas t id ~expect:clone ~repl:"y")

let test_cas_unsafe () =
  let t = MT.create ~dummy:"" () in
  let id = MT.allocate t "v1" in
  let v1 = MT.get t id in
  Alcotest.(check bool) "unsafe cas works single-threaded" true
    (MT.cas_unsafe t id ~expect:v1 ~repl:"v2");
  Alcotest.(check bool) "unsafe stale fails" false
    (MT.cas_unsafe t id ~expect:v1 ~repl:"v3")

let test_lazy_chunks () =
  let t = MT.create ~chunk_bits:4 ~dir_bits:4 ~dummy:(-1) () in
  Alcotest.(check int) "no chunks yet" 0 (MT.chunks_allocated t);
  ignore (MT.allocate t 1);
  Alcotest.(check int) "first chunk faulted" 1 (MT.chunks_allocated t);
  (* skip into a high id via set *)
  MT.set t 200 42;
  Alcotest.(check int) "second chunk faulted" 2 (MT.chunks_allocated t);
  Alcotest.(check int) "sparse read" 42 (MT.get t 200);
  Alcotest.(check int) "untouched cell reads dummy" (-1) (MT.get t 100);
  Alcotest.(check int) "capacity" 256 (MT.capacity t)

let test_out_of_range () =
  let t = MT.create ~chunk_bits:4 ~dir_bits:4 ~dummy:0 () in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Mapping_table: id out of range") (fun () ->
      ignore (MT.get t (-1)));
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "Mapping_table: id out of range") (fun () ->
      ignore (MT.get t 256))

let test_free_list_reuse () =
  let t = MT.create ~dummy:0 () in
  let a = MT.allocate t 1 in
  let b = MT.allocate t 2 in
  MT.free_id t a;
  Alcotest.(check int) "free list" 1 (MT.free_list_length t);
  let c = MT.allocate t 3 in
  Alcotest.(check int) "id recycled" a c;
  Alcotest.(check int) "free list drained" 0 (MT.free_list_length t);
  Alcotest.(check int) "other id intact" 2 (MT.get t b);
  Alcotest.(check int) "rebuild hint" 2 (MT.rebuild_capacity_hint t)

let test_concurrent_allocation () =
  let t = MT.create ~dummy:(-1) () in
  let nthreads = 4 and per = 5_000 in
  let ids = Array.make (nthreads * per) (-1) in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ids.((tid * per) + i) <- MT.allocate t ((tid * per) + i)
            done))
  in
  Array.iter Domain.join domains;
  (* all ids distinct and readable *)
  let seen = Hashtbl.create (nthreads * per) in
  Array.iteri
    (fun slot id ->
      Alcotest.(check bool) "no duplicate id" false (Hashtbl.mem seen id);
      Hashtbl.add seen id ();
      Alcotest.(check int) "value readable" slot (MT.get t id))
    ids

let test_concurrent_cas_single_winner () =
  let t = MT.create ~dummy:0 () in
  let id = MT.allocate t 100 in
  let expect = MT.get t id in
  let winners = Atomic.make 0 in
  let domains =
    Array.init 8 (fun tid ->
        Domain.spawn (fun () ->
            if MT.cas t id ~expect ~repl:(tid + 200) then
              ignore (Atomic.fetch_and_add winners 1)))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "exactly one winner" 1 (Atomic.get winners);
  Alcotest.(check bool) "final value from a winner" true (MT.get t id >= 200)

(* Two-domain free/allocate race: the producer recycles ids straight off
   the free list while the consumer is still pushing others onto it, so
   free-list CaS retries happen constantly. A value installed by
   [allocate] must stay visible until its owner frees the id — pre-fix,
   [free_id]'s retry loop re-executed its dummy store, which could stomp
   the racing allocator's pointer. *)
let test_free_allocate_race () =
  let t = MT.create ~chunk_bits:8 ~dir_bits:8 ~dummy:(-1) () in
  let n = 30_000 in
  let handoff = Array.make n (-1) in
  let produced = Atomic.make 0 in
  let stomped = Atomic.make 0 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          let id = MT.allocate t i in
          if MT.get t id <> i then Atomic.incr stomped;
          handoff.(i) <- id;
          Atomic.incr produced
        done)
  in
  let consumer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while Atomic.get produced <= i do
            Domain.cpu_relax ()
          done;
          MT.free_id t handoff.(i)
        done)
  in
  Domain.join producer;
  Domain.join consumer;
  Alcotest.(check int) "no live cell stomped by a racing free" 0
    (Atomic.get stomped);
  (* every id was freed, so the free list alone accounts for the whole
     high-water mark *)
  Alcotest.(check int) "free list accounts for all ids"
    (MT.high_water t) (MT.free_list_length t)

(* four domains churning allocate/free against private live sets: ids must
   never be handed to two owners, live cells must keep their values, and
   quiesced accounting must balance *)
let test_churn_accounting () =
  let t = MT.create ~chunk_bits:8 ~dir_bits:8 ~dummy:(-1) () in
  let nthreads = 4 and iters = 20_000 and cap = 64 in
  let lives = Array.init nthreads (fun _ -> ref []) in
  let bad = Atomic.make 0 in
  let domains =
    Array.init nthreads (fun d ->
        Domain.spawn (fun () ->
            let live = lives.(d) in
            let count = ref 0 in
            let seed = ref (d + 1) in
            for i = 0 to iters - 1 do
              (* cheap deterministic per-domain chooser *)
              seed := (!seed * 48271) mod 0x7fffffff;
              match !live with
              | (id, v) :: rest when !count >= cap || !seed land 1 = 0 ->
                  if MT.get t id <> v then Atomic.incr bad;
                  MT.free_id t id;
                  live := rest;
                  decr count
              | _ ->
                  let v = (d * iters) + i in
                  let id = MT.allocate t v in
                  if MT.get t id <> v then Atomic.incr bad;
                  live := (id, v) :: !live;
                  incr count
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no stomped or lost cells" 0 (Atomic.get bad);
  let seen = Hashtbl.create 256 in
  let live_total = ref 0 in
  Array.iter
    (fun live ->
      List.iter
        (fun (id, v) ->
          incr live_total;
          Alcotest.(check bool) "id owned once" false (Hashtbl.mem seen id);
          Hashtbl.add seen id ();
          Alcotest.(check int) "live value intact" v (MT.get t id))
        !live)
    lives;
  Alcotest.(check int) "live + free = high water"
    (MT.high_water t)
    (!live_total + MT.free_list_length t)

let () =
  Alcotest.run "mapping_table"
    [
      ( "basic",
        [
          Alcotest.test_case "allocate/get" `Quick test_allocate_get;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "cas physical equality" `Quick
            test_cas_physical_equality;
          Alcotest.test_case "cas_unsafe" `Quick test_cas_unsafe;
        ] );
      ( "growth",
        [
          Alcotest.test_case "lazy chunks" `Quick test_lazy_chunks;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "id recycling" `Quick test_free_list_reuse;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "allocation" `Slow test_concurrent_allocation;
          Alcotest.test_case "single cas winner" `Quick
            test_concurrent_cas_single_winner;
          Alcotest.test_case "free/allocate race" `Slow
            test_free_allocate_race;
          Alcotest.test_case "churn accounting" `Slow test_churn_accounting;
        ] );
    ]
