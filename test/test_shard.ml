(* Tests for the range-partitioned shard router (lib/shard): partition
   arithmetic (unit + qcheck), cross-shard scan continuation with
   exactly-once visits, observational equivalence of an N-shard forest
   against a single tree under random interleaved ops, and a short
   stress-oracle run against a forest subject. *)

module P = Bw_shard.Part
module D = Harness.Drivers
module I = Index_iface
module Key = Bw_util.Key_codec

let tiny =
  Bwtree.Config.make ~leaf_max:8 ~inner_max:6 ~leaf_chain_max:4
    ~inner_chain_max:2 ~leaf_min:2 ~inner_min:2 ()

(* ------------------------------------------------------------------ *)
(* Partition arithmetic                                                *)
(* ------------------------------------------------------------------ *)

let test_part_units () =
  let p = P.make_int ~lo:0 ~hi:1023 4 in
  Alcotest.(check int) "count" 4 (P.count p);
  (* 1024 keys over 4 shards: boundaries at 256, 512, 768 *)
  List.iter
    (fun (k, s) ->
      Alcotest.(check int) (Printf.sprintf "shard of %d" k) s
        (P.shard_of_int p k))
    [
      (0, 0); (255, 0); (256, 1); (511, 1); (512, 2); (767, 2); (768, 3);
      (1023, 3);
      (* out-of-range keys clamp to the edge shards *)
      (-1, 0); (min_int, 0); (1024, 3); (max_int, 3);
    ];
  List.iter
    (fun i ->
      Alcotest.(check int) (Printf.sprintf "floor of shard %d" i) (256 * i)
        (P.floor_int p i))
    [ 1; 2; 3 ];
  Alcotest.(check int) "floor of shard 0" min_int (P.floor_int p 0);
  (* full-range partition: floors are exact shard boundaries *)
  let p8 = P.make_int 8 in
  for i = 1 to 7 do
    Alcotest.(check int) "floor lands in its shard" i
      (P.shard_of_int p8 (P.floor_int p8 i));
    Alcotest.(check int) "floor - 1 lands in the previous shard" (i - 1)
      (P.shard_of_int p8 (P.floor_int p8 i - 1))
  done;
  (* binary partitions: every floor routes back to its own shard *)
  let pb = P.make ~lo:"a" ~hi:"z" 5 in
  for i = 1 to 4 do
    Alcotest.(check int) "binary floor lands in its shard" i
      (P.shard_of_binary pb (P.floor_binary pb i))
  done;
  Alcotest.(check string) "binary floor of shard 0" "" (P.floor_binary pb 0);
  Alcotest.check_raises "shard count < 1"
    (Invalid_argument "Bw_shard.Part.make: shard count < 1") (fun () ->
      ignore (P.make 0));
  Alcotest.check_raises "inverted int bounds"
    (Invalid_argument "Bw_shard.Part.make_int: hi must be > lo") (fun () ->
      ignore (P.make_int ~lo:5 ~hi:5 2))

(* arbitrary ints over the full 63-bit range (QCheck.int is uniform
   only over a smaller span) *)
let gen_key = QCheck.(map Int64.to_int int64)

let prop_int_monotone =
  QCheck.Test.make ~name:"int shards monotone, floors are lower bounds"
    ~count:1000
    QCheck.(pair (int_range 2 9) (pair gen_key gen_key))
    (fun (n, (a, b)) ->
      let p = P.make_int n in
      let a, b = (min a b, max a b) in
      let sa = P.shard_of_int p a and sb = P.shard_of_int p b in
      0 <= sa && sa <= sb && sb < n && P.floor_int p sa <= a
      && P.floor_int p sb <= b)

let prop_codec_agreement =
  QCheck.Test.make ~name:"shard_of_binary (of_int k) == shard_of_int k"
    ~count:1000
    QCheck.(pair (int_range 1 9) gen_key)
    (fun (n, k) ->
      let pi = P.make_int n and pb = P.make n in
      P.shard_of_binary pi (Key.of_int k) = P.shard_of_int pi k
      && P.shard_of_binary pb (Key.of_int k) = P.shard_of_int pb k)

let prop_binary_monotone =
  QCheck.Test.make ~name:"binary shards monotone, floors are lower bounds"
    ~count:1000
    QCheck.(pair (int_range 2 9) (pair string string))
    (fun (n, (a, b)) ->
      let p = P.make n in
      let a, b = if String.compare a b <= 0 then (a, b) else (b, a) in
      let sa = P.shard_of_binary p a and sb = P.shard_of_binary p b in
      0 <= sa && sa <= sb && sb < n
      && String.compare (P.floor_binary p sa) a <= 0)

(* ------------------------------------------------------------------ *)
(* Router semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_scan_boundaries () =
  let p = P.make_int ~lo:0 ~hi:1023 4 in
  let d = Bw_shard.route_int p (Array.init 4 (fun _ -> D.btree_driver_int ())) in
  for k = 0 to 1023 do
    assert (d.I.insert ~tid:0 k (k * 2))
  done;
  let scan start n =
    let seen = ref [] in
    let m = d.I.scan ~tid:0 start ~n (fun k v -> seen := (k, v) :: !seen) in
    (m, List.rev !seen)
  in
  let expect start n = List.init n (fun i -> (start + i, (start + i) * 2)) in
  let m, items = scan 250 300 in
  Alcotest.(check int) "budget met across two boundaries" 300 m;
  Alcotest.(check (list (pair int int)))
    "cross-shard scan ordered, exactly once" (expect 250 300) items;
  let m, items = scan 512 5 in
  Alcotest.(check int) "scan starting on a boundary" 5 m;
  Alcotest.(check (list (pair int int))) "boundary items" (expect 512 5) items;
  let m, items = scan (-40) 4 in
  Alcotest.(check int) "scan from below the partition range" 4 m;
  Alcotest.(check (list (pair int int))) "clamped start" (expect 0 4) items;
  let m, items = scan 1000 100 in
  Alcotest.(check int) "scan clipped at the last shard" 24 m;
  Alcotest.(check (list (pair int int))) "tail items" (expect 1000 24) items;
  let m, items = scan 0 0 in
  Alcotest.(check int) "empty budget" 0 m;
  Alcotest.(check (list (pair int int))) "no visits" [] items;
  (* point ops across shard boundaries *)
  Alcotest.(check bool) "delete boundary key" true (d.I.remove ~tid:0 512);
  let _, items = scan 511 2 in
  Alcotest.(check (list (pair int int)))
    "scan over the deleted boundary key"
    [ (511, 1022); (513, 1026) ]
    items;
  Alcotest.(check (option int)) "read routed" (Some 1600) (d.I.read ~tid:0 800);
  Alcotest.(check bool) "update routed" true (d.I.update ~tid:0 800 7);
  Alcotest.(check (option int)) "update visible" (Some 7) (d.I.read ~tid:0 800)

let test_router_misc () =
  let d = D.bwtree_forest_int ~config:tiny ~shards:3 () in
  Alcotest.(check string) "derived name" "OpenBw-Tree[3 shards]" d.I.name;
  assert (d.I.insert ~tid:0 1 1);
  Alcotest.(check bool) "memory sums over shards" true (d.I.memory_words () > 0);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Bw_shard.route: partition has 2 shards, got 3 drivers")
    (fun () ->
      ignore
        (Bw_shard.route_int (P.make_int 2)
           (Array.init 3 (fun _ -> D.btree_driver_int ()))))

(* ------------------------------------------------------------------ *)
(* Forest == single tree (observational equivalence)                   *)
(* ------------------------------------------------------------------ *)

(* Random interleaved ops over a small key space, rendered into one
   observation string: every return value and every scan visit in
   order. Scan starts may fall below the partition range and budgets
   span shard boundaries, so the continuation path is exercised. *)
let ops_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 300)
      (triple (int_bound 5) (int_bound 120) (int_bound 1000)))

let observe (d : int I.driver) ops =
  let tid = 0 in
  let out = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string out) fmt in
  List.iter
    (fun (op, k, v) ->
      match op with
      | 0 -> add "i%d:%b;" k (d.I.insert ~tid k v)
      | 1 -> add "d%d:%b;" k (d.I.remove ~tid k)
      | 2 -> add "u%d:%b;" k (d.I.update ~tid k v)
      | 3 | 4 ->
          add "r%d:%s;" k
            (match d.I.read ~tid k with
            | None -> "-"
            | Some v -> string_of_int v)
      | _ ->
          let start = k - 60 and n = v mod 40 in
          let m = d.I.scan ~tid start ~n (fun k v -> add "%d=%d," k v) in
          add "#%d;" m)
    ops;
  Buffer.contents out

let prop_forest_equiv n =
  QCheck.Test.make
    ~name:(Printf.sprintf "forest of %d shards == single tree" n)
    ~count:60 ops_gen
    (fun ops ->
      let single = D.bwtree_driver_int ~config:tiny () in
      let forest = D.bwtree_forest_int ~config:tiny ~lo:0 ~hi:127 ~shards:n () in
      observe single ops = observe forest ops)

(* The router's batch path: one routing pass splits a batch into
   per-shard sub-batches, the shards execute through their own batch
   paths, and the results scatter back into submission order. Keys are
   uniform over [0, 120] against a [0, 127] partition, so nearly every
   batch spans shard boundaries and regularly repeats a key; results
   must agree slot for slot with per-op application to a single tree. *)
let bop_of (op, k, v) =
  match op with
  | 0 -> I.Bop_insert (k, v)
  | 1 -> I.Bop_remove k
  | 2 -> I.Bop_update (k, v)
  | 3 -> I.Bop_upsert (k, v)
  | _ -> I.Bop_read k

let apply_one (d : int I.driver) trip =
  let tid = 0 in
  match bop_of trip with
  | I.Bop_insert (k, v) -> I.Bres_applied (d.I.insert ~tid k v)
  | I.Bop_update (k, v) -> I.Bres_applied (d.I.update ~tid k v)
  | I.Bop_upsert (k, v) ->
      I.Bres_applied
        (if d.I.update ~tid k v then true else d.I.insert ~tid k v)
  | I.Bop_remove k -> I.Bres_applied (d.I.remove ~tid k)
  | I.Bop_read k -> I.Bres_value (d.I.read ~tid k)

let dump (d : int I.driver) =
  let out = ref [] in
  ignore (d.I.scan ~tid:0 0 ~n:10_000 (fun k v -> out := (k, v) :: !out));
  List.rev !out

let prop_forest_batch_equiv n =
  QCheck.Test.make
    ~name:(Printf.sprintf "forest of %d shards: batch == per-op" n)
    ~count:60
    QCheck.(pair ops_gen (int_range 1 24))
    (fun (ops, bsize) ->
      let single = D.bwtree_driver_int ~config:tiny () in
      let forest = D.bwtree_forest_int ~config:tiny ~lo:0 ~hi:127 ~shards:n () in
      let arr = Array.of_list ops in
      let len = Array.length arr in
      let ok = ref true in
      let i = ref 0 in
      while !i < len do
        let sz = min bsize (len - !i) in
        let chunk = Array.init sz (fun j -> bop_of arr.(!i + j)) in
        let rs = I.exec_batch forest ~tid:0 chunk in
        for j = 0 to sz - 1 do
          if rs.(j) <> apply_one single arr.(!i + j) then ok := false
        done;
        i := !i + sz
      done;
      !ok && dump forest = dump single)

(* the strict no-op claim: one shard behind the router replays a fixed
   mixed trace exactly like the bare driver *)
let test_shard1_parity () =
  let ops =
    List.concat
      [
        List.init 64 (fun i -> (0, i * 3 mod 97, i));
        List.init 32 (fun i -> (1, i * 2, 0));
        List.init 32 (fun i -> (2, i * 5 mod 97, i + 100));
        List.init 24 (fun i -> (3, i * 7 mod 97, 0));
        List.init 16 (fun i -> (5, i * 11 mod 97, 17 + i));
      ]
  in
  let single = observe (D.bwtree_driver_int ~config:tiny ()) ops in
  let routed = observe (D.bwtree_forest_int ~config:tiny ~shards:1 ()) ops in
  Alcotest.(check string) "identical observations" single routed

(* ------------------------------------------------------------------ *)
(* Stress oracle over a forest                                         *)
(* ------------------------------------------------------------------ *)

let test_stress_forest () =
  let cfg =
    {
      Bw_stress.short_config with
      seed = 13;
      phases = 2;
      churn_domains = 1;
      drive_advance = false;
    }
  in
  let config =
    Bwtree.Config.make ~leaf_max:32 ~inner_max:16 ~leaf_chain_max:8
      ~inner_chain_max:2 ~leaf_min:4 ~inner_min:2 ~gc_threshold:32 ()
  in
  (* partition the stress keyspace itself so the sweeps cross shards *)
  let keyspace = cfg.Bw_stress.domains * cfg.Bw_stress.keys_per_domain in
  let p = P.make_int ~lo:0 ~hi:(keyspace - 1) 3 in
  let d =
    Bw_shard.route_int p
      (Array.init 3 (fun _ -> D.bwtree_driver_int ~config ()))
  in
  let r = Bw_stress.run cfg (Bw_stress.of_driver d) in
  Alcotest.(check (list string)) "no invariant violations" [] r.r_violations;
  Alcotest.(check bool) "evaluated checks" true (r.r_checks > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "unit boundaries and floors" `Quick
            test_part_units;
          q prop_int_monotone;
          q prop_codec_agreement;
          q prop_binary_monotone;
        ] );
      ( "router",
        [
          Alcotest.test_case "cross-shard scan continuation" `Quick
            test_scan_boundaries;
          Alcotest.test_case "name, memory, arity" `Quick test_router_misc;
        ] );
      ( "equivalence",
        [
          q (prop_forest_equiv 1);
          q (prop_forest_equiv 2);
          q (prop_forest_equiv 7);
          q (prop_forest_batch_equiv 1);
          q (prop_forest_batch_equiv 3);
          Alcotest.test_case "shard=1 parity" `Quick test_shard1_parity;
        ] );
      ( "stress",
        [ Alcotest.test_case "oracle over a 3-shard forest" `Slow
            test_stress_forest ] );
    ]
