(* Property-based tests for the Bw-Tree: qcheck generators drive random
   operation sequences and structural configurations; properties compare
   against reference models and check internal invariants. *)

module IK = Index_iface.Int_key
module IV = Index_iface.Int_value
module T = Bwtree.Make (IK) (IV)
module IntMap = Map.Make (Int)

let tiny =
  Bwtree.Config.make ~leaf_max:8 ~inner_max:6 ~leaf_chain_max:4
    ~inner_chain_max:2 ~leaf_min:2 ~inner_min:2 ()

(* an op sequence: (op selector, key, value) triples over a small key
   space so that collisions, re-inserts and merges are frequent *)
let ops_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 400)
      (triple (int_bound 3) (int_bound 120) (int_bound 1000)))

let apply_tree t ops =
  List.iter
    (fun (op, k, v) ->
      match op with
      | 0 -> ignore (T.insert t k v)
      | 1 -> ignore (T.delete t k 0)
      | 2 -> ignore (T.update t k v)
      | _ -> ignore (T.lookup t k))
    ops

let apply_model ops =
  List.fold_left
    (fun m (op, k, v) ->
      match op with
      | 0 -> if IntMap.mem k m then m else IntMap.add k v m
      | 1 -> IntMap.remove k m
      | 2 -> if IntMap.mem k m then IntMap.add k v m else m
      | _ -> m)
    IntMap.empty ops

let prop_model_agreement =
  QCheck.Test.make ~name:"tree == map model after random ops" ~count:150
    ops_gen (fun ops ->
      let t = T.create ~config:tiny () in
      apply_tree t ops;
      T.scan_all t () = IntMap.bindings (apply_model ops))

let prop_invariants_hold =
  QCheck.Test.make ~name:"structural invariants after random ops" ~count:150
    ops_gen (fun ops ->
      let t = T.create ~config:tiny () in
      apply_tree t ops;
      T.verify_invariants t;
      true)

let prop_forward_iteration_sorted =
  QCheck.Test.make ~name:"forward iteration == sorted model" ~count:100
    ops_gen (fun ops ->
      let t = T.create ~config:tiny () in
      apply_tree t ops;
      let expected = IntMap.bindings (apply_model ops) in
      let it = T.Iterator.seek_first t () in
      let out = ref [] in
      let rec go () =
        match T.Iterator.current it with
        | Some kv ->
            out := kv :: !out;
            T.Iterator.next it;
            go ()
        | None -> ()
      in
      go ();
      List.rev !out = expected)

let prop_backward_iteration_sorted =
  QCheck.Test.make ~name:"backward iteration == reversed model" ~count:100
    ops_gen (fun ops ->
      let t = T.create ~config:tiny () in
      apply_tree t ops;
      let expected = List.rev (IntMap.bindings (apply_model ops)) in
      (* start past the end and walk back *)
      let it = T.Iterator.seek t max_int in
      T.Iterator.prev it;
      let out = ref [] in
      let rec go () =
        match T.Iterator.current it with
        | Some kv ->
            out := kv :: !out;
            T.Iterator.prev it;
            go ()
        | None -> ()
      in
      go ();
      List.rev !out = expected)

let prop_scan_matches_model_window =
  QCheck.Test.make ~name:"bounded scan == model window" ~count:100
    QCheck.(pair ops_gen (pair (int_bound 130) (int_bound 20)))
    (fun (ops, (start, len)) ->
      let t = T.create ~config:tiny () in
      apply_tree t ops;
      let model = apply_model ops in
      let expected =
        IntMap.bindings model
        |> List.filter (fun (k, _) -> k >= start)
        |> List.filteri (fun i _ -> i < len)
      in
      T.scan t ~n:len start = expected)

let prop_freeze_agrees =
  QCheck.Test.make ~name:"frozen tree == live tree" ~count:60 ops_gen
    (fun ops ->
      let t = T.create ~config:tiny () in
      apply_tree t ops;
      let fz = T.freeze t in
      let ok = ref true in
      for k = 0 to 130 do
        if T.frozen_lookup fz k <> T.lookup t k then ok := false
      done;
      !ok)

let prop_config_independence =
  (* the observable contents never depend on the physical configuration *)
  QCheck.Test.make ~name:"contents independent of configuration" ~count:60
    ops_gen (fun ops ->
      let reference =
        let t = T.create ~config:tiny () in
        apply_tree t ops;
        T.scan_all t ()
      in
      List.for_all
        (fun config ->
          let t = T.create ~config () in
          apply_tree t ops;
          T.scan_all t () = reference)
        [
          Bwtree.default_config;
          Bwtree.microsoft_config;
          { tiny with preallocate = false };
          { tiny with fast_consolidation = false };
          { tiny with search_shortcuts = false };
          { tiny with leaf_chain_max = 1; inner_chain_max = 1 };
          { tiny with leaf_max = 4; inner_max = 4; leaf_min = 1; inner_min = 1 };
        ])

(* execute_batch over arbitrary chunk sizes must be indistinguishable
   from applying the same ops one by one: same per-op results, same
   final contents. Keys are drawn from a small space so one batch
   regularly carries duplicate keys (the per-key submission-order
   guarantee) and ops of every kind. *)
let batch_op_of op v =
  match op with
  | 0 -> T.B_insert v
  | 1 -> T.B_delete v
  | 2 -> T.B_update v
  | 3 -> T.B_upsert v
  | _ -> T.B_get

let apply_point t (op, k, v) : T.batch_result =
  match op with
  | 0 -> T.R_applied (T.insert t k v)
  | 1 -> T.R_applied (T.delete t k v)
  | 2 -> T.R_applied (T.update t k v)
  | 3 -> T.R_applied (if T.update t k v then true else T.insert t k v)
  | _ -> T.R_values (T.lookup t k)

(* duplicate-value order inside a lookup is physical (delta order until
   a consolidation sorts the page), not part of the contract — compare
   value multisets *)
let norm_res = function
  | T.R_values vs -> T.R_values (List.sort compare vs)
  | r -> r

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take i acc = function
        | x :: tl when i < n -> take (i + 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let c, rest = take 0 [] l in
      c :: chunks n rest

let prop_batch_equals_sequential =
  QCheck.Test.make ~name:"execute_batch == sequential point ops" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 400)
           (triple (int_bound 4) (int_bound 25) (int_bound 1000)))
        (int_range 1 17))
    (fun (ops, bsize) ->
      let ts = T.create ~config:tiny () in
      let tb = T.create ~config:tiny () in
      let ok = ref true in
      List.iter
        (fun chunk ->
          let arr =
            Array.of_list
              (List.map (fun (op, k, v) -> (k, batch_op_of op v)) chunk)
          in
          let rb = T.execute_batch tb arr in
          List.iteri
            (fun i trip ->
              if norm_res (apply_point ts trip) <> norm_res rb.(i) then
                ok := false)
            chunk)
        (chunks bsize ops);
      T.verify_invariants tb;
      !ok && T.scan_all tb () = T.scan_all ts ())

(* Non-unique update/upsert replace "the first visible duplicate", which
   is physical chain order — not sequentially modelable (the stress
   harness folds update weight into inserts for the same reason). The
   non-unique equivalence property therefore sticks to the exact-pair
   ops: insert, delete, get. *)
let prop_batch_equals_sequential_non_unique =
  QCheck.Test.make ~name:"execute_batch == sequential (non-unique keys)"
    ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 300)
           (triple (int_bound 2) (int_bound 20) (int_bound 6)))
        (int_range 1 13))
    (fun (ops, bsize) ->
      let ops = List.map (fun (op, k, v) -> ((if op = 2 then 4 else op), k, v)) ops in
      let config = { tiny with unique_keys = false } in
      let ts = T.create ~config () in
      let tb = T.create ~config () in
      let ok = ref true in
      List.iter
        (fun chunk ->
          let arr =
            Array.of_list
              (List.map (fun (op, k, v) -> (k, batch_op_of op v)) chunk)
          in
          let rb = T.execute_batch tb arr in
          List.iteri
            (fun i trip ->
              if norm_res (apply_point ts trip) <> norm_res rb.(i) then
                ok := false)
            chunk)
        (chunks bsize ops);
      T.verify_invariants tb;
      !ok
      && List.sort compare (T.scan_all tb ())
         = List.sort compare (T.scan_all ts ()))

let prop_delete_is_inverse =
  QCheck.Test.make ~name:"insert then delete restores absence" ~count:150
    QCheck.(list_of_size (Gen.int_range 0 100) (int_bound 300))
    (fun keys ->
      let t = T.create ~config:tiny () in
      let distinct = List.sort_uniq compare keys in
      List.iter (fun k -> ignore (T.insert t k k)) keys;
      List.iter (fun k -> ignore (T.delete t k k)) keys;
      T.verify_invariants t;
      List.for_all (fun k -> T.lookup t k = []) distinct
      && T.cardinal t = 0)

let prop_non_unique_multiset =
  (* non-unique mode behaves as a set of (key, value) pairs *)
  let module PS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  QCheck.Test.make ~name:"non-unique mode == pair-set model" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 300)
        (triple bool (int_bound 25) (int_bound 6)))
    (fun ops ->
      let t =
        T.create ~config:{ tiny with unique_keys = false } ()
      in
      let model =
        List.fold_left
          (fun m (ins, k, v) ->
            if ins then begin
              ignore (T.insert t k v);
              PS.add (k, v) m
            end
            else begin
              ignore (T.delete t k v);
              PS.remove (k, v) m
            end)
          PS.empty ops
      in
      T.verify_invariants t;
      List.sort compare (T.scan_all t ()) = PS.elements model)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "bwtree-props"
    [
      ( "model",
        [
          q prop_model_agreement;
          q prop_invariants_hold;
          q prop_delete_is_inverse;
          q prop_non_unique_multiset;
        ] );
      ( "batch",
        [
          q prop_batch_equals_sequential;
          q prop_batch_equals_sequential_non_unique;
        ] );
      ( "iteration",
        [
          q prop_forward_iteration_sorted;
          q prop_backward_iteration_sorted;
          q prop_scan_matches_model_window;
        ] );
      ("ablation", [ q prop_freeze_agrees; q prop_config_independence ]);
    ]
