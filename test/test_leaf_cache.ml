(* Leaf-cache correctness: cached and uncached drivers must be
   observationally identical on single trees and on a range-partitioned
   forest (point ops, batches, merge-triggering deletes); the
   stamp/verify protocol must reject entries invalidated by a forced
   split; and [Runner.instrument] must be idempotent. *)

module D = Harness.Drivers
module Runner = Harness.Runner
module T = D.Bw_int

(* tiny nodes + a 16-slot cache: every run forces splits, merges,
   consolidations, bucket collisions and evictions *)
let config ~leaf_cache =
  Bwtree.Config.make ~leaf_max:8 ~inner_max:6 ~leaf_chain_max:4
    ~inner_chain_max:2 ~leaf_min:2 ~inner_min:2 ~leaf_cache
    ~leaf_cache_bits:4 ()

(* --- op sequences ----------------------------------------------------- *)

type op = Ins of int | Del of int | Upd of int | Get of int

let gen_ops =
  QCheck.(
    list_of_size
      (Gen.int_range 1 400)
      (map
         (fun (o, k) ->
           match o with
           | 0 -> Ins k
           | 1 -> Del k
           | 2 -> Upd k
           | _ -> Get k)
         (pair (int_bound 3) (int_bound 60))))

let apply (d : int Runner.driver) op =
  match op with
  | Ins k -> `B (d.Runner.insert ~tid:0 k (k + 1000))
  | Del k -> `B (d.Runner.remove ~tid:0 k)
  | Upd k -> `B (d.Runner.update ~tid:0 k (k + 2000))
  | Get k -> `V (d.Runner.read ~tid:0 k)

let sweep (d : int Runner.driver) =
  List.init 61 (fun k -> d.Runner.read ~tid:0 k)

(* run the same trace against both drivers; every op result and a final
   full sweep must agree *)
let equivalent mk ops =
  let cached = mk ~leaf_cache:true and plain = mk ~leaf_cache:false in
  List.for_all (fun op -> apply cached op = apply plain op) ops
  && sweep cached = sweep plain

let prop_point_equivalence =
  QCheck.Test.make ~name:"cached == uncached (single tree, point ops)"
    ~count:80 gen_ops
    (equivalent (fun ~leaf_cache ->
         D.bwtree_driver_int ~config:(config ~leaf_cache) ()))

let prop_forest_equivalence =
  QCheck.Test.make ~name:"cached == uncached (3-shard forest, point ops)"
    ~count:40 gen_ops
    (equivalent (fun ~leaf_cache ->
         D.bwtree_forest_int ~config:(config ~leaf_cache) ~lo:0 ~hi:61
           ~shards:3 ()))

(* batches: chunk the trace into groups of 8 and run them through the
   driver's native batch path (upserts included via update-then-insert
   semantics of the point fallback is avoided — both sides use their own
   batch implementation) *)
let batch_of = function
  | Ins k -> Index_iface.Bop_insert (k, k + 1000)
  | Del k -> Index_iface.Bop_remove k
  | Upd k -> Index_iface.Bop_update (k, k + 2000)
  | Get k -> Index_iface.Bop_read k

let rec chunks n = function
  | [] -> []
  | ops ->
      let rec take i acc = function
        | x :: tl when i < n -> take (i + 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let c, rest = take 0 [] ops in
      c :: chunks n rest

let equivalent_batched mk ops =
  let cached = mk ~leaf_cache:true and plain = mk ~leaf_cache:false in
  let run d c =
    let b = Array.of_list (List.map batch_of c) in
    Array.to_list (Index_iface.exec_batch d ~tid:0 b)
  in
  List.for_all (fun c -> run cached c = run plain c) (chunks 8 ops)
  && sweep cached = sweep plain

let prop_batch_equivalence =
  QCheck.Test.make ~name:"cached == uncached (single tree, batch 8)"
    ~count:80 gen_ops
    (equivalent_batched (fun ~leaf_cache ->
         D.bwtree_driver_int ~config:(config ~leaf_cache) ()))

let prop_forest_batch_equivalence =
  QCheck.Test.make ~name:"cached == uncached (3-shard forest, batch 8)"
    ~count:40 gen_ops
    (equivalent_batched (fun ~leaf_cache ->
         D.bwtree_forest_int ~config:(config ~leaf_cache) ~lo:0 ~hi:61
           ~shards:3 ()))

(* --- stamp validation across a forced split --------------------------- *)

(* Warm the cache on a handful of keys, then grow the tree until the
   SMO epoch moves (splits). Probing afterwards must never serve a
   wrong leaf: every lookup still agrees with the model, the harness
   oracle confirms surviving entries, and the counter accounting of the
   protocol holds (a failed re-validation is always an invalidation). *)
let test_stamp_rejects_across_split () =
  let t = T.create ~config:(config ~leaf_cache:true) () in
  for k = 0 to 7 do
    assert (T.insert t k k)
  done;
  for k = 0 to 7 do
    assert (T.lookup t k = [ k ]) (* fills cache entries *)
  done;
  let s0 = T.leaf_cache_stats t in
  Alcotest.(check bool) "cache warmed" true (s0.Bwtree.lc_hits >= 0);
  (* force splits: the 8-key leaves overflow many times over *)
  for k = 8 to 1_000 do
    assert (T.insert t k k)
  done;
  let s1 = T.leaf_cache_stats t in
  Alcotest.(check bool) "splits happened" true (s1.Bwtree.lc_smo_events > 0);
  for k = 0 to 1_000 do
    Alcotest.(check (list int))
      (Printf.sprintf "lookup %d after splits" k)
      [ k ] (T.lookup t k)
  done;
  for k = 0 to 1_000 do
    Alcotest.(check bool)
      (Printf.sprintf "oracle agrees at %d" k)
      true
      (T.leaf_cache_check t ~tid:0 k)
  done;
  let s2 = T.leaf_cache_stats t in
  Alcotest.(check bool) "hits recorded" true (s2.Bwtree.lc_hits > 0);
  Alcotest.(check bool) "stale <= invalidations + smo" true
    (s2.Bwtree.lc_stale_verifies
    <= s2.Bwtree.lc_invalidations + s2.Bwtree.lc_smo_events);
  Alcotest.(check bool) "occupancy within slots" true
    (s2.Bwtree.lc_occupied >= 0 && s2.Bwtree.lc_occupied <= s2.Bwtree.lc_slots)

(* the escape hatch: a disabled cache allocates no slots, counts
   nothing, and the probe path stays inert *)
let test_escape_hatch () =
  let t = T.create ~config:(config ~leaf_cache:false) () in
  for k = 0 to 200 do
    assert (T.insert t k k)
  done;
  for k = 0 to 200 do
    assert (T.lookup t k = [ k ])
  done;
  let s = T.leaf_cache_stats t in
  Alcotest.(check int) "no slots" 0 s.Bwtree.lc_slots;
  Alcotest.(check int) "no hits" 0 s.Bwtree.lc_hits;
  Alcotest.(check int) "no misses" 0 s.Bwtree.lc_misses;
  Alcotest.(check bool) "oracle trivially true" true
    (T.leaf_cache_check t ~tid:0 7)

(* --- Runner.instrument idempotency ------------------------------------ *)

let test_instrument_idempotent () =
  let reg = Bw_obs.create () in
  let s = Bw_obs.sink reg in
  let d = D.btree_driver_int () in
  Alcotest.(check bool) "null sink is identity" true
    (Runner.instrument Bw_obs.Null d == d);
  let w = Runner.instrument s d in
  Alcotest.(check bool) "live sink wraps" true (w != d);
  Alcotest.(check bool) "re-instrumenting a wrapper is identity" true
    (Runner.instrument s w == w);
  Alcotest.(check bool) "wrapper still wraps the original" true
    (Runner.instrument s d != d);
  (* the wrapper must still work after the registry bookkeeping *)
  assert (w.Runner.insert ~tid:0 1 10);
  Alcotest.(check (option int)) "read through wrapper" (Some 10)
    (w.Runner.read ~tid:0 1)

let () =
  Alcotest.run "leaf_cache"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_point_equivalence;
          QCheck_alcotest.to_alcotest prop_forest_equivalence;
          QCheck_alcotest.to_alcotest prop_batch_equivalence;
          QCheck_alcotest.to_alcotest prop_forest_batch_equivalence;
        ] );
      ( "stamp",
        [
          Alcotest.test_case "rejects across forced split" `Quick
            test_stamp_rejects_across_split;
          Alcotest.test_case "escape hatch" `Quick test_escape_hatch;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "idempotent" `Quick test_instrument_idempotent;
        ] );
    ]
