(* Tests for the lock-free skip list, in both tower policies. *)

module IK = Index_iface.Int_key
module IV = Index_iface.Int_value
module S = Skiplist.Make (IK) (IV)
module IntMap = Map.Make (Int)

let rng = Bw_util.Rng.create ~seed:0x51A9L

let with_list policy f =
  let t = S.create ~policy () in
  S.start_aux t;
  Fun.protect ~finally:(fun () -> S.stop_aux t) (fun () -> f t)

let test_basic policy () =
  with_list policy @@ fun t ->
  Alcotest.(check (option int)) "empty" None (S.lookup t ~tid:0 1);
  Alcotest.(check bool) "insert" true (S.insert t ~tid:0 1 10);
  Alcotest.(check bool) "dup" false (S.insert t ~tid:0 1 11);
  Alcotest.(check (option int)) "found" (Some 10) (S.lookup t ~tid:0 1);
  Alcotest.(check bool) "update" true (S.update t ~tid:0 1 20);
  Alcotest.(check (option int)) "updated" (Some 20) (S.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete" true (S.delete t ~tid:0 1);
  Alcotest.(check (option int)) "gone" None (S.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete again" false (S.delete t ~tid:0 1)

let test_delete_reinsert policy () =
  with_list policy @@ fun t ->
  for round = 1 to 5 do
    for k = 0 to 199 do
      Alcotest.(check bool) "insert" true (S.insert t ~tid:0 k round)
    done;
    for k = 0 to 199 do
      Alcotest.(check (option int)) "visible" (Some round) (S.lookup t ~tid:0 k)
    done;
    for k = 0 to 199 do
      Alcotest.(check bool) "delete" true (S.delete t ~tid:0 k)
    done
  done;
  Alcotest.(check int) "empty at end" 0 (S.cardinal t);
  S.verify_invariants t

let test_model policy () =
  with_list policy @@ fun t ->
  let model = ref IntMap.empty in
  for _ = 1 to 20_000 do
    let k = Bw_util.Rng.next_int rng 2_000 in
    match Bw_util.Rng.next_int rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        Alcotest.(check bool) "insert" expected (S.insert t ~tid:0 k (k * 3));
        if expected then model := IntMap.add k (k * 3) !model
    | 1 ->
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "delete" expected (S.delete t ~tid:0 k);
        model := IntMap.remove k !model
    | 2 ->
        let v = Bw_util.Rng.next_int rng 99 in
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "update" expected (S.update t ~tid:0 k v);
        if expected then model := IntMap.add k v !model
    | _ ->
        Alcotest.(check (option int)) "lookup" (IntMap.find_opt k !model)
          (S.lookup t ~tid:0 k)
  done;
  S.verify_invariants t;
  Alcotest.(check int) "cardinal" (IntMap.cardinal !model) (S.cardinal t)

let test_scan () =
  with_list Skiplist.Inline @@ fun t ->
  for k = 0 to 999 do
    assert (S.insert t ~tid:0 (k * 2) k)
  done;
  let collect k n =
    let acc = ref [] in
    let c = S.scan t ~tid:0 k ~n (fun k v -> acc := (k, v) :: !acc) in
    (c, List.rev !acc)
  in
  let c, items = collect 500 100 in
  Alcotest.(check int) "scan" 100 c;
  Alcotest.(check (list (pair int int)))
    "visited pairs in key order"
    (List.init 100 (fun i -> ((250 + i) * 2, 250 + i)))
    items;
  Alcotest.(check int) "scan tail" 10 (fst (collect 1_980 100))

let test_maintenance_builds_towers () =
  let t = S.create ~policy:Skiplist.Background () in
  for k = 0 to 9_999 do
    assert (S.insert t ~tid:0 k k)
  done;
  (* explicit maintenance pass instead of the timer *)
  S.maintenance_pass t;
  for k = 0 to 9_999 do
    assert (S.lookup t ~tid:0 k = Some k)
  done;
  S.verify_invariants t

let test_concurrent_inserts policy () =
  with_list policy @@ fun t ->
  let nthreads = 6 and per = 6_000 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = (i * nthreads) + tid in
              assert (S.insert t ~tid k k)
            done))
  in
  Array.iter Domain.join domains;
  S.verify_invariants t;
  Alcotest.(check int) "all inserted" (nthreads * per) (S.cardinal t)

let test_concurrent_contended () =
  with_list Skiplist.Inline @@ fun t ->
  let nthreads = 6 and nkeys = 2_000 in
  let wins = Atomic.make 0 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for k = 0 to nkeys - 1 do
              if S.insert t ~tid k tid then
                ignore (Atomic.fetch_and_add wins 1)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "single winner per key" nkeys (Atomic.get wins);
  S.verify_invariants t

let test_concurrent_insert_delete () =
  with_list Skiplist.Inline @@ fun t ->
  let nthreads = 4 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (tid + 31)) in
            for _ = 1 to 20_000 do
              let k = Bw_util.Rng.next_int rng 500 in
              if Bw_util.Rng.next_bool rng then ignore (S.insert t ~tid k k)
              else ignore (S.delete t ~tid k)
            done))
  in
  Array.iter Domain.join domains;
  S.verify_invariants t;
  (* whatever remains must be self-consistent *)
  let c = S.cardinal t in
  Alcotest.(check bool) "cardinal in range" true (c >= 0 && c <= 500)

let () =
  Alcotest.run "skiplist"
    [
      ( "inline",
        [
          Alcotest.test_case "basic" `Quick (test_basic Skiplist.Inline);
          Alcotest.test_case "delete/reinsert" `Quick
            (test_delete_reinsert Skiplist.Inline);
          Alcotest.test_case "model" `Slow (test_model Skiplist.Inline);
          Alcotest.test_case "scan" `Quick test_scan;
        ] );
      ( "background",
        [
          Alcotest.test_case "basic" `Quick (test_basic Skiplist.Background);
          Alcotest.test_case "delete/reinsert" `Quick
            (test_delete_reinsert Skiplist.Background);
          Alcotest.test_case "model" `Slow (test_model Skiplist.Background);
          Alcotest.test_case "maintenance builds towers" `Quick
            test_maintenance_builds_towers;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "inserts inline" `Slow
            (test_concurrent_inserts Skiplist.Inline);
          Alcotest.test_case "inserts background" `Slow
            (test_concurrent_inserts Skiplist.Background);
          Alcotest.test_case "contended single winner" `Slow
            test_concurrent_contended;
          Alcotest.test_case "insert/delete churn" `Slow
            test_concurrent_insert_delete;
        ] );
    ]
