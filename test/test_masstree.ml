(* Tests for Masstree: layer descent over 8-byte slices, terminal/layer
   coexistence, prefix-sharing keys, and concurrency. *)

module IK = Index_iface.Int_key
module SK = Index_iface.String_key
module IV = Index_iface.Int_value
module M = Masstree.Make (IK) (IV)
module MS = Masstree.Make (SK) (IV)
module IntMap = Map.Make (Int)

let rng = Bw_util.Rng.create ~seed:0x3A55L

let test_basic () =
  let t = M.create () in
  Alcotest.(check (option int)) "empty" None (M.lookup t ~tid:0 1);
  Alcotest.(check bool) "insert" true (M.insert t ~tid:0 1 10);
  Alcotest.(check bool) "dup" false (M.insert t ~tid:0 1 11);
  Alcotest.(check (option int)) "found" (Some 10) (M.lookup t ~tid:0 1);
  Alcotest.(check bool) "update" true (M.update t ~tid:0 1 20);
  Alcotest.(check (option int)) "updated" (Some 20) (M.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete" true (M.delete t ~tid:0 1);
  Alcotest.(check (option int)) "gone" None (M.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete again" false (M.delete t ~tid:0 1)

let test_model () =
  let t = M.create () in
  let model = ref IntMap.empty in
  for _ = 1 to 30_000 do
    let k = Bw_util.Rng.next_int rng 5_000 in
    match Bw_util.Rng.next_int rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        Alcotest.(check bool) "insert" expected (M.insert t ~tid:0 k (k * 3));
        if expected then model := IntMap.add k (k * 3) !model
    | 1 ->
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "delete" expected (M.delete t ~tid:0 k);
        model := IntMap.remove k !model
    | 2 ->
        let v = Bw_util.Rng.next_int rng 99 in
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "update" expected (M.update t ~tid:0 k v);
        if expected then model := IntMap.add k v !model
    | _ ->
        Alcotest.(check (option int)) "lookup" (IntMap.find_opt k !model)
          (M.lookup t ~tid:0 k)
  done;
  Alcotest.(check int) "cardinal" (IntMap.cardinal !model) (M.cardinal t)

let test_layer_descent () =
  (* 32-byte email keys span 4 slices, so shared-prefix keys force deeper
     layers; keys sharing 3 slices must coexist *)
  let t = MS.create () in
  let base = String.make 24 'x' in
  let keys = List.init 50 (fun i -> base ^ Printf.sprintf "%08d" i) in
  List.iteri (fun i k -> assert (MS.insert t ~tid:0 k i)) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check (option int)) "deep layer lookup" (Some i)
        (MS.lookup t ~tid:0 k))
    keys;
  Alcotest.(check int) "cardinal" 50 (MS.cardinal t)

let test_prefix_keys_coexist () =
  (* a key that is a strict prefix of another (different slice counts and
     same padded slices) must not collide *)
  let t = MS.create () in
  assert (MS.insert t ~tid:0 "abc" 1);
  assert (MS.insert t ~tid:0 "abc\x00\x00" 2);
  assert (MS.insert t ~tid:0 "abcdefgh" 3);
  assert (MS.insert t ~tid:0 "abcdefghi" 4);
  Alcotest.(check (option int)) "short" (Some 1) (MS.lookup t ~tid:0 "abc");
  Alcotest.(check (option int)) "padded twin" (Some 2)
    (MS.lookup t ~tid:0 "abc\x00\x00");
  Alcotest.(check (option int)) "exactly one slice" (Some 3)
    (MS.lookup t ~tid:0 "abcdefgh");
  Alcotest.(check (option int)) "into second slice" (Some 4)
    (MS.lookup t ~tid:0 "abcdefghi");
  Alcotest.(check bool) "delete prefix" true (MS.delete t ~tid:0 "abc");
  Alcotest.(check (option int)) "twin survives" (Some 2)
    (MS.lookup t ~tid:0 "abc\x00\x00")

let test_email_corpus () =
  let t = MS.create () in
  for i = 0 to 9_999 do
    assert (MS.insert t ~tid:0 (Workload.email_key_of i) i)
  done;
  for i = 0 to 9_999 do
    assert (MS.lookup t ~tid:0 (Workload.email_key_of i) = Some i)
  done;
  Alcotest.(check int) "cardinal" 10_000 (MS.cardinal t)

let test_scan_counts () =
  let t = M.create () in
  for k = 0 to 999 do
    assert (M.insert t ~tid:0 (k * 2) k)
  done;
  let collect k n =
    let acc = ref [] in
    let c = M.scan t ~tid:0 k ~n (fun k v -> acc := (k, v) :: !acc) in
    (c, List.rev !acc)
  in
  let c, items = collect 500 100 in
  Alcotest.(check int) "scan" 100 c;
  Alcotest.(check (list (pair int int)))
    "visited pairs in key order"
    (List.init 100 (fun i -> ((250 + i) * 2, 250 + i)))
    items;
  Alcotest.(check int) "scan tail" 10 (fst (collect 1_980 100));
  Alcotest.(check int) "scan past end" 0 (fst (collect 10_000 100))

let test_concurrent_inserts () =
  let t = M.create () in
  let nthreads = 6 and per = 8_000 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = (i * nthreads) + tid in
              assert (M.insert t ~tid k k)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all inserted" (nthreads * per) (M.cardinal t);
  for k = 0 to (nthreads * per) - 1 do
    assert (M.lookup t ~tid:0 k = Some k)
  done

let test_concurrent_mixed () =
  let t = M.create () in
  for k = 0 to 1_999 do
    assert (M.insert t ~tid:0 k k)
  done;
  let nthreads = 6 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (tid + 13)) in
            for _ = 1 to 15_000 do
              let k = Bw_util.Rng.next_int rng 4_000 in
              match Bw_util.Rng.next_int rng 4 with
              | 0 -> ignore (M.insert t ~tid k k)
              | 1 -> ignore (M.delete t ~tid k)
              | 2 -> ignore (M.update t ~tid k (k + 1))
              | _ -> ignore (M.lookup t ~tid k)
            done))
  in
  Array.iter Domain.join domains;
  for k = 0 to 3_999 do
    match M.lookup t ~tid:0 k with
    | None -> ()
    | Some v ->
        Alcotest.(check bool) "value provenance" true (v = k || v = k + 1)
  done

let test_concurrent_string_inserts () =
  let t = MS.create () in
  let nthreads = 4 and per = 4_000 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = Workload.email_key_of ((i * nthreads) + tid) in
              assert (MS.insert t ~tid k i)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all inserted" (nthreads * per) (MS.cardinal t)

let () =
  Alcotest.run "masstree"
    [
      ( "single-thread",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "model" `Slow test_model;
          Alcotest.test_case "scan" `Quick test_scan_counts;
        ] );
      ( "layers",
        [
          Alcotest.test_case "deep descent" `Quick test_layer_descent;
          Alcotest.test_case "prefix keys coexist" `Quick
            test_prefix_keys_coexist;
          Alcotest.test_case "email corpus" `Slow test_email_corpus;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Slow test_concurrent_inserts;
          Alcotest.test_case "mixed" `Slow test_concurrent_mixed;
          Alcotest.test_case "string inserts" `Slow
            test_concurrent_string_inserts;
        ] );
    ]
