(* Single-threaded functional tests for the Bw-Tree: model-based checks
   against Stdlib.Map, SMO coverage, iterators, non-unique keys, the
   consolidation-equivalence property, and the §6.3 ablation hooks. *)

module IK = Index_iface.Int_key
module IV = Index_iface.Int_value
module T = Bwtree.Make (IK) (IV)
module SK = Index_iface.String_key
module TS = Bwtree.Make (SK) (IV)
module IntMap = Map.Make (Int)

let rng = Bw_util.Rng.create ~seed:0xBEEFL

(* a tiny-node config that forces frequent splits, merges and
   consolidations so SMO paths get heavy coverage even in small tests *)
let tiny =
  Bwtree.Config.make ~leaf_max:8 ~inner_max:6 ~leaf_chain_max:4
    ~inner_chain_max:2 ~leaf_min:2 ~inner_min:2 ()

let all_configs =
  [
    ("default", Bwtree.default_config);
    ("microsoft", Bwtree.microsoft_config);
    ("tiny", tiny);
    ("no-prealloc", Bwtree.Config.make ~preallocate:false ());
    ("no-fc", Bwtree.Config.make ~fast_consolidation:false ());
    ("no-ss", Bwtree.Config.make ~search_shortcuts:false ());
    ("gc-centralized",
     Bwtree.Config.make ~gc_scheme:Epoch.Centralized ());
    ("gc-off", Bwtree.Config.make ~gc_scheme:Epoch.Disabled ());
  ]

(* --- basic semantics --- *)

let test_empty () =
  let t = T.create () in
  Alcotest.(check (list int)) "lookup empty" [] (T.lookup t 1);
  Alcotest.(check bool) "delete empty" false (T.delete t 1 1);
  Alcotest.(check bool) "update empty" false (T.update t 1 1);
  Alcotest.(check int) "cardinal" 0 (T.cardinal t);
  Alcotest.(check (list (pair int int))) "scan empty" [] (T.scan t ~n:10 0);
  T.verify_invariants t

let test_single_key () =
  let t = T.create () in
  Alcotest.(check bool) "insert" true (T.insert t 5 50);
  Alcotest.(check bool) "duplicate rejected" false (T.insert t 5 51);
  Alcotest.(check (list int)) "lookup" [ 50 ] (T.lookup t 5);
  Alcotest.(check bool) "update" true (T.update t 5 55);
  Alcotest.(check (list int)) "updated" [ 55 ] (T.lookup t 5);
  Alcotest.(check bool) "delete" true (T.delete t 5 55);
  Alcotest.(check (list int)) "gone" [] (T.lookup t 5);
  Alcotest.(check bool) "delete again" false (T.delete t 5 55);
  T.verify_invariants t

let test_negative_and_extreme_keys () =
  let t = T.create () in
  let keys = [ min_int; -1000; -1; 0; 1; 1000; max_int ] in
  List.iter (fun k -> assert (T.insert t k (k lxor 7))) keys;
  List.iter
    (fun k -> Alcotest.(check (list int)) "roundtrip" [ k lxor 7 ] (T.lookup t k))
    keys;
  Alcotest.(check (list (pair int int)))
    "sorted scan"
    (List.map (fun k -> (k, k lxor 7)) keys)
    (T.scan_all t ());
  T.verify_invariants t

(* --- model-based random operations, across all configurations --- *)

let model_ops config () =
  let t = T.create ~config () in
  let model = ref IntMap.empty in
  let n_ops = 6_000 in
  for _ = 1 to n_ops do
    let k = Bw_util.Rng.next_int rng 800 in
    match Bw_util.Rng.next_int rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        Alcotest.(check bool) "insert result" expected (T.insert t k (k * 3));
        if expected then model := IntMap.add k (k * 3) !model
    | 1 ->
        let v = Bw_util.Rng.next_int rng 10_000 in
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "update result" expected (T.update t k v);
        if expected then model := IntMap.add k v !model
    | 2 ->
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "delete result" expected (T.delete t k 0);
        model := IntMap.remove k !model
    | _ ->
        let expected =
          match IntMap.find_opt k !model with None -> [] | Some v -> [ v ]
        in
        Alcotest.(check (list int)) "lookup" expected (T.lookup t k)
  done;
  T.verify_invariants t;
  (* final full agreement *)
  Alcotest.(check (list (pair int int)))
    "full contents" (IntMap.bindings !model)
    (T.scan_all t ())

(* --- SMO coverage: growth and shrink --- *)

let test_split_cascade () =
  let t = T.create ~config:tiny () in
  for k = 0 to 2_000 do
    assert (T.insert t k k)
  done;
  let ss = T.structure_stats t in
  Alcotest.(check bool) "tree grew" true (ss.depth >= 3);
  let os = T.op_stats t in
  Alcotest.(check bool) "splits happened" true (os.splits > 50);
  T.verify_invariants t;
  for k = 0 to 2_000 do
    assert (T.lookup t k = [ k ])
  done

let test_merge_cascade () =
  let t = T.create ~config:tiny () in
  for k = 0 to 2_000 do
    assert (T.insert t k k)
  done;
  for k = 0 to 2_000 do
    if k mod 50 <> 0 then assert (T.delete t k k)
  done;
  let os = T.op_stats t in
  Alcotest.(check bool) "merges happened" true (os.merges > 10);
  T.verify_invariants t;
  for k = 0 to 2_000 do
    let expect = if k mod 50 = 0 then [ k ] else [] in
    Alcotest.(check (list int)) "post-merge lookup" expect (T.lookup t k)
  done;
  (* most of the structure must have collapsed (from ~1500 leaves); what
     remains includes leftmost children, which per §2.4 may only merge
     into a left sibling and can therefore strand *)
  let ss = T.structure_stats t in
  Alcotest.(check bool) "most leaves merged away" true (ss.leaf_nodes < 150)

let test_reverse_insert () =
  let t = T.create ~config:tiny () in
  for k = 2_000 downto 0 do
    assert (T.insert t k k)
  done;
  T.verify_invariants t;
  Alcotest.(check int) "cardinal" 2_001 (T.cardinal t)

(* --- consolidation equivalence: fast path == slow path --- *)

let prop_consolidation_equivalence =
  (* the same operation sequence applied with and without §4.3/§4.4
     optimizations must produce identical contents *)
  let gen =
    QCheck.(list_of_size (Gen.int_range 1 300) (pair (int_bound 3) (int_bound 60)))
  in
  QCheck.Test.make ~name:"fast consolidation == slow consolidation" ~count:60
    gen (fun ops ->
      let mk config =
        let t = T.create ~config () in
        List.iter
          (fun (op, k) ->
            match op with
            | 0 -> ignore (T.insert t k (k + 1000))
            | 1 -> ignore (T.delete t k 0)
            | 2 -> ignore (T.update t k (k + 2000))
            | _ -> ignore (T.lookup t k))
          ops;
        T.consolidate_all t;
        T.scan_all t ()
      in
      let fast = mk { tiny with fast_consolidation = true } in
      let slow = mk { tiny with fast_consolidation = false } in
      fast = slow)

(* --- non-unique keys (§3.1) --- *)

let nuniq = Bwtree.Config.make ~unique_keys:false ()

let test_non_unique_basic () =
  let t = T.create ~config:nuniq () in
  Alcotest.(check bool) "v1" true (T.insert t 1 10);
  Alcotest.(check bool) "v2" true (T.insert t 1 20);
  Alcotest.(check bool) "v3" true (T.insert t 1 30);
  Alcotest.(check bool) "dup pair rejected" false (T.insert t 1 20);
  Alcotest.(check (list int)) "all values" [ 10; 20; 30 ]
    (List.sort compare (T.lookup t 1));
  Alcotest.(check bool) "delete one value" true (T.delete t 1 20);
  Alcotest.(check (list int)) "two left" [ 10; 30 ]
    (List.sort compare (T.lookup t 1));
  Alcotest.(check bool) "delete absent value" false (T.delete t 1 20);
  T.verify_invariants t

let test_non_unique_visibility_chain () =
  (* exercise the §3.1 S_present / S_deleted walk within one delta chain *)
  let t = T.create ~config:{ nuniq with leaf_chain_max = 32 } () in
  assert (T.insert t 7 1);
  assert (T.insert t 7 2);
  assert (T.delete t 7 1);
  assert (T.insert t 7 3);
  assert (T.delete t 7 3);
  assert (T.insert t 7 1);
  Alcotest.(check (list int)) "visible set" [ 1; 2 ]
    (List.sort compare (T.lookup t 7));
  T.consolidate_all t;
  Alcotest.(check (list int)) "after consolidation" [ 1; 2 ]
    (List.sort compare (T.lookup t 7));
  T.verify_invariants t

let test_non_unique_model () =
  (* model: a set of (key, value) pairs *)
  let t = T.create ~config:{ nuniq with leaf_max = 16; leaf_min = 2 } () in
  let module PS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let model = ref PS.empty in
  for _ = 1 to 5_000 do
    let k = Bw_util.Rng.next_int rng 50 in
    let v = Bw_util.Rng.next_int rng 8 in
    if Bw_util.Rng.next_bool rng then begin
      let expected = not (PS.mem (k, v) !model) in
      Alcotest.(check bool) "nu insert" expected (T.insert t k v);
      model := PS.add (k, v) !model
    end
    else begin
      let expected = PS.mem (k, v) !model in
      Alcotest.(check bool) "nu delete" expected (T.delete t k v);
      model := PS.remove (k, v) !model
    end
  done;
  T.verify_invariants t;
  Alcotest.(check (list (pair int int)))
    "nu contents" (PS.elements !model)
    (List.sort compare (T.scan_all t ()))

(* --- iterators (§3.2, Appendix C) --- *)

let test_iterator_forward () =
  let t = T.create ~config:tiny () in
  for k = 0 to 500 do
    assert (T.insert t (k * 2) k)
  done;
  (* seek exact, seek between keys, seek past end *)
  let it = T.Iterator.seek t 100 in
  (match T.Iterator.current it with
  | Some (k, _) -> Alcotest.(check int) "seek exact" 100 k
  | None -> Alcotest.fail "expected item");
  let it = T.Iterator.seek t 101 in
  (match T.Iterator.current it with
  | Some (k, _) -> Alcotest.(check int) "seek rounds up" 102 k
  | None -> Alcotest.fail "expected item");
  let it = T.Iterator.seek t 10_000 in
  Alcotest.(check bool) "past end" true (T.Iterator.current it = None);
  (* full forward walk *)
  let it = T.Iterator.seek_first t () in
  let count = ref 0 and last = ref (-1) in
  let rec go () =
    match T.Iterator.current it with
    | Some (k, _) ->
        Alcotest.(check bool) "ascending" true (k > !last);
        last := k;
        incr count;
        T.Iterator.next it;
        go ()
    | None -> ()
  in
  go ();
  Alcotest.(check int) "walked all" 501 !count

let test_iterator_backward () =
  let t = T.create ~config:tiny () in
  for k = 0 to 500 do
    assert (T.insert t (k * 2) k)
  done;
  let it = T.Iterator.seek t 500 in
  let count = ref 0 and last = ref max_int in
  let rec go () =
    match T.Iterator.current it with
    | Some (k, _) ->
        Alcotest.(check bool) "descending" true (k < !last);
        last := k;
        incr count;
        T.Iterator.prev it;
        go ()
    | None -> ()
  in
  go ();
  (* keys 0,2,...,500 -> 251 items at or below 500 *)
  Alcotest.(check int) "walked down" 251 !count

let test_iterator_bidirectional () =
  let t = T.create ~config:tiny () in
  for k = 1 to 100 do
    assert (T.insert t k k)
  done;
  let it = T.Iterator.seek t 50 in
  T.Iterator.next it;
  T.Iterator.next it;
  T.Iterator.prev it;
  (match T.Iterator.current it with
  | Some (k, _) -> Alcotest.(check int) "zig-zag" 51 k
  | None -> Alcotest.fail "expected item");
  T.Iterator.prev it;
  T.Iterator.prev it;
  (match T.Iterator.current it with
  | Some (k, _) -> Alcotest.(check int) "back to 49" 49 k
  | None -> Alcotest.fail "expected item")

let test_scan_bounded () =
  let t = T.create () in
  for k = 0 to 999 do
    assert (T.insert t k k)
  done;
  let items = T.scan t ~n:48 100 in
  Alcotest.(check int) "scan length" 48 (List.length items);
  Alcotest.(check int) "scan start" 100 (fst (List.hd items));
  let items = T.scan t ~n:100 980 in
  Alcotest.(check int) "truncated at end" 20 (List.length items)

(* --- §6.3 ablation hooks --- *)

let test_freeze_equivalence () =
  let t = T.create ~config:tiny () in
  for _ = 1 to 2_000 do
    let k = Bw_util.Rng.next_int rng 3_000 in
    ignore (T.insert t k (k * 7))
  done;
  let frozen = T.freeze t in
  for k = 0 to 3_000 do
    Alcotest.(check (list int)) "frozen == live" (T.lookup t k)
      (T.frozen_lookup frozen k)
  done

let test_consolidate_all_flattens () =
  let t = T.create ~config:tiny () in
  for k = 0 to 500 do
    assert (T.insert t k k)
  done;
  T.consolidate_all t;
  let ss = T.structure_stats t in
  Alcotest.(check (float 0.001)) "leaf chains empty" 0.0 ss.avg_leaf_chain;
  Alcotest.(check (float 0.001)) "inner chains empty" 0.0 ss.avg_inner_chain;
  for k = 0 to 500 do
    assert (T.lookup t k = [ k ])
  done

let test_inplace_leaf_updates () =
  let config = Bwtree.Config.make ~inplace_leaf_update:true () in
  let t = T.create ~config () in
  for k = 0 to 2_000 do
    assert (T.insert t k k)
  done;
  T.verify_invariants t;
  for k = 0 to 2_000 do
    assert (T.lookup t k = [ k ])
  done;
  (* delta chains should be essentially absent on leaves *)
  let ss = T.structure_stats t in
  Alcotest.(check bool) "short leaf chains" true (ss.avg_leaf_chain < 1.0)

let test_no_cas_config () =
  let config = Bwtree.Config.make ~use_atomic_cas:false () in
  let t = T.create ~config () in
  for k = 0 to 1_000 do
    assert (T.insert t k k)
  done;
  for k = 0 to 1_000 do
    assert (T.lookup t k = [ k ])
  done;
  T.verify_invariants t

(* --- statistics and introspection --- *)

let test_stats_sanity () =
  let t = T.create ~config:tiny () in
  for k = 0 to 999 do
    assert (T.insert t k k)
  done;
  ignore (T.lookup t 5);
  ignore (T.update t 5 99);
  ignore (T.delete t 5 99);
  let os = T.op_stats t in
  Alcotest.(check int) "inserts" 1000 os.inserts;
  Alcotest.(check int) "lookups" 1 os.lookups;
  Alcotest.(check int) "updates" 1 os.updates;
  Alcotest.(check int) "deletes" 1 os.deletes;
  Alcotest.(check bool) "consolidations" true (os.consolidations > 0);
  let ss = T.structure_stats t in
  Alcotest.(check bool) "leaf count plausible" true
    (ss.leaf_nodes * tiny.leaf_max >= 999);
  let ms = T.mapping_table_stats t in
  Alcotest.(check bool) "ids allocated" true (ms.allocated > ss.leaf_nodes);
  Alcotest.(check bool) "chunks faulted" true (ms.chunks >= 1);
  Alcotest.(check bool)
    "within capacity" true
    (ms.allocated < ms.table_capacity);
  Alcotest.(check bool) "freed sane" true (ms.freed >= 0);
  Alcotest.(check bool) "memory measured" true (T.memory_words t > 1000)

let test_gc_integration () =
  let t = T.create ~config:{ tiny with gc_threshold = 4 } () in
  for k = 0 to 5_000 do
    assert (T.insert t k k)
  done;
  T.quiesce t ~tid:0;
  T.gc_advance t;
  Epoch.flush (T.epoch t);
  let s = Epoch.stats (T.epoch t) in
  Alcotest.(check bool) "consolidations retired garbage" true (s.retired > 0);
  Alcotest.(check int) "all reclaimed at quiescence" 0
    (Epoch.pending (T.epoch t))

(* --- string keys --- *)

let test_string_keys () =
  let t = TS.create ~config:tiny () in
  let emails = Array.init 2_000 Workload.email_key_of in
  Array.iteri (fun i e -> ignore (TS.insert t e i)) emails;
  Array.iteri
    (fun i e ->
      match TS.lookup t e with
      | [ v ] -> Alcotest.(check bool) "some insert won" true (v >= 0 && i >= 0)
      | [] -> Alcotest.fail "lost key"
      | _ -> Alcotest.fail "duplicate")
    emails;
  TS.verify_invariants t;
  (* scan order is lexicographic *)
  let all = TS.scan_all t () in
  let keys = List.map fst all in
  Alcotest.(check bool) "sorted" true
    (List.sort compare keys = keys)

(* --- boundary conditions --- *)

let test_iterator_empty_tree () =
  let t = T.create () in
  let it = T.Iterator.seek_first t () in
  Alcotest.(check bool) "empty current" true (T.Iterator.current it = None);
  T.Iterator.next it;
  T.Iterator.prev it;
  Alcotest.(check bool) "still empty" true (T.Iterator.current it = None);
  let it2 = T.Iterator.seek t 42 in
  T.Iterator.prev it2;
  Alcotest.(check bool) "empty backward" true (T.Iterator.current it2 = None)

let test_iterator_reverses_at_ends () =
  let t = T.create () in
  for k = 1 to 10 do
    assert (T.insert t k k)
  done;
  (* walk off the right end, then back in *)
  let it = T.Iterator.seek t 10 in
  T.Iterator.next it;
  Alcotest.(check bool) "past end" true (T.Iterator.current it = None);
  T.Iterator.prev it;
  (match T.Iterator.current it with
  | Some (k, _) -> Alcotest.(check int) "back to last" 10 k
  | None -> Alcotest.fail "expected last item");
  (* walk off the left end, then back in *)
  let it = T.Iterator.seek t 1 in
  T.Iterator.prev it;
  Alcotest.(check bool) "before begin" true (T.Iterator.current it = None);
  T.Iterator.next it;
  (match T.Iterator.current it with
  | Some (k, _) -> Alcotest.(check int) "back to first" 1 k
  | None -> Alcotest.fail "expected first item")

let test_scan_zero_and_negative_bounds () =
  let t = T.create () in
  for k = 0 to 99 do
    assert (T.insert t k k)
  done;
  Alcotest.(check (list (pair int int))) "n=0" [] (T.scan t ~n:0 10);
  Alcotest.(check int) "negative start clamps to first" 100
    (List.length (T.scan t min_int))

let test_update_preserves_size_accounting () =
  let t = T.create ~config:tiny () in
  for k = 0 to 99 do
    assert (T.insert t k k)
  done;
  for _ = 1 to 10 do
    for k = 0 to 99 do
      assert (T.update t k (k + 1))
    done
  done;
  (* updates must not inflate node sizes or trigger bogus splits *)
  T.verify_invariants t;
  Alcotest.(check int) "cardinal stable" 100 (T.cardinal t)

(* --- debugging surface --- *)

let test_dump_renders () =
  let t = T.create ~config:tiny () in
  for k = 0 to 200 do
    ignore (T.insert t k k)
  done;
  ignore (T.delete t 7 7);
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  T.dump t ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions leaves" true
    (String.length out > 100);
  (* the root line and at least one delta op should be present *)
  Alcotest.(check bool) "shows inner node" true
    (String.length out > 0 && String.sub out 0 5 = "inner")

let test_counters_wiring () =
  let c = Bw_util.Counters.global in
  Bw_util.Counters.reset c;
  Bw_util.Counters.enabled := true;
  let t = T.create () in
  for k = 0 to 99 do
    ignore (T.insert t k k)
  done;
  ignore (T.lookup t 50);
  Bw_util.Counters.enabled := false;
  Alcotest.(check bool) "cas counted" true
    (Bw_util.Counters.read c Bw_util.Counters.Cas_attempt >= 100);
  Alcotest.(check bool) "derefs counted" true
    (Bw_util.Counters.read c Bw_util.Counters.Pointer_deref > 0);
  Bw_util.Counters.reset c

let test_iter_nodes_consistent () =
  let t = T.create ~config:tiny () in
  for k = 0 to 999 do
    ignore (T.insert t k k)
  done;
  let leaves = ref 0 and inners = ref 0 and items = ref 0 in
  T.iter_nodes t (fun ~leaf ~chain:_ ~size ->
      if leaf then begin
        incr leaves;
        items := !items + size
      end
      else incr inners);
  let ss = T.structure_stats t in
  Alcotest.(check int) "leaf count" ss.leaf_nodes !leaves;
  Alcotest.(check int) "inner count" ss.inner_nodes !inners;
  Alcotest.(check int) "total items" 1000 !items

(* --- config validation --- *)

let test_config_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  (* default leaf_min is 16, so shrinking leaf_max alone is incoherent *)
  expect_invalid "leaf_min >= leaf_max" (fun () ->
      Bwtree.Config.make ~leaf_max:8 ());
  expect_invalid "inner_min >= inner_max" (fun () ->
      Bwtree.Config.make ~inner_max:4 ());
  expect_invalid "leaf_chain_max < 1" (fun () ->
      Bwtree.Config.make ~leaf_chain_max:0 ());
  expect_invalid "gc_threshold < 1" (fun () ->
      Bwtree.Config.make ~gc_threshold:0 ());
  expect_invalid "max_threads < 1" (fun () ->
      Bwtree.Config.make ~max_threads:0 ());
  (* [create] re-validates raw record updates *)
  expect_invalid "create rejects raw incoherent record" (fun () ->
      T.create ~config:{ Bwtree.default_config with leaf_max = 4 } ());
  (* coherent settings pass, including via ?base *)
  let tiny' = Bwtree.Config.make ~leaf_max:8 ~leaf_min:2 () in
  Alcotest.(check int) "make applies field" 8 tiny'.Bwtree.leaf_max;
  let derived = Bwtree.Config.make ~base:tiny ~unique_keys:false () in
  Alcotest.(check bool) "base carried" true (derived.Bwtree.leaf_max = 8)

(* --- upsert --- *)

let test_upsert () =
  let t = T.create () in
  T.upsert t 1 10;
  T.upsert t 1 20;
  Alcotest.(check (list int)) "upsert replaces" [ 20 ] (T.lookup t 1)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "bwtree"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single key" `Quick test_single_key;
          Alcotest.test_case "extreme keys" `Quick
            test_negative_and_extreme_keys;
          Alcotest.test_case "upsert" `Quick test_upsert;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "model",
        List.map
          (fun (name, config) ->
            Alcotest.test_case ("random ops: " ^ name) `Slow (model_ops config))
          all_configs );
      ( "smo",
        [
          Alcotest.test_case "split cascade" `Quick test_split_cascade;
          Alcotest.test_case "merge cascade" `Quick test_merge_cascade;
          Alcotest.test_case "reverse insert" `Quick test_reverse_insert;
        ] );
      ("consolidation", [ q prop_consolidation_equivalence ]);
      ( "non-unique",
        [
          Alcotest.test_case "basic" `Quick test_non_unique_basic;
          Alcotest.test_case "visibility chain" `Quick
            test_non_unique_visibility_chain;
          Alcotest.test_case "model" `Slow test_non_unique_model;
        ] );
      ( "iterator",
        [
          Alcotest.test_case "forward" `Quick test_iterator_forward;
          Alcotest.test_case "backward" `Quick test_iterator_backward;
          Alcotest.test_case "bidirectional" `Quick test_iterator_bidirectional;
          Alcotest.test_case "bounded scan" `Quick test_scan_bounded;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "freeze equivalence" `Quick test_freeze_equivalence;
          Alcotest.test_case "consolidate_all" `Quick
            test_consolidate_all_flattens;
          Alcotest.test_case "in-place updates" `Quick test_inplace_leaf_updates;
          Alcotest.test_case "no-cas config" `Quick test_no_cas_config;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "stats" `Quick test_stats_sanity;
          Alcotest.test_case "gc integration" `Quick test_gc_integration;
        ] );
      ("strings", [ Alcotest.test_case "email keys" `Quick test_string_keys ]);
      ( "boundaries",
        [
          Alcotest.test_case "iterator on empty tree" `Quick
            test_iterator_empty_tree;
          Alcotest.test_case "iterator reverses at ends" `Quick
            test_iterator_reverses_at_ends;
          Alcotest.test_case "scan bounds" `Quick
            test_scan_zero_and_negative_bounds;
          Alcotest.test_case "update size accounting" `Quick
            test_update_preserves_size_accounting;
        ] );
      ( "debugging",
        [
          Alcotest.test_case "dump renders" `Quick test_dump_renders;
          Alcotest.test_case "counters wiring" `Quick test_counters_wiring;
          Alcotest.test_case "iter_nodes" `Quick test_iter_nodes_consistent;
        ] );
    ]
