(* Tests for ART with optimistic lock coupling: node growth through all
   four layouts, path compression splits, ordered scans, deletions, and
   concurrency. *)

module IK = Index_iface.Int_key
module SK = Index_iface.String_key
module IV = Index_iface.Int_value
module A = Art_olc.Make (IK) (IV)
module AS = Art_olc.Make (SK) (IV)
module IntMap = Map.Make (Int)

let rng = Bw_util.Rng.create ~seed:0xA27L

let test_basic () =
  let t = A.create () in
  Alcotest.(check (option int)) "empty" None (A.lookup t ~tid:0 1);
  Alcotest.(check bool) "insert" true (A.insert t ~tid:0 1 10);
  Alcotest.(check bool) "dup" false (A.insert t ~tid:0 1 11);
  Alcotest.(check (option int)) "found" (Some 10) (A.lookup t ~tid:0 1);
  Alcotest.(check bool) "update" true (A.update t ~tid:0 1 20);
  Alcotest.(check (option int)) "updated" (Some 20) (A.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete" true (A.delete t ~tid:0 1);
  Alcotest.(check (option int)) "gone" None (A.lookup t ~tid:0 1)

let test_node_growth () =
  (* keys 0..N with a common 7-byte prefix differ in the last byte only,
     forcing one node to grow N4 -> N16 -> N48 -> N256 *)
  let t = A.create () in
  for b = 0 to 255 do
    assert (A.insert t ~tid:0 b b)
  done;
  for b = 0 to 255 do
    Alcotest.(check (option int)) "dense byte fan-out" (Some b)
      (A.lookup t ~tid:0 b)
  done;
  Alcotest.(check int) "cardinal" 256 (A.cardinal t)

let test_path_compression_split () =
  (* widely-spaced keys share long prefixes; inserting a key that diverges
     inside a compressed path must split it *)
  let t = A.create () in
  let keys = [ 0; 1 lsl 56; (1 lsl 56) + 1; 1 lsl 40; 255 ] in
  List.iter (fun k -> assert (A.insert t ~tid:0 k k)) keys;
  List.iter
    (fun k -> Alcotest.(check (option int)) "after splits" (Some k)
        (A.lookup t ~tid:0 k))
    keys

let test_model () =
  let t = A.create () in
  let model = ref IntMap.empty in
  for _ = 1 to 30_000 do
    let k = Bw_util.Rng.next_int rng 5_000 in
    match Bw_util.Rng.next_int rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        Alcotest.(check bool) "insert" expected (A.insert t ~tid:0 k (k * 3));
        if expected then model := IntMap.add k (k * 3) !model
    | 1 ->
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "delete" expected (A.delete t ~tid:0 k);
        model := IntMap.remove k !model
    | 2 ->
        let v = Bw_util.Rng.next_int rng 99 in
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "update" expected (A.update t ~tid:0 k v);
        if expected then model := IntMap.add k v !model
    | _ ->
        Alcotest.(check (option int)) "lookup" (IntMap.find_opt k !model)
          (A.lookup t ~tid:0 k)
  done;
  Alcotest.(check int) "cardinal" (IntMap.cardinal !model) (A.cardinal t)

let test_scan_counts () =
  let t = A.create () in
  for k = 0 to 999 do
    assert (A.insert t ~tid:0 (k * 2) k)
  done;
  let collect k n =
    let acc = ref [] in
    let c = A.scan t ~tid:0 k ~n (fun k v -> acc := (k, v) :: !acc) in
    (c, List.rev !acc)
  in
  let c, items = collect 0 100 in
  Alcotest.(check int) "scan from 0" 100 c;
  Alcotest.(check (list (pair int int)))
    "visited pairs in key order"
    (List.init 100 (fun i -> (i * 2, i)))
    items;
  Alcotest.(check int) "scan middle" 100 (fst (collect 1_000 100));
  Alcotest.(check int) "scan tail" 10 (fst (collect 1_980 100));
  Alcotest.(check int) "scan past end" 0 (fst (collect 10_000 100));
  (* seek between keys: 999 is odd, first qualifying key is 1000 *)
  let c, items = collect 999 100 in
  Alcotest.(check int) "seek rounds up" 100 c;
  Alcotest.(check int) "seek first key" 1_000 (fst (List.hd items))

let test_string_keys_prefixes () =
  let t = AS.create () in
  let keys =
    [ "app"; "apple"; "apples"; "application"; "banana"; "band"; "bandit" ]
  in
  List.iteri (fun i k -> assert (AS.insert t ~tid:0 k i)) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check (option int)) ("lookup " ^ k) (Some i)
        (AS.lookup t ~tid:0 k))
    keys;
  Alcotest.(check (option int)) "no phantom" None (AS.lookup t ~tid:0 "appl");
  Alcotest.(check int) "cardinal" (List.length keys) (AS.cardinal t)

let test_email_corpus () =
  let t = AS.create () in
  for i = 0 to 9_999 do
    assert (AS.insert t ~tid:0 (Workload.email_key_of i) i)
  done;
  for i = 0 to 9_999 do
    assert (AS.lookup t ~tid:0 (Workload.email_key_of i) = Some i)
  done;
  Alcotest.(check int) "cardinal" 10_000 (AS.cardinal t)

let test_concurrent_inserts () =
  let t = A.create () in
  let nthreads = 6 and per = 8_000 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = (i * nthreads) + tid in
              assert (A.insert t ~tid k k)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all inserted" (nthreads * per) (A.cardinal t);
  for k = 0 to (nthreads * per) - 1 do
    assert (A.lookup t ~tid:0 k = Some k)
  done

let test_concurrent_mixed () =
  let t = A.create () in
  for k = 0 to 1_999 do
    assert (A.insert t ~tid:0 k k)
  done;
  let nthreads = 6 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (tid + 3)) in
            for _ = 1 to 15_000 do
              let k = Bw_util.Rng.next_int rng 4_000 in
              match Bw_util.Rng.next_int rng 4 with
              | 0 -> ignore (A.insert t ~tid k k)
              | 1 -> ignore (A.delete t ~tid k)
              | 2 -> ignore (A.update t ~tid k (k + 1))
              | _ -> ignore (A.lookup t ~tid k)
            done))
  in
  Array.iter Domain.join domains;
  (* remaining values must be k or k+1 *)
  for k = 0 to 3_999 do
    match A.lookup t ~tid:0 k with
    | None -> ()
    | Some v ->
        Alcotest.(check bool) "value provenance" true (v = k || v = k + 1)
  done

let test_concurrent_readers () =
  let t = A.create () in
  for k = 0 to 999 do
    assert (A.insert t ~tid:0 k k)
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Bw_util.Rng.create ~seed:77L in
        while not (Atomic.get stop) do
          let k = 10_000 + Bw_util.Rng.next_int rng 100_000 in
          ignore (A.insert t ~tid:0 k k);
          ignore (A.delete t ~tid:0 k)
        done)
  in
  let ok = ref true in
  let readers =
    Array.init 3 (fun w ->
        Domain.spawn (fun () ->
            let tid = w + 1 in
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (w + 5)) in
            for _ = 1 to 30_000 do
              let k = Bw_util.Rng.next_int rng 1_000 in
              if A.lookup t ~tid k <> Some k then ok := false
            done))
  in
  Array.iter Domain.join readers;
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check bool) "stable keys always visible" true !ok

let () =
  Alcotest.run "art_olc"
    [
      ( "single-thread",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "node growth to N256" `Quick test_node_growth;
          Alcotest.test_case "path compression splits" `Quick
            test_path_compression_split;
          Alcotest.test_case "model" `Slow test_model;
          Alcotest.test_case "scan" `Quick test_scan_counts;
        ] );
      ( "strings",
        [
          Alcotest.test_case "shared prefixes" `Quick
            test_string_keys_prefixes;
          Alcotest.test_case "email corpus" `Slow test_email_corpus;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Slow test_concurrent_inserts;
          Alcotest.test_case "mixed" `Slow test_concurrent_mixed;
          Alcotest.test_case "readers+writer" `Slow test_concurrent_readers;
        ] );
    ]
