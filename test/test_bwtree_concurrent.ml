(* Concurrency tests for the Bw-Tree: disjoint and contended multi-domain
   workloads, SMO interleavings under tiny nodes, the high-contention
   right-edge storm, and linearizability-ish spot checks. *)

module IK = Index_iface.Int_key
module IV = Index_iface.Int_value
module T = Bwtree.Make (IK) (IV)

let tiny =
  Bwtree.Config.make ~leaf_max:8 ~inner_max:6 ~leaf_chain_max:4
    ~inner_chain_max:2 ~leaf_min:2 ~inner_min:2 ()

let spawn_workers n f =
  let domains = Array.init n (fun tid -> Domain.spawn (fun () -> f tid)) in
  Array.iter Domain.join domains

let test_disjoint_inserts () =
  let nthreads = 6 and per = 8_000 in
  let t = T.create () in
  spawn_workers nthreads (fun tid ->
      for i = 0 to per - 1 do
        let k = (i * nthreads) + tid in
        assert (T.insert t ~tid k (k * 2))
      done;
      T.quiesce t ~tid);
  T.verify_invariants t;
  Alcotest.(check int) "all present" (nthreads * per) (T.cardinal t);
  for k = 0 to (nthreads * per) - 1 do
    assert (T.lookup t k = [ k * 2 ])
  done

let test_contended_same_keys () =
  (* all threads try to insert the same keys; exactly one wins each *)
  let nthreads = 6 and nkeys = 3_000 in
  let t = T.create ~config:tiny () in
  let wins = Array.init nthreads (fun _ -> Atomic.make 0) in
  spawn_workers nthreads (fun tid ->
      for k = 0 to nkeys - 1 do
        if T.insert t ~tid k tid then
          ignore (Atomic.fetch_and_add wins.(tid) 1)
      done;
      T.quiesce t ~tid);
  let total = Array.fold_left (fun acc w -> acc + Atomic.get w) 0 wins in
  Alcotest.(check int) "each key inserted exactly once" nkeys total;
  T.verify_invariants t;
  Alcotest.(check int) "cardinal" nkeys (T.cardinal t)

let test_mixed_workload () =
  let nthreads = 6 and per = 10_000 in
  let t = T.create ~config:tiny () in
  T.start_gc_thread t ~interval_s:0.002 ();
  spawn_workers nthreads (fun tid ->
      let rng = Bw_util.Rng.create ~seed:(Int64.of_int (tid + 77)) in
      for _ = 1 to per do
        let k = Bw_util.Rng.next_int rng 2_000 in
        match Bw_util.Rng.next_int rng 4 with
        | 0 -> ignore (T.insert t ~tid k k)
        | 1 -> ignore (T.delete t ~tid k k)
        | 2 -> ignore (T.update t ~tid k (k + 1))
        | _ -> ignore (T.lookup t ~tid k)
      done;
      T.quiesce t ~tid);
  T.stop_gc_thread t;
  T.verify_invariants t;
  (* values must be one of the two writable values for their key *)
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) "value provenance" true (v = k || v = k + 1))
    (T.scan_all t ())

let test_concurrent_split_merge_storm () =
  (* insert/delete waves over a small key range with tiny nodes: constant
     splits and merges interleaving across threads *)
  let nthreads = 4 and rounds = 6 in
  let t = T.create ~config:tiny () in
  for round = 1 to rounds do
    spawn_workers nthreads (fun tid ->
        let lo = tid * 500 in
        if round mod 2 = 1 then
          for k = lo to lo + 499 do
            ignore (T.insert t ~tid k k)
          done
        else
          for k = lo to lo + 499 do
            ignore (T.delete t ~tid k k)
          done;
        T.quiesce t ~tid);
    T.verify_invariants t
  done;
  Alcotest.(check int) "even rounds end empty" 0 (T.cardinal t);
  let os = T.op_stats t in
  Alcotest.(check bool) "merges exercised" true (os.merges > 0);
  Alcotest.(check bool) "splits exercised" true (os.splits > 0)

let test_high_contention_right_edge () =
  (* §6.2: every thread appends at the index's right edge *)
  let nthreads = 8 in
  let t = T.create ~config:tiny () in
  let hc = Workload.Hc.create ~nthreads in
  let per = 4_000 in
  spawn_workers nthreads (fun tid ->
      for _ = 1 to per do
        let k = Workload.Hc.next hc ~tid in
        assert (T.insert t ~tid k tid)
      done;
      T.quiesce t ~tid);
  T.verify_invariants t;
  Alcotest.(check int) "no lost inserts" (nthreads * per) (T.cardinal t);
  let os = T.op_stats t in
  Alcotest.(check bool) "contention observed (failed CaS)" true
    (os.failed_cas > 0)

let test_readers_never_block () =
  (* readers run against a continuously-mutating tree and always see a
     value written by some writer for that key *)
  let t = T.create ~config:tiny () in
  for k = 0 to 999 do
    assert (T.insert t k 0)
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Bw_util.Rng.create ~seed:123L in
        while not (Atomic.get stop) do
          let k = Bw_util.Rng.next_int rng 1_000 in
          ignore (T.update t ~tid:0 k (Bw_util.Rng.next_int rng 1_000_000))
        done;
        T.quiesce t ~tid:0)
  in
  let ok = ref true in
  spawn_workers 3 (fun w ->
      let tid = w + 1 in
      let rng = Bw_util.Rng.create ~seed:(Int64.of_int (555 + tid)) in
      for _ = 1 to 20_000 do
        let k = Bw_util.Rng.next_int rng 1_000 in
        match T.lookup t ~tid k with
        | [ _ ] -> ()
        | _ -> ok := false
      done;
      T.quiesce t ~tid);
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check bool) "every read observed exactly one value" true !ok;
  T.verify_invariants t

let test_concurrent_iteration () =
  (* scans run while writers insert; scans must return ascending keys *)
  let t = T.create ~config:tiny () in
  for k = 0 to 499 do
    assert (T.insert t (k * 4) k)
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Bw_util.Rng.create ~seed:321L in
        while not (Atomic.get stop) do
          let k = Bw_util.Rng.next_int rng 2_000 in
          ignore (T.insert t ~tid:0 k k);
          ignore (T.delete t ~tid:0 k k)
        done;
        T.quiesce t ~tid:0)
  in
  let sorted_ok = ref true in
  spawn_workers 2 (fun w ->
      let tid = w + 1 in
      for i = 0 to 300 do
        let start = i * 4 mod 1_000 in
        let items = T.scan t ~tid ~n:40 start in
        let keys = List.map fst items in
        if List.sort compare keys <> keys then sorted_ok := false
      done;
      T.quiesce t ~tid);
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check bool) "scans stayed sorted" true !sorted_ok;
  T.verify_invariants t

let test_gc_schemes_under_concurrency () =
  List.iter
    (fun scheme ->
      let t = T.create ~config:{ tiny with gc_scheme = scheme } () in
      T.start_gc_thread t ~interval_s:0.002 ();
      spawn_workers 4 (fun tid ->
          for i = 0 to 4_999 do
            let k = (i * 4) + tid in
            assert (T.insert t ~tid k k)
          done;
          T.quiesce t ~tid);
      T.stop_gc_thread t;
      T.verify_invariants t;
      Alcotest.(check int) "complete" 20_000 (T.cardinal t);
      Epoch.flush (T.epoch t);
      Alcotest.(check int) "drained" 0 (Epoch.pending (T.epoch t)))
    [ Epoch.Centralized; Epoch.Decentralized ]

let () =
  Alcotest.run "bwtree-concurrent"
    [
      ( "inserts",
        [
          Alcotest.test_case "disjoint" `Slow test_disjoint_inserts;
          Alcotest.test_case "contended same keys" `Slow
            test_contended_same_keys;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "mixed workload" `Slow test_mixed_workload;
          Alcotest.test_case "split/merge storm" `Slow
            test_concurrent_split_merge_storm;
        ] );
      ( "contention",
        [
          Alcotest.test_case "right-edge storm" `Slow
            test_high_contention_right_edge;
        ] );
      ( "readers",
        [
          Alcotest.test_case "readers never block" `Slow
            test_readers_never_block;
          Alcotest.test_case "concurrent iteration" `Slow
            test_concurrent_iteration;
        ] );
      ( "gc",
        [
          Alcotest.test_case "both schemes" `Slow
            test_gc_schemes_under_concurrency;
        ] );
    ]
