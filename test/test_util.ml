(* Unit and property tests for the utility substrate: RNG, Zipf sampler,
   growable arrays, binary key codecs, statistics, counters. *)

module Rng = Bw_util.Rng
module Zipf = Bw_util.Zipf
module Growable = Bw_util.Growable
module Key_codec = Bw_util.Key_codec
module Stats = Bw_util.Stats
module Counters = Bw_util.Counters

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_rng_bounds () =
  let r = Rng.create ~seed:7L in
  for _ = 1 to 10_000 do
    let x = Rng.next_int r 17 in
    Alcotest.(check bool) "in bounds" true (x >= 0 && x < 17)
  done

let test_rng_float_range () =
  let r = Rng.create ~seed:9L in
  for _ = 1 to 10_000 do
    let x = Rng.next_float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:5L in
  let b = Rng.split a in
  let eq = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr eq
  done;
  Alcotest.(check bool) "split streams diverge" true (!eq < 4)

let test_rng_invalid_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument
    "Rng.next_int: bound must be positive") (fun () ->
      ignore (Rng.next_int (Rng.create ~seed:1L) 0))

let test_shuffle_permutation () =
  let r = Rng.create ~seed:3L in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id)
    sorted

(* --- Zipf --- *)

let test_zipf_range () =
  let z = Zipf.create ~n:1000 () in
  let r = Rng.create ~seed:11L in
  for _ = 1 to 10_000 do
    let x = Zipf.sample z r in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 1000)
  done

let test_zipf_skew () =
  (* with theta=0.99, item 0 must be drawn far more often than uniform *)
  let n = 1000 in
  let z = Zipf.create ~n () in
  let r = Rng.create ~seed:13L in
  let hits = Array.make n 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let x = Zipf.sample z r in
    hits.(x) <- hits.(x) + 1
  done;
  Alcotest.(check bool) "head is hot" true
    (hits.(0) > 10 * (draws / n));
  (* monotonically decreasing popularity, roughly *)
  Alcotest.(check bool) "rank 0 >= rank 100" true (hits.(0) >= hits.(100))

let test_zipf_scrambled_spread () =
  (* scrambling must move the hottest item away from a fixed position in
     most cases and keep values in range *)
  let n = 1000 in
  let z = Zipf.create ~n () in
  let r = Rng.create ~seed:17L in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 10_000 do
    let x = Zipf.sample_scrambled z r in
    Alcotest.(check bool) "in range" true (x >= 0 && x < n);
    Hashtbl.replace seen x ()
  done;
  Alcotest.(check bool) "many distinct values" true (Hashtbl.length seen > 50)

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument
    "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ()))

(* --- Growable --- *)

let test_growable_push_get () =
  let g = Growable.create () in
  for i = 0 to 999 do
    Growable.push g i
  done;
  check "length" 1000 (Growable.length g);
  for i = 0 to 999 do
    check "get" i (Growable.get g i)
  done

let test_growable_insert_remove () =
  let g = Growable.of_array [| 1; 2; 4; 5 |] in
  Growable.insert_at g 2 3;
  Alcotest.(check (array int)) "insert middle" [| 1; 2; 3; 4; 5 |]
    (Growable.to_array g);
  Growable.insert_at g 0 0;
  Growable.insert_at g (Growable.length g) 6;
  Alcotest.(check (array int)) "insert ends" [| 0; 1; 2; 3; 4; 5; 6 |]
    (Growable.to_array g);
  Growable.remove_at g 0;
  Growable.remove_at g (Growable.length g - 1);
  Growable.remove_at g 2;
  Alcotest.(check (array int)) "removes" [| 1; 2; 4; 5 |]
    (Growable.to_array g)

let test_growable_truncate_pop () =
  let g = Growable.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check (option int)) "pop" (Some 4) (Growable.pop g);
  Growable.truncate g 2;
  Alcotest.(check (array int)) "truncated" [| 1; 2 |] (Growable.to_array g);
  Growable.truncate g 10;
  check "truncate beyond is noop" 2 (Growable.length g);
  Growable.clear g;
  check "cleared" 0 (Growable.length g);
  Alcotest.(check (option int)) "pop empty" None (Growable.pop g)

let test_growable_reset () =
  let g = Growable.create ~capacity:4 () in
  for cycle = 1 to 5 do
    (* steady-state fill/drain: every cycle refills from empty *)
    for i = 0 to 99 do
      Growable.push g (cycle * 1000 + i)
    done;
    check "filled" 100 (Growable.length g);
    check "last" (cycle * 1000 + 99) (Growable.get g 99);
    Growable.reset g;
    check "reset empties" 0 (Growable.length g)
  done;
  Alcotest.check_raises "reset bounds"
    (Invalid_argument "Growable: index out of bounds") (fun () ->
      ignore (Growable.get g 0))

let test_growable_sort_fold () =
  let g = Growable.of_array [| 3; 1; 2 |] in
  Growable.sort compare g;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Growable.to_array g);
  check "fold" 6 (Growable.fold_left ( + ) 0 g)

let test_growable_bounds () =
  let g = Growable.of_array [| 1 |] in
  Alcotest.check_raises "oob get"
    (Invalid_argument "Growable: index out of bounds") (fun () ->
      ignore (Growable.get g 1))

let prop_growable_model =
  (* a random sequence of push/insert/remove agrees with a list model *)
  QCheck.Test.make ~name:"growable agrees with list model" ~count:200
    QCheck.(list (pair (int_bound 2) small_int))
    (fun ops ->
      let g = Growable.create () in
      let model = ref [] in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              Growable.push g x;
              model := !model @ [ x ]
          | 1 ->
              let n = Growable.length g in
              let pos = x mod (n + 1) in
              let pos = if pos < 0 then 0 else pos in
              Growable.insert_at g pos x;
              let rec ins i = function
                | rest when i = pos -> x :: rest
                | [] -> [ x ]
                | y :: rest -> y :: ins (i + 1) rest
              in
              model := ins 0 !model
          | _ ->
              if Growable.length g > 0 then begin
                let pos = abs x mod Growable.length g in
                Growable.remove_at g pos;
                model := List.filteri (fun i _ -> i <> pos) !model
              end)
        ops;
      Growable.to_array g = Array.of_list !model)

(* --- Arr --- *)

module Arr = Bw_util.Arr

let test_arr_stdlib_equiv () =
  (* equivalence with the stdlib constructors on both sides of the
     Max_young_wosize boundary (256) that motivates the module *)
  List.iter
    (fun n ->
      let src = Array.init n (fun i -> (i, string_of_int i)) in
      Alcotest.(check (array (pair int string)))
        "map" (Array.map Fun.id src) (Arr.map Fun.id src);
      Alcotest.(check (array (pair int string)))
        "init"
        (Array.init n (fun i -> (i, string_of_int i)))
        (Arr.init n (fun i -> (i, string_of_int i)));
      Alcotest.(check (array (pair int string)))
        "of_list" (Array.of_list (Array.to_list src))
        (Arr.of_list (Array.to_list src));
      Alcotest.(check (array (pair int string)))
        "make"
        (Array.make n (7, "x"))
        (Arr.make n (7, "x")))
    [ 0; 1; 17; 256; 257; 1000 ]

let test_arr_order () =
  (* map and init must visit indices left to right like the stdlib *)
  let visits = ref [] in
  ignore
    (Arr.map
       (fun i ->
         visits := i :: !visits;
         i)
       [| 10; 20; 30 |]);
  Alcotest.(check (list int)) "map order" [ 10; 20; 30 ] (List.rev !visits);
  visits := [];
  ignore
    (Arr.init 3 (fun i ->
         visits := i :: !visits;
         i));
  Alcotest.(check (list int)) "init order" [ 0; 1; 2 ] (List.rev !visits)

let test_arr_no_forced_minor () =
  (* the reason the module exists: constructing a >256-element array of
     young blocks must not force a minor collection per array *)
  let rounds = 100 in
  let burn mk =
    ignore (Sys.opaque_identity (mk ()));
    let before = (Gc.quick_stat ()).minor_collections in
    for _ = 1 to rounds do
      ignore (Sys.opaque_identity (mk ()))
    done;
    (Gc.quick_stat ()).minor_collections - before
  in
  let stdlib = burn (fun () -> Array.init 300 (fun i -> (i, i))) in
  let ours = burn (fun () -> Arr.init 300 (fun i -> (i, i))) in
  Alcotest.(check bool)
    (Printf.sprintf "stdlib forces ~1/array (%d), ours stays amortized (%d)"
       stdlib ours)
    true
    (stdlib >= rounds && ours < rounds / 2)

let test_growable_no_forced_minor () =
  (* Growable's grow/to_array/insert_at allocate through Arr.alloc, so a
     batch-sized gather of young tuples (the leaf consolidation path)
     must not force a minor collection per array either *)
  let rounds = 100 in
  let burn mk =
    ignore (Sys.opaque_identity (mk ()));
    let before = (Gc.quick_stat ()).minor_collections in
    for _ = 1 to rounds do
      ignore (Sys.opaque_identity (mk ()))
    done;
    (Gc.quick_stat ()).minor_collections - before
  in
  let ours =
    burn (fun () ->
        let g = Growable.create () in
        for i = 0 to 299 do
          Growable.push g (i, i)
        done;
        Growable.to_array g)
  in
  Alcotest.(check bool)
    (Printf.sprintf "grow + to_array stay amortized (%d)" ours)
    true
    (ours < rounds / 2)

(* --- Key_codec --- *)

let test_codec_roundtrip () =
  List.iter
    (fun k -> check "roundtrip" k (Key_codec.to_int (Key_codec.of_int k)))
    [ 0; 1; -1; max_int; min_int; 42; -4096; 1 lsl 40 ]

let prop_codec_order =
  QCheck.Test.make ~name:"int codec preserves order" ~count:1000
    QCheck.(pair int int)
    (fun (a, b) ->
      let ca = Key_codec.of_int a and cb = Key_codec.of_int b in
      compare (String.compare ca cb) 0 = compare (Int.compare a b) 0)

(* [int_at_least] must clamp to the 63-bit int range exactly like the
   shard partitioner's [floor_int]: a bound below every encoded int
   (e.g. "", the first bootstrap range's floor) starts at [min_int],
   one above enc(max_int) (e.g. a migration cursor past the last int
   key) yields [None] — neither may wrap through [Int64.to_int]. *)
let test_int_at_least () =
  let some = Alcotest.(check (option int)) in
  some "empty bound floors to min_int" (Some min_int)
    (Key_codec.int_at_least "");
  some "low short bound floors to min_int" (Some min_int)
    (Key_codec.int_at_least "\x00\x01");
  some "exact encoding is its own floor" (Some 42)
    (Key_codec.int_at_least (Key_codec.of_int 42));
  some "negative exact encoding" (Some (-7))
    (Key_codec.int_at_least (Key_codec.of_int (-7)));
  some "long bound rounds up" (Some 43)
    (Key_codec.int_at_least (Key_codec.of_int 42 ^ "\x00"));
  some "max_int is reachable" (Some max_int)
    (Key_codec.int_at_least (Key_codec.of_int max_int));
  some "past max_int has no int" None
    (Key_codec.int_at_least (Key_codec.of_int max_int ^ "\x00"));
  some "all-ones bound has no int" None
    (Key_codec.int_at_least (String.make 9 '\xFF'));
  some "top half of the slice space has no int" None
    (Key_codec.int_at_least "\xC0")

let prop_int_at_least_floor =
  QCheck.Test.make ~name:"int_at_least is the exact floor" ~count:1000
    QCheck.(pair (small_list (int_bound 255)) int)
    (fun (bytes, k) ->
      let s = String.init (List.length bytes) (fun i ->
          Char.chr (List.nth bytes i)) in
      let enc = Key_codec.of_int k in
      match Key_codec.int_at_least s with
      | Some f ->
          (* f's encoding sorts at or above s, and no smaller int's does *)
          String.compare (Key_codec.of_int f) s >= 0
          && (String.compare enc s >= 0 = (k >= f))
      | None -> String.compare enc s < 0)

let test_slice64 () =
  let s = "\x01\x02\x03\x04\x05\x06\x07\x08\xFF" in
  Alcotest.(check int64) "first slice" 0x0102030405060708L
    (Key_codec.slice64 s 0);
  Alcotest.(check int64) "padded slice" 0xFF00000000000000L
    (Key_codec.slice64 s 1);
  check "slice count" 2 (Key_codec.slice_count s);
  check "empty has one slice" 1 (Key_codec.slice_count "")

(* --- Stats --- *)

let test_stats_basics () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  checkf "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  checkf "p100" 4.0 (Stats.percentile [| 4.0; 1.0; 2.0; 3.0 |] 100.0);
  checkf "throughput" 2.0 (Stats.throughput_mops ~ops:2_000_000 ~seconds:1.0)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  checkf "min" 1.0 s.min;
  checkf "max" 3.0 s.max;
  check "n" 3 s.n

(* --- Histogram --- *)

module H = Bw_util.Histogram

let test_histogram_basics () =
  let h = H.create () in
  List.iter (H.add h) [ 1; 2; 2; 3; 3; 3 ];
  check "count" 6 (H.count h);
  check "total" 14 (H.total h);
  checkf "mean" (14.0 /. 6.0) (H.mean h);
  check "min" 1 (H.min_value h);
  check "max" 3 (H.max_value h);
  Alcotest.(check (list (pair int int))) "buckets" [ (1, 1); (2, 2); (3, 3) ]
    (H.buckets h)

let test_histogram_percentiles () =
  let h = H.create () in
  for v = 1 to 100 do
    H.add h v
  done;
  check "p50" 50 (H.percentile h 50.0);
  check "p99" 99 (H.percentile h 99.0);
  check "p100" 100 (H.percentile h 100.0);
  check "p1" 1 (H.percentile h 1.0)

let test_histogram_empty () =
  let h = H.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram: empty")
    (fun () -> ignore (H.min_value h))

let test_histogram_addn_render () =
  let h = H.create () in
  H.addn h 5 10;
  H.addn h 500 1;
  check "count" 11 (H.count h);
  let out = Format.asprintf "%a" (H.pp ~width:10) h in
  Alcotest.(check bool) "renders rows" true (String.length out > 10)

(* --- Counters --- *)

let test_counters () =
  let c = Counters.create ~max_threads:4 in
  Counters.incr c ~tid:0 Counters.Cas_attempt;
  Counters.incr c ~tid:3 Counters.Cas_attempt;
  Counters.add c ~tid:1 Counters.Pointer_deref 5;
  check "summed" 2 (Counters.read c Counters.Cas_attempt);
  check "add" 5 (Counters.read c Counters.Pointer_deref);
  Counters.reset c;
  check "reset" 0 (Counters.read c Counters.Cas_attempt)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "invalid bound" `Quick test_rng_invalid_bound;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "scrambled" `Quick test_zipf_scrambled_spread;
          Alcotest.test_case "invalid" `Quick test_zipf_invalid;
        ] );
      ( "growable",
        [
          Alcotest.test_case "push/get" `Quick test_growable_push_get;
          Alcotest.test_case "insert/remove" `Quick test_growable_insert_remove;
          Alcotest.test_case "truncate/pop" `Quick test_growable_truncate_pop;
          Alcotest.test_case "reset" `Quick test_growable_reset;
          Alcotest.test_case "sort/fold" `Quick test_growable_sort_fold;
          Alcotest.test_case "bounds" `Quick test_growable_bounds;
          Alcotest.test_case "no forced minor GC" `Quick
            test_growable_no_forced_minor;
          q prop_growable_model;
        ] );
      ( "arr",
        [
          Alcotest.test_case "stdlib equivalence" `Quick test_arr_stdlib_equiv;
          Alcotest.test_case "traversal order" `Quick test_arr_order;
          Alcotest.test_case "no forced minor GC" `Quick
            test_arr_no_forced_minor;
        ] );
      ( "key_codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          q prop_codec_order;
          Alcotest.test_case "int_at_least clamps" `Quick test_int_at_least;
          q prop_int_at_least_floor;
          Alcotest.test_case "slice64" `Quick test_slice64;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "addn/render" `Quick test_histogram_addn_render;
        ] );
      ("counters", [ Alcotest.test_case "basics" `Quick test_counters ]);
    ]
