(* Unit and property tests for the Bw_obs observability registry:
   histogram bucketing, quantiles, cross-domain merging, the event ring,
   JSON round-trips and snapshot structure. *)

module O = Bw_obs
module H = O.Histo

(* --- bucket layout --- *)

let test_bucket_exact_below_16 () =
  for v = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "bucket of %d" v)
      v (H.bucket_of_value v);
    Alcotest.(check int) (Printf.sprintf "lo of %d" v) v (H.bucket_lo v);
    Alcotest.(check int) (Printf.sprintf "hi of %d" v) v (H.bucket_hi v)
  done

let test_bucket_boundaries () =
  (* the first log bucket starts at 16 with width 2 *)
  Alcotest.(check int) "bucket 15" 15 (H.bucket_of_value 15);
  Alcotest.(check int) "bucket 16" 16 (H.bucket_of_value 16);
  Alcotest.(check int) "17 shares 16's bucket" (H.bucket_of_value 16)
    (H.bucket_of_value 17);
  Alcotest.(check bool) "18 in the next bucket" true
    (H.bucket_of_value 18 > H.bucket_of_value 17)

let test_bucket_invariants () =
  (* every bucket's [lo, hi] range is consistent and contiguous *)
  let prev_hi = ref (-1) in
  for b = 0 to H.n_buckets - 1 do
    let lo = H.bucket_lo b and hi = H.bucket_hi b in
    Alcotest.(check bool) "lo <= hi" true (lo <= hi);
    Alcotest.(check int) "contiguous" (!prev_hi + 1) lo;
    Alcotest.(check int) "lo maps back" b (H.bucket_of_value lo);
    Alcotest.(check int) "hi maps back" b (H.bucket_of_value hi);
    prev_hi := hi
  done

let bucket_roundtrip_prop =
  QCheck.Test.make ~count:2_000 ~name:"value within its bucket bounds"
    QCheck.(map abs (small_int_corners ()))
    (fun v ->
      let b = H.bucket_of_value v in
      H.bucket_lo b <= v && v <= H.bucket_hi b)

let bucket_width_prop =
  (* relative bucket width stays <= 12.5% above the linear region *)
  QCheck.Test.make ~count:2_000 ~name:"relative width <= 1/8"
    QCheck.(int_range 16 max_int)
    (fun v ->
      let b = H.bucket_of_value v in
      let lo = H.bucket_lo b and hi = H.bucket_hi b in
      (hi - lo + 1) * 8 <= lo)

(* --- quantiles --- *)

let test_quantile_empty () =
  let h = H.create () in
  Alcotest.(check int) "empty p50" 0 (H.quantile h 0.5);
  Alcotest.(check int) "empty min" 0 (H.min_value h);
  Alcotest.(check int) "empty max" 0 (H.max_value h)

let test_quantile_exact_region () =
  (* values below 16 are bucketed exactly, so quantiles are exact *)
  let h = H.create () in
  List.iter (H.add h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "p50 of 1..10" 5 (H.quantile h 0.5);
  Alcotest.(check int) "p90 of 1..10" 9 (H.quantile h 0.9);
  Alcotest.(check int) "p100 of 1..10" 10 (H.quantile h 1.0);
  Alcotest.(check int) "p0 takes rank 1" 1 (H.quantile h 0.0);
  Alcotest.(check int) "min" 1 (H.min_value h);
  Alcotest.(check int) "max" 10 (H.max_value h);
  Alcotest.(check int) "count" 10 (H.count h);
  Alcotest.(check int) "sum" 55 (H.sum h)

let test_quantile_skew () =
  let h = H.create () in
  for _ = 1 to 99 do
    H.add h 10
  done;
  H.add h 1_000_000;
  Alcotest.(check int) "p50 ignores the outlier" 10 (H.quantile h 0.5);
  Alcotest.(check int) "p90 ignores the outlier" 10 (H.quantile h 0.9);
  Alcotest.(check bool) "p100 covers the outlier" true
    (H.quantile h 1.0 >= 1_000_000);
  Alcotest.(check int) "max is exact" 1_000_000 (H.max_value h)

let quantile_bound_prop =
  (* nearest-rank quantile reported as a bucket upper bound: it is >= the
     true quantile value and within one bucket width (12.5%) above it *)
  QCheck.Test.make ~count:500 ~name:"quantile within bucket error"
    QCheck.(pair (list_of_size (Gen.int_range 1 200) (map abs small_int))
              (float_range 0.0 1.0))
    (fun (vs, q) ->
      let h = H.create () in
      List.iter (H.add h) vs;
      let sorted = List.sort compare vs in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let truth = List.nth sorted (rank - 1) in
      let est = H.quantile h q in
      est >= truth && H.bucket_lo (H.bucket_of_value est) <= truth)

(* --- merging across domains --- *)

let merge_prop =
  (* merging per-domain histograms must equal one histogram fed all
     values: same counts per bucket, same sum/min/max/quantiles *)
  QCheck.Test.make ~count:300 ~name:"merge equals union"
    QCheck.(list_of_size (Gen.int_range 0 8)
              (list_of_size (Gen.int_range 0 100) (map abs (small_int_corners ()))))
    (fun shards ->
      let merged = H.create () and direct = H.create () in
      List.iter
        (fun shard ->
          let h = H.create () in
          List.iter (H.add h) shard;
          List.iter (H.add direct) shard;
          H.merge_into ~dst:merged h)
        shards;
      H.count merged = H.count direct
      && H.sum merged = H.sum direct
      && H.min_value merged = H.min_value direct
      && H.max_value merged = H.max_value direct
      && List.for_all
           (fun q -> H.quantile merged q = H.quantile direct q)
           [ 0.5; 0.9; 0.99; 1.0 ])

let test_merge_across_real_domains () =
  (* concurrent observes from several domains, then one snapshot *)
  let reg = O.create ~stripes:8 () in
  let s = O.sink reg in
  let nd = 4 and per = 10_000 in
  let domains =
    Array.init nd (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              O.observe s ~tid O.Lat_lookup ((i mod 100) + 1)
            done))
  in
  Array.iter Domain.join domains;
  let sn = O.snapshot reg in
  let hs =
    List.find (fun h -> h.O.hs_series = O.Lat_lookup) sn.O.sn_histos
  in
  Alcotest.(check int) "no observation lost" (nd * per) hs.O.hs_count;
  Alcotest.(check int) "min" 1 hs.O.hs_min;
  Alcotest.(check int) "max" 100 hs.O.hs_max

(* --- event ring --- *)

let test_event_ring_overflow () =
  let reg = O.create ~stripes:2 ~ring_capacity:8 () in
  let s = O.sink reg in
  for i = 1 to 20 do
    O.event s ~tid:0 O.Ev_split ~a:i ~b:0
  done;
  let sn = O.snapshot reg in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length sn.O.sn_events);
  Alcotest.(check int) "drops reported" 12 sn.O.sn_dropped_events;
  (* survivors are the newest, oldest first *)
  Alcotest.(check (list int)) "newest survive"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.O.ev_a) sn.O.sn_events);
  (* per-kind totals are overflow-proof *)
  Alcotest.(check int) "totals survive overflow" 20
    (List.assoc O.Ev_split sn.O.sn_event_totals)

(* --- counters and gauges --- *)

let test_counters_and_gauges () =
  let reg = O.create ~stripes:4 () in
  let s = O.sink reg in
  O.incr s ~tid:0 O.C_splits;
  O.incr s ~tid:1 O.C_splits;
  O.incr_anon s O.C_mt_growths;
  O.register_gauge s O.G_epoch_pending (fun () -> 42);
  let sn = O.snapshot reg in
  Alcotest.(check int) "striped counter merged" 2
    (List.assoc O.C_splits sn.O.sn_counters);
  Alcotest.(check int) "anon counter" 1
    (List.assoc O.C_mt_growths sn.O.sn_counters);
  Alcotest.(check int) "gauge sampled" 42
    (List.assoc O.G_epoch_pending sn.O.sn_gauges)

(* --- JSON --- *)

let test_json_roundtrip () =
  let open O.Json in
  let v =
    Obj
      [
        ("s", Str "a\"b\\c\nd\t\xe2\x82\xac");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("b", Bool true);
        ("n", Null);
        ("a", Arr [ Int 1; Arr []; Obj [] ]);
      ]
  in
  match parse (to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  let bad =
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"\\x\""; "{\"a\" 1}" ]
  in
  List.iter
    (fun s ->
      match O.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_snapshot_json_schema () =
  let reg = O.create ~stripes:4 () in
  let s = O.sink reg in
  for i = 1 to 100 do
    O.observe s ~tid:0 O.Lat_insert (i * 100)
  done;
  O.incr s ~tid:0 O.C_consolidations;
  O.event s ~tid:0 O.Ev_consolidate ~a:7 ~b:3;
  O.register_gauge s O.G_epoch_pending (fun () -> 0);
  let str = O.snapshot_to_string (O.snapshot reg) in
  match O.Json.parse str with
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  | Ok v ->
      let get k v =
        match O.Json.member k v with
        | Some x -> x
        | None -> Alcotest.failf "missing field %s" k
      in
      (match get "histograms" v with
      | O.Json.Arr (h :: _) ->
          List.iter
            (fun k -> ignore (get k h))
            [ "name"; "unit"; "count"; "p50"; "p90"; "p99"; "min"; "max" ]
      | _ -> Alcotest.fail "histograms not a non-empty array");
      ignore (get "counters" v);
      (match O.Json.member "gauges" v with
      | Some (O.Json.Obj g) ->
          Alcotest.(check bool) "gauge present" true
            (List.mem_assoc "epoch_pending" g)
      | _ -> Alcotest.fail "gauges not an object");
      match get "events" v with
      | O.Json.Obj _ as ev ->
          ignore (get "dropped" ev);
          ignore (get "kinds" ev);
          ignore (get "log" ev)
      | _ -> Alcotest.fail "events not an object"

(* --- tree integration: probes populate the registry --- *)

module IK = Index_iface.Int_key
module IV = Index_iface.Int_value
module T = Bwtree.Make (IK) (IV)

let test_tree_populates_registry () =
  let reg = O.create () in
  let config =
    Bwtree.Config.make ~leaf_max:8 ~inner_max:6 ~leaf_chain_max:4
      ~inner_chain_max:2 ~leaf_min:2 ~inner_min:2 ~gc_threshold:16 ()
  in
  let t = T.create ~config ~obs:(O.To reg) () in
  for k = 0 to 4_999 do
    ignore (T.insert t k k)
  done;
  for k = 0 to 4_999 do
    ignore (T.lookup t k)
  done;
  for k = 0 to 2_499 do
    ignore (T.delete t k k)
  done;
  T.quiesce t ~tid:0;
  Epoch.flush (T.epoch t);
  let sn = O.snapshot reg in
  let histo series =
    try
      Some (List.find (fun h -> h.O.hs_series = series) sn.O.sn_histos)
    with Not_found -> None
  in
  (match histo O.Lat_insert with
  | Some h -> Alcotest.(check int) "insert latencies" 5_000 h.O.hs_count
  | None -> Alcotest.fail "no insert histogram");
  (match histo O.Val_chain_depth with
  | Some h -> Alcotest.(check int) "chain depths" 5_000 h.O.hs_count
  | None -> Alcotest.fail "no chain-depth histogram");
  Alcotest.(check bool) "splits counted" true
    (List.assoc O.C_splits sn.O.sn_counters > 0);
  Alcotest.(check bool) "consolidations counted" true
    (List.assoc O.C_consolidations sn.O.sn_counters > 0);
  let kinds =
    List.filter (fun (_, n) -> n > 0) sn.O.sn_event_totals
  in
  Alcotest.(check bool) "several structural event kinds" true
    (List.length kinds >= 3);
  (* quiesced + flushed: the pending-garbage gauge must read 0 *)
  Alcotest.(check int) "pending gauge drains" 0
    (List.assoc O.G_epoch_pending sn.O.sn_gauges)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "buckets",
        [
          Alcotest.test_case "exact below 16" `Quick test_bucket_exact_below_16;
          Alcotest.test_case "boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "layout invariants" `Quick test_bucket_invariants;
          q bucket_roundtrip_prop;
          q bucket_width_prop;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "exact region" `Quick test_quantile_exact_region;
          Alcotest.test_case "skewed" `Quick test_quantile_skew;
          q quantile_bound_prop;
        ] );
      ( "merge",
        [
          q merge_prop;
          Alcotest.test_case "across domains" `Quick
            test_merge_across_real_domains;
        ] );
      ( "events",
        [ Alcotest.test_case "ring overflow" `Quick test_event_ring_overflow ]
      );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "snapshot schema" `Quick test_snapshot_json_schema;
        ] );
      ( "integration",
        [
          Alcotest.test_case "tree populates registry" `Quick
            test_tree_populates_registry;
        ] );
    ]
