(* Serving-layer tests: wire protocol roundtrips and rejection, the
   multi-domain TCP server against a sequential oracle under pipelined
   concurrent clients, protocol fuzz over real sockets, error isolation
   between connections, and graceful drain. *)

module Wire = Bw_server.Wire
module Server = Bw_server.Server
module Backend = Bw_server.Backend
module Key = Bw_util.Key_codec

let start_server ?(workers = 2) ?(close_on_malformed = false)
    ?(obs = Bw_obs.Null) () =
  let backend =
    Backend.of_int_driver (Harness.Drivers.bwtree_driver_int ~obs ())
  in
  let config =
    { Server.default_config with port = 0; workers; close_on_malformed; obs }
  in
  Server.start ~config backend

let with_server ?workers ?close_on_malformed ?obs f =
  let srv = start_server ?workers ?close_on_malformed ?obs () in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let roundtrip_req r = Wire.decode_req (Buffer.contents (let b = Buffer.create 64 in Wire.encode_req b r; b))
let roundtrip_resp r = Wire.decode_resp (Buffer.contents (let b = Buffer.create 64 in Wire.encode_resp b r; b))

let test_wire_roundtrip_unit () =
  let reqs =
    [
      Wire.Get "k";
      Wire.Get "";
      Wire.Put (Wire.Insert, "a", 42);
      Wire.Put (Wire.Update, "b", -1);
      Wire.Put (Wire.Upsert, "c", max_int);
      Wire.Delete "gone";
      Wire.Scan ("start", 48);
      Wire.Batch [ Wire.Get "x"; Wire.Put (Wire.Upsert, "y", 7); Wire.Scan ("z", 3) ];
      Wire.Stats;
      Wire.Topology None;
      Wire.Topology (Some "encoded-table");
      Wire.Migrate { m_lo = ""; m_hi = None; m_dst = 0 };
      Wire.Migrate { m_lo = "a"; m_hi = Some "b\000"; m_dst = 3 };
      Wire.Ingest [];
      Wire.Ingest [ ("k", Some 1); ("dead", None) ];
    ]
  in
  List.iter (fun r -> assert (roundtrip_req r = r)) reqs;
  let resps =
    [
      Wire.Value None;
      Wire.Value (Some 9);
      Wire.Applied true;
      Wire.Applied false;
      Wire.Scanned [];
      Wire.Scanned [ ("a", 1); ("b", 2) ];
      Wire.Batched [ Wire.Value (Some 1); Wire.Err "nope"; Wire.Applied true ];
      Wire.Stats_payload "{}";
      Wire.Err "bad";
      Wire.Scanned_to ([], None);
      Wire.Scanned_to ([ ("a", 1) ], Some "a\000");
      Wire.Topology_payload "encoded-table";
      Wire.Err_wrong_shard 7L;
      Wire.Err_wrong_shard Int64.min_int;
      Wire.Err_read_only;
    ]
  in
  List.iter (fun r -> assert (roundtrip_resp r = r)) resps

(* request generator: point ops, scans, one-level batches *)
let gen_point =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Wire.Get k) string;
        map3
          (fun m k v ->
            Wire.Put
              ((match m mod 3 with 0 -> Wire.Insert | 1 -> Wire.Update | _ -> Wire.Upsert), k, v))
          small_nat string int;
        map (fun k -> Wire.Delete k) string;
        map2 (fun k n -> Wire.Scan (k, n mod (Wire.max_scan + 1))) string small_nat;
      ])

(* cluster frames: TOPOLOGY fetch/offer, MIGRATE, INGEST *)
let gen_cluster =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Wire.Topology t) (option string);
        map3
          (fun lo hi dst ->
            Wire.Migrate { m_lo = lo; m_hi = hi; m_dst = dst })
          string (option string) small_nat;
        map
          (fun items -> Wire.Ingest items)
          (list_size (int_bound 8) (pair string (option int)));
      ])

let gen_req =
  QCheck.Gen.(
    frequency
      [
        (6, gen_point);
        (1, return Wire.Stats);
        (2, map (fun l -> Wire.Batch l) (list_size (int_bound 8) gen_point));
        (2, gen_cluster);
      ])

let arb_req = QCheck.make gen_req

let prop_wire_req_roundtrip =
  QCheck.Test.make ~count:1_000 ~name:"wire request roundtrip" arb_req
    (fun r -> roundtrip_req r = r)

(* response generator: every tag, batches one level deep *)
let gen_resp_flat =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Wire.Value v) (option int);
        map (fun b -> Wire.Applied b) bool;
        map (fun l -> Wire.Scanned l) (list_size (int_bound 8) (pair string int));
        map2
          (fun l next -> Wire.Scanned_to (l, next))
          (list_size (int_bound 8) (pair string int))
          (option string);
        map (fun s -> Wire.Stats_payload s) string;
        map (fun s -> Wire.Topology_payload s) string;
        map (fun s -> Wire.Err s) string;
        map (fun e -> Wire.Err_wrong_shard (Int64.of_int e)) int;
        return Wire.Err_read_only;
      ])

let gen_resp =
  QCheck.Gen.(
    frequency
      [
        (6, gen_resp_flat);
        (1, map (fun l -> Wire.Batched l) (list_size (int_bound 4) gen_resp_flat));
      ])

let arb_resp = QCheck.make gen_resp

let prop_wire_resp_roundtrip =
  QCheck.Test.make ~count:1_000 ~name:"wire response roundtrip" arb_resp
    (fun r -> roundtrip_resp r = r)

let prop_wire_resp_prefix_rejected =
  QCheck.Test.make ~count:1_000 ~name:"truncated response rejected"
    QCheck.(pair arb_resp (int_bound 10_000))
    (fun (r, cut) ->
      let b = Buffer.create 64 in
      Wire.encode_resp b r;
      let enc = Buffer.contents b in
      let cut = cut mod String.length enc in
      match Wire.decode_resp (String.sub enc 0 cut) with
      | _ -> false
      | exception Wire.Malformed _ -> true)

let prop_wire_req_prefix_rejected =
  QCheck.Test.make ~count:1_000 ~name:"truncated request rejected"
    QCheck.(pair arb_req (int_bound 10_000))
    (fun (r, cut) ->
      let b = Buffer.create 64 in
      Wire.encode_req b r;
      let enc = Buffer.contents b in
      let cut = cut mod String.length enc in
      match Wire.decode_req (String.sub enc 0 cut) with
      | _ -> false
      | exception Wire.Malformed _ -> true)

let prop_wire_garbage_never_crashes =
  QCheck.Test.make ~count:2_000 ~name:"garbage decode raises Malformed only"
    QCheck.string (fun s ->
      (match Wire.decode_req s with
      | _ -> true
      | exception Wire.Malformed _ -> true
      | exception _ -> false)
      &&
      match Wire.decode_resp s with
      | _ -> true
      | exception Wire.Malformed _ -> true
      | exception _ -> false)

let test_wire_decoder_reassembly () =
  (* frames split at every possible byte boundary reassemble intact *)
  let reqs = [ Wire.Get "hello"; Wire.Put (Wire.Upsert, "k", 1); Wire.Stats ] in
  let stream = String.concat "" (List.map Wire.frame_req reqs) in
  for chunk = 1 to String.length stream do
    let dec = Wire.Decoder.create () in
    let got = ref [] in
    let off = ref 0 in
    while !off < String.length stream do
      let n = min chunk (String.length stream - !off) in
      Wire.Decoder.feed dec (Bytes.of_string (String.sub stream !off n)) n;
      off := !off + n;
      let rec drain () =
        match Wire.Decoder.next dec with
        | `Frame p ->
            got := Wire.decode_req p :: !got;
            drain ()
        | `Need_more -> ()
        | `Framing m -> Alcotest.fail m
      in
      drain ()
    done;
    Alcotest.(check int)
      (Printf.sprintf "all frames at chunk %d" chunk)
      (List.length reqs) (List.length !got);
    assert (List.rev !got = reqs)
  done

let test_wire_decoder_shrink () =
  (* one large frame doubles the connection buffer; extracting it must
     hand the doubled allocation back (steady state is 4 KiB again),
     carrying any buffered partial frame across the swap intact *)
  let dec = Wire.Decoder.create () in
  let cap0 = Wire.Decoder.initial_capacity in
  Alcotest.(check int) "starts at initial capacity" cap0
    (Wire.Decoder.capacity dec);
  let big = Wire.frame_req (Wire.Get (String.make 60_000 'x')) in
  let tail = Wire.frame_req (Wire.Get "tail") in
  for round = 1 to 3 do
    let stream = big ^ String.sub tail 0 5 in
    Wire.Decoder.feed dec (Bytes.of_string stream) (String.length stream);
    Alcotest.(check bool)
      (Printf.sprintf "grown past initial (round %d)" round)
      true
      (Wire.Decoder.capacity dec > cap0);
    (match Wire.Decoder.next dec with
    | `Frame p -> (
        match Wire.decode_req p with
        | Wire.Get k ->
            Alcotest.(check int) "big key intact" 60_000 (String.length k)
        | _ -> Alcotest.fail "wrong frame decoded")
    | `Need_more | `Framing _ -> Alcotest.fail "big frame not extracted");
    Alcotest.(check int)
      (Printf.sprintf "shrunk back (round %d)" round)
      cap0 (Wire.Decoder.capacity dec);
    let rest = String.sub tail 5 (String.length tail - 5) in
    Wire.Decoder.feed dec (Bytes.of_string rest) (String.length rest);
    (match Wire.Decoder.next dec with
    | `Frame p ->
        if Wire.decode_req p <> Wire.Get "tail" then
          Alcotest.fail "tail frame corrupted across the shrink"
    | `Need_more | `Framing _ -> Alcotest.fail "tail frame lost across shrink");
    match Wire.Decoder.next dec with
    | `Need_more -> ()
    | `Frame _ | `Framing _ -> Alcotest.fail "decoder should be drained"
  done

let test_wire_oversized_frame_flagged () =
  let dec = Wire.Decoder.create () in
  (* length prefix announcing max_frame + 1 *)
  let n = Wire.max_frame + 1 in
  let hdr =
    Bytes.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))
  in
  Wire.Decoder.feed dec hdr 4;
  match Wire.Decoder.next dec with
  | `Framing _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "oversized frame not flagged"

(* ------------------------------------------------------------------ *)
(* Loopback: synchronous API                                           *)
(* ------------------------------------------------------------------ *)

let test_sync_ops () =
  with_server (fun srv ->
      let c = Bw_client.connect ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Bw_client.close c) (fun () ->
          Alcotest.(check (option int)) "get missing" None (Bw_client.Int_key.get c 1);
          Alcotest.(check bool) "insert" true
            (Bw_client.Int_key.put c ~mode:Wire.Insert 1 10);
          Alcotest.(check bool) "duplicate insert" false
            (Bw_client.Int_key.put c ~mode:Wire.Insert 1 11);
          Alcotest.(check (option int)) "get" (Some 10) (Bw_client.Int_key.get c 1);
          Alcotest.(check bool) "update" true (Bw_client.Int_key.put c ~mode:Wire.Update 1 12);
          Alcotest.(check (option int)) "get updated" (Some 12) (Bw_client.Int_key.get c 1);
          Alcotest.(check bool) "update missing" false
            (Bw_client.Int_key.put c ~mode:Wire.Update 2 0);
          Alcotest.(check bool) "upsert new" true (Bw_client.Int_key.put c 2 20);
          Alcotest.(check bool) "upsert existing" true (Bw_client.Int_key.put c 2 21);
          Alcotest.(check (option int)) "upsert visible" (Some 21)
            (Bw_client.Int_key.get c 2);
          Alcotest.(check bool) "delete" true (Bw_client.Int_key.delete c 1);
          Alcotest.(check bool) "delete missing" false (Bw_client.Int_key.delete c 1);
          for k = 10 to 29 do
            ignore (Bw_client.Int_key.put c ~mode:Wire.Insert k (k * 100))
          done;
          Alcotest.(check (list (pair int int))) "scan"
            [ (10, 1000); (11, 1100); (12, 1200) ]
            (Bw_client.Int_key.scan c 10 ~n:3);
          Alcotest.(check (list (pair int int))) "scan past end" []
            (Bw_client.Int_key.scan c 1_000_000 ~n:5);
          Alcotest.(check (list (pair int int))) "scan n=0" []
            (Bw_client.Int_key.scan c 10 ~n:0);
          (* batch: replies arrive per-slot, errors isolated *)
          (match
             Bw_client.batch c
               [
                 Wire.Get (Key.of_int 2);
                 Wire.Put (Wire.Upsert, Key.of_int 3, 33);
                 Wire.Get (Key.of_int 3);
                 Wire.Get "not-a-valid-int-key";
               ]
           with
          | [ Wire.Value (Some 21); Wire.Applied true; Wire.Value (Some 33); Wire.Err _ ] ->
              ()
          | rs ->
              Alcotest.fail
                (Printf.sprintf "unexpected batch replies (%d)" (List.length rs)));
          (* stats comes back as a parseable JSON document *)
          match Bw_obs.Json.parse (Bw_client.stats c) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("STATS not JSON: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Loopback: forest backend                                            *)
(* ------------------------------------------------------------------ *)

(* The same wire surface served by a 4-shard lib/shard forest: point
   ops route by key, SCAN replies stitch shard continuations together
   (the [0, 1023] partition puts boundaries at 256/512/768), and the
   sharded stats hook feeds the STATS frame. *)
let test_forest_backend () =
  let backend =
    Backend.of_int_driver
      (Harness.Drivers.bwtree_forest_int ~lo:0 ~hi:1023 ~shards:4 ())
  in
  let config =
    {
      Server.default_config with
      port = 0;
      workers = 2;
      stats_json = (fun () -> {|{"forest":4}|}) |> Option.some;
    }
  in
  let srv = Server.start ~config backend in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = Bw_client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Bw_client.close c)
        (fun () ->
          for k = 0 to 1023 do
            ignore (Bw_client.Int_key.put c ~mode:Wire.Insert k (k * 3))
          done;
          Alcotest.(check (list (pair int int)))
            "wire scan crosses two shard boundaries"
            (List.init 300 (fun i -> (200 + i, (200 + i) * 3)))
            (Bw_client.Int_key.scan c 200 ~n:300);
          Alcotest.(check (list (pair int int)))
            "wire scan clipped at the last shard"
            (List.init 24 (fun i -> (1000 + i, (1000 + i) * 3)))
            (Bw_client.Int_key.scan c 1000 ~n:100);
          Alcotest.(check (option int)) "point read routed" (Some 2700)
            (Bw_client.Int_key.get c 900);
          Alcotest.(check bool) "delete on a boundary" true
            (Bw_client.Int_key.delete c 512);
          Alcotest.(check (list (pair int int)))
            "scan over the deleted boundary key"
            [ (511, 1533); (513, 1539) ]
            (Bw_client.Int_key.scan c 511 ~n:2);
          Alcotest.(check string) "stats served by the config hook"
            {|{"forest":4}|} (Bw_client.stats c)))

(* ------------------------------------------------------------------ *)
(* Loopback: BATCH frames == per-op frames                             *)
(* ------------------------------------------------------------------ *)

(* The same deterministic trace replayed twice against fresh servers:
   once as individual frames, once packed into BATCH frames of varying
   size. Replies must pair up slot for slot and the final contents must
   agree. Within one BATCH the server linearizes point ops before scan
   slots (slots carry no cross-kind ordering promise), so the batched
   replay cuts a chunk whenever it reaches a scan and ships the scan as
   a singleton BATCH — still the per-slot path, but comparable against
   the per-op interleaving. *)
let test_batch_over_wire () =
  let trace seed =
    let rng = Bw_util.Rng.create ~seed in
    Array.init 600 (fun _ ->
        let k = Key.of_int (Bw_util.Rng.next_int rng 120) in
        match Bw_util.Rng.next_int rng 6 with
        | 0 -> Wire.Put (Wire.Insert, k, Bw_util.Rng.next_int rng 1000)
        | 1 -> Wire.Put (Wire.Update, k, Bw_util.Rng.next_int rng 1000)
        | 2 -> Wire.Put (Wire.Upsert, k, Bw_util.Rng.next_int rng 1000)
        | 3 -> Wire.Delete k
        | 4 -> Wire.Scan (k, Bw_util.Rng.next_int rng 10)
        | _ -> Wire.Get k)
  in
  let replay f =
    with_server (fun srv ->
        let c = Bw_client.connect ~port:(Server.port srv) () in
        Fun.protect
          ~finally:(fun () -> Bw_client.close c)
          (fun () ->
            let rs = f c in
            (rs, Bw_client.Int_key.scan c 0 ~n:Wire.max_scan)))
  in
  let ops = trace 77L in
  let per_op, contents_seq =
    replay (fun c ->
        Array.to_list ops
        |> List.concat_map (fun op ->
               match Bw_client.request c op with
               | Wire.Err m -> Alcotest.fail ("per-op ERR: " ^ m)
               | r -> [ r ]))
  in
  let batched, contents_batch =
    replay (fun c ->
        let rng = Bw_util.Rng.create ~seed:5L in
        let out = ref [] in
        let i = ref 0 in
        let n = Array.length ops in
        let ship chunk =
          List.iter
            (function
              | Wire.Err m -> Alcotest.fail ("batched ERR: " ^ m)
              | r -> out := r :: !out)
            (Bw_client.batch c chunk)
        in
        while !i < n do
          let want = min (1 + Bw_util.Rng.next_int rng 16) (n - !i) in
          (* stop a chunk at the first scan so ordering stays per-op *)
          let len = ref 0 in
          while
            !len < want
            && (match ops.(!i + !len) with Wire.Scan _ -> false | _ -> true)
          do
            incr len
          done;
          if !len = 0 then len := 1;
          ship (List.init !len (fun j -> ops.(!i + j)));
          i := !i + !len
        done;
        List.rev !out)
  in
  Alcotest.(check int) "reply counts" (List.length per_op)
    (List.length batched);
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.fail (Printf.sprintf "reply %d differs" i))
    (List.combine per_op batched);
  Alcotest.(check (list (pair int int)))
    "final contents agree" contents_seq contents_batch

(* ------------------------------------------------------------------ *)
(* Loopback: concurrent pipelined clients vs sequential oracle          *)
(* ------------------------------------------------------------------ *)

(* Each client domain owns a disjoint key stripe and replays a
   deterministic op sequence pipelined [depth] deep; afterwards the tree
   must agree exactly with a sequential replay of the same sequences. *)
let test_concurrent_oracle () =
  let nclients = 4 and per_client_ops = 4_000 and stripe = 1_000_000 in
  let depth = 16 in
  let ops_for tid =
    let rng = Bw_util.Rng.create ~seed:(Int64.of_int (1000 + tid)) in
    Array.init per_client_ops (fun _ ->
        let k = (tid * stripe) + Bw_util.Rng.next_int rng 500 in
        match Bw_util.Rng.next_int rng 4 with
        | 0 -> Wire.Put (Wire.Insert, Key.of_int k, k)
        | 1 -> Wire.Put (Wire.Upsert, Key.of_int k, k * 2)
        | 2 -> Wire.Delete (Key.of_int k)
        | _ -> Wire.Get (Key.of_int k))
  in
  (* sequential oracle over the same ops *)
  let oracle = Hashtbl.create 4096 in
  for tid = 0 to nclients - 1 do
    Array.iter
      (fun op ->
        match op with
        | Wire.Put (Wire.Insert, k, v) ->
            let k = Key.to_int k in
            if not (Hashtbl.mem oracle k) then Hashtbl.replace oracle k v
        | Wire.Put (Wire.Upsert, k, v) -> Hashtbl.replace oracle (Key.to_int k) v
        | Wire.Delete k -> Hashtbl.remove oracle (Key.to_int k)
        | _ -> ())
      (ops_for tid)
  done;
  with_server ~workers:3 (fun srv ->
      let port = Server.port srv in
      let conns = Array.init nclients (fun _ -> Bw_client.connect ~port ()) in
      let errors = Atomic.make 0 in
      let domains =
        Array.init nclients (fun tid ->
            Domain.spawn (fun () ->
                let c = conns.(tid) in
                Array.iter
                  (fun op ->
                    (if Bw_client.inflight c >= depth then
                       match Bw_client.recv c with
                       | Wire.Err _ -> Atomic.incr errors
                       | _ -> ());
                    Bw_client.send c op)
                  (ops_for tid);
                Bw_client.flush c;
                while Bw_client.inflight c > 0 do
                  match Bw_client.recv c with
                  | Wire.Err _ -> Atomic.incr errors
                  | _ -> ()
                done))
      in
      Array.iter Domain.join domains;
      Alcotest.(check int) "no ERR replies" 0 (Atomic.get errors);
      (* verify every stripe key against the oracle over a fresh conn *)
      let v = Bw_client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Bw_client.close v;
          Array.iter Bw_client.close conns)
        (fun () ->
          for tid = 0 to nclients - 1 do
            for i = 0 to 499 do
              let k = (tid * stripe) + i in
              Alcotest.(check (option int))
                (Printf.sprintf "key %d" k)
                (Hashtbl.find_opt oracle k)
                (Bw_client.Int_key.get v k)
            done
          done;
          (* and the scan view agrees with the oracle's cardinality *)
          let total = Hashtbl.length oracle in
          let scanned =
            List.length (Bw_client.Int_key.scan v 0 ~n:Wire.max_scan)
          in
          Alcotest.(check int) "scan cardinality" total scanned))

(* ------------------------------------------------------------------ *)
(* Loopback: protocol fuzz and error isolation                          *)
(* ------------------------------------------------------------------ *)

(* a raw socket speaking bytes, for sending malformed traffic *)
let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let raw_send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* read one framed response with a timeout; None on clean EOF *)
let raw_recv_resp fd =
  let dec = Wire.Decoder.create () in
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match Wire.Decoder.next dec with
    | `Frame p -> Some (Wire.decode_resp p)
    | `Framing m -> Alcotest.fail ("client-side framing: " ^ m)
    | `Need_more ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "timeout waiting for response";
        (match Unix.select [ fd ] [] [] 1.0 with
        | [], _, _ -> go ()
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> None
            | n ->
                Wire.Decoder.feed dec buf n;
                go ()))
  in
  go ()

let expect_err name fd =
  match raw_recv_resp fd with
  | Some (Wire.Err _) -> ()
  | Some _ -> Alcotest.fail (name ^ ": expected ERR reply")
  | None -> Alcotest.fail (name ^ ": connection closed instead of ERR")

let frame_of_payload payload =
  let b = Buffer.create (String.length payload + 4) in
  Wire.add_frame b payload;
  Buffer.contents b

let test_fuzz_malformed_frames () =
  let obs = Bw_obs.To (Bw_obs.create ()) in
  with_server ~obs (fun srv ->
      let port = Server.port srv in
      (* a healthy connection that must survive everything below *)
      let healthy = Bw_client.connect ~port () in
      ignore (Bw_client.Int_key.put healthy 7 70);
      let fuzz = raw_connect port in
      (* unknown opcode *)
      raw_send fuzz (frame_of_payload "\255garbage");
      expect_err "unknown opcode" fuzz;
      (* empty payload *)
      raw_send fuzz (frame_of_payload "");
      expect_err "empty payload" fuzz;
      (* truncated PUT body *)
      raw_send fuzz (frame_of_payload "\002\000abc");
      expect_err "truncated put" fuzz;
      (* random garbage payloads, all answered with ERR, none fatal *)
      let rng = Bw_util.Rng.create ~seed:99L in
      for _ = 1 to 200 do
        let len = Bw_util.Rng.next_int rng 64 in
        let payload =
          String.init len (fun _ -> Char.chr (Bw_util.Rng.next_int rng 256))
        in
        raw_send fuzz (frame_of_payload payload);
        match raw_recv_resp fuzz with
        | Some _ -> () (* usually ERR; a lucky valid frame is fine too *)
        | None -> Alcotest.fail "server dropped conn on payload-level garbage"
      done;
      (* the same connection still serves valid requests... *)
      raw_send fuzz (Wire.frame_req (Wire.Get (Key.of_int 7)));
      (match raw_recv_resp fuzz with
      | Some (Wire.Value (Some 70)) -> ()
      | _ -> Alcotest.fail "valid request after fuzz failed");
      (* ...and a framing-level violation gets ERR then close *)
      let n = Wire.max_frame + 1 in
      raw_send fuzz
        (String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff)));
      (match raw_recv_resp fuzz with
      | Some (Wire.Err _) -> ()
      | Some _ -> Alcotest.fail "framing violation: expected ERR"
      | None -> () (* close without reply is acceptable too *));
      (match raw_recv_resp fuzz with
      | None -> ()
      | Some _ -> Alcotest.fail "framing violation must close the conn");
      Unix.close fuzz;
      (* the healthy connection never noticed *)
      Alcotest.(check (option int)) "other conn unaffected" (Some 70)
        (Bw_client.Int_key.get healthy 7);
      Bw_client.close healthy;
      (* and the registry counted the abuse *)
      match obs with
      | Bw_obs.To reg ->
          let sn = Bw_obs.snapshot reg in
          let errors = List.assoc Bw_obs.C_net_errors sn.Bw_obs.sn_counters in
          Alcotest.(check bool) "net_errors counted" true (errors > 0)
      | Bw_obs.Null -> assert false)

let test_close_on_malformed () =
  with_server ~close_on_malformed:true (fun srv ->
      let fuzz = raw_connect (Server.port srv) in
      raw_send fuzz (frame_of_payload "\255bad");
      expect_err "still get ERR first" fuzz;
      (match raw_recv_resp fuzz with
      | None -> ()
      | Some _ -> Alcotest.fail "conn should close after malformed frame");
      Unix.close fuzz)

let test_half_frame_then_eof () =
  (* a client dying mid-frame must not wedge or crash the server *)
  with_server (fun srv ->
      let port = Server.port srv in
      let fuzz = raw_connect port in
      let full = Wire.frame_req (Wire.Get (Key.of_int 1)) in
      raw_send fuzz (String.sub full 0 (String.length full - 2));
      Unix.close fuzz;
      (* server must still serve new connections *)
      let c = Bw_client.connect ~port () in
      ignore (Bw_client.Int_key.put c 1 1);
      Alcotest.(check (option int)) "still serving" (Some 1)
        (Bw_client.Int_key.get c 1);
      Bw_client.close c)

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                      *)
(* ------------------------------------------------------------------ *)

let test_drain_answers_inflight () =
  let srv = start_server () in
  let port = Server.port srv in
  let c = Bw_client.connect ~port () in
  ignore (Bw_client.Int_key.put c 5 50);
  (* pipeline a burst, then stop the server before reading replies *)
  let n = 100 in
  for _ = 1 to n do
    Bw_client.send c (Wire.Get (Key.of_int 5))
  done;
  Bw_client.flush c;
  (* Drain answers requests the server has *received*, not requests in
     the socket buffer — wait for the first reply before stopping. The
     burst left in one write, so one reply means the whole burst was
     read and decoded; without this the test races worker scheduling. *)
  let got = ref 0 in
  (match Bw_client.recv c with
  | Wire.Value (Some 50) -> incr got
  | _ -> Alcotest.fail "wrong reply to the first pipelined GET");
  Server.stop srv;
  (try
     while Bw_client.inflight c > 0 do
       match Bw_client.recv c with
       | Wire.Value (Some 50) -> incr got
       | r ->
           Alcotest.fail
             (match r with
             | Wire.Err m -> "ERR during drain: " ^ m
             | _ -> "wrong reply during drain")
     done
   with Bw_client.Server_closed ->
     Alcotest.fail "server closed before answering in-flight requests");
  Alcotest.(check int) "all in-flight answered" n !got;
  Bw_client.close c

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip units" `Quick test_wire_roundtrip_unit;
          Alcotest.test_case "decoder reassembly" `Quick
            test_wire_decoder_reassembly;
          Alcotest.test_case "oversized frame" `Quick
            test_wire_oversized_frame_flagged;
          Alcotest.test_case "decoder shrinks after a large frame" `Quick
            test_wire_decoder_shrink;
          q prop_wire_req_roundtrip;
          q prop_wire_req_prefix_rejected;
          q prop_wire_resp_roundtrip;
          q prop_wire_resp_prefix_rejected;
          q prop_wire_garbage_never_crashes;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "sync ops" `Quick test_sync_ops;
          Alcotest.test_case "forest backend" `Quick test_forest_backend;
          Alcotest.test_case "batch frames == per-op frames" `Quick
            test_batch_over_wire;
          Alcotest.test_case "concurrent pipelined oracle" `Slow
            test_concurrent_oracle;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "malformed frames isolated" `Quick
            test_fuzz_malformed_frames;
          Alcotest.test_case "close-on-malformed" `Quick
            test_close_on_malformed;
          Alcotest.test_case "half frame then EOF" `Quick
            test_half_frame_then_eof;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "drain answers in-flight" `Quick
            test_drain_answers_inflight;
        ] );
    ]
