(* Cluster layer tests: partition-table properties and codec, agreement
   with the process-local forest partitioner, the typed Read_only /
   Wrong_shard wire errors end to end, and the client-side router over
   in-process {1,2,3}-member clusters against a sequential oracle —
   including ops racing a concurrent range migration. *)

module Table = Bw_cluster.Table
module Slice = Bw_cluster.Slice
module Uniform = Bw_cluster.Uniform
module Gate = Bw_server.Cluster_gate
module Server = Bw_server.Server
module Backend = Bw_server.Backend
module Wire = Bw_server.Wire
module Key = Bw_util.Key_codec

(* ------------------------------------------------------------------ *)
(* Table generators                                                    *)
(* ------------------------------------------------------------------ *)

let gen_u64 =
  QCheck.Gen.(
    map2
      (fun a b ->
        Int64.logor
          (Int64.shift_left (Int64.of_int (a land 0xFFFFFFFF)) 32)
          (Int64.of_int (b land 0xFFFFFFFF)))
      int int)

let gen_endpoint =
  QCheck.Gen.(
    map3
      (fun h p r -> { Table.ep_host = h; ep_port = p; ep_replica = r })
      (oneofl [ "127.0.0.1"; "h0"; "node.example.test" ])
      (int_range 1 65535)
      (option (pair (oneofl [ "127.0.0.1"; "r" ]) (int_range 1 65535))))

let gen_table =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* endpoints = array_size (return n) gen_endpoint in
    let* extra_lows = list_size (int_bound 6) gen_u64 in
    let lows =
      Array.of_list (List.sort_uniq Int64.unsigned_compare (0L :: extra_lows))
    in
    let* owners = array_size (return (Array.length lows)) (int_bound (n - 1)) in
    let* epoch = map Int64.of_int small_nat in
    return (Table.make ~epoch ~endpoints ~lows ~owners))

let arb_table = QCheck.make gen_table

let prop_table_codec_roundtrip =
  QCheck.Test.make ~count:500 ~name:"table codec roundtrip" arb_table (fun t ->
      Table.equal (Table.decode (Table.encode t)) t)

let prop_table_codec_truncation =
  QCheck.Test.make ~count:500 ~name:"truncated table rejected"
    QCheck.(pair arb_table (int_bound 10_000))
    (fun (t, cut) ->
      let enc = Table.encode t in
      let cut = cut mod String.length enc in
      match Table.decode (String.sub enc 0 cut) with
      | _ -> false
      | exception Failure _ -> true)

let prop_table_owner_total =
  QCheck.Test.make ~count:500 ~name:"every slice has an owner"
    QCheck.(pair arb_table (QCheck.make gen_u64))
    (fun (t, u) ->
      let o = Table.owner t u in
      0 <= o && o < Table.n_endpoints t)

let prop_with_range_moved =
  QCheck.Test.make ~count:500 ~name:"with_range_moved reassigns exactly [lo,hi)"
    QCheck.(
      quad arb_table (QCheck.make gen_u64)
        (option (QCheck.make gen_u64))
        (pair small_nat (QCheck.make gen_u64)))
    (fun (t, lo, hi, (dsti, probe)) ->
      let dst = dsti mod Table.n_endpoints t in
      match Table.with_range_moved t ~lo ~hi ~dst with
      | exception Invalid_argument _ ->
          (* only an empty interval is rejected *)
          (match hi with
          | Some h -> Int64.unsigned_compare h lo <= 0
          | None -> false)
      | t' ->
          Table.epoch t' = Int64.add (Table.epoch t) 1L
          && Table.owner t' probe
             = (if Slice.in_range probe ~lo ~hi then dst else Table.owner t probe))

(* The cluster bootstrap table and the process-local forest partitioner
   speak the same coordinates: a fleet of N members and a forest of N
   shards route every int key to the same index. *)
let prop_uniform_matches_part =
  QCheck.Test.make ~count:500 ~name:"of_uniform agrees with Part.shard_of_int"
    QCheck.(pair (int_range 1 8) int)
    (fun (n, k) ->
      let part = Bw_shard.Part.make_int ~lo:0 n in
      let endpoints =
        Array.make n { Table.ep_host = "h"; ep_port = 1; ep_replica = None }
      in
      let tbl = Table.of_uniform ~epoch:1L endpoints (Uniform.make_int ~lo:0 n) in
      Table.owner_int tbl k = Bw_shard.Part.shard_of_int part k)

(* ------------------------------------------------------------------ *)
(* In-process clusters                                                 *)
(* ------------------------------------------------------------------ *)

let endpoint_of port =
  { Table.ep_host = "127.0.0.1"; ep_port = port; ep_replica = None }

(* Boot [n] gated servers on ephemeral loopback ports sharing one
   epoch-1 uniform table over the non-negative ints. The gates start on
   an epoch-0 placeholder (ports are unknown until the listeners are
   up) and install the real table before any traffic. *)
let with_cluster n f =
  let drivers = Array.init n (fun _ -> Harness.Drivers.bwtree_driver_int ()) in
  let backends = Array.map Backend.of_int_driver drivers in
  let u = Uniform.make_int ~lo:0 n in
  let placeholder =
    Table.of_uniform ~epoch:0L (Array.make n (endpoint_of 1)) u
  in
  let gates = Array.init n (fun i -> Gate.create ~self:i placeholder) in
  let servers =
    Array.mapi
      (fun i b ->
        let config =
          { Server.default_config with port = 0; workers = 2; gate = Some gates.(i) }
        in
        Server.start ~config b)
      backends
  in
  let endpoints = Array.map (fun s -> endpoint_of (Server.port s)) servers in
  let table = Table.of_uniform ~epoch:1L endpoints u in
  Array.iter (fun g -> ignore (Gate.install g table : bool)) gates;
  (* migration extraction scans run off the workers' tids 0..1 *)
  let scan_of i k ~n =
    let acc = ref [] in
    ignore
      (backends.(i).Index_iface.scan ~tid:3 k ~n (fun key v ->
           acc := (key, v) :: !acc)
        : int);
    List.rev !acc
  in
  Fun.protect
    ~finally:(fun () -> Array.iter Server.stop servers)
    (fun () -> f ~table ~gates ~scan_of)

(* ------------------------------------------------------------------ *)
(* Typed wire errors end to end                                        *)
(* ------------------------------------------------------------------ *)

(* A write reaching a read-only index must travel as the typed ERR code
   and surface as [Bw_client.Read_only] — not as a stringly error. *)
let test_read_only_end_to_end () =
  let inner = Harness.Drivers.bwtree_driver_int () in
  let ro =
    Backend.of_int_driver
      {
        inner with
        Index_iface.insert = (fun ~tid:_ _ _ -> raise Index_iface.Read_only);
        update = (fun ~tid:_ _ _ -> raise Index_iface.Read_only);
        remove = (fun ~tid:_ _ -> raise Index_iface.Read_only);
        batch = None;
      }
  in
  let config = { Server.default_config with port = 0; workers = 2 } in
  let srv = Server.start ~config ro in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = Bw_client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Bw_client.close c)
        (fun () ->
          (match Bw_client.Int_key.put c 1 2 with
          | _ -> Alcotest.fail "write accepted by a read-only backend"
          | exception Bw_client.Read_only -> ());
          (match Bw_client.Int_key.delete c 1 with
          | _ -> Alcotest.fail "delete accepted by a read-only backend"
          | exception Bw_client.Read_only -> ());
          (* reads still served *)
          Alcotest.(check (option int))
            "read on read-only" None
            (Bw_client.Int_key.get c 1)))

(* During the seal window a covered write answers the typed read-only
   error — the router backs off and retries, resolving to success (on
   abort) or a post-flip redirect. Wrong_shard here would send the
   router into immediate same-epoch refetch loops that can exhaust its
   retry budget while the final drain runs. *)
let test_seal_answers_read_only () =
  let endpoints =
    Array.make 2 { Table.ep_host = "h"; ep_port = 1; ep_replica = None }
  in
  let tbl = Table.of_uniform ~epoch:1L endpoints (Uniform.make_int ~lo:0 2) in
  let g = Gate.create ~self:0 tbl in
  let put k =
    Gate.write g ~tid:0 (Slice.of_int k)
      (Gate.Wop_put (Key.of_int k, 1))
      (fun () -> true)
  in
  Alcotest.(check bool) "owned write applies" true (put 10);
  let m =
    match
      Gate.begin_migration g ~lo:(Slice.of_int 0)
        ~hi:(Some (Slice.of_int 100)) ~dst:1
    with
    | Ok m -> m
    | Error e -> Alcotest.fail ("admission failed: " ^ e)
  in
  Gate.quiesce_fast_writers g;
  Alcotest.(check bool) "covered write captured pre-seal" true (put 10);
  Gate.seal g m;
  (match put 10 with
  | _ -> Alcotest.fail "sealed range accepted a write"
  | exception Index_iface.Read_only -> ());
  Alcotest.(check bool) "uncovered write unaffected by the seal" true (put 200);
  Gate.abort g m;
  Alcotest.(check bool) "write resumes after abort" true (put 10)

(* A direct client hitting the wrong member gets the typed redirect
   carrying the server's epoch. *)
let test_wrong_shard_end_to_end () =
  with_cluster 2 (fun ~table ~gates:_ ~scan_of:_ ->
      let ep1 = Table.endpoint table 1 in
      let c = Bw_client.connect ~host:ep1.Table.ep_host ~port:ep1.Table.ep_port () in
      Fun.protect
        ~finally:(fun () -> Bw_client.close c)
        (fun () ->
          (* key 0 belongs to member 0 *)
          (match Bw_client.Int_key.put c 0 1 with
          | _ -> Alcotest.fail "wrong member accepted the write"
          | exception Bw_client.Wrong_shard e ->
              Alcotest.(check int64) "redirect carries the epoch" 1L e);
          (match Bw_client.Int_key.get c 0 with
          | _ -> Alcotest.fail "wrong member answered the read"
          | exception Bw_client.Wrong_shard _ -> ())))

(* ------------------------------------------------------------------ *)
(* Router vs sequential oracle                                         *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_put of int * int
  | Op_ins of int * int
  | Op_upd of int * int
  | Op_del of int
  | Op_get of int
  | Op_scan of int * int

(* Keys on a coarse grid across the whole non-negative space (so they
   spread over every member), plus a dense low band and some negatives
   (which route to member 0). *)
let gen_key =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> i mod 64 * (max_int / 64)) small_nat);
        (2, small_nat);
        (1, map (fun i -> -i) small_nat);
      ])

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k v -> Op_put (k, v)) gen_key int;
        map2 (fun k v -> Op_ins (k, v)) gen_key int;
        map2 (fun k v -> Op_upd (k, v)) gen_key int;
        map (fun k -> Op_del k) gen_key;
        map (fun k -> Op_get k) gen_key;
        map2 (fun k n -> Op_scan (k, n mod 24)) gen_key small_nat;
      ])

let oracle_scan model k n =
  Hashtbl.fold (fun k' v acc -> if k' >= k then (k', v) :: acc else acc) model []
  |> List.sort compare
  |> List.filteri (fun i _ -> i < n)

(* Apply one op to the routed cluster and to the model; false on any
   observable divergence. *)
let agree r model = function
  | Op_put (k, v) ->
      Hashtbl.replace model k v;
      Bw_router.Int_key.put r k v
  | Op_ins (k, v) ->
      let fresh = not (Hashtbl.mem model k) in
      if fresh then Hashtbl.replace model k v;
      Bw_router.Int_key.put r ~mode:Wire.Insert k v = fresh
  | Op_upd (k, v) ->
      let present = Hashtbl.mem model k in
      if present then Hashtbl.replace model k v;
      Bw_router.Int_key.put r ~mode:Wire.Update k v = present
  | Op_del k ->
      let present = Hashtbl.mem model k in
      Hashtbl.remove model k;
      Bw_router.Int_key.delete r k = present
  | Op_get k -> Bw_router.Int_key.get r k = Hashtbl.find_opt model k
  | Op_scan (k, n) -> Bw_router.Int_key.scan r k ~n = oracle_scan model k n

let prop_router_oracle =
  QCheck.Test.make ~count:12 ~name:"routed cluster == sequential oracle"
    QCheck.(pair (int_range 1 3) (list_of_size (QCheck.Gen.return 80) (QCheck.make gen_op)))
    (fun (n, ops) ->
      with_cluster n (fun ~table ~gates:_ ~scan_of:_ ->
          let r = Bw_router.of_table table in
          Fun.protect
            ~finally:(fun () -> Bw_router.close r)
            (fun () ->
              let model = Hashtbl.create 64 in
              List.for_all (agree r model) ops)))

(* ------------------------------------------------------------------ *)
(* Ops racing a concurrent migration                                   *)
(* ------------------------------------------------------------------ *)

(* Move the hot range out from under a writer: every PUT the router
   acknowledged must be readable — with its final value — after the
   flip, and a full scan must see the moved keys exactly once. *)
let test_migration_race () =
  with_cluster 2 (fun ~table ~gates ~scan_of ->
      let r = Bw_router.of_table table in
      let model = Hashtbl.create 256 in
      for k = 0 to 399 do
        ignore (Bw_router.Int_key.put r k (k * 7) : bool);
        Hashtbl.replace model k (k * 7)
      done;
      (* writer hammers the migrating range, synchronously acked *)
      let acked = Atomic.make 0 and stop = Atomic.make false in
      let writer =
        Domain.spawn (fun () ->
            let r' = Bw_router.of_table table in
            let i = ref 0 in
            while not (Atomic.get stop) do
              ignore (Bw_router.Int_key.put r' (1000 + !i) (3 * !i) : bool);
              Atomic.set acked (!i + 1);
              incr i
            done;
            Bw_router.close r')
      in
      (* [0, 1_000_000) — every test key — moves to member 1 *)
      (match
         Bw_router.Migration.run ~gate:gates.(0) ~scan:(scan_of 0) ~batch:64
           ~lo:(Key.of_int 0)
           ~hi:(Some (Key.of_int 1_000_000))
           ~dst:1 ()
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("migration failed: " ^ e));
      Atomic.set stop true;
      Domain.join writer;
      let acked = Atomic.get acked in
      Alcotest.(check bool) "some writes raced the flip" true (acked > 0);
      for i = 0 to acked - 1 do
        Hashtbl.replace model (1000 + i) (3 * i)
      done;
      Alcotest.(check int64)
        "both gates flipped to epoch 2" 2L
        (Table.epoch (Gate.table gates.(0)));
      Alcotest.(check int64) "destination learned the flip" 2L
        (Table.epoch (Gate.table gates.(1)));
      (* a stale router (still on epoch 1) redirects and recovers *)
      List.iter
        (fun (k, v) ->
          match Bw_router.Int_key.get r k with
          | Some got when got = v -> ()
          | Some got ->
              Alcotest.failf "key %d: got %d, expected %d after the flip" k got v
          | None -> Alcotest.failf "acknowledged key %d lost across the flip" k)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []);
      (* exactly-once scan across the moved boundary *)
      let expected = oracle_scan model min_int (Hashtbl.length model + 10) in
      Alcotest.(check int)
        "scan sees every key exactly once" (List.length expected)
        (List.length (Bw_router.Int_key.scan r min_int ~n:(List.length expected + 10)));
      Alcotest.(check bool)
        "scan items match the oracle" true
        (Bw_router.Int_key.scan r min_int ~n:(List.length expected + 10) = expected);
      Bw_router.close r)

(* Migrations that cannot be admitted answer a validation error and
   leave the table untouched. *)
let test_migration_rejected () =
  with_cluster 2 (fun ~table ~gates ~scan_of ->
      let reject lo hi dst =
        match
          Bw_router.Migration.run ~gate:gates.(0) ~scan:(scan_of 0) ~lo ~hi ~dst ()
        with
        | Ok () -> Alcotest.fail "inadmissible migration ran"
        | Error _ -> ()
      in
      (* to itself, to a bad endpoint, an empty range, a range member 0
         does not own *)
      reject (Key.of_int 0) (Some (Key.of_int 10)) 0;
      reject (Key.of_int 0) (Some (Key.of_int 10)) 7;
      reject (Key.of_int 10) (Some (Key.of_int 10)) 1;
      reject (Key.of_int (max_int / 2 + 1)) None 1;
      Alcotest.(check int64)
        "epoch unchanged after rejections" (Table.epoch table)
        (Table.epoch (Gate.table gates.(0))))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cluster"
    [
      ( "table",
        [
          q prop_table_codec_roundtrip;
          q prop_table_codec_truncation;
          q prop_table_owner_total;
          q prop_with_range_moved;
          q prop_uniform_matches_part;
        ] );
      ( "wire-errors",
        [
          Alcotest.test_case "READ_ONLY is typed end to end" `Quick
            test_read_only_end_to_end;
          Alcotest.test_case "seal answers READ_ONLY" `Quick
            test_seal_answers_read_only;
          Alcotest.test_case "EWRONGSHARD is typed end to end" `Quick
            test_wrong_shard_end_to_end;
        ] );
      ( "router",
        [
          q prop_router_oracle;
          Alcotest.test_case "ops racing a migration" `Quick
            test_migration_race;
          Alcotest.test_case "inadmissible migrations rejected" `Quick
            test_migration_rejected;
        ] );
    ]
