(* Tests for the replication subsystem (lib/replica): wire roundtrips
   for the stream frames, the standby applier driven by synthetic frames
   and checked against a sequential oracle (a standby that has applied
   any committed WAL prefix must equal the oracle over exactly that
   prefix), stream-protocol edge cases, and promotion — both the on-disk
   WAL-tail replay and the cold-rebuild fallback. *)

module Wire = Bw_server.Wire
module T = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module Store_int = Pagestore.Store.Make (Pagestore.Codec.Int) (T)
module W = Store_int.W
module F = Bw_replica.F_int

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bwt-test-replica-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  Pagestore.Store.rm_rf dir;
  Fun.protect ~finally:(fun () -> Pagestore.Store.rm_rf dir) (fun () -> f dir)

let ok = function
  | Wire.Repl_ok n -> n
  | Wire.Err m -> Alcotest.fail ("unexpected ERR: " ^ m)
  | _ -> Alcotest.fail "unexpected response shape"

let expect_err = function
  | Wire.Err _ -> ()
  | Wire.Repl_ok n -> Alcotest.failf "expected ERR, got Repl_ok %d" n
  | _ -> Alcotest.fail "unexpected response shape"

let subscribe ?(shards = 1) f =
  Alcotest.(check int)
    "subscribe ack" 0
    (ok (F.handle f ~tid:0 (Wire.R_subscribe { key_type = "int"; shards })))

(* bootstrap a shard with an empty generation-[gen] snapshot *)
let bootstrap_empty ?(gen = 0) f shard =
  ignore
    (ok
       (F.handle f ~tid:0
          (Wire.R_snapshot
             {
               shard;
               gen;
               start_rec = 0;
               start_ops = 0;
               pages = [];
               last = true;
               items = 0;
             }))
      : int)

let chunk ?(gen = 0) f ~shard ~from_rec groups =
  F.handle f ~tid:0
    (Wire.R_walchunk { shard; gen; from_rec; groups; p_recs = 0; p_bytes = 0 })

(* --- wire roundtrips for the replication frames --- *)

let roundtrip_req r =
  let buf = Buffer.create 64 in
  Wire.encode_req buf r;
  Wire.decode_req (Buffer.contents buf)

let test_wire_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "request roundtrip" true (roundtrip_req r = r))
    [
      Wire.Repl (Wire.R_subscribe { key_type = "int"; shards = 4 });
      Wire.Repl
        (Wire.R_snapshot
           {
             shard = 2;
             gen = 3;
             start_rec = 11;
             start_ops = 400;
             pages = [ "page-a"; ""; "page-c" ];
             last = true;
             items = 12345;
           });
      Wire.Repl
        (Wire.R_walchunk
           {
             shard = 0;
             gen = 7;
             from_rec = 99;
             groups = [ "g1"; "g2" ];
             p_recs = 120;
             p_bytes = 9999;
           });
      Wire.Repl (Wire.R_promote { data_dir = None });
      Wire.Repl (Wire.R_promote { data_dir = Some "/var/data/primary" });
    ];
  let buf = Buffer.create 8 in
  Wire.encode_resp buf (Wire.Repl_ok 42);
  Alcotest.(check bool)
    "ack roundtrip" true
    (Wire.decode_resp (Buffer.contents buf) = Wire.Repl_ok 42)

(* --- stream protocol guards --- *)

let test_protocol_guards () =
  let f = F.create ~key_type:"int" ~shards:2 () in
  expect_err
    (F.handle f ~tid:0 (Wire.R_subscribe { key_type = "str"; shards = 2 }));
  expect_err
    (F.handle f ~tid:0 (Wire.R_subscribe { key_type = "int"; shards = 3 }));
  subscribe ~shards:2 f;
  (* chunks are refused until the shard bootstraps, and for bad shards *)
  expect_err (chunk f ~shard:0 ~from_rec:0 [ W.encode_ops [ W.W_insert (1, 1) ] ]);
  expect_err (chunk f ~shard:9 ~from_rec:0 []);
  bootstrap_empty f 0;
  bootstrap_empty f 1;
  let g0 = W.encode_ops [ W.W_insert (1, 10); W.W_insert (2, 20) ] in
  Alcotest.(check int) "chunk applied" 1 (ok (chunk f ~shard:0 ~from_rec:0 [ g0 ]));
  (* cursor mismatch in either direction is refused, state unchanged *)
  expect_err (chunk f ~shard:0 ~from_rec:0 [ g0 ]);
  expect_err (chunk f ~shard:0 ~from_rec:5 [ g0 ]);
  Alcotest.(check int) "stream resumes at the acknowledged record" 2
    (ok (chunk f ~shard:0 ~from_rec:1 [ W.encode_ops [ W.W_remove 1 ] ]));
  let d = (F.drivers f).(0) in
  Alcotest.(check (option int)) "applied state" (Some 20)
    (d.Index_iface.read ~tid:0 2);
  Alcotest.(check (option int)) "remove applied" None
    (d.Index_iface.read ~tid:0 1)

let test_generation_handoff () =
  let f = F.create ~key_type:"int" ~shards:1 () in
  subscribe f;
  bootstrap_empty f 0;
  ignore
    (ok (chunk f ~shard:0 ~from_rec:0 [ W.encode_ops [ W.W_insert (1, 1) ] ])
      : int);
  (* a full checkpoint on the primary retired the followed WAL: the next
     chunk opens the successor generation at record zero and the state
     carries over without a re-bootstrap *)
  Alcotest.(check int) "handoff resets the record cursor" 1
    (ok
       (chunk ~gen:1 f ~shard:0 ~from_rec:0
          [ W.encode_ops [ W.W_insert (2, 2) ] ]));
  (* stale-generation chunks are refused *)
  expect_err
    (chunk ~gen:0 f ~shard:0 ~from_rec:1 [ W.encode_ops [ W.W_insert (3, 3) ] ]);
  let d = (F.drivers f).(0) in
  Alcotest.(check (option int)) "pre-handoff state retained" (Some 1)
    (d.Index_iface.read ~tid:0 1);
  Alcotest.(check (option int)) "post-handoff chunk applied" (Some 2)
    (d.Index_iface.read ~tid:0 2)

let test_read_only_until_promoted () =
  let f = F.create ~key_type:"int" ~shards:1 () in
  subscribe f;
  bootstrap_empty f 0;
  let d = (F.drivers f).(0) in
  (match d.Index_iface.insert ~tid:0 7 7 with
  | _ -> Alcotest.fail "write accepted while following"
  | exception Index_iface.Read_only -> ());
  Alcotest.(check bool) "not promoted" false (F.promoted f);
  Alcotest.(check int) "promote without a primary dir replays nothing" 0
    (ok (F.handle f ~tid:0 (Wire.R_promote { data_dir = None })));
  Alcotest.(check bool) "promoted" true (F.promoted f);
  (* the stream is sealed once promoted... *)
  expect_err (chunk f ~shard:0 ~from_rec:0 []);
  expect_err
    (F.handle f ~tid:0 (Wire.R_subscribe { key_type = "int"; shards = 1 }));
  (* ...and PROMOTE is idempotent *)
  Alcotest.(check int) "second promote" 0
    (ok (F.handle f ~tid:0 (Wire.R_promote { data_dir = None })));
  Alcotest.(check bool) "writes accepted once promoted" true
    (d.Index_iface.insert ~tid:0 7 7);
  Alcotest.(check (option int)) "write visible" (Some 7)
    (d.Index_iface.read ~tid:0 7)

(* --- snapshot bootstrap from real checkpoint pages --- *)

let test_snapshot_bootstrap () =
  with_tmp_dir (fun dir ->
      let st, _ = Store_int.open_dir ~fsync:false ~dir () in
      let t = Store_int.tree st in
      for k = 0 to 99 do
        ignore (T.insert t k (k * 2) : bool);
        W.commit (Store_int.wal st) ~tid:0 [ W.W_insert (k, k * 2) ]
      done;
      ignore (Store_int.checkpoint st : int * int);
      Store_int.close st;
      (* read the generation-1 checkpoint the way the shipper's bootstrap
         does: raw page records plus the manifest's item count *)
      let plog, _ =
        Pagestore.Log.open_dir ~dir:(Pagestore.Store.pages_dir dir 1) ()
      in
      let root =
        match Store_int.newest_manifest plog with
        | Some off -> off
        | None -> Alcotest.fail "no manifest in the pages log"
      in
      let m = Store_int.CP.manifest plog root in
      let pages =
        Array.to_list
          (Array.map (Pagestore.Log.read plog) m.Store_int.CP.pages)
      in
      Pagestore.Log.close plog;
      let items = m.Store_int.CP.item_count in
      let snap f ~last ~items pages =
        F.handle f ~tid:0
          (Wire.R_snapshot
             { shard = 0; gen = 1; start_rec = 0; start_ops = 0; pages; last; items })
      in
      let n = List.length pages in
      let first = List.filteri (fun i _ -> i < n / 2) pages in
      let rest = List.filteri (fun i _ -> i >= n / 2) pages in
      let f = F.create ~key_type:"int" ~shards:1 () in
      subscribe f;
      ignore (ok (snap f ~last:false ~items:0 first) : int);
      (* chunks are refused while the bootstrap is still in flight *)
      expect_err (chunk ~gen:1 f ~shard:0 ~from_rec:0 []);
      ignore (ok (snap f ~last:true ~items rest) : int);
      let d = (F.drivers f).(0) in
      for k = 0 to 99 do
        Alcotest.(check (option int))
          (Printf.sprintf "bootstrapped key %d" k)
          (Some (k * 2))
          (d.Index_iface.read ~tid:0 k)
      done;
      (* a final chunk whose loaded count disagrees with the manifest is
         an integrity failure, not an armed stream *)
      let f2 = F.create ~key_type:"int" ~shards:1 () in
      subscribe f2;
      expect_err (snap f2 ~last:true ~items first))

(* --- qcheck: any applied prefix equals the sequential oracle --- *)

let gen_case =
  QCheck.(
    triple
      (list_of_size (Gen.int_range 0 150)
         (triple (int_bound 3) (int_bound 60) (int_bound 1000)))
      (int_bound 1000) (* group-size seed *)
      (int_bound 1000) (* prefix selector *))

let wal_op (op, k, v) =
  match op with
  | 0 -> W.W_insert (k, v)
  | 1 -> W.W_update (k, v)
  | 2 -> W.W_upsert (k, v)
  | _ -> W.W_remove k

let apply_oracle o (op, k, v) =
  match op with
  | 0 -> if not (Hashtbl.mem o k) then Hashtbl.replace o k v
  | 1 -> if Hashtbl.mem o k then Hashtbl.replace o k v
  | 2 -> Hashtbl.replace o k v
  | _ -> Hashtbl.remove o k

(* split [xs] into commit groups of 1–4 ops, sizes derived from [seed] *)
let group_by seed xs =
  let rec go i acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        let cur = x :: cur in
        if List.length cur >= n then
          go (i + 1) (List.rev cur :: acc) [] (1 + ((seed + i) mod 4)) tl
        else go i acc cur n tl
  in
  go 0 [] [] (1 + (seed mod 4)) xs

let run_follow ~shards (ops, seed, prefix_sel) =
  let part = Bw_shard.Part.make_int ~lo:0 ~hi:63 shards in
  let cut = prefix_sel mod (List.length ops + 1) in
  let prefix = List.filteri (fun i _ -> i < cut) ops in
  let f = F.create ~key_type:"int" ~shards () in
  ignore
    (ok (F.handle f ~tid:0 (Wire.R_subscribe { key_type = "int"; shards }))
      : int);
  for s = 0 to shards - 1 do
    bootstrap_empty f s
  done;
  (* route the prefix to its per-shard streams, preserving arrival order *)
  let per_shard = Array.make shards [] in
  List.iter
    (fun ((_, k, _) as o) ->
      let s = Bw_shard.Part.shard_of_int part k in
      per_shard.(s) <- o :: per_shard.(s))
    prefix;
  Array.iteri
    (fun s rev_ops ->
      let groups = group_by seed (List.map wal_op (List.rev rev_ops)) in
      let payloads = List.map W.encode_ops groups in
      if seed land 1 = 1 then
        (* everything in one multi-group chunk *)
        (if payloads <> [] then
           ignore (ok (chunk f ~shard:s ~from_rec:0 payloads) : int))
      else
        (* one chunk per commit group, acks checked along the way *)
        List.iteri
          (fun i p ->
            let acked = ok (chunk f ~shard:s ~from_rec:i [ p ]) in
            if acked <> i + 1 then
              Alcotest.failf "shard %d acked %d at record %d" s acked (i + 1))
          payloads)
    per_shard;
  let oracle = Hashtbl.create 64 in
  List.iter (apply_oracle oracle) prefix;
  let drivers = F.drivers f in
  List.for_all
    (fun k ->
      let d = drivers.(Bw_shard.Part.shard_of_int part k) in
      d.Index_iface.read ~tid:0 k = Hashtbl.find_opt oracle k)
    (List.init 64 Fun.id)

let prop_follow_prefix_oracle =
  QCheck.Test.make ~count:60
    ~name:"standby over any committed WAL prefix matches sequential oracle"
    gen_case (run_follow ~shards:1)

let prop_follow_prefix_oracle_forest =
  QCheck.Test.make ~count:30
    ~name:"3-shard standby over any committed prefix matches oracle" gen_case
    (run_follow ~shards:3)

(* --- promotion: durable-tail replay and cold-rebuild fallback --- *)

let test_promotion_tail_replay () =
  with_tmp_dir (fun dir ->
      let st, _ = Store_int.open_dir ~fsync:false ~dir () in
      let t = Store_int.tree st in
      for g = 0 to 39 do
        let ops =
          List.init 3 (fun j ->
              let k = (g * 3) + j in
              ignore (T.insert t k (k * 7) : bool);
              W.W_insert (k, k * 7))
        in
        W.commit (Store_int.wal st) ~tid:0 ops
      done;
      (* collect the stream exactly as the shipper would *)
      let cur = Pagestore.Wal.fresh_cursor () in
      let payloads = ref [] in
      ignore
        (W.tail (Store_int.wal st) cur (fun p -> payloads := p :: !payloads)
          : int);
      let payloads = List.rev !payloads in
      Store_int.close st;
      let f = F.create ~key_type:"int" ~shards:1 () in
      subscribe f;
      bootstrap_empty f 0;
      (* only the first 25 records arrived before the "crash" *)
      let prefix = List.filteri (fun i _ -> i < 25) payloads in
      Alcotest.(check int) "prefix applied" 25
        (ok (chunk f ~shard:0 ~from_rec:0 prefix));
      (* promotion replays records 25..39 (45 ops) from the primary's
         on-disk WAL — the acknowledged writes the stream never shipped *)
      Alcotest.(check int) "tail replayed" 45
        (ok (F.handle f ~tid:0 (Wire.R_promote { data_dir = Some dir })));
      let d = (F.drivers f).(0) in
      for k = 0 to 119 do
        Alcotest.(check (option int))
          (Printf.sprintf "key %d after failover" k)
          (Some (k * 7))
          (d.Index_iface.read ~tid:0 k)
      done)

let test_promotion_cold_rebuild () =
  with_tmp_dir (fun dir ->
      let st, _ = Store_int.open_dir ~fsync:false ~dir () in
      let t = Store_int.tree st in
      let put k =
        ignore (T.insert t k (k + 1) : bool);
        W.commit (Store_int.wal st) ~tid:0 [ W.W_insert (k, k + 1) ]
      in
      for k = 0 to 199 do put k done;
      ignore (Store_int.checkpoint st : int * int);
      for k = 200 to 229 do put k done;
      Store_int.close st;
      (* this follower was still streaming generation 0 when the primary
         checkpointed into generation 1 and died: the WAL it was
         following is gone from disk, so promotion must fall back to a
         cold rebuild of the committed state *)
      let f = F.create ~key_type:"int" ~shards:1 () in
      subscribe f;
      bootstrap_empty f 0;
      ignore
        (ok
           (chunk f ~shard:0 ~from_rec:0 [ W.encode_ops [ W.W_insert (9999, 1) ] ])
          : int);
      Alcotest.(check int) "cold rebuild replays the committed WAL suffix" 30
        (ok (F.handle f ~tid:0 (Wire.R_promote { data_dir = Some dir })));
      let d = (F.drivers f).(0) in
      Alcotest.(check (option int)) "uncommitted streamed state discarded"
        None
        (d.Index_iface.read ~tid:0 9999);
      for k = 0 to 229 do
        Alcotest.(check (option int))
          (Printf.sprintf "committed key %d" k)
          (Some (k + 1))
          (d.Index_iface.read ~tid:0 k)
      done)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "replica"
    [
      ( "wire",
        [ Alcotest.test_case "repl frame roundtrips" `Quick test_wire_roundtrip ]
      );
      ( "stream",
        [
          Alcotest.test_case "protocol guards" `Quick test_protocol_guards;
          Alcotest.test_case "generation handoff" `Quick
            test_generation_handoff;
          Alcotest.test_case "read-only until promoted" `Quick
            test_read_only_until_promoted;
          Alcotest.test_case "snapshot bootstrap" `Quick
            test_snapshot_bootstrap;
          q prop_follow_prefix_oracle;
          q prop_follow_prefix_oracle_forest;
        ] );
      ( "promotion",
        [
          Alcotest.test_case "durable tail replay" `Quick
            test_promotion_tail_replay;
          Alcotest.test_case "cold-rebuild fallback" `Quick
            test_promotion_cold_rebuild;
        ] );
    ]
