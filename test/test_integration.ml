(* Cross-index integration tests: all six indexes driven through the
   uniform driver interface agree with each other and with a model on the
   same operation sequences, and the harness plumbing (load/run phases,
   barrier, memory measurement) behaves. *)

open Harness
module W = Workload

let drivers () : (string * int Runner.driver) list =
  List.map (fun (name, mk) -> (name, mk ())) (Drivers.int_lineup ())

let str_drivers () : (string * string Runner.driver) list =
  List.map (fun (name, mk) -> (name, mk ())) (Drivers.str_lineup ())

(* replay the same random op sequence on every index and on a model;
   verify identical observable results *)
let test_cross_index_agreement () =
  let ds = drivers () in
  List.iter (fun (_, d) -> d.Runner.start_aux ()) ds;
  let module IntMap = Map.Make (Int) in
  let model = ref IntMap.empty in
  let rng = Bw_util.Rng.create ~seed:2024L in
  for _ = 1 to 8_000 do
    let k = Bw_util.Rng.next_int rng 1_000 in
    match Bw_util.Rng.next_int rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        if expected then model := IntMap.add k (k * 2) !model;
        List.iter
          (fun (name, d) ->
            Alcotest.(check bool)
              (name ^ " insert") expected
              (d.Runner.insert ~tid:0 k (k * 2)))
          ds
    | 1 ->
        let expected = IntMap.mem k !model in
        model := IntMap.remove k !model;
        List.iter
          (fun (name, d) ->
            Alcotest.(check bool)
              (name ^ " remove") expected
              (d.Runner.remove ~tid:0 k))
          ds
    | 2 ->
        let v = Bw_util.Rng.next_int rng 1_000_000 in
        let expected = IntMap.mem k !model in
        if expected then model := IntMap.add k v !model;
        List.iter
          (fun (name, d) ->
            Alcotest.(check bool)
              (name ^ " update") expected
              (d.Runner.update ~tid:0 k v))
          ds
    | _ ->
        let expected = IntMap.find_opt k !model in
        List.iter
          (fun (name, d) ->
            Alcotest.(check (option int))
              (name ^ " read") expected
              (d.Runner.read ~tid:0 k))
          ds
  done;
  List.iter (fun (_, d) -> d.Runner.stop_aux ()) ds

let test_scan_agreement () =
  let ds = drivers () in
  List.iter (fun (_, d) -> d.Runner.start_aux ()) ds;
  List.iter
    (fun (_, d) ->
      for k = 0 to 2_000 do
        ignore (d.Runner.insert ~tid:0 (k * 3) k)
      done)
    ds;
  (* give the skip list's maintenance thread a beat *)
  Unix.sleepf 0.05;
  List.iter
    (fun start ->
      let counts =
        List.map
          (fun (name, d) -> (name, d.Runner.scan ~tid:0 start ~n:50 (fun _ _ -> ())))
          ds
      in
      let _, first = List.hd counts in
      List.iter
        (fun (name, c) ->
          Alcotest.(check int) (Printf.sprintf "%s scan@%d" name start) first c)
        counts)
    [ 0; 1; 2_999; 5_998; 6_001; 999_999 ];
  List.iter (fun (_, d) -> d.Runner.stop_aux ()) ds

let test_string_cross_index () =
  let ds = str_drivers () in
  List.iter (fun (_, d) -> d.Runner.start_aux ()) ds;
  let keys = Array.init 3_000 W.email_key_of in
  Array.iteri
    (fun i k ->
      List.iter
        (fun (name, d) ->
          Alcotest.(check bool) (name ^ " str insert") true
            (d.Runner.insert ~tid:0 k i))
        ds)
    keys;
  Array.iteri
    (fun i k ->
      List.iter
        (fun (name, d) ->
          Alcotest.(check (option int)) (name ^ " str read") (Some i)
            (d.Runner.read ~tid:0 k))
        ds)
    keys;
  List.iter (fun (_, d) -> d.Runner.stop_aux ()) ds

(* visitor-based scan early termination: the count cap must be honoured
   exactly at the edges on every index — n=0 visits nothing, n=1 stops
   after the first item, an empty tree and a start key past the maximum
   both visit nothing *)
let test_scan_early_termination () =
  (* empty trees first: no visits regardless of n *)
  let empty = drivers () in
  List.iter (fun (_, d) -> d.Runner.start_aux ()) empty;
  List.iter
    (fun (name, d) ->
      List.iter
        (fun n ->
          let visited = ref 0 in
          let c = d.Runner.scan ~tid:0 0 ~n (fun _ _ -> incr visited) in
          Alcotest.(check int) (Printf.sprintf "%s empty n=%d count" name n) 0 c;
          Alcotest.(check int) (Printf.sprintf "%s empty n=%d visits" name n) 0
            !visited)
        [ 0; 1; 50 ])
    empty;
  List.iter (fun (_, d) -> d.Runner.stop_aux ()) empty;
  (* populated trees: keys 0,10,20,...,990 with value = key * 7 *)
  let ds = drivers () in
  List.iter (fun (_, d) -> d.Runner.start_aux ()) ds;
  List.iter
    (fun (_, d) ->
      for i = 0 to 99 do
        ignore (d.Runner.insert ~tid:0 (i * 10) (i * 70))
      done)
    ds;
  Unix.sleepf 0.05;
  List.iter
    (fun (name, d) ->
      (* n=0: the visitor must never fire, even with matching items *)
      let visited = ref 0 in
      let c = d.Runner.scan ~tid:0 0 ~n:0 (fun _ _ -> incr visited) in
      Alcotest.(check int) (name ^ " n=0 count") 0 c;
      Alcotest.(check int) (name ^ " n=0 visits") 0 !visited;
      (* n=1: exactly the first item >= start, then stop *)
      let got = ref [] in
      let c = d.Runner.scan ~tid:0 15 ~n:1 (fun k v -> got := (k, v) :: !got) in
      Alcotest.(check int) (name ^ " n=1 count") 1 c;
      Alcotest.(check (list (pair int int))) (name ^ " n=1 item") [ (20, 140) ]
        !got;
      (* start exactly on an existing key is inclusive *)
      let got = ref [] in
      let c = d.Runner.scan ~tid:0 20 ~n:1 (fun k v -> got := (k, v) :: !got) in
      Alcotest.(check int) (name ^ " inclusive count") 1 c;
      Alcotest.(check (list (pair int int)))
        (name ^ " inclusive item") [ (20, 140) ] !got;
      (* cap larger than remaining items: visits exactly the tail *)
      let visited = ref 0 in
      let c = d.Runner.scan ~tid:0 981 ~n:50 (fun _ _ -> incr visited) in
      Alcotest.(check int) (name ^ " tail count") 1 c;
      Alcotest.(check int) (name ^ " tail visits") 1 !visited;
      (* start past the maximum key: nothing to visit *)
      let visited = ref 0 in
      let c = d.Runner.scan ~tid:0 991 ~n:10 (fun _ _ -> incr visited) in
      Alcotest.(check int) (name ^ " past-max count") 0 c;
      Alcotest.(check int) (name ^ " past-max visits") 0 !visited)
    ds;
  List.iter (fun (_, d) -> d.Runner.stop_aux ()) ds

(* the harness load/run plumbing produces sensible results *)
let test_harness_phases () =
  let cfg = { W.default_config with num_keys = 5_000; num_ops = 10_000 } in
  let d = Drivers.bwtree_driver_int () in
  let trace = W.load_trace cfg W.Rand_int (W.int_key_of W.Rand_int) in
  let load = Runner.load d ~nthreads:4 trace in
  Alcotest.(check int) "load ops" 5_000 load.ops;
  Alcotest.(check bool) "load time positive" true (load.seconds > 0.0);
  let traces =
    Array.init 4 (fun tid ->
        W.ops_trace cfg W.Rand_int W.Read_update ~tid ~nthreads:4
          (W.int_key_of W.Rand_int))
  in
  let run = Runner.run d traces in
  Alcotest.(check int) "run ops" 10_000 run.ops;
  Alcotest.(check bool) "throughput positive" true (run.mops > 0.0);
  d.Runner.stop_aux ();
  Alcotest.(check bool) "memory measured" true (d.Runner.memory_words () > 10_000)

let test_harness_hc_and_all_mixes () =
  (* every mix runs end-to-end through the harness on every index without
     error (smoke-level, small sizes) *)
  let cfg = { W.default_config with num_keys = 2_000; num_ops = 4_000 } in
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun mix ->
          let d = mk () in
          let trace = W.load_trace cfg W.Rand_int (W.int_key_of W.Rand_int) in
          ignore (Runner.load d ~nthreads:2 trace);
          (match mix with
          | W.Insert_only -> ()
          | _ ->
              let traces =
                Array.init 2 (fun tid ->
                    W.ops_trace cfg W.Rand_int mix ~tid ~nthreads:2
                      (W.int_key_of W.Rand_int))
              in
              let r = Runner.run d traces in
              Alcotest.(check bool)
                (Printf.sprintf "%s ran" name)
                true (r.ops > 0));
          d.Runner.stop_aux ())
        [ W.Insert_only; W.Read_only; W.Read_update; W.Scan_insert ])
    (Drivers.int_lineup ())

let test_barrier () =
  let b = Runner.Barrier.create 4 in
  let released = Atomic.make 0 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Runner.Barrier.arrive b;
            ignore (Atomic.fetch_and_add released 1)))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all released" 4 (Atomic.get released)

let () =
  Alcotest.run "integration"
    [
      ( "cross-index",
        [
          Alcotest.test_case "agreement" `Slow test_cross_index_agreement;
          Alcotest.test_case "scan agreement" `Slow test_scan_agreement;
          Alcotest.test_case "scan early termination" `Quick
            test_scan_early_termination;
          Alcotest.test_case "string keys" `Slow test_string_cross_index;
        ] );
      ( "harness",
        [
          Alcotest.test_case "phases" `Quick test_harness_phases;
          Alcotest.test_case "all mixes all indexes" `Slow
            test_harness_hc_and_all_mixes;
          Alcotest.test_case "barrier" `Quick test_barrier;
        ] );
    ]
