(* Tests for the epoch-based reclamation substrate: both the centralized
   (original Bw-Tree) and decentralized (OpenBw-Tree) schemes. *)

let obj () = Obj.repr (ref 0)

let stats_check e ~retired ~reclaimed =
  let s = Epoch.stats e in
  Alcotest.(check int) "retired" retired s.retired;
  Alcotest.(check int) "reclaimed" reclaimed s.reclaimed

(* --- centralized --- *)

let test_c_basic_reclaim () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  Epoch.op_begin e ~tid:0;
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:0;
  stats_check e ~retired:1 ~reclaimed:0;
  (* one advance unchains the epoch, the drain needs all members out *)
  Epoch.advance e;
  Epoch.advance e;
  stats_check e ~retired:1 ~reclaimed:1

let test_c_blocked_by_reader () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  Epoch.op_begin e ~tid:0;
  (* tid 1 retires while tid 0 still holds the epoch *)
  Epoch.op_begin e ~tid:1;
  Epoch.retire e ~tid:1 (obj ());
  Epoch.op_end e ~tid:1;
  Epoch.advance e;
  Epoch.advance e;
  Alcotest.(check int) "held back" 0 (Epoch.stats e).reclaimed;
  Epoch.op_end e ~tid:0;
  Epoch.advance e;
  Alcotest.(check int) "released" 1 (Epoch.stats e).reclaimed

let test_c_multiple_epochs () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  for i = 1 to 10 do
    Epoch.op_begin e ~tid:0;
    Epoch.retire e ~tid:0 (obj ());
    Epoch.op_end e ~tid:0;
    Epoch.advance e;
    ignore i
  done;
  Epoch.advance e;
  stats_check e ~retired:10 ~reclaimed:10

let test_c_enters_counted () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  for _ = 1 to 5 do
    Epoch.op_begin e ~tid:0;
    Epoch.op_end e ~tid:0
  done;
  Alcotest.(check int) "enters" 5 (Epoch.stats e).enters

(* --- decentralized --- *)

let test_d_basic_reclaim () =
  let e =
    Epoch.create ~scheme:Epoch.Decentralized ~max_threads:2 ~gc_threshold:4 ()
  in
  Epoch.op_begin e ~tid:0;
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:0;
  (* nothing reclaimed yet: tag == watermark *)
  Alcotest.(check int) "pending" 1 (Epoch.pending e);
  Epoch.advance e;
  Epoch.op_begin e ~tid:0;
  Epoch.op_end e ~tid:0;
  Epoch.flush e;
  Alcotest.(check int) "drained" 0 (Epoch.pending e)

let test_d_blocked_by_stale_reader () =
  let e =
    Epoch.create ~scheme:Epoch.Decentralized ~max_threads:2 ~gc_threshold:2 ()
  in
  (* tid 1 publishes an old epoch and stays there *)
  Epoch.op_begin e ~tid:1;
  Epoch.advance e;
  Epoch.op_begin e ~tid:0;
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:0;
  Epoch.advance e;
  (* tid 1's stale published epoch pins the watermark *)
  Epoch.op_begin e ~tid:0;
  Epoch.op_end e ~tid:0;
  let s = Epoch.stats e in
  Alcotest.(check int) "held back" 0 s.reclaimed;
  (* after tid 1 quiesces, reclamation can proceed *)
  Epoch.quiesce e ~tid:1;
  Epoch.advance e;
  Epoch.flush e;
  Alcotest.(check int) "released" 0 (Epoch.pending e)

let test_d_threshold_trigger () =
  let e =
    Epoch.create ~scheme:Epoch.Decentralized ~max_threads:1 ~gc_threshold:8 ()
  in
  for _ = 1 to 100 do
    Epoch.op_begin e ~tid:0;
    Epoch.retire e ~tid:0 (obj ());
    Epoch.op_end e ~tid:0
  done;
  Epoch.quiesce e ~tid:0;
  (* the self-advancing collector must have freed most of the bag without
     any explicit advance call *)
  Alcotest.(check bool) "collector made progress" true
    ((Epoch.stats e).reclaimed > 50)

let test_d_quiesce_unblocks () =
  let e =
    Epoch.create ~scheme:Epoch.Decentralized ~max_threads:3 ~gc_threshold:1 ()
  in
  Epoch.op_begin e ~tid:2;
  Epoch.quiesce e ~tid:2;
  Epoch.op_begin e ~tid:0;
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:0;
  Epoch.quiesce e ~tid:0;
  Epoch.advance e;
  Epoch.flush e;
  Alcotest.(check int) "drained" 0 (Epoch.pending e)

(* --- reclamation-race regressions --- *)

(* retire vs. advance: the collector drains the epoch retire has chosen
   between epoch selection and garbage publication. Pre-fix, the object
   was parked on the dead epoch's list and leaked forever; the fix
   validates against [head] after publishing and re-parks on the fresh
   current epoch. The test drives the exact schedule through the
   [test_retire_window] hook, so it is deterministic. *)
let test_c_retire_advance_race () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  let fired = ref false in
  Epoch.test_retire_window :=
    (fun () ->
      if not !fired then begin
        fired := true;
        Epoch.advance e;
        Epoch.advance e
      end);
  Fun.protect ~finally:(fun () -> Epoch.test_retire_window := fun () -> ())
  @@ fun () ->
  Epoch.retire e ~tid:0 (obj ());
  Epoch.advance e;
  Epoch.advance e;
  Alcotest.(check int) "not stranded in a dead epoch" 0 (Epoch.pending e)

(* same window, but with the target epoch still undrained when retire
   validates: the re-park must steal the garbage back without losing or
   double-counting anything *)
let test_c_retire_repark_preserves_garbage () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  let fired = ref false in
  Epoch.test_retire_window :=
    (fun () ->
      if not !fired then begin
        fired := true;
        (* pin the epoch retire chose so the advances unchain it into the
           deferred queue without draining it *)
        Epoch.op_begin e ~tid:1;
        Epoch.advance e;
        Epoch.advance e
      end);
  Fun.protect ~finally:(fun () -> Epoch.test_retire_window := fun () -> ())
  @@ fun () ->
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:1;
  Epoch.advance e;
  Epoch.advance e;
  stats_check e ~retired:1 ~reclaimed:1

(* reclamation stats are bumped by the background advancer and foreground
   flush callers concurrently; pre-fix both wrote the same per-thread row
   non-atomically, losing updates so [pending] never returned to zero *)
let test_c_stats_concurrent_advancers () =
  let retirers = 2 and advancers = 2 in
  let retire_iters = 20_000 in
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:retirers () in
  let domains =
    Array.init (retirers + advancers) (fun i ->
        Domain.spawn (fun () ->
            if i < retirers then
              for _ = 1 to retire_iters do
                Epoch.op_begin e ~tid:i;
                Epoch.retire e ~tid:i (obj ());
                Epoch.op_end e ~tid:i
              done
            else
              for _ = 1 to 2_000 do
                Epoch.advance e
              done))
  in
  Array.iter Domain.join domains;
  Epoch.flush e;
  let s = Epoch.stats e in
  Alcotest.(check int) "all retired" (retirers * retire_iters) s.retired;
  Alcotest.(check int) "exact reclaim accounting" 0 (Epoch.pending e)

(* op exit must release the watermark: pre-fix, [op_end] re-published the
   current global epoch, so a thread that completed its last operation
   pinned every other thread's bags forever unless it explicitly
   quiesced *)
let test_d_end_releases_watermark () =
  let e =
    Epoch.create ~scheme:Epoch.Decentralized ~max_threads:2
      ~gc_threshold:1024 ()
  in
  (* tid 0 finishes its last operation and never calls quiesce *)
  Epoch.op_begin e ~tid:0;
  Epoch.op_end e ~tid:0;
  Epoch.op_begin e ~tid:1;
  Epoch.retire e ~tid:1 (obj ());
  Epoch.op_end e ~tid:1;
  Epoch.advance e;
  Epoch.flush e;
  Alcotest.(check int) "watermark released at op exit" 0 (Epoch.pending e)

(* --- disabled --- *)

let test_disabled () =
  let e = Epoch.create ~scheme:Epoch.Disabled ~max_threads:1 () in
  Epoch.op_begin e ~tid:0;
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:0;
  Alcotest.(check int) "immediately reclaimed" 0 (Epoch.pending e)

(* --- background thread --- *)

let test_background_thread () =
  let e = Epoch.create ~scheme:Epoch.Centralized ~max_threads:2 () in
  Epoch.start_background e ~interval_s:0.005;
  Epoch.op_begin e ~tid:0;
  Epoch.retire e ~tid:0 (obj ());
  Epoch.op_end e ~tid:0;
  Unix.sleepf 0.05;
  Epoch.stop_background e;
  Alcotest.(check bool) "advanced" true ((Epoch.stats e).epochs_advanced > 0);
  Alcotest.(check int) "reclaimed by background" 0 (Epoch.pending e)

(* --- concurrent stress: objects are never reclaimed while a reader can
   still see them --- *)

let concurrent_stress scheme () =
  let nthreads = 4 in
  let e = Epoch.create ~scheme ~max_threads:nthreads ~gc_threshold:16 () in
  Epoch.start_background e ~interval_s:0.001;
  let iterations = 3_000 in
  (* each cell is "freed" by setting it to -1 at retire time being unsafe;
     instead we check the counting invariants *)
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for _ = 1 to iterations do
              Epoch.op_begin e ~tid;
              Epoch.retire e ~tid (obj ());
              Epoch.op_end e ~tid
            done;
            Epoch.quiesce e ~tid))
  in
  Array.iter Domain.join domains;
  Epoch.stop_background e;
  Epoch.flush e;
  Epoch.flush e;
  let s = Epoch.stats e in
  Alcotest.(check int) "all retired" (nthreads * iterations) s.retired;
  Alcotest.(check bool) "reclaimed <= retired" true (s.reclaimed <= s.retired);
  Alcotest.(check int) "fully drained at quiescence" 0 (Epoch.pending e)

let () =
  Alcotest.run "epoch"
    [
      ( "centralized",
        [
          Alcotest.test_case "basic reclaim" `Quick test_c_basic_reclaim;
          Alcotest.test_case "blocked by reader" `Quick test_c_blocked_by_reader;
          Alcotest.test_case "multiple epochs" `Quick test_c_multiple_epochs;
          Alcotest.test_case "enter count" `Quick test_c_enters_counted;
        ] );
      ( "decentralized",
        [
          Alcotest.test_case "basic reclaim" `Quick test_d_basic_reclaim;
          Alcotest.test_case "blocked by stale reader" `Quick
            test_d_blocked_by_stale_reader;
          Alcotest.test_case "threshold trigger" `Quick test_d_threshold_trigger;
          Alcotest.test_case "quiesce unblocks" `Quick test_d_quiesce_unblocks;
        ] );
      ( "reclamation races",
        [
          Alcotest.test_case "retire vs advance (dead epoch)" `Quick
            test_c_retire_advance_race;
          Alcotest.test_case "retire re-park preserves garbage" `Quick
            test_c_retire_repark_preserves_garbage;
          Alcotest.test_case "stats survive concurrent advancers" `Slow
            test_c_stats_concurrent_advancers;
          Alcotest.test_case "op exit releases watermark" `Quick
            test_d_end_releases_watermark;
        ] );
      ("disabled", [ Alcotest.test_case "noop" `Quick test_disabled ]);
      ( "background",
        [ Alcotest.test_case "advances and reclaims" `Quick test_background_thread ]
      );
      ( "stress",
        [
          Alcotest.test_case "centralized concurrent" `Slow
            (concurrent_stress Epoch.Centralized);
          Alcotest.test_case "decentralized concurrent" `Slow
            (concurrent_stress Epoch.Decentralized);
        ] );
    ]
