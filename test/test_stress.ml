(* Short-mode sweep of the multi-domain stress + invariant harness: 4
   worker domains against the Bw-Tree under all three epoch schemes, with
   unique and non-unique keys, plus two comparator indexes through the
   generic driver adapter. Any journal/oracle divergence, leaked epoch
   garbage, mapping-table accounting drift or structural violation fails
   the test with the harness's diagnostic strings. *)

let scheme_name = function
  | Epoch.Centralized -> "centralized"
  | Epoch.Decentralized -> "decentralized"
  | Epoch.Disabled -> "disabled"

(* Small nodes and low thresholds so a short run still exercises splits,
   merges, consolidation and real reclamation pressure. *)
let tree_config ~scheme ~unique =
  Bwtree.Config.make ~leaf_max:32 ~inner_max:16 ~leaf_chain_max:8
    ~inner_chain_max:2 ~leaf_min:4 ~inner_min:2 ~unique_keys:unique
    ~gc_scheme:scheme ~gc_threshold:32 ()

let check_clean (r : Bw_stress.report) =
  Alcotest.(check (list string)) "no invariant violations" [] r.r_violations;
  Alcotest.(check bool) "ran some phases" true (r.r_phases >= 1);
  Alcotest.(check bool) "evaluated checks" true (r.r_checks > 0)

let bwtree_case ~scheme ~unique () =
  let cfg = { Bw_stress.short_config with seed = 7 } in
  let subject =
    Bw_stress.bwtree_subject
      ~config:(tree_config ~scheme ~unique)
      ~domains:cfg.Bw_stress.domains ()
  in
  let r = Bw_stress.run cfg subject in
  check_clean r;
  (* the acceptance property of the reclamation fixes: quiesced + flushed
     means nothing is left pending *)
  match subject.Bw_stress.s_epoch with
  | Some e -> Alcotest.(check int) "epoch fully drained" 0 (Epoch.pending e)
  | None -> ()

let driver_case mk () =
  let cfg =
    {
      Bw_stress.short_config with
      seed = 11;
      phases = 2;
      churn_domains = 1;
      drive_advance = false;
    }
  in
  let r = Bw_stress.run cfg (Bw_stress.of_driver (mk ())) in
  check_clean r

(* Batch submission racing the same concurrent splitters/mergers: the
   workers push point ops through [execute_batch] in chunks of 8 while
   churn domains force structural change; the journal/oracle replay must
   stay exact. Run once on a single tree and once through a 3-shard
   router (batches spanning shard boundaries). *)
let batch_case ~unique () =
  let cfg = { Bw_stress.short_config with seed = 23; batch = 8 } in
  let subject =
    Bw_stress.bwtree_subject
      ~config:(tree_config ~scheme:Epoch.Decentralized ~unique)
      ~domains:cfg.Bw_stress.domains ()
  in
  check_clean (Bw_stress.run cfg subject)

let batch_forest_case () =
  let cfg =
    {
      Bw_stress.short_config with
      seed = 29;
      batch = 8;
      phases = 2;
      churn_domains = 1;
      drive_advance = false;
    }
  in
  let keyspace = cfg.Bw_stress.domains * cfg.Bw_stress.keys_per_domain in
  let p = Bw_shard.Part.make_int ~lo:0 ~hi:(keyspace - 1) 3 in
  let d =
    Bw_shard.route_int p
      (Array.init 3 (fun _ ->
           Harness.Drivers.bwtree_driver_int
             ~config:(tree_config ~scheme:Epoch.Decentralized ~unique:true)
             ()))
  in
  check_clean (Bw_stress.run cfg (Bw_stress.of_driver d))

(* Crash-recovery sweep: durable pagestore subjects killed mid-load with
   a corrupted WAL tail; the harness checks per-(worker, shard) prefix
   consistency of the replayed WAL against the journals, a full keyspace
   sweep against the oracle, and a clean checkpoint/reopen cycle. *)
let crash_case ~shards ~batch () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bwt-test-crash-%d-%d-%d" (Unix.getpid ()) shards batch)
  in
  let cfg =
    {
      (Bw_stress.short_crash_config ~dir) with
      cc_domains = 2;
      cc_keys_per_domain = 96;
      cc_ops_per_phase = 200;
      cc_rounds = 2;
      cc_shards = shards;
      cc_batch = batch;
      cc_seed = 31 + (shards * 7) + batch;
    }
  in
  let r = Bw_stress.run_crash_recovery cfg in
  Alcotest.(check (list string)) "no crash-recovery violations" []
    r.Bw_stress.cr_violations;
  Alcotest.(check bool) "evaluated checks" true (r.Bw_stress.cr_checks > 0);
  Alcotest.(check bool) "journaled writes" true (r.Bw_stress.cr_ops > 0)

let bwtree_cases =
  List.concat_map
    (fun scheme ->
      List.map
        (fun unique ->
          Alcotest.test_case
            (Printf.sprintf "bwtree %s %s-keys" (scheme_name scheme)
               (if unique then "unique" else "non-unique"))
            `Quick
            (bwtree_case ~scheme ~unique))
        [ true; false ])
    [ Epoch.Centralized; Epoch.Decentralized; Epoch.Disabled ]

let () =
  Alcotest.run "stress"
    [
      ("bwtree sweep", bwtree_cases);
      ( "batch submission",
        [
          Alcotest.test_case "unique keys, batch 8" `Quick
            (batch_case ~unique:true);
          Alcotest.test_case "non-unique keys, batch 8" `Quick
            (batch_case ~unique:false);
          Alcotest.test_case "3-shard forest, batch 8" `Quick
            batch_forest_case;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "single tree" `Quick
            (crash_case ~shards:1 ~batch:1);
          Alcotest.test_case "single tree, batch 16" `Quick
            (crash_case ~shards:1 ~batch:16);
          Alcotest.test_case "3-shard forest" `Quick
            (crash_case ~shards:3 ~batch:1);
          Alcotest.test_case "3-shard forest, batch 16" `Quick
            (crash_case ~shards:3 ~batch:16);
        ] );
      ( "comparators",
        [
          Alcotest.test_case "skiplist" `Quick
            (driver_case (fun () ->
                 Harness.Drivers.skiplist_driver_int ()));
          Alcotest.test_case "btree-olc" `Quick
            (driver_case (fun () -> Harness.Drivers.btree_driver_int ()));
        ] );
    ]
