(* Tests for the B+Tree with optimistic lock coupling. *)

module IK = Index_iface.Int_key
module IV = Index_iface.Int_value
module B = Btree_olc.Make (IK) (IV)
module BS = Btree_olc.Make (Index_iface.String_key) (IV)
module IntMap = Map.Make (Int)

let rng = Bw_util.Rng.create ~seed:0xB7EEL

let test_basic () =
  let t = B.create () in
  Alcotest.(check (option int)) "empty" None (B.lookup t ~tid:0 1);
  Alcotest.(check bool) "insert" true (B.insert t ~tid:0 1 10);
  Alcotest.(check bool) "dup" false (B.insert t ~tid:0 1 11);
  Alcotest.(check (option int)) "found" (Some 10) (B.lookup t ~tid:0 1);
  Alcotest.(check bool) "update" true (B.update t ~tid:0 1 20);
  Alcotest.(check (option int)) "updated" (Some 20) (B.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete" true (B.delete t ~tid:0 1);
  Alcotest.(check (option int)) "gone" None (B.lookup t ~tid:0 1);
  Alcotest.(check bool) "delete again" false (B.delete t ~tid:0 1)

let test_model () =
  let t = B.create () in
  let model = ref IntMap.empty in
  for _ = 1 to 30_000 do
    let k = Bw_util.Rng.next_int rng 4_000 in
    match Bw_util.Rng.next_int rng 4 with
    | 0 ->
        let expected = not (IntMap.mem k !model) in
        Alcotest.(check bool) "insert" expected (B.insert t ~tid:0 k (k * 3));
        if expected then model := IntMap.add k (k * 3) !model
    | 1 ->
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "delete" expected (B.delete t ~tid:0 k);
        model := IntMap.remove k !model
    | 2 ->
        let v = Bw_util.Rng.next_int rng 99 in
        let expected = IntMap.mem k !model in
        Alcotest.(check bool) "update" expected (B.update t ~tid:0 k v);
        if expected then model := IntMap.add k v !model
    | _ ->
        Alcotest.(check (option int)) "lookup" (IntMap.find_opt k !model)
          (B.lookup t ~tid:0 k)
  done;
  B.verify_invariants t;
  Alcotest.(check int) "cardinal" (IntMap.cardinal !model) (B.cardinal t)

let test_multilevel_growth () =
  let t = B.create () in
  let n = 200_000 in
  for k = 0 to n - 1 do
    assert (B.insert t ~tid:0 k k)
  done;
  B.verify_invariants t;
  Alcotest.(check int) "cardinal" n (B.cardinal t);
  for k = 0 to n - 1 do
    assert (B.lookup t ~tid:0 k = Some k)
  done

let test_scan () =
  let t = B.create () in
  for k = 0 to 9_999 do
    assert (B.insert t ~tid:0 (k * 2) k)
  done;
  let collect k n =
    let acc = ref [] in
    let c = B.scan t ~tid:0 k ~n (fun k v -> acc := (k, v) :: !acc) in
    (c, List.rev !acc)
  in
  let c, items = collect 5_000 100 in
  Alcotest.(check int) "scan middle" 100 c;
  Alcotest.(check (list (pair int int)))
    "visited pairs in key order"
    (List.init 100 (fun i -> ((2_500 + i) * 2, 2_500 + i)))
    items;
  Alcotest.(check int) "scan at end" 5 (fst (collect 19_990 100));
  Alcotest.(check int) "scan past end" 0 (fst (collect 100_000 100))

let test_concurrent_inserts () =
  let t = B.create () in
  let nthreads = 6 and per = 10_000 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = (i * nthreads) + tid in
              assert (B.insert t ~tid k k)
            done))
  in
  Array.iter Domain.join domains;
  B.verify_invariants t;
  Alcotest.(check int) "all inserted" (nthreads * per) (B.cardinal t)

let test_concurrent_mixed () =
  let t = B.create () in
  for k = 0 to 1_999 do
    assert (B.insert t ~tid:0 k 0)
  done;
  let nthreads = 6 in
  let domains =
    Array.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (tid + 1)) in
            for _ = 1 to 15_000 do
              let k = Bw_util.Rng.next_int rng 4_000 in
              match Bw_util.Rng.next_int rng 4 with
              | 0 -> ignore (B.insert t ~tid k k)
              | 1 -> ignore (B.delete t ~tid k)
              | 2 -> ignore (B.update t ~tid k (k + 1))
              | _ -> ignore (B.lookup t ~tid k)
            done))
  in
  Array.iter Domain.join domains;
  B.verify_invariants t

let test_concurrent_readers_with_writer () =
  let t = B.create () in
  for k = 0 to 999 do
    assert (B.insert t ~tid:0 k k)
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Bw_util.Rng.create ~seed:42L in
        while not (Atomic.get stop) do
          let k = 1_000 + Bw_util.Rng.next_int rng 100_000 in
          ignore (B.insert t ~tid:0 k k);
          ignore (B.delete t ~tid:0 k)
        done)
  in
  let ok = ref true in
  let readers =
    Array.init 3 (fun w ->
        Domain.spawn (fun () ->
            let tid = w + 1 in
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (w + 9)) in
            for _ = 1 to 30_000 do
              let k = Bw_util.Rng.next_int rng 1_000 in
              if B.lookup t ~tid k <> Some k then ok := false
            done))
  in
  Array.iter Domain.join readers;
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check bool) "stable keys always visible" true !ok;
  B.verify_invariants t

let test_string_keys () =
  let t = BS.create () in
  for i = 0 to 4_999 do
    assert (BS.insert t ~tid:0 (Workload.email_key_of i) i)
  done;
  for i = 0 to 4_999 do
    assert (BS.lookup t ~tid:0 (Workload.email_key_of i) = Some i)
  done;
  BS.verify_invariants t

let () =
  Alcotest.run "btree_olc"
    [
      ( "single-thread",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "model" `Slow test_model;
          Alcotest.test_case "multilevel growth" `Slow test_multilevel_growth;
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "string keys" `Quick test_string_keys;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Slow test_concurrent_inserts;
          Alcotest.test_case "mixed" `Slow test_concurrent_mixed;
          Alcotest.test_case "readers+writer" `Slow
            test_concurrent_readers_with_writer;
        ] );
    ]
