(* A miniature OLTP storage engine — the setting the paper's introduction
   motivates (the Bw-Tree indexes SQL Server's in-memory Hekaton engine).

   One table of orders lives in a row store; three OpenBw-Tree indexes
   serve the access paths:

     primary   : order id        -> row slot   (unique)
     customers : customer id     -> row slot   (non-unique, §3.1)
     clock     : order timestamp -> row slot   (unique, range-scanned)

   The engine runs a concurrent mixed workload (new orders, cancellations,
   customer lookups, time-window reports) across worker domains, then
   checkpoints all state through the log-structured page store and
   recovers it — index rebuild included.

   Run with: dune exec examples/order_engine.exe *)

module Idx = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module Cp = Pagestore.Checkpoint.Make (Pagestore.Codec.Int) (Idx)

type order = {
  id : int;
  customer : int;
  placed_at : int;
  amount : int;
  mutable cancelled : bool;
}

type engine = {
  rows : order option array;
  next_slot : int Atomic.t;
  primary : Idx.t;
  customers : Idx.t;
  clock : Idx.t;
  ticker : int Atomic.t;  (* monotonic timestamp source *)
}

let create_engine ~capacity =
  {
    rows = Array.make capacity None;
    next_slot = Atomic.make 0;
    primary = Idx.create ();
    customers =
      Idx.create ~config:(Bwtree.Config.make ~unique_keys:false ()) ();
    clock = Idx.create ();
    ticker = Atomic.make 0;
  }

(* --- transactions (single-record; indexes are individually atomic) --- *)

let new_order e ~tid ~id ~customer ~amount =
  let slot = Atomic.fetch_and_add e.next_slot 1 in
  let placed_at = Atomic.fetch_and_add e.ticker 1 in
  e.rows.(slot) <- Some { id; customer; placed_at; amount; cancelled = false };
  if not (Idx.insert e.primary ~tid id slot) then begin
    (* duplicate order id: abandon the row (no index points at it) *)
    e.rows.(slot) <- None;
    false
  end
  else begin
    ignore (Idx.insert e.customers ~tid customer slot);
    ignore (Idx.insert e.clock ~tid placed_at slot);
    true
  end

let cancel_order e ~tid ~id =
  match Idx.lookup e.primary ~tid id with
  | [ slot ] -> (
      match e.rows.(slot) with
      | Some row when not row.cancelled ->
          row.cancelled <- true;
          true
      | _ -> false)
  | _ -> false

let customer_orders e ~tid ~customer =
  Idx.lookup e.customers ~tid customer
  |> List.filter_map (fun slot -> e.rows.(slot))
  |> List.filter (fun o -> not o.cancelled)

let revenue_between e ~tid ~t0 ~t1 =
  (* range scan on the clock index: the YCSB-E pattern with a predicate *)
  let it = Idx.Iterator.seek e.clock ~tid t0 in
  let total = ref 0 and count = ref 0 in
  let rec go () =
    match Idx.Iterator.current it with
    | Some (ts, slot) when ts < t1 ->
        (match e.rows.(slot) with
        | Some o when not o.cancelled ->
            total := !total + o.amount;
            incr count
        | _ -> ());
        Idx.Iterator.next it;
        go ()
    | _ -> ()
  in
  go ();
  (!count, !total)

let latest_orders e ~tid ~n =
  let it = Idx.Iterator.seek e.clock ~tid max_int in
  Idx.Iterator.prev it;
  let out = ref [] in
  let rec go remaining =
    if remaining > 0 then
      match Idx.Iterator.current it with
      | Some (_, slot) ->
          (match e.rows.(slot) with Some o -> out := o :: !out | None -> ());
          Idx.Iterator.prev it;
          go (remaining - 1)
      | None -> ()
  in
  go n;
  List.rev !out

(* --- the run --- *)

let () =
  let e = create_engine ~capacity:400_000 in
  let nthreads = 4 and per = 30_000 in

  (* concurrent mixed workload: each domain owns an order-id range *)
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Bw_util.Rng.create ~seed:(Int64.of_int (tid + 1)) in
            for i = 1 to per do
              let id = (tid * 1_000_000) + i in
              match Bw_util.Rng.next_int rng 10 with
              | 0 | 1 | 2 | 3 | 4 | 5 ->
                  ignore
                    (new_order e ~tid ~id
                       ~customer:(Bw_util.Rng.next_int rng 5_000)
                       ~amount:(1 + Bw_util.Rng.next_int rng 500))
              | 6 ->
                  ignore
                    (cancel_order e ~tid
                       ~id:((tid * 1_000_000) + 1 + Bw_util.Rng.next_int rng i))
              | 7 | 8 ->
                  ignore
                    (customer_orders e ~tid
                       ~customer:(Bw_util.Rng.next_int rng 5_000))
              | _ ->
                  let t1 = Atomic.get e.ticker in
                  ignore (revenue_between e ~tid ~t0:(max 0 (t1 - 500)) ~t1)
            done;
            Idx.quiesce e.primary ~tid;
            Idx.quiesce e.customers ~tid;
            Idx.quiesce e.clock ~tid))
  in
  List.iter Domain.join workers;
  let dt = Unix.gettimeofday () -. t0 in
  let live = Idx.cardinal e.primary in
  Printf.printf
    "mixed workload: %d txns across %d domains in %.2fs (%.0f ktxn/s); %d \
     orders live\n"
    (nthreads * per) nthreads dt
    (float_of_int (nthreads * per) /. dt /. 1e3)
    live;
  Idx.verify_invariants e.primary;
  Idx.verify_invariants e.customers;
  Idx.verify_invariants e.clock;

  (* analytical queries *)
  let c, total =
    revenue_between e ~tid:0 ~t0:0 ~t1:(Atomic.get e.ticker)
  in
  Printf.printf "all-time: %d active orders, %d total revenue\n" c total;
  let top = latest_orders e ~tid:0 ~n:5 in
  Printf.printf "latest orders: %s\n"
    (String.concat ", "
       (List.map (fun o -> Printf.sprintf "#%d($%d)" o.id o.amount) top));

  (* durability: checkpoint all three indexes to one log; values are row
     slots, and rows themselves are paged as (slot -> packed order) pairs
     through a fourth, transient index *)
  let log = Pagestore.Log.create () in
  let pack o =
    (* 3 small fields packed into one int value for the demo *)
    (o.customer * 1_000_000_000)
    + (o.placed_at * 1_000)
    + (o.amount land 0x3FF)
  in
  let rows_idx = Idx.create () in
  Array.iteri
    (fun slot row ->
      match row with
      | Some o when not o.cancelled -> ignore (Idx.insert rows_idx slot (pack o))
      | _ -> ())
    e.rows;
  let roots =
    List.map
      (fun idx -> Cp.save ~page_items:128 idx log)
      [ e.primary; e.customers; e.clock; rows_idx ]
  in
  Printf.printf "checkpointed 4 indexes: %.2f MB in %d segments\n"
    (float_of_int (Pagestore.Log.bytes_used log) /. 1048576.)
    (Pagestore.Log.segment_count log);

  (* recovery drill: each index is restored under its own configuration
     (the customers index needs non-unique keys or its duplicates would
     be refused — Checkpoint.load checks the restored count and fails
     loudly on such a mismatch) *)
  let configs =
    [
      Bwtree.default_config;
      (Bwtree.Config.make ~unique_keys:false ());
      Bwtree.default_config;
      Bwtree.default_config;
    ]
  in
  let recovered =
    List.map2 (fun root config -> Cp.load ~config log root) roots configs
  in
  (match recovered with
  | [ p; c'; clk; r ] ->
      assert (Idx.scan_all p () = Idx.scan_all e.primary ());
      assert
        (List.sort compare (Idx.scan_all c' ())
        = List.sort compare (Idx.scan_all e.customers ()));
      assert (Idx.scan_all clk () = Idx.scan_all e.clock ());
      Printf.printf "recovery drill passed: %d/%d/%d/%d entries rebuilt\n"
        (Idx.cardinal p) (Idx.cardinal c') (Idx.cardinal clk) (Idx.cardinal r)
  | _ -> assert false)
