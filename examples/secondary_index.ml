(* Secondary indexes need non-unique keys (§3.1 of the paper): many rows
   can share the same indexed attribute value. This example maintains an
   "orders" table with a primary index on order id and a non-unique
   secondary OpenBw-Tree index on customer id, then serves typical OLTP
   queries through it.

   Run with: dune exec examples/secondary_index.exe *)

module Primary = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module Secondary = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)

type order = { id : int; customer : int; amount : int }

let () =
  let rng = Bw_util.Rng.create ~seed:2018L in
  (* The row store: order id -> row (kept in a plain array for brevity;
     index values are row slots standing in for tuple pointers, exactly
     the paper's setup where "values are 64-bit integers to represent
     tuple pointers"). *)
  let n_orders = 50_000 in
  let rows =
    Array.init n_orders (fun id ->
        {
          id;
          customer = Bw_util.Rng.next_int rng 2_000;
          amount = 1 + Bw_util.Rng.next_int rng 500;
        })
  in

  let primary = Primary.create () in
  (* non-unique keys must be enabled for the secondary index: several
     orders share a customer *)
  let secondary =
    Secondary.create
      ~config:(Bwtree.Config.make ~unique_keys:false ()) ()
  in
  Array.iter
    (fun row ->
      assert (Primary.insert primary row.id row.id);
      assert (Secondary.insert secondary row.customer row.id))
    rows;

  (* Q1: all orders of one customer, via the secondary index *)
  let customer = rows.(17).customer in
  let their_orders = Secondary.lookup secondary customer in
  Printf.printf "customer %d has %d orders\n" customer
    (List.length their_orders);
  assert (
    List.for_all (fun slot -> rows.(slot).customer = customer) their_orders);

  (* Q2: total spend of a customer id range (range scan on the secondary
     index; scans use the iterator machinery of §3.2) *)
  let lo, len = (100, 50) in
  let spend = ref 0 and seen = ref 0 in
  let it = Secondary.Iterator.seek secondary lo in
  let rec sum () =
    match Secondary.Iterator.current it with
    | Some (c, slot) when c < lo + len ->
        spend := !spend + rows.(slot).amount;
        incr seen;
        Secondary.Iterator.next it;
        sum ()
    | _ -> ()
  in
  sum ();
  Printf.printf "customers [%d,%d): %d orders totalling %d\n" lo (lo + len)
    !seen !spend;

  (* Q3: delete one order — the secondary entry is removed by (key, value)
     pair, which is exactly why delete deltas carry the value (§3.1) *)
  let victim = rows.(42) in
  assert (Primary.delete primary victim.id victim.id);
  assert (Secondary.delete secondary victim.customer victim.id);
  assert (
    not (List.mem victim.id (Secondary.lookup secondary victim.customer)));
  Printf.printf "deleted order %d of customer %d; %d left for that customer\n"
    victim.id victim.customer
    (List.length (Secondary.lookup secondary victim.customer));

  (* sanity: both indexes agree on the number of live orders *)
  Secondary.verify_invariants secondary;
  let total_secondary =
    List.length (Secondary.scan_all secondary ())
  in
  Printf.printf "rows indexed: primary=%d secondary=%d\n"
    (Primary.cardinal primary) total_secondary;
  assert (Primary.cardinal primary = total_secondary)
