(* Checkpointing an OpenBw-Tree to the log-structured page store and
   recovering it — the storage story behind the mapping table (§2.2: "the
   mapping table also serves the purpose of supporting log-structured
   updates when deployed with SSD"; §8 names larger-than-memory operation
   as the future-work direction; the substrate follows LLAMA [23]).

   Run with: dune exec examples/persistence.exe *)

module Tree = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module Cp = Pagestore.Checkpoint.Make (Pagestore.Codec.Int) (Tree)
module Log = Pagestore.Log

let mb bytes = float_of_int bytes /. 1024.0 /. 1024.0

let () =
  (* a working tree accumulating updates *)
  let t = Tree.create () in
  let rng = Bw_util.Rng.create ~seed:42L in
  for _ = 1 to 100_000 do
    let k = Bw_util.Rng.next_int rng 500_000 in
    Tree.upsert t k (k * 7)
  done;
  Printf.printf "live tree: %d keys\n" (Tree.cardinal t);

  (* the simulated SSD: an append-only segmented log *)
  let log = Log.create ~segment_bytes:(256 * 1024) () in

  (* periodic checkpoints: each one appends consolidated pages
     out-of-place plus a manifest; older checkpoints become garbage *)
  let roots = ref [] in
  for round = 1 to 3 do
    for _ = 1 to 20_000 do
      let k = Bw_util.Rng.next_int rng 500_000 in
      Tree.upsert t k (k + round)
    done;
    let root = Cp.save ~page_items:128 t log in
    roots := root :: !roots;
    Printf.printf "checkpoint %d at offset %d | log: %.2f MB in %d segments\n"
      round root (mb (Log.bytes_used log)) (Log.segment_count log)
  done;

  (* "crash": forget the in-memory tree, keep only the newest root *)
  let newest_root = List.hd !roots in
  let expected = Tree.scan_all t () in

  let recovered = Cp.load log newest_root in
  Printf.printf "recovered %d keys from checkpoint at %d\n"
    (Tree.cardinal recovered) newest_root;
  assert (Tree.scan_all recovered () = expected);
  Tree.verify_invariants recovered;

  (* segment GC: retire the two older checkpoints and compact; the fresh
     manifest address replaces our root pointer, exactly as LLAMA fixes
     up relocated pages through the mapping table *)
  let before = Log.bytes_used log in
  let reclaimed, fresh_roots = Cp.compact_keeping log [ newest_root ] in
  let root' = List.hd fresh_roots in
  Printf.printf
    "compaction reclaimed %.2f MB (%.2f -> %.2f MB); root moved %d -> %d\n"
    (mb reclaimed) (mb before)
    (mb (Log.bytes_used log))
    newest_root root';

  let recovered' = Cp.load log root' in
  assert (Tree.scan_all recovered' () = expected);
  Printf.printf "recovery after compaction intact: %d keys\n"
    (Tree.cardinal recovered')
