(* Quickstart: create an OpenBw-Tree, use the basic key-value API, and
   peek at the structures the paper describes.

   Run with: dune exec examples/quickstart.exe *)

(* Instantiate the tree for int keys and int values. Any key type works as
   long as it can be compared and binary-encoded (see Bwtree.KEY). *)
module Tree = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)

let () =
  (* The default configuration is the fully-optimized OpenBw-Tree:
     pre-allocated delta records, fast consolidation, search shortcuts and
     decentralized epoch GC. [Bwtree.microsoft_config] gives the baseline
     Bw-Tree instead, and every knob can be set individually. *)
  let t = Tree.create () in

  (* point operations *)
  assert (Tree.insert t 1 100);
  assert (Tree.insert t 2 200);
  assert (not (Tree.insert t 2 999)) (* duplicate keys are rejected *);
  assert (Tree.update t 2 201);
  assert (Tree.lookup t 2 = [ 201 ]);
  assert (Tree.delete t 1 100);
  assert (Tree.lookup t 1 = []);

  (* bulk load and range scans *)
  for k = 0 to 9_999 do
    ignore (Tree.insert t k (k * k))
  done;
  let first_five = Tree.scan t ~n:5 9_995 in
  Printf.printf "scan from 9995: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) first_five));

  (* iterators can also walk backwards (Appendix C of the paper) *)
  let it = Tree.Iterator.seek t 5_000 in
  Tree.Iterator.prev it;
  (match Tree.Iterator.current it with
  | Some (k, _) -> Printf.printf "key before 5000: %d\n" k
  | None -> assert false);

  (* the physical structure: mapping table, delta chains, consolidations *)
  let ss = Tree.structure_stats t in
  let os = Tree.op_stats t in
  Printf.printf
    "tree: %d leaf + %d inner logical nodes, height %d\n\
     avg leaf delta-chain %.1f, avg leaf size %.1f items\n\
     %d splits, %d consolidations so far\n"
    ss.leaf_nodes ss.inner_nodes ss.depth ss.avg_leaf_chain ss.avg_leaf_size
    os.splits os.consolidations;
  Format.printf "%a@." Bwtree.pp_mapping_stats (Tree.mapping_table_stats t);

  (* multi-threaded use: give each worker domain a distinct tid and, for
     sustained workloads, start the epoch-advancing thread *)
  Tree.start_gc_thread t ();
  let workers =
    List.init 4 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to 999 do
              ignore (Tree.insert t ~tid (100_000 + (i * 4) + tid) i)
            done;
            Tree.quiesce t ~tid))
  in
  List.iter Domain.join workers;
  Tree.stop_gc_thread t;
  Tree.verify_invariants t;
  Printf.printf "after 4 concurrent writers: %d keys, invariants hold\n"
    (Tree.cardinal t)
