(* CI validator for --metrics-json output: parses the snapshot with the
   repo's own JSON parser (no jq dependency) and checks the schema and
   the acceptance-level content — per-op latency percentiles, epoch
   pending/reclaim stats and at least three structural event kinds.

   Usage: json_check FILE
   Exits non-zero with a message on the first violation. *)

module J = Bw_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("json_check: " ^ m); exit 1) fmt

let get k v =
  match J.member k v with
  | Some x -> x
  | None -> fail "missing field %S" k

let as_int k = function
  | J.Int i -> i
  | _ -> fail "field %S is not an integer" k

let as_obj k = function
  | J.Obj kvs -> kvs
  | _ -> fail "field %S is not an object" k

let () =
  let file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ ->
        prerr_endline "usage: json_check FILE";
        exit 2
  in
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let v =
    match J.parse body with
    | Ok v -> v
    | Error e -> fail "%s does not parse: %s" file e
  in
  (match get "elapsed_s" v with
  | J.Float f when f >= 0.0 -> ()
  | J.Int i when i >= 0 -> ()
  | _ -> fail "elapsed_s is not a non-negative number");
  (* histograms: at least one latency series with coherent percentiles *)
  let histos =
    match get "histograms" v with
    | J.Arr hs -> hs
    | _ -> fail "histograms is not an array"
  in
  if histos = [] then fail "no histograms recorded";
  let lat_series = ref 0 in
  List.iter
    (fun h ->
      let name = match get "name" h with J.Str s -> s | _ -> fail "histogram name not a string" in
      let unit_ = match get "unit" h with J.Str s -> s | _ -> fail "histogram unit not a string" in
      let i k = as_int k (get k h) in
      let count = i "count" and p50 = i "p50" and p90 = i "p90" and p99 = i "p99" in
      let mn = i "min" and mx = i "max" in
      ignore (i "sum");
      if count <= 0 then fail "histogram %s has count %d" name count;
      if not (mn <= mx) then fail "histogram %s: min %d > max %d" name mn mx;
      if not (p50 <= p90 && p90 <= p99) then
        fail "histogram %s: percentiles not monotone (%d, %d, %d)" name p50 p90 p99;
      if p99 > 0 && mx < p50 then
        fail "histogram %s: max %d below p50 %d" name mx p50;
      if unit_ = "ns" then incr lat_series)
    histos;
  if !lat_series = 0 then fail "no latency (ns) histogram present";
  (* epoch stats: reclaim counter and pending/watermark gauges *)
  let counters = as_obj "counters" (get "counters" v) in
  List.iter
    (fun k ->
      if not (List.mem_assoc k counters) then fail "counter %S missing" k)
    [
      "splits"; "consolidations"; "reclaim_batches"; "mt_growths";
      "batch_redescents"; "leaf_pack_builds"; "leaf_gap_reuses";
      "leaf_probe_cmps"; "leaf_cache_hits"; "leaf_cache_misses";
      "leaf_cache_invalidations"; "leaf_cache_stale_verifies";
    ];
  let gauges = as_obj "gauges" (get "gauges" v) in
  List.iter
    (fun k ->
      if not (List.mem_assoc k gauges) then fail "gauge %S missing" k)
    [ "epoch_pending"; "epoch_watermark_lag"; "mt_chunks" ];
  (* events: dropped counter, >= 3 structural kinds, well-formed log *)
  let events = get "events" v in
  if as_int "dropped" (get "dropped" events) < 0 then fail "negative drop count";
  let kinds = as_obj "kinds" (get "kinds" events) in
  let live_kinds = List.filter (fun (_, n) -> as_int "kind" n > 0) kinds in
  if List.length live_kinds < 3 then
    fail "only %d structural event kind(s) recorded (need >= 3): %s"
      (List.length live_kinds)
      (String.concat ", " (List.map fst live_kinds));
  (match get "log" events with
  | J.Arr log ->
      List.iter
        (fun e ->
          ignore (as_int "ns" (get "ns" e));
          ignore (get "kind" e))
        log
  | _ -> fail "events.log is not an array");
  Printf.printf "json_check: %s ok (%d histograms, %d event kinds)\n" file
    (List.length histos) (List.length live_kinds)
