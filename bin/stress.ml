(* Long-running multi-domain stress driver over the Bw_stress harness.

   Examples:
     dune exec bin/stress.exe -- --short
     dune exec bin/stress.exe -- --seconds 60 --domains 8 --scheme centralized
     dune exec bin/stress.exe -- --index skiplist --seconds 10
     dune exec bin/stress.exe -- --non-unique --seconds 30

   Exits non-zero if any invariant was violated, so it can gate CI. *)

let short = ref false
let seconds = ref 10.0
let domains = ref 4
let churn = ref 2
let keys = ref 1024
let ops = ref 5_000
let seed = ref 1
let scheme = ref "decentralized"
let index = ref "openbw"
let shards = ref 1
let batch = ref 1
let unique = ref true
let leaf_cache = ref None
let quiet = ref false
let metrics = ref false
let metrics_json = ref ""
let crash = ref false
let crash_rounds = ref 3
let crash_dir = ref ""
let fsync = ref false

let speclist =
  [
    ("--short", Arg.Set short, " run the dune-runtest-sized configuration");
    ( "--seconds",
      Arg.Set_float seconds,
      "S wall-clock budget for the long mode (default 10)" );
    ("--domains", Arg.Set_int domains, "N worker domains (default 4)");
    ("--churn", Arg.Set_int churn, "N mapping-table churn domains (default 2)");
    ("--keys", Arg.Set_int keys, "N keys per worker stripe (default 1024)");
    ( "--ops",
      Arg.Set_int ops,
      "N operations per worker between invariant barriers (default 5000)" );
    ("--seed", Arg.Set_int seed, "N rng seed (default 1)");
    ( "--scheme",
      Arg.Set_string scheme,
      "S epoch scheme: centralized | decentralized | disabled" );
    ( "--index",
      Arg.Set_string index,
      "S subject: openbw | bw | skiplist | btree | art | masstree" );
    ( "--shards",
      Arg.Set_int shards,
      "N range-partition the subject into N shards (default 1; runs the \
       oracle-replay invariants against a lib/shard forest)" );
    ( "--batch",
      Arg.Set_int batch,
      "N submit point ops through the subject's batch path in groups of N \
       (default 1 = per-op)" );
    ("--non-unique", Arg.Clear unique, " stress the non-unique key support");
    ( "--leaf-cache",
      Arg.Bool (fun b -> leaf_cache := Some b),
      "BOOL force the Bw-Tree point-op leaf cache on/off (default: the \
       config's own setting — on for openbw, off for bw)" );
    ( "--crash",
      Arg.Set crash,
      " crash-recovery mode: checkpoint a durable pagestore, crash it \
       mid-load, corrupt the WAL tail, recover, and check prefix \
       consistency (uses --domains/--keys/--ops/--shards/--batch/--seed)" );
    ( "--crash-rounds",
      Arg.Set_int crash_rounds,
      "N independent crash/recover cycles in --crash mode (default 3)" );
    ( "--crash-dir",
      Arg.Set_string crash_dir,
      "DIR scratch data dir for --crash (default: fresh dir under TMPDIR)" );
    ( "--fsync",
      Arg.Set fsync,
      " in --crash mode, fsync every group commit (slower, exercises the \
       durable ack path)" );
    ("--quiet", Arg.Set quiet, " suppress per-phase progress lines");
    ( "--metrics",
      Arg.Set metrics,
      " collect observability metrics and print a snapshot" );
    ( "--metrics-json",
      Arg.Set_string metrics_json,
      "FILE collect metrics and write a JSON snapshot to FILE" );
  ]

let usage = "stress [options]: multi-domain invariant-checking stress run"

let () =
  Arg.parse (Arg.align speclist)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let gc_scheme =
    match !scheme with
    | "centralized" -> Epoch.Centralized
    | "decentralized" -> Epoch.Decentralized
    | "disabled" -> Epoch.Disabled
    | s -> raise (Arg.Bad ("unknown scheme " ^ s))
  in
  if !batch < 1 then raise (Arg.Bad "--batch must be >= 1");
  if !crash then begin
    let dir =
      if !crash_dir <> "" then !crash_dir
      else Filename.concat (Filename.get_temp_dir_name ()) "bwt-stress-crash"
    in
    let base = Bw_stress.short_crash_config ~dir in
    let cfg =
      if !short then { base with cc_verbose = not !quiet }
      else
        {
          base with
          Bw_stress.cc_domains = !domains;
          cc_keys_per_domain = !keys;
          cc_ops_per_phase = !ops;
          cc_batch = !batch;
          cc_shards = !shards;
          cc_fsync = !fsync;
          cc_rounds = !crash_rounds;
          cc_seed = !seed;
          cc_verbose = not !quiet;
        }
    in
    Printf.printf
      "stress --crash: %d domains | %d shards | batch %d | %d rounds | %s\n%!"
      cfg.Bw_stress.cc_domains cfg.Bw_stress.cc_shards cfg.Bw_stress.cc_batch
      cfg.Bw_stress.cc_rounds
      (if cfg.Bw_stress.cc_fsync then "fsync" else "no fsync");
    let r = Bw_stress.run_crash_recovery cfg in
    Format.printf "%a@." Bw_stress.pp_crash_report r;
    exit (if r.Bw_stress.cr_violations <> [] then 1 else 0)
  end;
  let cfg =
    if !short then
      { Bw_stress.short_config with batch = !batch; verbose = not !quiet }
    else
      {
        Bw_stress.short_config with
        domains = !domains;
        churn_domains = !churn;
        keys_per_domain = !keys;
        ops_per_phase = !ops;
        time_budget_s = Some !seconds;
        seed = !seed;
        batch = !batch;
        verbose = not !quiet;
      }
  in
  let obs =
    if !metrics || !metrics_json <> "" then Bw_obs.To (Bw_obs.create ())
    else Bw_obs.Null
  in
  if !shards < 1 then raise (Arg.Bad "--shards must be >= 1");
  if !shards > 1 && not !unique then
    raise (Arg.Bad "--non-unique is only supported with --shards 1");
  (* a forest subject goes through the driver interface (probe-less, so
     the epoch/gauge cross-checks are skipped) but the journal-replay,
     keyspace-sweep and scan invariants all run against the router;
     partitioning the stress keyspace itself spreads the stripes over
     every shard and makes the sweeps genuinely cross-shard *)
  let forest mk =
    if !shards = 1 then mk ()
    else
      let keyspace = cfg.Bw_stress.domains * cfg.Bw_stress.keys_per_domain in
      let part = Bw_shard.Part.make_int ~lo:0 ~hi:(keyspace - 1) !shards in
      Bw_shard.route_int part (Array.init !shards (fun _ -> mk ()))
  in
  let subject =
    match !index with
    | "openbw" | "bw" ->
        let base =
          if !index = "bw" then Bwtree.microsoft_config
          else Bwtree.default_config
        in
        let config = { base with gc_scheme; unique_keys = !unique } in
        let config =
          match !leaf_cache with
          | None -> config
          | Some on -> { config with Bwtree.leaf_cache = on }
        in
        if !shards = 1 then
          Bw_stress.bwtree_subject ~config ~obs
            ~domains:cfg.Bw_stress.domains ()
        else
          Bw_stress.of_driver
            (forest (fun () ->
                 Harness.Drivers.bwtree_driver_int ~config ~obs ()))
    | "skiplist" ->
        Bw_stress.of_driver
          (forest (fun () -> Harness.Drivers.skiplist_driver_int ()))
    | "btree" ->
        Bw_stress.of_driver
          (forest (fun () -> Harness.Drivers.btree_driver_int ()))
    | "art" ->
        Bw_stress.of_driver
          (forest (fun () -> Harness.Drivers.art_driver_int ()))
    | "masstree" ->
        Bw_stress.of_driver
          (forest (fun () -> Harness.Drivers.masstree_driver_int ()))
    | s -> raise (Arg.Bad ("unknown index " ^ s))
  in
  Printf.printf
    "stress: %s | %d domains + %d churn | scheme %s | %s keys%s\n%!"
    subject.Bw_stress.s_name cfg.Bw_stress.domains
    cfg.Bw_stress.churn_domains !scheme
    (if !unique then "unique" else "non-unique")
    (if !batch > 1 then Printf.sprintf " | batch %d" !batch else "");
  let r = Bw_stress.run cfg subject in
  Format.printf "%a@." Bw_stress.pp_report r;
  (match obs with
  | Bw_obs.Null -> ()
  | Bw_obs.To reg ->
      let sn = Bw_obs.snapshot reg in
      if !metrics then Format.printf "%a@." Bw_obs.pp_snapshot sn;
      if !metrics_json <> "" then begin
        let oc = open_out !metrics_json in
        output_string oc (Bw_obs.snapshot_to_string sn);
        output_char oc '\n';
        close_out oc;
        Printf.printf "metrics: wrote %s\n%!" !metrics_json
      end);
  if r.Bw_stress.r_violations <> [] then exit 1
