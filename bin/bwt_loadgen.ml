(* Remote YCSB load generator: drives a bwt_server over TCP with the same
   workload mixes, key spaces and reporting as bin/ycsb.exe, from N client
   domains each pipelining up to --pipeline requests on its own
   connection.

   Examples:
     dune exec bin/bwt_loadgen.exe -- --port 4680 --mix a --clients 4
     dune exec bin/bwt_loadgen.exe -- --port 4680 --mix e --keyspace email \
       --pipeline 32 --stats-json server-stats.json *)

open Cmdliner
module W = Workload
module Wire = Bw_server.Wire

let usage_mixes = "insert, c (read-only), a (read/update), e (scan/insert)"
let usage_spaces = "mono, rand, email, hc"

(* ------------------------------------------------------------------ *)
(* Pipelined op driving                                                *)
(* ------------------------------------------------------------------ *)

let req_of_op : string W.op -> Wire.req = function
  | W.Insert (k, v) -> Wire.Put (Wire.Insert, k, v)
  | W.Read k -> Wire.Get k
  | W.Update (k, v) -> Wire.Put (Wire.Update, k, v)
  | W.Scan (k, n) -> Wire.Scan (k, min n Wire.max_scan)

let series_of_op : string W.op -> Bw_obs.series = function
  | W.Insert _ | W.Update _ -> Bw_obs.Lat_req_put
  | W.Read _ -> Bw_obs.Lat_req_get
  | W.Scan _ -> Bw_obs.Lat_req_scan

(* Replay [ops] on [client], keeping up to [depth] requests in flight.
   With [batch] > 1 the trace is chunked into BATCH frames of up to
   [batch] sub-requests; each frame counts as one in-flight request and
   its whole-frame latency is recorded under the first op's series.
   Client-side latency (send to matching reply, including pipeline
   queueing) goes to [obs]; ERR replies — top-level or inside a BATCH
   response — are counted, not fatal. *)
let drive obs ~tid client ops ~depth ~batch =
  let timed = Bw_obs.enabled obs in
  let stamps = Queue.create () in
  let errors = ref 0 in
  let drain_one () =
    (match Bw_client.recv client with
    | Wire.Err _ -> incr errors
    | Wire.Batched rs ->
        List.iter (function Wire.Err _ -> incr errors | _ -> ()) rs
    | _ -> ());
    if timed then begin
      let series, t0 = Queue.pop stamps in
      Bw_obs.observe obs ~tid series (Bw_obs.now_ns () - t0)
    end
  in
  let submit series req =
    if Bw_client.inflight client >= depth then drain_one ();
    if timed then Queue.add (series, Bw_obs.now_ns ()) stamps;
    Bw_client.send client req
  in
  if batch = 1 then
    Array.iter (fun op -> submit (series_of_op op) (req_of_op op)) ops
  else begin
    let n = Array.length ops in
    let i = ref 0 in
    while !i < n do
      let len = min batch (n - !i) in
      let chunk = List.init len (fun j -> req_of_op ops.(!i + j)) in
      submit (series_of_op ops.(!i)) (Wire.Batch chunk);
      i := !i + len
    done
  end;
  Bw_client.flush client;
  while Bw_client.inflight client > 0 do
    drain_one ()
  done;
  !errors

(* Replay [ops] through a cluster router: synchronous routed calls (the
   router owns redirect retries, so pipelining depth does not apply).
   With [batch] > 1, runs of point ops chunk into owner-partitioned
   BATCH dispatches; scans flush the pending chunk and route on their
   own (a cross-shard scan is already multi-frame). *)
let drive_router obs ~tid router ops ~batch =
  let timed = Bw_obs.enabled obs in
  let errors = ref 0 in
  let time series f =
    let t0 = if timed then Bw_obs.now_ns () else 0 in
    (match f () with
    | () -> ()
    | exception Bw_client.Protocol_error _ -> incr errors
    | exception Bw_router.Unroutable _ -> incr errors);
    if timed then Bw_obs.observe obs ~tid series (Bw_obs.now_ns () - t0)
  in
  let one op =
    time (series_of_op op) (fun () ->
        match op with
        | W.Insert (k, v) ->
            ignore (Bw_router.put router ~mode:Wire.Insert k v : bool)
        | W.Update (k, v) ->
            ignore (Bw_router.put router ~mode:Wire.Update k v : bool)
        | W.Read k -> ignore (Bw_router.get router k : int option)
        | W.Scan (k, n) ->
            ignore
              (Bw_router.scan router k ~n:(min n Wire.max_scan)
                : (string * int) list))
  in
  if batch = 1 then Array.iter one ops
  else begin
    let pending = ref [] in
    let pn = ref 0 in
    let first_series = ref None in
    let flush () =
      if !pending <> [] then begin
        let reqs = List.rev !pending in
        let series =
          Option.value !first_series ~default:Bw_obs.Lat_req_batch
        in
        time series (fun () ->
            List.iter
              (function Wire.Err _ -> incr errors | _ -> ())
              (Bw_router.batch router reqs));
        pending := [];
        pn := 0;
        first_series := None
      end
    in
    Array.iter
      (fun op ->
        match op with
        | W.Scan _ ->
            flush ();
            one op
        | _ ->
            if !first_series = None then first_series := Some (series_of_op op);
            pending := req_of_op op :: !pending;
            incr pn;
            if !pn >= batch then flush ())
      ops;
    flush ()
  end;
  !errors

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          ((if host = "" then "127.0.0.1" else host), p)
      | _ ->
          Printf.eprintf "bwt_loadgen: bad port in %S\n" s;
          exit 2)
  | None ->
      Printf.eprintf "bwt_loadgen: expected HOST:PORT, got %S\n" s;
      exit 2

let main host port cluster clients depth batch mix keyspace keys ops theta
    no_load stats_json metrics metrics_json =
  let mix =
    match W.mix_of_string mix with
    | Some m -> m
    | None ->
        Printf.eprintf "bwt_loadgen: unknown --mix %S (try: %s)\n" mix
          usage_mixes;
        exit 2
  in
  let space =
    match keyspace with
    | "mono" -> W.Mono_int
    | "rand" -> W.Rand_int
    | "email" -> W.Email
    | "hc" -> W.Mono_hc
    | s ->
        Printf.eprintf "bwt_loadgen: unknown --keyspace %S (try: %s)\n" s
          usage_spaces;
        exit 2
  in
  if clients < 1 || depth < 1 || keys < 1 || ops < 0 then begin
    Printf.eprintf
      "bwt_loadgen: --clients and --pipeline must be >= 1, --keys >= 1, \
       --ops >= 0\n";
    exit 2
  end;
  if batch < 1 || batch > Wire.max_batch then begin
    Printf.eprintf "bwt_loadgen: --batch must be in [1, %d] (got %d)\n"
      Wire.max_batch batch;
    exit 2
  end;
  (* keys travel in their binary-comparable form; the server decodes *)
  let conv : int -> string =
    match space with
    | W.Email -> W.email_key_of
    | _ -> fun i -> Bw_util.Key_codec.of_int (W.int_key_of space i)
  in
  let cfg = { W.default_config with num_keys = keys; num_ops = ops; theta } in
  let obs =
    if metrics || metrics_json <> None then
      Bw_obs.To (Bw_obs.create ~stripes:(clients + 1) ())
    else Bw_obs.Null
  in
  Printf.printf
    "bwt_loadgen: %s | mix: %s | keys: %s | clients: %d | pipeline: %d%s\n%!"
    (match cluster with
    | Some seeds -> "cluster " ^ seeds
    | None -> Printf.sprintf "%s:%d" host port)
    (Format.asprintf "%a" W.pp_mix mix)
    (Format.asprintf "%a" W.pp_key_space space)
    clients depth
    (if batch > 1 then Printf.sprintf " | batch: %d" batch else "");
  let use =
    match cluster with
    | None -> (
        try
          `Direct (Array.init clients (fun _ -> Bw_client.connect ~host ~port ()))
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "bwt_loadgen: cannot connect to %s:%d: %s\n" host port
            (Unix.error_message e);
          exit 1)
    | Some seeds -> (
        let seeds = List.map parse_host_port (String.split_on_char ',' seeds) in
        try
          `Cluster
            (Array.init clients (fun tid ->
                 Bw_router.connect ~obs ~tid ~seeds ()))
        with Bw_router.Unroutable m | Failure m ->
          Printf.eprintf "bwt_loadgen: cannot join cluster: %s\n" m;
          exit 1)
  in
  let errors = Atomic.make 0 in
  let run_clients traces =
    Harness.Runner.run_phase ~nthreads:clients (fun tid ->
        let e =
          match use with
          | `Direct conns -> drive obs ~tid conns.(tid) traces.(tid) ~depth ~batch
          | `Cluster routers ->
              drive_router obs ~tid routers.(tid) traces.(tid) ~batch
        in
        ignore (Atomic.fetch_and_add errors e))
  in
  (* load phase: stripe the key set across client connections *)
  if not no_load then begin
    let trace = W.load_trace cfg space conv in
    let traces =
      Array.init clients (fun tid ->
          let mine = ref [] in
          Array.iteri
            (fun i (k, v) ->
              if i mod clients = tid then mine := W.Insert (k, v) :: !mine)
            trace;
          Array.of_list (List.rev !mine))
    in
    let seconds = run_clients traces in
    let n = Array.length trace in
    Printf.printf "load : %8d keys in %6.2fs = %7.3f Mops/s\n%!" n seconds
      (Bw_util.Stats.throughput_mops ~ops:n ~seconds)
  end;
  (match mix with
  | W.Insert_only -> ()
  | _ ->
      let traces =
        Array.init clients (fun tid ->
            W.ops_trace cfg space mix ~tid ~nthreads:clients conv)
      in
      let seconds = run_clients traces in
      let n = Array.fold_left (fun a t -> a + Array.length t) 0 traces in
      Printf.printf "run  : %8d ops  in %6.2fs = %7.3f Mops/s\n%!" n seconds
        (Bw_util.Stats.throughput_mops ~ops:n ~seconds));
  if Atomic.get errors > 0 then
    Printf.printf "errors: %d ERR replies\n%!" (Atomic.get errors);
  Option.iter
    (fun file ->
      let json =
        match use with
        | `Direct conns -> Bw_client.stats conns.(0)
        | `Cluster routers ->
            (* the merged fleet snapshot, with the loadgen's own
               registry folded in (it holds router_redirects) *)
            let extra =
              match obs with
              | Bw_obs.To reg ->
                  [ ("loadgen", Bw_obs.snapshot_to_string (Bw_obs.snapshot reg)) ]
              | Bw_obs.Null -> []
            in
            Bw_router.fleet_stats_json ~extra routers.(0)
      in
      let oc = open_out file in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf "stats: wrote server snapshot to %s\n%!" file)
    stats_json;
  (match use with
  | `Direct conns -> Array.iter Bw_client.close conns
  | `Cluster routers -> Array.iter Bw_router.close routers);
  (match obs with
  | Bw_obs.Null -> ()
  | Bw_obs.To reg ->
      let sn = Bw_obs.snapshot reg in
      if metrics then Format.printf "%a@." Bw_obs.pp_snapshot sn;
      Option.iter
        (fun file ->
          let oc = open_out file in
          output_string oc (Bw_obs.snapshot_to_string sn);
          output_char oc '\n';
          close_out oc;
          Printf.printf "metrics: wrote %s\n%!" file)
        metrics_json);
  if Atomic.get errors > 0 then exit 3

let cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port =
    Arg.(value & opt int 4680 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let cluster =
    Arg.(value & opt (some string) None
         & info [ "cluster" ] ~docv:"SEEDS"
             ~doc:"Drive a multi-node cluster instead of one server: \
                   comma-separated HOST:PORT seed endpoints. Each client \
                   domain runs its own routing table fetched from the \
                   seeds; EWRONGSHARD redirects refetch and retry. \
                   --pipeline does not apply (routed calls are \
                   synchronous); --host/--port are ignored.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "c"; "clients" ] ~docv:"N"
             ~doc:"Client domains, one connection each.")
  in
  let depth =
    Arg.(value & opt int 16
         & info [ "pipeline" ] ~docv:"D"
             ~doc:"Requests kept in flight per connection.")
  in
  let batch =
    Arg.(value & opt int 1
         & info [ "b"; "batch" ] ~docv:"N"
             ~doc:"Pack $(docv) operations per BATCH frame (1 = one \
                   request per frame).")
  in
  let mix =
    Arg.(value & opt string "a"
         & info [ "m"; "mix" ] ~docv:"MIX"
             ~doc:(Printf.sprintf "Workload mix: %s." usage_mixes))
  in
  let keyspace =
    Arg.(value & opt string "rand"
         & info [ "k"; "keyspace" ] ~docv:"SPACE"
             ~doc:(Printf.sprintf "Key space: %s." usage_spaces))
  in
  let keys =
    Arg.(value & opt int 100_000
         & info [ "keys" ] ~docv:"N" ~doc:"Keys loaded before measuring.")
  in
  let ops =
    Arg.(value & opt int 200_000
         & info [ "ops" ] ~docv:"N" ~doc:"Operations in the measured phase.")
  in
  let theta =
    Arg.(value & opt float 0.99
         & info [ "theta" ] ~docv:"F" ~doc:"Zipfian skew in (0,1).")
  in
  let no_load =
    Arg.(value & flag
         & info [ "no-load" ]
             ~doc:"Skip the load phase (the server is already populated).")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"Fetch the server's STATS snapshot afterwards and write \
                   it to $(docv).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Record client-side request latencies and print a \
                   snapshot.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Record client-side request latencies and write a JSON \
                   snapshot to $(docv).")
  in
  let term =
    Term.(
      const main $ host $ port $ cluster $ clients $ depth $ batch $ mix
      $ keyspace $ keys $ ops $ theta $ no_load $ stats_json $ metrics
      $ metrics_json)
  in
  Cmd.v
    (Cmd.info "bwt_loadgen"
       ~doc:"YCSB-style load generator for bwt_server"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays the paper's YCSB mixes against a running bwt_server \
              over TCP, one pipelined connection per client domain, and \
              reports throughput in the same format as bin/ycsb.exe.";
         ])
    term

let () = exit (Cmd.eval cmd)
