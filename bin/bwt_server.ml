(* Networked Bw-Tree server: serves one index instance over the binary
   wire protocol (lib/server), with a metrics registry always on so the
   STATS frame and the shutdown snapshot have something to say.

   Examples:
     dune exec bin/bwt_server.exe -- --port 4680 --workers 4
     dune exec bin/bwt_server.exe -- --port 0 --key-type str --index bw
     kill -TERM <pid>   # graceful drain; writes --metrics-json if given *)

open Cmdliner
module Server = Bw_server.Server
module Backend = Bw_server.Backend

let backend_of ~index ~key_type ~obs : Bw_server.Backend.t =
  let config =
    match index with
    | "openbw" -> None
    | "bw" -> Some Bwtree.microsoft_config
    | s ->
        Printf.eprintf "bwt_server: unknown index %S (try: openbw, bw)\n" s;
        exit 2
  in
  match key_type with
  | "int" -> Backend.of_int_driver (Harness.Drivers.bwtree_driver_int ?config ~obs ())
  | "str" -> Backend.of_str_driver (Harness.Drivers.bwtree_driver_str ?config ~obs ())
  | s ->
      Printf.eprintf "bwt_server: unknown key type %S (try: int, str)\n" s;
      exit 2

let main host port workers index key_type close_on_malformed metrics
    metrics_json =
  if workers < 1 then begin
    Printf.eprintf "bwt_server: --workers must be >= 1\n";
    exit 2
  end;
  let reg = Bw_obs.create ~stripes:(workers + 1) () in
  let obs = Bw_obs.To reg in
  let backend = backend_of ~index ~key_type ~obs in
  let config =
    {
      Server.default_config with
      host;
      port;
      workers;
      close_on_malformed;
      obs;
    }
  in
  let server = Server.start ~config backend in
  Printf.printf "bwt_server: serving %s (%s keys) on %s:%d with %d workers\n%!"
    backend.Backend.name key_type host (Server.port server) workers;
  let stop_requested = ref false in
  let on_signal _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not !stop_requested do
    (try Unix.sleepf 0.1 with Unix.Unix_error (EINTR, _, _) -> ())
  done;
  Printf.printf "bwt_server: draining...\n%!";
  Server.stop server;
  let sn = Bw_obs.snapshot reg in
  if metrics then Format.printf "%a@." Bw_obs.pp_snapshot sn;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Bw_obs.snapshot_to_string sn);
      output_char oc '\n';
      close_out oc;
      Printf.printf "bwt_server: wrote %s\n%!" file)
    metrics_json;
  Printf.printf "bwt_server: clean shutdown\n%!"

let cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port =
    Arg.(value & opt int 4680
         & info [ "p"; "port" ] ~docv:"PORT"
             ~doc:"TCP port (0 picks an ephemeral port, printed on stdout).")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "w"; "workers" ] ~docv:"N"
             ~doc:"Worker domains, each running its own event loop.")
  in
  let index =
    Arg.(value & opt string "openbw"
         & info [ "i"; "index" ] ~docv:"INDEX"
             ~doc:"Index to serve: openbw, bw.")
  in
  let key_type =
    Arg.(value & opt string "int"
         & info [ "key-type" ] ~docv:"T"
             ~doc:"Key type behind the binary wire keys: int, str.")
  in
  let close_on_malformed =
    Arg.(value & flag
         & info [ "close-on-malformed" ]
             ~doc:"Drop a connection after replying ERR to a malformed \
                   frame (framing-level violations always drop it).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Print a metrics snapshot at shutdown.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Write a JSON metrics snapshot to $(docv) at shutdown.")
  in
  let term =
    Term.(
      const main $ host $ port $ workers $ index $ key_type
      $ close_on_malformed $ metrics $ metrics_json)
  in
  Cmd.v
    (Cmd.info "bwt_server"
       ~doc:"Serve a Bw-Tree over the binary wire protocol"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Starts one acceptor and N worker domains; all workers drive \
              the same lock-free tree. SIGTERM/SIGINT drain in-flight \
              requests, flush, and shut down cleanly.";
         ])
    term

let () = exit (Cmd.eval cmd)
