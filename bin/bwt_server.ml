(* Networked Bw-Tree server: serves one index instance over the binary
   wire protocol (lib/server), with a metrics registry always on so the
   STATS frame and the shutdown snapshot have something to say.

   Examples:
     dune exec bin/bwt_server.exe -- --port 4680 --workers 4
     dune exec bin/bwt_server.exe -- --port 0 --key-type str --index bw
     kill -TERM <pid>   # graceful drain; writes --metrics-json if given *)

open Cmdliner
module Server = Bw_server.Server
module Backend = Bw_server.Backend

(* With --shards 1 this is exactly the pre-forest single-tree server: no
   router, one registry, the plain snapshot — a strict no-op. With N > 1
   the index is a range-partitioned forest (Bw_shard via
   Harness.Drivers), each shard feeding its own registry; STATS and the
   shutdown snapshot report the merged forest-wide totals plus
   shard<i>_-prefixed per-shard series. *)
(* Returns the backend plus, when --data-dir made it durable, the
   shutdown hook that checkpoints the drained store and closes its WAL. *)
let backend_of ~index ~key_type ~shards ~obs ~obs_of ~data_dir ~fsync :
    Bw_server.Backend.t * (unit -> unit) option =
  let config =
    match index with
    | "openbw" -> None
    | "bw" -> Some Bwtree.microsoft_config
    | s ->
        Printf.eprintf "bwt_server: unknown index %S (try: openbw, bw)\n" s;
        exit 2
  in
  let durable (dur : _ Harness.Drivers.durable) =
    Format.printf "bwt_server: recovered %a@."
      Pagestore.Store.pp_stats dur.Harness.Drivers.dur_stats;
    let shutdown () =
      dur.Harness.Drivers.dur_checkpoint ();
      dur.Harness.Drivers.dur_close ()
    in
    (dur.Harness.Drivers.dur_driver, Some shutdown)
  in
  match (key_type, data_dir) with
  | "int", None ->
      let d =
        if shards = 1 then Harness.Drivers.bwtree_driver_int ?config ~obs ()
        else
          (* partition the non-negative ints: that is where realistic
             client key sets live (negative keys still route, to shard 0) *)
          Harness.Drivers.bwtree_forest_int ?config ~obs_of ~lo:0 ~shards ()
      in
      (Backend.of_int_driver d, None)
  | "int", Some dir ->
      let dur =
        if shards = 1 then
          Harness.Drivers.durable_bwtree_int ?config ~obs ~fsync ~dir ()
        else
          Harness.Drivers.durable_bwtree_forest_int ?config ~obs_of ~lo:0
            ~fsync ~shards ~dir ()
      in
      let d, shutdown = durable dur in
      (Backend.of_int_driver d, shutdown)
  | "str", None ->
      let d =
        if shards = 1 then Harness.Drivers.bwtree_driver_str ?config ~obs ()
        else Harness.Drivers.bwtree_forest_str ?config ~obs_of ~shards ()
      in
      (Backend.of_str_driver d, None)
  | "str", Some dir ->
      let dur =
        if shards = 1 then
          Harness.Drivers.durable_bwtree_str ?config ~obs ~fsync ~dir ()
        else
          Harness.Drivers.durable_bwtree_forest_str ?config ~obs_of ~fsync
            ~shards ~dir ()
      in
      let d, shutdown = durable dur in
      (Backend.of_str_driver d, shutdown)
  | s, _ ->
      Printf.eprintf "bwt_server: unknown key type %S (try: int, str)\n" s;
      exit 2

let main host port workers shards index key_type data_dir no_fsync
    close_on_malformed metrics metrics_json =
  if workers < 1 then begin
    Printf.eprintf "bwt_server: --workers must be >= 1\n";
    exit 2
  end;
  if shards < 1 then begin
    Printf.eprintf "bwt_server: --shards must be >= 1\n";
    exit 2
  end;
  let reg = Bw_obs.create ~stripes:(workers + 1) () in
  let obs = Bw_obs.To reg in
  let shard_regs =
    Array.init (if shards = 1 then 0 else shards) (fun _ ->
        Bw_obs.create ~stripes:(workers + 1) ())
  in
  let obs_of i = Bw_obs.To shard_regs.(i) in
  let backend, on_shutdown =
    backend_of ~index ~key_type ~shards ~obs ~obs_of ~data_dir
      ~fsync:(not no_fsync)
  in
  let snapshot_merged () =
    Bw_obs.snapshot_all (reg :: Array.to_list shard_regs)
  in
  let stats_string () =
    if shards = 1 then Bw_obs.snapshot_to_string (Bw_obs.snapshot reg)
    else
      let per_shard =
        Array.to_list
          (Array.mapi
             (fun i r -> (Printf.sprintf "shard%d" i, Bw_obs.snapshot r))
             shard_regs)
      in
      Bw_obs.sharded_snapshot_to_string ~shards:per_shard (snapshot_merged ())
  in
  let config =
    {
      Server.default_config with
      host;
      port;
      workers;
      close_on_malformed;
      obs;
      stats_json = (if shards = 1 then None else Some stats_string);
    }
  in
  let server = Server.start ~config backend in
  Printf.printf "bwt_server: serving %s (%s keys) on %s:%d with %d workers\n%!"
    backend.Index_iface.name key_type host (Server.port server) workers;
  let stop_requested = ref false in
  let on_signal _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not !stop_requested do
    (try Unix.sleepf 0.1 with Unix.Unix_error (EINTR, _, _) -> ())
  done;
  Printf.printf "bwt_server: draining...\n%!";
  Server.stop server;
  Option.iter
    (fun shutdown ->
      (* drained: every acknowledged op is in the tree, so the snapshot
         is consistent and the next boot replays an empty WAL *)
      Printf.printf "bwt_server: checkpointing...\n%!";
      shutdown ())
    on_shutdown;
  if metrics then Format.printf "%a@." Bw_obs.pp_snapshot (snapshot_merged ());
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (stats_string ());
      output_char oc '\n';
      close_out oc;
      Printf.printf "bwt_server: wrote %s\n%!" file)
    metrics_json;
  Printf.printf "bwt_server: clean shutdown\n%!"

let cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port =
    Arg.(value & opt int 4680
         & info [ "p"; "port" ] ~docv:"PORT"
             ~doc:"TCP port (0 picks an ephemeral port, printed on stdout).")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "w"; "workers" ] ~docv:"N"
             ~doc:"Worker domains, each running its own event loop.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Serve a range-partitioned forest of $(docv) trees \
                   instead of a single tree (1 = plain single-tree \
                   server). STATS and the shutdown snapshot then carry \
                   merged totals plus shard<i>_-prefixed series.")
  in
  let index =
    Arg.(value & opt string "openbw"
         & info [ "i"; "index" ] ~docv:"INDEX"
             ~doc:"Index to serve: openbw, bw.")
  in
  let key_type =
    Arg.(value & opt string "int"
         & info [ "key-type" ] ~docv:"T"
             ~doc:"Key type behind the binary wire keys: int, str.")
  in
  let data_dir =
    Arg.(value & opt (some string) None
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Serve durably out of $(docv): recover the tree from the \
                   newest checkpoint generation plus WAL replay on boot, \
                   group-commit every applied write to the WAL while \
                   serving, and cut a fresh checkpoint after the shutdown \
                   drain. With --shards N each shard keeps its own \
                   generations and WAL under $(docv)/shard-<i>.")
  in
  let no_fsync =
    Arg.(value & flag
         & info [ "no-fsync" ]
             ~doc:"With --data-dir: skip the per-commit fsync (contents \
                   still recover after a clean process exit, but an OS \
                   crash may lose acknowledged writes).")
  in
  let close_on_malformed =
    Arg.(value & flag
         & info [ "close-on-malformed" ]
             ~doc:"Drop a connection after replying ERR to a malformed \
                   frame (framing-level violations always drop it).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Print a metrics snapshot at shutdown.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Write a JSON metrics snapshot to $(docv) at shutdown.")
  in
  let term =
    Term.(
      const main $ host $ port $ workers $ shards $ index $ key_type
      $ data_dir $ no_fsync $ close_on_malformed $ metrics $ metrics_json)
  in
  Cmd.v
    (Cmd.info "bwt_server"
       ~doc:"Serve a Bw-Tree over the binary wire protocol"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Starts one acceptor and N worker domains; all workers drive \
              the same lock-free tree. SIGTERM/SIGINT drain in-flight \
              requests, flush, and shut down cleanly.";
         ])
    term

let () = exit (Cmd.eval cmd)
