(* Networked Bw-Tree server: serves one index instance over the binary
   wire protocol (lib/server), with a metrics registry always on so the
   STATS frame and the shutdown snapshot have something to say.

   Examples:
     dune exec bin/bwt_server.exe -- --port 4680 --workers 4
     dune exec bin/bwt_server.exe -- --port 0 --key-type str --index bw
     kill -TERM <pid>   # graceful drain; writes --metrics-json if given *)

open Cmdliner
module Server = Bw_server.Server
module Backend = Bw_server.Backend

(* With --shards 1 this is exactly the pre-forest single-tree server: no
   router, one registry, the plain snapshot — a strict no-op. With N > 1
   the index is a range-partitioned forest (Bw_shard via
   Harness.Drivers), each shard feeding its own registry; STATS and the
   shutdown snapshot report the merged forest-wide totals plus
   shard<i>_-prefixed per-shard series. *)
(* Everything [main] needs from the chosen serving mode: the backend,
   the durable shutdown hook (checkpoint + WAL close), the per-shard
   replication sources (durable stores only — the WAL shipper's feed),
   and the follower's stream handler (follow mode only). *)
type built = {
  b_backend : Bw_server.Backend.t;
  b_shutdown : (unit -> unit) option;
  b_sources : Pagestore.Store.repl_source array option;
  b_repl_handler :
    (tid:int -> Bw_server.Wire.repl_req -> Bw_server.Wire.resp) option;
}

(* --leaf-cache override; set in [main] before any backend is built *)
let leaf_cache_override : bool option ref = ref None

let config_of_index index =
  let base =
    match index with
    | "openbw" -> None
    | "bw" -> Some Bwtree.microsoft_config
    | s ->
        Printf.eprintf "bwt_server: unknown index %S (try: openbw, bw)\n" s;
        exit 2
  in
  match !leaf_cache_override with
  | None -> base
  | Some on ->
      let b = Option.value base ~default:Bwtree.default_config in
      Some { b with Bwtree.leaf_cache = on }

let backend_of ~index ~key_type ~shards ~obs ~obs_of ~data_dir ~fsync : built
    =
  let config = config_of_index index in
  let plain backend =
    { b_backend = backend; b_shutdown = None; b_sources = None;
      b_repl_handler = None }
  in
  let durable (dur : _ Harness.Drivers.durable) =
    Format.printf "bwt_server: recovered %a@."
      Pagestore.Store.pp_stats dur.Harness.Drivers.dur_stats;
    let shutdown () =
      dur.Harness.Drivers.dur_checkpoint ();
      dur.Harness.Drivers.dur_close ()
    in
    (dur.Harness.Drivers.dur_driver, shutdown,
     dur.Harness.Drivers.dur_sources)
  in
  match (key_type, data_dir) with
  | "int", None ->
      let d =
        if shards = 1 then Harness.Drivers.bwtree_driver_int ?config ~obs ()
        else
          (* partition the non-negative ints: that is where realistic
             client key sets live (negative keys still route, to shard 0) *)
          Harness.Drivers.bwtree_forest_int ?config ~obs_of ~lo:0 ~shards ()
      in
      plain (Backend.of_int_driver d)
  | "int", Some dir ->
      let dur =
        if shards = 1 then
          Harness.Drivers.durable_bwtree_int ?config ~obs ~fsync ~dir ()
        else
          Harness.Drivers.durable_bwtree_forest_int ?config ~obs_of ~lo:0
            ~fsync ~shards ~dir ()
      in
      let d, shutdown, sources = durable dur in
      { b_backend = Backend.of_int_driver d; b_shutdown = Some shutdown;
        b_sources = Some sources; b_repl_handler = None }
  | "str", None ->
      let d =
        if shards = 1 then Harness.Drivers.bwtree_driver_str ?config ~obs ()
        else Harness.Drivers.bwtree_forest_str ?config ~obs_of ~shards ()
      in
      plain (Backend.of_str_driver d)
  | "str", Some dir ->
      let dur =
        if shards = 1 then
          Harness.Drivers.durable_bwtree_str ?config ~obs ~fsync ~dir ()
        else
          Harness.Drivers.durable_bwtree_forest_str ?config ~obs_of ~fsync
            ~shards ~dir ()
      in
      let d, shutdown, sources = durable dur in
      { b_backend = Backend.of_str_driver d; b_shutdown = Some shutdown;
        b_sources = Some sources; b_repl_handler = None }
  | s, _ ->
      Printf.eprintf "bwt_server: unknown key type %S (try: int, str)\n" s;
      exit 2

(* Follow mode: a warm standby that bootstraps from the primary's
   SNAPSHOT frames, applies WALCHUNKs into live trees, and serves reads
   (writes answer ERR) until a PROMOTE frame flips it read-write. *)
let follower_of ~index ~key_type ~shards ~obs ~obs_of : built =
  let config = config_of_index index in
  (* mirror backend_of: a single tree feeds the main registry, a forest
     feeds per-shard registries *)
  let obs_of = if shards = 1 then fun _ -> obs else obs_of in
  let fo =
    match key_type with
    | "int" ->
        Bw_replica.follower_int ?config ~obs ~obs_of ~lo:0 ~shards ()
    | "str" -> Bw_replica.follower_str ?config ~obs ~obs_of ~shards ()
    | s ->
        Printf.eprintf "bwt_server: unknown key type %S (try: int, str)\n" s;
        exit 2
  in
  {
    b_backend = fo.Bw_replica.fo_backend;
    b_shutdown = None;
    b_sources = None;
    b_repl_handler = Some fo.Bw_replica.fo_handle;
  }

let parse_host_port s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          ((if host = "" then "127.0.0.1" else host), p)
      | _ ->
          Printf.eprintf "bwt_server: bad port in %S\n" s;
          exit 2)
  | None ->
      Printf.eprintf "bwt_server: expected HOST:PORT, got %S\n" s;
      exit 2

(* One --cluster-peers entry: HOST:PORT, optionally /RHOST:RPORT naming
   that member's warm standby (routers may fan reads out to it). *)
let parse_peer s =
  let main, replica =
    match String.index_opt s '/' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let ep_host, ep_port = parse_host_port main in
  {
    Bw_cluster.Table.ep_host;
    ep_port;
    ep_replica = Option.map parse_host_port replica;
  }

(* Every member computes the same epoch-1 table from the same
   --cluster-peers flag: uniform ranges over the live key sub-space
   (non-negative ints for int keys, mirroring the in-process forest
   default; the whole slice space for str keys), assigned to the peers
   in order. Later epochs only ever come from migrations. *)
let bootstrap_table ~key_type peers =
  let endpoints = Array.of_list (List.map parse_peer peers) in
  let n = Array.length endpoints in
  let u =
    match key_type with
    | "int" -> Bw_cluster.Uniform.make_int ~lo:0 n
    | _ -> Bw_cluster.Uniform.make n
  in
  Bw_cluster.Table.of_uniform ~epoch:1L endpoints u

let main host port workers shards index key_type leaf_cache data_dir no_fsync
    close_on_malformed metrics metrics_json replicate_to follow cluster_self
    cluster_peers =
  leaf_cache_override := leaf_cache;
  if workers < 1 then begin
    Printf.eprintf "bwt_server: --workers must be >= 1\n";
    exit 2
  end;
  if shards < 1 then begin
    Printf.eprintf "bwt_server: --shards must be >= 1\n";
    exit 2
  end;
  (match (cluster_self, cluster_peers) with
  | None, None -> ()
  | Some _, None | None, Some _ ->
      Printf.eprintf
        "bwt_server: --cluster-self and --cluster-peers go together\n";
      exit 2
  | Some self, Some peers ->
      let n = List.length peers in
      if self < 0 || self >= n then begin
        Printf.eprintf
          "bwt_server: --cluster-self %d out of range for %d peers\n" self n;
        exit 2
      end;
      if follow then begin
        Printf.eprintf
          "bwt_server: --follow conflicts with cluster membership (list a \
           standby as HOST:PORT/RHOST:RPORT in --cluster-peers instead)\n";
        exit 2
      end);
  if follow && (data_dir <> None || replicate_to <> None) then begin
    Printf.eprintf
      "bwt_server: --follow conflicts with --data-dir and --replicate-to\n";
    exit 2
  end;
  if replicate_to <> None && data_dir = None then begin
    Printf.eprintf "bwt_server: --replicate-to requires --data-dir (the WAL \
                    is the stream)\n";
    exit 2
  end;
  let reg = Bw_obs.create ~stripes:(workers + 2) () in
  let obs = Bw_obs.To reg in
  let shard_regs =
    Array.init (if shards = 1 then 0 else shards) (fun _ ->
        Bw_obs.create ~stripes:(workers + 2) ())
  in
  let obs_of i = Bw_obs.To shard_regs.(i) in
  let built =
    if follow then follower_of ~index ~key_type ~shards ~obs ~obs_of
    else
      backend_of ~index ~key_type ~shards ~obs ~obs_of ~data_dir
        ~fsync:(not no_fsync)
  in
  let backend = built.b_backend and on_shutdown = built.b_shutdown in
  let snapshot_merged () =
    Bw_obs.snapshot_all (reg :: Array.to_list shard_regs)
  in
  let stats_string () =
    if shards = 1 then Bw_obs.snapshot_to_string (Bw_obs.snapshot reg)
    else
      let per_shard =
        Array.to_list
          (Array.mapi
             (fun i r -> (Printf.sprintf "shard%d" i, Bw_obs.snapshot r))
             shard_regs)
      in
      Bw_obs.sharded_snapshot_to_string ~shards:per_shard (snapshot_merged ())
  in
  (* Cluster membership: the gate validates every request against this
     node's partition table; MIGRATE admits synchronously, then copies
     and flips in a background domain (joined before shutdown). The
     engine's scan and obs use tid [workers + 1] — its own obs stripe
     and tree slot, off the workers' 0..N-1 and the shipper's N. *)
  let gate, migrate_handler, join_migration =
    match (cluster_self, cluster_peers) with
    | Some self, Some peers ->
        let table = bootstrap_table ~key_type peers in
        let g = Bw_server.Cluster_gate.create ~obs ~self table in
        let mig_tid = workers + 1 in
        let scan k ~n =
          let acc = ref [] in
          ignore
            (backend.Index_iface.scan ~tid:mig_tid k ~n (fun key v ->
                 acc := (key, v) :: !acc)
              : int);
          List.rev !acc
        in
        let last = ref None in
        let handler ~tid:_ ~lo ~hi ~dst =
          match
            Bw_router.Migration.start ~obs ~tid:mig_tid ~gate:g ~scan ~lo ~hi
              ~dst ()
          with
          | Error e -> Bw_server.Wire.Err e
          | Ok d ->
              (* the previous migration's domain has flipped or aborted
                 (begin_migration's CAS won), so joining it only waits
                 out its topology broadcast tail *)
              Option.iter Domain.join !last;
              last := Some d;
              Bw_server.Wire.Applied true
        in
        ( Some g,
          Some handler,
          fun () -> Option.iter Domain.join !last )
    | _ -> (None, None, fun () -> ())
  in
  let config =
    {
      Server.default_config with
      host;
      port;
      workers;
      close_on_malformed;
      obs;
      stats_json = (if shards = 1 then None else Some stats_string);
      repl_handler = built.b_repl_handler;
      gate;
      migrate_handler;
    }
  in
  let server = Server.start ~config backend in
  Printf.printf "bwt_server: serving %s (%s keys) on %s:%d with %d workers\n%!"
    backend.Index_iface.name key_type host (Server.port server) workers;
  (match (cluster_self, gate) with
  | Some self, Some g ->
      Printf.printf "bwt_server: cluster member %d of %d (epoch %Ld)\n%!" self
        (Bw_cluster.Table.n_endpoints (Bw_server.Cluster_gate.table g))
        (Bw_cluster.Table.epoch (Bw_server.Cluster_gate.table g))
  | _ -> ());
  if follow then
    Printf.printf "bwt_server: following (read-only until promoted)\n%!";
  let shipper =
    match replicate_to with
    | None -> None
    | Some target ->
        let rhost, rport = parse_host_port target in
        let sources = Option.get built.b_sources in
        (* obs tid [workers]: its own stripe, off the workers' 0..N-1 *)
        let sh =
          Bw_replica.Shipper.create ~obs ~tid:workers ~host:rhost ~port:rport
            ~key_type sources
        in
        Bw_replica.Shipper.start sh;
        Printf.printf "bwt_server: replicating to %s:%d\n%!" rhost rport;
        Some sh
  in
  let stop_requested = ref false in
  let on_signal _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not !stop_requested do
    (try Unix.sleepf 0.1 with Unix.Unix_error (EINTR, _, _) -> ())
  done;
  Printf.printf "bwt_server: draining...\n%!";
  Server.stop server;
  join_migration ();
  (* drained first, so the shipper's final sweeps see every acknowledged
     write; only then checkpoint (which retires the WAL) *)
  Option.iter Bw_replica.Shipper.stop shipper;
  Option.iter
    (fun shutdown ->
      (* drained: every acknowledged op is in the tree, so the snapshot
         is consistent and the next boot replays an empty WAL *)
      Printf.printf "bwt_server: checkpointing...\n%!";
      shutdown ())
    on_shutdown;
  if metrics then Format.printf "%a@." Bw_obs.pp_snapshot (snapshot_merged ());
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (stats_string ());
      output_char oc '\n';
      close_out oc;
      Printf.printf "bwt_server: wrote %s\n%!" file)
    metrics_json;
  Printf.printf "bwt_server: clean shutdown\n%!"

let cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port =
    Arg.(value & opt int 4680
         & info [ "p"; "port" ] ~docv:"PORT"
             ~doc:"TCP port (0 picks an ephemeral port, printed on stdout).")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "w"; "workers" ] ~docv:"N"
             ~doc:"Worker domains, each running its own event loop.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Serve a range-partitioned forest of $(docv) trees \
                   instead of a single tree (1 = plain single-tree \
                   server). STATS and the shutdown snapshot then carry \
                   merged totals plus shard<i>_-prefixed series.")
  in
  let index =
    Arg.(value & opt string "openbw"
         & info [ "i"; "index" ] ~docv:"INDEX"
             ~doc:"Index to serve: openbw, bw.")
  in
  let key_type =
    Arg.(value & opt string "int"
         & info [ "key-type" ] ~docv:"T"
             ~doc:"Key type behind the binary wire keys: int, str.")
  in
  let leaf_cache =
    Arg.(value & opt (some bool) None
         & info [ "leaf-cache" ] ~docv:"BOOL"
             ~doc:"Enable/disable the point-op leaf cache (default: the \
                   index config's own setting — on for openbw, off for \
                   bw).")
  in
  let data_dir =
    Arg.(value & opt (some string) None
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Serve durably out of $(docv): recover the tree from the \
                   newest checkpoint generation plus WAL replay on boot, \
                   group-commit every applied write to the WAL while \
                   serving, and cut a fresh checkpoint after the shutdown \
                   drain. With --shards N each shard keeps its own \
                   generations and WAL under $(docv)/shard-<i>.")
  in
  let no_fsync =
    Arg.(value & flag
         & info [ "no-fsync" ]
             ~doc:"With --data-dir: skip the per-commit fsync (contents \
                   still recover after a clean process exit, but an OS \
                   crash may lose acknowledged writes).")
  in
  let close_on_malformed =
    Arg.(value & flag
         & info [ "close-on-malformed" ]
             ~doc:"Drop a connection after replying ERR to a malformed \
                   frame (framing-level violations always drop it).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Print a metrics snapshot at shutdown.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Write a JSON metrics snapshot to $(docv) at shutdown.")
  in
  let replicate_to =
    Arg.(value & opt (some string) None
         & info [ "replicate-to" ] ~docv:"HOST:PORT"
             ~doc:"Ship the WAL to a standby serving with --follow at \
                   $(docv). Requires --data-dir. Shipping is asynchronous \
                   (never on the commit path); the stream bootstraps the \
                   standby from the newest checkpoint generation and then \
                   tails commit groups, reconnecting and re-bootstrapping \
                   as needed.")
  in
  let follow =
    Arg.(value & flag
         & info [ "follow" ]
             ~doc:"Run as a warm standby: accept a primary's replication \
                   stream, apply it into live trees, and serve GET/SCAN/\
                   STATS while following (writes answer ERR). A PROMOTE \
                   frame — optionally naming the dead primary's data \
                   directory, whose on-disk WAL tail is then replayed — \
                   flips the process read-write.")
  in
  let cluster_self =
    Arg.(value & opt (some int) None
         & info [ "cluster-self" ] ~docv:"I"
             ~doc:"Serve as member $(docv) of the cluster described by \
                   --cluster-peers: validate every request against the \
                   partition table (wrong owner answers EWRONGSHARD), \
                   serve TOPOLOGY, and accept MIGRATE.")
  in
  let cluster_peers =
    Arg.(value & opt (some (list string)) None
         & info [ "cluster-peers" ] ~docv:"PEERS"
             ~doc:"Comma-separated member endpoints, HOST:PORT each, \
                   optionally /RHOST:RPORT naming that member's warm \
                   standby. Every member must pass the identical list; \
                   the epoch-1 table splits the key space uniformly \
                   across it.")
  in
  let term =
    Term.(
      const main $ host $ port $ workers $ shards $ index $ key_type
      $ leaf_cache $ data_dir $ no_fsync $ close_on_malformed $ metrics
      $ metrics_json $ replicate_to $ follow $ cluster_self $ cluster_peers)
  in
  Cmd.v
    (Cmd.info "bwt_server"
       ~doc:"Serve a Bw-Tree over the binary wire protocol"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Starts one acceptor and N worker domains; all workers drive \
              the same lock-free tree. SIGTERM/SIGINT drain in-flight \
              requests, flush, and shut down cleanly.";
         ])
    term

let () = exit (Cmd.eval cmd)
