(* CI smoke test for replication failover: a primary shipping its WAL to
   a warm standby, SIGKILLed mid-write, and the standby promoted in its
   place.

   Sequence: start a standby (--follow) and a primary (--data-dir
   --replicate-to) on ephemeral ports; run a synchronous acknowledged-PUT
   tracker plus a background mixed loadgen against the primary; SIGKILL
   the primary mid-write; verify the standby rejects writes while
   following; PROMOTE it with the dead primary's data directory (which
   replays the on-disk WAL tail the stream had not delivered yet); then
   verify every acknowledged PUT is readable on the promoted node, that
   it now accepts writes, and that its STATS snapshot carries the repl_*
   counters (written out for json_check).

   Usage: bwt_repl_smoke STATS_JSON_OUT *)

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("bwt_repl_smoke: " ^ m); exit 1) fmt

let data_dir = "repl-smoke-data"
let key_base = 1_000_000 (* clear of the loadgen's key range *)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

type boot = { b_pid : int; b_out : in_channel; b_port : int }

(* Spawn a server with [args] on an ephemeral port; read stdout until the
   serving banner gives up the port. *)
let start_server name args =
  let out_r, out_w = Unix.pipe () in
  let argv =
    Array.of_list ([ "./bwt_server.exe"; "--port"; "0"; "--workers"; "2" ]
                  @ args)
  in
  let pid =
    Unix.create_process "./bwt_server.exe" argv Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let out = Unix.in_channel_of_descr out_r in
  let port = ref 0 in
  (try
     while !port = 0 do
       let line = input_line out in
       print_endline line;
       let has_prefix p =
         String.length line >= String.length p
         && String.sub line 0 (String.length p) = p
       in
       if has_prefix "bwt_server: serving" then
         try
           Scanf.sscanf
             (List.nth (String.split_on_char ':' line)
                (List.length (String.split_on_char ':' line) - 1))
             "%d" (fun p -> port := p)
         with _ -> die "cannot parse port from banner: %s" line
     done
   with End_of_file -> die "%s exited before its serving banner" name);
  { b_pid = pid; b_out = out; b_port = !port }

let drain_and_reap name b ~expect_clean =
  (try
     while true do
       print_endline (input_line b.b_out)
     done
   with End_of_file -> ());
  close_in_noerr b.b_out;
  match Unix.waitpid [] b.b_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c when not expect_clean ->
      Printf.printf "bwt_repl_smoke: %s exited with code %d (expected)\n%!"
        name c
  | _, Unix.WEXITED c -> die "%s exited with code %d" name c
  | _, Unix.WSIGNALED s when not expect_clean ->
      Printf.printf "bwt_repl_smoke: %s killed by signal %d (expected)\n%!"
        name s
  | _, Unix.WSIGNALED s -> die "%s killed by signal %d" name s
  | _, Unix.WSTOPPED s -> die "%s stopped by signal %d" name s

let contains json needle =
  let nl = String.length needle and jl = String.length json in
  let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
  scan 0

let () =
  let out_file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ -> (prerr_endline "usage: bwt_repl_smoke STATS_JSON_OUT"; exit 2)
  in
  (* hard backstop: a hung server must fail CI, not wedge it *)
  ignore (Unix.alarm 240);
  rm_rf data_dir;

  let standby = start_server "standby" [ "--follow" ] in
  let primary =
    start_server "primary"
      [
        "--data-dir"; data_dir; "--no-fsync";
        "--replicate-to"; Printf.sprintf "127.0.0.1:%d" standby.b_port;
      ]
  in

  (* background mixed load so the kill lands mid-write *)
  let lg =
    Unix.create_process "./bwt_loadgen.exe"
      [|
        "./bwt_loadgen.exe"; "--port"; string_of_int primary.b_port;
        "--clients"; "2"; "--pipeline"; "8"; "--mix"; "a";
        "--keys"; "8000"; "--ops"; "5000000"; "--batch"; "16";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in

  (* synchronous acknowledged-write tracker: key_base+i -> 3*(key_base+i);
     every PUT that returned before the kill must survive failover *)
  let acked = Atomic.make 0 and stop_acker = Atomic.make false in
  let acker =
    Domain.spawn (fun () ->
        let c = Bw_client.connect ~port:primary.b_port () in
        (try
           let i = ref 0 in
           while not (Atomic.get stop_acker) do
             let k = key_base + !i in
             ignore (Bw_client.Int_key.put c k (3 * k) : bool);
             Atomic.set acked (!i + 1);
             incr i
           done
         with Bw_client.Server_closed | Unix.Unix_error _ -> ());
        Bw_client.close c)
  in

  Unix.sleepf 2.0;
  Unix.kill primary.b_pid Sys.sigkill;
  Atomic.set stop_acker true;
  Domain.join acker;
  let acked = Atomic.get acked in
  if acked < 100 then die "only %d PUTs acknowledged before the kill" acked;
  Printf.printf "bwt_repl_smoke: %d acknowledged PUTs before SIGKILL\n%!"
    acked;
  (match Unix.waitpid [] lg with
  | _, Unix.WEXITED 0 -> die "loadgen finished before the kill; raise --ops"
  | _ -> ());
  drain_and_reap "primary" primary ~expect_clean:false;

  let sc = Bw_client.connect ~port:standby.b_port () in
  (* still following: writes must be refused, reads served *)
  (match Bw_client.Int_key.put sc key_base 0 with
  | _ -> die "standby accepted a write before promotion"
  | exception Bw_client.Protocol_error _ -> ());
  let t0 = Unix.gettimeofday () in
  let replayed = Bw_client.promote ~data_dir sc in
  Printf.printf
    "bwt_repl_smoke: promoted in %.0f ms; tail replay applied %d ops\n%!"
    (1000. *. (Unix.gettimeofday () -. t0))
    replayed;

  (* zero acknowledged-write loss across the failover *)
  for i = 0 to acked - 1 do
    let k = key_base + i in
    match Bw_client.Int_key.get sc k with
    | Some v when v = 3 * k -> ()
    | Some v -> die "key %d has value %d, expected %d" k v (3 * k)
    | None -> die "acknowledged key %d lost across failover" k
  done;
  Printf.printf "bwt_repl_smoke: all %d acknowledged PUTs survived\n%!" acked;

  (* promoted: read-write *)
  ignore (Bw_client.Int_key.put sc (key_base - 1) 42 : bool);
  if Bw_client.Int_key.get sc (key_base - 1) <> Some 42 then
    die "write on the promoted node did not stick";
  (match Bw_client.promote sc with
  | 0 -> () (* idempotent *)
  | n -> die "second PROMOTE replayed %d ops" n);

  let stats = Bw_client.stats sc in
  Bw_client.close sc;
  List.iter
    (fun needle ->
      if not (contains stats needle) then
        die "%s missing from the promoted node's STATS" needle)
    [
      "\"repl_records_applied\"";
      "\"repl_ops_applied\"";
      "\"repl_snapshot_pages\"";
      "\"repl_promotions\"";
      "\"repl_lag_records\"";
      "\"repl_lag_bytes\"";
    ];
  let oc = open_out out_file in
  output_string oc stats;
  output_char oc '\n';
  close_out oc;

  Unix.kill standby.b_pid Sys.sigterm;
  drain_and_reap "standby" standby ~expect_clean:true;
  rm_rf data_dir;
  Printf.printf
    "bwt_repl_smoke: ok (%d acked writes survived, %d tail-replayed ops, \
     stats in %s)\n"
    acked replayed out_file
