(* CI smoke test for the serving layer: spawns the real bwt_server.exe on
   an ephemeral loopback port, runs a short bwt_loadgen.exe mix against
   it, SIGTERMs the server and asserts a clean drain plus a metrics
   snapshot on disk (validated by json_check in the @ci rule).

   Two passes: a single-tree server (--shards 1, YCSB-A traffic) and a
   4-shard forest server (--shards 4, YCSB-E traffic batched 8 ops per
   BATCH frame, whose SCAN frames cross shard boundaries, whose batches
   split across shards, and whose snapshot carries the shard<i>_ series
   merged over the per-shard registries).

   Usage: bwt_smoke METRICS_JSON_OUT SHARDED_METRICS_JSON_OUT *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("bwt_smoke: " ^ m); exit 1) fmt

let wait_exit name pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "%s exited with code %d" name c
  | _, Unix.WSIGNALED s -> die "%s killed by signal %d" name s
  | _, Unix.WSTOPPED s -> die "%s stopped by signal %d" name s

let run_pass ~shards ~mix ~batch ~out_file =
  let srv_out_r, srv_out_w = Unix.pipe () in
  let server_pid =
    Unix.create_process "./bwt_server.exe"
      [|
        "./bwt_server.exe"; "--port"; "0"; "--workers"; "2";
        "--shards"; string_of_int shards; "--metrics-json"; out_file;
      |]
      Unix.stdin srv_out_w Unix.stderr
  in
  Unix.close srv_out_w;
  let srv_out = Unix.in_channel_of_descr srv_out_r in
  (* first line: "bwt_server: serving ... on HOST:PORT with N workers" *)
  let banner = try input_line srv_out with End_of_file -> die "server produced no banner" in
  print_endline banner;
  let port =
    try
      Scanf.sscanf (List.nth (String.split_on_char ':' banner)
                      (List.length (String.split_on_char ':' banner) - 1))
        "%d" (fun p -> p)
    with _ -> die "cannot parse port from banner: %s" banner
  in
  if port <= 0 || port > 65535 then die "bad port %d in banner" port;
  let loadgen_pid =
    Unix.create_process "./bwt_loadgen.exe"
      [|
        "./bwt_loadgen.exe"; "--port"; string_of_int port; "--clients"; "4";
        "--pipeline"; "8"; "--mix"; mix; "--keys"; "20000"; "--ops"; "40000";
        "--batch"; string_of_int batch;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  wait_exit "bwt_loadgen" loadgen_pid;
  Unix.kill server_pid Sys.sigterm;
  (* drain the server's remaining stdout so it can't block on the pipe *)
  (try
     while true do
       print_endline (input_line srv_out)
     done
   with End_of_file -> ());
  Unix.close srv_out_r;
  wait_exit "bwt_server" server_pid;
  if not (Sys.file_exists out_file) then
    die "server did not write %s" out_file;
  Printf.printf "bwt_smoke: pass ok (%d shard(s), mix %s, port %d, snapshot %s)\n%!"
    shards mix port out_file

let () =
  let single_out, sharded_out =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ ->
        prerr_endline "usage: bwt_smoke METRICS_JSON_OUT SHARDED_METRICS_JSON_OUT";
        exit 2
  in
  (* hard backstop: a hung server must fail CI, not wedge it *)
  ignore (Unix.alarm 240);
  run_pass ~shards:1 ~mix:"a" ~batch:1 ~out_file:single_out;
  run_pass ~shards:4 ~mix:"e" ~batch:8 ~out_file:sharded_out;
  Printf.printf "bwt_smoke: ok (%s, %s)\n" single_out sharded_out
