(* CI smoke test for the cluster layer: a 2-member forest behind the
   client-side router, with an online range migration racing live load.

   Sequence: reserve two loopback ports, boot both members with the same
   --cluster-peers list; run a background mixed loadgen through the
   router (--cluster) plus a synchronous acknowledged-PUT tracker on a
   router of our own, both hammering keys inside the range about to
   move; MIGRATE that hot range from member 0 to member 1 mid-load; poll
   TOPOLOGY until the flip publishes the new epoch; write the
   router-merged fleet STATS (both members + our local registry) for
   json_check and assert the migration and redirect counters are in it;
   SIGKILL the old owner; then verify through a fresh router — seeded
   only at the survivor — that every PUT acknowledged before the flip is
   readable, i.e. zero acknowledged-write loss across the migration and
   the old owner's death.

   Usage: bwt_cluster_smoke STATS_JSON_OUT *)

let die fmt =
  Printf.ksprintf
    (fun m -> prerr_endline ("bwt_cluster_smoke: " ^ m); exit 1)
    fmt

let say fmt = Printf.ksprintf (fun m ->
    Printf.printf "bwt_cluster_smoke: %s\n%!" m) fmt

(* clear of the loadgen's 0..keys-1 range, inside the migrated range *)
let key_base = 1_000_000
let mig_hi = 2_000_000

(* Cluster members need each other's addresses before any of them binds,
   so --port 0 is not an option: reserve an ephemeral port by binding
   and releasing it, then hand it out explicitly. *)
let reserve_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> die "reserved socket is not INET"
  in
  Unix.close s;
  port

type boot = { b_pid : int; b_out : in_channel }

(* Spawn a cluster member on its assigned port; read stdout until the
   serving banner proves it is listening. *)
let start_server name args =
  let out_r, out_w = Unix.pipe () in
  let argv = Array.of_list ("./bwt_server.exe" :: args) in
  let pid =
    Unix.create_process "./bwt_server.exe" argv Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let out = Unix.in_channel_of_descr out_r in
  let seen = ref false in
  (try
     while not !seen do
       let line = input_line out in
       print_endline line;
       let has_prefix p =
         String.length line >= String.length p
         && String.sub line 0 (String.length p) = p
       in
       if has_prefix "bwt_server: serving" then seen := true
     done
   with End_of_file -> die "%s exited before its serving banner" name);
  { b_pid = pid; b_out = out }

let reap name b ~expect_clean =
  (try
     while true do
       print_endline (input_line b.b_out)
     done
   with End_of_file -> ());
  close_in_noerr b.b_out;
  match Unix.waitpid [] b.b_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, (Unix.WEXITED _ | Unix.WSIGNALED _) when not expect_clean -> ()
  | _, Unix.WEXITED c -> die "%s exited with code %d" name c
  | _, Unix.WSIGNALED s -> die "%s killed by signal %d" name s
  | _, Unix.WSTOPPED s -> die "%s stopped by signal %d" name s

let contains json needle =
  let nl = String.length needle and jl = String.length json in
  let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
  scan 0

let () =
  let out_file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ -> (prerr_endline "usage: bwt_cluster_smoke STATS_JSON_OUT"; exit 2)
  in
  (* hard backstop: a hung member must fail CI, not wedge it *)
  ignore (Unix.alarm 240);

  let p0 = reserve_port () in
  let p1 = reserve_port () in
  let peers = Printf.sprintf "127.0.0.1:%d,127.0.0.1:%d" p0 p1 in
  let member self port =
    start_server
      (Printf.sprintf "member%d" self)
      [
        "--port"; string_of_int port; "--workers"; "2";
        "--cluster-self"; string_of_int self; "--cluster-peers"; peers;
      ]
  in
  let m0 = member 0 p0 in
  let m1 = member 1 p1 in

  (* background mixed load through the router, all of it inside the
     range about to move (keys 0..7999 live in member 0's first range
     under the epoch-1 table) *)
  let lg =
    Unix.create_process "./bwt_loadgen.exe"
      [|
        "./bwt_loadgen.exe"; "--cluster"; peers;
        "--clients"; "2"; "--mix"; "a";
        "--keys"; "8000"; "--ops"; "5000000"; "--batch"; "8";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in

  let seeds = [ ("127.0.0.1", p0); ("127.0.0.1", p1) ] in
  let reg = Bw_obs.create ~stripes:2 () in
  let obs = Bw_obs.To reg in

  (* synchronous acknowledged-write tracker: key_base+i -> 3*(key_base+i),
     routed, racing the migration; every PUT acknowledged before the
     flip must be readable on the new owner afterwards *)
  let acked = Atomic.make 0 and stop_acker = Atomic.make false in
  let acker =
    Domain.spawn (fun () ->
        let r = Bw_router.connect ~obs ~tid:1 ~seeds () in
        (try
           let i = ref 0 in
           while not (Atomic.get stop_acker) do
             ignore
               (Bw_router.Int_key.put r (key_base + !i) (3 * (key_base + !i))
                 : bool);
             Atomic.set acked (!i + 1);
             incr i
           done
         with Bw_router.Unroutable _ | Bw_client.Server_closed
            | Unix.Unix_error _ -> ());
        Bw_router.close r)
  in

  Unix.sleepf 1.5;

  (* MIGRATE the hot range [0, mig_hi) — loadgen keys and acker keys
     both inside — from member 0 to member 1, mid-load *)
  let admin = Bw_client.connect ~port:p0 () in
  let lo = Bw_util.Key_codec.of_int 0
  and hi = Some (Bw_util.Key_codec.of_int mig_hi) in
  if not (Bw_client.migrate admin ~lo ~hi ~dst:1) then
    die "MIGRATE was not admitted";
  say "migration of [0, %d) -> member 1 admitted" mig_hi;

  (* poll TOPOLOGY on the source until the flip publishes epoch 2 *)
  let deadline = Unix.gettimeofday () +. 120.0 in
  let rec wait_flip () =
    let tbl = Bw_cluster.Table.decode (Bw_client.topology admin) in
    if Bw_cluster.Table.epoch tbl > 1L then tbl
    else if Unix.gettimeofday () > deadline then
      die "migration did not flip within its deadline"
    else (Unix.sleepf 0.05; wait_flip ())
  in
  let flipped = wait_flip () in
  say "flipped: %s" (Bw_cluster.Table.to_string flipped);

  Atomic.set stop_acker true;
  Domain.join acker;
  let acked = Atomic.get acked in
  if acked < 100 then die "only %d PUTs acknowledged around the flip" acked;
  say "%d acknowledged PUTs raced the migration" acked;

  (* merged fleet STATS while both members are still up: both nodes'
     registries plus our local router registry, one json_check-valid
     document carrying the migration and redirect counters *)
  let stats =
    let r = Bw_router.connect ~obs ~tid:0 ~seeds () in
    let s =
      Bw_router.fleet_stats_json
        ~extra:
          [ ("smoke", Bw_obs.snapshot_to_string (Bw_obs.snapshot reg)) ]
        r
    in
    Bw_router.close r;
    s
  in
  List.iter
    (fun needle ->
      if not (contains stats needle) then
        die "%s missing from the merged fleet STATS" needle)
    [
      "\"migrations\"";
      "\"mig_items_copied\"";
      "\"mig_ops_replayed\"";
      "\"wrongshard_replies\"";
      "\"router_redirects\"";
      "\"cluster_epoch\"";
    ];
  let oc = open_out out_file in
  output_string oc stats;
  output_char oc '\n';
  close_out oc;

  (* the old owner dies; the moved range must be whole on the new one *)
  (match Unix.waitpid [ Unix.WNOHANG ] lg with
  | 0, _ -> ()
  | _ -> die "loadgen finished before the kill; raise --ops");
  Unix.kill m0.b_pid Sys.sigkill;
  say "old owner SIGKILLed after the flip";

  let verify = Bw_router.connect ~seeds:[ ("127.0.0.1", p1) ] () in
  for i = 0 to acked - 1 do
    let k = key_base + i in
    match Bw_router.Int_key.get verify k with
    | Some v when v = 3 * k -> ()
    | Some v -> die "key %d has value %d, expected %d" k v (3 * k)
    | None -> die "acknowledged key %d lost across the migration" k
  done;
  (* and the survivor owns it for writes too *)
  ignore (Bw_router.Int_key.put verify (key_base - 1) 42 : bool);
  if Bw_router.Int_key.get verify (key_base - 1) <> Some 42 then
    die "write to the new owner did not stick";
  Bw_router.close verify;
  Bw_client.close admin;
  say "all %d acknowledged PUTs survived on the new owner" acked;

  Unix.kill lg Sys.sigkill;
  ignore (Unix.waitpid [] lg);
  reap "member0" m0 ~expect_clean:false;
  Unix.kill m1.b_pid Sys.sigterm;
  reap "member1" m1 ~expect_clean:true;
  say "ok (%d acked writes survived, stats in %s)" acked out_file
