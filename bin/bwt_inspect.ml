(* Structural inspector: load a workload into an OpenBw-Tree (or the
   baseline Bw-Tree) and report Table 2-style statistics in depth —
   delta-chain and node-occupancy histograms, operation counters,
   mapping-table growth, memory — plus an optional full physical dump.

   Examples:
     dune exec bin/bwt_inspect.exe -- --keys 100000 --keyspace rand
     dune exec bin/bwt_inspect.exe -- --baseline --threads 8 --keyspace hc
     dune exec bin/bwt_inspect.exe -- --keys 200 --dump *)

module Tree = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module W = Workload
module H = Bw_util.Histogram

let () =
  let keys = ref 100_000
  and threads = ref 1
  and keyspace = ref "rand"
  and baseline = ref false
  and dump = ref false in
  let args =
    [
      ("--keys", Arg.Set_int keys, "N  keys to load (default 100000)");
      ("--threads", Arg.Set_int threads, "N  loader domains (default 1)");
      ( "--keyspace",
        Arg.Set_string keyspace,
        "S  mono | rand | hc (default rand)" );
      ("--baseline", Arg.Set baseline, "   use the baseline Bw-Tree config");
      ("--dump", Arg.Set dump, "   print every logical node and chain");
    ]
  in
  Arg.parse args (fun _ -> ()) "bwt_inspect [options]";
  let config =
    if !baseline then Bwtree.microsoft_config else Bwtree.default_config
  in
  let t = Tree.create ~config () in
  Tree.start_gc_thread t ();
  let nthreads = max 1 !threads in
  let spawn f =
    let ds = Array.init nthreads (fun tid -> Domain.spawn (fun () -> f tid)) in
    Array.iter Domain.join ds
  in
  (match !keyspace with
  | "hc" ->
      let hc = W.Hc.create ~nthreads in
      let per = !keys / nthreads in
      spawn (fun tid ->
          for i = 1 to per do
            ignore (Tree.insert t ~tid (W.Hc.next hc ~tid) i)
          done;
          Tree.quiesce t ~tid)
  | ks ->
      let conv =
        match ks with
        | "mono" -> W.Keys.mono_int
        | "rand" -> W.Keys.rand_int
        | other ->
            Printf.eprintf "unknown keyspace %s\n" other;
            exit 1
      in
      let n = !keys in
      spawn (fun tid ->
          let i = ref tid in
          while !i < n do
            ignore (Tree.insert t ~tid (conv !i) !i);
            i := !i + nthreads
          done;
          Tree.quiesce t ~tid));
  Tree.stop_gc_thread t;

  Printf.printf "configuration: %s | %d keys (%s) | %d loader threads\n\n"
    (if !baseline then "baseline Bw-Tree" else "OpenBw-Tree")
    !keys !keyspace nthreads;

  let ss = Tree.structure_stats t in
  Printf.printf
    "height %d | %d inner + %d leaf logical nodes\n\
     IDCL %.2f | LDCL %.2f | INS %.2f | LNS %.2f | IPU %.1f%% | LPU %.1f%%\n\n"
    ss.depth ss.inner_nodes ss.leaf_nodes ss.avg_inner_chain ss.avg_leaf_chain
    ss.avg_inner_size ss.avg_leaf_size
    (100. *. ss.inner_prealloc_util)
    (100. *. ss.leaf_prealloc_util);

  let leaf_chain = H.create ()
  and leaf_size = H.create ()
  and inner_size = H.create () in
  Tree.iter_nodes t (fun ~leaf ~chain ~size ->
      if leaf then begin
        H.add leaf_chain chain;
        H.add leaf_size size
      end
      else H.add inner_size size);
  Format.printf "leaf delta-chain lengths (p50=%d p99=%d max=%d):@.%a@."
    (H.percentile leaf_chain 50.0)
    (H.percentile leaf_chain 99.0)
    (H.max_value leaf_chain) (H.pp ~width:36) leaf_chain;
  Format.printf "leaf occupancy (items; p50=%d max=%d):@.%a@."
    (H.percentile leaf_size 50.0)
    (H.max_value leaf_size) (H.pp ~width:36) leaf_size;
  Format.printf "inner fan-out:@.%a@." (H.pp ~width:36) inner_size;

  let os = Tree.op_stats t in
  Printf.printf
    "ops: %d inserts | %d splits | %d merges | %d consolidations | %d \
     failed CaS | %d restarts | %d SMO helps\n"
    os.inserts os.splits os.merges os.consolidations os.failed_cas os.restarts
    os.smo_helps;
  Format.printf "%a@." Bwtree.pp_mapping_stats (Tree.mapping_table_stats t);
  Printf.printf "memory: %.2f MB live\n"
    (float_of_int (Tree.memory_words t * 8) /. 1024. /. 1024.);
  let e = Epoch.stats (Tree.epoch t) in
  Printf.printf "epochs: %d entered | %d retired | %d reclaimed | %d advanced\n"
    e.enters e.retired e.reclaimed e.epochs_advanced;
  if !dump then begin
    print_newline ();
    Tree.dump t Format.std_formatter
  end
