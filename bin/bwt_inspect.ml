(* Structural inspector: load a workload into an OpenBw-Tree (or the
   baseline Bw-Tree) and report Table 2-style statistics in depth —
   delta-chain and node-occupancy histograms, operation counters,
   mapping-table growth, memory — plus an optional full physical dump.

   With --shards N the load goes through the lib/shard partition into a
   forest of N trees; each shard reports its own summary (key count,
   shape, mapping table, memory) and the histograms/counters below them
   are forest-wide totals.

   With --data-dir the inspector skips the synthetic load and instead
   opens a durable store read-only (safe against a live server owning
   the same directory): per shard it reports what recovery found —
   generation, snapshot pages and items, WAL records and replayed ops,
   torn bytes truncated — plus the recovered tree's shape and memory.

   Examples:
     dune exec bin/bwt_inspect.exe -- --keys 100000 --keyspace rand
     dune exec bin/bwt_inspect.exe -- --baseline --threads 8 --keyspace hc
     dune exec bin/bwt_inspect.exe -- --keys 200 --dump
     dune exec bin/bwt_inspect.exe -- --shards 4 --keyspace rand
     dune exec bin/bwt_inspect.exe -- --data-dir /var/tmp/bwt --shards 4 *)

module Tree = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module Tree_str = Bwtree.Make (Index_iface.String_key) (Index_iface.Int_value)
module Store_int = Pagestore.Store.Make (Pagestore.Codec.Int) (Tree)
module Store_str = Pagestore.Store.Make (Pagestore.Codec.String) (Tree_str)
module W = Workload
module H = Bw_util.Histogram

(* --data-dir mode: read-only recovery of every shard, then a per-shard
   report. Mirrors the server's layout: one store at the root for a
   single shard, [shard-<i>] subdirectories for a forest. *)
let inspect_durable ~dir ~shards ~key_type ~config ~dump =
  if not (Sys.file_exists dir) then begin
    Printf.eprintf "bwt_inspect: no such directory %s\n" dir;
    exit 1
  end;
  if shards = 1 && Sys.file_exists (Filename.concat dir "shard-00") then
    Printf.printf
      "note: %s holds shard subdirectories; pass --shards N to read them\n\n"
      dir;
  let sdirs =
    if shards = 1 then [| dir |]
    else
      Array.init shards (fun i ->
          Filename.concat dir (Printf.sprintf "shard-%02d" i))
  in
  let label i = if shards = 1 then "store" else Printf.sprintf "shard %d" i in
  let shape ~i ~keys ~depth ~inner ~leaves ~ldcl ~mem_words =
    Printf.printf
      "%s: %8d keys | height %d | %4d inner + %6d leaf | LDCL %.2f | %7.2f \
       MB\n"
      (label i) keys depth inner leaves ldcl
      (float_of_int (mem_words * 8) /. 1024. /. 1024.)
  in
  let total_keys = ref 0 and total_mem = ref 0 and missing = ref 0 in
  (match key_type with
  | "int" ->
      Array.iteri
        (fun i sdir ->
          match Store_int.inspect_dir ~config ~dir:sdir () with
          | None ->
              incr missing;
              Printf.printf "%s: nothing loadable in %s\n" (label i) sdir
          | Some (tree, rs) ->
              Format.printf "%s: recovered %a@." (label i)
                Pagestore.Store.pp_stats rs;
              let ss = Tree.structure_stats tree in
              shape ~i ~keys:(Tree.cardinal tree) ~depth:ss.depth
                ~inner:ss.inner_nodes ~leaves:ss.leaf_nodes
                ~ldcl:ss.avg_leaf_chain ~mem_words:(Tree.memory_words tree);
              total_keys := !total_keys + Tree.cardinal tree;
              total_mem := !total_mem + Tree.memory_words tree;
              if dump then Tree.dump tree Format.std_formatter)
        sdirs
  | "str" ->
      Array.iteri
        (fun i sdir ->
          match Store_str.inspect_dir ~config ~dir:sdir () with
          | None ->
              incr missing;
              Printf.printf "%s: nothing loadable in %s\n" (label i) sdir
          | Some (tree, rs) ->
              Format.printf "%s: recovered %a@." (label i)
                Pagestore.Store.pp_stats rs;
              let ss = Tree_str.structure_stats tree in
              shape ~i
                ~keys:(Tree_str.cardinal tree)
                ~depth:ss.depth ~inner:ss.inner_nodes ~leaves:ss.leaf_nodes
                ~ldcl:ss.avg_leaf_chain
                ~mem_words:(Tree_str.memory_words tree);
              total_keys := !total_keys + Tree_str.cardinal tree;
              total_mem := !total_mem + Tree_str.memory_words tree;
              if dump then Tree_str.dump tree Format.std_formatter)
        sdirs
  | s ->
      Printf.eprintf "bwt_inspect: unknown key type %S (try: int, str)\n" s;
      exit 1);
  if shards > 1 then
    Printf.printf "forest totals: %d keys | %.2f MB live\n" !total_keys
      (float_of_int (!total_mem * 8) /. 1024. /. 1024.);
  if !missing > 0 then exit 1

(* --cluster mode: join a running fleet through a seed endpoint and
   report the live partition table, a one-line summary per member, and
   the merged fleet counters/gauges. *)
let inspect_cluster seeds_arg =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p when p > 0 && p < 65536 ->
            ((if host = "" then "127.0.0.1" else host), p)
        | _ ->
            Printf.eprintf "bwt_inspect: bad port in %S\n" s;
            exit 1)
    | None ->
        Printf.eprintf "bwt_inspect: expected HOST:PORT, got %S\n" s;
        exit 1
  in
  let seeds = List.map parse (String.split_on_char ',' seeds_arg) in
  let r =
    try Bw_router.connect ~seeds ()
    with Bw_router.Unroutable m ->
      Printf.eprintf "bwt_inspect: %s\n" m;
      exit 1
  in
  let module J = Bw_obs.Json in
  print_endline (Bw_cluster.Table.to_string (Bw_router.table r));
  List.iter
    (fun (i, s) ->
      match J.parse s with
      | Error _ -> Printf.printf "node %d: unparseable STATS\n" i
      | Ok v ->
          let num section name =
            match Option.bind (J.member section v) (J.member name) with
            | Some (J.Int n) -> n
            | _ -> 0
          in
          Printf.printf
            "node %d: epoch %d | %d requests | %d wrongshard replies | %d \
             migrations out (%d items, %d replayed)\n"
            i
            (num "gauges" "cluster_epoch")
            (num "counters" "net_requests")
            (num "counters" "wrongshard_replies")
            (num "counters" "migrations")
            (num "counters" "mig_items_copied")
            (num "counters" "mig_ops_replayed"))
    (Bw_router.node_stats r);
  (* merged fleet totals (skip the node<i>_ per-node breakdown) *)
  (match J.parse (Bw_router.fleet_stats_json r) with
  | Error m -> Printf.printf "fleet: unparseable merged snapshot: %s\n" m
  | Ok v ->
      let print_section section =
        match J.member section v with
        | Some (J.Obj kvs) ->
            Printf.printf "fleet %s:\n" section;
            List.iter
              (fun (k, n) ->
                match n with
                | J.Int i
                  when i <> 0
                       && not
                            (String.length k > 4 && String.sub k 0 4 = "node")
                  ->
                    Printf.printf "  %-28s %d\n" k i
                | _ -> ())
              kvs
        | _ -> ()
      in
      print_section "counters";
      print_section "gauges");
  Bw_router.close r

let () =
  let keys = ref 100_000
  and threads = ref 1
  and keyspace = ref "rand"
  and shards = ref 1
  and baseline = ref false
  and data_dir = ref ""
  and cluster = ref ""
  and key_type = ref "int"
  and dump = ref false in
  let args =
    [
      ("--keys", Arg.Set_int keys, "N  keys to load (default 100000)");
      ("--threads", Arg.Set_int threads, "N  loader domains (default 1)");
      ( "--keyspace",
        Arg.Set_string keyspace,
        "S  mono | rand | hc (default rand)" );
      ( "--shards",
        Arg.Set_int shards,
        "N  range-partition the load over N trees (default 1)" );
      ("--baseline", Arg.Set baseline, "   use the baseline Bw-Tree config");
      ( "--data-dir",
        Arg.Set_string data_dir,
        "DIR  open a durable store read-only and report recovery per shard \
         (no load)" );
      ( "--cluster",
        Arg.Set_string cluster,
        "SEEDS  comma-separated HOST:PORT endpoints of a running cluster: \
         report its partition table, per-node summaries and merged fleet \
         stats (no load)" );
      ( "--key-type",
        Arg.Set_string key_type,
        "T  with --data-dir: int | str (default int)" );
      ("--dump", Arg.Set dump, "   print every logical node and chain");
    ]
  in
  Arg.parse args (fun _ -> ()) "bwt_inspect [options]";
  if !shards < 1 then begin
    Printf.eprintf "bwt_inspect: --shards must be >= 1\n";
    exit 1
  end;
  let config =
    if !baseline then Bwtree.microsoft_config else Bwtree.default_config
  in
  if !cluster <> "" then begin
    inspect_cluster !cluster;
    exit 0
  end;
  if !data_dir <> "" then begin
    inspect_durable ~dir:!data_dir ~shards:!shards ~key_type:!key_type
      ~config ~dump:!dump;
    exit 0
  end;
  let n_shards = !shards in
  let trees = Array.init n_shards (fun _ -> Tree.create ~config ()) in
  (* mono keys are dense in [0, keys); rand/hc scramble over the whole
     non-negative range — partition what the load will actually cover
     so the shard summaries show the balance *)
  let part =
    match !keyspace with
    | "mono" -> Bw_shard.Part.make_int ~lo:0 ~hi:(max 1 (!keys - 1)) n_shards
    | _ -> Bw_shard.Part.make_int ~lo:0 n_shards
  in
  let tree_of k = trees.(Bw_shard.Part.shard_of_int part k) in
  Array.iter (fun t -> Tree.start_gc_thread t ()) trees;
  let nthreads = max 1 !threads in
  let spawn f =
    let ds = Array.init nthreads (fun tid -> Domain.spawn (fun () -> f tid)) in
    Array.iter Domain.join ds
  in
  let quiesce_all ~tid = Array.iter (fun t -> Tree.quiesce t ~tid) trees in
  (match !keyspace with
  | "hc" ->
      let hc = W.Hc.create ~nthreads in
      let per = !keys / nthreads in
      spawn (fun tid ->
          for i = 1 to per do
            let k = W.Hc.next hc ~tid in
            ignore (Tree.insert (tree_of k) ~tid k i)
          done;
          quiesce_all ~tid)
  | ks ->
      let conv =
        match ks with
        | "mono" -> W.Keys.mono_int
        | "rand" -> W.Keys.rand_int
        | other ->
            Printf.eprintf "unknown keyspace %s\n" other;
            exit 1
      in
      let n = !keys in
      spawn (fun tid ->
          let i = ref tid in
          while !i < n do
            let k = conv !i in
            ignore (Tree.insert (tree_of k) ~tid k !i);
            i := !i + nthreads
          done;
          quiesce_all ~tid));
  Array.iter Tree.stop_gc_thread trees;

  Printf.printf "configuration: %s | %d keys (%s) | %d loader threads%s\n\n"
    (if !baseline then "baseline Bw-Tree" else "OpenBw-Tree")
    !keys !keyspace nthreads
    (if n_shards > 1 then Printf.sprintf " | %d shards" n_shards else "");

  if n_shards = 1 then begin
    let ss = Tree.structure_stats trees.(0) in
    Printf.printf
      "height %d | %d inner + %d leaf logical nodes\n\
       IDCL %.2f | LDCL %.2f | INS %.2f | LNS %.2f | IPU %.1f%% | LPU %.1f%%\n\n"
      ss.depth ss.inner_nodes ss.leaf_nodes ss.avg_inner_chain
      ss.avg_leaf_chain ss.avg_inner_size ss.avg_leaf_size
      (100. *. ss.inner_prealloc_util)
      (100. *. ss.leaf_prealloc_util)
  end
  else begin
    Array.iteri
      (fun i t ->
        let ss = Tree.structure_stats t in
        Printf.printf
          "shard %d: %8d keys | height %d | %4d inner + %6d leaf | LDCL \
           %.2f | %7.2f MB\n"
          i (Tree.cardinal t) ss.depth ss.inner_nodes ss.leaf_nodes
          ss.avg_leaf_chain
          (float_of_int (Tree.memory_words t * 8) /. 1024. /. 1024.);
        Format.printf "         %a@." Bwtree.pp_mapping_stats
          (Tree.mapping_table_stats t);
        Format.printf "         %a@." Bwtree.pp_leaf_cache_stats
          (Tree.leaf_cache_stats t))
      trees;
    print_newline ();
    Printf.printf "forest totals:\n"
  end;

  let leaf_chain = H.create ()
  and leaf_size = H.create ()
  and inner_size = H.create () in
  Array.iter
    (fun t ->
      Tree.iter_nodes t (fun ~leaf ~chain ~size ->
          if leaf then begin
            H.add leaf_chain chain;
            H.add leaf_size size
          end
          else H.add inner_size size))
    trees;
  Format.printf "leaf delta-chain lengths (p50=%d p99=%d max=%d):@.%a@."
    (H.percentile leaf_chain 50.0)
    (H.percentile leaf_chain 99.0)
    (H.max_value leaf_chain) (H.pp ~width:36) leaf_chain;
  Format.printf "leaf occupancy (items; p50=%d max=%d):@.%a@."
    (H.percentile leaf_size 50.0)
    (H.max_value leaf_size) (H.pp ~width:36) leaf_size;
  Format.printf "inner fan-out:@.%a@." (H.pp ~width:36) inner_size;

  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 trees in
  Printf.printf
    "ops: %d inserts | %d splits | %d merges | %d consolidations | %d \
     failed CaS | %d restarts | %d SMO helps\n"
    (sum (fun t -> (Tree.op_stats t).inserts))
    (sum (fun t -> (Tree.op_stats t).splits))
    (sum (fun t -> (Tree.op_stats t).merges))
    (sum (fun t -> (Tree.op_stats t).consolidations))
    (sum (fun t -> (Tree.op_stats t).failed_cas))
    (sum (fun t -> (Tree.op_stats t).restarts))
    (sum (fun t -> (Tree.op_stats t).smo_helps));
  if n_shards = 1 then begin
    Format.printf "%a@." Bwtree.pp_mapping_stats
      (Tree.mapping_table_stats trees.(0));
    Format.printf "%a@." Bwtree.pp_leaf_cache_stats
      (Tree.leaf_cache_stats trees.(0))
  end;
  Printf.printf "memory: %.2f MB live\n"
    (float_of_int (sum Tree.memory_words * 8) /. 1024. /. 1024.);
  let esum f =
    Array.fold_left (fun acc t -> acc + f (Epoch.stats (Tree.epoch t))) 0 trees
  in
  Printf.printf "epochs: %d entered | %d retired | %d reclaimed | %d advanced\n"
    (esum (fun e -> e.Epoch.enters))
    (esum (fun e -> e.Epoch.retired))
    (esum (fun e -> e.Epoch.reclaimed))
    (esum (fun e -> e.Epoch.epochs_advanced));
  if !dump then
    Array.iteri
      (fun i t ->
        print_newline ();
        if n_shards > 1 then Printf.printf "-- shard %d --\n" i;
        Tree.dump t Format.std_formatter)
      trees
