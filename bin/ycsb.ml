(* YCSB-style index benchmark CLI — the paper's "testing framework" (§5)
   as a standalone tool.

   Examples:
     dune exec bin/ycsb.exe -- --index openbw --workload a --threads 8
     dune exec bin/ycsb.exe -- --index btree --workload e --keyspace email
     dune exec bin/ycsb.exe -- --index bw --workload insert --keys 1000000
     dune exec bin/ycsb.exe -- --list *)

open Cmdliner
module W = Workload
open Harness

let index_names =
  [ "bw"; "openbw"; "skiplist"; "skiplist-inline"; "masstree"; "btree"; "art" ]

(* The Bw-Tree drivers take the sink directly (the tree instruments its
   own operations, adding restart and chain-depth series); competitor
   drivers are wrapped so only operation latency is recorded. *)
let mk_int_driver name (obs : Bw_obs.sink) : int Runner.driver =
  match name with
  | "bw" ->
      Drivers.bwtree_driver_int ~name:"Bw-Tree"
        ~config:Bwtree.microsoft_config ~obs ()
  | "openbw" -> Drivers.bwtree_driver_int ~obs ()
  | "skiplist" -> Runner.instrument obs (Drivers.skiplist_driver_int ())
  | "skiplist-inline" ->
      Runner.instrument obs (Drivers.skiplist_driver_int ~policy:Skiplist.Inline ())
  | "masstree" -> Runner.instrument obs (Drivers.masstree_driver_int ())
  | "btree" -> Runner.instrument obs (Drivers.btree_driver_int ())
  | "art" -> Runner.instrument obs (Drivers.art_driver_int ())
  | _ -> invalid_arg "unknown index"

let mk_str_driver name (obs : Bw_obs.sink) : string Runner.driver =
  match name with
  | "bw" ->
      Drivers.bwtree_driver_str ~name:"Bw-Tree"
        ~config:Bwtree.microsoft_config ~obs ()
  | "openbw" -> Drivers.bwtree_driver_str ~obs ()
  | "skiplist" | "skiplist-inline" ->
      Runner.instrument obs (Drivers.skiplist_driver_str ())
  | "masstree" -> Runner.instrument obs (Drivers.masstree_driver_str ())
  | "btree" -> Runner.instrument obs (Drivers.btree_driver_str ())
  | "art" -> Runner.instrument obs (Drivers.art_driver_str ())
  | _ -> invalid_arg "unknown index"

let emit_metrics obs ~text ~json_file =
  match obs with
  | Bw_obs.Null -> ()
  | Bw_obs.To reg ->
      let sn = Bw_obs.snapshot reg in
      if text then Format.printf "%a@." Bw_obs.pp_snapshot sn;
      Option.iter
        (fun file ->
          let oc = open_out file in
          output_string oc (Bw_obs.snapshot_to_string sn);
          output_char oc '\n';
          close_out oc;
          Printf.printf "metrics: wrote %s\n%!" file)
        json_file

let run_generic (type k) (driver : k Runner.driver) ~(conv : int -> k) ~space
    ~mix ~threads ~cfg ~show_memory ~obs ~metrics ~metrics_json =
  Printf.printf "index: %s | workload: %s | keys: %s | threads: %d\n%!"
    driver.name
    (Format.asprintf "%a" W.pp_mix mix)
    (Format.asprintf "%a" W.pp_key_space space)
    threads;
  let trace = W.load_trace cfg space conv in
  let load = Runner.load driver ~nthreads:threads trace in
  Printf.printf "load : %8d keys in %6.2fs = %7.3f Mops/s\n%!" load.ops
    load.seconds load.mops;
  (match mix with
  | W.Insert_only -> ()
  | _ ->
      let traces =
        Array.init threads (fun tid ->
            W.ops_trace cfg space mix ~tid ~nthreads:threads conv)
      in
      let r = Runner.run driver traces in
      Printf.printf "run  : %8d ops  in %6.2fs = %7.3f Mops/s\n%!" r.ops
        r.seconds r.mops);
  driver.stop_aux ();
  if show_memory then
    Printf.printf "memory: %.2f MB live heap\n%!"
      (float_of_int (driver.memory_words () * 8) /. 1024.0 /. 1024.0);
  emit_metrics obs ~text:metrics ~json_file:metrics_json

let main index workload keyspace keys ops threads theta show_memory metrics
    metrics_json list_ =
  if list_ then begin
    Printf.printf "indexes: %s\nworkloads: insert | c | a | e\nkeyspaces: \
                   mono | rand | email | hc\n"
      (String.concat " " index_names);
    exit 0
  end;
  let usage () =
    Printf.eprintf
      "usage: ycsb [--index INDEX] [--mix insert|c|a|e] [--keyspace \
       mono|rand|email|hc]\n\
      \            [--keys N>=1] [--ops N>=0] [--threads N>=1] [--theta \
       0<F<1]\n\
       run 'ycsb --help' for details, 'ycsb --list' for indexes\n";
    exit 2
  in
  let mix =
    match W.mix_of_string workload with
    | Some m -> m
    | None ->
        Printf.eprintf "ycsb: unknown --mix %S (try: insert, c, a, e)\n"
          workload;
        usage ()
  in
  let space =
    match keyspace with
    | "mono" -> W.Mono_int
    | "rand" -> W.Rand_int
    | "email" -> W.Email
    | "hc" -> W.Mono_hc
    | s ->
        Printf.eprintf "ycsb: unknown --keyspace %S (try: mono, rand, email, \
                        hc)\n" s;
        usage ()
  in
  if not (List.mem index index_names) then begin
    Printf.eprintf "ycsb: unknown --index %S (try --list)\n" index;
    usage ()
  end;
  if keys < 1 then begin
    Printf.eprintf "ycsb: --keys must be >= 1 (got %d)\n" keys;
    usage ()
  end;
  if ops < 0 then begin
    Printf.eprintf "ycsb: --ops must be >= 0 (got %d)\n" ops;
    usage ()
  end;
  if threads < 1 then begin
    Printf.eprintf "ycsb: --threads must be >= 1 (got %d)\n" threads;
    usage ()
  end;
  if not (theta > 0.0 && theta < 1.0) then begin
    Printf.eprintf "ycsb: --theta must be in (0,1) (got %g)\n" theta;
    usage ()
  end;
  let cfg = { W.default_config with num_keys = keys; num_ops = ops; theta } in
  let obs =
    if metrics || metrics_json <> None then
      Bw_obs.To (Bw_obs.create ~stripes:(threads + 1) ())
    else Bw_obs.Null
  in
  match space with
  | W.Email ->
      run_generic (mk_str_driver index obs) ~conv:W.email_key_of ~space ~mix
        ~threads ~cfg ~show_memory ~obs ~metrics ~metrics_json
  | _ ->
      run_generic (mk_int_driver index obs) ~conv:(W.int_key_of space) ~space
        ~mix ~threads ~cfg ~show_memory ~obs ~metrics ~metrics_json

let cmd =
  let index =
    Arg.(value & opt string "openbw"
         & info [ "i"; "index" ] ~docv:"INDEX" ~doc:"Index to benchmark.")
  in
  let workload =
    Arg.(value & opt string "a"
         & info [ "w"; "workload"; "mix" ] ~docv:"MIX"
             ~doc:"Workload mix: insert, c (read-only), a (read/update), e \
                   (scan/insert).")
  in
  let keyspace =
    Arg.(value & opt string "rand"
         & info [ "k"; "keyspace" ] ~docv:"SPACE"
             ~doc:"Key space: mono, rand, email, hc.")
  in
  let keys =
    Arg.(value & opt int 100_000
         & info [ "keys" ] ~docv:"N" ~doc:"Keys loaded before measuring.")
  in
  let ops =
    Arg.(value & opt int 200_000
         & info [ "ops" ] ~docv:"N" ~doc:"Operations in the measured phase.")
  in
  let threads =
    Arg.(value & opt int 1
         & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker threads (domains).")
  in
  let theta =
    Arg.(value & opt float 0.99
         & info [ "theta" ] ~docv:"F" ~doc:"Zipfian skew in (0,1).")
  in
  let memory =
    Arg.(value & flag
         & info [ "m"; "memory" ] ~doc:"Report live-heap memory afterwards.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect latency/structural metrics and print a snapshot.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Collect metrics and write a JSON snapshot to $(docv).")
  in
  let list_ =
    Arg.(value & flag & info [ "list" ] ~doc:"List indexes and exit.")
  in
  let term =
    Term.(
      const main $ index $ workload $ keyspace $ keys $ ops $ threads $ theta
      $ memory $ metrics $ metrics_json $ list_)
  in
  Cmd.v
    (Cmd.info "ycsb" ~doc:"YCSB-style microbenchmarks for in-memory indexes"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the workloads of 'Building a Bw-Tree Takes More Than Just \
              Buzz Words' (SIGMOD 2018) against any of the six in-memory \
              index structures implemented in this repository.";
         ])
    term

let () = exit (Cmd.eval cmd)
