(* YCSB-style index benchmark CLI — the paper's "testing framework" (§5)
   as a standalone tool.

   Examples:
     dune exec bin/ycsb.exe -- --index openbw --workload a --threads 8
     dune exec bin/ycsb.exe -- --index btree --workload e --keyspace email
     dune exec bin/ycsb.exe -- --index bw --workload insert --keys 1000000
     dune exec bin/ycsb.exe -- --list *)

open Cmdliner
module W = Workload
open Harness

let index_names =
  [ "bw"; "openbw"; "skiplist"; "skiplist-inline"; "masstree"; "btree"; "art" ]

(* The Bw-Tree drivers take the sink directly (the tree instruments its
   own operations, adding restart and chain-depth series); competitor
   drivers are wrapped so only operation latency is recorded. *)
let mk_int_driver name (obs : Bw_obs.sink) : int Runner.driver =
  match name with
  | "bw" ->
      Drivers.bwtree_driver_int ~name:"Bw-Tree"
        ~config:Bwtree.microsoft_config ~obs ()
  | "openbw" -> Drivers.bwtree_driver_int ~obs ()
  | "skiplist" -> Runner.instrument obs (Drivers.skiplist_driver_int ())
  | "skiplist-inline" ->
      Runner.instrument obs (Drivers.skiplist_driver_int ~policy:Skiplist.Inline ())
  | "masstree" -> Runner.instrument obs (Drivers.masstree_driver_int ())
  | "btree" -> Runner.instrument obs (Drivers.btree_driver_int ())
  | "art" -> Runner.instrument obs (Drivers.art_driver_int ())
  | _ -> invalid_arg "unknown index"

let mk_str_driver name (obs : Bw_obs.sink) : string Runner.driver =
  match name with
  | "bw" ->
      Drivers.bwtree_driver_str ~name:"Bw-Tree"
        ~config:Bwtree.microsoft_config ~obs ()
  | "openbw" -> Drivers.bwtree_driver_str ~obs ()
  | "skiplist" | "skiplist-inline" ->
      Runner.instrument obs (Drivers.skiplist_driver_str ())
  | "masstree" -> Runner.instrument obs (Drivers.masstree_driver_str ())
  | "btree" -> Runner.instrument obs (Drivers.btree_driver_str ())
  | "art" -> Runner.instrument obs (Drivers.art_driver_str ())
  | _ -> invalid_arg "unknown index"

(* One registry for a single tree; one per shard for a forest. The text
   snapshot and the merged JSON totals are identical either way; a
   sharded run's JSON additionally carries shard<i>_-prefixed series. *)
let emit_metrics ~(regs : Bw_obs.t array) ~text ~json_file =
  if Array.length regs > 0 then begin
    let merged = Bw_obs.snapshot_all (Array.to_list regs) in
    if text then Format.printf "%a@." Bw_obs.pp_snapshot merged;
    Option.iter
      (fun file ->
        let body =
          if Array.length regs = 1 then Bw_obs.snapshot_to_string merged
          else
            let shards =
              Array.to_list
                (Array.mapi
                   (fun i r -> (Printf.sprintf "shard%d" i, Bw_obs.snapshot r))
                   regs)
            in
            Bw_obs.sharded_snapshot_to_string ~shards merged
        in
        let oc = open_out file in
        output_string oc body;
        output_char oc '\n';
        close_out oc;
        Printf.printf "metrics: wrote %s\n%!" file)
      json_file
  end

let run_generic (type k) (driver : k Runner.driver) ~(conv : int -> k) ~space
    ~mix ~threads ~batch ~cfg ~show_memory =
  Printf.printf "index: %s | workload: %s | keys: %s | threads: %d%s\n%!"
    driver.name
    (Format.asprintf "%a" W.pp_mix mix)
    (Format.asprintf "%a" W.pp_key_space space)
    threads
    (if batch > 1 then Printf.sprintf " | batch: %d" batch else "");
  let trace = W.load_trace cfg space conv in
  let load = Runner.load driver ~nthreads:threads trace in
  Printf.printf "load : %8d keys in %6.2fs = %7.3f Mops/s\n%!" load.ops
    load.seconds load.mops;
  (match mix with
  | W.Insert_only -> ()
  | _ ->
      let traces =
        Array.init threads (fun tid ->
            W.ops_trace cfg space mix ~tid ~nthreads:threads conv)
      in
      let r = Runner.run_batched driver ~batch traces in
      Printf.printf "run  : %8d ops  in %6.2fs = %7.3f Mops/s\n%!" r.ops
        r.seconds r.mops);
  driver.stop_aux ();
  if show_memory then
    Printf.printf "memory: %.2f MB live heap\n%!"
      (float_of_int (driver.memory_words () * 8) /. 1024.0 /. 1024.0)

let main index workload keyspace keys ops threads shards batch theta
    leaf_cache data_dir no_fsync show_memory metrics metrics_json list_ =
  if list_ then begin
    Printf.printf "indexes: %s\nworkloads: insert | c | a | e\nkeyspaces: \
                   mono | rand | email | hc\n"
      (String.concat " " index_names);
    exit 0
  end;
  let usage () =
    Printf.eprintf
      "usage: ycsb [--index INDEX] [--mix insert|c|a|e] [--keyspace \
       mono|rand|email|hc]\n\
      \            [--keys N>=1] [--ops N>=0] [--threads N>=1] [--shards \
       N>=1] [--batch N>=1] [--theta 0<F<1]\n\
       run 'ycsb --help' for details, 'ycsb --list' for indexes\n";
    exit 2
  in
  let mix =
    match W.mix_of_string workload with
    | Some m -> m
    | None ->
        Printf.eprintf "ycsb: unknown --mix %S (try: insert, c, a, e)\n"
          workload;
        usage ()
  in
  let space =
    match keyspace with
    | "mono" -> W.Mono_int
    | "rand" -> W.Rand_int
    | "email" -> W.Email
    | "hc" -> W.Mono_hc
    | s ->
        Printf.eprintf "ycsb: unknown --keyspace %S (try: mono, rand, email, \
                        hc)\n" s;
        usage ()
  in
  if not (List.mem index index_names) then begin
    Printf.eprintf "ycsb: unknown --index %S (try --list)\n" index;
    usage ()
  end;
  if keys < 1 then begin
    Printf.eprintf "ycsb: --keys must be >= 1 (got %d)\n" keys;
    usage ()
  end;
  if ops < 0 then begin
    Printf.eprintf "ycsb: --ops must be >= 0 (got %d)\n" ops;
    usage ()
  end;
  if threads < 1 then begin
    Printf.eprintf "ycsb: --threads must be >= 1 (got %d)\n" threads;
    usage ()
  end;
  if shards < 1 then begin
    Printf.eprintf "ycsb: --shards must be >= 1 (got %d)\n" shards;
    usage ()
  end;
  if batch < 1 then begin
    Printf.eprintf "ycsb: --batch must be >= 1 (got %d)\n" batch;
    usage ()
  end;
  if not (theta > 0.0 && theta < 1.0) then begin
    Printf.eprintf "ycsb: --theta must be in (0,1) (got %g)\n" theta;
    usage ()
  end;
  let cfg = { W.default_config with num_keys = keys; num_ops = ops; theta } in
  let regs =
    if metrics || metrics_json <> None then
      Array.init shards (fun _ -> Bw_obs.create ~stripes:(threads + 1) ())
    else [||]
  in
  let obs_of i =
    if Array.length regs = 0 then Bw_obs.Null else Bw_obs.To regs.(i)
  in
  (* --data-dir runs a durable Bw-Tree (recovery on open, group-commit
     WAL while running) so the WAL overhead is measurable against the
     in-memory build at the same --batch; the other indexes have no
     pagestore to write to. *)
  if data_dir <> None && not (List.mem index [ "bw"; "openbw" ]) then begin
    Printf.eprintf "ycsb: --data-dir requires a Bw-Tree index (bw, openbw)\n";
    usage ()
  end;
  (* --leaf-cache overrides the config default (on for openbw, off for
     the baseline); leaving it unset keeps each config's own setting *)
  let bw_config =
    match leaf_cache with
    | None -> if index = "bw" then Some Bwtree.microsoft_config else None
    | Some on ->
        let base =
          if index = "bw" then Bwtree.microsoft_config
          else Bwtree.default_config
        in
        Some { base with Bwtree.leaf_cache = on }
  in
  let fsync = not no_fsync in
  let durable_close = ref (fun () -> ()) in
  (* --shards 1 builds exactly the single driver of previous releases;
     N > 1 routes N instances of the same index through lib/shard *)
  (match space with
  | W.Email ->
      let driver =
        match data_dir with
        | Some dir ->
            let dur =
              if shards = 1 then
                Drivers.durable_bwtree_str ?config:bw_config ~obs:(obs_of 0)
                  ~fsync ~dir ()
              else
                Drivers.durable_bwtree_forest_str ?config:bw_config ~obs_of
                  ~lo:"a" ~hi:"z" ~fsync ~shards ~dir ()
            in
            durable_close := dur.Drivers.dur_close;
            dur.Drivers.dur_driver
        | None ->
            if shards = 1 then mk_str_driver index (obs_of 0)
            else
              (* email keys all start with a lowercase name, so partition
                 the ["a", "z") slice range rather than the full space *)
              let part = Bw_shard.Part.make ~lo:"a" ~hi:"z" shards in
              Bw_shard.route_binary part
                (Array.init shards (fun i -> mk_str_driver index (obs_of i)))
      in
      run_generic driver ~conv:W.email_key_of ~space ~mix ~threads ~batch
        ~cfg ~show_memory
  | _ ->
      let driver =
        match data_dir with
        | Some dir ->
            let dur =
              if shards = 1 then
                Drivers.durable_bwtree_int ?config:bw_config ~obs:(obs_of 0)
                  ~fsync ~dir ()
              else
                Drivers.durable_bwtree_forest_int ?config:bw_config ~obs_of
                  ~lo:0 ~fsync ~shards ~dir ()
            in
            durable_close := dur.Drivers.dur_close;
            dur.Drivers.dur_driver
        | None ->
            if shards = 1 then mk_int_driver index (obs_of 0)
            else
              (* every ycsb keyspace generates non-negative keys, so
                 partition [0, max_int] — rand keys spread evenly *)
              let part = Bw_shard.Part.make_int ~lo:0 shards in
              Bw_shard.route_int part
                (Array.init shards (fun i -> mk_int_driver index (obs_of i)))
      in
      run_generic driver ~conv:(W.int_key_of space) ~space ~mix ~threads
        ~batch ~cfg ~show_memory);
  !durable_close ();
  emit_metrics ~regs ~text:metrics ~json_file:metrics_json

let cmd =
  let index =
    Arg.(value & opt string "openbw"
         & info [ "i"; "index" ] ~docv:"INDEX" ~doc:"Index to benchmark.")
  in
  let workload =
    Arg.(value & opt string "a"
         & info [ "w"; "workload"; "mix" ] ~docv:"MIX"
             ~doc:"Workload mix: insert, c (read-only), a (read/update), e \
                   (scan/insert).")
  in
  let keyspace =
    Arg.(value & opt string "rand"
         & info [ "k"; "keyspace" ] ~docv:"SPACE"
             ~doc:"Key space: mono, rand, email, hc.")
  in
  let keys =
    Arg.(value & opt int 100_000
         & info [ "keys" ] ~docv:"N" ~doc:"Keys loaded before measuring.")
  in
  let ops =
    Arg.(value & opt int 200_000
         & info [ "ops" ] ~docv:"N" ~doc:"Operations in the measured phase.")
  in
  let threads =
    Arg.(value & opt int 1
         & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker threads (domains).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Range-partition the index into $(docv) shards behind \
                   the lib/shard router (1 = plain single index).")
  in
  let batch =
    Arg.(value & opt int 1
         & info [ "b"; "batch" ] ~docv:"N"
             ~doc:"Submit point operations in batches of $(docv) through \
                   the index's batch path (1 = per-op submission).")
  in
  let theta =
    Arg.(value & opt float 0.99
         & info [ "theta" ] ~docv:"F" ~doc:"Zipfian skew in (0,1).")
  in
  let leaf_cache =
    Arg.(value & opt (some bool) None
         & info [ "leaf-cache" ] ~docv:"BOOL"
             ~doc:"Bw-Tree only: enable/disable the point-op leaf cache \
                   (default: the index config's own setting — on for \
                   openbw, off for the baseline bw).")
  in
  let data_dir =
    Arg.(value & opt (some string) None
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Run a durable Bw-Tree out of $(docv) (bw/openbw only): \
                   recovery on open, group-commit WAL per batch while \
                   running. Compare against the same run without \
                   $(docv) to measure the WAL overhead.")
  in
  let no_fsync =
    Arg.(value & flag
         & info [ "no-fsync" ]
             ~doc:"With --data-dir: append to the WAL but skip the \
                   per-commit fsync.")
  in
  let memory =
    Arg.(value & flag
         & info [ "m"; "memory" ] ~doc:"Report live-heap memory afterwards.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect latency/structural metrics and print a snapshot.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Collect metrics and write a JSON snapshot to $(docv).")
  in
  let list_ =
    Arg.(value & flag & info [ "list" ] ~doc:"List indexes and exit.")
  in
  let term =
    Term.(
      const main $ index $ workload $ keyspace $ keys $ ops $ threads
      $ shards $ batch $ theta $ leaf_cache $ data_dir $ no_fsync $ memory
      $ metrics $ metrics_json $ list_)
  in
  Cmd.v
    (Cmd.info "ycsb" ~doc:"YCSB-style microbenchmarks for in-memory indexes"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the workloads of 'Building a Bw-Tree Takes More Than Just \
              Buzz Words' (SIGMOD 2018) against any of the six in-memory \
              index structures implemented in this repository.";
         ])
    term

let () = exit (Cmd.eval cmd)
