(* CI smoke test for crash recovery: three boots of the real
   bwt_server.exe against one --data-dir.

   Boot A is loaded by bwt_loadgen.exe and SIGKILLed mid-write — no
   drain, no checkpoint, a torn WAL tail is likely. Boot B must recover
   (its banner reports what the WAL replay found), serve a fresh loadgen
   mix on the recovered state, and checkpoint on SIGTERM; its shutdown
   metrics snapshot (validated by json_check in the @ci rule) carries
   the recovered_* counters. Boot C then proves the checkpoint: it must
   come up with snapshot items and an empty WAL.

   Usage: bwt_crash_smoke METRICS_JSON_OUT *)

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("bwt_crash_smoke: " ^ m); exit 1) fmt

let data_dir = "crash-smoke-data"

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

type boot = {
  b_pid : int;
  b_out : in_channel;
  b_port : int;
  b_recovered : string;  (* the "bwt_server: recovered ..." banner line *)
}

(* Spawn the server on an ephemeral port and read its stdout until the
   serving banner appears, capturing the recovery report on the way. *)
let start_server ?(extra = []) () =
  let out_r, out_w = Unix.pipe () in
  let argv =
    Array.of_list
      ([
         "./bwt_server.exe"; "--port"; "0"; "--workers"; "2";
         "--data-dir"; data_dir; "--no-fsync";
       ]
      @ extra)
  in
  let pid = Unix.create_process "./bwt_server.exe" argv Unix.stdin out_w Unix.stderr in
  Unix.close out_w;
  let out = Unix.in_channel_of_descr out_r in
  let recovered = ref "" in
  let port = ref 0 in
  (try
     while !port = 0 do
       let line = input_line out in
       print_endline line;
       let has_prefix p =
         String.length line >= String.length p
         && String.sub line 0 (String.length p) = p
       in
       if has_prefix "bwt_server: recovered" then recovered := line;
       (* "bwt_server: serving ... on HOST:PORT with N workers" *)
       if has_prefix "bwt_server: serving" then
         try
           Scanf.sscanf
             (List.nth (String.split_on_char ':' line)
                (List.length (String.split_on_char ':' line) - 1))
             "%d" (fun p -> port := p)
         with _ -> die "cannot parse port from banner: %s" line
     done
   with End_of_file -> die "server exited before its serving banner");
  { b_pid = pid; b_out = out; b_port = !port; b_recovered = !recovered }

let drain_and_reap name b ~expect_clean =
  (try
     while true do
       print_endline (input_line b.b_out)
     done
   with End_of_file -> ());
  close_in_noerr b.b_out;
  match Unix.waitpid [] b.b_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c when not expect_clean ->
      Printf.printf "bwt_crash_smoke: %s exited with code %d (expected)\n%!" name c
  | _, Unix.WEXITED c -> die "%s exited with code %d" name c
  | _, Unix.WSIGNALED s when not expect_clean ->
      Printf.printf "bwt_crash_smoke: %s killed by signal %d (expected)\n%!" name s
  | _, Unix.WSIGNALED s -> die "%s killed by signal %d" name s
  | _, Unix.WSTOPPED s -> die "%s stopped by signal %d" name s

let run_loadgen ~port ~ops ~wait =
  let pid =
    Unix.create_process "./bwt_loadgen.exe"
      [|
        "./bwt_loadgen.exe"; "--port"; string_of_int port; "--clients"; "2";
        "--pipeline"; "8"; "--mix"; "a"; "--keys"; "8000";
        "--ops"; string_of_int ops; "--batch"; "16";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  if wait then begin
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> -1
    | _, Unix.WEXITED c -> die "bwt_loadgen exited with code %d" c
    | _, st -> ignore st; die "bwt_loadgen died"
  end
  else pid

(* pull "field=N" out of the recovered banner *)
let banner_field line field =
  let rec find = function
    | [] -> die "no %s= in recovery banner: %s" field line
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | Some i when String.sub tok 0 i = field ->
            int_of_string (String.sub tok (i + 1) (String.length tok - i - 1))
        | _ -> find rest)
  in
  find (String.split_on_char ' ' line)

let () =
  let out_file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ -> (prerr_endline "usage: bwt_crash_smoke METRICS_JSON_OUT"; exit 2)
  in
  (* hard backstop: a hung server must fail CI, not wedge it *)
  ignore (Unix.alarm 240);
  rm_rf data_dir;

  (* --- boot A: load, then SIGKILL mid-write --- *)
  let a = start_server () in
  if banner_field a.b_recovered "snapshot_items" <> 0 then
    die "boot A on a fresh dir was not empty: %s" a.b_recovered;
  (* an op count the loadgen cannot finish before the kill lands *)
  let lg = run_loadgen ~port:a.b_port ~ops:5_000_000 ~wait:false in
  Unix.sleepf 2.0;
  Unix.kill a.b_pid Sys.sigkill;
  (match Unix.waitpid [] lg with
  | _, Unix.WEXITED 0 -> die "loadgen finished before the kill; raise --ops"
  | _ -> ());
  drain_and_reap "server (boot A)" a ~expect_clean:false;

  (* --- boot B: recover, serve, checkpoint on SIGTERM --- *)
  let b = start_server ~extra:[ "--metrics-json"; out_file ] () in
  let replayed = banner_field b.b_recovered "wal_ops" in
  if replayed <= 0 then
    die "boot B replayed nothing after a 2s write burst: %s" b.b_recovered;
  Printf.printf "bwt_crash_smoke: boot B replayed %d WAL ops\n%!" replayed;
  ignore (run_loadgen ~port:b.b_port ~ops:20_000 ~wait:true);
  Unix.kill b.b_pid Sys.sigterm;
  drain_and_reap "server (boot B)" b ~expect_clean:true;
  if not (Sys.file_exists out_file) then die "boot B wrote no %s" out_file;
  (* the snapshot must carry the recovery counters *)
  let json = In_channel.with_open_bin out_file In_channel.input_all in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
        scan 0
      in
      if not found then die "%s missing from %s" needle out_file)
    [ "\"recovered_wal_records\""; "\"recovered_pages\""; "\"wal_appends\"" ];

  (* --- boot C: the checkpoint holds, the WAL is empty --- *)
  let c = start_server () in
  if banner_field c.b_recovered "wal_ops" <> 0 then
    die "boot C found WAL ops after a checkpointed shutdown: %s" c.b_recovered;
  if banner_field c.b_recovered "snapshot_items" <= 0 then
    die "boot C recovered an empty snapshot: %s" c.b_recovered;
  Unix.kill c.b_pid Sys.sigterm;
  drain_and_reap "server (boot C)" c ~expect_clean:true;
  rm_rf data_dir;
  Printf.printf "bwt_crash_smoke: ok (boot B replayed %d ops, snapshot %s)\n"
    replayed out_file
