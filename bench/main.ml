(** Benchmark driver: regenerates every table and figure of the paper's
    evaluation (§5 experiments on the OpenBw-Tree's optimizations, §6
    cross-index comparison, §6.3 decomposition).

    Usage: [dune exec bench/main.exe -- [EXPERIMENT..] [OPTIONS]]

    Experiments: fig8 fig9 fig10 fig11 fig12 tab2 fig13 fig14 fig15 tab3
    fig16 fig17 fig18 bech (default: all).

    Options: [--keys N] [--ops N] [--threads N] [--repeats N] [--full]

    Absolute numbers are not comparable to the paper's Xeon testbed (this
    is OCaml on whatever machine you have — see DESIGN.md for the
    substitution table); the *shape* of each result is the reproduction
    target and is recorded against the paper in EXPERIMENTS.md. *)

module W = Workload
module Counters = Bw_util.Counters
open Harness

let print_header = Runner.print_header
let print_row = Runner.print_row

(* ------------------------------------------------------------------ *)
(* Scale                                                               *)
(* ------------------------------------------------------------------ *)

type scale = {
  keys : int;
  ops : int;
  threads : int;  (* the "20 worker threads" stand-in *)
  repeats : int;
}

let quick_scale = { keys = 30_000; ops = 60_000; threads = 8; repeats = 1 }
let full_scale = { keys = 500_000; ops = 1_000_000; threads = 16; repeats = 3 }

(* Optional observability sink (--metrics / --metrics-json). Every driver
   that goes through [mops_of] is wrapped with [Runner.instrument], so one
   run accumulates op-latency histograms across all selected experiments;
   Null (the default) keeps the wrapper a no-op so measured numbers are
   untouched. *)
let obs_sink = ref Bw_obs.Null

let wl_cfg scale =
  { W.default_config with num_keys = scale.keys; num_ops = scale.ops }

(* ------------------------------------------------------------------ *)
(* Generic workload execution                                          *)
(* ------------------------------------------------------------------ *)

(* Load the key set, then (for non-insert mixes) run the measured phase;
   [batch] > 1 submits the measured phase through the driver's batch
   path in groups of that many point ops. *)
let run_workload ?(batch = 1) (driver : 'k Runner.driver) ~(conv : int -> 'k)
    ~space ~mix ~nthreads scale =
  let cfg = wl_cfg scale in
  let load_trace = W.load_trace cfg space conv in
  let load_res = Runner.load driver ~nthreads load_trace in
  let res =
    match mix with
    | W.Insert_only -> load_res
    | _ ->
        let traces =
          Array.init nthreads (fun tid ->
              W.ops_trace cfg space mix ~tid ~nthreads conv)
        in
        Runner.run_batched driver ~batch traces
  in
  driver.stop_aux ();
  res

let mops_of ?batch ~mkdriver ~conv ~space ~mix ~nthreads scale =
  let xs =
    Array.init (max 1 scale.repeats) (fun _ ->
        let d = Runner.instrument !obs_sink (mkdriver ()) in
        (run_workload ?batch d ~conv ~space ~mix ~nthreads scale).mops)
  in
  Bw_util.Stats.median xs

let all_mixes = [ W.Insert_only; W.Read_only; W.Read_update; W.Scan_insert ]
let int_spaces = [ W.Mono_int; W.Rand_int ]

(* run one (space, mix) cell for an int- or email-keyed driver factory *)
let cell ~int_driver ~str_driver ~space ~mix ~nthreads scale =
  match space with
  | W.Email ->
      mops_of ~mkdriver:str_driver ~conv:W.email_key_of ~space ~mix ~nthreads
        scale
  | _ ->
      mops_of ~mkdriver:int_driver ~conv:(W.int_key_of space) ~space ~mix
        ~nthreads scale

(* ------------------------------------------------------------------ *)
(* §5.2 Figure 8: delta-record pre-allocation (single-threaded)        *)
(* ------------------------------------------------------------------ *)

let fig8 scale =
  print_header
    "Figure 8: Delta Record Pre-allocation (single-threaded, \
     independently-allocated vs pre-allocated)";
  let base = Bwtree.Config.make ~preallocate:false () in
  let opt = Bwtree.default_config in
  List.iter
    (fun space ->
      Printf.printf "-- %s keys --\n%!"
        (Format.asprintf "%a" W.pp_key_space space);
      List.iter
        (fun mix ->
          let run config =
            cell
              ~int_driver:(fun () -> Drivers.bwtree_driver_int ~config ())
              ~str_driver:(fun () -> Drivers.bwtree_driver_str ~config ())
              ~space ~mix ~nthreads:1 scale
          in
          let a = run base and b = run opt in
          print_row
            (Format.asprintf "%a" W.pp_mix mix)
            [ ("indep", a); ("prealloc", b); ("speedup", b /. a) ])
        all_mixes)
    [ W.Mono_int; W.Rand_int; W.Email ]

(* ------------------------------------------------------------------ *)
(* §5.3 Figure 9: fast consolidation & search shortcuts                *)
(* ------------------------------------------------------------------ *)

let fig9 scale =
  print_header
    "Figure 9: Fast Consolidation & Search Shortcuts (single-threaded, \
     off vs on)";
  let base =
    Bwtree.Config.make ~fast_consolidation:false ~search_shortcuts:false ()
  in
  let opt = Bwtree.default_config in
  List.iter
    (fun space ->
      Printf.printf "-- %s keys --\n%!"
        (Format.asprintf "%a" W.pp_key_space space);
      List.iter
        (fun mix ->
          let run config =
            cell
              ~int_driver:(fun () -> Drivers.bwtree_driver_int ~config ())
              ~str_driver:(fun () -> Drivers.bwtree_driver_str ~config ())
              ~space ~mix ~nthreads:1 scale
          in
          let a = run base and b = run opt in
          print_row
            (Format.asprintf "%a" W.pp_mix mix)
            [ ("no FC&SS", a); ("FC&SS", b); ("speedup", b /. a) ])
        all_mixes)
    [ W.Mono_int; W.Rand_int; W.Email ]

(* ------------------------------------------------------------------ *)
(* §5.4 Figure 10: garbage collection scalability                      *)
(* ------------------------------------------------------------------ *)

(* The epoch-protocol microbenchmark behind Fig. 10: enter/exit cost in
   isolation. The centralized scheme's entry is a shared atomic RMW (cache
   coherence traffic on real multi-socket hardware); the decentralized
   entry is a read of the global epoch plus a write to a thread-private
   cell. *)
let fig10_protocol scale =
  Printf.printf "-- epoch protocol microbenchmark (enter/exit pairs) --\n%!";
  let iters = 2_000_000 in
  List.iter
    (fun nthreads ->
      let cells =
        List.map
          (fun (label, scheme) ->
            let e = Epoch.create ~scheme ~max_threads:nthreads () in
            let per = iters / nthreads in
            let seconds =
              Runner.run_phase ~nthreads (fun tid ->
                  for _ = 1 to per do
                    Epoch.op_begin e ~tid;
                    Epoch.op_end e ~tid
                  done)
            in
            (label, Bw_util.Stats.throughput_mops ~ops:iters ~seconds))
          [ ("centralized", Epoch.Centralized);
            ("decentralized", Epoch.Decentralized) ]
      in
      print_row ~unit_:"M enter+exit/s"
        (Printf.sprintf "%d threads" nthreads)
        cells)
    [ 1; scale.threads ]

let fig10 scale =
  print_header
    "Figure 10: GC Scalability (Read/Update; centralized vs decentralized \
     epochs; thread sweep)";
  let threads = [ 1; 2; 4; scale.threads ] in
  let centralized =
    Bwtree.Config.make ~gc_scheme:Epoch.Centralized ()
  in
  let decentralized = Bwtree.default_config in
  List.iter
    (fun space ->
      Printf.printf "-- %s keys --\n%!"
        (Format.asprintf "%a" W.pp_key_space space);
      List.iter
        (fun nthreads ->
          let run config =
            cell
              ~int_driver:(fun () -> Drivers.bwtree_driver_int ~config ())
              ~str_driver:(fun () -> Drivers.bwtree_driver_str ~config ())
              ~space ~mix:W.Read_update ~nthreads scale
          in
          let c = run centralized and d = run decentralized in
          print_row
            (Printf.sprintf "%d threads" nthreads)
            [ ("centralized", c); ("decentralized", d); ("ratio", d /. c) ])
        threads)
    [ W.Mono_int; W.Rand_int; W.Email ];
  fig10_protocol scale

(* ------------------------------------------------------------------ *)
(* §5.5 Figure 11: delta-chain length & node size                      *)
(* ------------------------------------------------------------------ *)

let fig11 scale =
  print_header
    "Figure 11: Delta Chain Length x Node Size (Mono-Int, multi-threaded)";
  let chains = [ 8; 16; 24; 32; 40 ] in
  let node_sizes = [ 32; 64; 128 ] in
  List.iter
    (fun mix ->
      Printf.printf "-- %s --\n%!" (Format.asprintf "%a" W.pp_mix mix);
      List.iter
        (fun chain ->
          let cells =
            List.map
              (fun ns ->
                let config =
                  Bwtree.Config.make ~leaf_chain_max:chain
                    ~inner_chain_max:(min chain 4) ~leaf_max:ns
                    ~inner_max:(max 16 (ns / 2)) ~leaf_min:(max 2 (ns / 8))
                    ~inner_min:(max 2 (ns / 8)) ()
                in
                let v =
                  mops_of
                    ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
                    ~conv:(W.int_key_of W.Mono_int) ~space:W.Mono_int ~mix
                    ~nthreads:scale.threads scale
                in
                (Printf.sprintf "node=%d" ns, v))
              node_sizes
          in
          print_row (Printf.sprintf "chain=%d" chain) cells)
        chains)
    [ W.Insert_only; W.Read_update ]

(* ------------------------------------------------------------------ *)
(* §5.6 Figure 12: optimization summary                                *)
(* ------------------------------------------------------------------ *)

let fig12 scale =
  print_header
    "Figure 12a: Optimizations applied cumulatively (Rand-Int, Read/Update)";
  let steps =
    [
      ("Bw-Tree", Bwtree.microsoft_config);
      ("+GC", { Bwtree.microsoft_config with gc_scheme = Epoch.Decentralized });
      ( "+PA",
        {
          Bwtree.microsoft_config with
          gc_scheme = Epoch.Decentralized;
          preallocate = true;
          leaf_chain_max = Bwtree.default_config.leaf_chain_max;
          inner_chain_max = Bwtree.default_config.inner_chain_max;
        } );
      ("+FC&SS", Bwtree.Config.make ~unique_keys:true ());
      ("+NK", Bwtree.Config.make ~unique_keys:false ());
    ]
  in
  List.iter
    (fun nthreads ->
      let cells =
        List.map
          (fun (label, config) ->
            ( label,
              mops_of
                ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
                ~conv:(W.int_key_of W.Rand_int) ~space:W.Rand_int
                ~mix:W.Read_update ~nthreads scale ))
          steps
      in
      print_row (Printf.sprintf "%d thread(s)" nthreads) cells)
    [ 1; scale.threads ];
  print_header "Figure 12b: Bw-Tree vs OpenBw-Tree (Mono-Int, multi-threaded)";
  List.iter
    (fun mix ->
      let run config =
        mops_of
          ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
          ~conv:(W.int_key_of W.Mono_int) ~space:W.Mono_int ~mix
          ~nthreads:scale.threads scale
      in
      let a = run Bwtree.microsoft_config in
      let b = run Bwtree.default_config in
      print_row
        (Format.asprintf "%a" W.pp_mix mix)
        [ ("Bw-Tree", a); ("OpenBw-Tree", b); ("speedup", b /. a) ])
    all_mixes

(* ------------------------------------------------------------------ *)
(* Table 2: OpenBw-Tree statistics under Insert-only                   *)
(* ------------------------------------------------------------------ *)

(* Insert via the high-contention generator: every thread draws strictly
   increasing keys from a shared clock (the RDTSC substitute). *)
let hc_insert_run (d : int Runner.driver) ~nthreads ~ops =
  let hc = W.Hc.create ~nthreads in
  d.start_aux ();
  let per = ops / nthreads in
  let seconds =
    Runner.run_phase ~nthreads (fun tid ->
        for i = 1 to per do
          let k = W.Hc.next hc ~tid in
          ignore (d.insert ~tid k i)
        done;
        d.thread_done ~tid)
  in
  d.stop_aux ();
  {
    Runner.ops;
    seconds;
    mops = Bw_util.Stats.throughput_mops ~ops ~seconds;
    mem_words = 0;
  }

let tab2 scale =
  print_header "Table 2: OpenBw-Tree statistics (Insert-only, multi-threaded)";
  let run_one space =
    let tree, mkdriver = Drivers.bwtree_instance_int () in
    let driver = mkdriver "OpenBw-Tree" in
    (match space with
    | W.Mono_hc ->
        ignore (hc_insert_run driver ~nthreads:scale.threads ~ops:scale.keys)
    | _ ->
        let cfg = wl_cfg scale in
        let trace = W.load_trace cfg space (W.int_key_of space) in
        ignore (Runner.load driver ~nthreads:scale.threads trace);
        driver.stop_aux ());
    let ss = Drivers.Bw_int.structure_stats tree in
    let os = Drivers.Bw_int.op_stats tree in
    let abort_rate =
      if os.inserts = 0 then 0.0
      else 100.0 *. float_of_int os.restarts /. float_of_int os.inserts
    in
    Printf.printf
      "%-10s IDCL %5.2f | LDCL %5.2f | INS %6.2f | LNS %6.2f | Abort \
       %6.2f%% | IPU %5.1f%% | LPU %5.1f%%\n%!"
      (Format.asprintf "%a" W.pp_key_space space)
      ss.avg_inner_chain ss.avg_leaf_chain ss.avg_inner_size ss.avg_leaf_size
      abort_rate
      (100.0 *. ss.inner_prealloc_util)
      (100.0 *. ss.leaf_prealloc_util)
  in
  List.iter run_one [ W.Mono_int; W.Rand_int; W.Mono_hc ]

(* ------------------------------------------------------------------ *)
(* §6.1 Figures 13/14: the six-index comparison                        *)
(* ------------------------------------------------------------------ *)

let index_comparison scale ~nthreads title =
  print_header title;
  List.iter
    (fun space ->
      Printf.printf "-- %s keys --\n%!"
        (Format.asprintf "%a" W.pp_key_space space);
      List.iter
        (fun mix ->
          let cells =
            match space with
            | W.Email ->
                List.map
                  (fun (name, mk) ->
                    ( name,
                      mops_of ~mkdriver:mk ~conv:W.email_key_of ~space ~mix
                        ~nthreads scale ))
                  (Drivers.str_lineup ())
            | _ ->
                List.map
                  (fun (name, mk) ->
                    ( name,
                      mops_of ~mkdriver:mk ~conv:(W.int_key_of space) ~space
                        ~mix ~nthreads scale ))
                  (Drivers.int_lineup ())
          in
          print_row (Format.asprintf "%a" W.pp_mix mix) cells)
        all_mixes)
    (int_spaces @ [ W.Email ])

let fig13 scale =
  index_comparison scale ~nthreads:1
    "Figure 13: In-Memory Index Comparison (single-threaded)"

let fig14 scale =
  index_comparison scale ~nthreads:scale.threads
    (Printf.sprintf
       "Figure 14: In-Memory Index Comparison (multi-threaded, %d workers)"
       scale.threads)

(* ------------------------------------------------------------------ *)
(* Figure 15: memory usage                                             *)
(* ------------------------------------------------------------------ *)

let fig15 scale =
  print_header "Figure 15: Memory Usage (Read/Update; MB of live heap)";
  let mb words = float_of_int (words * 8) /. 1024.0 /. 1024.0 in
  List.iter
    (fun nthreads ->
      Printf.printf "-- %d thread(s) --\n%!" nthreads;
      List.iter
        (fun space ->
          let cells =
            match space with
            | W.Email ->
                List.map
                  (fun (name, mk) ->
                    let d = mk () in
                    let _ =
                      run_workload d ~conv:W.email_key_of ~space
                        ~mix:W.Read_update ~nthreads scale
                    in
                    (name, mb (d.memory_words ())))
                  (Drivers.str_lineup ())
            | _ ->
                List.map
                  (fun (name, mk) ->
                    let d = mk () in
                    let _ =
                      run_workload d ~conv:(W.int_key_of space) ~space
                        ~mix:W.Read_update ~nthreads scale
                    in
                    (name, mb (d.memory_words ())))
                  (Drivers.int_lineup ())
          in
          print_row ~unit_:"MB"
            (Format.asprintf "%a" W.pp_key_space space)
            cells)
        (int_spaces @ [ W.Email ]))
    [ 1; scale.threads ]

(* ------------------------------------------------------------------ *)
(* Table 3: microbenchmark counters                                    *)
(* ------------------------------------------------------------------ *)

let tab3 scale =
  print_header
    "Table 3: Software event counters, Rand-Int Insert-only (events per \
     operation; hardware-counter substitute)";
  Printf.printf "%-14s | %9s %9s %9s %9s %9s %9s\n%!" "index" "ptr-deref"
    "key-cmp" "alloc" "cas" "cas-fail" "restart";
  List.iter
    (fun (name, mk) ->
      let d = mk () in
      Counters.reset Counters.global;
      Counters.enabled := true;
      let cfg = wl_cfg scale in
      let trace = W.load_trace cfg W.Rand_int (W.int_key_of W.Rand_int) in
      let res = Runner.load d ~nthreads:scale.threads trace in
      d.stop_aux ();
      Counters.enabled := false;
      let per ev =
        float_of_int (Counters.read Counters.global ev) /. float_of_int res.ops
      in
      Printf.printf "%-14s | %9.2f %9.2f %9.2f %9.2f %9.4f %9.4f\n%!" name
        (per Counters.Pointer_deref)
        (per Counters.Key_compare)
        (per Counters.Allocation) (per Counters.Cas_attempt)
        (per Counters.Cas_failure) (per Counters.Restart))
    (Drivers.int_lineup ())

(* ------------------------------------------------------------------ *)
(* §6.2 Figures 16/17: high contention                                 *)
(* ------------------------------------------------------------------ *)

let fig16 scale =
  print_header
    "Figure 16: High-Contention Insert-only (Mono-HC keys) + software \
     access-rate counters (DRAM-rate substitute)";
  let thread_configs =
    [ (scale.threads, "T workers"); (scale.threads * 2, "2T workers") ]
  in
  List.iter
    (fun (nthreads, label) ->
      Printf.printf "-- %s (%d) --\n%!" label nthreads;
      List.iter
        (fun (name, mk) ->
          let d = mk () in
          Counters.reset Counters.global;
          Counters.enabled := true;
          let res = hc_insert_run d ~nthreads ~ops:scale.keys in
          Counters.enabled := false;
          let rate ev =
            float_of_int (Counters.read Counters.global ev)
            /. res.seconds /. 1e6
          in
          Printf.printf
            "%-14s | %8.3f Mops/s | deref %8.1f M/s | cas-fail %8.3f M/s\n%!"
            name res.mops
            (rate Counters.Pointer_deref)
            (rate Counters.Cas_failure))
        (Drivers.int_lineup ()))
    thread_configs

let fig17 scale =
  print_header
    "Figure 17: Normal (Mono-Int) vs High-Contention (Mono-HC) Insert-only";
  List.iter
    (fun (name, mk) ->
      let normal =
        let d = mk () in
        let cfg = wl_cfg scale in
        let trace = W.load_trace cfg W.Mono_int (W.int_key_of W.Mono_int) in
        let r = Runner.load d ~nthreads:scale.threads trace in
        d.stop_aux ();
        r.mops
      in
      let hc =
        let d = mk () in
        (hc_insert_run d ~nthreads:scale.threads ~ops:scale.keys).mops
      in
      print_row name
        [
          ("mono-int", normal);
          ("high-contention", hc);
          ("degradation x", normal /. hc);
        ])
    (Drivers.int_lineup ())

(* ------------------------------------------------------------------ *)
(* §6.3 Figure 18: performance decomposition                           *)
(* ------------------------------------------------------------------ *)

let fig18 scale =
  print_header
    "Figure 18: Performance decomposition (Rand-Int, single-threaded; \
     features disabled one by one)";
  let conv = W.int_key_of W.Rand_int in
  let cfg = wl_cfg scale in
  let time_run f n =
    let t0 = Unix.gettimeofday () in
    f ();
    Bw_util.Stats.throughput_mops ~ops:n ~seconds:(Unix.gettimeofday () -. t0)
  in
  let insert_mops config =
    mops_of
      ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
      ~conv ~space:W.Rand_int ~mix:W.Insert_only ~nthreads:1 scale
  in
  let read_mops config ~prep =
    let tree, mk = Drivers.bwtree_instance_int ~config () in
    let d = mk "bw" in
    let trace = W.load_trace cfg W.Rand_int conv in
    ignore (Runner.load d ~nthreads:1 trace);
    d.stop_aux ();
    prep tree;
    let ops = W.ops_trace cfg W.Rand_int W.Read_only ~tid:0 ~nthreads:1 conv in
    time_run
      (fun () -> Array.iter (fun op -> Runner.exec_op d ~tid:0 op) ops)
      (Array.length ops)
  in
  let base = Bwtree.default_config in
  print_row "OpenBw-Tree"
    [
      ("insert", insert_mops base); ("read", read_mops base ~prep:(fun _ -> ()));
    ];
  print_row "-DC (no delta chains)"
    [ ("read", read_mops base ~prep:Drivers.Bw_int.consolidate_all) ];
  let nocas = { base with use_atomic_cas = false } in
  print_row "-CAS (plain compare+store)"
    [
      ("insert", insert_mops nocas);
      ("read", read_mops nocas ~prep:(fun _ -> ()));
    ];
  (* -MT: frozen direct-pointer tree (no mapping table, no chains) *)
  let mt_read =
    let tree, mk = Drivers.bwtree_instance_int () in
    let d = mk "bw" in
    let trace = W.load_trace cfg W.Rand_int conv in
    ignore (Runner.load d ~nthreads:1 trace);
    d.stop_aux ();
    let frozen = Drivers.Bw_int.freeze tree in
    let ops = W.ops_trace cfg W.Rand_int W.Read_only ~tid:0 ~nthreads:1 conv in
    time_run
      (fun () ->
        Array.iter
          (function
            | W.Read k -> ignore (Drivers.Bw_int.frozen_lookup frozen k)
            | _ -> ())
          ops)
      (Array.length ops)
  in
  print_row "-MT (direct pointers)" [ ("read", mt_read) ];
  let nodelta = { base with inplace_leaf_update = true } in
  print_row "-DU (in-place leaf updates)" [ ("insert", insert_mops nodelta) ];
  print_row "B+Tree (OLC)"
    [
      ( "insert",
        mops_of
          ~mkdriver:(fun () -> Drivers.btree_driver_int ())
          ~conv ~space:W.Rand_int ~mix:W.Insert_only ~nthreads:1 scale );
      ( "read",
        mops_of
          ~mkdriver:(fun () -> Drivers.btree_driver_int ())
          ~conv ~space:W.Rand_int ~mix:W.Read_only ~nthreads:1 scale );
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-latencies                                            *)
(* ------------------------------------------------------------------ *)

let bech scale =
  print_header "Bechamel micro-latencies (single-op, ns/op; supports Table 3)";
  let open Bechamel in
  let preloaded mk insert =
    let d = mk () in
    let cfg = { (wl_cfg scale) with num_keys = min scale.keys 20_000 } in
    let trace = W.load_trace cfg W.Rand_int (W.int_key_of W.Rand_int) in
    Array.iter (fun (k, v) -> ignore (insert d k v)) trace;
    (d, cfg.num_keys)
  in
  let tests =
    List.concat_map
      (fun (name, mk) ->
        let d, n = preloaded mk (fun d k v -> d.Runner.insert ~tid:0 k v) in
        let rng = Bw_util.Rng.create ~seed:99L in
        let lookup =
          Test.make ~name:(name ^ "/lookup")
            (Staged.stage (fun () ->
                 let i = Bw_util.Rng.next_int rng n in
                 ignore (d.Runner.read ~tid:0 (W.Keys.rand_int i))))
        in
        let update =
          Test.make ~name:(name ^ "/update")
            (Staged.stage (fun () ->
                 let i = Bw_util.Rng.next_int rng n in
                 ignore (d.Runner.update ~tid:0 (W.Keys.rand_int i) 42)))
        in
        [ lookup; update ])
      (Drivers.int_lineup ())
  in
  let grouped = Test.make_grouped ~name:"index" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) -> Printf.printf "%-36s %10.1f ns/op\n%!" name t
      | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper (see DESIGN.md)                          *)
(* ------------------------------------------------------------------ *)

let abl scale =
  print_header
    "Ablation A1: SkipList tower policy (background thread, the paper's \
     configuration, vs inline CaS towers)";
  List.iter
    (fun mix ->
      let run policy =
        mops_of
          ~mkdriver:(fun () -> Drivers.skiplist_driver_int ~policy ())
          ~conv:(W.int_key_of W.Rand_int) ~space:W.Rand_int ~mix
          ~nthreads:scale.threads scale
      in
      let bg = run Skiplist.Background and inl = run Skiplist.Inline in
      print_row
        (Format.asprintf "%a" W.pp_mix mix)
        [ ("background", bg); ("inline", inl); ("inline/bg", inl /. bg) ])
    [ W.Insert_only; W.Read_only ];

  print_header
    "Ablation A2: mapping-table chunk size (lock-free growth granularity)";
  let ids = 200_000 in
  List.iter
    (fun chunk_bits ->
      let t =
        Mapping_table.create ~chunk_bits
          ~dir_bits:(max 4 (22 - chunk_bits))
          ~dummy:(-1) ()
      in
      let t0 = Unix.gettimeofday () in
      for i = 0 to ids - 1 do
        ignore (Mapping_table.allocate t i)
      done;
      let alloc_s = Unix.gettimeofday () -. t0 in
      let rng = Bw_util.Rng.create ~seed:5L in
      let t0 = Unix.gettimeofday () in
      let acc = ref 0 in
      for _ = 0 to (2 * ids) - 1 do
        acc := !acc lxor Mapping_table.get t (Bw_util.Rng.next_int rng ids)
      done;
      let get_s = Unix.gettimeofday () -. t0 in
      ignore !acc;
      Printf.printf
        "chunk=2^%-2d | alloc %7.3f Mops/s | get %7.3f Mops/s | chunks %d\n%!"
        chunk_bits
        (Bw_util.Stats.throughput_mops ~ops:ids ~seconds:alloc_s)
        (Bw_util.Stats.throughput_mops ~ops:(2 * ids) ~seconds:get_s)
        (Mapping_table.chunks_allocated t))
    [ 8; 12; 16; 20 ];

  print_header
    "Ablation A3: decentralized-GC threshold (local garbage list trigger)";
  List.iter
    (fun gc_threshold ->
      let config = Bwtree.Config.make ~gc_threshold () in
      let v =
        mops_of
          ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
          ~conv:(W.int_key_of W.Rand_int) ~space:W.Rand_int
          ~mix:W.Read_update ~nthreads:scale.threads scale
      in
      print_row (Printf.sprintf "threshold=%d" gc_threshold) [ ("A", v) ])
    [ 64; 256; 1024; 4096 ];

  print_header
    "Ablation A4: non-unique key support cost (Fig. 12a's +NK bar, \
     detailed; no duplicate keys present)";
  List.iter
    (fun mix ->
      let run unique_keys =
        let config = Bwtree.Config.make ~unique_keys () in
        mops_of
          ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
          ~conv:(W.int_key_of W.Rand_int) ~space:W.Rand_int ~mix ~nthreads:1
          scale
      in
      let u = run true and n = run false in
      print_row
        (Format.asprintf "%a" W.pp_mix mix)
        [ ("unique", u); ("non-unique", n); ("ratio", n /. u) ])
    [ W.Insert_only; W.Read_only; W.Read_update ]

(* ------------------------------------------------------------------ *)
(* Page-store substrate: checkpoint / recovery / compaction rates      *)
(* ------------------------------------------------------------------ *)

module Cp = Pagestore.Checkpoint.Make (Pagestore.Codec.Int) (Drivers.Bw_int)

let store scale =
  print_header
    "Page store: checkpoint, recovery and segment-GC rates (LLAMA-style \
     substrate, DESIGN.md)";
  let t = Drivers.Bw_int.create () in
  let n = scale.keys in
  for i = 0 to n - 1 do
    ignore (Drivers.Bw_int.insert t (W.Keys.rand_int i) i)
  done;
  let log = Pagestore.Log.create () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let root1, save_s = time (fun () -> Cp.save ~page_items:128 t log) in
  let _, save2_s = time (fun () -> Cp.save ~page_items:128 t log) in
  let root2 = Cp.save ~page_items:128 t log in
  let tree', load_s = time (fun () -> Cp.load log root2) in
  let reclaimed, compact_s =
    time (fun () -> fst (Cp.compact_keeping log [ root2 ]))
  in
  ignore root1;
  Printf.printf
    "checkpoint : %7.3f M items/s (first) | %7.3f M items/s (steady)\n"
    (Bw_util.Stats.throughput_mops ~ops:n ~seconds:save_s)
    (Bw_util.Stats.throughput_mops ~ops:n ~seconds:save2_s);
  Printf.printf "recovery   : %7.3f M items/s (%d keys rebuilt)\n"
    (Bw_util.Stats.throughput_mops ~ops:n ~seconds:load_s)
    (Drivers.Bw_int.cardinal tree');
  Printf.printf
    "segment GC : %7.2f MB reclaimed in %.3fs (%.1f MB/s); log now %.2f MB \
     in %d segments\n"
    (float_of_int reclaimed /. 1048576.)
    compact_s
    (float_of_int reclaimed /. 1048576. /. compact_s)
    (float_of_int (Pagestore.Log.bytes_used log) /. 1048576.)
    (Pagestore.Log.segment_count log)

(* ------------------------------------------------------------------ *)
(* Bw-forest: shard-count scaling over the lib/shard router            *)
(* ------------------------------------------------------------------ *)

(* The paper (§6) attributes the Bw-tree's scalability ceiling to
   centralized-structure contention (mapping table, root deltas);
   range-partitioning the key space over N smaller trees divides that
   contention without changing the driver contract. This measures YCSB
   C/A/E over a forest of 1/2/4/8 OpenBw-Trees on uniform-random int
   keys ([Part.make_int ~lo:0] spreads them evenly across shards). *)
let shards_bench scale =
  print_header
    "Bw-forest: shard-count scaling (YCSB C/A/E, rand int keys, \
     range-partitioned OpenBw-Tree forest)";
  let counts = [ 1; 2; 4; 8 ] in
  List.iter
    (fun mix ->
      let cells =
        List.map
          (fun n ->
            let mk () =
              if n = 1 then Drivers.bwtree_driver_int ()
              else Drivers.bwtree_forest_int ~lo:0 ~shards:n ()
            in
            ( Printf.sprintf "%dsh" n,
              mops_of ~mkdriver:mk ~conv:(W.int_key_of W.Rand_int)
                ~space:W.Rand_int ~mix ~nthreads:scale.threads scale ))
          counts
      in
      print_row (Format.asprintf "%a" W.pp_mix mix) cells)
    [ W.Read_only; W.Read_update; W.Scan_insert ]

(* ------------------------------------------------------------------ *)
(* Batch execution: ops per execute_batch call                         *)
(* ------------------------------------------------------------------ *)

(* The epoch-amortized multi-op path (DESIGN.md "Batch execution"):
   point ops sorted by key and walked left-to-right through one epoch
   entry, reusing the previous leaf while keys stay inside its separator
   range. Batch 1 is the plain per-op path, so the first column is the
   baseline the speedup is measured against. *)
let batch_bench scale =
  print_header
    "Batch execution: ops per execute_batch call (rand int keys, \
     OpenBw-Tree, multi-threaded)";
  let batches = [ 1; 8; 64; 256; 1024 ] in
  List.iter
    (fun mix ->
      let cells =
        List.map
          (fun b ->
            ( Printf.sprintf "b=%d" b,
              mops_of ~batch:b
                ~mkdriver:(fun () -> Drivers.bwtree_driver_int ())
                ~conv:(W.int_key_of W.Rand_int) ~space:W.Rand_int ~mix
                ~nthreads:scale.threads scale ))
          batches
      in
      print_row (Format.asprintf "%a" W.pp_mix mix) cells)
    [ W.Read_only; W.Read_update ]

(* ------------------------------------------------------------------ *)
(* Packed leaf pages: boxed vs packed representation                   *)
(* ------------------------------------------------------------------ *)

(* The packed-leaf representation (DESIGN.md "Packed leaf pages"):
   contiguous binary-key arenas with a branchless lower bound and
   gap-reusing consolidation, against the boxed (decoded-key-array)
   baseline — the [packed_leaves] config bit is the only difference.
   YCSB C is the point-read case the in-node search dominates; YCSB E
   exercises the scan cursor and consolidation paths; batch 256 is the
   epoch-amortized path where leaf probes are the remaining cost. *)
let packed_bench scale =
  print_header
    "Packed leaf pages: boxed vs packed (YCSB C/E, rand int keys, \
     OpenBw-Tree, multi-threaded)";
  let configs =
    [
      ("boxed", Bwtree.Config.make ~packed_leaves:false ());
      ("packed", Bwtree.Config.make ~packed_leaves:true ());
    ]
  in
  List.iter
    (fun mix ->
      List.iter
        (fun b ->
          let cells =
            List.map
              (fun (name, config) ->
                ( name,
                  mops_of ~batch:b
                    ~mkdriver:(fun () -> Drivers.bwtree_driver_int ~config ())
                    ~conv:(W.int_key_of W.Rand_int) ~space:W.Rand_int ~mix
                    ~nthreads:scale.threads scale ))
              configs
          in
          let ratio =
            match cells with
            | [ (_, boxed); (_, packed) ] -> packed /. boxed
            | _ -> nan
          in
          print_row
            (Format.asprintf "%a b=%d" W.pp_mix mix b)
            (cells @ [ ("ratio", ratio) ]))
        [ 1; 256 ])
    [ W.Read_only; W.Scan_insert ]

(* ------------------------------------------------------------------ *)
(* Durable WAL overhead: group commit vs the in-memory tree            *)
(* ------------------------------------------------------------------ *)

(* The durability tax of the pagestore WAL (DESIGN.md "Durability &
   recovery") on YCSB-A: every applied update appends a commit record,
   and with [fsync] each commit also syncs — so batch size is the group
   commit size and the knob that amortizes the tax. The in-memory row is
   the same tree without the WAL wrapper; the acceptance bar is batched
   (>= 256) durable throughput within 2x of it. *)
let wal_bench scale =
  print_header
    "Durable WAL overhead: group-commit batch size vs in-memory (YCSB-A, \
     rand int keys, multi-threaded)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "bwt-bench-wal"
  in
  let opened = ref [] in
  let durable ~fsync () =
    Pagestore.Store.rm_rf dir;
    let dur = Drivers.durable_bwtree_int ~fsync ~dir () in
    opened := dur :: !opened;
    dur.Drivers.dur_driver
  in
  let batches = [ 1; 64; 256 ] in
  let row name mk =
    let cells =
      List.map
        (fun b ->
          ( Printf.sprintf "b=%d" b,
            mops_of ~batch:b ~mkdriver:mk ~conv:(W.int_key_of W.Rand_int)
              ~space:W.Rand_int ~mix:W.Read_update ~nthreads:scale.threads
              scale ))
        batches
    in
    print_row name cells
  in
  row "in-memory" (fun () -> Drivers.bwtree_driver_int ());
  row "wal (no fsync)" (durable ~fsync:false);
  row "wal (fsync)" (durable ~fsync:true);
  List.iter (fun d -> d.Drivers.dur_close ()) !opened;
  Pagestore.Store.rm_rf dir

(* ------------------------------------------------------------------ *)
(* Leaf cache: point-op descent skipping                               *)
(* ------------------------------------------------------------------ *)

(* The epoch-verified leaf cache (DESIGN.md "Leaf cache"): hot point ops
   jump straight to the candidate leaf and re-validate against the
   mapping table, skipping the root-to-leaf descent. YCSB C at Zipfian
   0.99 is the intended win (hot keys revisit the same leaves); the
   near-uniform row prices the cache when hits are rare; batch 256 shows
   the interaction with the batch path's own leaf reuse. The adversarial
   row forces a ~0% hit rate (a 2-slot cache under uniform keys), so
   every probe is pure overhead — the acceptance bar is a win on
   Zipfian b=1 and <= 3% regression on the miss-dominated rows. *)
let leafcache_bench scale =
  print_header
    "Leaf cache: descent skipping on point ops (YCSB C, rand int keys, \
     OpenBw-Tree, multi-threaded)";
  let sample ~theta ~batch config =
    let cfg = { (wl_cfg scale) with W.theta } in
    let conv = W.int_key_of W.Rand_int in
    let d =
      Runner.instrument !obs_sink (Drivers.bwtree_driver_int ~config ())
    in
    ignore
      (Runner.load d ~nthreads:scale.threads (W.load_trace cfg W.Rand_int conv));
    let traces =
      Array.init scale.threads (fun tid ->
          W.ops_trace cfg W.Rand_int W.Read_only ~tid ~nthreads:scale.threads
            conv)
    in
    (* normalise heap state before the timed section: without this the
       major heap grown by earlier samples dominates the ~10% effect
       being measured *)
    Gc.compact ();
    let r = Runner.run_batched d ~batch traces in
    d.stop_aux ();
    r.mops
  in
  (* Interleave off/on samples in ABBA order: the process slows down as
     its major heap grows across runs, so back-to-back blocks of repeats
     would systematically penalise whichever side runs second. *)
  let compare_row label ~theta ~batch on_config =
    let off_config = Bwtree.Config.make ~leaf_cache:false () in
    let n = max 1 scale.repeats in
    let offs = Array.make n 0. and ons = Array.make n 0. in
    for i = 0 to n - 1 do
      if i land 1 = 0 then begin
        offs.(i) <- sample ~theta ~batch off_config;
        ons.(i) <- sample ~theta ~batch on_config
      end
      else begin
        ons.(i) <- sample ~theta ~batch on_config;
        offs.(i) <- sample ~theta ~batch off_config
      end
    done;
    let off = Bw_util.Stats.median offs and on_ = Bw_util.Stats.median ons in
    print_row label [ ("off", off); ("on", on_); ("ratio", on_ /. off) ]
  in
  List.iter
    (fun (tname, theta) ->
      List.iter
        (fun b ->
          compare_row
            (Printf.sprintf "C %s b=%d" tname b)
            ~theta ~batch:b Bwtree.default_config)
        [ 1; 256 ])
    [ ("zipf .99", 0.99); ("uniform", 0.01) ];
  compare_row "C adversarial (2-slot) b=1" ~theta:0.01 ~batch:1
    (Bwtree.Config.make ~leaf_cache:true ~leaf_cache_bits:1 ())

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Cluster partition table: routing lookup cost (see DESIGN.md)        *)
(* ------------------------------------------------------------------ *)

(* Every routed request pays one owner lookup. The process-local forest
   uses O(1) stride arithmetic; the cluster table is a binary search
   over its range bounds, which migrations grow two boundaries at a
   time — this prices that trade across table sizes. *)
let cluster_bench scale =
  print_header
    "Cluster: partition-table owner lookup (binary search) vs uniform \
     stride arithmetic";
  let iters = max 1_000_000 scale.ops in
  let n_members = 4 in
  let part = Bw_shard.Part.make_int ~lo:0 n_members in
  let endpoints =
    Array.make n_members
      { Bw_cluster.Table.ep_host = "h"; ep_port = 1; ep_replica = None }
  in
  let base =
    Bw_cluster.Table.of_uniform ~epoch:1L endpoints
      (Bw_cluster.Uniform.make_int ~lo:0 n_members)
  in
  (* split the table the way successive small migrations would: each
     move carves two fresh boundaries out of a member's range *)
  let split moves =
    let t = ref base in
    for i = 1 to moves do
      let lo = Int64.shift_left (Int64.of_int i) 40 in
      let hi = Int64.add lo (Int64.shift_left 1L 39) in
      t :=
        Bw_cluster.Table.with_range_moved !t ~lo ~hi:(Some hi)
          ~dst:(i mod n_members)
    done;
    !t
  in
  let time name f =
    let sink = ref 0 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      sink := !sink lxor f (i * 7919)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%-38s %8.1f ns/op\n%!" name
      (ignore (Sys.opaque_identity !sink);
       1e9 *. dt /. float_of_int iters)
  in
  time "Part.shard_of_int (stride)" (fun k ->
      Bw_shard.Part.shard_of_int part k);
  time
    (Printf.sprintf "Table.owner_int (%d ranges)"
       (Bw_cluster.Table.n_ranges base))
    (fun k -> Bw_cluster.Table.owner_int base k);
  List.iter
    (fun moves ->
      let t = split moves in
      time
        (Printf.sprintf "Table.owner_int (%d ranges)"
           (Bw_cluster.Table.n_ranges t))
        (fun k -> Bw_cluster.Table.owner_int t k))
    [ 4; 32; 256 ]

let experiments =
  [
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("tab2", tab2); ("fig13", fig13); ("fig14", fig14);
    ("fig15", fig15); ("tab3", tab3); ("fig16", fig16); ("fig17", fig17);
    ("fig18", fig18); ("bech", bech); ("abl", abl); ("store", store);
    ("shards", shards_bench); ("batch", batch_bench); ("packed", packed_bench);
    ("wal", wal_bench); ("cluster", cluster_bench);
    ("leafcache", leafcache_bench);
  ]

let () =
  let scale = ref quick_scale in
  let selected = ref [] in
  let metrics = ref false in
  let metrics_json = ref "" in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        scale := full_scale;
        parse rest
    | "--metrics" :: rest ->
        metrics := true;
        parse rest
    | "--metrics-json" :: file :: rest ->
        metrics_json := file;
        parse rest
    | "--keys" :: n :: rest ->
        scale := { !scale with keys = int_of_string n };
        parse rest
    | "--ops" :: n :: rest ->
        scale := { !scale with ops = int_of_string n };
        parse rest
    | "--threads" :: n :: rest ->
        scale := { !scale with threads = int_of_string n };
        parse rest
    | "--repeats" :: n :: rest ->
        scale := { !scale with repeats = int_of_string n };
        parse rest
    | ("--help" | "-h") :: _ ->
        Printf.printf
          "usage: main.exe [EXPERIMENT..] [--keys N] [--ops N] [--threads N] \
           [--repeats N] [--full] [--metrics] [--metrics-json FILE]\n\
           experiments: %s\n"
          (String.concat " " (List.map fst experiments));
        exit 0
    | name :: rest when List.mem_assoc name experiments ->
        selected := !selected @ [ name ];
        parse rest
    | name :: _ ->
        Printf.eprintf "unknown experiment or option: %s\n" name;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !metrics || !metrics_json <> "" then
    obs_sink := Bw_obs.To (Bw_obs.create ());
  let to_run = match !selected with [] -> List.map fst experiments | l -> l in
  let s = !scale in
  Printf.printf
    "OpenBw-Tree benchmark suite — keys=%d ops=%d threads=%d repeats=%d\n%!"
    s.keys s.ops s.threads s.repeats;
  let t0 = Unix.gettimeofday () in
  List.iter (fun name -> (List.assoc name experiments) s) to_run;
  Printf.printf "\nTotal bench time: %.1fs\n%!" (Unix.gettimeofday () -. t0);
  match !obs_sink with
  | Bw_obs.Null -> ()
  | Bw_obs.To reg ->
      let sn = Bw_obs.snapshot reg in
      if !metrics then Format.printf "%a@." Bw_obs.pp_snapshot sn;
      if !metrics_json <> "" then begin
        let oc = open_out !metrics_json in
        output_string oc (Bw_obs.snapshot_to_string sn);
        output_char oc '\n';
        close_out oc;
        Printf.printf "metrics: wrote %s\n%!" !metrics_json
      end
