(** Masstree (Mao, Kohler, Morris — EuroSys 2012): a trie of B+Trees keyed
    by successive 8-byte key slices, the index of Silo and a comparator in
    §6 of the paper.

    Each trie layer is a B+Tree over the unsigned 64-bit value of one key
    slice; a slice entry ("border link") can simultaneously hold terminal
    key/value bindings (keys ending within this slice group, disambiguated
    by their full key) and a pointer to the next deeper layer (keys that
    continue). Keys with shared prefixes therefore share layers, giving the
    paper's observed trie-like behaviour on Email keys.

    Concurrency follows Masstree's optimistic scheme, realized here with
    the same version-lock protocol as {!Btree_olc}: per-node version words,
    validating readers, lock-only-what-you-modify writers, eager splits on
    descent. Border-link contents are updated with CaS (terminal lists and
    next-layer installation), so readers never lock.

    Simplifications relative to the original C++ (documented in DESIGN.md):
    no permutation arrays (sorted arrays + shifts instead), no prefetching
    hints, and range scans work on int-keyed instances via layer-0
    in-order traversal only (sufficient for the YCSB-E workload). *)

module Counters = Bw_util.Counters

exception Restart

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) = struct
  type key = K.t
  type value = V.t

  let leaf_capacity = 16  (* Masstree uses 15-entry border nodes *)
  let inner_capacity = 16

  type slice = int64

  type lnode = {
    version : int Atomic.t;
    mutable count : int;
    keys : slice array;
    kind : kind;
  }

  and kind =
    | Border of border
    | Interior of interior

  and border = { links : link array; mutable next : lnode option }
  and interior = { children : lnode array }

  and link = {
    (* keys that end within this slice group: (full binary key, value);
       nearly always zero or one entry — more only for keys that are
       binary prefixes of each other within the slice *)
    terminals : (string * value Atomic.t) list Atomic.t;
    next_layer : layer option Atomic.t;
  }

  and layer = { root : lnode Atomic.t }

  type t = { top : layer }

  let cnt tid ev =
    if !Counters.enabled then Counters.incr Counters.global ~tid ev

  let new_border () =
    {
      version = Atomic.make 0;
      count = 0;
      keys = Array.make leaf_capacity 0L;
      kind =
        Border
          { links = Array.make leaf_capacity (Obj.magic 0 : link); next = None };
    }

  let new_interior () =
    {
      version = Atomic.make 0;
      count = 0;
      keys = Array.make inner_capacity 0L;
      kind =
        Interior { children = Array.make (inner_capacity + 1) (Obj.magic 0 : lnode) };
    }

  let new_layer () = { root = Atomic.make (new_border ()) }
  let create () = { top = new_layer () }

  let new_link () =
    { terminals = Atomic.make []; next_layer = Atomic.make None }

  (* --- version-lock primitives (same protocol as Btree_olc) --- *)

  let read_lock n =
    let v = Atomic.get n.version in
    if v land 1 = 1 then raise Restart;
    v

  let validate n v = if Atomic.get n.version <> v then raise Restart

  let upgrade n v =
    if not (Atomic.compare_and_set n.version v (v + 1)) then raise Restart

  let write_unlock n = Atomic.set n.version (Atomic.get n.version + 1)

  (* --- in-node search --- *)

  let lower_bound ~tid n (k : slice) =
    let count = min (max n.count 0) (Array.length n.keys) in
    let lo = ref 0 and hi = ref count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      cnt tid Counters.Key_compare;
      if Int64.unsigned_compare n.keys.(mid) k < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let child_for ~tid n k =
    match n.kind with
    | Interior i ->
        let pos = lower_bound ~tid n k in
        let pos =
          if pos < n.count && Int64.unsigned_compare n.keys.(pos) k = 0 then
            pos + 1
          else pos
        in
        i.children.(pos)
    | Border _ -> assert false

  let is_full n =
    match n.kind with
    | Border _ -> n.count >= leaf_capacity
    | Interior _ -> n.count >= inner_capacity - 1

  let split_node child =
    let mid = child.count / 2 in
    match child.kind with
    | Border b ->
        let right = new_border () in
        let rb = match right.kind with Border rb -> rb | _ -> assert false in
        let moved = child.count - mid in
        Array.blit child.keys mid right.keys 0 moved;
        Array.blit b.links mid rb.links 0 moved;
        right.count <- moved;
        rb.next <- b.next;
        b.next <- Some right;
        child.count <- mid;
        (right.keys.(0), right)
    | Interior i ->
        let right = new_interior () in
        let ri = match right.kind with Interior ri -> ri | _ -> assert false in
        let sep = child.keys.(mid) in
        let moved = child.count - mid - 1 in
        Array.blit child.keys (mid + 1) right.keys 0 moved;
        Array.blit i.children (mid + 1) ri.children 0 (moved + 1);
        right.count <- moved;
        child.count <- mid;
        (sep, right)

  let insert_into_interior parent sep right =
    match parent.kind with
    | Interior i ->
        let pos = ref parent.count in
        while
          !pos > 0 && Int64.unsigned_compare parent.keys.(!pos - 1) sep > 0
        do
          parent.keys.(!pos) <- parent.keys.(!pos - 1);
          i.children.(!pos + 1) <- i.children.(!pos);
          decr pos
        done;
        parent.keys.(!pos) <- sep;
        i.children.(!pos + 1) <- right;
        parent.count <- parent.count + 1
    | Border _ -> assert false

  let rec retry ~tid f =
    try f () with
    | Restart | Invalid_argument _ ->
        cnt tid Counters.Restart;
        Domain.cpu_relax ();
        retry ~tid f

  (* Descend one layer's B+Tree to the border node owning [slice]; eager
     splits when [grow] is set. Calls [at_border border version]. *)
  let descend_layer (layer : layer) ~tid slice ~grow at_border =
    let root = Atomic.get layer.root in
    let v = read_lock root in
    if Atomic.get layer.root != root then raise Restart;
    if grow && is_full root then begin
      upgrade root v;
      if Atomic.get layer.root != root then begin
        write_unlock root;
        raise Restart
      end;
      let sep, right = split_node root in
      let new_root = new_interior () in
      (match new_root.kind with
      | Interior i ->
          new_root.keys.(0) <- sep;
          i.children.(0) <- root;
          i.children.(1) <- right;
          new_root.count <- 1
      | Border _ -> assert false);
      let ok = Atomic.compare_and_set layer.root root new_root in
      assert ok;
      write_unlock root;
      raise Restart
    end;
    let rec go node v =
      cnt tid Counters.Node_visit;
      match node.kind with
      | Border _ -> at_border node v
      | Interior _ ->
          cnt tid Counters.Pointer_deref;
          let child = child_for ~tid node slice in
          validate node v;
          let cv = read_lock child in
          if grow && is_full child then begin
            upgrade node v;
            (try upgrade child cv
             with Restart ->
               write_unlock node;
               raise Restart);
            let sep, right = split_node child in
            insert_into_interior node sep right;
            write_unlock child;
            write_unlock node;
            raise Restart
          end
          else begin
            validate node v;
            go child cv
          end
    in
    go root v

  (* find the border link for [slice], or None; read-only *)
  let find_link (layer : layer) ~tid slice =
    retry ~tid @@ fun () ->
    descend_layer layer ~tid slice ~grow:false @@ fun border v ->
    let b = match border.kind with Border b -> b | _ -> assert false in
    let pos = lower_bound ~tid border slice in
    let res =
      if pos < border.count && Int64.unsigned_compare border.keys.(pos) slice = 0
      then Some b.links.(pos)
      else None
    in
    validate border v;
    res

  (* find the border link for [slice], inserting a fresh one if absent *)
  let find_or_add_link (layer : layer) ~tid slice =
    retry ~tid @@ fun () ->
    descend_layer layer ~tid slice ~grow:true @@ fun border v ->
    let b = match border.kind with Border b -> b | _ -> assert false in
    upgrade border v;
    let pos = lower_bound ~tid border slice in
    if pos < border.count && Int64.unsigned_compare border.keys.(pos) slice = 0
    then begin
      let link = b.links.(pos) in
      write_unlock border;
      link
    end
    else begin
      let link = new_link () in
      cnt tid Counters.Allocation;
      Array.blit border.keys pos border.keys (pos + 1) (border.count - pos);
      Array.blit b.links pos b.links (pos + 1) (border.count - pos);
      border.keys.(pos) <- slice;
      b.links.(pos) <- link;
      border.count <- border.count + 1;
      write_unlock border;
      link
    end

  (* --- layered operations --- *)

  let rec add_terminal ~tid link bkey value =
    let old = Atomic.get link.terminals in
    if List.exists (fun (k, _) -> String.equal k bkey) old then false
    else begin
      cnt tid Counters.Cas_attempt;
      if
        Atomic.compare_and_set link.terminals old
          ((bkey, Atomic.make value) :: old)
      then true
      else begin
        cnt tid Counters.Cas_failure;
        add_terminal ~tid link bkey value
      end
    end

  let rec get_or_make_next_layer link =
    match Atomic.get link.next_layer with
    | Some l -> l
    | None ->
        let fresh = new_layer () in
        if Atomic.compare_and_set link.next_layer None (Some fresh) then fresh
        else get_or_make_next_layer link

  let insert t ~tid k value =
    let bkey = K.to_binary k in
    let slices = Bw_util.Key_codec.slice_count bkey in
    let rec go layer d =
      let slice = Bw_util.Key_codec.slice64 bkey d in
      let link = find_or_add_link layer ~tid slice in
      if d = slices - 1 then add_terminal ~tid link bkey value
      else begin
        cnt tid Counters.Pointer_deref;
        go (get_or_make_next_layer link) (d + 1)
      end
    in
    go t.top 0

  let lookup t ~tid k =
    let bkey = K.to_binary k in
    let slices = Bw_util.Key_codec.slice_count bkey in
    let rec go layer d =
      let slice = Bw_util.Key_codec.slice64 bkey d in
      match find_link layer ~tid slice with
      | None -> None
      | Some link ->
          if d = slices - 1 then
            List.find_opt
              (fun (kb, _) -> String.equal kb bkey)
              (Atomic.get link.terminals)
            |> Option.map (fun (_, v) -> Atomic.get v)
          else begin
            cnt tid Counters.Pointer_deref;
            match Atomic.get link.next_layer with
            | None -> None
            | Some next -> go next (d + 1)
          end
    in
    go t.top 0

  let update t ~tid k value =
    let bkey = K.to_binary k in
    let slices = Bw_util.Key_codec.slice_count bkey in
    let rec go layer d =
      let slice = Bw_util.Key_codec.slice64 bkey d in
      match find_link layer ~tid slice with
      | None -> false
      | Some link ->
          if d = slices - 1 then
            match
              List.find_opt
                (fun (kb, _) -> String.equal kb bkey)
                (Atomic.get link.terminals)
            with
            | Some (_, cell) ->
                Atomic.set cell value;
                true
            | None -> false
          else (
            match Atomic.get link.next_layer with
            | None -> false
            | Some next -> go next (d + 1))
    in
    go t.top 0

  (* Deletion detaches the terminal binding; border entries and drained
     layers are left in place (Masstree also defers removal — its border
     entries are reclaimed by RCU epochs, not eagerly). *)
  let delete t ~tid k =
    let bkey = K.to_binary k in
    let slices = Bw_util.Key_codec.slice_count bkey in
    let rec go layer d =
      let slice = Bw_util.Key_codec.slice64 bkey d in
      match find_link layer ~tid slice with
      | None -> false
      | Some link ->
          if d = slices - 1 then begin
            let rec drop () =
              let old = Atomic.get link.terminals in
              if not (List.exists (fun (kb, _) -> String.equal kb bkey) old)
              then false
              else begin
                let rest =
                  List.filter (fun (kb, _) -> not (String.equal kb bkey)) old
                in
                if Atomic.compare_and_set link.terminals old rest then true
                else drop ()
              end
            in
            drop ()
          end
          else (
            match Atomic.get link.next_layer with
            | None -> false
            | Some next -> go next (d + 1))
    in
    go t.top 0

  (* Range scan: seek within each layer using the corresponding slice of
     the seek key, then stream border nodes left-to-right, descending into
     sub-layers depth-first. Layers whose path already exceeds the seek
     key are unconstrained and streamed wholesale. *)
  let scan t ~tid k ~n visit =
    if n <= 0 then 0
    else begin
    let bkey = K.to_binary k in
    let items =
      retry ~tid @@ fun () ->
      let acc = ref [] in
      let visited = ref 0 in
      let exception Done in
      let slice_of d = Bw_util.Key_codec.slice64 bkey d in
      let rec visit_link link ~depth ~constrained =
        (match Atomic.get link.terminals with
        | [] -> ()
        | terms ->
            List.iter
              (fun (kb, v) ->
                if (not constrained) || String.compare kb bkey >= 0 then begin
                  acc := (kb, Atomic.get v) :: !acc;
                  incr visited;
                  if !visited >= n then raise Done
                end)
              (List.sort (fun (a, _) (b, _) -> String.compare a b) terms));
      match Atomic.get link.next_layer with
      | None -> ()
      | Some sub -> visit_layer sub ~depth:(depth + 1) ~constrained
    and visit_layer layer ~depth ~constrained =
      (* when still on the seek key's path, start at its slice for this
         layer and prune everything below it; otherwise stream all *)
      let from_slice = if constrained then slice_of depth else 0L in
      let border0 =
        descend_layer layer ~tid from_slice ~grow:false (fun b v ->
            ignore v;
            b)
      in
      let rec walk border =
        let b = match border.kind with Border b -> b | _ -> assert false in
        let v = read_lock border in
        let count = border.count in
        let entries =
          Array.init count (fun i -> (border.keys.(i), b.links.(i)))
        in
        let next = b.next in
        validate border v;
        Array.iter
          (fun (s, link) ->
            if not constrained then visit_link link ~depth ~constrained:false
            else
              let c = Int64.unsigned_compare s from_slice in
              if c > 0 then visit_link link ~depth ~constrained:false
              else if c = 0 then visit_link link ~depth ~constrained:true
              else () (* strictly below the seek slice: prune *))
          entries;
        match next with Some nx -> walk nx | None -> ()
      in
      walk border0
      in
      (try visit_layer t.top ~depth:0 ~constrained:true with Done -> ());
      !acc
    in
    (* terminals store the exact binary key, so recovery is direct *)
    List.fold_left
      (fun m (kb, v) ->
        visit (K.of_binary kb) v;
        m + 1)
      0 (List.rev items)
    end

  (* --- introspection --- *)

  let cardinal t =
    let rec layer_count (layer : layer) =
      let rec leftmost node =
        match node.kind with
        | Border _ -> node
        | Interior i -> leftmost i.children.(0)
      in
      let rec walk node acc =
        let b = match node.kind with Border b -> b | _ -> assert false in
        let acc = ref acc in
        for i = 0 to node.count - 1 do
          let link = b.links.(i) in
          acc := !acc + List.length (Atomic.get link.terminals);
          match Atomic.get link.next_layer with
          | Some sub -> acc := !acc + layer_count sub
          | None -> ()
        done;
        match b.next with Some nx -> walk nx !acc | None -> !acc
      in
      walk (leftmost (Atomic.get layer.root)) 0
    in
    layer_count t.top

  let memory_words t = Obj.reachable_words (Obj.repr t)
end
