(** Masstree (Mao, Kohler, Morris — EuroSys 2012): a trie of B+Tree layers
    keyed by successive 8-byte key slices, one of the paper's §6
    comparators.

    Each layer is a small B+Tree over one unsigned 64-bit slice of the
    binary key; a border entry can simultaneously hold terminal bindings
    (keys ending within its slice group) and a pointer to a deeper layer
    (keys that continue), so keys sharing prefixes share layers.
    Synchronization is version-lock optimistic (readers validate, writers
    lock, eager splits); border-link contents are CaS-updated.

    Simplifications vs. the original C++ are listed in DESIGN.md. *)

exception Restart
(** Internal retry signal; never escapes the public functions. *)

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) : sig
  type key = K.t
  type value = V.t
  type t

  val create : unit -> t

  val insert : t -> tid:int -> key -> value -> bool
  val lookup : t -> tid:int -> key -> value option
  val update : t -> tid:int -> key -> value -> bool
  val delete : t -> tid:int -> key -> bool

  val scan : t -> tid:int -> key -> n:int -> (key -> value -> unit) -> int
  (** Streams border nodes within each layer from the seek key's slice,
      descending into deeper layers depth-first; hands up to [n] items to
      the visitor once the attempt validates and returns the count. *)

  val cardinal : t -> int
  val memory_words : t -> int
end
