(** Shared contracts for all six indexes under comparison (§6).

    Every index — OpenBw-Tree, baseline Bw-Tree, SkipList, Masstree,
    B+Tree-OLC and ART-OLC — is driven through {!INDEX}, so the workload
    harness, the tests and the benchmarks treat them uniformly. *)

(** 64-bit integer keys (Mono-Int / Rand-Int workloads). *)
module Int_key = struct
  type t = int

  let compare = Int.compare
  let to_binary = Bw_util.Key_codec.of_int
  let of_binary = Bw_util.Key_codec.to_int
  let dummy = 0
  let pp = Format.pp_print_int
end

(** String keys (Email workload: fixed 32-byte strings). *)
module String_key = struct
  type t = string

  let compare = String.compare
  let to_binary = Bw_util.Key_codec.of_string
  let of_binary s = s
  let dummy = ""
  let pp = Format.pp_print_string
end

(** Values are 64-bit integers standing in for tuple pointers (§5.1). *)
module Int_value = struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end

(** The uniform index driver. [tid] is the dense worker-thread id used for
    striped statistics and epoch membership. *)
module type INDEX = sig
  type t
  type key

  val name : string

  val create : unit -> t

  val insert : t -> tid:int -> key -> int -> bool
  (** [false] if the key was already present (unique-key semantics). *)

  val read : t -> tid:int -> key -> int option
  val update : t -> tid:int -> key -> int -> bool
  val remove : t -> tid:int -> key -> bool

  val scan : t -> tid:int -> key -> n:int -> (key -> int -> unit) -> int
  (** [scan t ~tid k ~n visit] walks up to [n] items starting at the first
      key >= [k] in key order, calling [visit key value] on each, and
      returns the number visited (the YCSB-E operation). Under optimistic
      concurrency an attempt that observes interference is retried;
      [visit] is called exactly once per reported item, after the attempt
      that produced it validated. *)

  val start_aux : t -> unit
  (** Start any auxiliary threads the design needs (epoch advancer,
      skip-list tower builder). Idempotent. *)

  val stop_aux : t -> unit

  val thread_done : t -> tid:int -> unit
  (** Worker [tid] will issue no more operations (releases its epoch). *)

  val memory_words : t -> int
  (** Live heap words reachable from the index, for the Fig. 15 memory
      comparison. *)
end

type 'k index = (module INDEX with type key = 'k)

(* ------------------------------------------------------------------ *)
(* Drivers: a uniform closure-record view of one index instance        *)
(* ------------------------------------------------------------------ *)

(** One operation of a multi-op batch, in driver terms (unique-key
    point ops; [Bop_remove] needs no value, like {!INDEX.remove}). *)
type 'k batch_op =
  | Bop_insert of 'k * int
  | Bop_update of 'k * int
  | Bop_upsert of 'k * int
  | Bop_remove of 'k
  | Bop_read of 'k

type batch_result =
  | Bres_applied of bool  (** writes: the point-op boolean *)
  | Bres_value of int option  (** [Bop_read]: the visible value *)
  | Bres_bad_key
      (** backends only: this slot's binary key failed to decode; the
          rest of the batch still executed *)

(** A first-class index instance: the closure-record form of {!INDEX}
    that the harness, the benchmarks, the stress checker, the serving
    layer and the shard router all consume. Anything that satisfies this
    record — a single tree, a range-partitioned forest of trees
    ({!Bw_shard.route}), an instrumented wrapper — is interchangeable
    everywhere a driver is accepted. *)
type 'k driver = {
  name : string;
  insert : tid:int -> 'k -> int -> bool;
  read : tid:int -> 'k -> int option;
  update : tid:int -> 'k -> int -> bool;
  remove : tid:int -> 'k -> bool;
  scan : tid:int -> 'k -> n:int -> ('k -> int -> unit) -> int;
      (** Visitor scan with {!INDEX.scan}'s exactly-once semantics. *)
  batch : (tid:int -> 'k batch_op array -> batch_result array) option;
      (** Amortized multi-op execution, one result per op in submission
          order, equivalent to applying the ops sequentially. [None]
          (every index without a native batch path) makes {!exec_batch}
          fall back to the point ops, so batch callers need no special
          case per index. *)
  start_aux : unit -> unit;
  stop_aux : unit -> unit;
  thread_done : tid:int -> unit;
  memory_words : unit -> int;
}

let batch_op_key = function
  | Bop_insert (k, _)
  | Bop_update (k, _)
  | Bop_upsert (k, _)
  | Bop_remove k
  | Bop_read k ->
      k

let map_batch_op f = function
  | Bop_insert (k, v) -> Bop_insert (f k, v)
  | Bop_update (k, v) -> Bop_update (f k, v)
  | Bop_upsert (k, v) -> Bop_upsert (f k, v)
  | Bop_remove k -> Bop_remove (f k)
  | Bop_read k -> Bop_read (f k)

(* Upsert in point-op terms: retry until either arm wins, since between
   a failed update (absent) and the insert a concurrent writer may
   create the key, and vice versa. *)
let rec driver_upsert (d : 'k driver) ~tid k v =
  if d.update ~tid k v then true
  else if d.insert ~tid k v then true
  else driver_upsert d ~tid k v

let run_batch_seq (d : 'k driver) ~tid (ops : 'k batch_op array) :
    batch_result array =
  (* Bw_util.Arr: a batch-sized Array.map would force a minor
     collection per batch (young first element seeding a major-heap
     result array). *)
  Bw_util.Arr.map
    (function
      | Bop_insert (k, v) -> Bres_applied (d.insert ~tid k v)
      | Bop_update (k, v) -> Bres_applied (d.update ~tid k v)
      | Bop_upsert (k, v) -> Bres_applied (driver_upsert d ~tid k v)
      | Bop_remove k -> Bres_applied (d.remove ~tid k)
      | Bop_read k -> Bres_value (d.read ~tid k))
    ops

let exec_batch (d : 'k driver) ~tid (ops : 'k batch_op array) :
    batch_result array =
  match d.batch with
  | Some run -> run ~tid ops
  | None -> run_batch_seq d ~tid ops

(* ------------------------------------------------------------------ *)
(* Backends: the monomorphic binary-keyed view                         *)
(* ------------------------------------------------------------------ *)

type backend = string driver
(** A driver whose keys travel in their binary-comparable encoding
    ({!Bw_util.Key_codec}). This is the serving layer's contract: the
    wire protocol carries binary keys, so a backend closes over a
    concrete driver plus its key codec and the server's event loop never
    needs to be generic over the key type. *)

exception Bad_key of string
(** A syntactically invalid binary key reached a backend — a caller
    (protocol) error, not an index fault. *)

exception Read_only
(** A write reached an index that only serves reads — a following
    replica that has not been promoted. The server answers ERR; the
    index is untouched. *)

let backend_of_driver ?decode_scan_key ~(decode_key : string -> 'k)
    ~(encode_key : 'k -> string) (d : 'k driver) : backend =
  let key s =
    (* Key_codec decoders fail with Invalid_argument (and Failure from
       Scanf-style codecs); anything else — Out_of_memory, assertion
       failures inside the codec — is a real fault and must not be
       swallowed as a protocol error. *)
    match decode_key s with
    | k -> k
    | exception (Invalid_argument _ | Failure _) -> raise (Bad_key s)
  in
  (* A scan's start key is a lower bound over the binary key order, not
     necessarily a well-formed key: range boundaries and continuation
     cursors (last_key ^ "\000") fall between encoded keys. A codec may
     supply [decode_scan_key] mapping any binary bound to the smallest
     key at or above it ([None] = past every key, i.e. an empty scan). *)
  let scan_key =
    match decode_scan_key with
    | Some f -> f
    | None -> fun s -> Some (key s)
  in
  {
    name = d.name;
    insert = (fun ~tid k v -> d.insert ~tid (key k) v);
    read = (fun ~tid k -> d.read ~tid (key k));
    update = (fun ~tid k v -> d.update ~tid (key k) v);
    remove = (fun ~tid k -> d.remove ~tid (key k));
    scan =
      (fun ~tid k ~n visit ->
        match scan_key k with
        | Some k -> d.scan ~tid k ~n (fun k v -> visit (encode_key k) v)
        | None -> 0);
    batch =
      Option.map
        (fun run ~tid (ops : string batch_op array) ->
          (* Decode per slot so one undecodable key answers
             [Bres_bad_key] in place instead of poisoning the batch. *)
          let dec =
            Bw_util.Arr.map
              (fun op ->
                match map_batch_op key op with
                | op -> Some op
                | exception Bad_key _ -> None)
              ops
          in
          let good =
            Array.fold_left
              (fun a -> function Some _ -> a + 1 | None -> a)
              0 dec
          in
          if good = Array.length ops then
            run ~tid
              (Bw_util.Arr.map
                 (function Some op -> op | None -> assert false)
                 dec)
          else begin
            let pairs =
              List.filter_map
                (fun (i, op) -> Option.map (fun op -> (i, op)) op)
                (List.mapi (fun i op -> (i, op)) (Array.to_list dec))
            in
            let inner = Bw_util.Arr.of_list (List.map snd pairs) in
            let sub = run ~tid inner in
            let results = Array.make (Array.length ops) Bres_bad_key in
            List.iteri (fun j (i, _) -> results.(i) <- sub.(j)) pairs;
            results
          end)
        d.batch;
    start_aux = d.start_aux;
    stop_aux = d.stop_aux;
    thread_done = d.thread_done;
    memory_words = d.memory_words;
  }

let backend_of_int_driver (d : int driver) : backend =
  backend_of_driver ~decode_scan_key:Bw_util.Key_codec.int_at_least
    ~decode_key:Bw_util.Key_codec.to_int ~encode_key:Bw_util.Key_codec.of_int d

let backend_of_str_driver (d : string driver) : backend =
  backend_of_driver ~decode_key:(fun s -> s) ~encode_key:(fun s -> s) d
