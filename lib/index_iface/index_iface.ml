(** Shared contracts for all six indexes under comparison (§6).

    Every index — OpenBw-Tree, baseline Bw-Tree, SkipList, Masstree,
    B+Tree-OLC and ART-OLC — is driven through {!INDEX}, so the workload
    harness, the tests and the benchmarks treat them uniformly. *)

(** 64-bit integer keys (Mono-Int / Rand-Int workloads). *)
module Int_key = struct
  type t = int

  let compare = Int.compare
  let to_binary = Bw_util.Key_codec.of_int
  let of_binary = Bw_util.Key_codec.to_int
  let dummy = 0
  let pp = Format.pp_print_int
end

(** String keys (Email workload: fixed 32-byte strings). *)
module String_key = struct
  type t = string

  let compare = String.compare
  let to_binary = Bw_util.Key_codec.of_string
  let of_binary s = s
  let dummy = ""
  let pp = Format.pp_print_string
end

(** Values are 64-bit integers standing in for tuple pointers (§5.1). *)
module Int_value = struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end

(** The uniform index driver. [tid] is the dense worker-thread id used for
    striped statistics and epoch membership. *)
module type INDEX = sig
  type t
  type key

  val name : string

  val create : unit -> t

  val insert : t -> tid:int -> key -> int -> bool
  (** [false] if the key was already present (unique-key semantics). *)

  val read : t -> tid:int -> key -> int option
  val update : t -> tid:int -> key -> int -> bool
  val remove : t -> tid:int -> key -> bool

  val scan : t -> tid:int -> key -> n:int -> (key -> int -> unit) -> int
  (** [scan t ~tid k ~n visit] walks up to [n] items starting at the first
      key >= [k] in key order, calling [visit key value] on each, and
      returns the number visited (the YCSB-E operation). Under optimistic
      concurrency an attempt that observes interference is retried;
      [visit] is called exactly once per reported item, after the attempt
      that produced it validated. *)

  val start_aux : t -> unit
  (** Start any auxiliary threads the design needs (epoch advancer,
      skip-list tower builder). Idempotent. *)

  val stop_aux : t -> unit

  val thread_done : t -> tid:int -> unit
  (** Worker [tid] will issue no more operations (releases its epoch). *)

  val memory_words : t -> int
  (** Live heap words reachable from the index, for the Fig. 15 memory
      comparison. *)
end

type 'k index = (module INDEX with type key = 'k)
