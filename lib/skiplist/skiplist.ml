(** Lock-free skip list in the spirit of the "No Hot Spot" non-blocking
    skip list (Crain, Gramoli, Raynal — ICDCS 2013), the lock-free
    comparator of §6.

    The bottom level is a Harris-style lock-free linked list: insertion is
    one CaS; deletion first marks the node's successor pointer (logical
    delete), then traversals physically unlink marked nodes.

    Tower policy (§6.1 explains the paper's observations by this design):

    - {b Background} (the paper's configuration): worker threads insert at
      the bottom level only. A maintenance thread periodically scans the
      bottom level and rebuilds the upper index levels, which it alone
      writes. Under insert bursts the index levels lag and traversals
      degrade toward a linked-list walk — exactly the behaviour the paper
      reports.
    - {b Inline}: the inserting thread raises its own tower with CaS at
      each level (a classic Pugh/Fraser-style lock-free skip list), as an
      ablation showing the cost/benefit of the background design. *)

module Counters = Bw_util.Counters

type tower_policy = Background | Inline

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) = struct
  type key = K.t
  type value = V.t

  let max_level = 20

  (* A successor pointer is either clean or marked; marking freezes the
     node (logical deletion) because every mutation CaSes against a clean
     value. *)
  type succ = Tail | Next of node | Marked of node | Marked_tail

  and node = {
    key : key;
    value : value Atomic.t;  (* in-place updates *)
    nexts : succ Atomic.t array;  (* tower; slot 0 is the data level *)
    level : int;  (* tower height in use, >= 1 *)
  }

  type t = {
    head : node;  (* sentinel; key is never examined *)
    policy : tower_policy;
    rng_seed : int Atomic.t;
    mutable maintenance : unit Domain.t option;
    stop : bool Atomic.t;
    interval_s : float;
  }

  let cnt tid ev =
    if !Counters.enabled then Counters.incr Counters.global ~tid ev

  let make_node k v level =
    {
      key = k;
      value = Atomic.make v;
      nexts = Array.init level (fun _ -> Atomic.make Tail);
      level;
    }

  let create ?(policy = Background) ?(interval_s = 0.01) () =
    {
      head = make_node K.dummy (Obj.magic 0 : value) max_level;
      policy;
      rng_seed = Atomic.make 0x9E3779B9;
      maintenance = None;
      stop = Atomic.make false;
      interval_s;
    }

  let is_marked = function Marked _ | Marked_tail -> true | Tail | Next _ -> false
  let mark_of = function
    | Next n -> Marked n
    | Tail -> Marked_tail
    | s -> s

  let unmarked_next = function
    | Next n | Marked n -> Some n
    | Tail | Marked_tail -> None

  (* --- bottom-level search with physical unlinking of marked nodes --- *)

  (* Result of a level search: the predecessor node, the exact successor
     value physically read from [pred.nexts.(lvl)] (needed as the CaS
     expected value — compare_and_set uses physical equality), and the
     successor node if any. *)
  type found = { pred : node; succ_val : succ; succ_node : node option }

  (* Find the position for [k] at level [lvl] such that
     pred.key < k <= succ.key, snipping out marked nodes on the way
     (Harris). Raises [Exit] internally to restart when an unlink CaS
     fails. *)
  let rec find_level ~tid t k lvl =
    let rec advance pred =
      cnt tid Counters.Pointer_deref;
      match Atomic.get pred.nexts.(lvl) with
      | Tail -> { pred; succ_val = Tail; succ_node = None }
      | Marked _ | Marked_tail ->
          (* predecessor was deleted under us; restart the search *)
          raise Exit
      | Next curr as pv -> (
          (* skip over logically-deleted nodes, unlinking them *)
          match Atomic.get curr.nexts.(lvl) with
          | Marked m ->
              if not (Atomic.compare_and_set pred.nexts.(lvl) pv (Next m))
              then raise Exit
              else advance pred
          | Marked_tail ->
              if not (Atomic.compare_and_set pred.nexts.(lvl) pv Tail) then
                raise Exit
              else advance pred
          | Tail | Next _ ->
              cnt tid Counters.Key_compare;
              if K.compare curr.key k < 0 then advance curr
              else { pred; succ_val = pv; succ_node = Some curr })
    in
    try advance (start_pred ~tid t k lvl) with
    | Exit ->
        (* the hinted predecessor was deleted under us; retry from the
           head, which is never marked, guaranteeing progress *)
        find_level_from_head ~tid t k lvl

  and find_level_from_head ~tid t k lvl =
    let rec advance pred =
      cnt tid Counters.Pointer_deref;
      match Atomic.get pred.nexts.(lvl) with
      | Tail -> { pred; succ_val = Tail; succ_node = None }
      | Marked _ | Marked_tail -> raise Exit
      | Next curr as pv -> (
          match Atomic.get curr.nexts.(lvl) with
          | Marked m ->
              if not (Atomic.compare_and_set pred.nexts.(lvl) pv (Next m))
              then raise Exit
              else advance pred
          | Marked_tail ->
              if not (Atomic.compare_and_set pred.nexts.(lvl) pv Tail) then
                raise Exit
              else advance pred
          | Tail | Next _ ->
              cnt tid Counters.Key_compare;
              if K.compare curr.key k < 0 then advance curr
              else { pred; succ_val = pv; succ_node = Some curr })
    in
    try advance t.head with Exit -> find_level_from_head ~tid t k lvl

  (* Use the index levels to find a good starting predecessor for [lvl]:
     descend from the top, staying strictly below [k]. Index levels are
     only hints — they may lag behind the data level. *)
  and start_pred ~tid t k lvl =
    let pred = ref t.head in
    for l = max_level - 1 downto lvl + 1 do
      let continue_ = ref true in
      while !continue_ do
        cnt tid Counters.Pointer_deref;
        match Atomic.get !pred.nexts.(l) with
        | (Next n | Marked n)
          when K.compare n.key k < 0
               && not (is_marked (Atomic.get n.nexts.(l))) ->
            (* step only onto nodes still clean at this level; towers are
               marked top-down, so clean-at-l implies clean at every
               level below l at this instant *)
            cnt tid Counters.Key_compare;
            pred := n
        | _ -> continue_ := false
      done
    done;
    !pred

  (* --- operations --- *)

  let random_level t =
    (* xorshift over a shared seed; contention here is irrelevant because
       inline towers are the ablation, not the measured configuration *)
    let rec mix x =
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      x lxor (x lsl 17)
    and draw () =
      let s = Atomic.get t.rng_seed in
      let s' = mix (if s = 0 then 1 else s) land max_int in
      if Atomic.compare_and_set t.rng_seed s s' then s' else draw ()
    in
    let r = draw () in
    let rec height l r =
      if l >= max_level then max_level
      else if r land 1 = 1 then height (l + 1) (r lsr 1)
      else l
    in
    height 1 r

  (* raise node's tower: link it at levels 1..level-1 *)
  let rec link_level ~tid t node lvl =
    if lvl < node.level then begin
      let f = find_level ~tid t node.key lvl in
      (* the node may have been deleted while we were linking *)
      if is_marked (Atomic.get node.nexts.(0)) then ()
      else
        match f.succ_node with
        | Some s when s == node ->
            (* already linked at this level *)
            link_level ~tid t node (lvl + 1)
        | _ ->
            Atomic.set node.nexts.(lvl) f.succ_val;
            if
              Atomic.compare_and_set f.pred.nexts.(lvl) f.succ_val
                (Next node)
            then link_level ~tid t node (lvl + 1)
            else link_level ~tid t node lvl (* retry this level *)
    end

  let insert t ~tid k v =
    let rec go () =
      let f = find_level ~tid t k 0 in
      match f.succ_node with
      | Some s when K.compare s.key k = 0 ->
          if is_marked (Atomic.get s.nexts.(0)) then go ()
            (* a deleted node with our key is still linked: retry until a
               traversal unlinks it *)
          else false
      | _ ->
          (* both policies draw a tower height at creation (the arrays are
             fixed); Background defers *linking* the upper levels to the
             maintenance thread, which is what makes the index lag under
             insert bursts *)
          let level = random_level t in
          let node = make_node k v level in
          cnt tid Counters.Allocation;
          Atomic.set node.nexts.(0) f.succ_val;
          cnt tid Counters.Cas_attempt;
          if Atomic.compare_and_set f.pred.nexts.(0) f.succ_val (Next node)
          then begin
            if t.policy = Inline && level > 1 then link_level ~tid t node 1;
            true
          end
          else begin
            cnt tid Counters.Cas_failure;
            cnt tid Counters.Restart;
            go ()
          end
    in
    go ()

  let lookup t ~tid k =
    let f = find_level ~tid t k 0 in
    match f.succ_node with
    | Some s when K.compare s.key k = 0 && not (is_marked (Atomic.get s.nexts.(0)))
      ->
        Some (Atomic.get s.value)
    | _ -> None

  let update t ~tid k v =
    let f = find_level ~tid t k 0 in
    match f.succ_node with
    | Some s when K.compare s.key k = 0 && not (is_marked (Atomic.get s.nexts.(0)))
      ->
        Atomic.set s.value v;
        true
    | _ -> false

  let delete t ~tid k =
    (* mark one tower pointer; retried until it is marked (by anyone) *)
    let rec mark_slot cell =
      match Atomic.get cell with
      | Marked _ | Marked_tail -> ()
      | (Tail | Next _) as clean ->
          cnt tid Counters.Cas_attempt;
          if not (Atomic.compare_and_set cell clean (mark_of clean)) then begin
            cnt tid Counters.Cas_failure;
            mark_slot cell
          end
    in
    let rec go () =
      let f = find_level ~tid t k 0 in
      match f.succ_node with
      | Some s when K.compare s.key k = 0 -> (
          (* Fraser-style: freeze the index levels top-down first so
             traversals can physically unlink the node at every level,
             then decide the logical deletion at the data level *)
          for lvl = s.level - 1 downto 1 do
            mark_slot s.nexts.(lvl)
          done;
          match Atomic.get s.nexts.(0) with
          | Marked _ | Marked_tail -> false (* someone else deleted it *)
          | (Tail | Next _) as clean ->
              cnt tid Counters.Cas_attempt;
              if Atomic.compare_and_set s.nexts.(0) clean (mark_of clean)
              then begin
                (* physical unlink at every level, best effort *)
                (try
                   for lvl = s.level - 1 downto 0 do
                     ignore (find_level ~tid t k lvl)
                   done
                 with _ -> ());
                true
              end
              else begin
                cnt tid Counters.Cas_failure;
                go ()
              end)
      | _ -> false
    in
    go ()

  let scan t ~tid k ~n visit =
    let f = find_level ~tid t k 0 in
    let succ = f.succ_node in
    let visited = ref 0 in
    (* lock-free list walks never restart, so each live node can be handed
       to the visitor as it is passed *)
    let rec walk = function
      | None -> ()
      | Some node ->
          if !visited < n then begin
            (match Atomic.get node.nexts.(0) with
            | Marked _ | Marked_tail ->
                (* skip logically-deleted nodes *)
                walk (unmarked_next (Atomic.get node.nexts.(0)))
            | (Tail | Next _) as s ->
                visit node.key (Atomic.get node.value);
                incr visited;
                cnt tid Counters.Pointer_deref;
                walk (unmarked_next s))
          end
    in
    walk succ;
    !visited

  (* --- background tower maintenance --- *)

  (* Rebuild the index levels from the current bottom level: each live
     node is linked at every level its tower covers. Only this thread
     writes levels >= 1, so no CaS is needed (readers treat index levels
     as hints and re-verify at the data level). *)
  let rebuild_towers t =
    let preds = Array.make max_level t.head in
    let rec walk node_opt =
      match node_opt with
      | None -> ()
      | Some node ->
          let s = Atomic.get node.nexts.(0) in
          if not (is_marked s) then
            for l = 1 to node.level - 1 do
              Atomic.set preds.(l).nexts.(l) (Next node);
              preds.(l) <- node
            done;
          walk (unmarked_next s)
    in
    walk (unmarked_next (Atomic.get t.head.nexts.(0)));
    (* terminate the rebuilt levels *)
    for l = 1 to max_level - 1 do
      Atomic.set preds.(l).nexts.(l) Tail
    done

  let maintenance_pass t = rebuild_towers t

  let start_aux t =
    match (t.policy, t.maintenance) with
    | Inline, _ -> () (* inline towers need no maintenance thread *)
    | Background, Some _ -> ()
    | Background, None ->
        Atomic.set t.stop false;
        t.maintenance <-
          Some
            (Domain.spawn (fun () ->
                 while not (Atomic.get t.stop) do
                   Unix.sleepf t.interval_s;
                   maintenance_pass t
                 done))

  let stop_aux t =
    match t.maintenance with
    | None -> ()
    | Some d ->
        Atomic.set t.stop true;
        Domain.join d;
        t.maintenance <- None

  let cardinal t =
    let rec go acc = function
      | None -> acc
      | Some node ->
          let s = Atomic.get node.nexts.(0) in
          let acc = if is_marked s then acc else acc + 1 in
          go acc (unmarked_next s)
    in
    go 0 (unmarked_next (Atomic.get t.head.nexts.(0)))

  let memory_words t = Obj.reachable_words (Obj.repr t)

  let verify_invariants t =
    let rec go prev = function
      | None -> ()
      | Some node ->
          let s = Atomic.get node.nexts.(0) in
          (match prev with
          | Some pk ->
              if K.compare pk node.key >= 0 then
                failwith "skiplist: keys out of order"
          | None -> ());
          let prev = if is_marked s then prev else Some node.key in
          go prev (unmarked_next s)
    in
    go None (unmarked_next (Atomic.get t.head.nexts.(0)))
end
