(** Lock-free skip list in the spirit of the "No Hot Spot" non-blocking
    skip list (Crain, Gramoli, Raynal — ICDCS 2013), the lock-free
    comparator of §6 of the paper.

    The bottom level is a Harris-style linked list (CaS insertion, marked
    pointers for logical deletion, cooperative unlinking). Deletion marks
    the whole tower top-down (Fraser) so traversals can physically unlink
    every level. *)

type tower_policy =
  | Background
      (** The paper's configuration: workers link only the data level; a
          maintenance thread periodically rebuilds the index levels, which
          it alone writes. Under insert bursts the index lags and searches
          degrade toward list walks — the §6.1 behaviour. *)
  | Inline
      (** Classic lock-free towers: the inserting thread raises its own
          tower with CaS per level (ablation A1). *)

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) : sig
  type key = K.t
  type value = V.t
  type t

  val create : ?policy:tower_policy -> ?interval_s:float -> unit -> t
  (** Default policy [Background] with a 10 ms maintenance interval. *)

  val insert : t -> tid:int -> key -> value -> bool
  val lookup : t -> tid:int -> key -> value option
  val update : t -> tid:int -> key -> value -> bool
  val delete : t -> tid:int -> key -> bool

  val scan : t -> tid:int -> key -> n:int -> (key -> value -> unit) -> int
  (** Walks the data level from the first key >= the argument, handing up
      to [n] live items to the visitor in key order; returns the count
      visited. *)

  val start_aux : t -> unit
  (** Start the maintenance domain ([Background] policy only). *)

  val stop_aux : t -> unit

  val maintenance_pass : t -> unit
  (** One synchronous tower rebuild (what the background domain runs). *)

  val cardinal : t -> int
  val memory_words : t -> int

  val verify_invariants : t -> unit
  (** Data-level key ordering; quiescent callers only. *)
end
