(** Adaptive Radix Tree (Leis et al., ICDE 2013) with Optimistic Lock
    Coupling (Leis et al., DaMoN 2016) — the fastest comparator in the
    paper's evaluation (§6).

    Keys are binary-comparable byte strings (produced by [K.to_binary]); a
    0x00 terminator byte is appended so that no stored key is a proper
    prefix of another, the standard ART requirement. Inner nodes adapt
    among the four layouts Node4 / Node16 / Node48 / Node256 and use
    pessimistic path compression (the full compressed prefix is stored).

    Synchronization follows OLC: each inner node has a version word (bit 0
    = lock); readers validate versions instead of locking, writers lock
    only the nodes they mutate, and node replacement (growth, leaf
    expansion, prefix splits) locks the parent and the node being
    replaced.

    Deletion removes the leaf and collapses single-child Node4s back into
    their parent (restoring path compression); node layouts are not shrunk
    otherwise. *)

module Counters = Bw_util.Counters

exception Restart

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) = struct
  type key = K.t
  type value = V.t

  type node =
    | Empty
    | Leaf of { bkey : string; value : value Atomic.t }
    | N4 of {
        hdr : hdr;
        keys : Bytes.t;  (* 4 bytes *)
        children : node array;  (* 4 *)
        mutable count : int;
      }
    | N16 of {
        hdr : hdr;
        keys : Bytes.t;  (* 16, sorted *)
        children : node array;
        mutable count : int;
      }
    | N48 of {
        hdr : hdr;
        index : Bytes.t;  (* 256 bytes; 0xFF = empty, else child slot *)
        children : node array;  (* 48 *)
        mutable count : int;
      }
    | N256 of {
        hdr : hdr;
        children : node array;  (* 256, Empty = none *)
        mutable count : int;
      }

  and hdr = { version : int Atomic.t; mutable prefix : string }

  type t = { root : node Atomic.t }

  let cnt tid ev =
    if !Counters.enabled then Counters.incr Counters.global ~tid ev

  let create () = { root = Atomic.make Empty }

  let bkey_of k = K.to_binary k ^ "\x00"

  (* --- version-lock primitives --- *)

  let hdr_of = function
    | N4 n -> n.hdr
    | N16 n -> n.hdr
    | N48 n -> n.hdr
    | N256 n -> n.hdr
    | Empty | Leaf _ -> invalid_arg "art: no header"

  let read_lock h =
    let v = Atomic.get h.version in
    if v land 1 = 1 then raise Restart;
    v

  let validate h v = if Atomic.get h.version <> v then raise Restart

  let upgrade h v =
    if not (Atomic.compare_and_set h.version v (v + 1)) then raise Restart

  let write_unlock h = Atomic.set h.version (Atomic.get h.version + 1)

  let new_hdr prefix = { version = Atomic.make 0; prefix }

  (* --- child access --- *)

  let find_child node c =
    match node with
    | N4 n ->
        let rec go i =
          if i >= n.count then Empty
          else if Char.code (Bytes.get n.keys i) = c then n.children.(i)
          else go (i + 1)
        in
        go 0
    | N16 n ->
        let rec go i =
          if i >= n.count then Empty
          else if Char.code (Bytes.get n.keys i) = c then n.children.(i)
          else go (i + 1)
        in
        go 0
    | N48 n ->
        let slot = Char.code (Bytes.get n.index c) in
        if slot = 0xFF then Empty else n.children.(slot)
    | N256 n -> n.children.(c)
    | Empty | Leaf _ -> Empty

  let is_full = function
    | N4 n -> n.count >= 4
    | N16 n -> n.count >= 16
    | N48 n -> n.count >= 48
    | N256 _ -> false
    | Empty | Leaf _ -> false

  (* insert a child in place; the caller holds the node's lock and has
     checked it is not full *)
  let add_child node c child =
    match node with
    | N4 n ->
        Bytes.set n.keys n.count (Char.chr c);
        n.children.(n.count) <- child;
        n.count <- n.count + 1
    | N16 n ->
        Bytes.set n.keys n.count (Char.chr c);
        n.children.(n.count) <- child;
        n.count <- n.count + 1
    | N48 n ->
        (* deletions can free slots below [count], so find a free one *)
        let slot = ref 0 in
        while n.children.(!slot) != Empty do
          incr slot
        done;
        Bytes.set n.index c (Char.chr !slot);
        n.children.(!slot) <- child;
        n.count <- n.count + 1
    | N256 n ->
        n.children.(c) <- child;
        n.count <- n.count + 1
    | Empty | Leaf _ -> assert false

  (* replace an existing child pointer; caller holds the node's lock *)
  let replace_child node c child =
    match node with
    | N4 n ->
        let rec go i =
          if i >= n.count then assert false
          else if Char.code (Bytes.get n.keys i) = c then
            n.children.(i) <- child
          else go (i + 1)
        in
        go 0
    | N16 n ->
        let rec go i =
          if i >= n.count then assert false
          else if Char.code (Bytes.get n.keys i) = c then
            n.children.(i) <- child
          else go (i + 1)
        in
        go 0
    | N48 n ->
        let slot = Char.code (Bytes.get n.index c) in
        assert (slot <> 0xFF);
        n.children.(slot) <- child
    | N256 n -> n.children.(c) <- child
    | Empty | Leaf _ -> assert false

  (* grown copy of a full node (the original stays locked and is discarded
     by the caller) *)
  let grow node =
    match node with
    | N4 n ->
        let g =
          N16
            {
              hdr = new_hdr n.hdr.prefix;
              keys = Bytes.make 16 '\x00';
              children = Array.make 16 Empty;
              count = 0;
            }
        in
        for i = 0 to n.count - 1 do
          add_child g (Char.code (Bytes.get n.keys i)) n.children.(i)
        done;
        g
    | N16 n ->
        let g =
          N48
            {
              hdr = new_hdr n.hdr.prefix;
              index = Bytes.make 256 '\xFF';
              children = Array.make 48 Empty;
              count = 0;
            }
        in
        for i = 0 to n.count - 1 do
          add_child g (Char.code (Bytes.get n.keys i)) n.children.(i)
        done;
        g
    | N48 n ->
        let g =
          N256
            {
              hdr = new_hdr n.hdr.prefix;
              children = Array.make 256 Empty;
              count = 0;
            }
        in
        for c = 0 to 255 do
          let slot = Char.code (Bytes.get n.index c) in
          if slot <> 0xFF then add_child g c n.children.(slot)
        done;
        g
    | N256 _ | Empty | Leaf _ -> assert false

  let new_n4 prefix =
    N4
      {
        hdr = new_hdr prefix;
        keys = Bytes.make 4 '\x00';
        children = Array.make 4 Empty;
        count = 0;
      }

  (* longest common prefix length of a[ad..] and b[bd..] *)
  let common_prefix_len a ad b bd =
    let n = min (String.length a - ad) (String.length b - bd) in
    let rec go i = if i < n && a.[ad + i] = b.[bd + i] then go (i + 1) else i in
    go 0

  (* does bkey[depth..] start with [prefix]? returns matched length or
     raises Mismatch with the diverging position *)
  let prefix_match prefix bkey depth =
    let pl = String.length prefix in
    let rec go i =
      if i >= pl then pl
      else if
        depth + i < String.length bkey && bkey.[depth + i] = prefix.[i]
      then go (i + 1)
      else i (* mismatch at i *)
    in
    go 0

  (* --- retry plumbing --- *)

  let rec retry ~tid f =
    try f () with
    | Restart | Invalid_argument _ ->
        cnt tid Counters.Restart;
        Domain.cpu_relax ();
        retry ~tid f

  (* install a new value for the root pointer, validating the expected
     current value *)
  let cas_root t expect repl =
    if not (Atomic.compare_and_set t.root expect repl) then raise Restart

  (* A parent slot we can swing under the parent's lock (or the root). *)
  type slot =
    | Root
    | In of node * int  (* parent node, child byte *)

  let lock_and_swing t ~parent_slot ~parent_ver ~expect ~repl =
    match parent_slot with
    | Root ->
        (* the root pointer is atomic; no parent lock exists *)
        cas_root t expect repl
    | In (parent, c) ->
        let ph = hdr_of parent in
        upgrade ph parent_ver;
        if find_child parent c != expect then begin
          write_unlock ph;
          raise Restart
        end;
        replace_child parent c repl;
        write_unlock ph

  (* --- insert --- *)

  let insert t ~tid k value =
    let bkey = bkey_of k in
    retry ~tid @@ fun () ->
    let rec go node depth parent_slot parent_ver =
      cnt tid Counters.Node_visit;
      match node with
      | Empty ->
          (* only reachable at the root: empty children are expanded below *)
          cnt tid Counters.Allocation;
          cas_root t Empty (Leaf { bkey; value = Atomic.make value });
          true
      | Leaf l ->
          if String.equal l.bkey bkey then false
          else begin
            (* split: new N4 holding the two leaves under their common
               prefix *)
            let cpl = common_prefix_len l.bkey depth bkey depth in
            if
              depth + cpl >= String.length l.bkey
              || depth + cpl >= String.length bkey
            then
              (* only possible when one key (with terminator) is a proper
                 prefix of the other, i.e. a key contains NUL bytes and
                 shadows a shorter key — outside ART's key contract *)
              failwith "Art_olc: key is a binary prefix of an existing key";
            let prefix = String.sub bkey depth cpl in
            let n4 = new_n4 prefix in
            let c_old = Char.code l.bkey.[depth + cpl] in
            let c_new = Char.code bkey.[depth + cpl] in
            add_child n4 c_old node;
            add_child n4 c_new (Leaf { bkey; value = Atomic.make value });
            cnt tid Counters.Allocation;
            lock_and_swing t ~parent_slot ~parent_ver ~expect:node ~repl:n4;
            true
          end
      | N4 _ | N16 _ | N48 _ | N256 _ ->
          let h = hdr_of node in
          let v = read_lock h in
          let prefix = h.prefix in
          let matched = prefix_match prefix bkey depth in
          if matched < String.length prefix then begin
            (* prefix mismatch: split the compressed path *)
            upgrade h v;
            (* re-check under the lock *)
            if h.prefix != prefix then begin
              write_unlock h;
              raise Restart
            end;
            let keep = String.sub prefix 0 matched in
            let n4 = new_n4 keep in
            let c_old = Char.code prefix.[matched] in
            let c_new = Char.code bkey.[depth + matched] in
            (* trim the old node's prefix past the split point *)
            let trimmed =
              String.sub prefix (matched + 1)
                (String.length prefix - matched - 1)
            in
            add_child n4 c_old node;
            add_child n4 c_new
              (Leaf { bkey; value = Atomic.make value });
            cnt tid Counters.Allocation;
            (try
               lock_and_swing t ~parent_slot ~parent_ver ~expect:node
                 ~repl:n4
             with Restart ->
               write_unlock h;
               raise Restart);
            h.prefix <- trimmed;
            write_unlock h;
            true
          end
          else begin
            let depth = depth + matched in
            if depth >= String.length bkey then raise Restart
              (* impossible with terminated keys; defensive *)
            else begin
              let c = Char.code bkey.[depth] in
              let child = find_child node c in
              validate h v;
              match child with
              | Empty ->
                  if is_full node then begin
                    (* grow: build the larger copy, then swing the parent *)
                    upgrade h v;
                    let bigger = grow node in
                    add_child bigger c
                      (Leaf { bkey; value = Atomic.make value });
                    cnt tid Counters.Allocation;
                    (try
                       lock_and_swing t ~parent_slot ~parent_ver
                         ~expect:node ~repl:bigger
                     with Restart ->
                       write_unlock h;
                       raise Restart);
                    (* the old node stays locked forever: it is now
                       unreachable and any reader holding it restarts *)
                    true
                  end
                  else begin
                    upgrade h v;
                    add_child node c
                      (Leaf { bkey; value = Atomic.make value });
                    cnt tid Counters.Allocation;
                    write_unlock h;
                    true
                  end
              | _ ->
                  cnt tid Counters.Pointer_deref;
                  go child (depth + 1) (In (node, c)) v
            end
          end
    in
    go (Atomic.get t.root) 0 Root 0

  (* --- lookup --- *)

  let lookup t ~tid k =
    let bkey = bkey_of k in
    retry ~tid @@ fun () ->
    let rec go node depth =
      cnt tid Counters.Node_visit;
      match node with
      | Empty -> None
      | Leaf l -> if String.equal l.bkey bkey then Some (Atomic.get l.value) else None
      | N4 _ | N16 _ | N48 _ | N256 _ ->
          let h = hdr_of node in
          let v = read_lock h in
          let matched = prefix_match h.prefix bkey depth in
          if matched < String.length h.prefix then begin
            validate h v;
            None
          end
          else begin
            let depth = depth + matched in
            if depth >= String.length bkey then begin
              validate h v;
              None
            end
            else begin
              let child = find_child node (Char.code bkey.[depth]) in
              validate h v;
              cnt tid Counters.Pointer_deref;
              go child (depth + 1)
            end
          end
    in
    go (Atomic.get t.root) 0

  let update t ~tid k value =
    let bkey = bkey_of k in
    retry ~tid @@ fun () ->
    let rec go node depth =
      match node with
      | Empty -> false
      | Leaf l ->
          if String.equal l.bkey bkey then begin
            Atomic.set l.value value;
            true
          end
          else false
      | N4 _ | N16 _ | N48 _ | N256 _ ->
          let h = hdr_of node in
          let v = read_lock h in
          let matched = prefix_match h.prefix bkey depth in
          if matched < String.length h.prefix then (validate h v; false)
          else begin
            let depth = depth + matched in
            if depth >= String.length bkey then (validate h v; false)
            else begin
              let child = find_child node (Char.code bkey.[depth]) in
              validate h v;
              go child (depth + 1)
            end
          end
    in
    go (Atomic.get t.root) 0

  (* --- delete --- *)

  let remove_child node c =
    match node with
    | N4 n ->
        let rec go i =
          if i >= n.count then ()
          else if Char.code (Bytes.get n.keys i) = c then begin
            for j = i to n.count - 2 do
              Bytes.set n.keys j (Bytes.get n.keys (j + 1));
              n.children.(j) <- n.children.(j + 1)
            done;
            n.children.(n.count - 1) <- Empty;
            n.count <- n.count - 1
          end
          else go (i + 1)
        in
        go 0
    | N16 n ->
        let rec go i =
          if i >= n.count then ()
          else if Char.code (Bytes.get n.keys i) = c then begin
            for j = i to n.count - 2 do
              Bytes.set n.keys j (Bytes.get n.keys (j + 1));
              n.children.(j) <- n.children.(j + 1)
            done;
            n.children.(n.count - 1) <- Empty;
            n.count <- n.count - 1
          end
          else go (i + 1)
        in
        go 0
    | N48 n ->
        let slot = Char.code (Bytes.get n.index c) in
        if slot <> 0xFF then begin
          Bytes.set n.index c '\xFF';
          n.children.(slot) <- Empty;
          n.count <- n.count - 1
        end
    | N256 n ->
        if n.children.(c) != Empty then begin
          n.children.(c) <- Empty;
          n.count <- n.count - 1
        end
    | Empty | Leaf _ -> assert false

  let delete t ~tid k =
    let bkey = bkey_of k in
    retry ~tid @@ fun () ->
    let rec go node depth parent_slot parent_ver =
      match node with
      | Empty -> false
      | Leaf l ->
          if not (String.equal l.bkey bkey) then false
          else begin
            (* unlink the leaf from its parent *)
            (match parent_slot with
            | Root -> cas_root t node Empty
            | In (parent, c) ->
                let ph = hdr_of parent in
                upgrade ph parent_ver;
                if find_child parent c != node then begin
                  write_unlock ph;
                  raise Restart
                end;
                remove_child parent c;
                write_unlock ph);
            true
          end
      | N4 _ | N16 _ | N48 _ | N256 _ ->
          let h = hdr_of node in
          let v = read_lock h in
          let matched = prefix_match h.prefix bkey depth in
          if matched < String.length h.prefix then (validate h v; false)
          else begin
            let depth = depth + matched in
            if depth >= String.length bkey then (validate h v; false)
            else begin
              let c = Char.code bkey.[depth] in
              let child = find_child node c in
              validate h v;
              go child (depth + 1) (In (node, c)) v
            end
          end
    in
    go (Atomic.get t.root) 0 Root 0

  (* --- range scan --- *)

  (* Ordered DFS collecting leaves with bkey >= the seek key, up to [n]
     items. The entire scan validates each visited node's version; any
     interference restarts the scan (§6: ART "iteration requires more
     memory access than the OpenBw-Tree" — this rebuild-from-root cost is
     part of that). *)
  let scan t ~tid k ~n visit =
    if n <= 0 then 0
    else begin
    let bkey = bkey_of k in
    let items =
      retry ~tid @@ fun () ->
      let acc = ref [] in
      let visited = ref 0 in
      let exception Done in
    (* children of [node] in byte order *)
    let ordered_children node =
      match node with
      | N4 nd ->
          let xs =
            Array.init nd.count (fun i ->
                (Char.code (Bytes.get nd.keys i), nd.children.(i)))
          in
          Array.sort (fun (a, _) (b, _) -> compare a b) xs;
          xs
      | N16 nd ->
          let xs =
            Array.init nd.count (fun i ->
                (Char.code (Bytes.get nd.keys i), nd.children.(i)))
          in
          Array.sort (fun (a, _) (b, _) -> compare a b) xs;
          xs
      | N48 nd ->
          let out = ref [] in
          for c = 255 downto 0 do
            let slot = Char.code (Bytes.get nd.index c) in
            if slot <> 0xFF then out := (c, nd.children.(slot)) :: !out
          done;
          Array.of_list !out
      | N256 nd ->
          let out = ref [] in
          for c = 255 downto 0 do
            if nd.children.(c) != Empty then out := (c, nd.children.(c)) :: !out
          done;
          Array.of_list !out
      | Empty | Leaf _ -> [||]
    in
    (* [bound]: Some depth means the subtree's path equals bkey's prefix up
       to that depth, so comparisons still constrain; None = unconstrained
       (strictly greater already) *)
    let rec visit node ~path_len ~constrained =
      cnt tid Counters.Node_visit;
      match node with
      | Empty -> ()
      | Leaf l ->
          if (not constrained) || String.compare l.bkey bkey >= 0 then begin
            acc := (l.bkey, Atomic.get l.value) :: !acc;
            incr visited;
            if !visited >= n then raise Done
          end
      | N4 _ | N16 _ | N48 _ | N256 _ ->
          let h = hdr_of node in
          let v = read_lock h in
          let prefix = h.prefix in
          let children = ordered_children node in
          validate h v;
          let plen = path_len + String.length prefix in
          (* compare this node's compressed-path extension against the
             seek key: greater ⇒ the whole subtree qualifies; smaller ⇒
             the whole subtree precedes the seek key (prune); equal ⇒
             children stay constrained *)
          let prefix_cmp =
            if not constrained then 1
            else begin
              let cmp_end = min plen (String.length bkey) in
              let rec cmp i =
                if i >= cmp_end then 0
                else
                  let c = Char.compare prefix.[i - path_len] bkey.[i] in
                  if c <> 0 then c else cmp (i + 1)
              in
              cmp path_len
            end
          in
          if prefix_cmp < 0 then () (* prune: strictly below the seek key *)
          else
          let constrained = constrained && prefix_cmp = 0 in
          Array.iter
            (fun (c, child) ->
              let constrained_child =
                constrained && plen < String.length bkey
              in
              if constrained_child then begin
                let kc = Char.code bkey.[plen] in
                if c > kc then visit child ~path_len:(plen + 1) ~constrained:false
                else if c = kc then
                  visit child ~path_len:(plen + 1) ~constrained:true
                (* c < kc: whole subtree below the seek key; prune *)
              end
              else visit child ~path_len:(plen + 1) ~constrained:false)
            children
    in
      (try visit (Atomic.get t.root) ~path_len:0 ~constrained:true
       with Done -> ());
      !acc
    in
    (* the attempt validated every node it crossed; emit oldest-first,
       recovering each key from the stored bkey minus our terminator *)
    List.fold_left
      (fun m (bk, v) ->
        visit (K.of_binary (String.sub bk 0 (String.length bk - 1))) v;
        m + 1)
      0 (List.rev items)
    end

  (* --- introspection --- *)

  let cardinal t =
    let rec go node acc =
      match node with
      | Empty -> acc
      | Leaf _ -> acc + 1
      | N4 n -> Array.fold_left (fun a c -> go c a) acc n.children
      | N16 n -> Array.fold_left (fun a c -> go c a) acc n.children
      | N48 n -> Array.fold_left (fun a c -> go c a) acc n.children
      | N256 n -> Array.fold_left (fun a c -> go c a) acc n.children
    in
    go (Atomic.get t.root) 0

  let memory_words t = Obj.reachable_words (Obj.repr t)
end
