(** Adaptive Radix Tree (Leis et al., ICDE 2013) with Optimistic Lock
    Coupling — the fastest comparator in the paper's §6 evaluation.

    Keys are converted to binary-comparable byte strings ([K.to_binary])
    with a NUL terminator, the standard ART contract: no stored key's
    terminated encoding may be a proper prefix of another's (all the
    workload key types satisfy this; violations raise [Failure]). Inner
    nodes adapt among Node4/Node16/Node48/Node256 with pessimistic path
    compression. Readers validate per-node versions; writers lock only the
    nodes they mutate. *)

exception Restart
(** Internal retry signal; never escapes the public functions. *)

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) : sig
  type key = K.t
  type value = V.t
  type t

  val create : unit -> t

  val insert : t -> tid:int -> key -> value -> bool
  val lookup : t -> tid:int -> key -> value option
  val update : t -> tid:int -> key -> value -> bool
  val delete : t -> tid:int -> key -> bool

  val scan : t -> tid:int -> key -> n:int -> (key -> value -> unit) -> int
  (** Ordered depth-first traversal handing up to [n] items from the
      first key >= the argument to the visitor; restarts wholesale on
      concurrent interference (the cost the paper notes for ART
      iteration), emitting only after a whole attempt validates. *)

  val cardinal : t -> int
  val memory_words : t -> int
end
