(** Blocking, pipelining-aware client for the {!Bw_server} wire protocol.

    One [t] wraps one TCP connection and must be driven from one domain
    at a time (the loadgen gives each worker domain its own client).

    Two usage styles:

    - Synchronous: {!get} / {!put} / {!delete} / {!scan} / {!stats} each
      send one request and wait for its reply.
    - Pipelined: {!send} queues requests (flushed automatically in
      batches), {!recv} takes replies in FIFO order. Keeping [depth]
      requests in flight amortizes the network round trip — the loadgen's
      [--pipeline] knob is exactly this.

    Protocol violations from the server raise {!Protocol_error};
    an unexpected close raises {!Server_closed}. *)

module Wire = Bw_server.Wire

exception Server_closed
exception Protocol_error of string

exception Wrong_shard of int64
(** The server does not own the requested key under its partition table
    (whose epoch is carried here): the caller's routing table is stale.
    Refetch the table ({!topology}) and retry — {!Bw_router} does. *)

exception Read_only
(** The key's range is sealed for the final instants of an outgoing
    migration; retrying shortly yields either success or
    {!Wrong_shard} with the post-flip table. *)

type t = {
  fd : Unix.file_descr;
  out : Buffer.t;  (** encoded-but-unsent request frames *)
  dec : Wire.Decoder.t;
  inflight : Wire.req Queue.t;
  scratch : Bytes.t;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    out = Buffer.create 4096;
    dec = Wire.Decoder.create ();
    inflight = Queue.create ();
    scratch = Bytes.create 65_536;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let inflight t = Queue.length t.inflight

let flush t =
  let s = Buffer.contents t.out in
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring t.fd s !off (n - !off) with
    | 0 -> raise Server_closed
    | w -> off := !off + w
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        raise Server_closed
  done;
  Buffer.clear t.out

let send t req =
  Buffer.add_string t.out (Wire.frame_req req);
  Queue.add req t.inflight;
  (* don't let an unflushed tail grow without bound under deep pipelines *)
  if Buffer.length t.out >= 65_536 then flush t

let rec recv t : Wire.resp =
  if Queue.is_empty t.inflight then
    invalid_arg "Bw_client.recv: no request in flight";
  match Wire.Decoder.next t.dec with
  | `Frame payload -> (
      ignore (Queue.pop t.inflight);
      try Wire.decode_resp payload
      with Wire.Malformed m -> raise (Protocol_error m))
  | `Framing m -> raise (Protocol_error m)
  | `Need_more -> (
      if Buffer.length t.out > 0 then flush t;
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> raise Server_closed
      | n ->
          Wire.Decoder.feed t.dec t.scratch n;
          recv t
      | exception Unix.Unix_error (EINTR, _, _) -> recv t
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
          raise Server_closed)

let request t req =
  send t req;
  flush t;
  (* drain everything ahead of us too: sync calls interleaved with
     pipelined ones still pair FIFO *)
  let rec go () =
    let r = recv t in
    if Queue.is_empty t.inflight then r else go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Typed synchronous helpers                                           *)
(* ------------------------------------------------------------------ *)

let err = function
  | Wire.Err m -> raise (Protocol_error ("server error: " ^ m))
  | Wire.Err_wrong_shard epoch -> raise (Wrong_shard epoch)
  | Wire.Err_read_only -> raise Read_only
  | r -> raise (Protocol_error ("unexpected reply shape: " ^
                                (match r with
                                 | Wire.Value _ -> "value"
                                 | Wire.Applied _ -> "applied"
                                 | Wire.Scanned _ -> "scanned"
                                 | Wire.Scanned_to _ -> "scanned_to"
                                 | Wire.Batched _ -> "batched"
                                 | Wire.Stats_payload _ -> "stats"
                                 | Wire.Repl_ok _ -> "repl_ok"
                                 | Wire.Topology_payload _ -> "topology"
                                 | Wire.Err _ -> "err"
                                 | Wire.Err_wrong_shard _ -> "wrong_shard"
                                 | Wire.Err_read_only -> "read_only")))

let get t key =
  match request t (Wire.Get key) with Wire.Value v -> v | r -> err r

let put t ?(mode = Wire.Upsert) key value =
  match request t (Wire.Put (mode, key, value)) with
  | Wire.Applied b -> b
  | r -> err r

let delete t key =
  match request t (Wire.Delete key) with Wire.Applied b -> b | r -> err r

let scan t key ~n =
  match request t (Wire.Scan (key, n)) with
  | Wire.Scanned items -> items
  | Wire.Scanned_to (items, _) -> items
  | r -> err r

(* A cluster member answers SCAN with its continuation point: the exact
   key where its ownership (or the budget) ran out, [None] at the end of
   the key space. A plain server's [Scanned] means "budget exhausted or
   end of space" — recover the same contract from the item count. *)
let scan_to t key ~n =
  match request t (Wire.Scan (key, n)) with
  | Wire.Scanned_to (items, next) -> (items, next)
  | Wire.Scanned items ->
      let next =
        if n > 0 && List.length items >= n then
          match List.rev items with
          | (last, _) :: _ -> Some (last ^ "\000")
          | [] -> None
        else None
      in
      (items, next)
  | r -> err r

let batch t reqs =
  match request t (Wire.Batch reqs) with
  | Wire.Batched rs -> rs
  | r -> err r

let stats t =
  match request t Wire.Stats with
  | Wire.Stats_payload s -> s
  | r -> err r

(* Replication frames: the WAL shipper is just a client that sends
   [Wire.Repl] requests; each returns the standby's ack. *)
let repl t r =
  match request t (Wire.Repl r) with Wire.Repl_ok n -> n | r -> err r

let promote ?data_dir t = repl t (Wire.R_promote { data_dir })

(* Cluster frames (members only — a plain server answers [Err]). *)

let topology t =
  match request t (Wire.Topology None) with
  | Wire.Topology_payload s -> s
  | r -> err r

let offer_topology t encoded =
  match request t (Wire.Topology (Some encoded)) with
  | Wire.Applied b -> b
  | r -> err r

let migrate t ~lo ~hi ~dst =
  match request t (Wire.Migrate { m_lo = lo; m_hi = hi; m_dst = dst }) with
  | Wire.Applied b -> b
  | r -> err r

let ingest t items =
  match request t (Wire.Ingest items) with
  | Wire.Applied b -> b
  | r -> err r

(* Integer-key conveniences (the common case: int-keyed trees behind the
   wire's binary key encoding). *)
module Int_key = struct
  let enc = Bw_util.Key_codec.of_int

  let get t k = get t (enc k)
  let put t ?mode k v = put t ?mode (enc k) v
  let delete t k = delete t (enc k)

  let scan t k ~n =
    List.map (fun (bk, v) -> (Bw_util.Key_codec.to_int bk, v)) (scan t (enc k) ~n)
end

(* ------------------------------------------------------------------ *)
(* Replica-aware read fan-out                                          *)
(* ------------------------------------------------------------------ *)

(** One primary plus any number of following replicas. Writes (and any
    BATCH containing a write) go to the primary; reads — GET, SCAN,
    STATS, read-only BATCHes — round-robin across the replicas, falling
    back to the primary when there are none. A follower applies the WAL
    stream asynchronously, so replica reads are eventually consistent:
    bounded-staleness, monotone per replica connection (the stream
    applies in commit order), but a read fanned out right after an
    acknowledged write may miss it. Callers needing read-your-writes go
    to the primary directly. *)
module Fanout = struct
  type fanout = {
    primary : t;
    replicas : t array;
    mutable next : int;  (* round-robin position *)
  }

  let make ~primary ~replicas = { primary; replicas; next = 0 }

  let connect ?host ~port ~replica_ports () =
    let primary = connect ?host ~port () in
    let replicas =
      try Array.of_list (List.map (fun p -> connect ?host ~port:p ()) replica_ports)
      with e ->
        close primary;
        raise e
    in
    make ~primary ~replicas

  let close_all f =
    close f.primary;
    Array.iter close f.replicas

  let reader f =
    if Array.length f.replicas = 0 then f.primary
    else begin
      let r = f.replicas.(f.next mod Array.length f.replicas) in
      f.next <- f.next + 1;
      r
    end

  let rec is_write = function
    | Wire.Put _ | Wire.Delete _ | Wire.Repl _ | Wire.Topology _
    | Wire.Migrate _ | Wire.Ingest _ ->
        true
    | Wire.Batch reqs -> List.exists is_write reqs
    | Wire.Get _ | Wire.Scan _ | Wire.Stats -> false

  let get f key = get (reader f) key
  let scan f key ~n = scan (reader f) key ~n
  let stats f = stats (reader f)
  let put f ?mode key value = put f.primary ?mode key value
  let delete f key = delete f.primary key

  let batch f reqs =
    batch (if List.exists is_write reqs then f.primary else reader f) reqs

  (* Route one request by kind — for callers holding raw [Wire.req]s. *)
  let request f req = request (if is_write req then f.primary else reader f) req
end
