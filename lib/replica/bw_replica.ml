(** WAL-shipping replication: primary-side shipper, standby-side applier.

    The stream rides the ordinary wire protocol: the shipper is just a
    {!Bw_client} that sends [Wire.Repl] frames — SUBSCRIBE, then per
    shard a SNAPSHOT bootstrap (the newest checkpoint generation's
    pages), then WALCHUNK frames carrying raw committed commit-group
    payloads tailed past a {!Pagestore.Wal.cursor}. One connection, FIFO
    request/response, every frame acknowledged with the standby's applied
    record count — stream ordering and backpressure come for free.

    Shipping is asynchronous: the shipper polls the WAL from its own
    domain and never sits on the commit path, so an acknowledged write on
    the primary is durable locally (appended, and fsynced when enabled,
    to the primary's WAL file) but possibly not yet shipped. The
    zero-acknowledged-write-loss guarantee is restored at promotion time:
    PROMOTE can carry the dead primary's data directory, and the standby
    replays the on-disk WAL tail past what the stream delivered before
    flipping read-write — everything the primary ever acknowledged was
    in that file before the acknowledgement left the machine.

    Checkpoint generations hand off mid-stream: a full checkpoint on the
    primary retires the old WAL but keeps its in-memory image
    ({!Pagestore.Store}'s [prev_wal]), the shipper drains it to the end,
    and only then jumps to the new generation at record zero — whose
    checkpoint folded exactly the drained prefix, so the standby's state
    is continuous across the switch and never re-bootstraps. *)

module Wire = Bw_server.Wire

let err fmt = Format.kasprintf (fun m -> Wire.Err m) fmt

(* ------------------------------------------------------------------ *)
(* Standby-side applier                                                *)
(* ------------------------------------------------------------------ *)

module Follow
    (KC : Pagestore.Codec.CODEC)
    (T : Bwtree.S with type key = KC.t and type value = int) =
struct
  module S = Pagestore.Store.Make (KC) (T)

  (* One followed shard. [tree] is replaced wholesale by a re-bootstrap
     or a promotion-time cold rebuild, so every serving closure re-reads
     the field per call instead of capturing the tree value. *)
  type shard = {
    sid : int;
    mutable tree : T.t;
    mutable s_gen : int;  (** WAL generation being followed; -1 = none *)
    mutable applied_recs : int;
        (** commit records of generation [s_gen] applied (absolute record
            index: the snapshot's folded prefix counts) *)
    mutable applied_ops : int;
    mutable p_recs : int;  (** primary's record total as of the last chunk *)
    mutable p_bytes : int;
        (** primary's unshipped byte backlog as of the last chunk (see
            {!Wire.repl_req}); already a lag, not a total *)
    mutable snap_items : int;  (** items loaded by the bootstrap in progress *)
    mutable armed : bool;  (** bootstrap complete; chunks accepted *)
  }

  type t = {
    shards : shard array;
    key_type : string;
    config : Bwtree.config option;
    obs : Bw_obs.sink;  (** replication counters and lag gauges *)
    obs_of : int -> Bw_obs.sink;  (** per-shard tree sinks *)
    mu : Mutex.t;
        (* serializes stream frames against PROMOTE (they may arrive on
           different server workers); readers never take it *)
    mutable sealed : bool;  (** no further stream frames accepted *)
    mutable promoted : bool;  (** writes allowed *)
    mutable chunks : int;  (* applied chunk count, for periodic GC *)
  }

  let fresh_tree t sid = T.create ?config:t.config ~obs:(t.obs_of sid) ()

  let create ?config ?(obs = Bw_obs.Null) ?(obs_of = fun _ -> Bw_obs.Null)
      ~key_type ~shards () =
    let t =
      {
        shards = [||];
        key_type;
        config;
        obs;
        obs_of;
        mu = Mutex.create ();
        sealed = false;
        promoted = false;
        chunks = 0;
      }
    in
    let t =
      {
        t with
        shards =
          Array.init shards (fun i ->
              {
                sid = i;
                tree = fresh_tree t i;
                s_gen = -1;
                applied_recs = 0;
                applied_ops = 0;
                p_recs = 0;
                p_bytes = 0;
                snap_items = 0;
                armed = false;
              });
      }
    in
    (* Records/bytes behind the primary, as of the last chunk's piggybacked
       totals. Zero once promoted (no primary to be behind); a gauge, so
       racy reads are fine. *)
    let lag proj =
      if t.promoted then 0
      else Array.fold_left (fun a sh -> a + max 0 (proj sh)) 0 t.shards
    in
    Bw_obs.register_gauge obs Bw_obs.G_repl_lag_records (fun () ->
        lag (fun sh -> sh.p_recs - sh.applied_recs));
    Bw_obs.register_gauge obs Bw_obs.G_repl_lag_bytes (fun () ->
        lag (fun sh -> sh.p_bytes));
    t

  let promoted t = t.promoted

  let reset_shard t sh =
    sh.tree <- fresh_tree t sh.sid;
    sh.s_gen <- -1;
    sh.applied_recs <- 0;
    sh.applied_ops <- 0;
    sh.p_recs <- 0;
    sh.p_bytes <- 0;
    sh.snap_items <- 0;
    sh.armed <- false

  (* [Store.apply_op] with the caller's tid: the applier runs on a server
     worker whose tid is also striping epoch membership for concurrent
     readers, so the default tid-0 apply would collide with worker 0. *)
  let apply ~tid tree = function
    | S.W.W_insert (k, v) -> ignore (T.insert tree ~tid k v : bool)
    | S.W.W_update (k, v) -> ignore (T.update tree ~tid k v : bool)
    | S.W.W_upsert (k, v) -> T.upsert tree ~tid k v
    | S.W.W_remove k -> ignore (T.delete tree ~tid k 0 : bool)

  let handle_subscribe t ~key_type ~shards =
    if key_type <> t.key_type then
      err "key type mismatch: primary ships %s, follower serves %s" key_type
        t.key_type
    else if shards <> Array.length t.shards then
      err "shard count mismatch: primary has %d, follower has %d" shards
        (Array.length t.shards)
    else begin
      Array.iter (reset_shard t) t.shards;
      Wire.Repl_ok 0
    end

  let handle_snapshot t ~tid sh ~gen ~start_rec ~start_ops ~pages ~last ~items
      =
    if sh.s_gen <> gen || sh.armed then begin
      (* first chunk of a (re-)bootstrap for this shard *)
      reset_shard t sh;
      sh.s_gen <- gen;
      sh.applied_recs <- start_rec;
      sh.applied_ops <- start_ops
    end;
    let loaded = ref 0 in
    List.iter
      (fun payload ->
        let page = S.CP.decode_page payload in
        T.Page.iter_from page 0 (fun k v ->
            if T.insert sh.tree ~tid k v then incr loaded))
      pages;
    sh.snap_items <- sh.snap_items + !loaded;
    if Bw_obs.enabled t.obs then
      Bw_obs.add t.obs ~tid Bw_obs.C_repl_snapshot_pages (List.length pages);
    if last && sh.snap_items <> items then
      err "snapshot item count mismatch: loaded %d, manifest says %d"
        sh.snap_items items
    else begin
      if last then sh.armed <- true;
      Wire.Repl_ok sh.applied_recs
    end

  let handle_walchunk t ~tid sh ~gen ~from_rec ~groups ~p_recs ~p_bytes =
    if not sh.armed then err "shard %d is not bootstrapped" sh.sid
    else begin
      (* Generation handoff: the shipper drained the retired WAL to the
         end before jumping, and the new generation's checkpoint folded
         exactly that prefix — our state already is the new base. *)
      if gen > sh.s_gen && from_rec = 0 then begin
        sh.s_gen <- gen;
        sh.applied_recs <- 0;
        sh.applied_ops <- 0;
        sh.p_recs <- 0;
        sh.p_bytes <- 0
      end;
      if gen <> sh.s_gen then
        err "generation mismatch: chunk for gen %d, following gen %d" gen
          sh.s_gen
      else if from_rec <> sh.applied_recs then
        err "cursor mismatch: chunk starts at record %d, applied %d" from_rec
          sh.applied_recs
      else begin
        let ops = ref 0 and bytes = ref 0 in
        List.iter
          (fun payload ->
            let group = S.W.decode_ops payload in
            List.iter (apply ~tid sh.tree) group;
            ops := !ops + List.length group;
            bytes := !bytes + String.length payload;
            sh.applied_recs <- sh.applied_recs + 1)
          groups;
        sh.applied_ops <- sh.applied_ops + !ops;
        sh.p_recs <- max p_recs sh.applied_recs;
        sh.p_bytes <- p_bytes;
        if Bw_obs.enabled t.obs then begin
          Bw_obs.add t.obs ~tid Bw_obs.C_repl_records_applied
            (List.length groups);
          Bw_obs.add t.obs ~tid Bw_obs.C_repl_bytes_applied !bytes;
          Bw_obs.add t.obs ~tid Bw_obs.C_repl_ops_applied !ops
        end;
        t.chunks <- t.chunks + 1;
        if t.chunks land 63 = 0 then begin
          (* the applier is the only writer; fold its epoch periodically
             so reclamation keeps pace with the stream *)
          T.quiesce sh.tree ~tid;
          T.gc_advance sh.tree
        end;
        Wire.Repl_ok sh.applied_recs
      end
    end

  (* Promotion catch-up for one shard from the (dead) primary's on-disk
     state. Normal path: the directory's committed generation matches
     what we were streaming, so replay the WAL tail past [applied_recs] —
     everything the primary acknowledged was written to that file before
     the acknowledgement. Fallback (a checkpoint raced the crash, or this
     shard never bootstrapped): cold-load the whole committed state via
     the read-only [inspect_dir] recovery. Returns ops replayed. *)
  let catch_up ~tid t sh sdir =
    let tail_replay g =
      let wal, _ =
        S.W.open_dir ~readonly:true ~fsync:false
          ~dir:(Pagestore.Store.wal_dir sdir g)
          ()
      in
      let cur = Pagestore.Wal.fresh_cursor () in
      ignore (S.W.tail wal ~limit:sh.applied_recs cur (fun _ -> ()) : int);
      let ops = ref 0 in
      let recs =
        S.W.tail wal cur (fun payload ->
            let group = S.W.decode_ops payload in
            List.iter (apply ~tid sh.tree) group;
            ops := !ops + List.length group)
      in
      sh.applied_recs <- sh.applied_recs + recs;
      sh.applied_ops <- sh.applied_ops + !ops;
      !ops
    in
    match Pagestore.Store.read_current sdir with
    | Some g when g = sh.s_gen && sh.armed -> tail_replay g
    | _ -> (
        match
          S.inspect_dir ?config:t.config ~obs:(t.obs_of sh.sid) ~dir:sdir ()
        with
        | Some (tree, rs) ->
            sh.tree <- tree;
            sh.s_gen <- rs.Pagestore.Store.rs_gen;
            sh.applied_recs <- rs.Pagestore.Store.rs_wal_records;
            sh.armed <- true;
            rs.Pagestore.Store.rs_wal_ops
        | None -> 0)

  let handle_promote t ~tid ~data_dir =
    t.sealed <- true;
    let replayed = ref 0 in
    (match data_dir with
    | None -> ()
    | Some dir ->
        Array.iter
          (fun sh ->
            let sdir =
              if Array.length t.shards = 1 then dir
              else
                Filename.concat dir (Printf.sprintf "shard-%02d" sh.sid)
            in
            replayed := !replayed + catch_up ~tid t sh sdir)
          t.shards);
    t.promoted <- true;
    if Bw_obs.enabled t.obs then
      Bw_obs.incr t.obs ~tid Bw_obs.C_repl_promotions;
    Wire.Repl_ok !replayed

  let handle t ~tid (r : Wire.repl_req) : Wire.resp =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        match r with
        | Wire.R_promote { data_dir } ->
            if t.promoted then Wire.Repl_ok 0
            else handle_promote t ~tid ~data_dir
        | _ when t.sealed -> err "stream sealed: replica was promoted"
        | Wire.R_subscribe { key_type; shards } ->
            handle_subscribe t ~key_type ~shards
        | Wire.R_snapshot { shard; gen; start_rec; start_ops; pages; last; items }
          ->
            if shard < 0 || shard >= Array.length t.shards then
              err "SNAPSHOT for shard %d of %d" shard (Array.length t.shards)
            else
              handle_snapshot t ~tid t.shards.(shard) ~gen ~start_rec
                ~start_ops ~pages ~last ~items
        | Wire.R_walchunk { shard; gen; from_rec; groups; p_recs; p_bytes } ->
            if shard < 0 || shard >= Array.length t.shards then
              err "WALCHUNK for shard %d of %d" shard (Array.length t.shards)
            else
              handle_walchunk t ~tid t.shards.(shard) ~gen ~from_rec ~groups
                ~p_recs ~p_bytes)

  (* The serving view of shard [sh]: reads pass through to the live tree,
     writes raise {!Index_iface.Read_only} until promotion. [batch] is
     [None] so BATCH frames fall back to the gated point ops. *)
  let gated_driver t sh : KC.t Index_iface.driver =
    let gate () = if not t.promoted then raise Index_iface.Read_only in
    let hd_opt = function [] -> None | v :: _ -> Some v in
    {
      Index_iface.name = "OpenBw-Tree+follow";
      insert =
        (fun ~tid k v ->
          gate ();
          T.insert sh.tree ~tid k v);
      read = (fun ~tid k -> hd_opt (T.lookup sh.tree ~tid k));
      update =
        (fun ~tid k v ->
          gate ();
          T.update sh.tree ~tid k v);
      remove =
        (fun ~tid k ->
          gate ();
          T.delete sh.tree ~tid k 0);
      scan = (fun ~tid k ~n visit -> T.scan_iter sh.tree ~tid ~n k visit);
      batch = None;
      start_aux = ignore;
      stop_aux = ignore;
      thread_done = (fun ~tid -> T.quiesce sh.tree ~tid);
      memory_words = (fun () -> T.memory_words sh.tree);
    }

  let drivers t = Array.map (gated_driver t) t.shards
end

module Bw_int = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)
module Bw_str = Bwtree.Make (Index_iface.String_key) (Index_iface.Int_value)
module F_int = Follow (Pagestore.Codec.Int) (Bw_int)
module F_str = Follow (Pagestore.Codec.String) (Bw_str)

(** The monomorphic view a serving process needs: a backend to serve
    GET/SCAN/STATS (writes answer ERR until promotion), the handler for
    replication frames (plugged into [Server.config.repl_handler]), and
    the promotion flag. *)
type follower = {
  fo_backend : Index_iface.backend;
  fo_handle : tid:int -> Wire.repl_req -> Wire.resp;
  fo_promoted : unit -> bool;
}

(* Shard routing must mirror the primary's ([bwt_server] partitions int
   forests with [~lo:0]) so shard indices in the stream line up with the
   follower's own partition. *)
let follower_int ?config ?obs ?obs_of ?lo ?hi ~shards () =
  let f = F_int.create ?config ?obs ?obs_of ~key_type:"int" ~shards () in
  let drivers = F_int.drivers f in
  let driver =
    if shards = 1 then drivers.(0)
    else Bw_shard.route_int (Bw_shard.Part.make_int ?lo ?hi shards) drivers
  in
  {
    fo_backend = Index_iface.backend_of_int_driver driver;
    fo_handle = F_int.handle f;
    fo_promoted = (fun () -> F_int.promoted f);
  }

let follower_str ?config ?obs ?obs_of ?lo ?hi ~shards () =
  let f = F_str.create ?config ?obs ?obs_of ~key_type:"str" ~shards () in
  let drivers = F_str.drivers f in
  let driver =
    if shards = 1 then drivers.(0)
    else Bw_shard.route_binary (Bw_shard.Part.make ?lo ?hi shards) drivers
  in
  {
    fo_backend = Index_iface.backend_of_str_driver driver;
    fo_handle = F_str.handle f;
    fo_promoted = (fun () -> F_str.promoted f);
  }

(* ------------------------------------------------------------------ *)
(* Primary-side shipper                                                *)
(* ------------------------------------------------------------------ *)

module Shipper = struct
  (* Where the stream stands in one shard's WAL. *)
  type pos = { mutable sp_gen : int; mutable sp_cur : Pagestore.Wal.cursor }

  type t = {
    host : string;
    port : int;
    key_type : string;
    sources : Pagestore.Store.repl_source array;
    obs : Bw_obs.sink;
    tid : int;  (* obs stripe; outside the server workers' tid range *)
    lag_recs : int Atomic.t;
    lag_bytes : int Atomic.t;
    stopping : bool Atomic.t;
    mutable domain : unit Domain.t option;
  }

  exception Resync
  (* The standby answered ERR or an unexpected ack: drop the connection
     and re-bootstrap from a fresh SUBSCRIBE. *)

  let create ?(obs = Bw_obs.Null) ?(tid = 64) ~host ~port ~key_type sources =
    let t =
      {
        host;
        port;
        key_type;
        sources;
        obs;
        tid;
        lag_recs = Atomic.make 0;
        lag_bytes = Atomic.make 0;
        stopping = Atomic.make false;
        domain = None;
      }
    in
    Bw_obs.register_gauge obs Bw_obs.G_repl_lag_records (fun () ->
        Atomic.get t.lag_recs);
    Bw_obs.register_gauge obs Bw_obs.G_repl_lag_bytes (fun () ->
        Atomic.get t.lag_bytes);
    t

  (* ~1 MiB of page payloads (but always at least one) per SNAPSHOT
     frame; well under the 16 MiB frame cap with framing overhead. *)
  let chunk_pages pages =
    let rec take acc nb n = function
      | [] -> (List.rev acc, [])
      | p :: rest when n > 0 && (nb = 0 || nb + String.length p <= 1_000_000)
        ->
          take (p :: acc) (nb + String.length p) (n - 1) rest
      | rest -> (List.rev acc, rest)
    in
    take [] 0 1024 pages

  let ship_snapshot t c i (p : pos) =
    let src = t.sources.(i) in
    let snap = src.Pagestore.Store.src_snapshot () in
    let rec send pages =
      let chunk, rest = chunk_pages pages in
      let last = rest = [] in
      ignore
        (Bw_client.repl c
           (Wire.R_snapshot
              {
                shard = i;
                gen = snap.Pagestore.Store.snap_gen;
                start_rec = snap.Pagestore.Store.snap_start_rec;
                start_ops = snap.Pagestore.Store.snap_start_ops;
                pages = chunk;
                last;
                items = snap.Pagestore.Store.snap_items;
              })
          : int);
      if Bw_obs.enabled t.obs then
        Bw_obs.add t.obs ~tid:t.tid Bw_obs.C_repl_snapshot_pages
          (List.length chunk);
      if not last then send rest
    in
    send snap.Pagestore.Store.snap_pages;
    p.sp_gen <- snap.Pagestore.Store.snap_gen;
    p.sp_cur <- snap.Pagestore.Store.snap_cursor

  let bootstrap t c pos =
    ignore
      (Bw_client.repl c
         (Wire.R_subscribe
            { key_type = t.key_type; shards = Array.length t.sources })
        : int);
    Array.iteri (fun i p -> ship_snapshot t c i p) pos

  (* One poll over every shard; returns whether anything shipped (or a
     generation handoff happened — either way, poll again promptly). *)
  let sweep t c pos =
    let progressed = ref false in
    Array.iteri
      (fun i (p : pos) ->
        let src = t.sources.(i) in
        let from_rec = p.sp_cur.Pagestore.Wal.c_rec in
        match
          src.Pagestore.Store.src_poll ~gen:p.sp_gen ~cursor:p.sp_cur
            ~limit:256
        with
        | Pagestore.Store.Rp_records [] -> ()
        | Pagestore.Store.Rp_records groups ->
            let bytes =
              List.fold_left (fun a g -> a + String.length g) 0 groups
            in
            (* [src_poll] already advanced the cursor past this chunk, so
               total minus cursor address is what will still be unshipped
               once the standby applies it — the byte lag, measured in
               the only place both ends of the stream can agree on. *)
            let p_recs, p_bytes =
              match src.Pagestore.Store.src_totals ~gen:p.sp_gen with
              | Some (recs, bytes) ->
                  (recs, max 0 (bytes - p.sp_cur.Pagestore.Wal.c_off))
              | None -> (0, 0)
            in
            let ack =
              Bw_client.repl c
                (Wire.R_walchunk
                   { shard = i; gen = p.sp_gen; from_rec; groups; p_recs;
                     p_bytes })
            in
            if ack <> p.sp_cur.Pagestore.Wal.c_rec then raise Resync;
            if Bw_obs.enabled t.obs then begin
              Bw_obs.add t.obs ~tid:t.tid Bw_obs.C_repl_records_shipped
                (List.length groups);
              Bw_obs.add t.obs ~tid:t.tid Bw_obs.C_repl_bytes_shipped bytes
            end;
            progressed := true
        | Pagestore.Store.Rp_handoff g ->
            p.sp_gen <- g;
            p.sp_cur <- Pagestore.Wal.fresh_cursor ();
            progressed := true
        | Pagestore.Store.Rp_gone -> raise Resync)
      pos;
    !progressed

  let update_lag t pos =
    let lr = ref 0 and lb = ref 0 in
    Array.iteri
      (fun i (p : pos) ->
        match t.sources.(i).Pagestore.Store.src_totals ~gen:p.sp_gen with
        | Some (recs, bytes) ->
            lr := !lr + max 0 (recs - p.sp_cur.Pagestore.Wal.c_rec);
            lb := !lb + max 0 (bytes - p.sp_cur.Pagestore.Wal.c_off)
        | None -> ())
      pos;
    Atomic.set t.lag_recs !lr;
    Atomic.set t.lag_bytes !lb

  let run t =
    let pos =
      Array.map
        (fun _ -> { sp_gen = -1; sp_cur = Pagestore.Wal.fresh_cursor () })
        t.sources
    in
    while not (Atomic.get t.stopping) do
      match Bw_client.connect ~host:t.host ~port:t.port () with
      | exception Unix.Unix_error _ -> Unix.sleepf 0.05
      | c ->
          (try
             bootstrap t c pos;
             (* Pacing. A short sleep after a productive sweep coalesces
                the next few commits into one WALCHUNK instead of
                shipping every record as its own tiny frame (per-frame
                cost — encode, two syscalls, the standby's ack — is what
                shows up on the primary's profile, not bytes). Idle
                sweeps back off exponentially to 50 ms: each wake-up is
                a run through every shard's commit mutex plus GC
                rendezvous for one more domain, pure overhead while
                nothing is written. Either way the added lag is bounded
                by the current interval. *)
             let idle = ref 0.005 in
             while not (Atomic.get t.stopping) do
               let progressed = sweep t c pos in
               update_lag t pos;
               if progressed then idle := 0.005
               else idle := Float.min (2. *. !idle) 0.05;
               Unix.sleepf !idle
             done;
             (* drain what was committed before the stop request, so a
                clean shutdown leaves the standby current *)
             let deadline = Unix.gettimeofday () +. 2.0 in
             while sweep t c pos && Unix.gettimeofday () < deadline do
               ()
             done;
             update_lag t pos
           with
          | Bw_client.Server_closed | Bw_client.Protocol_error _ | Resync
          | Unix.Unix_error _
          ->
            ());
          Bw_client.close c;
          if not (Atomic.get t.stopping) then Unix.sleepf 0.05
    done

  let start t =
    if t.domain <> None then invalid_arg "Shipper.start: already running";
    t.domain <- Some (Domain.spawn (fun () -> run t))

  (* Signals the shipper to drain and exit, then joins it. Call with the
     write load quiesced (a drained server) so the final sweeps converge. *)
  let stop t =
    Atomic.set t.stopping true;
    Option.iter Domain.join t.domain;
    t.domain <- None
end
