type offset = int

(* Record layout within a segment:
     magic (1 byte, 0xA5) | length (4 bytes LE) | crc32 (4 bytes LE) | payload
   A magic of 0x00 (fresh segment fill) terminates the segment scan.

   On disk each segment is one file; a segment that filled up and handed
   off to a successor gets one trailing seal byte (0x5E) past its last
   record, so recovery can tell "cleanly closed" from "tail torn exactly
   at a record boundary". The seal lives only in the file — the in-memory
   image keeps the 0x00 fill, and [used] never counts it. *)

let magic = '\xA5'
let seal = '\x5E'
let header_bytes = 9

type segment = { buf : Bytes.t; mutable used : int }

type backing = {
  b_dir : string;
  mutable b_fd : Unix.file_descr; (* active (last) segment file, O_APPEND *)
  mutable b_dirty : bool; (* bytes written since the last fsync *)
  mutable b_closed : bool;
}

type t = {
  segment_bytes : int;
  segments : segment Bw_util.Growable.t;
  mutable nrecords : int;
  backing : backing option;
}

type open_stats = {
  os_records : int;
  os_truncated_bytes : int;
  os_dropped_segments : int;
}

let fresh_seg segment_bytes = { buf = Bytes.make segment_bytes '\x00'; used = 0 }

let growable_of_segment s =
  let g = Bw_util.Growable.create () in
  Bw_util.Growable.push g s;
  g

let create ?(segment_bytes = 256 * 1024) () =
  if segment_bytes < 64 then invalid_arg "Log.create: segment too small";
  {
    segment_bytes;
    segments = growable_of_segment (fresh_seg segment_bytes);
    nrecords = 0;
    backing = None;
  }

let segment_count t = Bw_util.Growable.length t.segments
let segment_bytes t = t.segment_bytes
let records t = t.nrecords
let dir t = Option.map (fun b -> b.b_dir) t.backing
let seg t i = Bw_util.Growable.get t.segments i

let bytes_used t =
  Bw_util.Growable.fold_left (fun acc s -> acc + s.used) 0 t.segments

(* ---- file plumbing ---- *)

let segment_path ~dir i = Filename.concat dir (Printf.sprintf "seg-%06d.log" i)
let meta_path dir = Filename.concat dir "log.meta"

let rec mkdir_p path =
  if path <> "" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_fully fd bytes pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes (pos + !written) (len - !written)
  done

let fsync_dir dirpath =
  (* Persist directory entries (created/removed/renamed files). Some
     filesystems refuse fsync on a directory fd; durability is then the
     filesystem's promise, not ours. *)
  match Unix.openfile dirpath [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd len;
      Unix.fsync fd)

(* ---- appends ---- *)

(* Encode into the in-memory image only; the caller mirrors to disk. *)
let append_mem t payload =
  let need = header_bytes + String.length payload in
  if need > t.segment_bytes then
    invalid_arg "Log.append: record larger than a segment";
  let seg_idx, s =
    let last = segment_count t - 1 in
    let s = seg t last in
    if s.used + need <= t.segment_bytes then (last, s)
    else begin
      let s' = fresh_seg t.segment_bytes in
      Bw_util.Growable.push t.segments s';
      (last + 1, s')
    end
  in
  let pos = s.used in
  Bytes.set s.buf pos magic;
  Bytes.set_int32_le s.buf (pos + 1) (Int32.of_int (String.length payload));
  Bytes.set_int32_le s.buf (pos + 5) (Bw_util.Crc32.string payload);
  Bytes.blit_string payload 0 s.buf (pos + header_bytes)
    (String.length payload);
  s.used <- pos + need;
  t.nrecords <- t.nrecords + 1;
  (seg_idx * t.segment_bytes) + pos

(* Seal the filled segment's file and make its successor the active one.
   The old segment's unsynced records ride along on the seal's fsync. *)
let file_switch_segment b new_idx =
  let seal_byte = Bytes.make 1 seal in
  write_fully b.b_fd seal_byte 0 1;
  Unix.fsync b.b_fd;
  Unix.close b.b_fd;
  b.b_fd <-
    Unix.openfile
      (segment_path ~dir:b.b_dir new_idx)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
      0o644;
  b.b_dirty <- false;
  fsync_dir b.b_dir

let append t payload =
  match t.backing with
  | None -> append_mem t payload
  | Some b when b.b_closed -> append_mem t payload
  | Some b ->
      let last_before = segment_count t - 1 in
      let off = append_mem t payload in
      let seg_idx = off / t.segment_bytes and pos = off mod t.segment_bytes in
      if seg_idx > last_before then file_switch_segment b seg_idx;
      let s = seg t seg_idx in
      write_fully b.b_fd s.buf pos (header_bytes + String.length payload);
      b.b_dirty <- true;
      off

let sync t =
  match t.backing with
  | Some b when b.b_dirty && not b.b_closed ->
      Unix.fsync b.b_fd;
      b.b_dirty <- false
  | _ -> ()

let close t =
  match t.backing with
  | Some b when not b.b_closed ->
      if b.b_dirty then Unix.fsync b.b_fd;
      Unix.close b.b_fd;
      b.b_closed <- true;
      b.b_dirty <- false
  | _ -> ()

(* ---- reads ---- *)

let decode_at t off =
  let seg_idx = off / t.segment_bytes and pos = off mod t.segment_bytes in
  if seg_idx < 0 || pos < 0 || seg_idx >= segment_count t then
    failwith "Log.read: bad address";
  let s = seg t seg_idx in
  if pos + header_bytes > s.used then failwith "Log.read: bad address";
  if Bytes.get s.buf pos <> magic then failwith "Log.read: bad address";
  let len = Int32.to_int (Bytes.get_int32_le s.buf (pos + 1)) in
  if len < 0 || pos + header_bytes + len > s.used then
    failwith "Log.read: bad address";
  let stored_crc = Bytes.get_int32_le s.buf (pos + 5) in
  let payload = Bytes.sub_string s.buf (pos + header_bytes) len in
  if Bw_util.Crc32.string payload <> stored_crc then
    failwith "Log.read: corrupted record (crc mismatch)";
  payload

let read = decode_at

let iter t f =
  for seg_idx = 0 to segment_count t - 1 do
    let s = seg t seg_idx in
    let pos = ref 0 in
    while !pos + header_bytes <= s.used && Bytes.get s.buf !pos = magic do
      let off = (seg_idx * t.segment_bytes) + !pos in
      let payload = decode_at t off in
      f off payload;
      pos := !pos + header_bytes + String.length payload
    done
  done

(* Resumable scan: offer records in log order starting at address [off]
   (0, or a cursor returned by a previous call). [f] answers whether to
   consume the offered record and keep going — answering [false] stops
   the walk with the cursor parked *before* that record. The return
   value is the resume cursor: one past the last record consumed. A
   cursor parked at a sealed segment's tail hops to the successor
   segment on the next call, so cursors stay valid across appends and
   segment seals; {!compact} relocates records and invalidates every
   outstanding cursor. *)
let iter_from t off f =
  let seg_idx = ref (off / t.segment_bytes)
  and pos = ref (off mod t.segment_bytes) in
  if !seg_idx >= segment_count t then begin
    (* address past the image (stale cursor): park at the end *)
    seg_idx := segment_count t - 1;
    pos := (seg t !seg_idx).used
  end;
  let cont = ref true in
  while !cont do
    let s = seg t !seg_idx in
    if !pos + header_bytes <= s.used && Bytes.get s.buf !pos = magic then begin
      let addr = (!seg_idx * t.segment_bytes) + !pos in
      let payload = decode_at t addr in
      if f addr payload then
        pos := !pos + header_bytes + String.length payload
      else cont := false
    end
    else if !seg_idx < segment_count t - 1 then begin
      incr seg_idx;
      pos := 0
    end
    else cont := false
  done;
  (!seg_idx * t.segment_bytes) + !pos

(* ---- compaction ---- *)

let reset_segments t =
  Bw_util.Growable.clear t.segments;
  Bw_util.Growable.push t.segments (fresh_seg t.segment_bytes);
  t.nrecords <- 0

(* Replace the segment files with the rebuilt in-memory image, each via
   temp-and-rename. The multi-file swap is not crash-atomic (see .mli);
   durable callers checkpoint into fresh generations instead. *)
let rewrite_files t b =
  Unix.close b.b_fd;
  let n = segment_count t in
  for i = 0 to n - 1 do
    let final = segment_path ~dir:b.b_dir i in
    let tmp = final ^ ".tmp" in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let s = seg t i in
        write_fully fd s.buf 0 s.used;
        if i < n - 1 then write_fully fd (Bytes.make 1 seal) 0 1;
        Unix.fsync fd);
    Sys.rename tmp final
  done;
  let stale = ref n in
  while Sys.file_exists (segment_path ~dir:b.b_dir !stale) do
    Sys.remove (segment_path ~dir:b.b_dir !stale);
    incr stale
  done;
  fsync_dir b.b_dir;
  b.b_fd <-
    Unix.openfile
      (segment_path ~dir:b.b_dir (n - 1))
      [ Unix.O_WRONLY; Unix.O_APPEND ]
      0o644;
  b.b_dirty <- false

let compact t ~live ~relocate =
  let before = bytes_used t in
  let survivors = ref [] in
  iter t (fun off payload ->
      if live off then survivors := (off, payload) :: !survivors);
  let survivors = List.rev !survivors in
  reset_segments t;
  List.iter
    (fun (old_off, payload) ->
      let new_off = append_mem t payload in
      relocate old_off new_off)
    survivors;
  (match t.backing with
  | Some b when not b.b_closed -> rewrite_files t b
  | _ -> ());
  before - bytes_used t

(* ---- open / recovery ---- *)

let read_meta dirpath =
  let path = meta_path dirpath in
  if not (Sys.file_exists path) then None
  else
    match
      Scanf.sscanf (String.trim (read_file path)) "segment_bytes=%d%!"
        (fun n -> n)
    with
    | n when n >= 64 -> Some n
    | _ -> failwith (Printf.sprintf "Log.open_dir: bad meta file %s" path)
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
        failwith (Printf.sprintf "Log.open_dir: bad meta file %s" path)

let write_meta dirpath segment_bytes =
  let path = meta_path dirpath in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = Printf.sprintf "segment_bytes=%d\n" segment_bytes in
      write_fully fd (Bytes.of_string line) 0 (String.length line);
      Unix.fsync fd)

(* Walk one segment file's records; returns [(used, nrecs, clean)] where
   [used] is the byte length of the valid record prefix and [clean] means
   the bytes past it are legitimate (a seal closing a non-final segment,
   or nothing at all). *)
let scan_segment ~segment_bytes ~is_last data =
  let size = String.length data in
  let pos = ref 0 and nrecs = ref 0 and stop = ref false in
  while not !stop do
    let p = !pos in
    if p + header_bytes > size || p + header_bytes > segment_bytes then
      stop := true
    else if data.[p] <> magic then stop := true
    else begin
      let len = Int32.to_int (String.get_int32_le data (p + 1)) in
      if
        len < 0
        || p + header_bytes + len > size
        || p + header_bytes + len > segment_bytes
      then stop := true
      else begin
        let stored = String.get_int32_le data (p + 5) in
        let payload = String.sub data (p + header_bytes) len in
        if Bw_util.Crc32.string payload <> stored then stop := true
        else begin
          pos := p + header_bytes + len;
          incr nrecs
        end
      end
    end
  done;
  let clean =
    if is_last then !pos = size
    else !pos + 1 = size && data.[!pos] = seal
  in
  (!pos, !nrecs, clean)

let open_dir ?(segment_bytes = 256 * 1024) ?(readonly = false) ~dir:dirpath ()
    =
  if segment_bytes < 64 then invalid_arg "Log.open_dir: segment too small";
  if not readonly then mkdir_p dirpath;
  let seg_bytes =
    match if Sys.file_exists dirpath then read_meta dirpath else None with
    | Some sb -> sb
    | None ->
        if not readonly then write_meta dirpath segment_bytes;
        segment_bytes
  in
  let nfiles = ref 0 in
  while Sys.file_exists (segment_path ~dir:dirpath !nfiles) do
    incr nfiles
  done;
  (* Sweep leftovers: compaction temp files, and segment files past a gap
     in the numbering (they can't be part of the contiguous log and would
     splice stale data into a future recovery once the gap refills).
     Read-only opens report what the scan would do without touching the
     directory, so a live store can be inspected from another process. *)
  if not readonly then
    Array.iter
      (fun name ->
        let path = Filename.concat dirpath name in
        if Filename.check_suffix name ".tmp" then Sys.remove path
        else
          match Scanf.sscanf name "seg-%d.log%!" (fun i -> i) with
          | i when i >= !nfiles -> Sys.remove path
          | _ -> ()
          | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ())
      (Sys.readdir dirpath);
  let segments = Bw_util.Growable.create () in
  let nrecords = ref 0 in
  let truncated = ref 0 and dropped = ref 0 in
  let torn = ref false in
  for i = 0 to !nfiles - 1 do
    let path = segment_path ~dir:dirpath i in
    if !torn then begin
      (* a predecessor's tail was cut: nothing after it may survive *)
      truncated := !truncated + (Unix.stat path).Unix.st_size;
      incr dropped;
      if not readonly then Sys.remove path
    end
    else begin
      let data = read_file path in
      let size = String.length data in
      let is_last = i = !nfiles - 1 in
      let used, nrecs, clean = scan_segment ~segment_bytes:seg_bytes ~is_last data in
      let s = fresh_seg seg_bytes in
      Bytes.blit_string data 0 s.buf 0 used;
      s.used <- used;
      Bw_util.Growable.push segments s;
      nrecords := !nrecords + nrecs;
      if is_last then begin
        if used < size then begin
          (* cut the torn tail — unless it's just a seal written right
             before a crash beat the successor file into existence *)
          if not (size = used + 1 && data.[used] = seal) then
            truncated := !truncated + (size - used);
          if not readonly then truncate_file path used
        end
      end
      else if not clean then begin
        truncated := !truncated + (size - used);
        if not readonly then truncate_file path used;
        torn := true
      end
    end
  done;
  if Bw_util.Growable.length segments = 0 then begin
    Bw_util.Growable.push segments (fresh_seg seg_bytes);
    if not readonly then
      Unix.close
        (Unix.openfile
           (segment_path ~dir:dirpath 0)
           [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
           0o644)
  end;
  if not readonly then fsync_dir dirpath;
  let backing =
    if readonly then None
    else begin
      let active_idx = Bw_util.Growable.length segments - 1 in
      let fd =
        Unix.openfile
          (segment_path ~dir:dirpath active_idx)
          [ Unix.O_WRONLY; Unix.O_APPEND ]
          0o644
      in
      Some { b_dir = dirpath; b_fd = fd; b_dirty = false; b_closed = false }
    end
  in
  let t =
    { segment_bytes = seg_bytes; segments; nrecords = !nrecords; backing }
  in
  ( t,
    {
      os_records = !nrecords;
      os_truncated_bytes = !truncated;
      os_dropped_segments = !dropped;
    } )

(* ---- test hooks ---- *)

let corrupt_for_testing t off =
  let seg_idx = off / t.segment_bytes and pos = off mod t.segment_bytes in
  let s = seg t seg_idx in
  let len = Int32.to_int (Bytes.get_int32_le s.buf (pos + 1)) in
  (* An empty record has no payload byte to flip, and the byte past its
     header is the *next* record's magic (flipping that silently ends the
     iter scan instead of failing the CRC) — flip a stored-CRC byte. *)
  let target = if len = 0 then pos + 5 else pos + header_bytes in
  Bytes.set s.buf target
    (Char.chr (Char.code (Bytes.get s.buf target) lxor 0xFF));
  match t.backing with
  | Some b when not b.b_closed ->
      (* A fresh non-O_APPEND fd: Linux makes pwrite on an O_APPEND fd
         append regardless of the offset. *)
      let fd =
        Unix.openfile (segment_path ~dir:b.b_dir seg_idx) [ Unix.O_WRONLY ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd target Unix.SEEK_SET);
          write_fully fd (Bytes.make 1 (Bytes.get s.buf target)) 0 1;
          Unix.fsync fd)
  | _ -> ()
