(** Append-only delta write-ahead log with group commit.

    Between checkpoints, every applied write is recorded here before it
    is acknowledged — the WAL append (plus its fsync, when enabled) *is*
    the commit point. One {!Make.commit} call writes one log record
    covering a whole batch of operations and issues at most one fsync,
    so the server's BATCH frame and [execute_batch] amortize durability
    the same way they amortize tree descents: the fsync cost is paid per
    group, not per op (the "fast, durable updates" recipe the elimination
    (a,b)-tree paper applies to batched leaf updates).

    Record payload: op count, then per op a tag byte ('i'/'u'/'p'/'r')
    followed by the codec-encoded key (and value, except removes). The
    record framing, CRC and torn-tail recovery all come from {!Log}: a
    crash can only lose a suffix of whole commit groups, never tear one.

    Replay positions ([pos], [replay ~from]) count *ops*, not records —
    group sizes vary run to run, op counts do not. The tail reader
    ({!Make.tail}) additionally tracks whole commit records: a
    replication stream ships records, so standby acknowledgements are
    record-granular even though checkpoint positions are op-granular. *)

(* A tail-reader position, outside the functor so replication plumbing
   can stay monomorphic. Tracks the same point three ways: commit
   records consumed, ops consumed, and the underlying [Log] resume
   address (which makes steady-state polls O(new records) instead of
   O(log)). Only valid for the WAL generation it was created against —
   and invalidated by [Log.compact], which the durable store never runs
   on a WAL. *)
type cursor = {
  mutable c_rec : int;  (** commit records consumed *)
  mutable c_ops : int;  (** ops consumed *)
  mutable c_off : int;  (** [Log] resume address *)
}

let fresh_cursor () = { c_rec = 0; c_ops = 0; c_off = 0 }

module Make (KC : Codec.CODEC) (VC : Codec.CODEC) = struct
  type op =
    | W_insert of KC.t * VC.t
    | W_update of KC.t * VC.t
    | W_upsert of KC.t * VC.t
    | W_remove of KC.t

  type t = {
    log : Log.t;
    mutable nops : int;  (* ops committed, recovered ones included *)
    mu : Mutex.t;  (* serializes group commits *)
    do_fsync : bool;
    obs : Bw_obs.sink;
  }

  let encode_ops ops =
    let buf = Buffer.create 256 in
    Codec.encode_int buf (List.length ops);
    List.iter
      (fun op ->
        match op with
        | W_insert (k, v) ->
            Buffer.add_char buf 'i';
            KC.encode buf k;
            VC.encode buf v
        | W_update (k, v) ->
            Buffer.add_char buf 'u';
            KC.encode buf k;
            VC.encode buf v
        | W_upsert (k, v) ->
            Buffer.add_char buf 'p';
            KC.encode buf k;
            VC.encode buf v
        | W_remove k ->
            Buffer.add_char buf 'r';
            KC.encode buf k)
      ops;
    Buffer.contents buf

  let decode_ops payload =
    let pos = ref 0 in
    let n = Codec.decode_int payload ~pos in
    List.init n (fun _ ->
        let tag = payload.[!pos] in
        incr pos;
        match tag with
        | 'i' ->
            let k = KC.decode payload ~pos in
            W_insert (k, VC.decode payload ~pos)
        | 'u' ->
            let k = KC.decode payload ~pos in
            W_update (k, VC.decode payload ~pos)
        | 'p' ->
            let k = KC.decode payload ~pos in
            W_upsert (k, VC.decode payload ~pos)
        | 'r' -> W_remove (KC.decode payload ~pos)
        | c -> failwith (Printf.sprintf "Wal: bad op tag %C" c))

  let record_ops payload =
    let pos = ref 0 in
    Codec.decode_int payload ~pos

  let open_dir ?segment_bytes ?readonly ?(fsync = true) ?(obs = Bw_obs.Null)
      ~dir () =
    let log, stats = Log.open_dir ?segment_bytes ?readonly ~dir () in
    let nops = ref 0 in
    Log.iter log (fun _ payload -> nops := !nops + record_ops payload);
    ( { log; nops = !nops; mu = Mutex.create (); do_fsync = fsync; obs },
      stats )

  let in_memory ?segment_bytes ?(obs = Bw_obs.Null) () =
    {
      log = Log.create ?segment_bytes ();
      nops = 0;
      mu = Mutex.create ();
      do_fsync = false;
      obs;
    }

  let pos t = t.nops
  let records t = Log.records t.log
  let bytes t = Log.bytes_used t.log

  (* One group commit: one record, at most one fsync. Returns once the
     group is durable (fsync enabled) or at least logged (disabled). *)
  let commit t ~tid ops =
    match ops with
    | [] -> ()
    | ops ->
        let payload = encode_ops ops in
        Mutex.lock t.mu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.mu)
          (fun () ->
            ignore (Log.append t.log payload);
            if t.do_fsync then Log.sync t.log;
            t.nops <- t.nops + List.length ops);
        if Bw_obs.enabled t.obs then begin
          Bw_obs.incr t.obs ~tid Bw_obs.C_wal_appends;
          Bw_obs.add t.obs ~tid Bw_obs.C_wal_bytes (String.length payload);
          if t.do_fsync then Bw_obs.incr t.obs ~tid Bw_obs.C_wal_fsyncs
        end

  (* Feed every op from position [from] onward (in commit order) to [f];
     returns the number of ops visited. *)
  let replay ?(from = 0) t f =
    let seen = ref 0 and fed = ref 0 in
    Log.iter t.log (fun _ payload ->
        List.iter
          (fun op ->
            if !seen >= from then begin
              f op;
              incr fed
            end;
            incr seen)
          (decode_ops payload));
    !fed

  (* Hand [f] up to [limit] committed record groups (raw encoded
     payloads, shippable verbatim) past [cur], advancing the cursor past
     each one fed; returns how many were fed. Runs under the
     group-commit mutex: a record is either fully committed and visible
     or not yet started, and the segment image is quiescent while we
     read it — the publication the OCaml memory model needs between an
     appending domain and a tailing one. *)
  let tail t ?(limit = max_int) cur f =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let fed = ref 0 in
        let off =
          Log.iter_from t.log cur.c_off (fun _ payload ->
              if !fed >= limit then false
              else begin
                f payload;
                incr fed;
                cur.c_rec <- cur.c_rec + 1;
                cur.c_ops <- cur.c_ops + record_ops payload;
                true
              end)
        in
        cur.c_off <- off;
        !fed)

  (* Advance [cur] over whole records until [ops] ops have been
     consumed, without handing them out — aligns a fresh cursor with a
     checkpoint manifest's [wal_pos]. Checkpoints quiesce writers before
     reading [pos], so a manifest's [wal_pos] always lands on a record
     boundary; raises if this one doesn't (cursor/generation mixup). *)
  let seek t cur ~ops =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let off =
          Log.iter_from t.log cur.c_off (fun _ payload ->
              if cur.c_ops >= ops then false
              else begin
                cur.c_rec <- cur.c_rec + 1;
                cur.c_ops <- cur.c_ops + record_ops payload;
                true
              end)
        in
        cur.c_off <- off;
        if cur.c_ops <> ops then
          failwith
            (Printf.sprintf
               "Wal.seek: position %d is not a record boundary (reached %d)"
               ops cur.c_ops))

  let sync t = Log.sync t.log
  let close t = Log.close t.log
end
