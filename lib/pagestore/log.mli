(** A log-structured flash store (the LLAMA substrate, §2.2/§8).

    The paper emphasizes that the Bw-Tree's mapping table exists not only
    for lock-free in-memory updates but "also serves the purpose of
    supporting log-structured updates when deployed with SSD": node
    pointers can designate flash offsets, and pages are written
    out-of-place to an append-only log. This module is that log, with two
    backends behind one API:

    - {b In-memory} ({!create}): fixed-size [Bytes] segments, the
      original simulated device. Dies with the process.
    - {b File-backed} ({!open_dir}): one file per segment under a data
      directory, written through on every append and made durable by
      {!sync}. Reopening the directory recovers the log; a torn tail
      (truncated or bit-flipped by a crash) is cut back to the longest
      valid record prefix.

    Both backends share the record format:
    {v magic (1B, 0xA5) | length (4B LE) | crc32 (4B LE) | payload v}
    Records never span segments. On disk, a segment that filled up and
    handed off to a successor ends with a one-byte seal marker (0x5E), so
    recovery can tell a cleanly closed segment from one whose tail was
    torn exactly at a record boundary — without the seal, a truncation
    landing on a boundary would silently splice later segments onto a
    shortened one and recovery would no longer be prefix-shaped.

    Offsets are stable logical addresses (segment index ⋅ segment size +
    position) until {!compact} relocates live records and invalidates the
    old addresses via the caller's [relocate] callback — exactly how
    LLAMA fixes up the mapping table. *)

type t

type offset = int
(** Logical address of a record in the log. *)

val create : ?segment_bytes:int -> unit -> t
(** In-memory log. Default segment size 256 KiB. *)

(** What {!open_dir}'s recovery scan found. A fresh directory reports
    all zeros. *)
type open_stats = {
  os_records : int;  (** valid records recovered *)
  os_truncated_bytes : int;
      (** torn-tail bytes cut (including whole dropped segments) *)
  os_dropped_segments : int;
      (** segment files discarded because they sat past a corruption *)
}

val open_dir :
  ?segment_bytes:int -> ?readonly:bool -> dir:string -> unit -> t * open_stats
(** File-backed log rooted at [dir] (created if missing, along with
    missing parents). The segment size is fixed at directory creation
    (recorded in [log.meta]); on reopen the recorded value wins and
    [?segment_bytes] is ignored. The recovery scan walks segment files
    in order and truncates at the first invalid byte: everything from
    there on — including all later segment files — is discarded, so the
    surviving records are exactly the longest valid prefix.

    [?readonly] (default false) loads the same longest-valid-prefix image
    without mutating the directory at all: no creation, no truncation, no
    sweeps, no file descriptor held open. The stats still report what a
    writable open {e would} cut. The resulting log behaves like an
    in-memory one ({!dir} is [None]); appends land only in memory. Safe
    to point at a live store's directory from another process — e.g. the
    promotion-time WAL tail replay and [bwt_inspect --data-dir]. *)

val dir : t -> string option
(** The backing directory, or [None] for an in-memory log. *)

val sync : t -> unit
(** fsync the active segment file (no-op in memory or when nothing was
    appended since the last sync). Durability point for group commit. *)

val append : t -> string -> offset
(** Append one record; returns its address. File-backed logs write
    through to the segment file (durable after the next {!sync}).
    Raises [Invalid_argument] if the payload cannot fit a segment. *)

val read : t -> offset -> string
(** Fetch a record's payload. Raises [Failure] on an invalid address or a
    corrupted record (CRC mismatch). *)

val iter : t -> (offset -> string -> unit) -> unit
(** Visit every record (live and dead) in log order. *)

val iter_from : t -> offset -> (offset -> string -> bool) -> offset
(** [iter_from t off f] offers records in log order starting at address
    [off] — 0 for the log's start, or a cursor returned by a previous
    call. [f] answers whether to consume the offered record and keep
    going; answering [false] stops the walk parked {e before} that
    record. The return value is the resume cursor: one past the last
    record consumed (equal to [off] when nothing was). Cursors stay
    valid across appends and segment seals — a cursor parked at a sealed
    segment's tail hops to the successor on the next call — but
    {!compact} relocates records and invalidates every outstanding
    cursor. The WAL tail reader is built on this. *)

(** Accounting. *)

val records : t -> int
val bytes_used : t -> int
(** Total bytes occupied, headers included (seal markers excluded). *)

val segment_count : t -> int
val segment_bytes : t -> int

val compact : t -> live:(offset -> bool) -> relocate:(offset -> offset -> unit) -> int
(** [compact t ~live ~relocate] rewrites the log keeping only records for
    which [live] answers true, calling [relocate old_off new_off] for each
    survivor, and returns the number of bytes reclaimed. Single-threaded
    (the simulated device has one GC context, like a flash FTL).
    File-backed logs rewrite their segment files via temp-and-rename;
    the multi-file swap is not crash-atomic, so callers needing
    crash-safe space reclamation should write a fresh log generation
    instead (see [Store]). *)

val close : t -> unit
(** Release the active file descriptor (after an fsync). In-memory: no-op.
    The log must not be used afterwards. *)

val segment_path : dir:string -> int -> string
(** Path of segment [i]'s file under [dir] — for tests that tear logs
    apart on purpose. *)

val corrupt_for_testing : t -> offset -> unit
(** Flip a byte of the record at [offset] so that {!read} fails its CRC
    check — a payload byte, or a stored-CRC header byte when the payload
    is empty (an empty record has no payload byte to flip; flipping past
    the header would hit the {e next} record's magic and truncate scans
    instead of failing the CRC). Write-through on file-backed logs.
    Tests only. *)
