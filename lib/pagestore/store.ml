(** A durable tree: checkpoint generations + delta WAL under one
    directory, with crash recovery.

    Layout (the LevelDB CURRENT-file idiom, applied to {!Log} dirs):

    {v
      <dir>/CURRENT         "gen=N"  — the committed generation
      <dir>/pages-<N>/      Log of checkpoint pages + manifest
      <dir>/wal-<N>/        Log of delta ops applied since that snapshot
    v}

    The committed state is always [pages-N] plus a prefix of [wal-N].
    A checkpoint writes the *next* generation in full (snapshot pages,
    then an empty successor WAL), flips [CURRENT] with an atomic rename,
    and only then deletes the old generation — every crash window leaves
    either the old generation intact or the new one complete, never an
    in-place half-rewrite. Checkpoints must run quiesced (no in-flight
    ops): the server checkpoints after its drain, the stress harness at
    a phase barrier. {!Make.checkpoint} additionally folds the epoch
    ([T.quiesce]) so the snapshot is epoch-consistent — no retired-but-
    unreclaimed state is reachable from it.

    Recovery trusts [CURRENT] when it names a loadable generation and
    otherwise falls back to the newest generation with a valid manifest
    (a crash during the very first open can leave pages without a
    CURRENT). It then replays the generation's WAL suffix from the
    manifest's [wal_pos] and sweeps every other generation directory.

    Commit point: an op is committed once its WAL record is appended
    (and fsynced, unless [fsync:false]) — {!Make.wrap_driver} logs each
    applied write after the tree accepts it and before the caller sees
    the result, batching a whole [batch] call into one group commit.
    WAL order may disagree with apply order for concurrent writers to
    the same key (the append happens outside the tree's critical
    section); recovery therefore promises a state reachable by *some*
    sequential application of a prefix-closed subset of acknowledged
    ops — per thread (and per shard), a prefix of what it was told was
    durable. *)

type recovery_stats = {
  rs_gen : int;  (** generation recovered into *)
  rs_fresh : bool;  (** no usable prior state was found *)
  rs_snapshot_items : int;  (** items bulk-loaded from checkpoint pages *)
  rs_pages : int;  (** checkpoint page records loaded *)
  rs_wal_ops : int;  (** delta ops replayed from the WAL suffix *)
  rs_wal_records : int;  (** commit records in the recovered WAL *)
  rs_truncated_bytes : int;  (** torn bytes cut across both logs *)
  rs_dropped_segments : int;  (** segment files dropped past a tear *)
}

(* Combine per-shard recoveries into one forest-wide summary. *)
let merge_stats a b =
  {
    rs_gen = max a.rs_gen b.rs_gen;
    rs_fresh = a.rs_fresh && b.rs_fresh;
    rs_snapshot_items = a.rs_snapshot_items + b.rs_snapshot_items;
    rs_pages = a.rs_pages + b.rs_pages;
    rs_wal_ops = a.rs_wal_ops + b.rs_wal_ops;
    rs_wal_records = a.rs_wal_records + b.rs_wal_records;
    rs_truncated_bytes = a.rs_truncated_bytes + b.rs_truncated_bytes;
    rs_dropped_segments = a.rs_dropped_segments + b.rs_dropped_segments;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "gen=%d%s snapshot_items=%d pages=%d wal_ops=%d wal_records=%d \
     truncated_bytes=%d dropped_segments=%d"
    s.rs_gen
    (if s.rs_fresh then " (fresh)" else "")
    s.rs_snapshot_items s.rs_pages s.rs_wal_ops s.rs_wal_records
    s.rs_truncated_bytes s.rs_dropped_segments

(* ---- directory plumbing ---- *)

let current_path dir = Filename.concat dir "CURRENT"
let pages_dir dir g = Filename.concat dir (Printf.sprintf "pages-%06d" g)
let wal_dir dir g = Filename.concat dir (Printf.sprintf "wal-%06d" g)

let rec mkdir_p path =
  if path <> "" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dirpath =
  match Unix.openfile dirpath [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | Unix.S_DIR ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let read_current dir =
  let path = current_path dir in
  if not (Sys.file_exists path) then None
  else
    match
      Scanf.sscanf (String.trim (read_file path)) "gen=%d%!" (fun g -> g)
    with
    | g when g >= 0 -> Some g
    | _ -> None
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let write_current dir g =
  let path = current_path dir in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = Printf.sprintf "gen=%d\n" g in
      let b = Bytes.of_string line in
      let written = ref 0 in
      while !written < Bytes.length b do
        written :=
          !written + Unix.write fd b !written (Bytes.length b - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir dir

(* ---- replication source (primary side) ----

   Monomorphic view of a store for the WAL shipper: the per-shard WAL is
   exactly a replication stream, so the source hands out raw bytes —
   encoded checkpoint page records and encoded commit-record payloads —
   that a standby running the same codecs applies verbatim. Keeping the
   types outside the functor lets [Bw_replica]'s shipper drive a
   heterogeneous array of shard sources without functor plumbing. *)

(* One poll against a source. *)
type repl_poll =
  | Rp_records of string list
      (** committed record-group payloads past the cursor, in commit
          order; [[]] means caught up *)
  | Rp_handoff of int
      (** the polled generation is fully drained and retired; restart
          the cursor at record 0 of this (checkpoint-complete) one *)
  | Rp_gone
      (** the polled generation is unknown — the standby lost the race
          with compaction of history and must re-bootstrap *)

(* A bootstrap snapshot: the newest checkpoint plus where its WAL
   suffix starts. [snap_cursor] is already seeked past the ops the
   pages fold in, so polling with it streams exactly the suffix. *)
type repl_snapshot = {
  snap_gen : int;
  snap_pages : string list;  (** raw encoded page records, in key order *)
  snap_items : int;  (** manifest item count, for standby verification *)
  snap_start_rec : int;  (** commit records folded into the pages *)
  snap_start_ops : int;  (** ops folded into the pages (= [wal_pos]) *)
  snap_cursor : Wal.cursor;
}

type repl_source = {
  src_dir : string;  (** the shard's data directory (promotion replay) *)
  src_gen : unit -> int;
  src_snapshot : unit -> repl_snapshot;
  src_poll : gen:int -> cursor:Wal.cursor -> limit:int -> repl_poll;
  src_totals : gen:int -> (int * int) option;
      (** (records, payload bytes) committed so far in a generation —
          the minuend of the standby-lag gauges *)
}

(* Generation numbers present on disk (from either kind of dir), newest
   first. *)
let gens_on_disk dir =
  let gens = Hashtbl.create 8 in
  Array.iter
    (fun name ->
      let note fmt =
        match Scanf.sscanf name fmt (fun g -> g) with
        | g -> Hashtbl.replace gens g ()
        | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
      in
      note "pages-%d%!";
      note "wal-%d%!")
    (Sys.readdir dir);
  List.sort (fun a b -> compare b a) (Hashtbl.fold (fun g () l -> g :: l) gens [])

module Make
    (KC : Codec.CODEC)
    (T : Bwtree.S with type key = KC.t and type value = int) =
struct
  module CP = Checkpoint.Make (Codec.Int) (T)
  module W = Wal.Make (KC) (Codec.Int)

  type t = {
    dir : string;
    tree : T.t;
    mutable wal : W.t;
    mutable gen : int;
    mutable prev_wal : (int * W.t) option;
        (* the WAL retired by the last full checkpoint, kept as a closed
           in-memory image so a replication cursor still tailing the old
           generation can drain it before handing off; replaced (and the
           older image dropped) at the next full checkpoint *)
    fsync : bool;
    segment_bytes : int option;
    page_items : int;
    gc_dead_bytes : int;
        (* incremental checkpoints append changed pages in place, so a
           long chain accumulates dead page records; once the dead share
           of the pages log passes this threshold the next incremental
           escalates to a full checkpoint, which rewrites only live
           pages into a fresh generation — GC without any in-place
           rewrite, so every crash window stays covered by the
           CURRENT-flip argument *)
    mutable gc_runs : int;
    mutable gc_bytes : int;  (* total bytes reclaimed by escalations *)
    mutable live_page_bytes : int option;
        (* payload bytes of the newest manifest's live page records,
           maintained from each checkpoint's save report so the
           incremental dead-share test needs no re-read of the live
           dataset; [None] until the first checkpoint after recovery
           (that one checkpoint measures the recovered manifest by
           reading it — a one-time cost, not per-incremental) *)
    obs : Bw_obs.sink;
    mu : Mutex.t;  (* serializes checkpoint against close *)
  }

  let tree t = t.tree
  let gen t = t.gen
  let wal t = t.wal
  let wal_ops t = W.pos t.wal
  let gc_stats t = (t.gc_runs, t.gc_bytes)

  let apply_op ?on_replay tree op =
    (match on_replay with Some f -> f op | None -> ());
    match op with
    | W.W_insert (k, v) -> ignore (T.insert tree k v : bool)
    | W.W_update (k, v) -> ignore (T.update tree k v : bool)
    | W.W_upsert (k, v) -> T.upsert tree k v
    | W.W_remove k -> ignore (T.delete tree k 0 : bool)

  (* Newest decodable manifest in a pages log. Incremental checkpoints
     append manifests in place, so "newest decodable" is the committed
     one — a torn incremental append simply never becomes newest. *)
  let newest_manifest plog =
    let newest = ref None in
    Log.iter plog (fun off _ ->
        match CP.manifest plog off with
        | _ -> newest := Some off
        | exception Failure _ -> ());
    !newest

  (* Try to load generation [g]'s snapshot; None when its pages log has
     no decodable manifest (an unfinished checkpoint). *)
  let try_load_gen ?config ?obs ?segment_bytes ?readonly dir g =
    if not (Sys.file_exists (pages_dir dir g)) then None
    else begin
      let plog, pstats =
        Log.open_dir ?segment_bytes ?readonly ~dir:(pages_dir dir g) ()
      in
      match newest_manifest plog with
      | None ->
          Log.close plog;
          None
      | Some moff -> (
          match
            let m = CP.manifest plog moff in
            (CP.load ?config ?obs plog moff, m)
          with
          | tree, m ->
              Log.close plog;
              Some (tree, m, pstats)
          | exception Failure _ ->
              Log.close plog;
              None)
    end

  let open_dir ?config ?(obs = Bw_obs.Null) ?segment_bytes ?(page_items = 128)
      ?(gc_dead_bytes = 32 * 1024 * 1024) ?(fsync = true) ?on_replay ~dir () =
    mkdir_p dir;
    (* CURRENT names the committed generation; fall back to the newest
       loadable one when it is missing or lies (first-open crash). *)
    let candidates =
      match read_current dir with
      | Some g -> g :: List.filter (fun g' -> g' <> g) (gens_on_disk dir)
      | None -> gens_on_disk dir
    in
    let loaded =
      List.fold_left
        (fun acc g ->
          match acc with
          | Some _ -> acc
          | None ->
              Option.map
                (fun (tree, m, pstats) -> (g, tree, m, pstats))
                (try_load_gen ?config ~obs ?segment_bytes dir g))
        None candidates
    in
    let st, stats =
      match loaded with
      | Some (g, tree, m, pstats) ->
          let wal, wstats =
            W.open_dir ?segment_bytes ~fsync ~obs ~dir:(wal_dir dir g) ()
          in
          let wal_ops = W.replay ~from:m.CP.wal_pos wal (apply_op ?on_replay tree) in
          ( {
              dir;
              tree;
              wal;
              gen = g;
              prev_wal = None;
              fsync;
              segment_bytes;
              page_items;
              gc_dead_bytes;
              gc_runs = 0;
              gc_bytes = 0;
              live_page_bytes = None;
              obs;
              mu = Mutex.create ();
            },
            {
              rs_gen = g;
              rs_fresh = false;
              rs_snapshot_items = m.CP.item_count;
              rs_pages = Array.length m.CP.pages;
              rs_wal_ops = wal_ops;
              rs_wal_records = W.records wal;
              rs_truncated_bytes =
                pstats.Log.os_truncated_bytes + wstats.Log.os_truncated_bytes;
              rs_dropped_segments =
                pstats.Log.os_dropped_segments + wstats.Log.os_dropped_segments;
            } )
      | None ->
          (* Fresh store (or nothing usable survived): start generation 0
             from scratch so every generation on disk is uniform —
             snapshot pages, then WAL. *)
          List.iter
            (fun g ->
              rm_rf (pages_dir dir g);
              rm_rf (wal_dir dir g))
            (gens_on_disk dir);
          let tree = T.create ?config ~obs () in
          let plog, _ = Log.open_dir ?segment_bytes ~dir:(pages_dir dir 0) () in
          ignore (CP.save ~page_items ~wal_gen:0 ~wal_pos:0 tree plog : Log.offset);
          Log.sync plog;
          Log.close plog;
          let wal, _ =
            W.open_dir ?segment_bytes ~fsync ~obs ~dir:(wal_dir dir 0) ()
          in
          ( {
              dir;
              tree;
              wal;
              gen = 0;
              prev_wal = None;
              fsync;
              segment_bytes;
              page_items;
              gc_dead_bytes;
              gc_runs = 0;
              gc_bytes = 0;
              live_page_bytes = Some 0;  (* empty tree: no page records *)
              obs;
              mu = Mutex.create ();
            },
            {
              rs_gen = 0;
              rs_fresh = true;
              rs_snapshot_items = 0;
              rs_pages = 0;
              rs_wal_ops = 0;
              rs_wal_records = 0;
              rs_truncated_bytes = 0;
              rs_dropped_segments = 0;
            } )
    in
    (* Re-point CURRENT (it may have been missing or stale) and sweep
       every other generation — crashed checkpoints, superseded state. *)
    write_current dir st.gen;
    List.iter
      (fun g ->
        if g <> st.gen then begin
          rm_rf (pages_dir dir g);
          rm_rf (wal_dir dir g)
        end)
      (gens_on_disk dir);
    rm_rf (current_path dir ^ ".tmp");
    fsync_dir dir;
    if Bw_obs.enabled obs then begin
      Bw_obs.add obs ~tid:0 Bw_obs.C_recovered_pages stats.rs_pages;
      Bw_obs.add obs ~tid:0 Bw_obs.C_recovered_wal_records stats.rs_wal_records
    end;
    (st, stats)

  (* Cut a checkpoint. The caller must have quiesced all writers (a
     drained server, a stress-phase barrier) — [scan_all] on a live tree
     would be fuzzy, and any op logged concurrently to the old WAL would
     be deleted with it. [tid] identifies the checkpointing thread to the
     epoch manager.

     [`Full] (the default) writes the *next* generation from scratch —
     snapshot pages, empty successor WAL — flips CURRENT, and deletes
     the old generation's files (its WAL survives in memory as
     [prev_wal] for replication drain). [`Incremental] stays inside the
     current generation: it appends only the leaf pages that changed
     since the previous manifest (plus a fresh manifest pointing at the
     mix of old and new page records) into the same pages log, and
     advances the manifest's [wal_pos] so recovery replays a shorter
     suffix. No WAL swap, no CURRENT flip, nothing deleted — crash-safe
     because recovery takes the newest *decodable* manifest, and a torn
     incremental append never decodes. *)
  let checkpoint ?(tid = 0) ?(mode = `Full) st =
    Mutex.lock st.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.mu)
      (fun () ->
        T.quiesce st.tree ~tid;
        (* The full branch also returns the new pages log's size so the
           GC escalation can report exact reclaimed bytes. *)
        let full () =
          let g' = st.gen + 1 in
          rm_rf (pages_dir st.dir g');
          rm_rf (wal_dir st.dir g');
          let plog, _ =
            Log.open_dir ?segment_bytes:st.segment_bytes
              ~dir:(pages_dir st.dir g') ()
          in
          let report =
            CP.save_report ~page_items:st.page_items ~wal_gen:g'
              ~wal_pos:0 st.tree plog
          in
          Log.sync plog;
          let new_bytes = Log.bytes_used plog in
          Log.close plog;
          st.live_page_bytes <- Some report.CP.sr_live_bytes;
          let wal', _ =
            W.open_dir ?segment_bytes:st.segment_bytes ~fsync:st.fsync
              ~obs:st.obs ~dir:(wal_dir st.dir g') ()
          in
          write_current st.dir g';
          (* the flip is committed: everything before [g'] is garbage
             on disk; the old WAL's memory image is kept for any
             replication cursor still draining it *)
          let old_gen = st.gen and old_wal = st.wal in
          st.gen <- g';
          st.wal <- wal';
          W.close old_wal;
          st.prev_wal <- Some (old_gen, old_wal);
          rm_rf (pages_dir st.dir old_gen);
          rm_rf (wal_dir st.dir old_gen);
          fsync_dir st.dir;
          ((report.CP.sr_pages, report.CP.sr_reused), new_bytes)
        in
        match mode with
        | `Incremental -> (
            let plog, _ =
              Log.open_dir ?segment_bytes:st.segment_bytes
                ~dir:(pages_dir st.dir st.gen) ()
            in
            let prev =
              Option.map (CP.manifest plog) (newest_manifest plog)
            in
            (* Dead share of the pages log: everything but the newest
               manifest's live page payloads. (Record headers of live
               records are counted as dead — a constant few bytes per
               page, noise against the threshold.) The live total is
               carried forward from the last checkpoint's save report;
               only the first checkpoint after recovery measures the
               recovered manifest by reading its pages. *)
            let used = Log.bytes_used plog in
            let live =
              match st.live_page_bytes with
              | Some lb -> lb
              | None -> (
                  match prev with
                  | None -> used
                  | Some m ->
                      Array.fold_left
                        (fun acc off ->
                          acc + String.length (Log.read plog off))
                        0 m.CP.pages)
            in
            if used - live > st.gc_dead_bytes then begin
              Log.close plog;
              let res, new_bytes = full () in
              let reclaimed = max 0 (used - new_bytes) in
              st.gc_runs <- st.gc_runs + 1;
              st.gc_bytes <- st.gc_bytes + reclaimed;
              Bw_obs.incr st.obs ~tid Bw_obs.C_ckpt_gc_runs;
              Bw_obs.add st.obs ~tid Bw_obs.C_ckpt_gc_bytes reclaimed;
              res
            end
            else begin
              let report =
                CP.save_report ~page_items:st.page_items ~wal_gen:st.gen
                  ~wal_pos:(W.pos st.wal) ?prev st.tree plog
              in
              Log.sync plog;
              Log.close plog;
              st.live_page_bytes <- Some report.CP.sr_live_bytes;
              (report.CP.sr_pages, report.CP.sr_reused)
            end)
        | `Full -> fst (full ()))

  let close st =
    Mutex.lock st.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.mu)
      (fun () -> W.close st.wal)

  (* Make a driver durable: log every applied write, one group commit
     per batch call. Reads and scans pass through untouched. *)
  let wrap_driver st (d : KC.t Index_iface.driver) : KC.t Index_iface.driver =
    let batch ~tid (ops : KC.t Index_iface.batch_op array) =
      let res = Index_iface.exec_batch d ~tid ops in
      let group = ref [] in
      Array.iteri
        (fun i op ->
          match (op, res.(i)) with
          | Index_iface.Bop_insert (k, v), Index_iface.Bres_applied true ->
              group := W.W_insert (k, v) :: !group
          | Index_iface.Bop_update (k, v), Index_iface.Bres_applied true ->
              group := W.W_update (k, v) :: !group
          | Index_iface.Bop_upsert (k, v), Index_iface.Bres_applied true ->
              group := W.W_upsert (k, v) :: !group
          | Index_iface.Bop_remove k, Index_iface.Bres_applied true ->
              group := W.W_remove k :: !group
          | _ -> ())
        ops;
      W.commit st.wal ~tid (List.rev !group);
      res
    in
    {
      d with
      Index_iface.name = d.Index_iface.name ^ "+wal";
      insert =
        (fun ~tid k v ->
          let ok = d.Index_iface.insert ~tid k v in
          if ok then W.commit st.wal ~tid [ W.W_insert (k, v) ];
          ok);
      update =
        (fun ~tid k v ->
          let ok = d.Index_iface.update ~tid k v in
          if ok then W.commit st.wal ~tid [ W.W_update (k, v) ];
          ok);
      remove =
        (fun ~tid k ->
          let ok = d.Index_iface.remove ~tid k in
          if ok then W.commit st.wal ~tid [ W.W_remove k ];
          ok);
      batch = Some batch;
    }

  (* Read-only recovery: load the committed state exactly as [open_dir]
     would — newest loadable generation, WAL suffix replayed into a
     fresh tree — without mutating the directory in any way (no CURRENT
     rewrite, no sweeps, no truncation, no fresh-store bootstrap). Safe
     to point at a live store owned by another process ([bwt_inspect
     --data-dir], promotion-time forensics). [None] when the directory
     holds nothing loadable. *)
  let inspect_dir ?config ?(obs = Bw_obs.Null) ?segment_bytes ~dir () =
    if not (Sys.file_exists dir) then None
    else begin
      let candidates =
        match read_current dir with
        | Some g -> g :: List.filter (fun g' -> g' <> g) (gens_on_disk dir)
        | None -> gens_on_disk dir
      in
      let loaded =
        List.fold_left
          (fun acc g ->
            match acc with
            | Some _ -> acc
            | None ->
                Option.map
                  (fun (tree, m, pstats) -> (g, tree, m, pstats))
                  (try_load_gen ?config ~obs ?segment_bytes ~readonly:true dir
                     g))
          None candidates
      in
      match loaded with
      | None -> None
      | Some (g, tree, m, pstats) ->
          let wal, wstats =
            W.open_dir ?segment_bytes ~readonly:true ~fsync:false ~obs
              ~dir:(wal_dir dir g) ()
          in
          let wal_ops = W.replay ~from:m.CP.wal_pos wal (apply_op tree) in
          Some
            ( tree,
              {
                rs_gen = g;
                rs_fresh = false;
                rs_snapshot_items = m.CP.item_count;
                rs_pages = Array.length m.CP.pages;
                rs_wal_ops = wal_ops;
                rs_wal_records = W.records wal;
                rs_truncated_bytes =
                  pstats.Log.os_truncated_bytes + wstats.Log.os_truncated_bytes;
                rs_dropped_segments =
                  pstats.Log.os_dropped_segments
                  + wstats.Log.os_dropped_segments;
              } )
    end

  (* A replication view of this store for the WAL shipper. All closures
     synchronize on [st.mu], so a concurrent checkpoint can't flip
     generations mid-read; tails additionally hold the WAL's own
     group-commit mutex. The old generation's WAL survives a full
     checkpoint as an in-memory image ([prev_wal]), so a cursor still
     draining it keeps streaming until it is exhausted and only then
     gets the handoff to the new generation — whose checkpoint folds
     exactly the drained prefix, so the standby's state is continuous
     across the switch. *)
  let repl_source st =
    let with_mu f =
      Mutex.lock st.mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock st.mu) f
    in
    let src_gen () = with_mu (fun () -> st.gen) in
    let src_snapshot () =
      with_mu (fun () ->
          let plog, _ =
            Log.open_dir ?segment_bytes:st.segment_bytes ~readonly:true
              ~dir:(pages_dir st.dir st.gen) ()
          in
          let moff =
            match newest_manifest plog with
            | Some off -> off
            | None -> failwith "Store.repl_source: generation has no manifest"
          in
          let m = CP.manifest plog moff in
          let pages =
            Array.to_list
              (Array.map (fun off -> Log.read plog off) m.CP.pages)
          in
          let cur = Wal.fresh_cursor () in
          W.seek st.wal cur ~ops:m.CP.wal_pos;
          {
            snap_gen = st.gen;
            snap_pages = pages;
            snap_items = m.CP.item_count;
            snap_start_rec = cur.Wal.c_rec;
            snap_start_ops = m.CP.wal_pos;
            snap_cursor = cur;
          })
    in
    let src_poll ~gen ~cursor ~limit =
      with_mu (fun () ->
          let tail_of w =
            let recs = ref [] in
            let n = W.tail w ~limit cursor (fun p -> recs := p :: !recs) in
            (n, List.rev !recs)
          in
          if gen = st.gen then begin
            let _, recs = tail_of st.wal in
            Rp_records recs
          end
          else
            match st.prev_wal with
            | Some (g, w) when g = gen ->
                let n, recs = tail_of w in
                (* hand off only once the retired WAL is fully drained:
                   its records are the prefix the new generation's
                   checkpoint folded in *)
                if n > 0 then Rp_records recs else Rp_handoff st.gen
            | _ -> Rp_gone)
    in
    let src_totals ~gen =
      with_mu (fun () ->
          if gen = st.gen then Some (W.records st.wal, W.bytes st.wal)
          else
            match st.prev_wal with
            | Some (g, w) when g = gen -> Some (W.records w, W.bytes w)
            | _ -> None)
    in
    { src_dir = st.dir; src_gen; src_snapshot; src_poll; src_totals }
end
