(** Checkpointing a Bw-Tree to the log-structured page store and
    recovering it.

    Real LLAMA [23] writes physical delta/base pages out-of-place and keeps
    flash addresses in the mapping table. Here the checkpoint writes the
    tree's own leaf pages: {!Bwtree.S.iter_leaf_pages} consolidates each
    leaf and hands over its packed page, whose binary key region is
    serialized verbatim by {!Leaf_page.S.encode} — no per-key re-encoding
    on the save path, which is why this functor takes no key codec. A
    manifest record indexes the page records, and recovery rebuilds a
    fresh tree from the decoded pages. The substitution preserves the
    behaviours the substrate exists for — out-of-place page writes,
    address indirection through a manifest, CRC-validated reads, and
    segment garbage collection reclaiming superseded checkpoints. *)

module Make (VC : Codec.CODEC) (T : Bwtree.S with type value = VC.t) = struct
  type manifest = {
    pages : Log.offset array;
    item_count : int;
    wal_gen : int;
        (* the WAL generation whose records continue this checkpoint *)
    wal_pos : int;
        (* ops of that WAL already folded into the pages; recovery
           replays the suffix from here *)
  }

  let page_tag = 'P'
  let manifest_tag = 'C'

  let encode_page page =
    let buf = Buffer.create 1024 in
    Buffer.add_char buf page_tag;
    T.Page.encode buf VC.encode page;
    Buffer.contents buf

  let decode_page payload =
    if String.length payload = 0 || payload.[0] <> page_tag then
      failwith "Checkpoint: not a page record";
    let pos = ref 1 in
    T.Page.decode payload ~pos ~value:(fun () -> VC.decode payload ~pos)

  let encode_manifest ~wal_gen ~wal_pos ~pages ~item_count =
    let buf = Buffer.create 256 in
    Buffer.add_char buf manifest_tag;
    Codec.encode_int buf (Array.length pages);
    Array.iter (fun off -> Codec.encode_int buf off) pages;
    Codec.encode_int buf item_count;
    Codec.encode_int buf wal_gen;
    Codec.encode_int buf wal_pos;
    Buffer.contents buf

  let decode_manifest payload =
    if String.length payload = 0 || payload.[0] <> manifest_tag then
      failwith "Checkpoint: not a manifest record";
    let pos = ref 1 in
    let n = Codec.decode_int payload ~pos in
    let pages = Array.init n (fun _ -> Codec.decode_int payload ~pos) in
    let item_count = Codec.decode_int payload ~pos in
    let wal_gen = Codec.decode_int payload ~pos in
    let wal_pos = Codec.decode_int payload ~pos in
    { pages; item_count; wal_gen; wal_pos }

  type save_report = {
    sr_manifest : Log.offset;  (* the fresh manifest's address *)
    sr_pages : int;  (* page records newly appended *)
    sr_reused : int;  (* page addresses inherited from [prev] *)
    sr_live_bytes : int;
        (* total payload bytes of the new manifest's page records
           (written + reused) — lets [Store] track the pages log's dead
           share across an incremental chain without re-reading live
           pages *)
  }

  (* Write a checkpoint of [tree] into [log]; returns where the manifest
     landed plus how much page writing it avoided.

     One page record per non-empty leaf, in key order, each written by
     [T.iter_leaf_pages] — so record granularity follows the tree's own
     leaf size, not a caller knob. [page_items] is accepted for
     compatibility and ignored. The snapshot walks the live tree, so it
     is only point-in-time if the caller quiesces writers first —
     [Store] cuts its checkpoints at epoch barriers for exactly this
     reason. [wal_gen] and [wal_pos] name the delta-WAL suffix that
     continues this snapshot; a standalone checkpoint leaves them zero.

     [prev] is an earlier manifest whose page records live in this same
     [log]: any leaf whose encoding is byte-identical to one of [prev]'s
     pages is indexed by its existing address instead of being written
     again — an incremental checkpoint in the LLAMA sense (only changed
     pages are flushed; the manifest is the mapping-table fix-up).
     Comparison is by full payload, so a reused address is always
     correct, never merely probably so. *)
  let save_report ?page_items:_ ?(wal_gen = 0) ?(wal_pos = 0) ?prev tree log =
    let known = Hashtbl.create 256 in
    (match prev with
    | None -> ()
    | Some m ->
        Array.iter
          (fun off -> Hashtbl.replace known (Log.read log off) off)
          m.pages);
    let pages = ref [] in
    let total = ref 0 in
    let written = ref 0 and reused = ref 0 in
    let live_bytes = ref 0 in
    T.iter_leaf_pages tree (fun page ->
        total := !total + T.Page.length page;
        let payload = encode_page page in
        live_bytes := !live_bytes + String.length payload;
        let off =
          match Hashtbl.find_opt known payload with
          | Some off ->
              incr reused;
              off
          | None ->
              incr written;
              Log.append log payload
        in
        pages := off :: !pages);
    let pages = Array.of_list (List.rev !pages) in
    let moff =
      Log.append log
        (encode_manifest ~wal_gen ~wal_pos ~pages ~item_count:!total)
    in
    {
      sr_manifest = moff;
      sr_pages = !written;
      sr_reused = !reused;
      sr_live_bytes = !live_bytes;
    }

  let save ?page_items ?wal_gen ?wal_pos ?prev tree log =
    (save_report ?page_items ?wal_gen ?wal_pos ?prev tree log).sr_manifest

  let manifest log off = decode_manifest (Log.read log off)

  (* Rebuild a tree from the checkpoint at [off]. [config] must enable
     non-unique keys if the checkpointed tree did — a checkpoint of a
     non-unique index contains duplicate keys, and restoring it into a
     unique-keys tree would silently drop them (the count check below
     catches that mistake loudly instead). *)
  let load ?config ?obs log off =
    let m = manifest log off in
    let tree = T.create ?config ?obs () in
    let loaded = ref 0 in
    Array.iter
      (fun page_off ->
        let page = decode_page (Log.read log page_off) in
        T.Page.iter_from page 0 (fun k v ->
            if T.insert tree k v then incr loaded))
      m.pages;
    if !loaded <> m.item_count then
      failwith "Checkpoint.load: manifest item count mismatch";
    tree

  (* Liveness oracle for {!Log.compact}: only the *pages* reachable from
     the given manifests survive. The manifest records themselves are
     deliberately dead — they hold page addresses by value, so after
     relocation their payloads would dangle into pre-compaction space;
     {!compact_keeping} re-appends fresh manifests instead. (Marking the
     old manifests live, as an earlier version did, left both copies in
     the compacted log: readers that landed on a stale one chased
     pre-compaction offsets, and the reported reclamation was overstated
     by the pages those stale roots appeared to retain.)

     The manifests are decoded *before* compaction destroys them; the
     captured contents, a liveness predicate, the relocation callback and
     the old->new address translation are returned together. *)
  let gc_roots log manifest_offs =
    let captured =
      List.map (fun moff -> (moff, manifest log moff)) manifest_offs
    in
    let live = Hashtbl.create 64 in
    List.iter
      (fun (_, m) -> Array.iter (fun p -> Hashtbl.replace live p ()) m.pages)
      captured;
    let moved = Hashtbl.create 64 in
    let is_live off = Hashtbl.mem live off in
    let relocate old_off new_off = Hashtbl.replace moved old_off new_off in
    let translate off = Option.value ~default:off (Hashtbl.find_opt moved off) in
    (captured, is_live, relocate, translate)

  (* Compact the log keeping only the given checkpoints; returns the bytes
     reclaimed and the fresh manifest addresses (in the same order as
     [manifest_offs] — the old addresses are gone). Page offsets inside
     each re-appended manifest are translated to their post-compaction
     homes, the same fix-up LLAMA's incremental flush applies to its
     mapping table. *)
  let compact_keeping log manifest_offs =
    let captured, is_live, relocate, translate = gc_roots log manifest_offs in
    let reclaimed = Log.compact log ~live:is_live ~relocate in
    let fresh =
      List.map
        (fun (_, m) ->
          let pages = Array.map translate m.pages in
          Log.append log
            (encode_manifest ~wal_gen:m.wal_gen ~wal_pos:m.wal_pos ~pages
               ~item_count:m.item_count))
        captured
    in
    (reclaimed, fresh)
end
