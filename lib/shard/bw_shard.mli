(** Range-partitioned shard router: a forest of N index instances behind
    one {!Index_iface.driver}.

    The paper (§6) shows the Bw-tree's centralized mapping table and
    root-level delta traffic cap its multi-core scalability; partitioning
    the binary-comparable key space ({!Bw_util.Key_codec}) over N smaller
    trees divides that contention while keeping scans ordered. The router
    itself satisfies the driver contract, so a forest drops in wherever a
    single tree did — harness, server, stress checker, benchmarks.

    Routing is O(1): the first 8-byte big-endian slice of a key selects
    the shard by unsigned division with a precomputed stride. Shard [i]
    owns slice values in [[i*stride, (i+1)*stride)], so shards partition
    the key space in key order and a cross-shard scan is a plain
    continuation: exhaust shard [i], restart at shard [i+1]'s floor key.
    Each per-shard scan has exactly-once visit semantics and the shard
    ranges are disjoint, so the concatenation is exactly-once too. *)

(** The partition: shard count plus the precomputed slice interval and
    stride. *)
module Part : sig
  type t

  val make : ?lo:string -> ?hi:string -> int -> t
  (** [make ?lo ?hi n] partitions the slice interval
      [[slice64 lo, slice64 hi)] into [n] equal ranges (default: the
      whole 64-bit slice space). Keys below [lo] route to shard 0 and
      keys at or past [hi] to shard [n-1], so the partition stays
      total and order-consistent over all keys. Pass [lo]/[hi] when
      the live keys occupy a known sub-range (e.g. lowercase email
      keys) — a full-space partition would then leave most shards
      empty. Raises [Invalid_argument] if [n < 1] or [hi <= lo]. *)

  val make_int : ?lo:int -> ?hi:int -> int -> t
  (** [make_int ?lo ?hi n] partitions the inclusive int key range
      [[lo, hi]] (default [[min_int, max_int]] — the middle half of
      the full slice space, since OCaml ints are 63-bit) so [n] shards
      of an int-keyed forest each own an equal share. As with {!make},
      keys outside the range route to the first/last shard, keeping
      the partition total. Pass bounds when the live keys occupy a
      known sub-range (benchmarks use non-negative keys). Use this
      (not {!make}) for {!route_int} forests. Raises
      [Invalid_argument] if [n < 1] or [hi <= lo]. *)

  val count : t -> int

  val uniform : t -> Bw_cluster.Uniform.t
  (** The underlying uniform slice partition — what
      {!Bw_cluster.Table.of_uniform} turns into a cluster bootstrap
      table, so a fleet and an in-process forest split keys at the same
      boundaries. *)

  val shard_of_binary : t -> string -> int
  (** Shard owning a binary-comparable key: its first 8-byte slice
      (zero-padded past the end) divided by the stride. Always in
      [[0, count)]. *)

  val shard_of_int : t -> int -> int
  (** Same partition point as [shard_of_binary (Key_codec.of_int k)],
      computed arithmetically — no encoding allocation on point ops. *)

  val floor_binary : t -> int -> string
  (** The smallest binary key owned by shard [i] (trailing zero bytes
      stripped, so short string keys above the boundary still compare
      >= it); [""] for shard 0. Scan continuation restarts here. *)

  val floor_int : t -> int -> int
  (** The smallest int key owned by shard [i], clamped to the int range:
      a boundary below every int key yields [min_int], one above every
      int key yields [max_int] (such a shard holds no int keys, so
      scanning it from anywhere visits nothing). *)
end

val route :
  ?name:string ->
  shard_of:('k -> int) ->
  floor_of:(int -> 'k) ->
  'k Index_iface.driver array ->
  'k Index_iface.driver
(** [route ~shard_of ~floor_of shards] is the forest driver. Point ops
    go to [shards.(shard_of k)]; [scan] walks successor shards from
    [floor_of] until the budget is met; [start_aux]/[stop_aux]/
    [thread_done] fan out to every shard and [memory_words] sums them.
    [name] defaults to ["<shard0-name>[N shards]"]. *)

val route_int :
  ?name:string -> Part.t -> int Index_iface.driver array -> int Index_iface.driver
(** [route] specialized to int keys via [Part]. Raises
    [Invalid_argument] if the array length differs from [Part.count]. *)

val route_binary :
  ?name:string ->
  Part.t ->
  string Index_iface.driver array ->
  string Index_iface.driver
(** [route] for drivers keyed by binary-comparable strings (email keys,
    or backends). Same length check as {!route_int}. *)
