open Index_iface

(* The slice coordinates and stride arithmetic live in {!Bw_cluster}
   now — the cluster partition table speaks the same coordinate system,
   so a process-local forest and a multi-node fleet route keys
   identically. [Part] keeps its original API as a thin veneer. *)
module Part = struct
  module U = Bw_cluster.Uniform
  module Slice = Bw_cluster.Slice

  type t = U.t

  let make ?lo ?hi n =
    if n < 1 then invalid_arg "Bw_shard.Part.make: shard count < 1";
    try U.make ?lo ?hi n
    with Invalid_argument _ -> invalid_arg "Bw_shard.Part.make: hi must be > lo"

  let make_int ?lo ?hi n =
    if n < 1 then invalid_arg "Bw_shard.Part.make_int: shard count < 1";
    try U.make_int ?lo ?hi n
    with Invalid_argument _ ->
      invalid_arg "Bw_shard.Part.make_int: hi must be > lo"

  let count = U.count
  let uniform (t : t) : U.t = t
  let shard_of_binary t s = U.of_slice t (Slice.of_binary s)
  let shard_of_int t k = U.of_slice t (Slice.of_int k)
  let floor_binary t i = if i <= 0 then "" else Slice.floor_binary (U.floor_slice t i)
  let floor_int t i = if i <= 0 then min_int else Slice.floor_int (U.floor_slice t i)
end

let route ?name ~(shard_of : 'k -> int) ~(floor_of : int -> 'k)
    (shards : 'k driver array) : 'k driver =
  let n_shards = Array.length shards in
  if n_shards = 0 then invalid_arg "Bw_shard.route: empty forest";
  let name =
    match name with
    | Some nm -> nm
    | None -> Printf.sprintf "%s[%d shards]" shards.(0).name n_shards
  in
  let pick k = shards.(shard_of k) in
  let each f = Array.iter f shards in
  {
    name;
    insert = (fun ~tid k v -> (pick k).insert ~tid k v);
    read = (fun ~tid k -> (pick k).read ~tid k);
    update = (fun ~tid k v -> (pick k).update ~tid k v);
    remove = (fun ~tid k -> (pick k).remove ~tid k);
    scan =
      (fun ~tid k ~n visit ->
        if n <= 0 then 0
        else begin
          (* shards partition the key space in key order: finish the
             start key's shard, then continue from each successor's
             floor until the budget is met or the forest is exhausted *)
          let got = ref 0 in
          let s = ref (shard_of k) in
          let start = ref k in
          while !got < n && !s < n_shards do
            got := !got + shards.(!s).scan ~tid !start ~n:(n - !got) visit;
            incr s;
            if !s < n_shards then start := floor_of !s
          done;
          !got
        end);
    batch =
      Some
        (fun ~tid ops ->
          let n_ops = Array.length ops in
          if n_shards = 1 then exec_batch shards.(0) ~tid ops
          else begin
            (* one routing pass records each op's shard and per-shard
               position, then the gathered sub-batches execute through
               each shard's own batch path (or per-op fallback) and the
               results scatter back to submission order — within one
               shard the sub-batch keeps submission order, so per-key
               semantics match the unsharded tree. Sub-batches and the
               scatter array are batch-sized, so they are built through
               [Bw_util.Arr] (stdlib constructors force a minor
               collection per >256-element array seeded with a young
               block). *)
            let shard = Array.make n_ops 0 in
            let count = Array.make n_shards 0 in
            for i = 0 to n_ops - 1 do
              let s = shard_of (batch_op_key ops.(i)) in
              shard.(i) <- s;
              count.(s) <- count.(s) + 1
            done;
            let subs =
              Array.init n_shards (fun s ->
                  if count.(s) = 0 then [||]
                  else Bw_util.Arr.make count.(s) ops.(0))
            in
            let pos = Array.make n_ops 0 in
            let fill = Array.make n_shards 0 in
            for i = 0 to n_ops - 1 do
              let s = shard.(i) in
              subs.(s).(fill.(s)) <- ops.(i);
              pos.(i) <- fill.(s);
              fill.(s) <- fill.(s) + 1
            done;
            let sub_results =
              Array.mapi
                (fun s sub ->
                  if Array.length sub = 0 then [||]
                  else exec_batch shards.(s) ~tid sub)
                subs
            in
            Bw_util.Arr.init n_ops (fun i ->
                sub_results.(shard.(i)).(pos.(i)))
          end);
    start_aux = (fun () -> each (fun d -> d.start_aux ()));
    stop_aux = (fun () -> each (fun d -> d.stop_aux ()));
    thread_done = (fun ~tid -> each (fun d -> d.thread_done ~tid));
    memory_words =
      (fun () ->
        Array.fold_left (fun acc d -> acc + d.memory_words ()) 0 shards);
  }

let check_arity part shards =
  if Part.count part <> Array.length shards then
    invalid_arg
      (Printf.sprintf "Bw_shard.route: partition has %d shards, got %d drivers"
         (Part.count part) (Array.length shards))

let route_int ?name part shards =
  check_arity part shards;
  route ?name ~shard_of:(Part.shard_of_int part)
    ~floor_of:(Part.floor_int part) shards

let route_binary ?name part shards =
  check_arity part shards;
  route ?name ~shard_of:(Part.shard_of_binary part)
    ~floor_of:(Part.floor_binary part) shards
