open Index_iface

module Part = struct
  (* The partitioned slice interval starts at [lo]; [stride] is
     ceil(range / n) so that lo + n * stride covers the whole interval:
     every in-range slice value minus [lo], divided by the stride, lands
     in [0, n). Slices below [lo] belong to shard 0 and slices at or
     past the end to shard n-1, so out-of-range keys still route
     consistently with key order. Unused (and 0) when n = 1. *)
  type t = { n : int; lo : int64; stride : int64 }

  (* [range] is the interval width as an unsigned 64-bit count, with 0
     meaning the full 2^64 slice space (which wraps to 0). *)
  let of_range n lo range =
    if n < 1 then invalid_arg "Bw_shard.Part.make: shard count < 1";
    let stride =
      if n = 1 then 0L
      else if range = 0L then
        Int64.add (Int64.unsigned_div Int64.minus_one (Int64.of_int n)) 1L
      else
        (* floor((range-1)/n) + 1 = ceil(range/n) without overflow *)
        Int64.add
          (Int64.unsigned_div (Int64.sub range 1L) (Int64.of_int n))
          1L
    in
    { n; lo; stride }

  let make ?(lo = "") ?hi n =
    let lo_s = Bw_util.Key_codec.slice64 lo 0 in
    let range =
      match hi with
      | None -> Int64.neg lo_s (* 2^64 - lo; wraps to 0 when lo = "" *)
      | Some hi ->
          let hi_s = Bw_util.Key_codec.slice64 hi 0 in
          if Int64.unsigned_compare hi_s lo_s <= 0 then
            invalid_arg "Bw_shard.Part.make: hi must be > lo";
          Int64.sub hi_s lo_s
    in
    of_range n lo_s range

  (* Key_codec.of_int writes the 8-byte big-endian form of
     [k lxor min_int64]; its first slice read back unsigned is exactly
     that value, so the shard can be computed without encoding. *)
  let int_slice k = Int64.logxor (Int64.of_int k) Int64.min_int

  (* OCaml's 63-bit ints occupy only the middle half of the slice
     space, so a full-space partition would leave half the shards
     empty; partition the inclusive [lo, hi] int range instead (the
     default covers every int; its width 2^63 is the bit pattern of
     Int64.min_int). *)
  let make_int ?(lo = min_int) ?(hi = max_int) n =
    if lo >= hi then invalid_arg "Bw_shard.Part.make_int: hi must be > lo";
    of_range n (int_slice lo)
      (Int64.add (Int64.sub (int_slice hi) (int_slice lo)) 1L)
  let count t = t.n

  let of_slice t (u : int64) =
    if t.n = 1 then 0
    else if Int64.unsigned_compare u t.lo < 0 then 0
    else
      let s = Int64.to_int (Int64.unsigned_div (Int64.sub u t.lo) t.stride) in
      if s >= t.n then t.n - 1 else s

  let shard_of_binary t s = of_slice t (Bw_util.Key_codec.slice64 s 0)
  let shard_of_int t k = of_slice t (int_slice k)
  let floor_slice t i = Int64.add t.lo (Int64.mul (Int64.of_int i) t.stride)

  let floor_binary t i =
    if i <= 0 then ""
    else begin
      let b = Bytes.create 8 in
      Bytes.set_int64_be b 0 (floor_slice t i);
      let len = ref 8 in
      while !len > 0 && Bytes.get b (!len - 1) = '\000' do
        decr len
      done;
      Bytes.sub_string b 0 !len
    end

  let floor_int t i =
    if i <= 0 then min_int
    else
      (* invert the sign-flip; OCaml ints cover only the middle half of
         the slice space, so clamp boundaries that fall outside it *)
      let k64 = Int64.logxor (floor_slice t i) Int64.min_int in
      if Int64.compare k64 (Int64.of_int min_int) < 0 then min_int
      else if Int64.compare k64 (Int64.of_int max_int) > 0 then max_int
      else Int64.to_int k64
end

let route ?name ~(shard_of : 'k -> int) ~(floor_of : int -> 'k)
    (shards : 'k driver array) : 'k driver =
  let n_shards = Array.length shards in
  if n_shards = 0 then invalid_arg "Bw_shard.route: empty forest";
  let name =
    match name with
    | Some nm -> nm
    | None -> Printf.sprintf "%s[%d shards]" shards.(0).name n_shards
  in
  let pick k = shards.(shard_of k) in
  let each f = Array.iter f shards in
  {
    name;
    insert = (fun ~tid k v -> (pick k).insert ~tid k v);
    read = (fun ~tid k -> (pick k).read ~tid k);
    update = (fun ~tid k v -> (pick k).update ~tid k v);
    remove = (fun ~tid k -> (pick k).remove ~tid k);
    scan =
      (fun ~tid k ~n visit ->
        if n <= 0 then 0
        else begin
          (* shards partition the key space in key order: finish the
             start key's shard, then continue from each successor's
             floor until the budget is met or the forest is exhausted *)
          let got = ref 0 in
          let s = ref (shard_of k) in
          let start = ref k in
          while !got < n && !s < n_shards do
            got := !got + shards.(!s).scan ~tid !start ~n:(n - !got) visit;
            incr s;
            if !s < n_shards then start := floor_of !s
          done;
          !got
        end);
    batch =
      Some
        (fun ~tid ops ->
          let n_ops = Array.length ops in
          if n_shards = 1 then exec_batch shards.(0) ~tid ops
          else begin
            (* one routing pass records each op's shard and per-shard
               position, then the gathered sub-batches execute through
               each shard's own batch path (or per-op fallback) and the
               results scatter back to submission order — within one
               shard the sub-batch keeps submission order, so per-key
               semantics match the unsharded tree. Sub-batches and the
               scatter array are batch-sized, so they are built through
               [Bw_util.Arr] (stdlib constructors force a minor
               collection per >256-element array seeded with a young
               block). *)
            let shard = Array.make n_ops 0 in
            let count = Array.make n_shards 0 in
            for i = 0 to n_ops - 1 do
              let s = shard_of (batch_op_key ops.(i)) in
              shard.(i) <- s;
              count.(s) <- count.(s) + 1
            done;
            let subs =
              Array.init n_shards (fun s ->
                  if count.(s) = 0 then [||]
                  else Bw_util.Arr.make count.(s) ops.(0))
            in
            let pos = Array.make n_ops 0 in
            let fill = Array.make n_shards 0 in
            for i = 0 to n_ops - 1 do
              let s = shard.(i) in
              subs.(s).(fill.(s)) <- ops.(i);
              pos.(i) <- fill.(s);
              fill.(s) <- fill.(s) + 1
            done;
            let sub_results =
              Array.mapi
                (fun s sub ->
                  if Array.length sub = 0 then [||]
                  else exec_batch shards.(s) ~tid sub)
                subs
            in
            Bw_util.Arr.init n_ops (fun i ->
                sub_results.(shard.(i)).(pos.(i)))
          end);
    start_aux = (fun () -> each (fun d -> d.start_aux ()));
    stop_aux = (fun () -> each (fun d -> d.stop_aux ()));
    thread_done = (fun ~tid -> each (fun d -> d.thread_done ~tid));
    memory_words =
      (fun () ->
        Array.fold_left (fun acc d -> acc + d.memory_words ()) 0 shards);
  }

let check_arity part shards =
  if Part.count part <> Array.length shards then
    invalid_arg
      (Printf.sprintf "Bw_shard.route: partition has %d shards, got %d drivers"
         (Part.count part) (Array.length shards))

let route_int ?name part shards =
  check_arity part shards;
  route ?name ~shard_of:(Part.shard_of_int part)
    ~floor_of:(Part.floor_int part) shards

let route_binary ?name part shards =
  check_arity part shards;
  route ?name ~shard_of:(Part.shard_of_binary part)
    ~floor_of:(Part.floor_binary part) shards
