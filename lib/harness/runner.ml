(** Benchmark harness: drives any index through YCSB-style traces with a
    configurable number of worker domains and measures throughput, memory
    and software event counters.

    The protocol mirrors the paper's framework (§5): a load phase inserts
    [num_keys] keys (measured and reported as the Insert-only workload),
    then the measured phase replays pre-generated per-thread op traces.
    Worker domains synchronize on a start barrier so trace generation and
    domain spawning never pollute the measured section. *)

module Counters = Bw_util.Counters

(* ------------------------------------------------------------------ *)
(* Drivers: a uniform closure-record view of one index instance         *)
(* ------------------------------------------------------------------ *)

(* The record itself lives in Index_iface so the server and shard layers
   can consume drivers without depending on the harness; re-exporting it
   here keeps every [Runner.driver] reference (and [{ Runner.name; .. }]
   construction) working unchanged. *)
type 'k driver = 'k Index_iface.driver = {
  name : string;
  insert : tid:int -> 'k -> int -> bool;
  read : tid:int -> 'k -> int option;
  update : tid:int -> 'k -> int -> bool;
  remove : tid:int -> 'k -> bool;
  scan : tid:int -> 'k -> n:int -> ('k -> int -> unit) -> int;
  batch :
    (tid:int ->
    'k Index_iface.batch_op array ->
    Index_iface.batch_result array)
    option;
  start_aux : unit -> unit;
  stop_aux : unit -> unit;
  thread_done : tid:int -> unit;
  memory_words : unit -> int;
}

(* Wrap a driver so every operation records its latency into [obs]. The
   Bw-Tree drivers measure inside the tree instead (closer to the op,
   and they also see restarts/chain depths) — this wrapper is for the
   competitor indexes, which know nothing about Bw_obs.

   Idempotent: instrumenting an already-instrumented driver returns it
   unchanged, so a call site that both asks for --metrics and routes
   through a stats probe (which instruments on its own) doesn't record
   every latency twice. Wrapper identity is tracked physically — the
   closures are unique to each wrap — and the registry is scrubbed of
   dead entries as it is consulted, so it never grows past the handful
   of drivers a process instruments. *)
let instrumented : Obj.t Weak.t ref = ref (Weak.create 8)

let is_instrumented d =
  let w = !instrumented in
  let found = ref false in
  for i = 0 to Weak.length w - 1 do
    match Weak.get w i with
    | Some o when o == Obj.repr d -> found := true
    | _ -> ()
  done;
  !found

let remember_instrumented d =
  let w = !instrumented in
  let slot = ref (-1) in
  for i = Weak.length w - 1 downto 0 do
    if not (Weak.check w i) then slot := i
  done;
  if !slot >= 0 then Weak.set w !slot (Some (Obj.repr d))
  else begin
    let w' = Weak.create (2 * Weak.length w) in
    Weak.blit w 0 w' 0 (Weak.length w);
    Weak.set w' (Weak.length w) (Some (Obj.repr d));
    instrumented := w'
  end

let instrument obs (d : 'k driver) : 'k driver =
  if (not (Bw_obs.enabled obs)) || is_instrumented d then d
  else
    let timed ~tid series f =
      let t0 = Bw_obs.now_ns () in
      let r = f () in
      Bw_obs.observe obs ~tid series (Bw_obs.now_ns () - t0);
      r
    in
    let w =
      {
        d with
        insert =
          (fun ~tid k v ->
            timed ~tid Bw_obs.Lat_insert (fun () -> d.insert ~tid k v));
        read =
          (fun ~tid k ->
            timed ~tid Bw_obs.Lat_lookup (fun () -> d.read ~tid k));
        update =
          (fun ~tid k v ->
            timed ~tid Bw_obs.Lat_update (fun () -> d.update ~tid k v));
        remove =
          (fun ~tid k ->
            timed ~tid Bw_obs.Lat_delete (fun () -> d.remove ~tid k));
        scan =
          (fun ~tid k ~n visit ->
            timed ~tid Bw_obs.Lat_scan (fun () -> d.scan ~tid k ~n visit));
      }
    in
    remember_instrumented w;
    w

(* ------------------------------------------------------------------ *)
(* Start barrier                                                       *)
(* ------------------------------------------------------------------ *)

module Barrier = struct
  type t = { waiting : int Atomic.t; released : bool Atomic.t; parties : int }

  let create parties =
    { waiting = Atomic.make 0; released = Atomic.make false; parties }

  let arrive t =
    let n = 1 + Atomic.fetch_and_add t.waiting 1 in
    if n = t.parties then Atomic.set t.released true
    else
      while not (Atomic.get t.released) do
        Domain.cpu_relax ()
      done
end

(* A reusable phase barrier: workers [await] at the end of each phase; a
   controller [wait_all]s, runs its checks while every worker is parked,
   then [release]s the next phase. Unlike {!Barrier} it can be crossed any
   number of times, which is what the stress harness's
   work/quiesce/check/resume cycle needs. *)
module Phaser = struct
  type t = { arrived : int Atomic.t; phase : int Atomic.t; parties : int }

  let create parties =
    { arrived = Atomic.make 0; phase = Atomic.make 0; parties }

  let await t =
    let p = Atomic.get t.phase in
    ignore (Atomic.fetch_and_add t.arrived 1);
    while Atomic.get t.phase = p do
      Domain.cpu_relax ()
    done

  let wait_all t =
    while Atomic.get t.arrived < t.parties do
      Domain.cpu_relax ()
    done

  let release t =
    Atomic.set t.arrived 0;
    ignore (Atomic.fetch_and_add t.phase 1)
end

(* ------------------------------------------------------------------ *)
(* Measured runs                                                       *)
(* ------------------------------------------------------------------ *)

type result = {
  ops : int;
  seconds : float;
  mops : float;
  mem_words : int;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* Run one phase: worker [tid] executes [work tid] after the barrier.
   Returns the wall-clock of the slowest worker section. *)
let run_phase ~nthreads (work : int -> unit) =
  if nthreads = 1 then begin
    let (), dt = time (fun () -> work 0) in
    dt
  end
  else begin
    let barrier = Barrier.create nthreads in
    let t_start = ref 0.0 in
    let domains =
      Array.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              Barrier.arrive barrier;
              if tid = 0 then t_start := Unix.gettimeofday ();
              work tid))
    in
    Array.iter Domain.join domains;
    Unix.gettimeofday () -. !t_start
  end

let exec_op (d : 'k driver) ~tid (op : 'k Workload.op) =
  match op with
  | Workload.Insert (k, v) -> ignore (d.insert ~tid k v)
  | Workload.Read k -> ignore (d.read ~tid k)
  | Workload.Update (k, v) -> ignore (d.update ~tid k v)
  | Workload.Scan (k, n) -> ignore (d.scan ~tid k ~n (fun _ _ -> ()))

(* Load phase: insert the key set with [nthreads] workers (striped), and
   report it as the Insert-only workload result. *)
let load (d : 'k driver) ~nthreads (trace : ('k * int) array) =
  d.start_aux ();
  let n = Array.length trace in
  let seconds =
    run_phase ~nthreads (fun tid ->
        let i = ref tid in
        while !i < n do
          let k, v = trace.(!i) in
          ignore (d.insert ~tid k v);
          i := !i + nthreads
        done;
        d.thread_done ~tid)
  in
  {
    ops = n;
    seconds;
    mops = Bw_util.Stats.throughput_mops ~ops:n ~seconds;
    mem_words = 0;
  }

(* Measured phase over pre-generated per-thread traces. *)
let run (d : 'k driver) (traces : 'k Workload.op array array) =
  let nthreads = Array.length traces in
  d.start_aux ();
  let seconds =
    run_phase ~nthreads (fun tid ->
        let ops = traces.(tid) in
        for i = 0 to Array.length ops - 1 do
          exec_op d ~tid ops.(i)
        done;
        d.thread_done ~tid)
  in
  let ops = Array.fold_left (fun acc a -> acc + Array.length a) 0 traces in
  {
    ops;
    seconds;
    mops = Bw_util.Stats.throughput_mops ~ops ~seconds;
    mem_words = 0;
  }

(* Measured phase in batches of [batch] point ops: each worker fills a
   reusable request buffer from its trace and hands it to
   [Index_iface.exec_batch] (the driver's native batch path, or the
   per-op fallback). Scans flush the pending batch and run per-op, same
   order as {!run}. *)
let run_batched (d : 'k driver) ~batch (traces : 'k Workload.op array array) =
  if batch <= 1 then run d traces
  else begin
    let nthreads = Array.length traces in
    d.start_aux ();
    let seconds =
      run_phase ~nthreads (fun tid ->
          let ops = traces.(tid) in
          (* allocated on the first pending op (no dummy of type 'k
             batch_op exists), then reused for every full batch;
             Bw_util.Arr.make so a large --batch doesn't force a minor
             collection at buffer birth *)
          let buf = ref None in
          let len = ref 0 in
          let flush () =
            if !len > 0 then begin
              let b = Option.get !buf in
              let sub = if !len = batch then b else Array.sub b 0 !len in
              ignore (Index_iface.exec_batch d ~tid sub);
              len := 0
            end
          in
          let push op =
            let b =
              match !buf with
              | Some b -> b
              | None ->
                  let b = Bw_util.Arr.make batch op in
                  buf := Some b;
                  b
            in
            b.(!len) <- op;
            incr len;
            if !len = batch then flush ()
          in
          Array.iter
            (fun op ->
              match op with
              | Workload.Insert (k, v) -> push (Index_iface.Bop_insert (k, v))
              | Workload.Read k -> push (Index_iface.Bop_read k)
              | Workload.Update (k, v) -> push (Index_iface.Bop_update (k, v))
              | Workload.Scan (k, n) ->
                  flush ();
                  ignore (d.scan ~tid k ~n (fun _ _ -> ())))
            ops;
          flush ();
          d.thread_done ~tid)
    in
    let ops = Array.fold_left (fun acc a -> acc + Array.length a) 0 traces in
    {
      ops;
      seconds;
      mops = Bw_util.Stats.throughput_mops ~ops ~seconds;
      mem_words = 0;
    }
  end

let with_memory (d : _ driver) (r : result) =
  { r with mem_words = d.memory_words () }

(* Median over [repeats] measured runs (fresh traces are the caller's
   concern; reusing the same trace arrays is fine for read-dominated
   mixes). *)
let median_of ~repeats f =
  let xs = Array.init (max 1 repeats) (fun _ -> (f ()).mops) in
  Bw_util.Stats.median xs

(* ------------------------------------------------------------------ *)
(* Table output                                                        *)
(* ------------------------------------------------------------------ *)

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_row ?(unit_ = "Mops/s") label cells =
  Printf.printf "%-34s" label;
  List.iter (fun (name, v) -> Printf.printf " | %s %8.3f" name v) cells;
  Printf.printf " (%s)\n%!" unit_

let print_text_row label text =
  Printf.printf "%-34s | %s\n%!" label text
