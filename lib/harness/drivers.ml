(** Concrete driver instances: the six indexes of §6 (plus configuration
    variants of the Bw-Tree), over integer and string (email) keys. *)

open Index_iface

module Bw_int = Bwtree.Make (Int_key) (Int_value)
module Bw_str = Bwtree.Make (String_key) (Int_value)
module Bt_int = Btree_olc.Make (Int_key) (Int_value)
module Bt_str = Btree_olc.Make (String_key) (Int_value)
module Sl_int = Skiplist.Make (Int_key) (Int_value)
module Sl_str = Skiplist.Make (String_key) (Int_value)
module Ar_int = Art_olc.Make (Int_key) (Int_value)
module Ar_str = Art_olc.Make (String_key) (Int_value)
module Mt_int = Masstree.Make (Int_key) (Int_value)
module Mt_str = Masstree.Make (String_key) (Int_value)

let hd_opt = function [] -> None | v :: _ -> Some v

(* --- Bw-Tree drivers (OpenBw, baseline Bw, and arbitrary configs) --- *)

(* Driver batch ops in tree terms, mirroring the per-op closures below
   (remove deletes with value 0, read reports the newest value). The
   conversion arrays are batch-sized, so they go through [Bw_util.Arr]
   to avoid a forced minor collection per batch. *)
let bw_int_batch tree ~tid ops =
  let bops =
    Bw_util.Arr.map
      (function
        | Bop_insert (k, v) -> (k, Bw_int.B_insert v)
        | Bop_update (k, v) -> (k, Bw_int.B_update v)
        | Bop_upsert (k, v) -> (k, Bw_int.B_upsert v)
        | Bop_remove k -> (k, Bw_int.B_delete 0)
        | Bop_read k -> (k, Bw_int.B_get))
      ops
  in
  Bw_util.Arr.map
    (function
      | Bw_int.R_applied b -> Bres_applied b
      | Bw_int.R_values vs -> Bres_value (hd_opt vs))
    (Bw_int.execute_batch tree ~tid bops)

let bw_str_batch tree ~tid ops =
  let bops =
    Bw_util.Arr.map
      (function
        | Bop_insert (k, v) -> (k, Bw_str.B_insert v)
        | Bop_update (k, v) -> (k, Bw_str.B_update v)
        | Bop_upsert (k, v) -> (k, Bw_str.B_upsert v)
        | Bop_remove k -> (k, Bw_str.B_delete 0)
        | Bop_read k -> (k, Bw_str.B_get))
      ops
  in
  Bw_util.Arr.map
    (function
      | Bw_str.R_applied b -> Bres_applied b
      | Bw_str.R_values vs -> Bres_value (hd_opt vs))
    (Bw_str.execute_batch tree ~tid bops)

let bwtree_driver_int ?(name = "OpenBw-Tree") ?config ?obs () :
    int Runner.driver =
  let t = Bw_int.create ?config ?obs () in
  let tree = t in
  {
    Runner.name;
    insert = (fun ~tid k v -> Bw_int.insert tree ~tid k v);
    read = (fun ~tid k -> hd_opt (Bw_int.lookup tree ~tid k));
    update = (fun ~tid k v -> Bw_int.update tree ~tid k v);
    remove = (fun ~tid k -> Bw_int.delete tree ~tid k 0);
    scan =
      (fun ~tid k ~n visit ->
        List.fold_left
          (fun m (k, v) ->
            visit k v;
            m + 1)
          0 (Bw_int.scan tree ~tid ~n k));
    batch = Some (bw_int_batch tree);
    start_aux = (fun () -> Bw_int.start_gc_thread tree ());
    stop_aux = (fun () -> Bw_int.stop_gc_thread tree);
    thread_done = (fun ~tid -> Bw_int.quiesce tree ~tid);
    memory_words = (fun () -> Bw_int.memory_words tree);
  }

(* exposes the underlying tree for experiments that need statistics *)
let bwtree_instance_int ?config ?obs () =
  let tree = Bw_int.create ?config ?obs () in
  let driver name : int Runner.driver =
    {
      Runner.name;
      insert = (fun ~tid k v -> Bw_int.insert tree ~tid k v);
      read = (fun ~tid k -> hd_opt (Bw_int.lookup tree ~tid k));
      update = (fun ~tid k v -> Bw_int.update tree ~tid k v);
      remove = (fun ~tid k -> Bw_int.delete tree ~tid k 0);
      scan =
      (fun ~tid k ~n visit ->
        List.fold_left
          (fun m (k, v) ->
            visit k v;
            m + 1)
          0 (Bw_int.scan tree ~tid ~n k));
      batch = Some (bw_int_batch tree);
      start_aux = (fun () -> Bw_int.start_gc_thread tree ());
      stop_aux = (fun () -> Bw_int.stop_gc_thread tree);
      thread_done = (fun ~tid -> Bw_int.quiesce tree ~tid);
      memory_words = (fun () -> Bw_int.memory_words tree);
    }
  in
  (tree, driver)

let bwtree_driver_str ?(name = "OpenBw-Tree") ?config ?obs () :
    string Runner.driver =
  let tree = Bw_str.create ?config ?obs () in
  {
    Runner.name;
    insert = (fun ~tid k v -> Bw_str.insert tree ~tid k v);
    read = (fun ~tid k -> hd_opt (Bw_str.lookup tree ~tid k));
    update = (fun ~tid k v -> Bw_str.update tree ~tid k v);
    remove = (fun ~tid k -> Bw_str.delete tree ~tid k 0);
    scan =
      (fun ~tid k ~n visit ->
        List.fold_left
          (fun m (k, v) ->
            visit k v;
            m + 1)
          0 (Bw_str.scan tree ~tid ~n k));
    batch = Some (bw_str_batch tree);
    start_aux = (fun () -> Bw_str.start_gc_thread tree ());
    stop_aux = (fun () -> Bw_str.stop_gc_thread tree);
    thread_done = (fun ~tid -> Bw_str.quiesce tree ~tid);
    memory_words = (fun () -> Bw_str.memory_words tree);
  }

(* --- lock-based / lock-free comparators --- *)

let btree_driver_int () : int Runner.driver =
  let t = Bt_int.create () in
  {
    Runner.name = "B+Tree";
    insert = (fun ~tid k v -> Bt_int.insert t ~tid k v);
    read = (fun ~tid k -> Bt_int.lookup t ~tid k);
    update = (fun ~tid k v -> Bt_int.update t ~tid k v);
    remove = (fun ~tid k -> Bt_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Bt_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Bt_int.memory_words t);
  }

let btree_driver_str () : string Runner.driver =
  let t = Bt_str.create () in
  {
    Runner.name = "B+Tree";
    insert = (fun ~tid k v -> Bt_str.insert t ~tid k v);
    read = (fun ~tid k -> Bt_str.lookup t ~tid k);
    update = (fun ~tid k v -> Bt_str.update t ~tid k v);
    remove = (fun ~tid k -> Bt_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Bt_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Bt_str.memory_words t);
  }

let skiplist_driver_int ?(policy = Skiplist.Background) () :
    int Runner.driver =
  let t = Sl_int.create ~policy () in
  {
    Runner.name =
      (match policy with
      | Skiplist.Background -> "SkipList"
      | Skiplist.Inline -> "SkipList-inline");
    insert = (fun ~tid k v -> Sl_int.insert t ~tid k v);
    read = (fun ~tid k -> Sl_int.lookup t ~tid k);
    update = (fun ~tid k v -> Sl_int.update t ~tid k v);
    remove = (fun ~tid k -> Sl_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Sl_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = (fun () -> Sl_int.start_aux t);
    stop_aux = (fun () -> Sl_int.stop_aux t);
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Sl_int.memory_words t);
  }

let skiplist_driver_str ?(policy = Skiplist.Background) () :
    string Runner.driver =
  let t = Sl_str.create ~policy () in
  {
    Runner.name = "SkipList";
    insert = (fun ~tid k v -> Sl_str.insert t ~tid k v);
    read = (fun ~tid k -> Sl_str.lookup t ~tid k);
    update = (fun ~tid k v -> Sl_str.update t ~tid k v);
    remove = (fun ~tid k -> Sl_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Sl_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = (fun () -> Sl_str.start_aux t);
    stop_aux = (fun () -> Sl_str.stop_aux t);
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Sl_str.memory_words t);
  }

let art_driver_int () : int Runner.driver =
  let t = Ar_int.create () in
  {
    Runner.name = "ART";
    insert = (fun ~tid k v -> Ar_int.insert t ~tid k v);
    read = (fun ~tid k -> Ar_int.lookup t ~tid k);
    update = (fun ~tid k v -> Ar_int.update t ~tid k v);
    remove = (fun ~tid k -> Ar_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Ar_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Ar_int.memory_words t);
  }

let art_driver_str () : string Runner.driver =
  let t = Ar_str.create () in
  {
    Runner.name = "ART";
    insert = (fun ~tid k v -> Ar_str.insert t ~tid k v);
    read = (fun ~tid k -> Ar_str.lookup t ~tid k);
    update = (fun ~tid k v -> Ar_str.update t ~tid k v);
    remove = (fun ~tid k -> Ar_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Ar_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Ar_str.memory_words t);
  }

let masstree_driver_int () : int Runner.driver =
  let t = Mt_int.create () in
  {
    Runner.name = "Masstree";
    insert = (fun ~tid k v -> Mt_int.insert t ~tid k v);
    read = (fun ~tid k -> Mt_int.lookup t ~tid k);
    update = (fun ~tid k v -> Mt_int.update t ~tid k v);
    remove = (fun ~tid k -> Mt_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Mt_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Mt_int.memory_words t);
  }

let masstree_driver_str () : string Runner.driver =
  let t = Mt_str.create () in
  {
    Runner.name = "Masstree";
    insert = (fun ~tid k v -> Mt_str.insert t ~tid k v);
    read = (fun ~tid k -> Mt_str.lookup t ~tid k);
    update = (fun ~tid k v -> Mt_str.update t ~tid k v);
    remove = (fun ~tid k -> Mt_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Mt_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Mt_str.memory_words t);
  }

(* --- range-partitioned Bw-Tree forests (lib/shard router) --- *)

(* [obs_of i] supplies shard [i]'s metrics sink, so a forest can feed
   per-shard registries (labeled shard<i>_* series in the merged
   snapshot) or one shared registry — striping is by tid either way. *)
let bwtree_forest_int ?name ?config ?(obs_of = fun _ -> Bw_obs.Null) ?lo ?hi
    ~shards () : int Runner.driver =
  let part = Bw_shard.Part.make_int ?lo ?hi shards in
  Bw_shard.route_int ?name part
    (Array.init shards (fun i -> bwtree_driver_int ?config ~obs:(obs_of i) ()))

let bwtree_forest_str ?name ?config ?(obs_of = fun _ -> Bw_obs.Null) ?lo ?hi
    ~shards () : string Runner.driver =
  let part = Bw_shard.Part.make ?lo ?hi shards in
  Bw_shard.route_binary ?name part
    (Array.init shards (fun i -> bwtree_driver_str ?config ~obs:(obs_of i) ()))

(* --- the six-index lineup used by §6 experiments --- *)

let int_lineup () : (string * (unit -> int Runner.driver)) list =
  [
    ("Bw-Tree", fun () -> bwtree_driver_int ~name:"Bw-Tree"
                    ~config:Bwtree.microsoft_config ());
    ("OpenBw-Tree", fun () -> bwtree_driver_int ());
    ("SkipList", fun () -> skiplist_driver_int ());
    ("Masstree", fun () -> masstree_driver_int ());
    ("B+Tree", fun () -> btree_driver_int ());
    ("ART", fun () -> art_driver_int ());
  ]

let str_lineup () : (string * (unit -> string Runner.driver)) list =
  [
    ("Bw-Tree", fun () -> bwtree_driver_str ~name:"Bw-Tree"
                    ~config:Bwtree.microsoft_config ());
    ("OpenBw-Tree", fun () -> bwtree_driver_str ());
    ("SkipList", fun () -> skiplist_driver_str ());
    ("Masstree", fun () -> masstree_driver_str ());
    ("B+Tree", fun () -> btree_driver_str ());
    ("ART", fun () -> art_driver_str ());
  ]
