(** Concrete driver instances: the six indexes of §6 (plus configuration
    variants of the Bw-Tree), over integer and string (email) keys. *)

open Index_iface

module Bw_int = Bwtree.Make (Int_key) (Int_value)
module Bw_str = Bwtree.Make (String_key) (Int_value)
module Bt_int = Btree_olc.Make (Int_key) (Int_value)
module Bt_str = Btree_olc.Make (String_key) (Int_value)
module Sl_int = Skiplist.Make (Int_key) (Int_value)
module Sl_str = Skiplist.Make (String_key) (Int_value)
module Ar_int = Art_olc.Make (Int_key) (Int_value)
module Ar_str = Art_olc.Make (String_key) (Int_value)
module Mt_int = Masstree.Make (Int_key) (Int_value)
module Mt_str = Masstree.Make (String_key) (Int_value)

let hd_opt = function [] -> None | v :: _ -> Some v

(* --- Bw-Tree drivers (OpenBw, baseline Bw, and arbitrary configs) --- *)

(* Driver batch ops in tree terms, mirroring the per-op closures below
   (remove deletes with value 0, read reports the newest value). The
   conversion arrays are batch-sized, so they go through [Bw_util.Arr]
   to avoid a forced minor collection per batch. *)
let bw_int_batch tree ~tid ops =
  let bops =
    Bw_util.Arr.map
      (function
        | Bop_insert (k, v) -> (k, Bw_int.B_insert v)
        | Bop_update (k, v) -> (k, Bw_int.B_update v)
        | Bop_upsert (k, v) -> (k, Bw_int.B_upsert v)
        | Bop_remove k -> (k, Bw_int.B_delete 0)
        | Bop_read k -> (k, Bw_int.B_get))
      ops
  in
  Bw_util.Arr.map
    (function
      | Bw_int.R_applied b -> Bres_applied b
      | Bw_int.R_values vs -> Bres_value (hd_opt vs))
    (Bw_int.execute_batch tree ~tid bops)

let bw_str_batch tree ~tid ops =
  let bops =
    Bw_util.Arr.map
      (function
        | Bop_insert (k, v) -> (k, Bw_str.B_insert v)
        | Bop_update (k, v) -> (k, Bw_str.B_update v)
        | Bop_upsert (k, v) -> (k, Bw_str.B_upsert v)
        | Bop_remove k -> (k, Bw_str.B_delete 0)
        | Bop_read k -> (k, Bw_str.B_get))
      ops
  in
  Bw_util.Arr.map
    (function
      | Bw_str.R_applied b -> Bres_applied b
      | Bw_str.R_values vs -> Bres_value (hd_opt vs))
    (Bw_str.execute_batch tree ~tid bops)

(* The driver view of an existing tree instance — the common core of the
   create-and-wrap constructors below and the durable (recovered-tree)
   constructors further down. *)
let bw_int_driver_of_tree ?(name = "OpenBw-Tree") tree : int Runner.driver =
  {
    Runner.name;
    insert = (fun ~tid k v -> Bw_int.insert tree ~tid k v);
    read = (fun ~tid k -> hd_opt (Bw_int.lookup tree ~tid k));
    update = (fun ~tid k v -> Bw_int.update tree ~tid k v);
    remove = (fun ~tid k -> Bw_int.delete tree ~tid k 0);
    scan = (fun ~tid k ~n visit -> Bw_int.scan_iter tree ~tid ~n k visit);
    batch = Some (bw_int_batch tree);
    start_aux = (fun () -> Bw_int.start_gc_thread tree ());
    stop_aux = (fun () -> Bw_int.stop_gc_thread tree);
    thread_done = (fun ~tid -> Bw_int.quiesce tree ~tid);
    memory_words = (fun () -> Bw_int.memory_words tree);
  }

let bw_str_driver_of_tree ?(name = "OpenBw-Tree") tree : string Runner.driver =
  {
    Runner.name;
    insert = (fun ~tid k v -> Bw_str.insert tree ~tid k v);
    read = (fun ~tid k -> hd_opt (Bw_str.lookup tree ~tid k));
    update = (fun ~tid k v -> Bw_str.update tree ~tid k v);
    remove = (fun ~tid k -> Bw_str.delete tree ~tid k 0);
    scan = (fun ~tid k ~n visit -> Bw_str.scan_iter tree ~tid ~n k visit);
    batch = Some (bw_str_batch tree);
    start_aux = (fun () -> Bw_str.start_gc_thread tree ());
    stop_aux = (fun () -> Bw_str.stop_gc_thread tree);
    thread_done = (fun ~tid -> Bw_str.quiesce tree ~tid);
    memory_words = (fun () -> Bw_str.memory_words tree);
  }

let bwtree_driver_int ?name ?config ?obs () : int Runner.driver =
  bw_int_driver_of_tree ?name (Bw_int.create ?config ?obs ())

(* exposes the underlying tree for experiments that need statistics *)
let bwtree_instance_int ?config ?obs () =
  let tree = Bw_int.create ?config ?obs () in
  (tree, fun name -> bw_int_driver_of_tree ~name tree)

let bwtree_driver_str ?name ?config ?obs () : string Runner.driver =
  bw_str_driver_of_tree ?name (Bw_str.create ?config ?obs ())

(* --- lock-based / lock-free comparators --- *)

let btree_driver_int () : int Runner.driver =
  let t = Bt_int.create () in
  {
    Runner.name = "B+Tree";
    insert = (fun ~tid k v -> Bt_int.insert t ~tid k v);
    read = (fun ~tid k -> Bt_int.lookup t ~tid k);
    update = (fun ~tid k v -> Bt_int.update t ~tid k v);
    remove = (fun ~tid k -> Bt_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Bt_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Bt_int.memory_words t);
  }

let btree_driver_str () : string Runner.driver =
  let t = Bt_str.create () in
  {
    Runner.name = "B+Tree";
    insert = (fun ~tid k v -> Bt_str.insert t ~tid k v);
    read = (fun ~tid k -> Bt_str.lookup t ~tid k);
    update = (fun ~tid k v -> Bt_str.update t ~tid k v);
    remove = (fun ~tid k -> Bt_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Bt_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Bt_str.memory_words t);
  }

let skiplist_driver_int ?(policy = Skiplist.Background) () :
    int Runner.driver =
  let t = Sl_int.create ~policy () in
  {
    Runner.name =
      (match policy with
      | Skiplist.Background -> "SkipList"
      | Skiplist.Inline -> "SkipList-inline");
    insert = (fun ~tid k v -> Sl_int.insert t ~tid k v);
    read = (fun ~tid k -> Sl_int.lookup t ~tid k);
    update = (fun ~tid k v -> Sl_int.update t ~tid k v);
    remove = (fun ~tid k -> Sl_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Sl_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = (fun () -> Sl_int.start_aux t);
    stop_aux = (fun () -> Sl_int.stop_aux t);
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Sl_int.memory_words t);
  }

let skiplist_driver_str ?(policy = Skiplist.Background) () :
    string Runner.driver =
  let t = Sl_str.create ~policy () in
  {
    Runner.name = "SkipList";
    insert = (fun ~tid k v -> Sl_str.insert t ~tid k v);
    read = (fun ~tid k -> Sl_str.lookup t ~tid k);
    update = (fun ~tid k v -> Sl_str.update t ~tid k v);
    remove = (fun ~tid k -> Sl_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Sl_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = (fun () -> Sl_str.start_aux t);
    stop_aux = (fun () -> Sl_str.stop_aux t);
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Sl_str.memory_words t);
  }

let art_driver_int () : int Runner.driver =
  let t = Ar_int.create () in
  {
    Runner.name = "ART";
    insert = (fun ~tid k v -> Ar_int.insert t ~tid k v);
    read = (fun ~tid k -> Ar_int.lookup t ~tid k);
    update = (fun ~tid k v -> Ar_int.update t ~tid k v);
    remove = (fun ~tid k -> Ar_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Ar_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Ar_int.memory_words t);
  }

let art_driver_str () : string Runner.driver =
  let t = Ar_str.create () in
  {
    Runner.name = "ART";
    insert = (fun ~tid k v -> Ar_str.insert t ~tid k v);
    read = (fun ~tid k -> Ar_str.lookup t ~tid k);
    update = (fun ~tid k v -> Ar_str.update t ~tid k v);
    remove = (fun ~tid k -> Ar_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Ar_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Ar_str.memory_words t);
  }

let masstree_driver_int () : int Runner.driver =
  let t = Mt_int.create () in
  {
    Runner.name = "Masstree";
    insert = (fun ~tid k v -> Mt_int.insert t ~tid k v);
    read = (fun ~tid k -> Mt_int.lookup t ~tid k);
    update = (fun ~tid k v -> Mt_int.update t ~tid k v);
    remove = (fun ~tid k -> Mt_int.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Mt_int.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Mt_int.memory_words t);
  }

let masstree_driver_str () : string Runner.driver =
  let t = Mt_str.create () in
  {
    Runner.name = "Masstree";
    insert = (fun ~tid k v -> Mt_str.insert t ~tid k v);
    read = (fun ~tid k -> Mt_str.lookup t ~tid k);
    update = (fun ~tid k v -> Mt_str.update t ~tid k v);
    remove = (fun ~tid k -> Mt_str.delete t ~tid k);
    scan = (fun ~tid k ~n visit -> Mt_str.scan t ~tid k ~n visit);
    batch = None;
    start_aux = ignore;
    stop_aux = ignore;
    thread_done = (fun ~tid -> ignore tid);
    memory_words = (fun () -> Mt_str.memory_words t);
  }

(* --- range-partitioned Bw-Tree forests (lib/shard router) --- *)

(* [obs_of i] supplies shard [i]'s metrics sink, so a forest can feed
   per-shard registries (labeled shard<i>_* series in the merged
   snapshot) or one shared registry — striping is by tid either way. *)
let bwtree_forest_int ?name ?config ?(obs_of = fun _ -> Bw_obs.Null) ?lo ?hi
    ~shards () : int Runner.driver =
  let part = Bw_shard.Part.make_int ?lo ?hi shards in
  Bw_shard.route_int ?name part
    (Array.init shards (fun i -> bwtree_driver_int ?config ~obs:(obs_of i) ()))

let bwtree_forest_str ?name ?config ?(obs_of = fun _ -> Bw_obs.Null) ?lo ?hi
    ~shards () : string Runner.driver =
  let part = Bw_shard.Part.make ?lo ?hi shards in
  Bw_shard.route_binary ?name part
    (Array.init shards (fun i -> bwtree_driver_str ?config ~obs:(obs_of i) ()))

(* --- durable Bw-Trees: pagestore-backed recovery + group-commit WAL --- *)

module Durable_int = Pagestore.Store.Make (Pagestore.Codec.Int) (Bw_int)
module Durable_str = Pagestore.Store.Make (Pagestore.Codec.String) (Bw_str)

(* A durable driver plus its lifecycle: [dur_checkpoint] cuts a new
   generation (call it quiesced — drained server, phase barrier; [mode]
   selects full rotation vs an in-place incremental manifest),
   [dur_close] fsyncs and releases the WAL without checkpointing (a
   clean close still recovers through WAL replay), [dur_stats] reports
   what boot-time recovery found. [dur_sources] exposes one replication
   source per shard (index = shard number; a single store is one-shard)
   for the WAL shipper. *)
type 'k durable = {
  dur_driver : 'k Runner.driver;
  dur_checkpoint : ?tid:int -> ?mode:[ `Full | `Incremental ] -> unit -> unit;
  dur_close : unit -> unit;
  dur_stats : Pagestore.Store.recovery_stats;
  dur_sources : Pagestore.Store.repl_source array;
}

let durable_bwtree_int ?name ?config ?(obs = Bw_obs.Null) ?segment_bytes
    ?page_items ?(fsync = true) ?on_replay ~dir () : int durable =
  let st, stats =
    Durable_int.open_dir ?config ~obs ?segment_bytes ?page_items ~fsync
      ?on_replay ~dir ()
  in
  {
    dur_driver =
      Durable_int.wrap_driver st
        (bw_int_driver_of_tree ?name (Durable_int.tree st));
    dur_checkpoint =
      (fun ?tid ?mode () ->
        ignore (Durable_int.checkpoint ?tid ?mode st : int * int));
    dur_close = (fun () -> Durable_int.close st);
    dur_stats = stats;
    dur_sources = [| Durable_int.repl_source st |];
  }

let durable_bwtree_str ?name ?config ?(obs = Bw_obs.Null) ?segment_bytes
    ?page_items ?(fsync = true) ?on_replay ~dir () : string durable =
  let st, stats =
    Durable_str.open_dir ?config ~obs ?segment_bytes ?page_items ~fsync
      ?on_replay ~dir ()
  in
  {
    dur_driver =
      Durable_str.wrap_driver st
        (bw_str_driver_of_tree ?name (Durable_str.tree st));
    dur_checkpoint =
      (fun ?tid ?mode () ->
        ignore (Durable_str.checkpoint ?tid ?mode st : int * int));
    dur_close = (fun () -> Durable_str.close st);
    dur_stats = stats;
    dur_sources = [| Durable_str.repl_source st |];
  }

(* Durable forest: shard [i] keeps its own generations and WAL under
   [dir/shard-<i>], so group commits never serialize across shards and a
   crash tears each shard's WAL independently (recovery is then
   per-(thread, shard) prefix-consistent). [on_replay] receives the
   shard index so a checker can attribute replayed ops. *)
let durable_bwtree_forest_int ?name ?config ?(obs_of = fun _ -> Bw_obs.Null)
    ?lo ?hi ?segment_bytes ?page_items ?(fsync = true) ?on_replay ~shards ~dir
    () : int durable =
  let part = Bw_shard.Part.make_int ?lo ?hi shards in
  let shard_dir i = Filename.concat dir (Printf.sprintf "shard-%02d" i) in
  let stores =
    Array.init shards (fun i ->
        Durable_int.open_dir ?config ~obs:(obs_of i) ?segment_bytes ?page_items
          ~fsync
          ?on_replay:(Option.map (fun f -> f i) on_replay)
          ~dir:(shard_dir i) ())
  in
  let drivers =
    Array.map
      (fun (st, _) ->
        Durable_int.wrap_driver st
          (bw_int_driver_of_tree (Durable_int.tree st)))
      stores
  in
  {
    dur_driver = Bw_shard.route_int ?name part drivers;
    dur_checkpoint =
      (fun ?tid ?mode () ->
        Array.iter
          (fun (st, _) ->
            ignore (Durable_int.checkpoint ?tid ?mode st : int * int))
          stores);
    dur_close =
      (fun () -> Array.iter (fun (st, _) -> Durable_int.close st) stores);
    dur_stats =
      Array.fold_left
        (fun acc (_, s) ->
          match acc with
          | None -> Some s
          | Some a -> Some (Pagestore.Store.merge_stats a s))
        None stores
      |> Option.get;
    dur_sources = Array.map (fun (st, _) -> Durable_int.repl_source st) stores;
  }

let durable_bwtree_forest_str ?name ?config ?(obs_of = fun _ -> Bw_obs.Null)
    ?lo ?hi ?segment_bytes ?page_items ?(fsync = true) ?on_replay ~shards ~dir
    () : string durable =
  let part = Bw_shard.Part.make ?lo ?hi shards in
  let shard_dir i = Filename.concat dir (Printf.sprintf "shard-%02d" i) in
  let stores =
    Array.init shards (fun i ->
        Durable_str.open_dir ?config ~obs:(obs_of i) ?segment_bytes ?page_items
          ~fsync
          ?on_replay:(Option.map (fun f -> f i) on_replay)
          ~dir:(shard_dir i) ())
  in
  let drivers =
    Array.map
      (fun (st, _) ->
        Durable_str.wrap_driver st
          (bw_str_driver_of_tree (Durable_str.tree st)))
      stores
  in
  {
    dur_driver = Bw_shard.route_binary ?name part drivers;
    dur_checkpoint =
      (fun ?tid ?mode () ->
        Array.iter
          (fun (st, _) ->
            ignore (Durable_str.checkpoint ?tid ?mode st : int * int))
          stores);
    dur_close =
      (fun () -> Array.iter (fun (st, _) -> Durable_str.close st) stores);
    dur_stats =
      Array.fold_left
        (fun acc (_, s) ->
          match acc with
          | None -> Some s
          | Some a -> Some (Pagestore.Store.merge_stats a s))
        None stores
      |> Option.get;
    dur_sources = Array.map (fun (st, _) -> Durable_str.repl_source st) stores;
  }

(* --- the six-index lineup used by §6 experiments --- *)

let int_lineup () : (string * (unit -> int Runner.driver)) list =
  [
    ("Bw-Tree", fun () -> bwtree_driver_int ~name:"Bw-Tree"
                    ~config:Bwtree.microsoft_config ());
    ("OpenBw-Tree", fun () -> bwtree_driver_int ());
    ("SkipList", fun () -> skiplist_driver_int ());
    ("Masstree", fun () -> masstree_driver_int ());
    ("B+Tree", fun () -> btree_driver_int ());
    ("ART", fun () -> art_driver_int ());
  ]

let str_lineup () : (string * (unit -> string Runner.driver)) list =
  [
    ("Bw-Tree", fun () -> bwtree_driver_str ~name:"Bw-Tree"
                    ~config:Bwtree.microsoft_config ());
    ("OpenBw-Tree", fun () -> bwtree_driver_str ());
    ("SkipList", fun () -> skiplist_driver_str ());
    ("Masstree", fun () -> masstree_driver_str ());
    ("B+Tree", fun () -> btree_driver_str ());
    ("ART", fun () -> art_driver_str ());
  ]
