(** Epoch-based safe memory reclamation (§2.3, §4.2).

    Lock-free readers may still hold references to nodes that a writer has
    unlinked, so unlinked objects are *retired* into the epoch system and
    only *reclaimed* once no thread can still observe them. Two schemes are
    implemented, matching the paper:

    - {b Centralized} (the original Bw-Tree / Fig. 5a): a linked list of
      epoch objects, each with an atomic membership counter. Every operation
      increments the current epoch's counter on entry and decrements it on
      exit — shared writes that become the scalability bottleneck the paper
      measures in Fig. 10. A background thread (or explicit {!advance}
      calls) appends new epochs and reclaims drained ones.

    - {b Decentralized} (OpenBw-Tree / Fig. 5b, after Silo and
      Deuteronomy): a global epoch counter that threads only read, a
      per-thread local epoch they publish to a private padded slot, and
      per-thread garbage lists tagged with the global epoch at retirement.
      A thread reclaims its own garbage older than the minimum of all
      published local epochs.

    In this OCaml reproduction "reclaiming" an object means dropping the
    epoch system's reference and counting it; the runtime GC then recycles
    the memory. The synchronization protocol — the thing whose cost the
    paper compares — is implemented in full.

    Thread ids [tid] must be dense in [\[0, max_threads)] and each used by
    at most one thread at a time. *)

type scheme =
  | Centralized
  | Decentralized
  | Disabled  (** no tracking: for single-threaded tests and ablations *)

type t

val create :
  scheme:scheme ->
  max_threads:int ->
  ?gc_threshold:int ->
  ?obs:Bw_obs.sink ->
  unit ->
  t
(** [gc_threshold] (default 1024, the paper's setting) is the local garbage
    list length that triggers a reclamation attempt in the decentralized
    scheme; in the centralized scheme reclamation happens on {!advance}.
    [obs] (default {!Bw_obs.Null}) receives reclaim-batch latencies and
    sizes, [Ev_reclaim] events, and registers the [G_epoch_pending] and
    [G_epoch_watermark_lag] gauge providers. *)

val scheme : t -> scheme

val op_begin : t -> tid:int -> unit
(** Enter epoch protection before touching index internals. *)

val op_end : t -> tid:int -> unit
(** Leave epoch protection; in the decentralized scheme this may reclaim
    local garbage. *)

val retire : t -> tid:int -> Obj.t -> unit
(** Hand an unlinked object to the epoch system. The caller must already
    have made it unreachable from the index. *)

val advance : t -> unit
(** Move time forward: append a new epoch object (centralized) or increment
    the global epoch (decentralized). Called by the background thread or
    cooperatively by the harness. Also attempts reclamation of drained
    centralized epochs. *)

val start_background : t -> interval_s:float -> unit
(** Spawn a domain that calls {!advance} every [interval_s] seconds (the
    paper uses 40 ms). No-op if one is already running or scheme is
    [Disabled]. *)

val stop_background : t -> unit
(** Stop and join the background domain, if any. Safe to call anytime. *)

val quiesce : t -> tid:int -> unit
(** Declare that thread [tid] will not touch the index until its next
    [op_begin]; its published epoch no longer holds back reclamation. *)

val flush : t -> unit
(** Drain everything that is safe to reclaim right now, assuming all
    threads are quiescent. For tests and shutdown. *)

type stats = {
  retired : int;       (** objects handed to {!retire} *)
  reclaimed : int;     (** objects released back to the runtime *)
  epochs_advanced : int;
  enters : int;        (** protected sections entered *)
}

val stats : t -> stats
val pending : t -> int
(** retired − reclaimed. *)

(**/**)

val test_retire_window : (unit -> unit) ref
(** Test-only scheduling hook: invoked by the centralized retire path
    between target-epoch selection and garbage publication, so regression
    tests can deterministically force an {!advance} into the race window.
    Must be restored to a no-op after use. *)

(**/**)
