type scheme = Centralized | Decentralized | Disabled

(* ------------------------------------------------------------------ *)
(* Centralized scheme (Fig. 5a)                                        *)
(* ------------------------------------------------------------------ *)

type cepoch = {
  id : int;
  counter : int Atomic.t;
  garbage : Obj.t list Atomic.t;
  next : cepoch option Atomic.t;
}

type centralized = {
  current : cepoch Atomic.t;
  head : cepoch Atomic.t;  (* oldest epoch still chained *)
  entered : cepoch option array;  (* slot [tid] written only by thread tid *)
  (* Epochs unchained from [head] but whose counters had not yet drained
     when the collector passed; oldest first. Only touched under
     [advance_lock]. *)
  mutable deferred : cepoch list;
  advance_lock : Mutex.t;
}

let make_cepoch id =
  {
    id;
    counter = Atomic.make 0;
    garbage = Atomic.make [];
    next = Atomic.make None;
  }

(* ------------------------------------------------------------------ *)
(* Decentralized scheme (Fig. 5b)                                      *)
(* ------------------------------------------------------------------ *)

(* Sentinel for "thread is not holding the watermark back". *)
let idle = max_int

type decentralized = {
  global : int Atomic.t;
  local : int Atomic.t array;  (* published epochs, one padded cell per tid *)
  bags : (int * Obj.t) Bw_util.Growable.t array;  (* owner-only garbage *)
  gc_threshold : int;
  (* bag length at which thread tid next attempts collection; raised after
     each attempt so a stalled watermark cannot make every op_end rescan
     the whole bag *)
  next_collect : int array;
}

type impl =
  | C of centralized
  | D of decentralized
  | Off

type t = {
  impl : impl;
  obs : Bw_obs.sink;
  max_threads : int;
  (* Per-thread statistic rows; summed on read so hot paths never write to
     shared memory. *)
  s_retired : int array array;
  s_reclaimed : int array array;
  (* Reclamations performed by collectors that have no thread identity of
     their own (the background advancer, foreground [flush]/[advance]
     callers). Kept atomic because any number of them may race. *)
  s_reclaimed_shared : int Atomic.t;
  s_enters : int array array;
  advanced : int Atomic.t;
  mutable background : unit Domain.t option;
  bg_stop : bool Atomic.t;
}

type stats = {
  retired : int;
  reclaimed : int;
  epochs_advanced : int;
  enters : int;
}

(* Test-only scheduling hook: invoked by the centralized retire path after
   it has chosen a target epoch and before it publishes into that epoch's
   garbage list, so regression tests can force an [advance] into the race
   window deterministically. *)
let test_retire_window : (unit -> unit) ref = ref (fun () -> ())

let bump row tid = row.(tid).(0) <- row.(tid).(0) + 1
let bumpn row tid n = row.(tid).(0) <- row.(tid).(0) + n
let sum row = Array.fold_left (fun acc r -> acc + r.(0)) 0 row

let d_watermark d =
  let w = ref idle in
  Array.iter
    (fun cell ->
      let v = Atomic.get cell in
      if v < !w then w := v)
    d.local;
  !w

let create ~scheme ~max_threads ?(gc_threshold = 1024) ?(obs = Bw_obs.Null) ()
    =
  let impl =
    match scheme with
    | Disabled -> Off
    | Centralized ->
        let e0 = make_cepoch 0 in
        C
          {
            current = Atomic.make e0;
            head = Atomic.make e0;
            entered = Array.make max_threads None;
            deferred = [];
            advance_lock = Mutex.create ();
          }
    | Decentralized ->
        D
          {
            global = Atomic.make 0;
            local = Array.init max_threads (fun _ -> Atomic.make idle);
            bags =
              Array.init max_threads (fun _ -> Bw_util.Growable.create ());
            gc_threshold;
            next_collect = Array.make max_threads gc_threshold;
          }
  in
  let row () = Array.init max_threads (fun _ -> Array.make 8 0) in
  let t =
    {
      impl;
      obs;
      max_threads;
      s_retired = row ();
      s_reclaimed = row ();
      s_reclaimed_shared = Atomic.make 0;
      s_enters = row ();
      advanced = Atomic.make 0;
      background = None;
      bg_stop = Atomic.make false;
    }
  in
  Bw_obs.register_gauge obs Bw_obs.G_epoch_pending (fun () ->
      sum t.s_retired - (sum t.s_reclaimed + Atomic.get t.s_reclaimed_shared));
  Bw_obs.register_gauge obs Bw_obs.G_epoch_watermark_lag (fun () ->
      match t.impl with
      | D d ->
          let w = d_watermark d in
          if w = idle then 0 else Atomic.get d.global - w
      | C c -> (Atomic.get c.current).id - (Atomic.get c.head).id
      | Off -> 0);
  t

let scheme t =
  match t.impl with C _ -> Centralized | D _ -> Decentralized | Off -> Disabled

(* --- centralized operations --- *)

let c_enter t c ~tid =
  let rec go () =
    let e = Atomic.get c.current in
    ignore (Atomic.fetch_and_add e.counter 1);
    (* Validate after publishing: if the collector already unchained [e],
       our membership came too late to be seen — back out and rejoin the
       real current epoch. The collector reads the counter only after
       moving [head], so whenever it observes zero every late joiner is
       guaranteed to fail this check and retry. *)
    if e.id >= (Atomic.get c.head).id then c.entered.(tid) <- Some e
    else begin
      ignore (Atomic.fetch_and_add e.counter (-1));
      go ()
    end
  in
  go ();
  bump t.s_enters tid

let c_exit c ~tid =
  match c.entered.(tid) with
  | None -> ()
  | Some e ->
      c.entered.(tid) <- None;
      ignore (Atomic.fetch_and_add e.counter (-1))

let c_retire t c ~tid obj =
  (* Publish-then-validate, mirroring [c_enter]: push onto the current
     epoch's garbage list, then check that the epoch is still chained. If
     the collector unchained it while we were pushing, it may also have
     drained it already — in that case the push landed in a dead epoch and
     would leak forever. Steal back whatever the drain did not take and
     re-park it on the fresh current epoch; the exchange is atomic, so
     every object ends up on exactly one live garbage list and is
     reclaimed exactly once. *)
  let rec park objs =
    let e = Atomic.get c.current in
    !test_retire_window ();
    let rec push () =
      let old = Atomic.get e.garbage in
      if not (Atomic.compare_and_set e.garbage old (List.rev_append objs old))
      then push ()
    in
    push ();
    if e.id < (Atomic.get c.head).id then
      match Atomic.exchange e.garbage [] with
      | [] -> () (* the collector saw our push; nothing is stranded *)
      | stolen -> park stolen
  in
  park [ obj ];
  bump t.s_retired tid

let c_reclaim_epoch t e =
  let g = Atomic.exchange e.garbage [] in
  (* [c_advance] runs from the background domain and from any foreground
     [flush]/[advance] caller, so this count cannot go into a per-thread
     row without breaking the "written only by thread tid" contract. *)
  let n = List.length g in
  ignore (Atomic.fetch_and_add t.s_reclaimed_shared n);
  if n > 0 && Bw_obs.enabled t.obs then begin
    Bw_obs.incr_anon t.obs Bw_obs.C_reclaim_batches;
    Bw_obs.event_anon t.obs Bw_obs.Ev_reclaim ~a:n ~b:e.id;
    (* tid out of stripe range lands on the shared stripe *)
    Bw_obs.observe t.obs ~tid:max_int Bw_obs.Val_reclaim_batch n
  end

let c_advance t c =
  Mutex.lock c.advance_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.advance_lock) @@ fun () ->
  let cur = Atomic.get c.current in
  let fresh = make_cepoch (cur.id + 1) in
  Atomic.set cur.next (Some fresh);
  Atomic.set c.current fresh;
  ignore (Atomic.fetch_and_add t.advanced 1);
  (* Unchain every epoch older than the new current into the deferred
     queue, then drain the prefix whose counters have reached zero. An
     epoch's garbage is reclaimed only when it and all older epochs have
     drained, which the prefix rule enforces. *)
  let rec unchain () =
    let h = Atomic.get c.head in
    if h.id < fresh.id then begin
      (match Atomic.get h.next with
      | Some n -> Atomic.set c.head n
      | None -> assert false);
      c.deferred <- c.deferred @ [ h ];
      unchain ()
    end
  in
  unchain ();
  let rec drain = function
    | e :: rest when Atomic.get e.counter = 0 ->
        c_reclaim_epoch t e;
        drain rest
    | rest -> rest
  in
  c.deferred <- drain c.deferred

(* --- decentralized operations --- *)

let d_begin t d ~tid =
  Atomic.set d.local.(tid) (Atomic.get d.global);
  bump t.s_enters tid

let d_collect t d ~tid =
  let bag = d.bags.(tid) in
  if Bw_util.Growable.length bag > 0 then begin
    let t0 = if Bw_obs.enabled t.obs then Bw_obs.now_ns () else 0 in
    let w = d_watermark d in
    let keep = Bw_util.Growable.create () in
    let freed = ref 0 in
    Bw_util.Growable.iter
      (fun ((tag, _) as item) ->
        if tag < w then incr freed else Bw_util.Growable.push keep item)
      bag;
    if !freed > 0 then begin
      Bw_util.Growable.clear bag;
      Bw_util.Growable.iter (fun item -> Bw_util.Growable.push bag item) keep;
      bumpn t.s_reclaimed tid !freed;
      if Bw_obs.enabled t.obs then begin
        Bw_obs.observe t.obs ~tid Bw_obs.Lat_reclaim (Bw_obs.now_ns () - t0);
        Bw_obs.observe t.obs ~tid Bw_obs.Val_reclaim_batch !freed;
        Bw_obs.incr t.obs ~tid Bw_obs.C_reclaim_batches;
        Bw_obs.event t.obs ~tid Bw_obs.Ev_reclaim ~a:!freed
          ~b:(Bw_util.Growable.length bag)
      end
    end
    else
      (* The watermark is not moving: either no background thread is
         advancing the global epoch, or it is too slow for our retirement
         rate. Bump the epoch ourselves — a rare cold-path write that
         keeps the scheme's hot path contention-free. *)
      ignore (Atomic.fetch_and_add d.global 1)
  end;
  (* re-arm so the next attempt happens after Θ(threshold) more
     retirements, keeping collection amortized O(1) per retire even when
     nothing could be freed *)
  d.next_collect.(tid) <-
    Bw_util.Growable.length bag + max 1 (d.gc_threshold / 2)

let d_end t d ~tid =
  (* Release the watermark: between operations this thread holds no
     references, so it must publish [idle]. Re-publishing the global epoch
     here would pin the watermark forever once the thread issues its last
     operation, leaking every other thread's bags until an explicit
     [quiesce]. Publishing before collecting also lets this thread's own
     stale epoch stop holding back its own bag. *)
  Atomic.set d.local.(tid) idle;
  if Bw_util.Growable.length d.bags.(tid) >= d.next_collect.(tid) then
    d_collect t d ~tid

let d_retire t d ~tid obj =
  Bw_util.Growable.push d.bags.(tid) (Atomic.get d.global, obj);
  bump t.s_retired tid

let d_advance t d =
  ignore (Atomic.fetch_and_add d.global 1);
  ignore (Atomic.fetch_and_add t.advanced 1)

(* --- dispatch --- *)

let op_begin t ~tid =
  match t.impl with
  | C c -> c_enter t c ~tid
  | D d -> d_begin t d ~tid
  | Off -> ()

let op_end t ~tid =
  match t.impl with
  | C c -> c_exit c ~tid
  | D d -> d_end t d ~tid
  | Off -> ()

let retire t ~tid obj =
  match t.impl with
  | C c -> c_retire t c ~tid obj
  | D d -> d_retire t d ~tid obj
  | Off ->
      (* nothing holds the object; the runtime GC frees it immediately *)
      bump t.s_retired tid;
      bump t.s_reclaimed tid

let advance t =
  match t.impl with
  | C c -> c_advance t c
  | D d -> d_advance t d
  | Off -> ()

let quiesce t ~tid =
  match t.impl with
  | C c -> c_exit c ~tid
  | D d -> Atomic.set d.local.(tid) idle
  | Off -> ()

let flush t =
  match t.impl with
  | Off -> ()
  | C c ->
      (* Two advances push every retired object through the deferred queue
         provided all threads have exited their epochs. *)
      c_advance t c;
      c_advance t c
  | D d ->
      d_advance t d;
      for tid = 0 to t.max_threads - 1 do
        d_collect t d ~tid
      done

let start_background t ~interval_s =
  match (t.impl, t.background) with
  | Off, _ | _, Some _ -> ()
  | (C _ | D _), None ->
      Atomic.set t.bg_stop false;
      let dom =
        Domain.spawn (fun () ->
            while not (Atomic.get t.bg_stop) do
              Unix.sleepf interval_s;
              advance t
            done)
      in
      t.background <- Some dom

let stop_background t =
  match t.background with
  | None -> ()
  | Some dom ->
      Atomic.set t.bg_stop true;
      Domain.join dom;
      t.background <- None

let stats t =
  {
    retired = sum t.s_retired;
    reclaimed = sum t.s_reclaimed + Atomic.get t.s_reclaimed_shared;
    epochs_advanced = Atomic.get t.advanced;
    enters = sum t.s_enters;
  }

let pending t =
  let s = stats t in
  s.retired - s.reclaimed
