(** Multi-domain TCP server for the Bw-Tree serving layer.

    One acceptor domain listens and hands accepted sockets to [workers]
    worker domains round-robin. Each worker runs a nonblocking
    [Unix.select] event loop over its own connection set — connection
    state is shared-nothing between workers; the only shared object is
    the index itself, reached through its lock-free API with the worker's
    domain index as [tid].

    Per connection the worker keeps a frame decoder (bounded by
    {!Wire.max_frame}) and an output buffer. Backpressure is hard: once a
    connection's queued output exceeds [wbuf_cap] the worker stops
    selecting it for read, so a client that pipelines faster than it
    drains responses stalls instead of ballooning server memory.

    Error isolation: a payload-level malformed frame gets an [Err] reply
    (and, with [close_on_malformed], a drain-and-close of that one
    connection); a framing-level violation (oversized length prefix)
    always closes the connection since the stream cannot be resynced.
    Other connections are unaffected either way.

    {!stop} drains gracefully: the acceptor stops, workers answer every
    request already received, flush within [drain_timeout_s], close, and
    release their epoch slots. *)

open Index_iface

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port}. *)
  workers : int;
  wbuf_cap : int;  (** per-connection queued-output cap, bytes *)
  close_on_malformed : bool;
  drain_timeout_s : float;
  obs : Bw_obs.sink;
  stats_json : (unit -> string) option;
      (** what a STATS frame answers; [None] snapshots [obs]. A sharded
          server plugs in the merged-plus-per-shard snapshot here. *)
  repl_handler : (tid:int -> Wire.repl_req -> Wire.resp) option;
      (** evaluates replication frames; [None] (every server that is not
          a follower) answers them with ERR. Runs on the worker that owns
          the shipper's connection — FIFO per connection is the stream's
          ordering guarantee. *)
  gate : Cluster_gate.t option;
      (** cluster membership: when set, every data request is validated
          against this node's partition table (wrong owner answers
          {!Wire.Err_wrong_shard}), scans clip to the owned range and
          carry a continuation, and TOPOLOGY frames read/install the
          table. [None] = a standalone server, gate-free fast paths. *)
  migrate_handler :
    (tid:int -> lo:string -> hi:string option -> dst:int -> Wire.resp) option;
      (** admits a MIGRATE frame (the engine lives above this library,
          next to the client it needs); [None] answers ERR. *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 2;
    wbuf_cap = 8 * 1024 * 1024;
    close_on_malformed = false;
    drain_timeout_s = 5.0;
    obs = Bw_obs.Null;
    stats_json = None;
    repl_handler = None;
    gate = None;
    migrate_handler = None;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  out : Buffer.t;
  mutable out_off : int;  (** bytes of [out] already written to the fd *)
  mutable closing : bool;  (** flush pending output, then close *)
}

type worker = {
  w_index : int;
  mutable conns : conn list;
  pending : Unix.file_descr Queue.t;  (** handoffs from the acceptor *)
  pending_lock : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  queued_bytes : int Atomic.t;  (** gauge input, updated once per loop *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  backend : Backend.t;
  stopping : bool Atomic.t;
  active_conns : int Atomic.t;
  workers : worker array;
  mutable domains : unit Domain.t list;
}

let port t = t.bound_port

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let rec upsert (b : Backend.t) ~tid k v =
  if b.update ~tid k v then true
  else if b.insert ~tid k v then true
  else upsert b ~tid k v (* lost an insert/delete race; retry *)

let series_of_req : Wire.req -> Bw_obs.series = function
  | Wire.Get _ -> Bw_obs.Lat_req_get
  | Wire.Put _ -> Bw_obs.Lat_req_put
  | Wire.Delete _ -> Bw_obs.Lat_req_delete
  | Wire.Scan _ -> Bw_obs.Lat_req_scan
  | Wire.Batch _ | Wire.Ingest _ -> Bw_obs.Lat_req_batch
  | Wire.Stats | Wire.Topology _ -> Bw_obs.Lat_req_stats
  | Wire.Repl _ | Wire.Migrate _ -> Bw_obs.Lat_req_repl

(* Evaluate one request, appending the encoded response body to [body].
   SCAN streams visits straight into the encode buffer — items never
   materialize as a list. Point ops compute their result before any byte
   is written, so a raising sub-request leaves [body] untouched and
   BATCH slot isolation only needs a scratch buffer around scans.

   With a cluster gate, point ops validate ownership first (raising
   {!Wire.Wrong_shard} on a miss), writes run through the gate's
   capture path, and scans clip to the owned range, answering
   [Scanned_to] with the exact continuation key. *)
let rec eval_into t ~tid body (req : Wire.req) : unit =
  let b = t.backend in
  let gated_write k op apply =
    match t.cfg.gate with
    | None -> apply ()
    | Some g ->
        Cluster_gate.write g ~tid (Bw_cluster.Slice.of_binary k) op apply
  in
  match req with
  | Wire.Get k ->
      (match t.cfg.gate with
      | None -> ()
      | Some g -> Cluster_gate.check_read g ~tid (Bw_cluster.Slice.of_binary k));
      Wire.encode_resp body (Wire.Value (b.read ~tid k))
  | Wire.Put (Wire.Insert, k, v) ->
      Wire.encode_resp body
        (Wire.Applied
           (gated_write k (Cluster_gate.Wop_put (k, v)) (fun () ->
                b.insert ~tid k v)))
  | Wire.Put (Wire.Update, k, v) ->
      Wire.encode_resp body
        (Wire.Applied
           (gated_write k (Cluster_gate.Wop_put (k, v)) (fun () ->
                b.update ~tid k v)))
  | Wire.Put (Wire.Upsert, k, v) ->
      Wire.encode_resp body
        (Wire.Applied
           (gated_write k (Cluster_gate.Wop_put (k, v)) (fun () ->
                upsert b ~tid k v)))
  | Wire.Delete k ->
      Wire.encode_resp body
        (Wire.Applied
           (gated_write k (Cluster_gate.Wop_remove k) (fun () ->
                b.remove ~tid k)))
  | Wire.Scan (k, n) -> (
      match t.cfg.gate with
      | None ->
          Wire.encode_scanned_into body (fun visit -> b.scan ~tid k ~n visit)
      | Some g ->
          let hi =
            Cluster_gate.scan_range g ~tid (Bw_cluster.Slice.of_binary k)
          in
          let in_range key =
            match hi with
            | None -> true
            | Some h ->
                Int64.unsigned_compare (Bw_cluster.Slice.of_binary key) h < 0
          in
          (* The clip filter is exact even over stale leftovers of a
             migrated-away range: owned keys all sort before the
             boundary, so if the budget is met the first [n] raw visits
             were all owned, and if it is not the owned range is
             exhausted — which is exactly what the continuation key
             tells the router. *)
          Wire.encode_scanned_to_into body
            (fun visit ->
              b.scan ~tid k ~n (fun key v ->
                  if in_range key then visit key v))
            (fun ~count ~last ->
              if n <= 0 then Some k
              else if count >= n then
                match last with Some lk -> Some (lk ^ "\000") | None -> None
              else Option.map Bw_cluster.Slice.floor_binary hi))
  | Wire.Batch reqs ->
      Wire.encode_batched_header body (List.length reqs);
      eval_batch t ~tid body reqs
  | Wire.Ingest items ->
      (* migration transfer: the engine applies extracted items and
         drained capture ops through the ordinary batch path (group
         commit on a durable backend), bypassing the ownership gate —
         the sender is moving keys this node does not own *yet*. *)
      let op_of (k, v) =
        match v with
        | Some v -> Index_iface.Bop_upsert (k, v)
        | None -> Index_iface.Bop_remove k
      in
      let ops = Bw_util.Arr.of_list (List.map op_of items) in
      if Array.length ops > 0 then
        ignore (Index_iface.exec_batch b ~tid ops : Index_iface.batch_result array);
      Wire.encode_resp body (Wire.Applied true)
  | Wire.Topology arg -> (
      match t.cfg.gate with
      | None -> Wire.encode_resp body (Wire.Err "not a cluster member")
      | Some g -> (
          match arg with
          | None ->
              Wire.encode_resp body
                (Wire.Topology_payload
                   (Bw_cluster.Table.encode (Cluster_gate.table g)))
          | Some enc ->
              let tbl =
                try Bw_cluster.Table.decode enc
                with Failure m -> raise (Wire.Malformed ("bad table: " ^ m))
              in
              ignore (Cluster_gate.install g tbl : bool);
              Wire.encode_resp body (Wire.Applied true)))
  | Wire.Migrate { m_lo; m_hi; m_dst } ->
      Wire.encode_resp body
        (match t.cfg.migrate_handler with
        | None -> Wire.Err "migration not supported on this node"
        | Some h -> h ~tid ~lo:m_lo ~hi:m_hi ~dst:m_dst)
  | Wire.Stats ->
      let json =
        match t.cfg.stats_json with
        | Some f -> f ()
        | None -> (
            match t.cfg.obs with
            | Bw_obs.Null -> "{}"
            | Bw_obs.To reg ->
                Bw_obs.snapshot_to_string (Bw_obs.snapshot reg))
      in
      Wire.encode_resp body (Wire.Stats_payload json)
  | Wire.Repl r ->
      Wire.encode_resp body
        (match t.cfg.repl_handler with
        | None -> Wire.Err "replication not enabled"
        | Some h -> h ~tid r)

(* A decoded BATCH frame: point ops run through the backend's amortized
   batch path in one call (undecodable keys answer ERR in their slot via
   [Bres_bad_key]); scans still evaluate per slot, with the pre-batch
   isolation. Responses are emitted in wire order either way. The point
   ops linearize before the batch's scans — sub-requests of one BATCH
   carry no ordering promise across kinds (they never did: slots are
   independent operations that happen to share a frame). Backends
   without a batch path keep the per-slot evaluation unchanged. *)
and eval_batch t ~tid body (reqs : Wire.req list) : unit =
  let b = t.backend in
  let per_slot r =
    (* sub-request failures are isolated to their slot *)
    let slot = Buffer.create 64 in
    match eval_into t ~tid slot r with
    | () -> Buffer.add_buffer body slot
    | exception Wire.Malformed m -> Wire.encode_resp body (Wire.Err m)
    | exception Bad_key _ -> Wire.encode_resp body (Wire.Err "undecodable key")
    | exception Wire.Wrong_shard e ->
        Wire.encode_resp body (Wire.Err_wrong_shard e)
    | exception Read_only -> Wire.encode_resp body Wire.Err_read_only
  in
  let fast () =
      let op_of = function
        | Wire.Get k -> Some (Index_iface.Bop_read k)
        | Wire.Put (Wire.Insert, k, v) -> Some (Index_iface.Bop_insert (k, v))
        | Wire.Put (Wire.Update, k, v) -> Some (Index_iface.Bop_update (k, v))
        | Wire.Put (Wire.Upsert, k, v) -> Some (Index_iface.Bop_upsert (k, v))
        | Wire.Delete k -> Some (Index_iface.Bop_remove k)
        | Wire.Scan _ | Wire.Batch _ | Wire.Stats | Wire.Repl _
        | Wire.Topology _ | Wire.Migrate _ | Wire.Ingest _ ->
            None
      in
      (* Bw_util.Arr: batch frames carry up to [Wire.max_batch] slots,
         and a stdlib of_list that size forces a minor GC per frame. *)
      let point = Bw_util.Arr.of_list (List.filter_map op_of reqs) in
      let results =
        if Array.length point = 0 then [||]
        else Index_iface.exec_batch b ~tid point
      in
      let next = ref 0 in
      List.iter
        (fun r ->
          match op_of r with
          | Some _ ->
              let res = results.(!next) in
              incr next;
              (match res with
              | Index_iface.Bres_applied ok ->
                  Wire.encode_resp body (Wire.Applied ok)
              | Index_iface.Bres_value v ->
                  Wire.encode_resp body (Wire.Value v)
              | Index_iface.Bres_bad_key ->
                  Wire.encode_resp body (Wire.Err "undecodable key"))
          | None -> per_slot r)
        reqs
  in
  match (b.batch, t.cfg.gate) with
  | None, _ -> List.iter per_slot reqs
  | Some _, None -> fast ()
  | Some _, Some g ->
      (* The amortized path bypasses per-op gating, so it may run only
         when no migration is active (nothing to capture) and every
         point-op key is owned — validated, then executed, as one
         published-writer section so a migration starting mid-frame
         waits for the whole batch before extracting. Otherwise each
         slot evaluates through the gate individually (redirects and
         captures land per slot). *)
      Cluster_gate.with_pub g (fun () ->
          let tbl = Cluster_gate.table g in
          let owned r =
            match r with
            | Wire.Get k | Wire.Put (_, k, _) | Wire.Delete k ->
                Bw_cluster.Table.owner_binary tbl k = Cluster_gate.self g
            | Wire.Scan _ | Wire.Batch _ | Wire.Stats | Wire.Repl _
            | Wire.Topology _ | Wire.Migrate _ | Wire.Ingest _ ->
                true (* per-slot anyway, or gated inside eval_into *)
          in
          if Cluster_gate.migration_active g || not (List.for_all owned reqs)
          then List.iter per_slot reqs
          else fast ())

(* Decode + evaluate one frame, appending the framed reply to [out];
   never raises. Returns whether the connection must be put into
   drain-and-close. *)
let handle_frame t ~tid out payload : bool =
  let obs = t.cfg.obs in
  Bw_obs.incr obs ~tid Bw_obs.C_net_requests;
  let err m close =
    Bw_obs.incr obs ~tid Bw_obs.C_net_errors;
    Buffer.add_string out (Wire.frame_resp (Wire.Err m));
    close
  in
  match Wire.decode_req payload with
  | exception Wire.Malformed m ->
      err ("malformed request: " ^ m) t.cfg.close_on_malformed
  | req -> (
      let t0 = if Bw_obs.enabled obs then Bw_obs.now_ns () else 0 in
      let body = Buffer.create 64 in
      match eval_into t ~tid body req with
      | () ->
          if Bw_obs.enabled obs then
            Bw_obs.observe obs ~tid (series_of_req req)
              (Bw_obs.now_ns () - t0);
          Wire.add_frame_buf out body;
          false
      | exception Wire.Malformed m -> err m t.cfg.close_on_malformed
      | exception Bad_key _ ->
          err "undecodable key" t.cfg.close_on_malformed
      | exception Wire.Wrong_shard e ->
          (* expected redirect, not a protocol error: the gate already
             counted it, and the client retries after a table refetch *)
          Buffer.add_string out (Wire.frame_resp (Wire.Err_wrong_shard e));
          false
      | exception Read_only ->
          Buffer.add_string out (Wire.frame_resp Wire.Err_read_only);
          false
      | exception exn ->
          (* an operation failure must not take the worker down *)
          err ("internal error: " ^ Printexc.to_string exn) false)

(* ------------------------------------------------------------------ *)
(* Worker event loop                                                   *)
(* ------------------------------------------------------------------ *)

let close_conn t (c : conn) =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Atomic.decr t.active_conns

let conn_pending_out c = Buffer.length c.out - c.out_off

(* Flush as much queued output as the socket accepts. Returns [false] if
   the connection died mid-write. *)
let flush_conn t ~tid (c : conn) =
  let rec go () =
    let pending = conn_pending_out c in
    if pending = 0 then true
    else
      let chunk = min pending 65_536 in
      let s = Buffer.sub c.out c.out_off chunk in
      match Unix.write_substring c.fd s 0 chunk with
      | 0 -> true
      | n ->
          c.out_off <- c.out_off + n;
          Bw_obs.add t.cfg.obs ~tid Bw_obs.C_net_bytes_out n;
          if c.out_off = Buffer.length c.out then begin
            Buffer.clear c.out;
            c.out_off <- 0;
            true
          end
          else go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> true
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          false
  in
  go ()

(* Drain every complete frame currently buffered on [c]. *)
let process_frames t ~tid (c : conn) =
  let continue = ref true in
  while !continue && not c.closing do
    match Wire.Decoder.next c.dec with
    | `Need_more -> continue := false
    | `Frame payload ->
        if handle_frame t ~tid c.out payload then c.closing <- true
    | `Framing m ->
        Bw_obs.incr t.cfg.obs ~tid Bw_obs.C_net_errors;
        Buffer.add_string c.out
          (Wire.frame_resp (Wire.Err ("framing error: " ^ m)));
        c.closing <- true
  done

let read_conn t ~tid (c : conn) scratch =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 ->
      (* peer finished sending; answer what's buffered, then close *)
      process_frames t ~tid c;
      c.closing <- true;
      true
  | n ->
      Bw_obs.add t.cfg.obs ~tid Bw_obs.C_net_bytes_in n;
      Wire.Decoder.feed c.dec scratch n;
      process_frames t ~tid c;
      true
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> true
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> false

let drain_wake w scratch =
  match Unix.read w.wake_r scratch 0 (Bytes.length scratch) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let adopt_pending t w =
  Mutex.lock w.pending_lock;
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] w.pending in
  Queue.clear w.pending;
  Mutex.unlock w.pending_lock;
  List.iter
    (fun fd ->
      (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      w.conns <-
        {
          fd;
          dec = Wire.Decoder.create ();
          out = Buffer.create 4096;
          out_off = 0;
          closing = false;
        }
        :: w.conns)
    fds;
  ignore t

let worker_loop t (w : worker) =
  let tid = w.w_index in
  let scratch = Bytes.create 65_536 in
  let wake_scratch = Bytes.create 64 in
  let stop_deadline = ref 0.0 in
  let running = ref true in
  while !running do
    let stopping = Atomic.get t.stopping in
    if stopping && !stop_deadline = 0.0 then
      stop_deadline := Unix.gettimeofday () +. t.cfg.drain_timeout_s;
    adopt_pending t w;
    (* when stopping: no new reads; answer what's decoded, flush, close *)
    if stopping then
      List.iter
        (fun c ->
          process_frames t ~tid c;
          c.closing <- true)
        w.conns;
    let readable =
      if stopping then []
      else
        List.filter
          (fun c -> (not c.closing) && conn_pending_out c < t.cfg.wbuf_cap)
          w.conns
    in
    let writable = List.filter (fun c -> conn_pending_out c > 0) w.conns in
    let rset = w.wake_r :: List.map (fun c -> c.fd) readable in
    let wset = List.map (fun c -> c.fd) writable in
    let rs, ws, _ =
      try Unix.select rset wset [] 0.05
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    if List.mem w.wake_r rs then drain_wake w wake_scratch;
    let dead = ref [] in
    List.iter
      (fun c ->
        if List.mem c.fd ws then
          if not (flush_conn t ~tid c) then dead := c :: !dead)
      writable;
    List.iter
      (fun c ->
        if List.mem c.fd rs && not (List.memq c !dead) then
          if not (read_conn t ~tid c scratch) then dead := c :: !dead)
      readable;
    (* opportunistic flush of freshly produced output *)
    List.iter
      (fun c ->
        if (not (List.memq c !dead)) && conn_pending_out c > 0 then
          if not (flush_conn t ~tid c) then dead := c :: !dead)
      w.conns;
    (* reap: dead connections, and closing ones that finished flushing *)
    let keep, drop =
      List.partition
        (fun c ->
          (not (List.memq c !dead))
          && not (c.closing && conn_pending_out c = 0))
        w.conns
    in
    List.iter (close_conn t) drop;
    w.conns <- keep;
    Atomic.set w.queued_bytes
      (List.fold_left (fun acc c -> acc + conn_pending_out c) 0 w.conns);
    if stopping then
      if w.conns = [] || Unix.gettimeofday () > !stop_deadline then begin
        List.iter (close_conn t) w.conns;
        w.conns <- [];
        Atomic.set w.queued_bytes 0;
        running := false
      end
  done;
  t.backend.thread_done ~tid

(* ------------------------------------------------------------------ *)
(* Acceptor                                                            *)
(* ------------------------------------------------------------------ *)

let acceptor_loop t =
  let next = ref 0 in
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            let w = t.workers.(!next mod Array.length t.workers) in
            incr next;
            Atomic.incr t.active_conns;
            Mutex.lock w.pending_lock;
            Queue.add fd w.pending;
            Mutex.unlock w.pending_lock;
            (try ignore (Unix.write_substring w.wake_w "x" 0 1)
             with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error (EBADF, _, _) ->
            (* listen socket closed under us during stop *)
            ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) (backend : Backend.t) : t =
  if config.workers < 1 then invalid_arg "Server.start: workers < 1";
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.inet_addr_of_string config.host in
  (try Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port))
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 128;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let workers =
    Array.init config.workers (fun i ->
        let wake_r, wake_w = Unix.pipe () in
        Unix.set_nonblock wake_r;
        {
          w_index = i;
          conns = [];
          pending = Queue.create ();
          pending_lock = Mutex.create ();
          wake_r;
          wake_w;
          queued_bytes = Atomic.make 0;
        })
  in
  let t =
    {
      cfg = config;
      listen_fd;
      bound_port;
      backend;
      stopping = Atomic.make false;
      active_conns = Atomic.make 0;
      workers;
      domains = [];
    }
  in
  Bw_obs.register_gauge config.obs Bw_obs.G_net_active_conns (fun () ->
      Atomic.get t.active_conns);
  Bw_obs.register_gauge config.obs Bw_obs.G_net_queued_bytes (fun () ->
      Array.fold_left (fun acc w -> acc + Atomic.get w.queued_bytes) 0 workers);
  backend.start_aux ();
  let worker_domains =
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) workers)
  in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  t.domains <- acceptor :: worker_domains;
  t

let stop (t : t) =
  if not (Atomic.exchange t.stopping true) then begin
    (* wake every worker so the drain starts immediately *)
    Array.iter
      (fun w ->
        try ignore (Unix.write_substring w.wake_w "x" 0 1)
        with Unix.Unix_error _ -> ())
      t.workers;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Array.iter
      (fun w ->
        (try Unix.close w.wake_r with Unix.Unix_error _ -> ());
        try Unix.close w.wake_w with Unix.Unix_error _ -> ())
      t.workers;
    t.backend.stop_aux ()
  end
