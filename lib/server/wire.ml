(** Length-prefixed binary wire protocol for the serving layer.

    Every message on the socket is a frame:

    {v
      +----------------+-------------------------+
      | u32 LE length  |  payload (length bytes) |
      +----------------+-------------------------+
    v}

    The payload reuses {!Pagestore.Codec} primitives: ints are 8-byte
    little-endian, strings are length-prefixed byte arrays. Keys travel as
    their binary-comparable encoding ({!Bw_util.Key_codec}), so the same
    protocol serves int- and string-keyed trees; values are 64-bit ints
    (tuple-pointer stand-ins, like everywhere else in this repo).

    Request payload: one opcode byte followed by opcode-specific fields.
    Response payload: one status byte (0 = OK, 1 = ERR) followed by a
    body whose shape is determined by the request it answers — responses
    are delivered strictly in request order per connection, which is what
    makes pipelining work without request ids.

    Decoding raises {!Malformed} on any violation; framing-level
    violations (oversized or negative lengths) are surfaced separately by
    {!Decoder.next} as [`Framing] so the server can drop the connection
    rather than resynchronize inside a corrupt stream. *)

exception Malformed of string

let bad fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let max_frame = 1 lsl 24
(** Hard cap on a single frame's payload (16 MiB). A peer announcing more
    is not speaking this protocol. *)

let max_scan = 65_536
(** Cap on one SCAN's item count, bounding response frames. *)

let max_batch = 4_096
(** Cap on sub-requests in one BATCH. *)

type put_mode = Insert | Update | Upsert

(** Replication stream frames, primary → standby. They ride the ordinary
    request/response protocol — the shipper is just another client of the
    standby — so FIFO-per-connection ordering and per-frame
    acknowledgement come for free. All payload byte strings (checkpoint
    page records, WAL commit-record groups) are opaque here: both ends
    run the same {!Pagestore} codecs and apply them verbatim. *)
type repl_req =
  | R_subscribe of { key_type : string; shards : int }
      (** opens (or resets) a replication session; the standby checks
          the topology matches its own and clears any partial state *)
  | R_snapshot of {
      shard : int;
      gen : int;
      start_rec : int;  (** WAL commit records folded into the pages *)
      start_ops : int;  (** WAL ops folded into the pages *)
      pages : string list;  (** raw checkpoint page records *)
      last : bool;  (** final chunk: standby verifies [items] and arms *)
      items : int;  (** manifest item count (meaningful when [last]) *)
    }
  | R_walchunk of {
      shard : int;
      gen : int;
      from_rec : int;  (** absolute record index of [groups]' head *)
      groups : string list;  (** raw commit-record payloads, in order *)
      p_recs : int;  (** primary's committed record count in [gen] *)
      p_bytes : int;
          (** primary's unshipped WAL-byte backlog after this chunk.
              Records travel as absolute totals ([p_recs]) because record
              indexes mean the same thing on both ends; byte positions do
              not (the standby never sees the primary's [Log] addresses,
              and a snapshot bootstrap folds a prefix of unknown framed
              size), so the byte lag is computed where it is exact — at
              the shipper's cursor — and shipped as a ready-made gauge
              value. *)
    }
  | R_promote of { data_dir : string option }
      (** seal the stream and flip read-write; [data_dir] points at the
          dead primary's store for the durable-tail replay *)

type req =
  | Get of string
  | Put of put_mode * string * int
  | Delete of string
  | Scan of string * int  (** start key (binary), item budget *)
  | Batch of req list  (** point ops and scans only — no nesting *)
  | Stats
  | Repl of repl_req  (** replication stream (never inside BATCH) *)
  | Topology of string option
      (** cluster partition table: [None] fetches the server's current
          table (encoded, opaque here); [Some t] offers one — the
          server installs it if its epoch is newer *)
  | Migrate of { m_lo : string; m_hi : string option; m_dst : int }
      (** start migrating the key range [[m_lo, m_hi)] ([None] = end of
          key space) to endpoint index [m_dst]; acknowledged when the
          migration is admitted, completion observed via TOPOLOGY *)
  | Ingest of (string * int option) list
      (** migration transfer: apply (key, [Some v] = upsert / [None] =
          delete) pairs through the ordinary batch path, bypassing the
          ownership gate — only a migration engine sends this *)

type resp =
  | Value of int option  (** GET *)
  | Applied of bool  (** PUT / DELETE *)
  | Scanned of (string * int) list  (** SCAN: binary key, value *)
  | Scanned_to of (string * int) list * string option
      (** SCAN answered by a cluster node: the items plus the exact
          continuation key — [Some k] when the node's owned range ended
          before the budget (resume at [k], possibly on another node),
          [None] when the key space is exhausted. The owner names the
          resume point so a router with a stale table never skips a
          sub-range that migrated away mid-scan. *)
  | Batched of resp list  (** BATCH: one reply per sub-request, in order *)
  | Stats_payload of string  (** STATS: JSON metrics snapshot *)
  | Repl_ok of int
      (** replication ack: records applied so far in the current
          generation (ops replayed, for PROMOTE) *)
  | Topology_payload of string  (** TOPOLOGY: the encoded table *)
  | Err of string
  | Err_wrong_shard of int64
      (** this node does not own the request's key under its current
          table (whose epoch rides along): refetch and retry *)
  | Err_read_only
      (** an un-promoted standby refused a write: retry on the
          primary *)

exception Wrong_shard of int64
(** Raised by the server's ownership gate; encoded as
    {!Err_wrong_shard}. *)

(* opcode bytes *)
let op_get = 1
let op_put = 2
let op_delete = 3
let op_scan = 4
let op_batch = 5
let op_stats = 6
let op_subscribe = 7
let op_snapshot = 8
let op_walchunk = 9
let op_promote = 10
let op_topology = 11
let op_migrate = 12
let op_ingest = 13

let st_ok = 0
let st_err = 1

let st_err_code = 2
(** Typed errors: [st_err_code], one code byte, then code-specific
    fields — machine-actionable failures the router dispatches on
    without parsing message strings. *)

let ec_wrong_shard = 1
let ec_read_only = 2

(* ------------------------------------------------------------------ *)
(* Payload encode/decode (Pagestore.Codec primitives)                  *)
(* ------------------------------------------------------------------ *)

module C = Pagestore.Codec

let put_mode_byte = function Insert -> 0 | Update -> 1 | Upsert -> 2

let put_mode_of_byte = function
  | 0 -> Insert
  | 1 -> Update
  | 2 -> Upsert
  | b -> bad "unknown PUT mode %d" b

let add_byte buf b = Buffer.add_char buf (Char.chr (b land 0xff))

let decode_byte s ~pos =
  if !pos >= String.length s then bad "truncated frame: missing byte";
  let b = Char.code s.[!pos] in
  incr pos;
  b

(* Codec raises Failure on truncation; narrow it to Malformed here so
   server/client code has a single protocol-error exception. *)
let decode_int s ~pos =
  try C.decode_int s ~pos with Failure m -> bad "%s" m

let decode_string s ~pos =
  try C.decode_string s ~pos with Failure m -> bad "%s" m

let rec encode_req buf = function
  | Get k ->
      add_byte buf op_get;
      C.encode_string buf k
  | Put (mode, k, v) ->
      add_byte buf op_put;
      add_byte buf (put_mode_byte mode);
      C.encode_string buf k;
      C.encode_int buf v
  | Delete k ->
      add_byte buf op_delete;
      C.encode_string buf k
  | Scan (k, n) ->
      add_byte buf op_scan;
      C.encode_string buf k;
      C.encode_int buf n
  | Batch reqs ->
      add_byte buf op_batch;
      C.encode_int buf (List.length reqs);
      List.iter (encode_req buf) reqs
  | Stats -> add_byte buf op_stats
  | Repl (R_subscribe { key_type; shards }) ->
      add_byte buf op_subscribe;
      C.encode_string buf key_type;
      C.encode_int buf shards
  | Repl (R_snapshot { shard; gen; start_rec; start_ops; pages; last; items })
    ->
      add_byte buf op_snapshot;
      C.encode_int buf shard;
      C.encode_int buf gen;
      C.encode_int buf start_rec;
      C.encode_int buf start_ops;
      C.encode_int buf items;
      add_byte buf (if last then 1 else 0);
      C.encode_int buf (List.length pages);
      List.iter (C.encode_string buf) pages
  | Repl (R_walchunk { shard; gen; from_rec; groups; p_recs; p_bytes }) ->
      add_byte buf op_walchunk;
      C.encode_int buf shard;
      C.encode_int buf gen;
      C.encode_int buf from_rec;
      C.encode_int buf p_recs;
      C.encode_int buf p_bytes;
      C.encode_int buf (List.length groups);
      List.iter (C.encode_string buf) groups
  | Repl (R_promote { data_dir }) -> (
      add_byte buf op_promote;
      match data_dir with
      | None -> add_byte buf 0
      | Some d ->
          add_byte buf 1;
          C.encode_string buf d)
  | Topology t -> (
      add_byte buf op_topology;
      match t with
      | None -> add_byte buf 0
      | Some s ->
          add_byte buf 1;
          C.encode_string buf s)
  | Migrate { m_lo; m_hi; m_dst } ->
      add_byte buf op_migrate;
      C.encode_string buf m_lo;
      (match m_hi with
      | None -> add_byte buf 0
      | Some h ->
          add_byte buf 1;
          C.encode_string buf h);
      C.encode_int buf m_dst
  | Ingest items ->
      add_byte buf op_ingest;
      C.encode_int buf (List.length items);
      List.iter
        (fun (k, v) ->
          C.encode_string buf k;
          match v with
          | None -> add_byte buf 0
          | Some v ->
              add_byte buf 1;
              C.encode_int buf v)
        items

let rec decode_req_at s ~pos ~depth =
  match decode_byte s ~pos with
  | b when b = op_get -> Get (decode_string s ~pos)
  | b when b = op_put ->
      let mode = put_mode_of_byte (decode_byte s ~pos) in
      let k = decode_string s ~pos in
      let v = decode_int s ~pos in
      Put (mode, k, v)
  | b when b = op_delete -> Delete (decode_string s ~pos)
  | b when b = op_scan ->
      let k = decode_string s ~pos in
      let n = decode_int s ~pos in
      if n < 0 then bad "SCAN with negative budget %d" n;
      if n > max_scan then bad "SCAN budget %d exceeds cap %d" n max_scan;
      Scan (k, n)
  | b when b = op_batch ->
      if depth > 0 then bad "nested BATCH";
      let n = decode_int s ~pos in
      if n < 0 then bad "BATCH with negative count %d" n;
      if n > max_batch then bad "BATCH count %d exceeds cap %d" n max_batch;
      Batch (List.init n (fun _ -> decode_req_at s ~pos ~depth:(depth + 1)))
  | b when b = op_stats ->
      if depth > 0 then bad "STATS inside BATCH" else Stats
  | b when b = op_subscribe ->
      if depth > 0 then bad "replication frame inside BATCH";
      let key_type = decode_string s ~pos in
      let shards = decode_int s ~pos in
      if shards < 1 then bad "SUBSCRIBE with shard count %d" shards;
      Repl (R_subscribe { key_type; shards })
  | b when b = op_snapshot ->
      if depth > 0 then bad "replication frame inside BATCH";
      let shard = decode_int s ~pos in
      let gen = decode_int s ~pos in
      let start_rec = decode_int s ~pos in
      let start_ops = decode_int s ~pos in
      let items = decode_int s ~pos in
      if shard < 0 || gen < 0 || start_rec < 0 || start_ops < 0 || items < 0
      then bad "SNAPSHOT with negative field";
      let last =
        match decode_byte s ~pos with
        | 0 -> false
        | 1 -> true
        | b -> bad "bad SNAPSHOT last byte %d" b
      in
      let n = decode_int s ~pos in
      if n < 0 || n > max_batch then bad "bad SNAPSHOT page count %d" n;
      let pages = List.init n (fun _ -> decode_string s ~pos) in
      Repl (R_snapshot { shard; gen; start_rec; start_ops; pages; last; items })
  | b when b = op_walchunk ->
      if depth > 0 then bad "replication frame inside BATCH";
      let shard = decode_int s ~pos in
      let gen = decode_int s ~pos in
      let from_rec = decode_int s ~pos in
      let p_recs = decode_int s ~pos in
      let p_bytes = decode_int s ~pos in
      if shard < 0 || gen < 0 || from_rec < 0 || p_recs < 0 || p_bytes < 0 then
        bad "WALCHUNK with negative field";
      let n = decode_int s ~pos in
      if n < 0 || n > max_batch then bad "bad WALCHUNK group count %d" n;
      let groups = List.init n (fun _ -> decode_string s ~pos) in
      Repl (R_walchunk { shard; gen; from_rec; groups; p_recs; p_bytes })
  | b when b = op_promote -> (
      if depth > 0 then bad "replication frame inside BATCH";
      match decode_byte s ~pos with
      | 0 -> Repl (R_promote { data_dir = None })
      | 1 -> Repl (R_promote { data_dir = Some (decode_string s ~pos) })
      | b -> bad "bad PROMOTE presence byte %d" b)
  | b when b = op_topology -> (
      if depth > 0 then bad "TOPOLOGY inside BATCH";
      match decode_byte s ~pos with
      | 0 -> Topology None
      | 1 -> Topology (Some (decode_string s ~pos))
      | b -> bad "bad TOPOLOGY presence byte %d" b)
  | b when b = op_migrate ->
      if depth > 0 then bad "MIGRATE inside BATCH";
      let m_lo = decode_string s ~pos in
      let m_hi =
        match decode_byte s ~pos with
        | 0 -> None
        | 1 -> Some (decode_string s ~pos)
        | b -> bad "bad MIGRATE presence byte %d" b
      in
      let m_dst = decode_int s ~pos in
      if m_dst < 0 then bad "MIGRATE with negative destination %d" m_dst;
      Migrate { m_lo; m_hi; m_dst }
  | b when b = op_ingest ->
      if depth > 0 then bad "INGEST inside BATCH";
      let n = decode_int s ~pos in
      if n < 0 then bad "INGEST with negative count %d" n;
      if n > max_batch then bad "INGEST count %d exceeds cap %d" n max_batch;
      Ingest
        (List.init n (fun _ ->
             let k = decode_string s ~pos in
             match decode_byte s ~pos with
             | 0 -> (k, None)
             | 1 -> (k, Some (decode_int s ~pos))
             | b -> bad "bad INGEST presence byte %d" b))
  | b -> bad "unknown opcode %d" b

let decode_req s =
  let pos = ref 0 in
  let r = decode_req_at s ~pos ~depth:0 in
  if !pos <> String.length s then
    bad "%d trailing bytes after request" (String.length s - !pos);
  r

(* Responses carry a shape tag so [decode_resp] needs no out-of-band
   request context beyond pairing replies with requests FIFO; the tag is
   also what lets a BATCH reply mix OK and ERR sub-replies. *)
let tag_value = 0
let tag_applied = 1
let tag_scanned = 2
let tag_batched = 3
let tag_stats = 4
let tag_repl = 5
let tag_topology = 6
let tag_scanned_to = 7

let encode_i64 buf (x : int64) =
  Buffer.add_int64_le buf x

let decode_i64 s ~pos =
  if !pos + 8 > String.length s then bad "truncated frame: missing int64";
  let v = String.get_int64_le s !pos in
  pos := !pos + 8;
  v

let rec encode_resp buf = function
  | Err msg ->
      add_byte buf st_err;
      C.encode_string buf msg
  | Err_wrong_shard epoch ->
      add_byte buf st_err_code;
      add_byte buf ec_wrong_shard;
      encode_i64 buf epoch
  | Err_read_only ->
      add_byte buf st_err_code;
      add_byte buf ec_read_only
  | ok ->
      add_byte buf st_ok;
      (match ok with
      | Value v ->
          add_byte buf tag_value;
          (match v with
          | None -> add_byte buf 0
          | Some x ->
              add_byte buf 1;
              C.encode_int buf x)
      | Applied b ->
          add_byte buf tag_applied;
          add_byte buf (if b then 1 else 0)
      | Scanned items ->
          add_byte buf tag_scanned;
          C.encode_int buf (List.length items);
          List.iter
            (fun (k, v) ->
              C.encode_string buf k;
              C.encode_int buf v)
            items
      | Batched rs ->
          add_byte buf tag_batched;
          C.encode_int buf (List.length rs);
          List.iter (encode_resp buf) rs
      | Stats_payload s ->
          add_byte buf tag_stats;
          C.encode_string buf s
      | Repl_ok n ->
          add_byte buf tag_repl;
          C.encode_int buf n
      | Topology_payload s ->
          add_byte buf tag_topology;
          C.encode_string buf s
      | Scanned_to (items, next) ->
          add_byte buf tag_scanned_to;
          C.encode_int buf (List.length items);
          List.iter
            (fun (k, v) ->
              C.encode_string buf k;
              C.encode_int buf v)
            items;
          (match next with
          | None -> add_byte buf 0
          | Some k ->
              add_byte buf 1;
              C.encode_string buf k)
      | Err _ | Err_wrong_shard _ | Err_read_only -> assert false)

(* BATCH reply prologue for callers that encode sub-replies
   incrementally (the server streams each slot as it evaluates). *)
let encode_batched_header body n =
  add_byte body st_ok;
  add_byte body tag_batched;
  C.encode_int body n

(* Streaming SCAN reply: [scan visit] appends each visited item straight
   into an encode buffer — no intermediate (key, value) list. The item
   count precedes the items on the wire, so the items land in a scratch
   buffer that is appended after the walk; the scratch holds encoded
   bytes, never per-item heap cells. *)
let encode_scanned_into body (scan : (string -> int -> unit) -> int) =
  let items = Buffer.create 256 in
  let count = ref 0 in
  ignore
    (scan (fun k v ->
         incr count;
         C.encode_string items k;
         C.encode_int items v)
      : int);
  add_byte body st_ok;
  add_byte body tag_scanned;
  C.encode_int body !count;
  Buffer.add_buffer body items

(* Streaming variant of the cluster scan reply: same scratch-buffer
   scheme, but the continuation key is decided after the walk, from the
   emitted count and the last key visited. *)
let encode_scanned_to_into body (scan : (string -> int -> unit) -> int)
    (next_of : count:int -> last:string option -> string option) =
  let items = Buffer.create 256 in
  let count = ref 0 in
  let last = ref None in
  ignore
    (scan (fun k v ->
         incr count;
         last := Some k;
         C.encode_string items k;
         C.encode_int items v)
      : int);
  add_byte body st_ok;
  add_byte body tag_scanned_to;
  C.encode_int body !count;
  Buffer.add_buffer body items;
  match next_of ~count:!count ~last:!last with
  | None -> add_byte body 0
  | Some k ->
      add_byte body 1;
      C.encode_string body k

let rec decode_resp_at s ~pos ~depth =
  match decode_byte s ~pos with
  | b when b = st_err -> Err (decode_string s ~pos)
  | b when b = st_ok -> (
      match decode_byte s ~pos with
      | t when t = tag_value -> (
          match decode_byte s ~pos with
          | 0 -> Value None
          | 1 -> Value (Some (decode_int s ~pos))
          | b -> bad "bad GET presence byte %d" b)
      | t when t = tag_applied -> (
          match decode_byte s ~pos with
          | 0 -> Applied false
          | 1 -> Applied true
          | b -> bad "bad PUT/DELETE bool byte %d" b)
      | t when t = tag_scanned ->
          let n = decode_int s ~pos in
          if n < 0 || n > max_scan then bad "bad SCAN reply count %d" n;
          Scanned
            (List.init n (fun _ ->
                 let k = decode_string s ~pos in
                 let v = decode_int s ~pos in
                 (k, v)))
      | t when t = tag_batched ->
          if depth > 0 then bad "nested BATCH reply";
          let n = decode_int s ~pos in
          if n < 0 || n > max_batch then bad "bad BATCH reply count %d" n;
          Batched
            (List.init n (fun _ -> decode_resp_at s ~pos ~depth:(depth + 1)))
      | t when t = tag_stats -> Stats_payload (decode_string s ~pos)
      | t when t = tag_repl -> Repl_ok (decode_int s ~pos)
      | t when t = tag_topology -> Topology_payload (decode_string s ~pos)
      | t when t = tag_scanned_to ->
          let n = decode_int s ~pos in
          if n < 0 || n > max_scan then bad "bad SCAN reply count %d" n;
          let items =
            List.init n (fun _ ->
                let k = decode_string s ~pos in
                let v = decode_int s ~pos in
                (k, v))
          in
          let next =
            match decode_byte s ~pos with
            | 0 -> None
            | 1 -> Some (decode_string s ~pos)
            | b -> bad "bad SCAN continuation byte %d" b
          in
          Scanned_to (items, next)
      | t -> bad "unknown response tag %d" t)
  | b when b = st_err_code -> (
      match decode_byte s ~pos with
      | c when c = ec_wrong_shard -> Err_wrong_shard (decode_i64 s ~pos)
      | c when c = ec_read_only -> Err_read_only
      | c -> bad "unknown error code %d" c)
  | b -> bad "unknown status byte %d" b

let decode_resp s =
  let pos = ref 0 in
  let r = decode_resp_at s ~pos ~depth:0 in
  if !pos <> String.length s then
    bad "%d trailing bytes after response" (String.length s - !pos);
  r

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let add_frame_len buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let add_frame buf payload =
  add_frame_len buf (String.length payload);
  Buffer.add_string buf payload

let add_frame_buf buf body =
  (* frame an already-encoded payload without stringifying it *)
  add_frame_len buf (Buffer.length body);
  Buffer.add_buffer buf body

let frame_req r =
  let body = Buffer.create 64 in
  encode_req body r;
  let out = Buffer.create (Buffer.length body + 4) in
  add_frame out (Buffer.contents body);
  Buffer.contents out

let frame_resp r =
  let body = Buffer.create 64 in
  encode_resp body r;
  let out = Buffer.create (Buffer.length body + 4) in
  add_frame out (Buffer.contents body);
  Buffer.contents out

(** Incremental frame extraction over a connection's accumulated input. *)
module Decoder = struct
  type t = { mutable data : Bytes.t; mutable len : int; mutable off : int }

  let initial_capacity = 4096

  (* shrink the grown buffer back once the connection has drained this
     far — otherwise one large frame pins its doubled buffer for the
     connection's whole lifetime *)
  let shrink_threshold = initial_capacity / 4

  let create () = { data = Bytes.create initial_capacity; len = 0; off = 0 }

  let buffered t = t.len - t.off
  let capacity t = Bytes.length t.data

  (* slide remaining bytes down and make room for [n] more *)
  let reserve t n =
    if t.off > 0 && (t.off = t.len || t.len + n > Bytes.length t.data) then begin
      Bytes.blit t.data t.off t.data 0 (t.len - t.off);
      t.len <- t.len - t.off;
      t.off <- 0
    end;
    if t.len + n > Bytes.length t.data then begin
      let cap = ref (Bytes.length t.data) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let data = Bytes.create !cap in
      Bytes.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let feed t src srclen =
    reserve t srclen;
    Bytes.blit src 0 t.data t.len srclen;
    t.len <- t.len + srclen

  (* [`Frame payload | `Need_more | `Framing msg]. After [`Framing] the
     stream is unrecoverable (no resync marker); callers should close. *)
  let next t =
    if buffered t < 4 then `Need_more
    else
      let b i = Char.code (Bytes.get t.data (t.off + i)) in
      let n = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      if n > max_frame then
        `Framing (Printf.sprintf "frame length %d exceeds cap %d" n max_frame)
      else if buffered t < 4 + n then `Need_more
      else begin
        let payload = Bytes.sub_string t.data (t.off + 4) n in
        t.off <- t.off + 4 + n;
        if
          Bytes.length t.data > initial_capacity
          && buffered t <= shrink_threshold
        then begin
          let data = Bytes.create initial_capacity in
          Bytes.blit t.data t.off data 0 (buffered t);
          t.len <- buffered t;
          t.off <- 0;
          t.data <- data
        end;
        `Frame payload
      end
end
