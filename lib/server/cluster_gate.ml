(** Per-request ownership validation for a cluster member, plus the
    server-side state of an online range migration.

    A node caches nothing about its peers: it holds one authoritative
    fact — its own current partition table — and validates every
    request against it (publish-then-validate, the discipline
    {!Bw_cluster} describes). A router acting on a stale table gets
    {!Wire.Err_wrong_shard} with this node's epoch, refetches, and
    retries; it can never read or write data this node no longer owns.

    Migration correctness hinges on one race: a write that checks
    ownership, then applies while the migration engine is taking its
    final look at the capture log — an acknowledged write the
    destination never sees. The gate closes it with two devices:

    - [mu] serializes writes *covered by the active migration* against
      the engine's seal/flip. A covered write applies and appends to
      the capture WAL as one critical section; the engine seals
      (marks the range read-only) under the same mutex, so after seal
      it holds every acknowledged covered write in tree + capture.
    - [pub] is a published-writer latch for the uncovered fast path.
      A writer grabs the current counter and increments it *before*
      reading the migration state; the engine installs the migration,
      swaps in a fresh counter, and waits only for the *retired* one to
      drain (a store-buffer pairing: one of them must see the other).
      Any writer that could have missed the migration published on the
      retired counter, so once it reads zero every such write has
      completed and is visible to the extraction scan; writers arriving
      after the swap publish on the fresh counter — the engine never
      waits for them, so the drain is bounded by the writes in flight
      at install time, not starved by sustained new load — and they saw
      the migration, so covered ones take the captured path. *)

module Table = Bw_cluster.Table
module Slice = Bw_cluster.Slice

(* The capture log: an in-memory WAL (same codec as the durable one)
   that accumulates writes to the migrating range while the bulk
   extraction runs; the engine drains it with cursor tails and replays
   it at the destination. *)
module Capture = Pagestore.Wal.Make (Pagestore.Codec.String) (Pagestore.Codec.Int)

type mig = {
  mg_lo : int64;
  mg_hi : int64 option;  (** [None] = end of the slice space *)
  mg_dst : int;
  mutable mg_readonly : bool;  (** guarded by [mu]: sealed for the flip *)
  mg_capture : Capture.t;
}

type t = {
  self : int;  (** this node's endpoint index *)
  table : Table.t Atomic.t;
  mig : mig option Atomic.t;
  mu : Mutex.t;
  pub : int Atomic.t Atomic.t;
      (** the *current* published-writer counter; the quiesce swaps in a
          fresh one and drains only the retired counter *)
  obs : Bw_obs.sink;
}

let create ?(obs = Bw_obs.Null) ~self table =
  if self < 0 || self >= Table.n_endpoints table then
    invalid_arg "Cluster_gate.create: self out of the endpoint range";
  let g =
    {
      self;
      table = Atomic.make table;
      mig = Atomic.make None;
      mu = Mutex.create ();
      pub = Atomic.make (Atomic.make 0);
      obs;
    }
  in
  Bw_obs.register_gauge obs Bw_obs.G_cluster_epoch (fun () ->
      Int64.to_int (Table.epoch (Atomic.get g.table)));
  g

let table g = Atomic.get g.table
let self g = g.self

(* Install [t] if it is newer than what we hold; returns whether it
   won. Monotone by epoch, so replayed or crossed TOPOLOGY frames are
   harmless. *)
let rec install g t =
  let cur = Atomic.get g.table in
  if Int64.compare (Table.epoch t) (Table.epoch cur) <= 0 then false
  else if Atomic.compare_and_set g.table cur t then true
  else install g t

let wrong_shard g ~tid tbl =
  Bw_obs.incr g.obs ~tid Bw_obs.C_wrongshard_replies;
  raise (Wire.Wrong_shard (Table.epoch tbl))

(* Reads are served as long as the key is owned — including during a
   migration's read-only seal window, when the data is still here. *)
let check_read g ~tid u =
  let tbl = Atomic.get g.table in
  if Table.owner tbl u <> g.self then wrong_shard g ~tid tbl

(* Validate ownership of a scan's start key and return the owned
   range's upper bound: the scan must clip there (keys past it may be
   stale leftovers of a range migrated away) and name it as the
   continuation point. *)
let scan_range g ~tid u =
  let tbl = Atomic.get g.table in
  let owner, _, hi = Table.range_of tbl u in
  if owner <> g.self then wrong_shard g ~tid tbl;
  hi

(* What a write must append to the capture log if it applies while its
   key range is migrating. *)
type wop = Wop_put of string * int | Wop_remove of string

let covered m u = Slice.in_range u ~lo:m.mg_lo ~hi:m.mg_hi

let capture ~tid m op =
  Capture.commit m.mg_capture ~tid
    [
      (match op with
      | Wop_put (k, v) -> Capture.W_upsert (k, v)
      | Wop_remove k -> Capture.W_remove k);
    ]

(* The covered-write critical section: ownership check, apply, capture
   — atomic against the engine's seal/flip under [mu]. *)
let slow_write g ~tid u op apply =
  Mutex.lock g.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock g.mu)
    (fun () ->
      let tbl = Atomic.get g.table in
      if Table.owner tbl u <> g.self then wrong_shard g ~tid tbl;
      match Atomic.get g.mig with
      | Some m when covered m u ->
          (* sealed for the flip: the data is still here but the capture
             log is final, so the write must wait out the drain — the
             read-only error makes the router back off and retry, where
             a Wrong_shard would send it into immediate same-epoch
             refetch loops that can exhaust its attempts *)
          if m.mg_readonly then raise Index_iface.Read_only;
          let ok = apply () in
          if ok then capture ~tid m op;
          ok
      | _ -> apply ())

(* Gate one write: [apply] runs the backend op and reports whether it
   applied. Raises {!Wire.Wrong_shard} when this node does not own [u],
   or {!Index_iface.Read_only} when the range is sealed mid-flip. *)
let write g ~tid u op apply =
  let c = Atomic.get g.pub in
  Atomic.incr c;
  match Atomic.get g.mig with
  | Some m when covered m u ->
      Atomic.decr c;
      slow_write g ~tid u op apply
  | _ ->
      (* fast path: the publication stays across the apply, so a
         migration that starts now waits for us before extracting *)
      Fun.protect
        ~finally:(fun () -> Atomic.decr c)
        (fun () ->
          let tbl = Atomic.get g.table in
          if Table.owner tbl u <> g.self then wrong_shard g ~tid tbl;
          apply ())

(* Run [f] as a published writer — the batch path wraps its whole
   amortized execution in this so a migration cannot start (and miss
   captures) halfway through a batch frame. *)
let with_pub g f =
  let c = Atomic.get g.pub in
  Atomic.incr c;
  Fun.protect ~finally:(fun () -> Atomic.decr c) f

let migration_active g = Atomic.get g.mig <> None

(* ------------------------------------------------------------------ *)
(* Engine-side hooks (driven by the migration engine in [Bw_router])   *)
(* ------------------------------------------------------------------ *)

(* Admit a migration of [lo, hi) to endpoint [dst]. The interval must
   lie inside a single assignment this node owns (assignments are
   maximal, so this is exactly "we own every key in it"), and only one
   migration may run at a time. *)
let begin_migration g ~lo ~hi ~dst =
  let tbl = Atomic.get g.table in
  if dst < 0 || dst >= Table.n_endpoints tbl then
    Error (Printf.sprintf "destination %d out of the endpoint range" dst)
  else if dst = g.self then Error "destination is the source"
  else if
    match hi with Some h -> Slice.compare h lo <= 0 | None -> false
  then Error "empty migration range"
  else
    let owner, _, rhi = Table.range_of tbl lo in
    if owner <> g.self then Error "source does not own the range start"
    else if
      match (hi, rhi) with
      | _, None -> false (* owned range runs to the end: anything fits *)
      | None, Some _ -> true (* requested range runs past the owned one *)
      | Some h, Some rh -> Slice.compare h rh > 0
    then Error "range crosses an ownership boundary"
    else
      let m =
        {
          mg_lo = lo;
          mg_hi = hi;
          mg_dst = dst;
          mg_readonly = false;
          mg_capture = Capture.in_memory ();
        }
      in
      if Atomic.compare_and_set g.mig None (Some m) then Ok m
      else Error "a migration is already in progress"

(* Wait out fast-path writers that may have missed the just-installed
   migration; see the module comment for the pairing argument. Retiring
   the counter first means we drain only writers already in flight —
   new arrivals publish on the fresh counter (and provably see the
   migration), so sustained write load cannot starve this wait. *)
let quiesce_fast_writers g =
  let retired = Atomic.exchange g.pub (Atomic.make 0) in
  while Atomic.get retired > 0 do
    Domain.cpu_relax ()
  done

(* Pull up to [limit] capture records past [cur] as (key, op) pairs in
   commit order. *)
let drain m ~limit cur =
  let acc = ref [] in
  ignore
    (Capture.tail m.mg_capture ~limit cur (fun payload ->
         List.iter
           (fun op ->
             acc :=
               (match op with
               | Capture.W_insert (k, v)
               | Capture.W_update (k, v)
               | Capture.W_upsert (k, v) ->
                   (k, Some v)
               | Capture.W_remove k -> (k, None))
               :: !acc)
           (Capture.decode_ops payload))
      : int);
  List.rev !acc

(* Seal the migrating range: from here every covered write answers the
   read-only error (retry-after-backoff; ownership has not changed yet)
   and the capture log is final — the drain that follows this call sees
   every acknowledged covered write. *)
let seal g m =
  Mutex.lock g.mu;
  m.mg_readonly <- true;
  Mutex.unlock g.mu

(* Publish the post-migration table locally and retire the migration.
   The source flips *first* (before the destination or anyone else
   learns the new table): from this instant it refuses the moved range,
   so no reader can observe the pre-flip source serving keys the
   destination already owns — the brief window where both sides
   redirect is absorbed by router retries. *)
let flip g m =
  let t' =
    Table.with_range_moved (Atomic.get g.table) ~lo:m.mg_lo ~hi:m.mg_hi
      ~dst:m.mg_dst
  in
  Atomic.set g.table t';
  Atomic.set g.mig None;
  t'

(* Abandon a migration (destination unreachable, …): drop the capture
   and lift the seal; ownership never changed, so refused writes were
   transient redirects, not losses. *)
let abort g (_ : mig) = Atomic.set g.mig None
