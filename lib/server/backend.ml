(** A monomorphic, binary-keyed view of one index instance.

    The wire protocol carries keys as binary-comparable strings
    ({!Bw_util.Key_codec}); a backend closes over a concrete
    {!Harness.Runner.driver} plus its key codec, so the server's event
    loop never needs to be generic over the key type. All workers share
    the one underlying index through its lock-free API — the backend
    record adds no synchronization. *)

type t = {
  name : string;
  get : tid:int -> string -> int option;
  insert : tid:int -> string -> int -> bool;
  update : tid:int -> string -> int -> bool;
  delete : tid:int -> string -> bool;
  scan : tid:int -> string -> n:int -> (string * int) list;
      (** Items from the first key >= the start key, as (binary key,
          value), at most [n]. *)
  start : unit -> unit;
  stop : unit -> unit;
  thread_done : tid:int -> unit;
}

let of_driver ~(decode_key : string -> 'k) ~(encode_key : 'k -> string)
    (d : 'k Harness.Runner.driver) : t =
  let key s =
    (* a syntactically bad key is a protocol error, not a server crash *)
    try decode_key s
    with _ -> raise (Wire.Malformed "undecodable key")
  in
  {
    name = d.Harness.Runner.name;
    get = (fun ~tid k -> d.Harness.Runner.read ~tid (key k));
    insert = (fun ~tid k v -> d.Harness.Runner.insert ~tid (key k) v);
    update = (fun ~tid k v -> d.Harness.Runner.update ~tid (key k) v);
    delete = (fun ~tid k -> d.Harness.Runner.remove ~tid (key k));
    scan =
      (fun ~tid k ~n ->
        let acc = ref [] in
        ignore
          (d.Harness.Runner.scan ~tid (key k) ~n (fun k v ->
               acc := (encode_key k, v) :: !acc));
        List.rev !acc);
    start = d.Harness.Runner.start_aux;
    stop = d.Harness.Runner.stop_aux;
    thread_done = (fun ~tid -> d.Harness.Runner.thread_done ~tid);
  }

let of_int_driver d =
  of_driver ~decode_key:Bw_util.Key_codec.to_int
    ~encode_key:Bw_util.Key_codec.of_int d

let of_str_driver d =
  of_driver ~decode_key:(fun s -> s) ~encode_key:(fun s -> s) d
