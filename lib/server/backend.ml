(** The serving layer's index contract, re-exported from
    {!Index_iface}.

    A backend is simply a [string Index_iface.driver] whose keys are
    binary-comparable encodings ({!Bw_util.Key_codec}) — the same record
    the harness, the stress checker and the shard router consume, so a
    single tree, an instrumented driver or a range-partitioned forest
    ({!Bw_shard.route}) all serve identically. All workers share the one
    underlying index through its lock-free API — the backend record adds
    no synchronization.

    A syntactically invalid wire key surfaces as
    {!Index_iface.Bad_key}; the server answers it with an ERR reply
    rather than crashing the worker. *)

type t = Index_iface.backend

let of_driver = Index_iface.backend_of_driver
let of_int_driver = Index_iface.backend_of_int_driver
let of_str_driver = Index_iface.backend_of_str_driver
