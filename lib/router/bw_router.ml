(** Client-side cluster router and the online range-migration engine.

    {1 Routing}

    A router holds one cached {!Bw_cluster.Table} and one lazy
    connection per distinct endpoint. Point ops go straight to the
    cached owner — O(1), no coordination — and a cross-shard scan walks
    owners in key order, resuming each segment at the exact continuation
    key the previous owner named ({!Bw_client.scan_to}), so the
    concatenation visits every key exactly once even while ranges move.

    The cache needs no freshness protocol because the server validates
    every request against its own table (publish-then-validate): acting
    on a stale table costs a {!Bw_client.Wrong_shard} redirect, never a
    wrong answer. On a redirect the router refetches the table from the
    node that refused — it provably holds a newer epoch — bumps
    {!Bw_obs.C_router_redirects}, and retries. During the brief
    read-only seal at the end of a migration, writes get
    {!Bw_client.Read_only}; the router backs off a moment and retries,
    which resolves to either success (seal lifted by an abort) or a
    redirect to the new owner (flip published).

    Retries are bounded: a partition that never heals raises
    {!Unroutable} rather than spinning.

    {1 Migration}

    {!Migration} is the engine the source node runs when it receives a
    MIGRATE frame. It lives here, not in the server library, because it
    is itself a client of the destination. See {!Migration.start} for
    the step-by-step protocol and its correctness argument. *)

module Wire = Bw_server.Wire
module Table = Bw_cluster.Table
module Slice = Bw_cluster.Slice
module Gate = Bw_server.Cluster_gate

exception Unroutable of string
(** Retries exhausted: every candidate owner kept refusing or kept
    being unreachable. Carries the last failure. *)

type t = {
  mutable table : Table.t;
  conns : (string * int, Bw_client.t) Hashtbl.t;
  obs : Bw_obs.sink;
  tid : int;
  replica_reads : bool;
      (* route GETs/SCANs to an endpoint's warm standby when it has one
         — bounded-staleness reads, same contract as
         {!Bw_client.Fanout} *)
  mutable rr : int;  (* alternates primary/replica reads *)
  mutable closed : bool;
}

let table t = t.table
let epoch t = Table.epoch t.table

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let conn_to t host port =
  let key = (host, port) in
  match Hashtbl.find_opt t.conns key with
  | Some c -> c
  | None ->
      let c = Bw_client.connect ~host ~port () in
      Hashtbl.replace t.conns key c;
      c

let drop_conn_to t host port =
  match Hashtbl.find_opt t.conns (host, port) with
  | None -> ()
  | Some c ->
      Hashtbl.remove t.conns (host, port);
      Bw_client.close c

let conn t i =
  let ep = Table.endpoint t.table i in
  conn_to t ep.Table.ep_host ep.Table.ep_port

let drop_conn t i =
  let ep = Table.endpoint t.table i in
  drop_conn_to t ep.Table.ep_host ep.Table.ep_port

(* A read connection for endpoint [i]: every other read goes to its
   standby when one is published and reachable. A standby mirrors its
   primary asynchronously and carries no ownership gate, so replica
   reads are eventually consistent — opt-in via [replica_reads]. *)
let read_conn t i =
  let ep = Table.endpoint t.table i in
  if not t.replica_reads then conn t i
  else
    match ep.Table.ep_replica with
    | None -> conn t i
    | Some (rh, rp) ->
        t.rr <- t.rr + 1;
        if t.rr land 1 = 0 then conn t i
        else ( try conn_to t rh rp with Unix.Unix_error _ -> conn t i)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter (fun _ c -> Bw_client.close c) t.conns;
    Hashtbl.reset t.conns
  end

(* ------------------------------------------------------------------ *)
(* Table refresh                                                       *)
(* ------------------------------------------------------------------ *)

let install t tbl =
  if Int64.compare (Table.epoch tbl) (Table.epoch t.table) > 0 then
    t.table <- tbl

(* Refetch the table from endpoint [i] (after a redirect: the refusing
   node holds the epoch it quoted, or newer). *)
let refresh_from t i =
  match Table.decode (Bw_client.topology (conn t i)) with
  | tbl -> install t tbl
  | exception Failure m ->
      raise (Bw_client.Protocol_error ("bad TOPOLOGY payload: " ^ m))

(* Ask every endpoint we can still reach — the recovery path when a
   node vanished and someone else may know the post-failover table. *)
let refresh_any t =
  let n = Table.n_endpoints t.table in
  let got = ref false in
  for i = 0 to n - 1 do
    if not !got then
      match refresh_from t i with
      | () -> got := true
      | exception
          ( Unix.Unix_error _ | Bw_client.Server_closed
          | Bw_client.Protocol_error _ ) ->
          drop_conn t i
  done;
  !got

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let max_attempts = 32

let connect ?(obs = Bw_obs.Null) ?(tid = 0) ?(replica_reads = false) ~seeds ()
    =
  let rec boot last = function
    | [] ->
        raise
          (Unroutable
             (Printf.sprintf "no seed answered TOPOLOGY (last: %s)" last))
    | (host, port) :: rest -> (
        match
          let c = Bw_client.connect ~host ~port () in
          Fun.protect
            ~finally:(fun () -> Bw_client.close c)
            (fun () -> Bw_client.topology c)
        with
        | s -> (
            match Table.decode s with
            | tbl -> tbl
            | exception Failure m -> boot ("bad table from seed: " ^ m) rest)
        | exception Unix.Unix_error (e, _, _) ->
            boot (Unix.error_message e) rest
        | exception Bw_client.Server_closed -> boot "connection closed" rest
        | exception Bw_client.Protocol_error m -> boot m rest)
  in
  if seeds = [] then invalid_arg "Bw_router.connect: no seeds";
  let table = boot "" seeds in
  {
    table;
    conns = Hashtbl.create 8;
    obs;
    tid;
    replica_reads;
    rr = 0;
    closed = false;
  }

(* A router over an explicit table — in-process tests build clusters
   without a seed fetch. *)
let of_table ?(obs = Bw_obs.Null) ?(tid = 0) ?(replica_reads = false) table =
  {
    table;
    conns = Hashtbl.create 8;
    obs;
    tid;
    replica_reads;
    rr = 0;
    closed = false;
  }

(* ------------------------------------------------------------------ *)
(* The retry driver                                                    *)
(* ------------------------------------------------------------------ *)

(* Route one operation to the owner of slice [u], absorbing the three
   transient refusals:
   - [Wrong_shard]: stale cache — refetch from the refuser, retry;
   - [Read_only]: mid-flip seal — brief backoff, retry (the flip takes
     one capture-drain, microseconds to milliseconds);
   - connection loss: drop the cached conn, ask the rest of the fleet
     for a newer table, retry.
   [read] picks the standby-eligible connection for reads. *)
let with_owner ?(read = false) t u f =
  let rec go attempt last =
    if attempt >= max_attempts then
      raise (Unroutable ("retries exhausted: " ^ last));
    let i = Table.owner t.table u in
    match f (if read then read_conn t i else conn t i) with
    | v -> v
    | exception Bw_client.Wrong_shard _ ->
        Bw_obs.incr t.obs ~tid:t.tid Bw_obs.C_router_redirects;
        (match refresh_from t i with
        | () -> ()
        | exception
            ( Unix.Unix_error _ | Bw_client.Server_closed
            | Bw_client.Protocol_error _ ) ->
            drop_conn t i;
            ignore (refresh_any t : bool));
        go (attempt + 1) "wrong shard"
    | exception Bw_client.Read_only ->
        Unix.sleepf (0.0005 *. float_of_int (attempt + 1));
        go (attempt + 1) "range sealed read-only"
    | exception Unix.Unix_error (e, _, _) ->
        drop_conn t i;
        if not (refresh_any t) then Unix.sleepf 0.01;
        go (attempt + 1) (Unix.error_message e)
    | exception Bw_client.Server_closed ->
        drop_conn t i;
        if not (refresh_any t) then Unix.sleepf 0.01;
        go (attempt + 1) "connection closed"
  in
  go 0 ""

(* ------------------------------------------------------------------ *)
(* Data plane                                                          *)
(* ------------------------------------------------------------------ *)

let get t key =
  with_owner ~read:true t (Slice.of_binary key) (fun c -> Bw_client.get c key)

let put t ?mode key value =
  with_owner t (Slice.of_binary key) (fun c -> Bw_client.put c ?mode key value)

let delete t key =
  with_owner t (Slice.of_binary key) (fun c -> Bw_client.delete c key)

(* Cross-shard scan: each segment asks the cursor's owner, which clips
   to its owned range and names the exact resume key. Segments cover
   adjacent key intervals [cursor, next), each with the owner's
   exactly-once visit guarantee, so the concatenation is exactly-once
   — including across a concurrent migration, where a moved segment is
   simply re-requested from its new owner starting at the same
   cursor. *)
let scan t key ~n =
  if n <= 0 then []
  else begin
    let acc = ref [] in
    let got = ref 0 in
    let cursor = ref (Some key) in
    let continue = ref true in
    while !continue do
      match !cursor with
      | Some k when !got < n ->
          let items, next =
            with_owner ~read:true t (Slice.of_binary k) (fun c ->
                Bw_client.scan_to c k ~n:(n - !got))
          in
          List.iter
            (fun it ->
              acc := it :: !acc;
              incr got)
            items;
          cursor := next
      | _ -> continue := false
    done;
    List.rev !acc
  end

(* Point-op batch, partitioned by owner: one BATCH frame per endpoint
   holding that endpoint's slots, re-dispatched per slot on redirects.
   Slot order in the result matches [reqs]; only Get/Put/Delete may
   appear (a cross-shard frame cannot carry scans or admin ops without
   breaking their semantics). *)
let batch t reqs =
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let key_of = function
    | Wire.Get k | Wire.Put (_, k, _) | Wire.Delete k -> k
    | Wire.Scan _ | Wire.Batch _ | Wire.Stats | Wire.Repl _ | Wire.Topology _
    | Wire.Migrate _ | Wire.Ingest _ ->
        invalid_arg "Bw_router.batch: point requests only"
  in
  let keys = Array.map key_of arr in
  let out = Array.make n (Wire.Err "unresolved") in
  let unresolved = ref (List.init n Fun.id) in
  let attempt = ref 0 in
  while !unresolved <> [] do
    if !attempt >= max_attempts then
      raise (Unroutable "batch retries exhausted");
    incr attempt;
    (* group the open slots by cached owner, preserving order *)
    let groups = Hashtbl.create 4 in
    List.iter
      (fun i ->
        let o = Table.owner_binary t.table keys.(i) in
        Hashtbl.replace groups o
          (i :: (try Hashtbl.find groups o with Not_found -> [])))
      !unresolved;
    let still = ref [] in
    let redirected_by = ref None in
    let sealed = ref false in
    Hashtbl.iter
      (fun owner idxs_rev ->
        let idxs = List.rev idxs_rev in
        match
          Bw_client.batch (conn t owner) (List.map (fun i -> arr.(i)) idxs)
        with
        | rs when List.length rs = List.length idxs ->
            List.iter2
              (fun i r ->
                match r with
                | Wire.Err_wrong_shard _ ->
                    redirected_by := Some owner;
                    still := i :: !still
                | Wire.Err_read_only ->
                    sealed := true;
                    still := i :: !still
                | r -> out.(i) <- r)
              idxs rs
        | _ ->
            raise
              (Bw_client.Protocol_error "BATCH reply arity mismatch")
        | exception (Unix.Unix_error _ | Bw_client.Server_closed) ->
            drop_conn t owner;
            ignore (refresh_any t : bool);
            still := List.rev_append idxs_rev !still)
      groups;
    (match !redirected_by with
    | Some owner ->
        Bw_obs.incr t.obs ~tid:t.tid Bw_obs.C_router_redirects;
        (try refresh_from t owner
         with
         | Unix.Unix_error _ | Bw_client.Server_closed
         | Bw_client.Protocol_error _
         ->
           ignore (refresh_any t : bool))
    | None -> ());
    if !sealed then Unix.sleepf (0.0005 *. float_of_int !attempt);
    unresolved := List.sort compare !still
  done;
  Array.to_list out

(* Integer-key conveniences, mirroring {!Bw_client.Int_key}. *)
module Int_key = struct
  let enc = Bw_util.Key_codec.of_int

  let get t k = get t (enc k)
  let put t ?mode k v = put t ?mode (enc k) v
  let delete t k = delete t (enc k)

  let scan t k ~n =
    List.map
      (fun (bk, v) -> (Bw_util.Key_codec.to_int bk, v))
      (scan t (enc k) ~n)
end

(* ------------------------------------------------------------------ *)
(* Fleet stats                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-endpoint STATS snapshots as raw JSON strings; unreachable nodes
   are skipped. *)
let node_stats t =
  let n = Table.n_endpoints t.table in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match Bw_client.stats (conn t i) with
    | s -> acc := (i, s) :: !acc
    | exception
        ( Unix.Unix_error _ | Bw_client.Server_closed
        | Bw_client.Protocol_error _ ) ->
        drop_conn t i
  done;
  !acc

module J = Bw_obs.Json

(* Merge several node snapshots into one fleet snapshot at the JSON
   level, preserving the single-node schema (json_check-valid):
   counters, gauges and event-kind totals sum; histograms merge by name
   with [count]/[sum] summed, [min]/[max] extremal, and percentiles
   elementwise max (a conservative upper bound — exact merge would need
   the raw buckets, which STATS does not ship; max keeps the monotone
   p50 <= p90 <= p99 invariant); [elapsed_s] is the oldest node's;
   event logs concatenate. Each node's non-empty histograms and
   non-zero counters/gauges are re-appended under a ["node<i>_"] prefix
   — same convention as {!Bw_obs.sharded_snapshot_json}, so the merged
   totals stay unprefixed and exact where summing is exact. *)
let merge_stats_json labeled =
  let parsed =
    List.filter_map
      (fun (label, s) ->
        match J.parse s with Ok v -> Some (label, v) | Error _ -> None)
      labeled
  in
  if parsed = [] then J.Obj []
  else begin
    let num = function J.Int i -> float_of_int i | J.Float f -> f | _ -> 0.0 in
    let elapsed =
      List.fold_left
        (fun acc (_, v) ->
          match J.member "elapsed_s" v with
          | Some e -> Float.max acc (num e)
          | None -> acc)
        0.0 parsed
    in
    (* histograms, merged by name in first-seen order *)
    let horder = ref [] in
    let htbl = Hashtbl.create 16 in
    let int_field k h = match J.member k h with Some (J.Int i) -> i | _ -> 0 in
    let str_field k h =
      match J.member k h with Some (J.Str s) -> s | _ -> ""
    in
    List.iter
      (fun (_, v) ->
        match J.member "histograms" v with
        | Some (J.Arr hs) ->
            List.iter
              (fun h ->
                let name = str_field "name" h in
                let cur =
                  match Hashtbl.find_opt htbl name with
                  | Some c -> c
                  | None ->
                      horder := name :: !horder;
                      let fresh =
                        ( str_field "unit" h,
                          ref 0,
                          ref 0,
                          ref max_int,
                          ref min_int,
                          Array.make 3 0 )
                      in
                      Hashtbl.add htbl name fresh;
                      fresh
                in
                let _, count, sum, mn, mx, ps = cur in
                count := !count + int_field "count" h;
                sum := !sum + int_field "sum" h;
                mn := min !mn (int_field "min" h);
                mx := max !mx (int_field "max" h);
                List.iteri
                  (fun j k -> ps.(j) <- max ps.(j) (int_field k h))
                  [ "p50"; "p90"; "p99" ])
              hs
        | _ -> ())
      parsed;
    let histograms =
      List.rev_map
        (fun name ->
          let unit_, count, sum, mn, mx, ps = Hashtbl.find htbl name in
          J.Obj
            [
              ("name", J.Str name);
              ("unit", J.Str unit_);
              ("count", J.Int !count);
              ("sum", J.Int !sum);
              ("min", J.Int !mn);
              ("max", J.Int !mx);
              ("p50", J.Int ps.(0));
              ("p90", J.Int ps.(1));
              ("p99", J.Int ps.(2));
            ])
        !horder
    in
    (* flat int objects (counters, gauges, event kinds): sum by key *)
    let sum_obj member_path =
      let order = ref [] in
      let tbl = Hashtbl.create 32 in
      List.iter
        (fun (_, v) ->
          match member_path v with
          | Some (J.Obj kvs) ->
              List.iter
                (fun (k, n) ->
                  match n with
                  | J.Int i ->
                      (match Hashtbl.find_opt tbl k with
                      | Some r -> r := !r + i
                      | None ->
                          order := k :: !order;
                          Hashtbl.add tbl k (ref i))
                  | _ -> ())
                kvs
          | _ -> ())
        parsed;
      List.rev_map (fun k -> (k, J.Int !(Hashtbl.find tbl k))) !order
    in
    let counters = sum_obj (J.member "counters") in
    let gauges = sum_obj (J.member "gauges") in
    let dropped =
      List.fold_left
        (fun acc (_, v) ->
          match Option.bind (J.member "events" v) (J.member "dropped") with
          | Some (J.Int i) -> acc + i
          | _ -> acc)
        0 parsed
    in
    let kinds =
      sum_obj (fun v -> Option.bind (J.member "events" v) (J.member "kinds"))
    in
    let log =
      List.concat_map
        (fun (_, v) ->
          match Option.bind (J.member "events" v) (J.member "log") with
          | Some (J.Arr l) -> l
          | _ -> [])
        parsed
    in
    (* per-node breakdown, sharded-snapshot style *)
    let prefixed_histos =
      List.concat_map
        (fun (label, v) ->
          match J.member "histograms" v with
          | Some (J.Arr hs) ->
              List.filter_map
                (fun h ->
                  if int_field "count" h <= 0 then None
                  else
                    match h with
                    | J.Obj kvs ->
                        Some
                          (J.Obj
                             (List.map
                                (fun (k, x) ->
                                  if k = "name" then
                                    ( k,
                                      J.Str
                                        (label ^ "_" ^ str_field "name" h) )
                                  else (k, x))
                                kvs))
                    | _ -> None)
                hs
          | _ -> [])
        parsed
    in
    let prefixed_flat path =
      List.concat_map
        (fun (label, v) ->
          match path v with
          | Some (J.Obj kvs) ->
              List.filter_map
                (fun (k, n) ->
                  match n with
                  | J.Int i when i <> 0 -> Some (label ^ "_" ^ k, J.Int i)
                  | _ -> None)
                kvs
          | _ -> [])
        parsed
    in
    J.Obj
      [
        ("elapsed_s", J.Float elapsed);
        ("histograms", J.Arr (histograms @ prefixed_histos));
        ("counters", J.Obj (counters @ prefixed_flat (J.member "counters")));
        ("gauges", J.Obj (gauges @ prefixed_flat (J.member "gauges")));
        ( "events",
          J.Obj
            [
              ("dropped", J.Int dropped);
              ("kinds", J.Obj kinds);
              ("log", J.Arr log);
            ] );
      ]
  end

(* The whole fleet's merged snapshot as a JSON string. [extra] folds in
   further snapshots under their own labels (e.g. the router process's
   local registry, which holds [router_redirects]). *)
let fleet_stats_json ?(extra = []) t =
  let nodes =
    List.map (fun (i, s) -> (Printf.sprintf "node%d" i, s)) (node_stats t)
  in
  J.to_string (merge_stats_json (nodes @ extra))

(* ------------------------------------------------------------------ *)
(* The migration engine                                                *)
(* ------------------------------------------------------------------ *)

module Migration = struct
  (* The source-side engine for MIGRATE lo hi dst:

     1. admit via {!Gate.begin_migration} — from here every write
        covered by the range also lands in the capture log;
     2. wait out fast-path writers that may have missed the admission
        ({!Gate.quiesce_fast_writers});
     3. bulk-extract the range with local scans, shipping batches to
        the destination as INGEST frames (the ordinary batch-apply
        path, so a durable destination group-commits them);
     4. drain the capture log to the destination in rounds until a
        round comes back small;
     5. seal the range ({!Gate.seal}: covered writes now refuse), take
        the final drain — the capture log is complete and final, so
        the destination now holds every acknowledged write;
     6. flip: install the epoch+1 table locally (the source starts
        refusing the whole range), then offer it to the destination
        and best-effort to the rest of the fleet.

     Replay safety: extraction and capture replay both go through
     upsert/remove, and per-key capture order equals apply order (both
     happen under the gate's mutex), so replaying a prefix twice or
     interleaving extraction with captured writes converges to the
     source's final state. The destination applies INGEST frames in
     connection FIFO order.

     An abort (destination unreachable mid-copy) leaves ownership
     unchanged — refused writes were transient redirects, not losses —
     but may leave orphan rows at the destination; see DESIGN.md. *)

  let eprint fmt = Printf.ksprintf (fun m -> prerr_endline ("migrate: " ^ m)) fmt

  let exec ~obs ~tid ~batch ~(gate : Gate.t) ~scan (m : Gate.mig) =
    let tbl = Gate.table gate in
    let dst_ep = Table.endpoint tbl m.Gate.mg_dst in
    match
      Bw_client.connect ~host:dst_ep.Table.ep_host ~port:dst_ep.Table.ep_port
        ()
    with
    | exception e ->
        Gate.abort gate m;
        Error
          (Printf.sprintf "cannot reach destination %s:%d (%s)"
             dst_ep.Table.ep_host dst_ep.Table.ep_port (Printexc.to_string e))
    | c -> (
        let finish r =
          Bw_client.close c;
          r
        in
        try
          Gate.quiesce_fast_writers gate;
          (* bulk extraction: local scans from the range floor, clipped
             at the range end, shipped as upserts *)
          let lo_u = m.Gate.mg_lo and hi_u = m.Gate.mg_hi in
          let in_range k = Slice.in_range (Slice.of_binary k) ~lo:lo_u ~hi:hi_u in
          let cursor = ref (Slice.floor_binary lo_u) in
          let more = ref true in
          while !more do
            let items = scan !cursor ~n:batch in
            let kept = List.filter (fun (k, _) -> in_range k) items in
            if kept <> [] then begin
              if not (Bw_client.ingest c (List.map (fun (k, v) -> (k, Some v)) kept))
              then failwith "destination refused INGEST";
              Bw_obs.add obs ~tid Bw_obs.C_mig_items_copied (List.length kept)
            end;
            if List.length kept < List.length items || List.length items < batch
            then more := false
            else
              match List.rev kept with
              | (last, _) :: _ -> cursor := last ^ "\000"
              | [] -> more := false
          done;
          (* drain the capture log until a round comes back small *)
          let cur = Pagestore.Wal.fresh_cursor () in
          let replay ops =
            (* a drain round is unbounded (every write captured since
               the last round) — ship it in wire-cap-sized chunks *)
            let rec ship = function
              | [] -> ()
              | ops ->
                  let chunk, rest =
                    let rec split i acc = function
                      | rest when i = batch -> (List.rev acc, rest)
                      | [] -> (List.rev acc, [])
                      | x :: tl -> split (i + 1) (x :: acc) tl
                    in
                    split 0 [] ops
                  in
                  if not (Bw_client.ingest c chunk) then
                    failwith "destination refused capture replay";
                  Bw_obs.add obs ~tid Bw_obs.C_mig_ops_replayed
                    (List.length chunk);
                  ship rest
            in
            ship ops;
            List.length ops
          in
          let rounds = ref 0 in
          while replay (Gate.drain m ~limit:max_int cur) > 64 && !rounds < 50 do
            incr rounds
          done;
          (* seal, final drain, flip *)
          Gate.seal gate m;
          ignore (replay (Gate.drain m ~limit:max_int cur) : int);
          let t' = Gate.flip gate m in
          Bw_obs.incr obs ~tid Bw_obs.C_migrations;
          (* teach the destination first — it must accept its new range
             before routers land there — then the bystanders *)
          let enc = Table.encode t' in
          (try ignore (Bw_client.offer_topology c enc : bool)
           with _ -> ());
          for i = 0 to Table.n_endpoints t' - 1 do
            if i <> Gate.self gate && i <> m.Gate.mg_dst then begin
              let ep = Table.endpoint t' i in
              try
                let pc =
                  Bw_client.connect ~host:ep.Table.ep_host
                    ~port:ep.Table.ep_port ()
                in
                Fun.protect
                  ~finally:(fun () -> Bw_client.close pc)
                  (fun () -> ignore (Bw_client.offer_topology pc enc : bool))
              with _ -> ()
            end
          done;
          finish (Ok ())
        with e ->
          Gate.abort gate m;
          finish (Error (Printexc.to_string e)))

  (* Admit and run a migration synchronously; [scan k ~n] must return
     up to [n] live (key, value) pairs at or past [k] from the local
     index, in key order. *)
  let run ?(obs = Bw_obs.Null) ?(tid = 0) ?(batch = 512) ~gate ~scan ~lo ~hi
      ~dst () =
    let lo_u = Slice.of_binary lo in
    let hi_u = Option.map Slice.of_binary hi in
    match Gate.begin_migration gate ~lo:lo_u ~hi:hi_u ~dst with
    | Error e -> Error e
    | Ok m -> exec ~obs ~tid ~batch ~gate ~scan m

  (* Admit synchronously (so the MIGRATE frame's reply reports
     validation errors), then copy/flip in a background domain —
     the admin's connection is not held for the whole copy. Progress
     is observable via the obs counters and the TOPOLOGY epoch. *)
  let start ?(obs = Bw_obs.Null) ?(tid = 0) ?(batch = 512) ~gate ~scan ~lo ~hi
      ~dst () =
    let lo_u = Slice.of_binary lo in
    let hi_u = Option.map Slice.of_binary hi in
    match Gate.begin_migration gate ~lo:lo_u ~hi:hi_u ~dst with
    | Error e -> Error e
    | Ok m ->
        Ok
          (Domain.spawn (fun () ->
               match exec ~obs ~tid ~batch ~gate ~scan m with
               | Ok () -> ()
               | Error e -> eprint "%s" e))
end
