(** Packed leaf pages: the one leaf-materialization representation.

    A page is a sorted immutable run of (key, value) items. Alongside the
    decoded key/value slots it (optionally) carries a *packed* search
    structure: every key's binary-comparable encoding ({!KEY.to_binary},
    the same slices {!Bw_util.Key_codec} gives the trie indexes) laid out
    contiguously in one byte arena. The arena is the serialization format
    (checkpoints blit it) and supports a decode-free branchless lower
    bound ({!lower_bound} [~arena:true]); the hot-path default searches
    the decoded cache, which measures faster on skewed reads. The arena
    ends in a small *gap* region so a consolidation
    can often reuse its predecessor's arena — surviving keys keep their
    byte slices, only the delta chain's new keys are appended into the gap
    (claimed by an atomic bump so racing consolidators of the same logical
    node never overlap), and the page is published by the mapping table's
    CAS as usual.

    Values stay ordinary OCaml slots: the tree's {!VALUE} contract has no
    serialization, and the paper's workloads use values as opaque tuple
    pointers anyway. The packed region is exactly the key side — which is
    also what the checkpoint wants on disk, so {!encode} emits it by blit,
    with no per-key re-encoding.

    Pages are built with {!Bw_util.Arr}'s immediate-seeded constructors:
    merge-absorbed leaves exceed 256 slots, where a young-seeded stdlib
    array constructor would force a minor collection per page build. *)

module Counters = Bw_util.Counters
module Arr = Bw_util.Arr
module Growable = Bw_util.Growable
module Key_codec = Bw_util.Key_codec

module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_binary : t -> string
  val of_binary : string -> t
end

module type VALUE = sig
  type t

  val equal : t -> t -> bool
end

(** The read/serialize surface re-exported as [Bwtree.S.Page]: everything
    a consumer outside the tree core (checkpointing, inspection, tests)
    needs. Construction and merging stay internal to the core. *)
module type S = sig
  type key
  type value

  type t
  (** An immutable sorted run of items. Cheap to share: iterators and
      checkpoints hand out the tree's own pages without copying. *)

  val length : t -> int

  val is_packed : t -> bool
  (** Whether the page carries the packed binary-key search structure
      (config [packed_leaves]; decoded pages are always packed). *)

  val key : t -> int -> key
  val value : t -> int -> value
  val get : t -> int -> key * value

  val lower_bound : ?tid:int -> ?arena:bool -> t -> key -> int
  (** First index whose key is [>=] the argument. [~arena:true] runs
      the branchless word-parallel walk over the packed byte arena on
      variable-length packed pages (decode-free: it touches only what
      {!encode} serializes); the default searches the decoded key cache,
      which measures faster on skewed reads. Both arms agree. *)

  val iter_from : t -> int -> (key -> value -> unit) -> unit
  (** [iter_from t pos f] visits items [pos..length-1] in key order. *)

  val slice : t -> (key * value) array
  (** The items as a fresh array (the one leaf-materialization path). *)

  val key_bytes : t -> string
  (** The binary-comparable key region, slices in index order. Packed
      pages blit it; boxed pages encode on demand. *)

  val search_cost : t -> int
  (** Comparisons one {!lower_bound} over the whole page performs —
      deterministic for the branchless packed search ([floor(log2 n)+1],
      the bound the [leaf_probe_cmps] counter charges). *)

  val encode : Buffer.t -> (Buffer.t -> value -> unit) -> t -> unit
  (** Serialize: item count, key-length table, the key region (packed
      pages: verbatim blit), then each value through the caller's
      encoder. [decode] of the result re-[encode]s byte-identically. *)

  val decode : string -> pos:int ref -> value:(unit -> value) -> t
  (** Inverse of {!encode}; [value] is called once per item, in index
      order, to read each value (advancing the caller's cursor). The
      result is packed, with a zero-byte gap. Raises [Failure] on a
      malformed payload. *)
end

(** Internal construction/merge surface used by the tree core. *)
module type FULL = sig
  include S

  val empty : t

  val build : ?packed:bool -> (key * value) array -> t
  (** From a key-sorted item array. [packed] (default [true]) selects
      whether to build the binary-key search structure; [false] gives a
      boxed page (decoded keys only) — the ablation baseline and the
      cheap choice for transient snapshots. *)

  val build_sub : ?packed:bool -> (key * value) array -> pos:int -> len:int -> t

  val lower_bound_in :
    ?tid:int -> ?arena:bool -> t -> key -> lo:int -> hi:int -> int
  (** {!lower_bound} restricted to [\[lo, hi)] — the §4.4 shortcut range. *)

  val with_inserted : t -> int -> key -> value -> t
  (** Copy-on-write single insert at a given position (the §6.3
      in-place-update ablation). *)

  type delta =
    | Ins of key * value
    | Del of key * value
    | Upd of key * value * value  (* key, old value, new value *)

  type merged = { m_page : t; m_gap_reused : bool }

  val merge_with_deltas :
    ?tid:int -> ?packed:bool -> ?reuse:bool -> t -> delta list -> merged
  (** Apply a data-delta chain (newest first) to a base page with the
      multiset pending-delete semantics of §3.1 and a single two-way
      merge — no full sort; only the chain's items get sorted
      (chain-bounded, insertion sort). [packed] defaults to the base's
      packedness. With [reuse] (default [true]) a packed result tries to
      share the base's arena, claiming gap space only for keys the base
      does not already hold; [m_gap_reused] reports success. [~reuse:
      false] builds a fresh arena (still blitting surviving slices, no
      re-encode) — for side-effect-free snapshots like checkpoints. *)

  val search_cost_n : int -> int
  (** {!search_cost} for an [n]-item range. *)

  val gap_bytes : t -> int
  (** Unclaimed arena bytes remaining (0 for boxed pages). *)

  val keys : t -> key array
  (** The decoded key cache, exactly [length t] slots. Read-only view
      for the probe hot path, where a hoisted array beats per-slot
      {!key} calls (non-inlined across the functor boundary). *)

  val values : t -> value array
  (** The value array, exactly [length t] slots; read-only. *)
end

module Make (K : KEY) (V : VALUE) :
  FULL with type key = K.t and type value = V.t = struct
  type key = K.t
  type value = V.t

  (* The shared key-byte arena. [cursor] is an atomic bump allocator over
     the tail gap: sibling generations of one logical page share an
     arena, and racing consolidators claim disjoint ranges (the loser's
     bytes are wasted — its mapping-table CAS fails). Once the cursor
     overflows the arena it stays overflowed, so later claims keep
     failing and fall back to fresh arenas. *)
  type arena = { bb : Bytes.t; cursor : int Atomic.t }

  let empty_arena = { bb = Bytes.empty; cursor = Atomic.make 0 }

  type t = {
    n : int;
    kcache : key array;  (* decoded keys, length n *)
    vals : value array;  (* length n *)
    pk : bool;  (* packed search structure present *)
    arena : arena;  (* shared across generations when [pk] *)
    kpos : int array;  (* byte offset of key i's slice, when [pk] *)
    klen : int array;  (* slice length of key i, when [pk] *)
    fixed8 : bool;  (* every slice is exactly 8 bytes (int keys) *)
  }

  let empty =
    {
      n = 0;
      kcache = [||];
      vals = [||];
      pk = false;
      arena = empty_arena;
      kpos = [||];
      klen = [||];
      fixed8 = false;
    }

  let length t = t.n
  let is_packed t = t.pk
  let key t i = t.kcache.(i)
  let value t i = t.vals.(i)
  let get t i = (t.kcache.(i), t.vals.(i))
  let keys t = t.kcache
  let values t = t.vals

  let cnt_n tid ev n =
    if !Counters.enabled then Counters.add Counters.global ~tid ev n

  let search_cost_n n =
    if n <= 0 then 0
    else begin
      let c = ref 0 and len = ref n in
      while !len > 0 do
        incr c;
        len := !len lsr 1
      done;
      !c
    end

  let search_cost t = search_cost_n t.n

  (* ---------------------------------------------------------------- *)
  (* Word-parallel comparison over the arena                           *)
  (* ---------------------------------------------------------------- *)

  (* j-th big-endian 56-bit chunk (7 bytes, zero-padded low past the
     slice end) of the slice at [pos, pos+len) in [bb], as a native int.
     56 bits per step keep the chunk unboxed — Int64 loads allocate on
     every comparison step without flambda, which dominates the probe.
     Never reads beyond the slice: the arena is shared, so the bytes
     after it belong to other keys. *)
  let chunk56 bb pos len j =
    let off = j * 7 in
    let stop = if len - off >= 7 then 7 else max 0 (len - off) in
    let v = ref 0 in
    for b = 0 to stop - 1 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get bb (pos + off + b))
    done;
    !v lsl ((7 - stop) lsl 3)

  (* Same chunk of the encoded target key. *)
  let schunk56 s j =
    let off = j * 7 in
    let len = String.length s in
    let stop = if len - off >= 7 then 7 else max 0 (len - off) in
    let v = ref 0 in
    for b = 0 to stop - 1 do
      v := (!v lsl 8) lor Char.code (String.unsafe_get s (off + b))
    done;
    !v lsl ((7 - stop) lsl 3)

  (* Compare the slice at index [i] against the encoded target [tb]:
     comparison of zero-padded 56-bit chunks. All chunks equal means one
     slice zero-extends the other, so the shorter sorts first — exactly
     lexicographic order on the raw bytes. *)
  let cmp_slot t i tb =
    let pos = Array.unsafe_get t.kpos i and len = Array.unsafe_get t.klen i in
    let tlen = String.length tb in
    let chunks = (max len tlen + 6) / 7 in
    let rec go j =
      if j >= chunks then Int.compare len tlen
      else
        let c = Int.compare (chunk56 t.arena.bb pos len j) (schunk56 tb j) in
        if c <> 0 then c else go (j + 1)
    in
    go 0

  (* ---------------------------------------------------------------- *)
  (* Search                                                            *)
  (* ---------------------------------------------------------------- *)

  (* Branchless lower bound over [lo, hi): every iteration does one
     comparison and converts it to arithmetic instead of a data-dependent
     branch, so an n-slot search is a deterministic floor(log2 n)+1
     comparisons. *)
  let lower_bound_packed t tb ~lo ~hi =
    let base = ref lo and len = ref (hi - lo) in
    while !len > 0 do
      let half = !len lsr 1 in
      let mid = !base + half in
      let lt = Bool.to_int (cmp_slot t mid tb < 0) in
      base := !base + (lt * (half + 1));
      len := half + (lt * ((!len land 1) - 1))
    done;
    !base

  let lower_bound_boxed t k ~lo ~hi =
    let lo = ref lo and hi = ref hi in
    let kcache = t.kcache in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if K.compare (Array.unsafe_get kcache mid) k < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  (* Dispatch. The default arm is the classic branchy search over the
     decoded cache: for word-sized keys the cache is a flat unboxed
     array (already the cache-optimal layout, no per-probe [to_binary]
     encode), for strings [K.compare] bottoms out in the memcmp stub,
     and on skewed read workloads the predictor learns hot descent
     paths — measured on YCSB C (Zipf 0.99, int and email keys) it
     beats the branchless arena walk's serialized dependency chain in
     every configuration we tried. [~arena] selects the arena walk on
     variable-length packed pages instead: no decoded-cache dependence
     (it reads only what {!encode} writes, so it can search a page
     straight off the wire) and a deterministic comparison count — the
     ablation arm and the decode-free path, not the hot-path default.
     Either way an n-slot search does at most [search_cost_n n]
     comparisons, which is what [search_cost] reports and the
     [leaf_probe_cmps] counter charges. *)
  let lower_bound_in ?(tid = 0) ?(arena = false) t k ~lo ~hi =
    if hi <= lo then lo
    else begin
      if !Counters.enabled then
        cnt_n tid Counters.Key_compare (search_cost_n (hi - lo));
      if arena && t.pk && not t.fixed8 then
        lower_bound_packed t (K.to_binary k) ~lo ~hi
      else lower_bound_boxed t k ~lo ~hi
    end

  let lower_bound ?(tid = 0) ?arena t k =
    lower_bound_in ~tid ?arena t k ~lo:0 ~hi:t.n

  (* ---------------------------------------------------------------- *)
  (* Iteration / materialization                                       *)
  (* ---------------------------------------------------------------- *)

  let iter_from t pos f =
    for i = max 0 pos to t.n - 1 do
      f (Array.unsafe_get t.kcache i) (Array.unsafe_get t.vals i)
    done

  let slice t = Arr.init t.n (fun i -> (t.kcache.(i), t.vals.(i)))

  let key_bytes t =
    if t.pk then begin
      let total = Array.fold_left ( + ) 0 t.klen in
      let out = Bytes.create total in
      let off = ref 0 in
      for i = 0 to t.n - 1 do
        Bytes.blit t.arena.bb t.kpos.(i) out !off t.klen.(i);
        off := !off + t.klen.(i)
      done;
      Bytes.unsafe_to_string out
    end
    else String.concat "" (List.init t.n (fun i -> K.to_binary t.kcache.(i)))

  let gap_bytes t =
    if not t.pk then 0
    else max 0 (Bytes.length t.arena.bb - Atomic.get t.arena.cursor)

  (* ---------------------------------------------------------------- *)
  (* Construction                                                      *)
  (* ---------------------------------------------------------------- *)

  (* Gap policy: a quarter of the key bytes, clamped to [64, 1024] —
     room for roughly a delta chain's worth of new keys before a
     consolidation must fall back to a fresh arena. *)
  let gap_for total = min 1024 (max 64 (total asr 2))

  let pack_keys kcache n =
    let bins = Arr.init n (fun i -> K.to_binary (Array.unsafe_get kcache i)) in
    let total = Array.fold_left (fun a s -> a + String.length s) 0 bins in
    let bb = Bytes.create (total + gap_for total) in
    let kpos = Array.make n 0 and klen = Array.make n 0 in
    let off = ref 0 in
    let fixed8 = ref true in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get bins i in
      let l = String.length s in
      Bytes.blit_string s 0 bb !off l;
      kpos.(i) <- !off;
      klen.(i) <- l;
      if l <> 8 then fixed8 := false;
      off := !off + l
    done;
    ({ bb; cursor = Atomic.make total }, kpos, klen, !fixed8)

  let build_sub ?(packed = true) items ~pos ~len =
    if len = 0 then empty
    else begin
      let kcache =
        Arr.init len (fun i -> fst (Array.unsafe_get items (pos + i)))
      in
      let vals =
        Arr.init len (fun i -> snd (Array.unsafe_get items (pos + i)))
      in
      if not packed then
        {
          n = len;
          kcache;
          vals;
          pk = false;
          arena = empty_arena;
          kpos = [||];
          klen = [||];
          fixed8 = false;
        }
      else begin
        let arena, kpos, klen, fixed8 = pack_keys kcache len in
        { n = len; kcache; vals; pk = true; arena; kpos; klen; fixed8 }
      end
    end

  let build ?packed items =
    build_sub ?packed items ~pos:0 ~len:(Array.length items)

  let with_inserted t pos k v =
    let n = t.n in
    let kcache = Arr.alloc (n + 1) and vals = Arr.alloc (n + 1) in
    Array.blit t.kcache 0 kcache 0 pos;
    Array.blit t.vals 0 vals 0 pos;
    kcache.(pos) <- k;
    vals.(pos) <- v;
    Array.blit t.kcache pos kcache (pos + 1) (n - pos);
    Array.blit t.vals pos vals (pos + 1) (n - pos);
    if not t.pk then
      {
        n = n + 1;
        kcache;
        vals;
        pk = false;
        arena = empty_arena;
        kpos = [||];
        klen = [||];
        fixed8 = false;
      }
    else begin
      let arena, kpos, klen, fixed8 = pack_keys kcache (n + 1) in
      { n = n + 1; kcache; vals; pk = true; arena; kpos; klen; fixed8 }
    end

  (* ---------------------------------------------------------------- *)
  (* Consolidation merge                                               *)
  (* ---------------------------------------------------------------- *)

  type delta =
    | Ins of key * value
    | Del of key * value
    | Upd of key * value * value

  type merged = { m_page : t; m_gap_reused : bool }

  (* Claim [nbytes] of [ar]'s gap; [Some offset] when it fits. *)
  let claim ar nbytes =
    if nbytes = 0 then Some 0
    else begin
      let off = Atomic.fetch_and_add ar.cursor nbytes in
      if off + nbytes <= Bytes.length ar.bb then Some off else None
    end

  let all8 klen n =
    let ok = ref (n > 0) in
    for i = 0 to n - 1 do
      if Array.unsafe_get klen i <> 8 then ok := false
    done;
    !ok

  let merge_with_deltas ?(tid = 0) ?packed ?(reuse = true) base deltas =
    let packed = match packed with Some p -> p | None -> base.pk in
    (* 1. newest-to-oldest walk with multiset pending-delete semantics: a
       delete is *pending* and is consumed by the next-older insert of
       the same pair, or failing that by a base occurrence (§3.1 — the
       multiset variant, because an update whose old and new values are
       equal makes pairs repeat across chain and base). *)
    let pres : (key * value) Growable.t = Growable.create () in
    let dels : (key * value) Growable.t = Growable.create () in
    let take_pending k v =
      let nd = Growable.length dels in
      let rec go i =
        if i >= nd then false
        else
          let k', v' = Growable.get dels i in
          if K.compare k' k = 0 && V.equal v' v then begin
            Growable.remove_at dels i;
            true
          end
          else go (i + 1)
      in
      go 0
    in
    List.iter
      (fun d ->
        match d with
        | Ins (k, v) -> if not (take_pending k v) then Growable.push pres (k, v)
        | Del (k, v) -> Growable.push dels (k, v)
        | Upd (k, vold, vnew) ->
            if not (take_pending k vnew) then Growable.push pres (k, vnew);
            Growable.push dels (k, vold))
      deltas;
    let nb = base.n in
    (* 2. resolve surviving deletes against base occurrences; deletes
       that resolve nowhere refer to delta-only items already absorbed
       by the pending set above and are ignored *)
    let consumed = Array.make (max 1 nb) false in
    let n_dead = ref 0 in
    Growable.iter
      (fun (k, v) ->
        let i = ref (lower_bound_in ~tid base k ~lo:0 ~hi:nb) in
        let stop = ref false in
        while
          (not !stop) && !i < nb && K.compare base.kcache.(!i) k = 0
        do
          if (not consumed.(!i)) && V.equal base.vals.(!i) v then begin
            consumed.(!i) <- true;
            incr n_dead;
            stop := true
          end
          else incr i
        done)
      dels;
    (* 3. the chain's surviving items, key-sorted; stable insertion sort
       (chain-bounded input) keeps newest-first order within a key *)
    let pa = Growable.to_array pres in
    let np = Array.length pa in
    for i = 1 to np - 1 do
      let x = pa.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && K.compare (fst pa.(!j)) (fst x) > 0 do
        pa.(!j + 1) <- pa.(!j);
        decr j
      done;
      pa.(!j + 1) <- x
    done;
    let nout = nb - !n_dead + np in
    if nout = 0 then { m_page = empty; m_gap_reused = false }
    else begin
      (* 4. single two-way merge. Delta items are emitted before base
         items with an equal key (they are newer — matches the probe
         walk, which reports delta values ahead of base values). [src]
         records each output slot's provenance for the byte plan:
         [>= 0] a base index, [< 0] chain item [-src-1]. *)
      let okc = Arr.alloc nout and ov = Arr.alloc nout in
      let src = Array.make nout 0 in
      let oi = ref 0 and bi = ref 0 and pi = ref 0 in
      while !bi < nb || !pi < np do
        while !bi < nb && consumed.(!bi) do
          incr bi
        done;
        let take_delta =
          !pi < np
          && (!bi >= nb
             || K.compare (fst pa.(!pi)) base.kcache.(!bi) <= 0)
        in
        if take_delta then begin
          let k, v = pa.(!pi) in
          okc.(!oi) <- k;
          ov.(!oi) <- v;
          src.(!oi) <- - !pi - 1;
          incr oi;
          incr pi
        end
        else if !bi < nb then begin
          okc.(!oi) <- base.kcache.(!bi);
          ov.(!oi) <- base.vals.(!bi);
          src.(!oi) <- !bi;
          incr oi;
          incr bi
        end
      done;
      assert (!oi = nout);
      if not packed then
        {
          m_page =
            {
              n = nout;
              kcache = okc;
              vals = ov;
              pk = false;
              arena = empty_arena;
              kpos = [||];
              klen = [||];
              fixed8 = false;
            };
          m_gap_reused = false;
        }
      else begin
        (* 5. byte plan: each output slot either blits an existing base
           slice ([bsrc] >= 0 — survivors, and chain keys the base
           already holds, e.g. updates) or encodes fresh bytes ([bbin]).
           Only the fresh bytes need gap space. *)
        let bsrc = Array.make nout (-1) in
        let bbin = Array.make nout "" in
        let new_bytes = ref 0 in
        for i = 0 to nout - 1 do
          let s = src.(i) in
          if s >= 0 then begin
            if base.pk then bsrc.(i) <- s
            else bbin.(i) <- K.to_binary okc.(i)
          end
          else if base.pk then begin
            (* chain item: reuse the slice of any base occurrence of the
               same key, dead or alive — equal keys share bytes *)
            let p = lower_bound_boxed base okc.(i) ~lo:0 ~hi:nb in
            if p < nb && K.compare base.kcache.(p) okc.(i) = 0 then
              bsrc.(i) <- p
            else begin
              let b = K.to_binary okc.(i) in
              bbin.(i) <- b;
              new_bytes := !new_bytes + String.length b
            end
          end
          else bbin.(i) <- K.to_binary okc.(i)
        done;
        let finish ~arena ~kpos ~klen ~gap_reused =
          {
            m_page =
              {
                n = nout;
                kcache = okc;
                vals = ov;
                pk = true;
                arena;
                kpos;
                klen;
                fixed8 = all8 klen nout;
              };
            m_gap_reused = gap_reused;
          }
        in
        let gap_attempt =
          if reuse && base.pk then
            match claim base.arena !new_bytes with
            | None -> None
            | Some off0 ->
                let kpos = Array.make nout 0 and klen = Array.make nout 0 in
                let off = ref off0 in
                for i = 0 to nout - 1 do
                  if bsrc.(i) >= 0 then begin
                    kpos.(i) <- base.kpos.(bsrc.(i));
                    klen.(i) <- base.klen.(bsrc.(i))
                  end
                  else begin
                    let b = bbin.(i) in
                    let l = String.length b in
                    Bytes.blit_string b 0 base.arena.bb !off l;
                    kpos.(i) <- !off;
                    klen.(i) <- l;
                    off := !off + l
                  end
                done;
                Some (finish ~arena:base.arena ~kpos ~klen ~gap_reused:true)
          else None
        in
        match gap_attempt with
        | Some m -> m
        | None ->
            (* fresh arena: blit surviving slices, write fresh bytes —
               still no re-encoding of keys the base already carried *)
            let total = ref 0 in
            for i = 0 to nout - 1 do
              total :=
                !total
                + (if bsrc.(i) >= 0 then base.klen.(bsrc.(i))
                   else String.length bbin.(i))
            done;
            let bb = Bytes.create (!total + gap_for !total) in
            let kpos = Array.make nout 0 and klen = Array.make nout 0 in
            let off = ref 0 in
            for i = 0 to nout - 1 do
              let l =
                if bsrc.(i) >= 0 then begin
                  let s = bsrc.(i) in
                  let l = base.klen.(s) in
                  Bytes.blit base.arena.bb base.kpos.(s) bb !off l;
                  l
                end
                else begin
                  let b = bbin.(i) in
                  let l = String.length b in
                  Bytes.blit_string b 0 bb !off l;
                  l
                end
              in
              kpos.(i) <- !off;
              klen.(i) <- l;
              off := !off + l
            done;
            finish
              ~arena:{ bb; cursor = Atomic.make !total }
              ~kpos ~klen ~gap_reused:false
      end
    end

  (* ---------------------------------------------------------------- *)
  (* Serialization: the on-disk page format                            *)
  (* ---------------------------------------------------------------- *)

  (* [n : int64le] [flag : byte, 1 = all keys 8 bytes]
     [unless flag: n x len : int64le] [key slices, index order]
     [values, caller-encoded]. Integer fields match Pagestore.Codec's
     int64-LE convention. Packed pages blit their key region straight
     from the arena (index order, so gap-reused pages normalize and the
     decode/encode round trip is byte-identical). *)

  let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

  let encode buf encode_value t =
    add_i64 buf t.n;
    if t.pk then begin
      Buffer.add_char buf (if t.fixed8 then '\001' else '\000');
      if not t.fixed8 then Array.iter (fun l -> add_i64 buf l) t.klen;
      for i = 0 to t.n - 1 do
        Buffer.add_subbytes buf t.arena.bb t.kpos.(i) t.klen.(i)
      done
    end
    else begin
      let bins = Arr.init t.n (fun i -> K.to_binary t.kcache.(i)) in
      let fixed8 =
        t.n > 0 && Array.for_all (fun s -> String.length s = 8) bins
      in
      Buffer.add_char buf (if fixed8 then '\001' else '\000');
      if not fixed8 then
        Array.iter (fun s -> add_i64 buf (String.length s)) bins;
      Array.iter (Buffer.add_string buf) bins
    end;
    for i = 0 to t.n - 1 do
      encode_value buf t.vals.(i)
    done

  let get_i64 s ~pos =
    if !pos + 8 > String.length s then failwith "Leaf_page.decode: truncated";
    let v = String.get_int64_le s !pos in
    pos := !pos + 8;
    Int64.to_int v

  let decode payload ~pos ~value =
    let plen = String.length payload in
    let n = get_i64 payload ~pos in
    if n < 0 || n > plen then failwith "Leaf_page.decode: bad item count";
    if !pos >= plen then failwith "Leaf_page.decode: truncated";
    let flag = payload.[!pos] in
    incr pos;
    let fixed8 =
      match flag with
      | '\001' -> true
      | '\000' -> false
      | _ -> failwith "Leaf_page.decode: bad flag"
    in
    if n = 0 then empty
    else begin
      let klen =
        if fixed8 then Array.make n 8
        else
          Array.init n (fun _ ->
              let l = get_i64 payload ~pos in
              if l < 0 || l > plen then
                failwith "Leaf_page.decode: bad key length";
              l)
      in
      let total = Array.fold_left ( + ) 0 klen in
      if !pos + total > plen then failwith "Leaf_page.decode: truncated";
      let bb = Bytes.create total in
      Bytes.blit_string payload !pos bb 0 total;
      pos := !pos + total;
      let kpos = Array.make n 0 in
      let off = ref 0 in
      for i = 0 to n - 1 do
        kpos.(i) <- !off;
        off := !off + klen.(i)
      done;
      let kcache =
        Arr.init n (fun i ->
            K.of_binary (Bytes.sub_string bb kpos.(i) klen.(i)))
      in
      let vals = Arr.init n (fun _ -> value ()) in
      {
        n;
        kcache;
        vals;
        pk = true;
        arena = { bb; cursor = Atomic.make total };
        kpos;
        klen;
        fixed8;
      }
    end
end
