(** Interface types for the Bw-Tree functor. *)

module type KEY = sig
  type t

  val compare : t -> t -> int

  val to_binary : t -> string
  (** Binary-comparable encoding. The Bw-Tree itself never uses it; it is
      part of the key contract so that the same key modules drive the trie
      indexes and the workload generators. *)

  val of_binary : string -> t
  (** Inverse of {!to_binary} on its exact output. The trie indexes store
      only the binary form and use this to hand real keys back to scan
      visitors. *)

  val dummy : t
  (** Any value of the type; fills unused slots of the lock-based indexes'
      fixed-capacity node arrays. Never compared or returned. *)

  val pp : Format.formatter -> t -> unit
end

module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Every optimization the paper evaluates is an independent switch, so the
    same code base serves as the optimized OpenBw-Tree, the good-faith
    baseline Bw-Tree, and each ablation in between. *)
type config = {
  leaf_max : int;  (** max key-value items in a logical leaf (paper: 128) *)
  inner_max : int;  (** max separator items in a logical inner node (64) *)
  leaf_chain_max : int;  (** leaf Delta Chain consolidation threshold (24) *)
  inner_chain_max : int;  (** inner Delta Chain threshold (2) *)
  leaf_min : int;  (** leaf underflow (merge) threshold *)
  inner_min : int;  (** inner underflow threshold *)
  unique_keys : bool;
      (** enforce unique keys; [false] enables the §3.1 non-unique support *)
  preallocate : bool;  (** §4.1 delta-record pre-allocation *)
  fast_consolidation : bool;  (** §4.3 segment-based consolidation *)
  search_shortcuts : bool;  (** §4.4 offset-guided micro-indexing *)
  use_atomic_cas : bool;
      (** [false] replaces mapping-table CaS with plain load/compare/store
          (§6.3 "disable CaS"); single-threaded use only *)
  inplace_leaf_update : bool;
      (** [true] rewrites leaf bases copy-on-write instead of appending
          deltas (§6.3 "disable delta updates"); single-threaded only *)
  packed_leaves : bool;
      (** [true] builds leaf base pages with the packed binary-comparable
          key arena and branchless in-node search ({!Leaf_page});
          [false] keeps the boxed layout (decoded keys searched through
          [KEY.compare]) — the ablation baseline *)
  gc_scheme : Epoch.scheme;  (** §4.2; paper default for OpenBw is
      decentralized, for baseline Bw-Tree centralized *)
  gc_threshold : int;  (** local garbage list trigger (1024) *)
  max_threads : int;
  leaf_cache : bool;
      (** Wormhole-style point-op accelerator (ROADMAP item 3): a
          lock-free hash cache from key buckets to candidate leaf PIDs
          so hot GET/PUT/DELETE ops skip the root-to-leaf descent.
          Entries are re-validated through the mapping table on every
          hit, so a stale entry costs a retry, never a wrong result. *)
  leaf_cache_bits : int;
      (** log2 of the leaf-cache slot count (13 = 8192 slots) *)
}

let default_config =
  {
    leaf_max = 128;
    inner_max = 64;
    leaf_chain_max = 24;
    inner_chain_max = 2;
    leaf_min = 16;
    inner_min = 8;
    unique_keys = true;
    preallocate = true;
    fast_consolidation = true;
    search_shortcuts = true;
    use_atomic_cas = true;
    inplace_leaf_update = false;
    packed_leaves = true;
    gc_scheme = Epoch.Decentralized;
    gc_threshold = 1024;
    max_threads = 64;
    leaf_cache = true;
    leaf_cache_bits = 13;
  }

(** A good-faith reading of Microsoft's original design [29]: heap-allocated
    delta records, sort-based consolidation, no search shortcuts,
    centralized epoch GC, chain threshold 8 everywhere. *)
let microsoft_config =
  {
    default_config with
    leaf_chain_max = 8;
    inner_chain_max = 8;
    preallocate = false;
    fast_consolidation = false;
    search_shortcuts = false;
    packed_leaves = false;
    gc_scheme = Epoch.Centralized;
    leaf_cache = false;
  }

(** Validating configuration builder. [S.create] re-validates whatever it
    is given, so a raw [{ default_config with ... }] update still works —
    it just has to denote a coherent configuration. *)
module Config = struct
  let validate c =
    let fail fmt = Format.kasprintf invalid_arg ("Bwtree.Config: " ^^ fmt) in
    if c.leaf_max < 2 then fail "leaf_max %d < 2" c.leaf_max;
    if c.inner_max < 2 then fail "inner_max %d < 2" c.inner_max;
    if c.leaf_min < 0 then fail "leaf_min %d < 0" c.leaf_min;
    if c.inner_min < 0 then fail "inner_min %d < 0" c.inner_min;
    if c.leaf_min >= c.leaf_max then
      fail "leaf_min %d >= leaf_max %d (a leaf would merge and re-split \
            forever)"
        c.leaf_min c.leaf_max;
    if c.inner_min >= c.inner_max then
      fail "inner_min %d >= inner_max %d" c.inner_min c.inner_max;
    if c.leaf_chain_max < 1 then
      fail "leaf_chain_max %d < 1 (a chain threshold below 1 would \
            consolidate empty chains)"
        c.leaf_chain_max;
    if c.inner_chain_max < 1 then
      fail "inner_chain_max %d < 1" c.inner_chain_max;
    if c.gc_threshold < 1 then fail "gc_threshold %d < 1" c.gc_threshold;
    if c.max_threads < 1 then fail "max_threads %d < 1" c.max_threads;
    if c.leaf_cache_bits < 1 || c.leaf_cache_bits > 24 then
      fail "leaf_cache_bits %d outside [1, 24]" c.leaf_cache_bits

  let make ?(base = default_config) ?leaf_max ?inner_max ?leaf_chain_max
      ?inner_chain_max ?leaf_min ?inner_min ?unique_keys ?preallocate
      ?fast_consolidation ?search_shortcuts ?use_atomic_cas
      ?inplace_leaf_update ?packed_leaves ?gc_scheme ?gc_threshold
      ?max_threads ?leaf_cache ?leaf_cache_bits () =
    let field v = function Some x -> x | None -> v in
    let c =
      {
        leaf_max = field base.leaf_max leaf_max;
        inner_max = field base.inner_max inner_max;
        leaf_chain_max = field base.leaf_chain_max leaf_chain_max;
        inner_chain_max = field base.inner_chain_max inner_chain_max;
        leaf_min = field base.leaf_min leaf_min;
        inner_min = field base.inner_min inner_min;
        unique_keys = field base.unique_keys unique_keys;
        preallocate = field base.preallocate preallocate;
        fast_consolidation = field base.fast_consolidation fast_consolidation;
        search_shortcuts = field base.search_shortcuts search_shortcuts;
        use_atomic_cas = field base.use_atomic_cas use_atomic_cas;
        inplace_leaf_update = field base.inplace_leaf_update inplace_leaf_update;
        packed_leaves = field base.packed_leaves packed_leaves;
        gc_scheme = field base.gc_scheme gc_scheme;
        gc_threshold = field base.gc_threshold gc_threshold;
        max_threads = field base.max_threads max_threads;
        leaf_cache = field base.leaf_cache leaf_cache;
        leaf_cache_bits = field base.leaf_cache_bits leaf_cache_bits;
      }
    in
    validate c;
    c
end

(** Operation counters, striped per thread. *)
type op_stats = {
  inserts : int;
  deletes : int;
  updates : int;
  lookups : int;
  splits : int;
  merges : int;
  consolidations : int;
  failed_cas : int;  (** delta-append CaS failures *)
  restarts : int;  (** operation attempts aborted and retried from the root *)
  smo_helps : int;  (** help-along completions attempted *)
  prealloc_overflows : int;  (** consolidations forced by slot exhaustion *)
}

(** Mapping-table occupancy snapshot. *)
type mapping_stats = {
  allocated : int;  (** ids ever handed out (the high-water mark) *)
  freed : int;  (** recycled ids currently parked on the free list *)
  chunks : int;  (** chunks faulted in so far *)
  table_capacity : int;  (** addressable ids under the current geometry *)
}

let pp_mapping_stats ppf s =
  Format.fprintf ppf
    "@[<h>mapping table: %d ids allocated, %d free, %d chunks, capacity %d@]"
    s.allocated s.freed s.chunks s.table_capacity

(** Leaf-cache effectiveness snapshot (ROADMAP item 3). Counts are
    summed over the per-thread stripes; [lc_smo_events] is the current
    SMO-epoch value, i.e. the number of completed splits + merges +
    root collapses that stamped (and logically invalidated) entries. *)
type leaf_cache_stats = {
  lc_hits : int;
  lc_misses : int;
  lc_stale_verifies : int;  (** cached entries that failed re-validation *)
  lc_invalidations : int;  (** entries dropped (every stale verify drops) *)
  lc_smo_events : int;
  lc_occupied : int;  (** slots currently holding an entry *)
  lc_slots : int;  (** total slots; 0 when the cache is disabled *)
}

let pp_leaf_cache_stats ppf s =
  let total = s.lc_hits + s.lc_misses in
  Format.fprintf ppf
    "@[<h>leaf cache: %d/%d slots (%.1f%%), %d hits / %d misses (%.1f%% hit \
     rate), %d stale, %d invalidated, %d SMO events@]"
    s.lc_occupied s.lc_slots
    (if s.lc_slots = 0 then 0.
     else 100. *. float_of_int s.lc_occupied /. float_of_int s.lc_slots)
    s.lc_hits s.lc_misses
    (if total = 0 then 0. else 100. *. float_of_int s.lc_hits /. float_of_int total)
    s.lc_stale_verifies s.lc_invalidations s.lc_smo_events

let mapping_stats_to_json s =
  Bw_obs.Json.Obj
    [
      ("allocated", Bw_obs.Json.Int s.allocated);
      ("freed", Bw_obs.Json.Int s.freed);
      ("chunks", Bw_obs.Json.Int s.chunks);
      ("capacity", Bw_obs.Json.Int s.table_capacity);
    ]

(** Snapshot of the physical structure, computed by a full walk
    (Table 2's IDCL/LDCL/INS/LNS/IPU/LPU statistics). *)
type structure_stats = {
  inner_nodes : int;
  leaf_nodes : int;
  avg_inner_chain : float;
  avg_leaf_chain : float;
  avg_inner_size : float;
  avg_leaf_size : float;
  inner_prealloc_util : float;  (** fraction of pre-allocated slots used *)
  leaf_prealloc_util : float;
  depth : int;  (** tree height: root to leaf, in logical nodes *)
}

(** Public interface of one Bw-Tree instantiation. *)
module type S = sig
  type key
  type value

  type t
  (** A concurrent ordered index from [key] to [value]. All operations are
      lock-free (writers append delta records published by CaS; readers
      never write shared memory except epoch bookkeeping) and may be called
      from any number of domains concurrently, provided each caller passes
      a distinct [tid] below [config.max_threads]. [tid] defaults to [0],
      fine for single-threaded use. *)

  val create : ?config:config -> ?obs:Bw_obs.sink -> unit -> t
  (** A fresh index. [config] defaults to {!default_config}, the fully
      optimized OpenBw-Tree; {!microsoft_config} selects the baseline
      Bw-Tree design. The config is validated ({!Config.validate});
      inconsistent settings raise [Invalid_argument]. [obs] (default
      {!Bw_obs.Null}) receives per-operation latencies, restart counts,
      chain depths, SMO events and the epoch/mapping-table gauges; with
      the default null sink every probe is a single branch. *)

  val config : t -> config
  val obs : t -> Bw_obs.sink

  (** {1 Point operations} *)

  val insert : t -> ?tid:int -> key -> value -> bool
  (** [false] if the key (or, with non-unique keys, the exact (key, value)
      pair) is already present. *)

  val delete : t -> ?tid:int -> key -> value -> bool
  (** Removes the key. With non-unique keys the exact (key, value) pair is
      removed — delete deltas carry the value precisely for this (§3.1).
      In unique mode the value argument is ignored. *)

  val update : t -> ?tid:int -> key -> value -> bool
  (** Replaces the current value (posting an update delta); [false] if the
      key is absent. *)

  val upsert : t -> ?tid:int -> key -> value -> unit
  val lookup : t -> ?tid:int -> key -> value list
  (** All visible values of the key — a singleton or empty list in unique
      mode, computed with the S{_present}/S{_deleted} walk (§3.1)
      otherwise. *)

  val mem : t -> ?tid:int -> key -> bool

  (** {1 Batch execution}

      Amortizes per-operation overhead across a request batch: the ops
      are sorted by key (stable — ties keep submission order, so
      non-unique/overwrite semantics match sequential execution), the
      epoch is entered once, and the sorted run is walked left-to-right
      reusing the previous traversal while keys stay inside the cached
      leaf's separator range. Re-descent (from the nearest cached
      ancestor still covering the key, else the root) happens only on
      range exit, SMO encounter or CaS failure. *)

  type batch_op =
    | B_insert of value
    | B_update of value
    | B_upsert of value
    | B_delete of value
    | B_get

  type batch_result = R_applied of bool | R_values of value list

  val execute_batch :
    t -> ?tid:int -> (key * batch_op) array -> batch_result array
  (** Executes the ops and returns one result per op, in submission
      order: [R_applied] for writes (the same booleans the point ops
      return; [B_upsert] reports whether the update or the fallback
      insert took effect) and [R_values] for [B_get]. Equivalent to
      applying the ops sequentially in submission order. Per-[tid]
      scratch buffers are reused, so steady-state fixed-size batches add
      no allocation beyond the deltas and the result array. *)

  (** {1 Range operations (§3.2, Appendix C)} *)

  module Iterator : sig
    type iter
    (** A cursor over the index. Each iterator owns a private consolidated
        copy of one logical leaf node; moving past its boundary
        re-traverses from the root with the node's high key (forward) or
        low key under the go-left rule (backward). Never blocks writers. *)

    val seek : t -> ?tid:int -> key -> iter
    (** Positioned at the first item whose key is >= the argument. *)

    val seek_first : t -> ?tid:int -> unit -> iter
    val current : iter -> (key * value) option
    (** [None] when positioned before the first or after the last item. *)

    val next : iter -> unit
    val prev : iter -> unit
    (** [next]/[prev] from an exhausted end re-enter the data, so a scan
        can reverse direction at any point. *)
  end

  val scan : t -> ?tid:int -> ?n:int -> key -> (key * value) list
  (** Up to [n] items starting at the first key >= the argument — the
      YCSB-E operation. *)

  val scan_iter : t -> ?tid:int -> ?n:int -> key -> (key -> value -> unit) -> int
  (** Visitor form of {!scan}: calls the function on up to [n] items in
      key order and returns the count, materializing nothing. The
      harness drivers use it so a range query allocates no result
      list. *)

  val scan_all : t -> ?tid:int -> unit -> (key * value) list
  val cardinal : t -> int

  (** {1 Maintenance} *)

  val consolidate_all : t -> unit
  (** Replaces every delta chain with a fresh base node (single-threaded
      utility; used by tests and the §6.3 "-DC" experiment). *)

  val gc_advance : t -> unit
  (** Advance the epoch clock once (cooperative alternative to the
      background thread). *)

  val start_gc_thread : t -> ?interval_s:float -> unit -> unit
  (** Start the epoch-advancing domain (default 40 ms, the paper's
      interval). *)

  val stop_gc_thread : t -> unit

  val quiesce : t -> tid:int -> unit
  (** Worker [tid] will issue no more operations for a while; its
      published epoch stops holding back reclamation. *)

  val epoch : t -> Epoch.t

  (** {1 Leaf pages} *)

  module Page : Leaf_page.S with type key := key and type value := value
  (** The one leaf-materialization representation: every consumer of
      leaf contents — descent, consolidation, iterators, freeze/inspect,
      checkpointing — goes through this API (ROADMAP item 2). *)

  val iter_leaf_pages : t -> ?tid:int -> (Page.t -> unit) -> unit
  (** Visits every non-empty logical leaf as one consolidated page, in
      key order. Fully consolidated leaves are handed out zero-copy;
      leaves with pending deltas are materialized on the side (the tree
      is not modified). Quiescent callers only — this is the checkpoint
      writer's traversal, and {!Page.encode} serializes packed pages by
      blit, so a checkpoint never re-encodes keys. *)

  (** {1 Introspection} *)

  val op_stats : t -> op_stats
  val structure_stats : t -> structure_stats

  (** [iter_nodes t f] visits every logical node with its Delta-Chain
      length and item count — the raw data behind {!structure_stats}, for
      histograms. *)
  val iter_nodes : t -> (leaf:bool -> chain:int -> size:int -> unit) -> unit
  val memory_words : t -> int

  val max_chains : t -> int * int
  (** (longest leaf Delta Chain, longest inner Delta Chain) right now — a
      cheap probe for harnesses that bound chain growth. Exact when the
      tree is quiescent; a racy snapshot otherwise. *)

  val mapping_table_stats : t -> mapping_stats

  val leaf_cache_stats : t -> leaf_cache_stats
  (** Effectiveness counters of the point-op leaf cache; all zeros (and
      [lc_slots = 0]) when [config.leaf_cache] is off. *)

  val leaf_cache_check : t -> tid:int -> key -> bool
  (** Harness oracle: probe the cache for the key and, on a verified
      hit, compare the served leaf against an independent from-root
      descent. [true] when they agree or the probe misses — [false]
      means a verified entry disagreed with the tree, i.e. the
      stamp/verify protocol let a wrong leaf through. Concurrent SMOs
      between the probe and the descent are tolerated (the check
      re-probes), so it is safe to sample under load. *)

  exception Invariant_violation of string

  val verify_invariants : t -> unit
  (** Full structural check (ordering, bounds, metas, sibling links);
      quiescent callers only. Raises {!Invariant_violation}. *)

  val dump : t -> Format.formatter -> unit
  (** Renders every logical node with its delta chain, for debugging. *)

  (** {1 §6.3 decomposition hooks} *)

  type frozen

  val freeze : t -> frozen
  (** Consolidates everything and converts the tree to direct physical
      pointers — the "disable mapping table" configuration. The source
      tree must be quiescent. *)

  val frozen_lookup : frozen -> key -> value list
end
