(** The OpenBw-Tree: a lock-free B-link tree with delta chains and a
    mapping-table indirection layer, after "Building a Bw-Tree Takes More
    Than Just Buzz Words" (SIGMOD 2018).

    Concurrency model: base nodes and delta records are immutable; the only
    mutable state is the mapping table's atomic cells (plus per-node
    allocation markers and the epoch system). Every state change is a
    single CaS on a logical node's cell. A failed CaS aborts the operation,
    which restarts from the root (§2.2).

    See {!Bwtree_intf} for the configuration knobs; every optimization from
    the paper is an independent switch. *)

include Bwtree_intf
module Leaf_page = Leaf_page
(** Re-exported so tests and tools can instantiate the full page
    interface (build/merge) without going through a tree. *)

module Counters = Bw_util.Counters
module Growable = Bw_util.Growable

exception Restart
(** Internal control flow: the current attempt observed interference
    (failed CaS, in-flight SMO) and must retry from the root. Never escapes
    the public API. *)

module Make (K : KEY) (V : VALUE) :
  S with type key = K.t and type value = V.t = struct
  type key = K.t
  type value = V.t

  (* The one leaf-materialization representation (ROADMAP item 2): every
     consumer of leaf contents goes through this module. [P] is the full
     internal interface; the public [Page] alias below is narrowed to
     [Leaf_page.S] by the signature constraint. *)
  module P = Leaf_page.Make (K) (V)
  module Page = P

  (* ---------------------------------------------------------------- *)
  (* Bounds                                                            *)
  (* ---------------------------------------------------------------- *)

  type bound = Neg_inf | B of key | Pos_inf

  let cmp_bound a b =
    match (a, b) with
    | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
    | Neg_inf, _ -> -1
    | _, Neg_inf -> 1
    | Pos_inf, _ -> 1
    | _, Pos_inf -> -1
    | B x, B y -> K.compare x y

  (* compare a key against a bound *)
  let kb k b = match b with Neg_inf -> 1 | Pos_inf -> -1 | B x -> K.compare k x

  let pp_bound ppf = function
    | Neg_inf -> Format.pp_print_string ppf "-inf"
    | Pos_inf -> Format.pp_print_string ppf "+inf"
    | B k -> K.pp ppf k

  let nil_id = -1

  (* ---------------------------------------------------------------- *)
  (* Elements: base nodes and delta records                            *)
  (* ---------------------------------------------------------------- *)

  (* Node attributes (Table 1), carried by every element so threads read
     the logical node's current state from the chain head without replaying
     the chain. *)
  type meta = {
    size : int;  (* items in the logical node *)
    depth : int;  (* delta records in the chain *)
    lo : bound;  (* low key *)
    hi : bound;  (* high key = low key of right sibling *)
    right : int;  (* right sibling id, [nil_id] if none *)
    offset : int;  (* §4.3 base-node position; -1 when invalid *)
  }

  type elem =
    | Leaf of leaf_base
    | Inner of inner_base
    | LD of leaf_delta
    | ID of inner_delta

  and leaf_base = {
    lb_page : P.t;
    lb_meta : meta;
    lb_pre : prealloc option;
  }

  and inner_base = {
    (* ib_seps.(0) is the node's low bound; ib_ids.(i) owns keys in
       [ib_seps.(i), ib_seps.(i+1)) with the last range closed by hi *)
    ib_seps : bound array;
    ib_ids : int array;
    ib_meta : meta;
    ib_pre : prealloc option;
  }

  and leaf_delta = { l_op : l_op; l_next : elem; l_meta : meta }

  and l_op =
    | L_ins of key * value
    | L_del of key * value
    | L_upd of key * value * value  (* key, old value, new value *)
    | L_split of key * int  (* split key, new right sibling id *)
    | L_merge of key * elem * int  (* merge key, right branch, removed id *)
    | L_remove  (* this node is being merged into its left sibling *)

  and inner_delta = { i_op : i_op; i_next : elem; i_meta : meta }

  and i_op =
    | I_ins of key * int * bound  (* new separator, child id, next separator *)
    | I_del of key * bound * int * bound
        (* deleted separator K1; preceding separator K0 with child N0; the
           following separator K2 — the Appendix A.2 Stage III record *)
    | I_split of key * int
    | I_merge of key * elem * int
    | I_remove
    | I_abort  (* write-locks this node against appends (Appendix B) *)

  (* §4.1 pre-allocated delta area: an atomic allocation marker over a
     fixed number of slots. Claiming a slot is one atomic add; exhaustion
     forces consolidation. (The paper places the records physically inside
     the chunk; in OCaml the records are ordinary heap blocks — typically
     adjacent thanks to the bump-allocating minor heap — and the marker
     reproduces the allocation discipline and its statistics.) *)
  and prealloc = { cap : int; used : int Atomic.t; wasted : int Atomic.t }

  let meta_of = function
    | Leaf b -> b.lb_meta
    | Inner b -> b.ib_meta
    | LD d -> d.l_meta
    | ID d -> d.i_meta

  let is_leaf_elem = function Leaf _ | LD _ -> true | Inner _ | ID _ -> false

  (* ---------------------------------------------------------------- *)
  (* Tree                                                              *)
  (* ---------------------------------------------------------------- *)

  (* per-thread statistic field indexes *)
  let f_inserts = 0
  and f_deletes = 1
  and f_updates = 2
  and f_lookups = 3
  and f_splits = 4
  and f_merges = 5
  and f_consolidations = 6
  and f_failed_cas = 7
  and f_restarts = 8
  and f_smo_helps = 9
  and f_prealloc_overflows = 10
  and f_lc_hits = 11
  and f_lc_misses = 12
  and f_lc_stale = 13
  and f_lc_inval = 14
  and f_lc_tick = 15 (* replacement sampler, not a reported stat *)
  and f_lc_win = 16 (* probes seen in the current observation window *)
  and f_lc_winh = 17 (* hits seen in the current observation window *)
  and f_lc_bypass = 18 (* ops left in the current probe-bypass stretch *)

  let n_stat_fields = 19

  (* The leaf cache (ROADMAP item 3) is a flat int array of
     [fingerprint; pid; stamp] triples, one per direct-mapped slot:
     - fingerprint: the full [Hashtbl.hash] of the cached key (-1 =
       empty). A probe compares it before touching anything else, so a
       slot holding some other key costs one array load — no pointer
       chase, no mapping-table read.
     - pid: the candidate leaf for that key.
     - stamp: the SMO epoch at fill time, a refresh hint only.
     Entries are advisory — every hit re-reads the head through the
     mapping table and re-checks [lo <= k < hi] against the *current*
     meta, so a stale/torn/racy entry costs a descent, never a wrong
     leaf. That advisory-ness is why plain (non-atomic) int reads and
     writes suffice: a torn triple (one key's fingerprint beside
     another's pid) just fails validation. Keeping the triples unboxed
     and adjacent matters more than atomicity here — the boxed
     [entry option Atomic.t array] representation this replaced cost
     two dependent cache-line misses per probe and an allocation per
     fill, which showed up as a double-digit regression on exactly the
     miss-dominated workloads the cache must not hurt. *)

  type t = {
    cfg : config;
    table : elem Mapping_table.t;
    root : int Atomic.t;
    epoch : Epoch.t;
    o : Bw_obs.sink;
    st : int array array;  (* [tid].[field], owner-written *)
    bperm : int array array;
        (* per-tid batch-permutation scratch, owner-written; each row is
           grown to the batch size once and then reused, so steady-state
           fixed-size batches sort without allocating *)
    smo_epoch : int Atomic.t;
        (* completed structure modifications (splits, merges, root
           collapses) — the leaf cache's global invalidation stamp *)
    lcache : int array;
        (* direct-mapped point-op leaf cache, 3 ints per slot
           (fingerprint, pid, stamp); [||] when disabled *)
    lc_mask : int;
  }

  let sbump t tid f = t.st.(tid).(f) <- t.st.(tid).(f) + 1
  let ssum t f = Array.fold_left (fun acc row -> acc + row.(f)) 0 t.st

  let lc_enabled t = t.lc_mask >= 0

  (* Every completed SMO advances the stamp. Unconditional: the counter
     is one rarely-written atomic, and [leaf_cache_stats] reports it even
     when the cache itself is off. *)
  let smo_bump t = Atomic.incr t.smo_epoch

  let cnt tid ev =
    if !Counters.enabled then Counters.incr Counters.global ~tid ev

  let new_prealloc cfg ~leaf =
    if not cfg.preallocate then None
    else
      let cap = if leaf then cfg.leaf_chain_max else cfg.inner_chain_max in
      (* one extra slot: the chain-length trigger normally fires first, so
         marker exhaustion is the backstop, not the common case *)
      Some { cap = cap + 1; used = Atomic.make 0; wasted = Atomic.make 0 }

  let empty_leaf cfg =
    Leaf
      {
        lb_page = P.empty;
        lb_meta =
          {
            size = 0;
            depth = 0;
            lo = Neg_inf;
            hi = Pos_inf;
            right = nil_id;
            offset = -1;
          };
        lb_pre = new_prealloc cfg ~leaf:true;
      }

  let create ?(config = default_config) ?(obs = Bw_obs.Null) () =
    Config.validate config;
    let dummy = empty_leaf { config with preallocate = false } in
    let table = Mapping_table.create ~obs ~dummy () in
    let leaf = empty_leaf config in
    let leaf_id = Mapping_table.allocate table leaf in
    let root =
      Inner
        {
          ib_seps = [| Neg_inf |];
          ib_ids = [| leaf_id |];
          ib_meta =
            {
              size = 1;
              depth = 0;
              lo = Neg_inf;
              hi = Pos_inf;
              right = nil_id;
              offset = -1;
            };
          ib_pre = new_prealloc config ~leaf:false;
        }
    in
    let root_id = Mapping_table.allocate table root in
    let lc_slots = if config.leaf_cache then 1 lsl config.leaf_cache_bits else 0 in
    let t =
      {
        cfg = config;
        table;
        root = Atomic.make root_id;
        epoch =
          Epoch.create ~scheme:config.gc_scheme ~max_threads:config.max_threads
            ~gc_threshold:config.gc_threshold ~obs ();
        o = obs;
        st = Array.init config.max_threads (fun _ -> Array.make n_stat_fields 0);
        bperm = Array.make config.max_threads [||];
        smo_epoch = Atomic.make 0;
        lcache = Array.make (3 * lc_slots) (-1);
        lc_mask = lc_slots - 1;
      }
    in
    if lc_enabled t && Bw_obs.enabled obs then
      Bw_obs.register_gauge obs Bw_obs.G_leaf_cache_fill (fun () ->
          let occupied = ref 0 in
          for s = 0 to lc_slots - 1 do
            if t.lcache.(3 * s) >= 0 then incr occupied
          done;
          !occupied * 1000 / lc_slots);
    t

  let config t = t.cfg
  let obs t = t.o
  let epoch t = t.epoch

  (* The linearization primitive: swing a logical node's physical pointer. *)
  let mt_cas t ~tid id ~expect ~repl =
    cnt tid Counters.Cas_attempt;
    let ok =
      if t.cfg.use_atomic_cas then Mapping_table.cas t.table id ~expect ~repl
      else Mapping_table.cas_unsafe t.table id ~expect ~repl
    in
    if not ok then cnt tid Counters.Cas_failure;
    ok

  let mt_get t ~tid id =
    cnt tid Counters.Pointer_deref;
    Mapping_table.get t.table id

  (* ---------------------------------------------------------------- *)
  (* Sorted-array helpers                                              *)
  (* ---------------------------------------------------------------- *)

  (* In-leaf key search lives in {!Leaf_page} ([P.lower_bound] and
     friends) — one implementation for descent, batch probes, iterators
     and the frozen tree. Only the separator search below stays here:
     it is bound-typed, not key-typed. *)

  (* largest index i with seps.(i) <= k; seps.(0) <= k always holds for a
     correctly-routed traversal *)
  let sep_index ~tid seps n k =
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      cnt tid Counters.Key_compare;
      if kb k seps.(mid) >= 0 then lo := mid else hi := mid - 1
    done;
    !lo

  (* ---------------------------------------------------------------- *)
  (* Full replay: logical node -> sorted items (the "slow" path)       *)
  (* ---------------------------------------------------------------- *)

  (* Rebuilds a leaf logical node's sorted (key, value) items by applying
     the chain oldest-first. Correct for every delta kind, including SMO
     records; used by consolidation (baseline mode), splits, iterators and
     the invariant checker. *)
  let rec gather_leaf ~tid (e : elem) : (key * value) Growable.t =
    match e with
    | Leaf b ->
        let g = Growable.create ~capacity:(P.length b.lb_page + 8) () in
        P.iter_from b.lb_page 0 (fun k v -> Growable.push g (k, v));
        g
    | LD d -> (
        cnt tid Counters.Pointer_deref;
        let items = gather_leaf ~tid d.l_next in
        let find_pair k v =
          (* position of the exact (k, v) pair, or -1 *)
          let n = Growable.length items in
          let i = ref (lower_bound_g ~tid items k) in
          let found = ref (-1) in
          while
            !found < 0 && !i < n
            && K.compare (fst (Growable.get items !i)) k = 0
          do
            if V.equal (snd (Growable.get items !i)) v then found := !i;
            incr i
          done;
          !found
        in
        let do_insert k v =
          let pos = upper_bound_g ~tid items k in
          Growable.insert_at items pos (k, v)
        in
        let do_delete k v =
          let pos = find_pair k v in
          if pos >= 0 then Growable.remove_at items pos
        in
        match d.l_op with
        | L_ins (k, v) ->
            do_insert k v;
            items
        | L_del (k, v) ->
            do_delete k v;
            items
        | L_upd (k, vold, vnew) ->
            do_delete k vold;
            do_insert k vnew;
            items
        | L_split (ks, _) ->
            let cut = lower_bound_g ~tid items ks in
            Growable.truncate items cut;
            items
        | L_merge (_, right, _) ->
            let r = gather_leaf ~tid right in
            Growable.iter (fun it -> Growable.push items it) r;
            items
        | L_remove -> items)
    | Inner _ | ID _ -> assert false

  and lower_bound_g ~tid items k =
    let lo = ref 0 and hi = ref (Growable.length items) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      cnt tid Counters.Key_compare;
      if K.compare (fst (Growable.get items mid)) k < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  and upper_bound_g ~tid items k =
    let lo = ref 0 and hi = ref (Growable.length items) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      cnt tid Counters.Key_compare;
      if K.compare (fst (Growable.get items mid)) k <= 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  (* Same, for inner logical nodes: sorted (separator bound, child id). *)
  let rec gather_inner ~tid (e : elem) : (bound * int) Growable.t =
    match e with
    | Inner b ->
        let g = Growable.create ~capacity:(Array.length b.ib_seps + 4) () in
        Array.iteri (fun i s -> Growable.push g (s, b.ib_ids.(i))) b.ib_seps;
        g
    | ID d -> (
        cnt tid Counters.Pointer_deref;
        let items = gather_inner ~tid d.i_next in
        let pos_of_sep sep =
          let lo = ref 0 and hi = ref (Growable.length items) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            cnt tid Counters.Key_compare;
            if cmp_bound (fst (Growable.get items mid)) sep < 0 then
              lo := mid + 1
            else hi := mid
          done;
          !lo
        in
        match d.i_op with
        | I_ins (ks, cid, _) ->
            let pos = pos_of_sep (B ks) in
            if
              pos < Growable.length items
              && cmp_bound (fst (Growable.get items pos)) (B ks) = 0
            then Growable.set items pos (B ks, cid)
            else Growable.insert_at items pos (B ks, cid);
            items
        | I_del (k1, _, _, _) ->
            let pos = pos_of_sep (B k1) in
            if
              pos < Growable.length items
              && cmp_bound (fst (Growable.get items pos)) (B k1) = 0
            then Growable.remove_at items pos;
            items
        | I_split (ks, _) ->
            let cut = pos_of_sep (B ks) in
            Growable.truncate items cut;
            items
        | I_merge (_, right, _) ->
            let r = gather_inner ~tid right in
            Growable.iter (fun it -> Growable.push items it) r;
            items
        | I_remove | I_abort -> items)
    | Leaf _ | LD _ -> assert false

  (* ---------------------------------------------------------------- *)
  (* Fast consolidation (§4.3)                                         *)
  (* ---------------------------------------------------------------- *)

  (* Applicable when the chain is only data deltas over a leaf base:
     convert the chain (newest first) into {!P.delta} records and let
     the page module resolve visibility and emit the new page with a
     single two-way merge — no full sort, and with packed pages the
     surviving keys keep their byte slices (gap reuse). [None] on
     SMO-bearing chains; the caller falls back to the general replay. *)
  let consolidate_leaf_chain ~tid ?packed ?reuse (head : elem) :
      P.merged option =
    let exception Fallback in
    try
      let rec walk e =
        match e with
        | Leaf b -> (b, [])
        | LD d ->
            cnt tid Counters.Pointer_deref;
            let dd =
              match d.l_op with
              | L_ins (k, v) -> P.Ins (k, v)
              | L_del (k, v) -> P.Del (k, v)
              | L_upd (k, vold, vnew) -> P.Upd (k, vold, vnew)
              | L_split _ | L_merge _ | L_remove -> raise Fallback
            in
            let b, ds = walk d.l_next in
            (b, dd :: ds)
        | Inner _ | ID _ -> raise Fallback
      in
      let b, deltas = walk head in
      Some (P.merge_with_deltas ~tid ?packed ?reuse b.lb_page deltas)
    with Fallback -> None

  (* ---------------------------------------------------------------- *)
  (* Building base nodes                                               *)
  (* ---------------------------------------------------------------- *)

  let leaf_base_of_page t ~tid page ~lo ~hi ~right =
    if Bw_obs.enabled t.o && P.is_packed page then
      Bw_obs.incr t.o ~tid Bw_obs.C_leaf_pack_builds;
    Leaf
      {
        lb_page = page;
        lb_meta = { size = P.length page; depth = 0; lo; hi; right; offset = -1 };
        lb_pre = new_prealloc t.cfg ~leaf:true;
      }

  let inner_base_of_items t items ~lo ~hi ~right =
    let n = Array.length items in
    (* the first separator of an inner node is its own low bound *)
    let seps = Array.map fst items in
    if n > 0 then seps.(0) <- lo;
    Inner
      {
        ib_seps = seps;
        ib_ids = Array.map snd items;
        ib_meta = { size = n; depth = 0; lo; hi; right; offset = -1 };
        ib_pre = new_prealloc t.cfg ~leaf:false;
      }

  (* ---------------------------------------------------------------- *)
  (* Consolidation (§2.3)                                              *)
  (* ---------------------------------------------------------------- *)

  let head_has_smo head =
    let rec go = function
      | Leaf _ | Inner _ -> false
      | LD d -> (
          match d.l_op with
          | L_split _ | L_merge _ | L_remove -> true
          | L_ins _ | L_del _ | L_upd _ -> go d.l_next)
      | ID d -> (
          match d.i_op with
          | I_split _ | I_merge _ | I_remove | I_abort -> true
          | I_ins _ | I_del _ -> go d.i_next)
    in
    go head

  (* A split delta at the head is the only evidence that the new right
     sibling's separator may still be unposted (Stage III pending) —
     help-along in [locate_from] triggers off it. Ordinary appends only
     land on top of one after a traversal has help-completed the split,
     so a BURIED split delta is always a completed split. Paths that
     cannot complete Stage III themselves must therefore leave such
     heads alone: the leaf cache refuses to serve them, consolidation
     skips them and merges give up on such victims. Absorbing the
     evidence early would orphan the right sibling — the parent never
     learns its separator, and the sibling's own split later restarts
     forever against routing that cannot recognize it. *)
  let head_is_split_topped = function
    | LD { l_op = L_split _; _ } | ID { i_op = I_split _; _ } -> true
    | _ -> false

  (* Forward reference, tied to [locate] once the descent exists: run
     clean from-root descents for a key until one completes without a
     [Restart]. Routing for the key then either went through the posted
     separator or help-completed the pending Stage III on the way — so
     afterwards the split delta at that node's head is guaranteed
     absorbed-safe. *)
  let complete_split_for : (t -> tid:int -> key -> unit) ref =
    ref (fun _ ~tid:_ _ -> ())

  (* The baseline consolidation of §2.3 as the paper describes it: replay
     the chain to collect the logical node's items, then sort. Applies to
     chains of plain data deltas (like the fast path); SMO-bearing chains
     fall back to the general gather. *)
  let sort_consolidate_leaf ~tid (head : elem) : (key * value) array option =
    let exception Fallback in
    try
      let pres : (key * value) Growable.t = Growable.create () in
      let dels : (key * value) Growable.t = Growable.create () in
      let take_pending k v =
        let n = Growable.length dels in
        let rec go i =
          if i >= n then false
          else
            let k', v' = Growable.get dels i in
            if K.compare k' k = 0 && V.equal v' v then begin
              Growable.remove_at dels i;
              true
            end
            else go (i + 1)
        in
        go 0
      in
      let rec walk e =
        match e with
        | Leaf b -> b
        | LD d -> (
            cnt tid Counters.Pointer_deref;
            match d.l_op with
            | L_ins (k, v) ->
                if not (take_pending k v) then Growable.push pres (k, v);
                walk d.l_next
            | L_del (k, v) ->
                Growable.push dels (k, v);
                walk d.l_next
            | L_upd (k, vold, vnew) ->
                if not (take_pending k vnew) then Growable.push pres (k, vnew);
                Growable.push dels (k, vold);
                walk d.l_next
            | L_split _ | L_merge _ | L_remove -> raise Fallback)
        | Inner _ | ID _ -> raise Fallback
      in
      let base = walk head in
      let out = Growable.create ~capacity:(P.length base.lb_page + 8) () in
      P.iter_from base.lb_page 0 (fun k v ->
          if not (take_pending k v) then Growable.push out (k, v));
      Growable.iter (fun kv -> Growable.push out kv) pres;
      let items = Growable.to_array out in
      (* the paper's baseline pays a full sort here *)
      Array.sort (fun (a, _) (b, _) -> K.compare a b) items;
      Some items
    with Fallback -> None

  (* Replace a logical node's chain by a freshly-built base node. SMO
     deltas are absorbed: the head meta already carries the post-SMO
     lo/hi/right (Table 1), and the replay truncates/concatenates items
     accordingly. Nodes with a remove delta at the head are skipped — they
     are about to disappear. *)
  let consolidate t ~tid id (head : elem) =
    let m = meta_of head in
    if m.depth = 0 then ()
    else
      match head with
      | LD { l_op = L_remove; _ } | ID { i_op = I_remove | I_abort; _ } -> ()
      | _ ->
          (* A split delta at the head may carry a still-unposted
             separator (Stage III pending — possible when the split was
             posted under a cache hit's empty ancestor path). Absorbing
             it would orphan the right sibling, so complete the split
             first; the CaS below then only absorbs what the descent
             just proved complete (see [head_is_split_topped]). *)
          (match head with
          | LD { l_op = L_split (ks, _); _ } | ID { i_op = I_split (ks, _); _ }
            ->
              !complete_split_for t ~tid ks
          | _ -> ());
          let t0 = if Bw_obs.enabled t.o then Bw_obs.now_ns () else 0 in
          let repl =
            if is_leaf_elem head then begin
              let page =
                if t.cfg.fast_consolidation then
                  match
                    consolidate_leaf_chain ~tid
                      ~packed:t.cfg.packed_leaves head
                  with
                  | Some merged ->
                      if merged.P.m_gap_reused && Bw_obs.enabled t.o then
                        Bw_obs.incr t.o ~tid Bw_obs.C_leaf_gap_reuses;
                      Some merged.P.m_page
                  | None -> None
                else
                  (* the paper's baseline pays the full sort *)
                  Option.map
                    (P.build ~packed:t.cfg.packed_leaves)
                    (sort_consolidate_leaf ~tid head)
              in
              let page =
                match page with
                | Some p -> p
                | None ->
                    P.build ~packed:t.cfg.packed_leaves
                      (Growable.to_array (gather_leaf ~tid head))
              in
              leaf_base_of_page t ~tid page ~lo:m.lo ~hi:m.hi ~right:m.right
            end
            else
              let items = Growable.to_array (gather_inner ~tid head) in
              inner_base_of_items t items ~lo:m.lo ~hi:m.hi ~right:m.right
          in
          if mt_cas t ~tid id ~expect:head ~repl then begin
            sbump t tid f_consolidations;
            if Bw_obs.enabled t.o then begin
              Bw_obs.observe t.o ~tid Bw_obs.Lat_consolidate
                (Bw_obs.now_ns () - t0);
              Bw_obs.incr t.o ~tid Bw_obs.C_consolidations;
              Bw_obs.event t.o ~tid Bw_obs.Ev_consolidate ~a:id ~b:m.depth
            end;
            Epoch.retire t.epoch ~tid (Obj.repr head)
          end

  let rec consolidate_subtree t ~tid id =
    let head = mt_get t ~tid id in
    if not (is_leaf_elem head) then begin
      let children = gather_inner ~tid head in
      Growable.iter (fun (_, cid) -> consolidate_subtree t ~tid cid) children
    end;
    consolidate t ~tid id (mt_get t ~tid id)

  let consolidate_all t = consolidate_subtree t ~tid:0 (Atomic.get t.root)

  (* ---------------------------------------------------------------- *)
  (* Delta append plumbing                                             *)
  (* ---------------------------------------------------------------- *)

  (* find the (left) base node of a chain, for its prealloc marker *)
  let rec chain_base (e : elem) =
    match e with
    | Leaf _ | Inner _ -> e
    | LD d -> chain_base d.l_next
    | ID d -> chain_base d.i_next

  let prealloc_of e =
    match chain_base e with
    | Leaf b -> b.lb_pre
    | Inner b -> b.ib_pre
    | LD _ | ID _ -> assert false

  (* §4.1: claim one pre-allocated slot; on exhaustion force consolidation
     and make the caller retry. *)
  let claim_slot t ~tid id head =
    match prealloc_of head with
    | None -> ()
    | Some pre ->
        let i = Atomic.fetch_and_add pre.used 1 in
        if i >= pre.cap then begin
          sbump t tid f_prealloc_overflows;
          consolidate t ~tid id head;
          raise Restart
        end

  let slot_wasted head =
    match prealloc_of head with
    | None -> ()
    | Some pre -> ignore (Atomic.fetch_and_add pre.wasted 1)

  let head_is_append_blocked = function
    | LD { l_op = L_remove; _ } -> true
    | ID { i_op = I_remove | I_abort; _ } -> true
    | _ -> false

  (* ---------------------------------------------------------------- *)
  (* Inner-node navigation                                             *)
  (* ---------------------------------------------------------------- *)

  type nav = Child of int | Go_right of int

  (* Route [k] within one inner logical node. The caller has already
     verified k < hi of the chain head. *)
  let inner_nav ~tid (head : elem) k : nav =
    let rec go e =
      match e with
      | ID d -> (
          cnt tid Counters.Pointer_deref;
          match d.i_op with
          | I_ins (ks, cid, nsep) ->
              cnt tid Counters.Key_compare;
              if K.compare k ks >= 0 && kb k nsep < 0 then Child cid
              else go d.i_next
          | I_del (_, k0, n0, k2) ->
              if kb k k0 >= 0 && kb k k2 < 0 then Child n0 else go d.i_next
          | I_split (ks, rid) ->
              cnt tid Counters.Key_compare;
              if K.compare k ks >= 0 then Go_right rid else go d.i_next
          | I_merge (km, right, _) ->
              cnt tid Counters.Key_compare;
              if K.compare k km >= 0 then go right else go d.i_next
          | I_remove | I_abort -> go d.i_next)
      | Inner b ->
          let m = b.ib_meta in
          if kb k m.hi >= 0 && m.right <> nil_id then Go_right m.right
          else
            let n = Array.length b.ib_seps in
            let i = sep_index ~tid b.ib_seps n k in
            Child b.ib_ids.(i)
      | Leaf _ | LD _ -> assert false
    in
    go head

  (* Exact routing context from the consolidated view: the separator
     governing [k], its child, and the tight next bound. Used when posting
     SMO records, where stale "next separator" shortcuts would corrupt
     routing. *)
  let inner_locate_exact ~tid (head : elem) k : bound * int * bound =
    let items = gather_inner ~tid head in
    let n = Growable.length items in
    assert (n > 0);
    (* largest i with sep <= k *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if kb k (fst (Growable.get items mid)) >= 0 then lo := mid
      else hi := mid - 1
    done;
    let sep, cid = Growable.get items !lo in
    let nsep =
      if !lo + 1 < n then fst (Growable.get items (!lo + 1))
      else (meta_of head).hi
    in
    (sep, cid, nsep)

  (* ---------------------------------------------------------------- *)
  (* Structure modification: split (Appendix A.1)                      *)
  (* ---------------------------------------------------------------- *)

  (* Posting the separator for a completed half-split into the parent
     (Stage III), or growing a new root when the root itself split. *)
  let rec post_split_separator t ~tid ~parent_path ~left_id ~ks ~rid =
    match parent_path with
    | [] ->
        (* root split: grow the tree by one level *)
        let old_root = Atomic.get t.root in
        if old_root <> left_id then raise Restart;
        let left_head = mt_get t ~tid left_id in
        let lm = meta_of left_head in
        let root =
          Inner
            {
              ib_seps = [| lm.lo; B ks |];
              ib_ids = [| left_id; rid |];
              ib_meta =
                {
                  size = 2;
                  depth = 0;
                  lo = Neg_inf;
                  hi = Pos_inf;
                  right = nil_id;
                  offset = -1;
                };
              ib_pre = new_prealloc t.cfg ~leaf:false;
            }
        in
        let root_id = Mapping_table.allocate t.table root in
        if not (Atomic.compare_and_set t.root old_root root_id) then begin
          Mapping_table.free_id t.table root_id;
          raise Restart
        end
    | (pid, _) :: rest ->
        let rec attempt pid =
          let phead = mt_get t ~tid pid in
          if head_is_append_blocked phead then raise Restart;
          let pm = meta_of phead in
          if kb ks pm.hi >= 0 && pm.right <> nil_id then
            (* the parent itself split; our separator belongs right *)
            attempt pm.right
          else begin
            let sep, cid, nsep = inner_locate_exact ~tid phead ks in
            if cmp_bound sep (B ks) = 0 then ()
              (* separator already posted: split complete *)
            else if cid <> left_id then
              (* the parent no longer routes [ks] to the split node —
                 interference; retry the whole operation *)
              raise Restart
            else begin
              claim_slot t ~tid pid phead;
              let d =
                ID
                  {
                    i_op = I_ins (ks, rid, nsep);
                    i_next = phead;
                    i_meta =
                      {
                        size = pm.size + 1;
                        depth = pm.depth + 1;
                        lo = pm.lo;
                        hi = pm.hi;
                        right = pm.right;
                        offset = -1;
                      };
                  }
              in
              if not (mt_cas t ~tid pid ~expect:phead ~repl:d) then begin
                sbump t tid f_failed_cas;
                slot_wasted phead;
                raise Restart
              end;
              post_append_inner t ~tid pid d rest
            end
          end
        in
        attempt pid

  (* Post-append housekeeping shared by all inner-delta writers. *)
  and post_append_inner t ~tid id (head : elem) parent_path =
    let m = meta_of head in
    if m.size > t.cfg.inner_max then split_node t ~tid id head parent_path
    else if m.depth >= t.cfg.inner_chain_max then consolidate t ~tid id head

  (* Split one logical node (leaf or inner). Stage I builds the new right
     sibling and publishes it in the mapping table; Stage II posts the
     split delta; Stage III posts the separator to the parent. *)
  and split_node t ~tid id (head : elem) parent_path =
    let m = meta_of head in
    if head_is_append_blocked head then ()
    else if is_leaf_elem head then begin
      let items = Growable.to_array (gather_leaf ~tid head) in
      let n = Array.length items in
      if n <= t.cfg.leaf_max then ()
      else begin
        (* choose a split point that does not separate equal keys *)
        let pos = ref (n / 2) in
        while
          !pos < n && K.compare (fst items.(!pos - 1)) (fst items.(!pos)) = 0
        do
          incr pos
        done;
        if !pos >= n then ()
        else begin
          let ks = fst items.(!pos) in
          let right =
            leaf_base_of_page t ~tid
              (P.build_sub ~packed:t.cfg.packed_leaves items ~pos:!pos
                 ~len:(n - !pos))
              ~lo:(B ks) ~hi:m.hi ~right:m.right
          in
          let rid = Mapping_table.allocate t.table right in
          cnt tid Counters.Allocation;
          let d =
            LD
              {
                l_op = L_split (ks, rid);
                l_next = head;
                l_meta =
                  {
                    size = !pos;
                    depth = m.depth + 1;
                    lo = m.lo;
                    hi = B ks;
                    right = rid;
                    offset = -1;
                  };
              }
          in
          if not (mt_cas t ~tid id ~expect:head ~repl:d) then begin
            sbump t tid f_failed_cas;
            Mapping_table.free_id t.table rid
          end
          else begin
            sbump t tid f_splits;
            smo_bump t;
            if Bw_obs.enabled t.o then begin
              Bw_obs.incr t.o ~tid Bw_obs.C_splits;
              Bw_obs.event t.o ~tid Bw_obs.Ev_split ~a:id ~b:rid
            end;
            (* Stage III. A cache-hit append carries no ancestor path; an
               empty path on a non-root node would otherwise fall into
               [post_split_separator]'s root-grow branch, raise, and leave
               the right sibling orphaned (the caller swallows Restarts —
               the append itself already linearized). Complete through
               clean from-root descents instead. *)
            (match parent_path with
            | [] when Atomic.get t.root <> id ->
                !complete_split_for t ~tid ks
            | _ -> post_split_separator t ~tid ~parent_path ~left_id:id ~ks ~rid)
          end
        end
      end
    end
    else begin
      let items = Growable.to_array (gather_inner ~tid head) in
      let n = Array.length items in
      if n <= t.cfg.inner_max then ()
      else begin
        let pos = n / 2 in
        match fst items.(pos) with
        | Neg_inf | Pos_inf -> ()
        | B ks ->
            let right_items = Array.sub items pos (n - pos) in
            let right =
              inner_base_of_items t right_items ~lo:(B ks) ~hi:m.hi
                ~right:m.right
            in
            let rid = Mapping_table.allocate t.table right in
            cnt tid Counters.Allocation;
            let d =
              ID
                {
                  i_op = I_split (ks, rid);
                  i_next = head;
                  i_meta =
                    {
                      size = pos;
                      depth = m.depth + 1;
                      lo = m.lo;
                      hi = B ks;
                      right = rid;
                      offset = -1;
                    };
                }
            in
            if not (mt_cas t ~tid id ~expect:head ~repl:d) then begin
              sbump t tid f_failed_cas;
              Mapping_table.free_id t.table rid
            end
            else begin
              sbump t tid f_splits;
              smo_bump t;
              if Bw_obs.enabled t.o then begin
                Bw_obs.incr t.o ~tid Bw_obs.C_splits;
                Bw_obs.event t.o ~tid Bw_obs.Ev_split ~a:id ~b:rid
              end;
              (match parent_path with
              | [] when Atomic.get t.root <> id ->
                  !complete_split_for t ~tid ks
              | _ ->
                  post_split_separator t ~tid ~parent_path ~left_id:id ~ks
                    ~rid)
            end
      end
    end

  (* ---------------------------------------------------------------- *)
  (* Structure modification: merge (Appendix A.2 + B)                  *)
  (* ---------------------------------------------------------------- *)

  (* When the root inner node is down to one child that is itself an inner
     node, make that child the new root (the inverse of a root split). *)
  and collapse_root t ~tid root_id =
    if Atomic.get t.root = root_id then begin
      let head = mt_get t ~tid root_id in
      let m = meta_of head in
      if m.size = 1 && not (is_leaf_elem head) && not (head_has_smo head)
      then begin
        let items = gather_inner ~tid head in
        if Growable.length items = 1 then begin
          let _, cid = Growable.get items 0 in
          let child = mt_get t ~tid cid in
          if not (is_leaf_elem child) then
            if Atomic.compare_and_set t.root root_id cid then begin
              smo_bump t;
              if Bw_obs.enabled t.o then begin
                Bw_obs.incr t.o ~tid Bw_obs.C_root_collapses;
                Bw_obs.event t.o ~tid Bw_obs.Ev_root_collapse ~a:root_id
                  ~b:cid
              end;
              Epoch.retire t.epoch ~tid (Obj.repr head)
            end
        end
      end
    end

  (* Merge [id] into its left sibling. The ∆abort on the parent is posted
     FIRST (Appendix B): it write-locks the parent so no concurrent split
     or merge can move the separators out from under us; every further CaS
     on the parent below is then guaranteed to succeed. All other failures
     roll back cleanly. *)
  and merge_node t ~tid id (_head : elem) parent_path =
    match parent_path with
    | [] -> () (* the root does not merge *)
    | (pid, _) :: _rest ->
        let phead = mt_get t ~tid pid in
        if head_is_append_blocked phead then ()
        else begin
          let pm = meta_of phead in
          let abort_d =
            ID
              {
                i_op = I_abort;
                i_next = phead;
                i_meta = { pm with depth = pm.depth + 1 };
              }
          in
          if not (mt_cas t ~tid pid ~expect:phead ~repl:abort_d) then
            sbump t tid f_failed_cas
          else begin
            let unlock_parent () =
              let ok = mt_cas t ~tid pid ~expect:abort_d ~repl:phead in
              assert ok
            in
            (* re-read our node under the parent lock *)
            let nhead = mt_get t ~tid id in
            let nm = meta_of nhead in
            let give_up () = unlock_parent () in
            if
              head_is_append_blocked nhead
              || head_is_split_topped nhead
              || nm.size >= t.cfg.leaf_min
                 && is_leaf_elem nhead
              || nm.size >= t.cfg.inner_min
                 && not (is_leaf_elem nhead)
            then give_up ()
            else
              match nm.lo with
              | Neg_inf | Pos_inf -> give_up () (* leftmost: no left sibling *)
              | B merge_key -> (
                  (* locate our separator and our left sibling in the
                     write-locked parent *)
                  let items = gather_inner ~tid phead in
                  let n = Growable.length items in
                  let idx = ref (-1) in
                  for i = 0 to n - 1 do
                    if snd (Growable.get items i) = id then idx := i
                  done;
                  if !idx <= 0 then give_up ()
                  else begin
                    let k0, lid = Growable.get items (!idx - 1) in
                    let k1 = fst (Growable.get items !idx) in
                    if cmp_bound k1 (B merge_key) <> 0 then give_up ()
                    else begin
                      let k2 =
                        if !idx + 1 < n then fst (Growable.get items (!idx + 1))
                        else pm.hi
                      in
                      (* Stage I: remove delta on the victim *)
                      let rem =
                        if is_leaf_elem nhead then
                          LD
                            {
                              l_op = L_remove;
                              l_next = nhead;
                              l_meta = { nm with depth = nm.depth + 1 };
                            }
                        else
                          ID
                            {
                              i_op = I_remove;
                              i_next = nhead;
                              i_meta = { nm with depth = nm.depth + 1 };
                            }
                      in
                      if not (mt_cas t ~tid id ~expect:nhead ~repl:rem) then begin
                        sbump t tid f_failed_cas;
                        give_up ()
                      end
                      else begin
                        let undo_remove () =
                          let ok = mt_cas t ~tid id ~expect:rem ~repl:nhead in
                          assert ok
                        in
                        (* Stage II: merge delta on the left sibling *)
                        let lhead = mt_get t ~tid lid in
                        let lm = meta_of lhead in
                        if
                          head_is_append_blocked lhead
                          || cmp_bound lm.hi (B merge_key) <> 0
                          || lm.right <> id
                          || is_leaf_elem lhead <> is_leaf_elem nhead
                        then begin
                          undo_remove ();
                          give_up ()
                        end
                        else begin
                          let merged_meta =
                            {
                              size = lm.size + nm.size;
                              depth = lm.depth + 1;
                              lo = lm.lo;
                              hi = nm.hi;
                              right = nm.right;
                              offset = -1;
                            }
                          in
                          let merge_d =
                            if is_leaf_elem lhead then
                              LD
                                {
                                  l_op = L_merge (merge_key, nhead, id);
                                  l_next = lhead;
                                  l_meta = merged_meta;
                                }
                            else
                              ID
                                {
                                  i_op = I_merge (merge_key, nhead, id);
                                  i_next = lhead;
                                  i_meta = merged_meta;
                                }
                          in
                          if not (mt_cas t ~tid lid ~expect:lhead ~repl:merge_d)
                          then begin
                            sbump t tid f_failed_cas;
                            undo_remove ();
                            give_up ()
                          end
                          else begin
                            (* Stage III: atomically drop the ∆abort and
                               post the separator delete *)
                            let del_d =
                              ID
                                {
                                  i_op = I_del (merge_key, k0, lid, k2);
                                  i_next = phead;
                                  i_meta =
                                    {
                                      size = pm.size - 1;
                                      depth = pm.depth + 1;
                                      lo = pm.lo;
                                      hi = pm.hi;
                                      right = pm.right;
                                      offset = -1;
                                    };
                                }
                            in
                            let ok =
                              mt_cas t ~tid pid ~expect:abort_d ~repl:del_d
                            in
                            assert ok;
                            sbump t tid f_merges;
                            smo_bump t;
                            if Bw_obs.enabled t.o then begin
                              Bw_obs.incr t.o ~tid Bw_obs.C_merges;
                              Bw_obs.event t.o ~tid Bw_obs.Ev_merge ~a:id
                                ~b:lid
                            end;
                            (* The removed node's id stays allocated: a
                               concurrent reader may still hold it, and id
                               recycling would require epoch-deferred
                               frees. The mapping table entry itself is
                               one word. *)
                            ignore k1;
                            (* housekeeping for the parent: consolidate a
                               long chain, cascade the merge upward on
                               underflow, or shrink the tree when the
                               root is down to a single inner child *)
                            let rest = List.tl parent_path in
                            let dm = meta_of del_d in
                            if dm.size < t.cfg.inner_min && rest <> [] then
                              merge_node t ~tid pid del_d rest
                            else if rest = [] && dm.size = 1 then
                              collapse_root t ~tid pid
                            else if dm.depth >= t.cfg.inner_chain_max then
                              consolidate t ~tid pid del_d
                          end
                        end
                      end
                    end
                  end)
          end
        end

  (* ---------------------------------------------------------------- *)
  (* Descent                                                           *)
  (* ---------------------------------------------------------------- *)

  (* Walk from [start] down to the leaf logical node owning [k], helping
     unfinished SMOs along the way (the help-along protocol, §2.4).
     [parent_path] must hold [start]'s ancestors, nearest first (empty
     when starting at the root). Returns the ancestor path and the
     leaf's (id, head) snapshot. The batch path re-enters here from a
     cached ancestor; if that ancestor has since been merged away its
     head carries a remove delta and the walk restarts from the root. *)
  let locate_from t ~tid k ~start ~parent_path =
    let rec down id parent_path =
      cnt tid Counters.Node_visit;
      let head = mt_get t ~tid id in
      (match head with
      | LD { l_op = L_split (ks, rid); _ } | ID { i_op = I_split (ks, rid); _ }
        ->
          (* unfinished half-split at the head: help post the separator
             before traversing (best effort; Restart on interference) *)
          sbump t tid f_smo_helps;
          post_split_separator t ~tid ~parent_path ~left_id:id ~ks ~rid
      | LD { l_op = L_remove; _ } | ID { i_op = I_remove; _ } ->
          (* node being merged away: its merging thread is mid-protocol;
             back off and retry from the root *)
          raise Restart
      | _ -> ());
      let m = meta_of head in
      if kb k m.hi >= 0 && m.right <> nil_id then
        (* B-link right move: the split separator may not be posted yet *)
        down m.right parent_path
      else if is_leaf_elem head then (parent_path, id, head)
      else
        match inner_nav ~tid head k with
        | Child cid -> down cid ((id, head) :: parent_path)
        | Go_right rid -> down rid parent_path
    in
    down start parent_path

  let locate t ~tid k =
    locate_from t ~tid k ~start:(Atomic.get t.root) ~parent_path:[]

  (* Tie the forward knot: consolidation (defined before the descent)
     completes a head split's Stage III by descending for the split key
     until a traversal runs clean. Recursion through the ref is bounded
     by tree height: the descent's own help-along may consolidate
     ancestors, whose pending splits sit one level up. *)
  let () =
    complete_split_for :=
      fun t ~tid k ->
        let rec go () =
          match locate t ~tid k with
          | _ -> ()
          | exception Restart ->
              sbump t tid f_restarts;
              cnt tid Counters.Restart;
              Domain.cpu_relax ();
              go ()
        in
        go ()

  (* ---------------------------------------------------------------- *)
  (* Leaf cache: O(1) point-op descent skipping (ROADMAP item 3)       *)
  (* ---------------------------------------------------------------- *)

  (* Publish-then-validate, like every other shared structure here. A
     fill publishes the leaf a real descent just returned; a probe
     validates the entry against the *current* tree before trusting it:
     re-read the head through the mapping table (leaf PIDs are never
     recycled once published, so the cell always names the same logical
     node), require a leaf that is neither remove-blocked nor topped by
     a split delta (whose Stage III only a real descent can complete —
     see [head_is_split_topped]), and re-check [lo <= k < hi] on its
     current meta. That is exactly the invariant
     [locate] establishes, so a validated hit is interchangeable with a
     descent — except the ancestor path is unknown ([]), which only
     degrades SMO housekeeping: a split posted under an empty path
     leaves Stage III to the next descent's help-along.

     The SMO stamp is the fast-invalidation hint: entries filled before
     the latest split/merge/root-collapse are re-stamped when they
     survive validation, dropped when they fail it. The mapping-table
     re-read is what makes this sound — a stamp alone cannot be, since
     a Stage-II CAS lands before the stamp advances. *)

  (* Base index of [k]'s slot triple. [Hashtbl.hash] is non-negative,
     so -1 is a safe empty-slot fingerprint. *)
  let lc_base t h = 3 * (h land t.lc_mask)

  (* Store the leaf a descent for [k] just returned.

     Write traffic is the cache's whole overhead budget: when hits are
     rare (uniform keys, or a deliberately undersized cache) every op
     is a miss and a naive always-write fill turns the slot cache
     lines into multi-thread ping-pong. Damping rules keep the miss
     path nearly read-only:
     - same key, same leaf, same SMO stamp: skip the write entirely;
     - a different key's entry: evict only every 8th conflicting miss
       per thread (sampled replacement). A genuinely hot key still
       claims its slot within a few misses, while thrash-prone
       workloads stop paying coherence traffic for entries that would
       never hit.
     Replacing another key's entry is an eviction, counted as an
     invalidation so occupancy arithmetic stays honest. *)
  let lc_fill t ~tid k ~id =
    if lc_enabled t then begin
      let h = Hashtbl.hash k in
      let b = lc_base t h in
      let fp = Array.unsafe_get t.lcache b in
      if fp = h then begin
        let stamp = Atomic.get t.smo_epoch in
        if t.lcache.(b + 1) <> id || t.lcache.(b + 2) <> stamp then begin
          t.lcache.(b + 1) <- id;
          t.lcache.(b + 2) <- stamp
        end
      end
      else if fp < 0 then begin
        t.lcache.(b + 1) <- id;
        t.lcache.(b + 2) <- Atomic.get t.smo_epoch;
        t.lcache.(b) <- h
      end
      else begin
        sbump t tid f_lc_tick;
        if t.st.(tid).(f_lc_tick) land 7 = 0 then begin
          sbump t tid f_lc_inval;
          if Bw_obs.enabled t.o then
            Bw_obs.incr t.o ~tid Bw_obs.C_leaf_cache_invalidations;
          t.lcache.(b + 1) <- id;
          t.lcache.(b + 2) <- Atomic.get t.smo_epoch;
          t.lcache.(b) <- h
        end
      end
    end

  (* Validated probe: [Some (id, head)] only when the slot's
     fingerprint matches [k] and the current head still proves
     ownership (leaf, not append-blocked, no unfinished split on top,
     and [k] inside its *current* separator range). A failed
     validation drops the entry (stale verify + invalidation); a slot
     fingerprinted by a different key is a plain miss and is left
     alone — it may still serve its own key. *)
  let lc_probe t ~tid k =
    if not (lc_enabled t) then None
    else
      let h = Hashtbl.hash k in
      let b = lc_base t h in
      if Array.unsafe_get t.lcache b <> h then None
      else begin
        (* read pid once: a racing fill could swap it between the
           mapping-table read and the return *)
        let pid = t.lcache.(b + 1) in
        let head = mt_get t ~tid pid in
        let m = meta_of head in
        if
          is_leaf_elem head
          && (not (head_is_append_blocked head))
          && (not (head_is_split_topped head))
          && kb k m.lo >= 0
          && kb k m.hi < 0
        then begin
          let stamp = Atomic.get t.smo_epoch in
          (* survived validation across an SMO: re-stamp so the next
             fill for this key stays write-free *)
          if t.lcache.(b + 2) <> stamp then t.lcache.(b + 2) <- stamp;
          Some (pid, head)
        end
        else begin
          sbump t tid f_lc_stale;
          sbump t tid f_lc_inval;
          t.lcache.(b) <- -1;
          if Bw_obs.enabled t.o then begin
            Bw_obs.incr t.o ~tid Bw_obs.C_leaf_cache_stale_verifies;
            Bw_obs.incr t.o ~tid Bw_obs.C_leaf_cache_invalidations
          end;
          None
        end
      end

  (* The point-op descent: try the cache, fall back to [locate] and fill
     from what it found. Shape-compatible with [locate]; a hit's empty
     ancestor path is safe for every caller (see above). *)
  let lc_count_hit t ~tid =
    sbump t tid f_lc_hits;
    if Bw_obs.enabled t.o then Bw_obs.incr t.o ~tid Bw_obs.C_leaf_cache_hits

  let lc_count_miss t ~tid =
    if lc_enabled t then begin
      sbump t tid f_lc_misses;
      if Bw_obs.enabled t.o then
        Bw_obs.incr t.o ~tid Bw_obs.C_leaf_cache_misses
    end

  let locate_refill t ~tid k =
    let (_, id, _) as loc = locate t ~tid k in
    lc_fill t ~tid k ~id;
    loc

  (* Adaptive bypass: the acceptance bar says a workload the cache
     cannot help (near-zero hit rate — uniform keys over a deliberately
     undersized cache) must not pay for it. Per thread, watch the hit
     rate over a window of [lc_window] probes; if fewer than 1/8 of
     them hit, descend without probing or filling for the next
     [lc_bypass_len] point ops, then re-open a window. Steady-state
     overhead on a hopeless workload is one branch per op plus a short
     probing burst every [lc_bypass_len] ops (~1/9 of the ungated
     cost), while any workload whose hit rate clears breakeven (~25%)
     keeps the cache fully engaged. All gate state is owner-written
     per-thread scratch — no shared writes. *)
  let lc_window = 128
  let lc_bypass_len = 1024

  let lc_window_step t ~tid ~hit =
    let row = t.st.(tid) in
    if hit then row.(f_lc_winh) <- row.(f_lc_winh) + 1;
    let w = row.(f_lc_win) + 1 in
    if w < lc_window then row.(f_lc_win) <- w
    else begin
      if row.(f_lc_winh) * 8 < lc_window then
        row.(f_lc_bypass) <- lc_bypass_len;
      row.(f_lc_win) <- 0;
      row.(f_lc_winh) <- 0
    end

  let locate_cached t ~tid k =
    if not (lc_enabled t) then locate t ~tid k
    else if t.st.(tid).(f_lc_bypass) > 0 then begin
      t.st.(tid).(f_lc_bypass) <- t.st.(tid).(f_lc_bypass) - 1;
      locate t ~tid k
    end
    else
      match lc_probe t ~tid k with
      | Some (id, head) ->
          lc_count_hit t ~tid;
          lc_window_step t ~tid ~hit:true;
          ([], id, head)
      | None ->
          lc_count_miss t ~tid;
          lc_window_step t ~tid ~hit:false;
          locate_refill t ~tid k

  (* The retry path after a [Restart] must NOT re-probe the cache: a hit
     can keep serving the exact leaf whose unfinished SMO the restart is
     waiting on. Concretely: a split posted under a hit's empty ancestor
     path leaves Stage III to help-along, and once the left node's
     prealloc arena is exhausted every append attempt consolidates —
     which refuses chains with a pending SMO — and restarts; only a
     from-root descent help-completes the separator and unblocks the
     node. Re-probing would validate the same entry forever (the head is
     a live, in-range leaf) and livelock. So each op consults the cache
     on its first attempt only; retries descend for real, which both
     guarantees progress and repairs the cache via the refill. *)
  let locate_attempt t ~tid first k =
    if !first then begin
      first := false;
      locate_cached t ~tid k
    end
    else locate_refill t ~tid k

  (* ---------------------------------------------------------------- *)
  (* Leaf probing (existence / visibility, §3.1 + §4.4)                *)
  (* ---------------------------------------------------------------- *)

  type probe = {
    p_found : bool;
    p_values : value list;  (* visible values of the key, newest first *)
    p_offset : int;  (* base position for the new delta, -1 if unknown *)
  }

  (* Shared base-node search: clamp the §4.4 shortcut range to the page
     and run the one {!Leaf_page} lower bound. [leaf_probe_cmps] charges
     the search's deterministic comparison bound. *)
  let base_search t ~tid pg k ~smin ~smax =
    let n = P.length pg in
    let lo0 = if t.cfg.search_shortcuts then min smin n else 0 in
    let hi0 = if t.cfg.search_shortcuts then min smax n else n in
    let lo0, hi0 = if lo0 > hi0 then (0, n) else (lo0, hi0) in
    if Bw_obs.enabled t.o then
      Bw_obs.add t.o ~tid Bw_obs.C_leaf_probe_cmps
        (P.search_cost_n (hi0 - lo0));
    P.lower_bound_in ~tid pg k ~lo:lo0 ~hi:hi0

  (* Unique-key probe (§3.1: short-circuits at the first delta carrying
     the key). The hot read path: no scratch buffers, at most one result
     value, base search through the packed page. Tracks the §4.4
     shortcut range and the §4.3 offset like the non-unique walker. *)
  let probe_leaf_unique t ~tid (head : elem) k : probe =
    (* §4.4 search shortcut range over the base node *)
    let smin = ref 0 and smax = ref max_int in
    let narrow d k' =
      if t.cfg.search_shortcuts && d.l_meta.offset >= 0 then begin
        let c = K.compare k k' in
        if c = 0 then begin
          smin := d.l_meta.offset;
          smax := d.l_meta.offset
        end
        else if c > 0 then begin
          if d.l_meta.offset > !smin then smin := d.l_meta.offset
        end
        else if d.l_meta.offset < !smax then smax := d.l_meta.offset
      end
    in
    (* -1 = not yet known; -2 = poisoned: the walk crossed a merge delta,
       so recorded offsets no longer describe the base we will search *)
    let delta_offset = ref (-1) in
    (* offset to report when short-circuiting at delta [d]: its recorded
       offset, unless the walk already crossed a merge (poisoned) *)
    let eff_offset d = if !delta_offset = -2 then -1 else d.l_meta.offset in
    let rec walk e =
      match e with
      | LD d -> (
          cnt tid Counters.Pointer_deref;
          match d.l_op with
          | L_ins (k', v) ->
              let c = K.compare k k' in
              cnt tid Counters.Key_compare;
              narrow d k';
              if c = 0 then
                { p_found = true; p_values = [ v ]; p_offset = eff_offset d }
              else walk d.l_next
          | L_del (k', v) ->
              ignore v;
              let c = K.compare k k' in
              cnt tid Counters.Key_compare;
              narrow d k';
              if c = 0 then
                { p_found = false; p_values = []; p_offset = eff_offset d }
              else walk d.l_next
          | L_upd (k', _, vnew) ->
              let c = K.compare k k' in
              cnt tid Counters.Key_compare;
              narrow d k';
              if c = 0 then
                { p_found = true; p_values = [ vnew ]; p_offset = eff_offset d }
              else walk d.l_next
          | L_split (ks, _) ->
              (* keys >= ks moved right; the caller's entry check already
                 ensured k < ks, so just continue *)
              ignore ks;
              walk d.l_next
          | L_merge (km, right, _) ->
              cnt tid Counters.Key_compare;
              (* offsets into the left base are meaningless from here on *)
              delta_offset := -2;
              if K.compare k km >= 0 then walk right else walk d.l_next
          | L_remove -> walk d.l_next)
      | Leaf b ->
          let pg = b.lb_page in
          let pos = base_search t ~tid pg k ~smin:!smin ~smax:!smax in
          let offset = if !delta_offset = -2 then -1 else pos in
          let kc = P.keys pg in
          if pos < Array.length kc && K.compare (Array.unsafe_get kc pos) k = 0
          then
            {
              p_found = true;
              p_values = [ Array.unsafe_get (P.values pg) pos ];
              p_offset = offset;
            }
          else { p_found = false; p_values = []; p_offset = offset }
      | Inner _ | ID _ -> assert false
    in
    walk head

  (* Non-unique probe: gather the S_present/S_deleted multisets walking
     new-to-old (the §3.1 visibility rule; multiset variant, see
     consolidate_leaf_chain). *)
  let probe_leaf_sets t ~tid (head : elem) k : probe =
    let pres : value Growable.t = Growable.create () in
    let dels : value Growable.t = Growable.create () in
    (* consume one pending delete of [v]; false if none *)
    let take_pending v =
      let n = Growable.length dels in
      let rec go i =
        if i >= n then false
        else if V.equal (Growable.get dels i) v then begin
          Growable.remove_at dels i;
          true
        end
        else go (i + 1)
      in
      go 0
    in
    let smin = ref 0 and smax = ref max_int in
    let narrow d k' =
      if t.cfg.search_shortcuts && d.l_meta.offset >= 0 then begin
        let c = K.compare k k' in
        if c = 0 then begin
          smin := d.l_meta.offset;
          smax := d.l_meta.offset
        end
        else if c > 0 then begin
          if d.l_meta.offset > !smin then smin := d.l_meta.offset
        end
        else if d.l_meta.offset < !smax then smax := d.l_meta.offset
      end
    in
    let delta_offset = ref (-1) in
    let note_offset d =
      if !delta_offset = -1 then delta_offset := d.l_meta.offset
    in
    let rec walk e =
      match e with
      | LD d -> (
          cnt tid Counters.Pointer_deref;
          match d.l_op with
          | L_ins (k', v) ->
              let c = K.compare k k' in
              cnt tid Counters.Key_compare;
              narrow d k';
              if c = 0 then begin
                note_offset d;
                if not (take_pending v) then Growable.push pres v
              end;
              walk d.l_next
          | L_del (k', v) ->
              let c = K.compare k k' in
              cnt tid Counters.Key_compare;
              narrow d k';
              if c = 0 then begin
                note_offset d;
                Growable.push dels v
              end;
              walk d.l_next
          | L_upd (k', vold, vnew) ->
              let c = K.compare k k' in
              cnt tid Counters.Key_compare;
              narrow d k';
              if c = 0 then begin
                note_offset d;
                if not (take_pending vnew) then Growable.push pres vnew;
                Growable.push dels vold
              end;
              walk d.l_next
          | L_split (ks, _) ->
              ignore ks;
              walk d.l_next
          | L_merge (km, right, _) ->
              cnt tid Counters.Key_compare;
              delta_offset := -2;
              if K.compare k km >= 0 then walk right else walk d.l_next
          | L_remove -> walk d.l_next)
      | Leaf b ->
          let pg = b.lb_page in
          let n = P.length pg in
          let pos = base_search t ~tid pg k ~smin:!smin ~smax:!smax in
          let base_vals = ref [] in
          let i = ref pos in
          while !i < n && K.compare (P.key pg !i) k = 0 do
            base_vals := P.value pg !i :: !base_vals;
            incr i
          done;
          let offset =
            if !delta_offset = -2 then -1
            else if !delta_offset >= 0 then !delta_offset
            else pos
          in
          let surviving_base =
            List.filter (fun v -> not (take_pending v)) !base_vals
          in
          let visible =
            (Growable.to_array pres |> Array.to_list) @ surviving_base
          in
          { p_found = visible <> []; p_values = visible; p_offset = offset }
      | Inner _ | ID _ -> assert false
    in
    walk head

  let probe_leaf t ~tid (head : elem) k : probe =
    if t.cfg.unique_keys then probe_leaf_unique t ~tid head k
    else probe_leaf_sets t ~tid head k

  (* ---------------------------------------------------------------- *)
  (* Epoch wrapper and retry loop                                      *)
  (* ---------------------------------------------------------------- *)

  let with_epoch t ~tid f =
    cnt tid Counters.Epoch_enter;
    Epoch.op_begin t.epoch ~tid;
    Fun.protect ~finally:(fun () -> Epoch.op_end t.epoch ~tid) f

  let rec retry_loop t ~tid f =
    try f () with
    | Restart ->
        sbump t tid f_restarts;
        cnt tid Counters.Restart;
        Domain.cpu_relax ();
        retry_loop t ~tid f

  (* Record one public operation's wall time and how many root restarts it
     took. With the null sink this is the one extra branch the ISSUE's
     overhead budget allows; with a live sink it reads the clock twice and
     writes only this thread's stripe. *)
  let timed t ~tid series f =
    match t.o with
    | Bw_obs.Null -> f ()
    | Bw_obs.To _ as s ->
        let t0 = Bw_obs.now_ns () in
        let r0 = t.st.(tid).(f_restarts) in
        let x = f () in
        Bw_obs.observe s ~tid series (Bw_obs.now_ns () - t0);
        Bw_obs.observe s ~tid Bw_obs.Val_op_restarts
          (t.st.(tid).(f_restarts) - r0);
        x

  (* ---------------------------------------------------------------- *)
  (* Leaf writes                                                       *)
  (* ---------------------------------------------------------------- *)

  (* Housekeeping after a successful delta append. The operation is
     already linearized, so interference here (failed CaS inside a split's
     Stage III, a blocked parent) must NOT replay it: unfinished SMOs are
     completed by help-along on later traversals (§2.4). *)
  let post_append_leaf t ~tid id (head : elem) parent_path ~check_underflow =
    try
      let m = meta_of head in
      if m.size > t.cfg.leaf_max then split_node t ~tid id head parent_path
      else if m.depth >= t.cfg.leaf_chain_max then consolidate t ~tid id head
      else if check_underflow && m.size < t.cfg.leaf_min then
        merge_node t ~tid id head parent_path
    with Restart -> cnt tid Counters.Restart

  (* §6.3 "disable delta updates": rewrite the leaf base copy-on-write
     instead of appending a delta. Only valid when the chain is a bare
     base (single-threaded experiments consolidate eagerly). *)
  let try_inplace_insert t ~tid id (head : elem) parent_path k v =
    match head with
    | Leaf b ->
        let pg = b.lb_page in
        let pos = P.lower_bound ~tid pg k in
        let repl =
          Leaf
            {
              b with
              lb_page = P.with_inserted pg pos k v;
              lb_meta = { b.lb_meta with size = P.length pg + 1 };
            }
        in
        if not (mt_cas t ~tid id ~expect:head ~repl) then begin
          sbump t tid f_failed_cas;
          raise Restart
        end;
        post_append_leaf t ~tid id repl parent_path ~check_underflow:false;
        Some repl
    | _ -> None

  (* The write cores take an already-located leaf, so the point ops
     (locate-then-core) and the batch path (which reuses the previous
     traversal) share one copy of the delta-append protocol. Each
     returns the point-op boolean plus the head under which the outcome
     is current — the appended delta on success — so the batch path can
     keep probing without re-reading the mapping-table cell. *)
  let insert_core t ~tid parent_path id head k v =
    let p = probe_leaf t ~tid head k in
    let duplicate =
      if t.cfg.unique_keys then p.p_found
      else List.exists (V.equal v) p.p_values
    in
    if duplicate then (false, head)
    else
      match
        if t.cfg.inplace_leaf_update then
          try_inplace_insert t ~tid id head parent_path k v
        else None
      with
      | Some repl -> (true, repl)
      | None ->
          if head_is_append_blocked head then raise Restart;
          claim_slot t ~tid id head;
          let m = meta_of head in
          let d =
            LD
              {
                l_op = L_ins (k, v);
                l_next = head;
                l_meta =
                  {
                    size = m.size + 1;
                    depth = m.depth + 1;
                    lo = m.lo;
                    hi = m.hi;
                    right = m.right;
                    offset = p.p_offset;
                  };
              }
          in
          cnt tid Counters.Allocation;
          if not (mt_cas t ~tid id ~expect:head ~repl:d) then begin
            sbump t tid f_failed_cas;
            slot_wasted head;
            raise Restart
          end;
          post_append_leaf t ~tid id d parent_path ~check_underflow:false;
          (true, d)

  let insert_body t ~tid k v =
    with_epoch t ~tid @@ fun () ->
    let first = ref true in
    retry_loop t ~tid @@ fun () ->
    let parent_path, id, head = locate_attempt t ~tid first k in
    fst (insert_core t ~tid parent_path id head k v)

  let delete_core t ~tid parent_path id head k v =
    let p = probe_leaf t ~tid head k in
    let present =
      if t.cfg.unique_keys then p.p_found
      else List.exists (V.equal v) p.p_values
    in
    if not present then (false, head)
    else begin
      if head_is_append_blocked head then raise Restart;
      claim_slot t ~tid id head;
      let m = meta_of head in
      (* in unique mode, delete whichever value is current *)
      let victim =
        if t.cfg.unique_keys then List.hd p.p_values else v
      in
      let d =
        LD
          {
            l_op = L_del (k, victim);
            l_next = head;
            l_meta =
              {
                size = m.size - 1;
                depth = m.depth + 1;
                lo = m.lo;
                hi = m.hi;
                right = m.right;
                offset = p.p_offset;
              };
          }
      in
      cnt tid Counters.Allocation;
      if not (mt_cas t ~tid id ~expect:head ~repl:d) then begin
        sbump t tid f_failed_cas;
        slot_wasted head;
        raise Restart
      end;
      post_append_leaf t ~tid id d parent_path ~check_underflow:true;
      (true, d)
    end

  let delete_body t ~tid k v =
    with_epoch t ~tid @@ fun () ->
    let first = ref true in
    retry_loop t ~tid @@ fun () ->
    let parent_path, id, head = locate_attempt t ~tid first k in
    fst (delete_core t ~tid parent_path id head k v)

  let update_core t ~tid parent_path id head k v =
    let p = probe_leaf t ~tid head k in
    if not p.p_found then (false, head)
    else begin
      if head_is_append_blocked head then raise Restart;
      claim_slot t ~tid id head;
      let m = meta_of head in
      let vold = List.hd p.p_values in
      let d =
        LD
          {
            l_op = L_upd (k, vold, v);
            l_next = head;
            l_meta =
              {
                size = m.size;
                depth = m.depth + 1;
                lo = m.lo;
                hi = m.hi;
                right = m.right;
                offset = p.p_offset;
              };
          }
      in
      cnt tid Counters.Allocation;
      if not (mt_cas t ~tid id ~expect:head ~repl:d) then begin
        sbump t tid f_failed_cas;
        slot_wasted head;
        raise Restart
      end;
      post_append_leaf t ~tid id d parent_path ~check_underflow:false;
      (true, d)
    end

  let update_body t ~tid k v =
    with_epoch t ~tid @@ fun () ->
    let first = ref true in
    retry_loop t ~tid @@ fun () ->
    let parent_path, id, head = locate_attempt t ~tid first k in
    fst (update_core t ~tid parent_path id head k v)

  (* ---------------------------------------------------------------- *)
  (* Reads                                                             *)
  (* ---------------------------------------------------------------- *)

  let lookup_body t ~tid k =
    with_epoch t ~tid @@ fun () ->
    let first = ref true in
    retry_loop t ~tid @@ fun () ->
    let _, _, head = locate_attempt t ~tid first k in
    if Bw_obs.enabled t.o then
      Bw_obs.observe t.o ~tid Bw_obs.Val_chain_depth (meta_of head).depth;
    (probe_leaf t ~tid head k).p_values

  (* Public write/read entry points: the null-sink path must not even
     allocate the thunk [timed] would take, so the branch happens here
     and the instrumented arm builds its closure only when a registry is
     attached. *)
  let insert t ?(tid = 0) k v =
    sbump t tid f_inserts;
    match t.o with
    | Bw_obs.Null -> insert_body t ~tid k v
    | Bw_obs.To _ ->
        timed t ~tid Bw_obs.Lat_insert (fun () -> insert_body t ~tid k v)

  let delete t ?(tid = 0) k v =
    sbump t tid f_deletes;
    match t.o with
    | Bw_obs.Null -> delete_body t ~tid k v
    | Bw_obs.To _ ->
        timed t ~tid Bw_obs.Lat_delete (fun () -> delete_body t ~tid k v)

  let update t ?(tid = 0) k v =
    sbump t tid f_updates;
    match t.o with
    | Bw_obs.Null -> update_body t ~tid k v
    | Bw_obs.To _ ->
        timed t ~tid Bw_obs.Lat_update (fun () -> update_body t ~tid k v)

  let lookup t ?(tid = 0) k =
    sbump t tid f_lookups;
    match t.o with
    | Bw_obs.Null -> lookup_body t ~tid k
    | Bw_obs.To _ ->
        timed t ~tid Bw_obs.Lat_lookup (fun () -> lookup_body t ~tid k)

  let upsert t ?(tid = 0) k v =
    if not (update t ~tid k v) then ignore (insert t ~tid k v)

  let mem t ?(tid = 0) k = lookup t ~tid k <> []

  (* ---------------------------------------------------------------- *)
  (* Batch execution                                                   *)
  (* ---------------------------------------------------------------- *)

  type batch_op =
    | B_insert of value
    | B_update of value
    | B_upsert of value
    | B_delete of value
    | B_get

  type batch_result = R_applied of bool | R_values of value list

  (* Walk the key-sorted permutation left to right, reusing the previous
     traversal while keys stay inside the cached leaf's separator range.
     Cached heads may be stale (our own appended delta, or a snapshot a
     concurrent SMO has since replaced): reads then see a consistent
     chain that existed within our epoch, and writes CaS against the
     cached head, so interference surfaces as an ordinary failed CaS ->
     Restart, which drops the cache and re-descends. Re-descent restarts
     from the nearest cached ancestor whose range still covers the key
     (its own staleness is repaired by the B-link right moves and the
     remove-delta Restart inside [locate_from]), or the root when no
     ancestor covers it. Returns how many descents beyond the first the
     batch needed. *)
  let exec_batch_body t ~tid (ops : (key * batch_op) array) perm
      (results : batch_result array) =
    let n = Array.length perm in
    (* seed the cached ancestor from the leaf cache: when the first
       sorted key's entry validates, the batch starts on that leaf
       without a descent (the empty ancestor path falls back to the
       root on range exit) *)
    let ctx =
      ref
        (match lc_probe t ~tid (fst ops.(perm.(0))) with
        | Some (id, head) ->
            lc_count_hit t ~tid;
            Some ([], id, head)
        | None ->
            lc_count_miss t ~tid;
            None)
    in
    (* skewed batches repeat hot keys; sorted order makes the repeats
       adjacent, so one probe serves the whole run of duplicates as long
       as the chain head is physically unchanged (any interleaved write
       to the leaf swings the head and forces a fresh probe) *)
    let last_get = ref None in
    let locates = ref 0 in
    let locate_ctx k =
      incr locates;
      let loc =
        match !ctx with
        | Some (path, _, _) ->
            let rec from_ancestor = function
              | [] -> locate t ~tid k
              | (aid, ahead) :: tl ->
                  let m = meta_of ahead in
                  if kb k m.lo >= 0 && kb k m.hi < 0 then
                    locate_from t ~tid k ~start:aid ~parent_path:tl
                  else from_ancestor tl
            in
            from_ancestor path
        | None -> locate t ~tid k
      in
      ctx := Some loc;
      (* refill the cache from every real descent, so the next batch
         (or point op) seeds from where this one left off *)
      let _, lid, _ = loc in
      lc_fill t ~tid k ~id:lid;
      loc
    in
    let leaf_for k =
      match !ctx with
      | Some ((_, _, head) as loc) ->
          let m = meta_of head in
          if kb k m.lo >= 0 && kb k m.hi < 0 then loc else locate_ctx k
      | None -> locate_ctx k
    in
    for j = 0 to n - 1 do
      let i = perm.(j) in
      let k, op = ops.(i) in
      let result =
        retry_loop t ~tid @@ fun () ->
        try
          match op with
          | B_get -> (
              let _, _, head = leaf_for k in
              match !last_get with
              | Some (lk, lh, r) when lh == head && K.compare lk k = 0 -> r
              | _ ->
                  if Bw_obs.enabled t.o then
                    Bw_obs.observe t.o ~tid Bw_obs.Val_chain_depth
                      (meta_of head).depth;
                  let r = R_values (probe_leaf t ~tid head k).p_values in
                  last_get := Some (k, head, r);
                  r)
          | B_insert v ->
              let path, id, head = leaf_for k in
              let ok, nh = insert_core t ~tid path id head k v in
              ctx := Some (path, id, nh);
              R_applied ok
          | B_update v ->
              let path, id, head = leaf_for k in
              let ok, nh = update_core t ~tid path id head k v in
              ctx := Some (path, id, nh);
              R_applied ok
          | B_delete v ->
              let path, id, head = leaf_for k in
              let ok, nh = delete_core t ~tid path id head k v in
              ctx := Some (path, id, nh);
              R_applied ok
          | B_upsert v ->
              let path, id, head = leaf_for k in
              let ok, nh = update_core t ~tid path id head k v in
              if ok then begin
                ctx := Some (path, id, nh);
                R_applied true
              end
              else begin
                let ok, nh = insert_core t ~tid path id head k v in
                ctx := Some (path, id, nh);
                R_applied ok
              end
        with Restart ->
          (* the cached traversal is the suspect: drop it so the retry
             re-descends instead of spinning on the same snapshot *)
          ctx := None;
          raise Restart
      in
      results.(i) <- result
    done;
    max 0 (!locates - 1)

  let execute_batch t ?(tid = 0) (ops : (key * batch_op) array) =
    let n = Array.length ops in
    if n = 0 then [||]
    else begin
      Array.iter
        (fun (_, op) ->
          match op with
          | B_insert _ -> sbump t tid f_inserts
          | B_update _ | B_upsert _ -> sbump t tid f_updates
          | B_delete _ -> sbump t tid f_deletes
          | B_get -> sbump t tid f_lookups)
        ops;
      let perm =
        let p = t.bperm.(tid) in
        if Array.length p = n then p
        else begin
          let p = Array.make n 0 in
          t.bperm.(tid) <- p;
          p
        end
      in
      for i = 0 to n - 1 do
        perm.(i) <- i
      done;
      (* key order with the submission index as tie-break: a stable sort
         in effect, so duplicate keys execute in submission order *)
      Array.sort
        (fun i j ->
          let c = K.compare (fst ops.(i)) (fst ops.(j)) in
          if c <> 0 then c else i - j)
        perm;
      let results = Array.make n (R_applied false) in
      let redescents =
        with_epoch t ~tid (fun () -> exec_batch_body t ~tid ops perm results)
      in
      if Bw_obs.enabled t.o then begin
        Bw_obs.observe t.o ~tid Bw_obs.Val_batch_size n;
        Bw_obs.add t.o ~tid Bw_obs.C_batch_redescents redescents
      end;
      results
    end

  (* ---------------------------------------------------------------- *)
  (* Iterators (§3.2, Appendix C)                                      *)
  (* ---------------------------------------------------------------- *)

  (* Materialize a leaf head as one page, without touching the tree.
     Fully consolidated leaves are handed out zero-copy (pages are
     immutable); chains go through the single-merge path with a *boxed*
     result — snapshots are transient, so they must not claim shared
     arena gap space or pay key re-encoding. *)
  let snapshot_leaf_page t ~tid (head : elem) =
    match head with
    | Leaf b -> b.lb_page
    | _ -> (
        match
          (* the §4.3 segment merge is much cheaper than the general
             replay and applies to any chain of plain data deltas *)
          if t.cfg.fast_consolidation then
            consolidate_leaf_chain ~tid ~packed:false head
          else None
        with
        | Some merged -> merged.P.m_page
        | None -> P.build ~packed:false (Growable.to_array (gather_leaf ~tid head)))

  module Iterator = struct
    (* An iterator owns a private consolidated copy of one logical leaf
       node; no locks are held between moves. Exhausting the copy
       re-traverses from the root using the node's high key (forward) or
       low key with the go-left rule (backward). *)
    type iter = {
      tree : t;
      tid : int;
      mutable items : P.t;
      mutable lo : bound;
      mutable hi : bound;
      (* cursor into [items]. pos = -1 with lo = -inf means "before the
         first item"; pos = length with hi = +inf means "after the last";
         both are restartable: next/prev from an exhausted end steps back
         into the data. *)
      mutable pos : int;
    }

    let snapshot_node t ~tid k =
      retry_loop t ~tid @@ fun () ->
      let _, _, head = locate t ~tid k in
      let m = meta_of head in
      (snapshot_leaf_page t ~tid head, m.lo, m.hi)

    (* first item >= k, possibly skipping empty nodes to the right *)
    let rec position_forward it k =
      let items, lo, hi = snapshot_node it.tree ~tid:it.tid k in
      it.items <- items;
      it.lo <- lo;
      it.hi <- hi;
      let n = P.length items in
      let pos = P.lower_bound ~tid:it.tid items k in
      if pos < n then it.pos <- pos
      else
        match hi with
        | Pos_inf -> it.pos <- n (* after the last item *)
        | B next_k -> position_forward it next_k
        | Neg_inf -> assert false

    let seek t ?(tid = 0) k =
      with_epoch t ~tid @@ fun () ->
      let it =
        { tree = t; tid; items = P.empty; lo = Neg_inf; hi = Pos_inf; pos = 0 }
      in
      position_forward it k;
      it

    (* Backward jump (Appendix C.2): land on the rightmost node whose
       low bound is strictly below [klow], using sibling links to correct
       for concurrent splits, then stand on the last item < klow. *)
    let rec position_backward it klow =
      let t = it.tree and tid = it.tid in
      retry_loop t ~tid (fun () ->
          (* descend with the go-left rule: when the governing separator
             equals klow, take the preceding child *)
          let rec down id =
            cnt tid Counters.Node_visit;
            let head = mt_get t ~tid id in
            (match head with
            | LD { l_op = L_remove; _ } | ID { i_op = I_remove; _ } ->
                raise Restart
            | _ -> ());
            let m = meta_of head in
            if cmp_bound m.hi (B klow) < 0 && m.right <> nil_id then
              (* overshoot correction is handled at the leaf level *)
              ()
            ;
            if is_leaf_elem head then (id, head)
            else begin
              let items = gather_inner ~tid head in
              let n = Growable.length items in
              let idx = ref 0 in
              for i = 0 to n - 1 do
                if kb klow (fst (Growable.get items i)) > 0 then idx := i
                else if
                  kb klow (fst (Growable.get items i)) = 0 && i > 0
                then idx := i - 1
              done;
              down (snd (Growable.get items !idx))
            end
          in
          let id, head = down (Atomic.get t.root) in
          (* walk right while the node still lies strictly left of klow
             and cannot contain its predecessor *)
          let rec rightmost id head =
            let m = meta_of head in
            if cmp_bound m.hi (B klow) < 0 && m.right <> nil_id then begin
              let rhead = mt_get t ~tid m.right in
              let rm = meta_of rhead in
              if cmp_bound rm.lo (B klow) < 0 then rightmost m.right rhead
              else (id, head)
            end
            else (id, head)
          in
          let _, head = rightmost id head in
          let m = meta_of head in
          let items = snapshot_leaf_page t ~tid head in
          it.items <- items;
          it.lo <- m.lo;
          it.hi <- m.hi;
          (* last index with key < klow *)
          let pos = P.lower_bound ~tid items klow - 1 in
          if pos >= 0 then it.pos <- pos
          else
            match m.lo with
            | Neg_inf -> it.pos <- -1 (* before the first item *)
            | B lower -> position_backward it lower
            | Pos_inf -> assert false)

    let current it =
      if it.pos >= 0 && it.pos < P.length it.items then
        Some (P.get it.items it.pos)
      else None

    let at_end it = it.pos >= P.length it.items && it.hi = Pos_inf
    let at_begin it = it.pos < 0 && it.lo = Neg_inf

    let next it =
      with_epoch it.tree ~tid:it.tid @@ fun () ->
      if not (at_end it) then begin
        it.pos <- it.pos + 1;
        if it.pos >= P.length it.items then
          match it.hi with
          | Pos_inf -> it.pos <- P.length it.items
          | B k -> position_forward it k
          | Neg_inf -> assert false
      end

    let prev it =
      with_epoch it.tree ~tid:it.tid @@ fun () ->
      if not (at_begin it) then begin
        it.pos <- it.pos - 1;
        if it.pos < 0 then
          match it.lo with
          | Neg_inf -> it.pos <- -1
          | B k -> position_backward it k
          | Pos_inf -> assert false
      end

    let seek_first t ?(tid = 0) () =
      (* position before everything, then step to the first item *)
      let it =
        { tree = t; tid; items = P.empty; lo = Neg_inf; hi = Pos_inf; pos = 0 }
      in
      (with_epoch t ~tid @@ fun () ->
       retry_loop t ~tid @@ fun () ->
       (* descend along the leftmost spine *)
       let rec down id =
         let head = mt_get t ~tid id in
         (match head with
         | LD { l_op = L_remove; _ } | ID { i_op = I_remove; _ } ->
             raise Restart
         | _ -> ());
         if is_leaf_elem head then head
         else
           let items = gather_inner ~tid head in
           down (snd (Growable.get items 0))
       in
       let head = down (Atomic.get t.root) in
       let m = meta_of head in
       it.items <- snapshot_leaf_page t ~tid head;
       it.lo <- m.lo;
       it.hi <- m.hi;
       it.pos <- 0);
      if P.length it.items = 0 then begin
        (match it.hi with
        | Pos_inf -> ()
        | B k -> with_epoch t ~tid (fun () -> position_forward it k)
        | Neg_inf -> assert false)
      end;
      it
  end

  (* Bulk range scan: like the iterator, but consumes each per-node
     private copy in one go instead of stepping item by item. The
     visitor form materializes nothing; [scan] builds its list on top. *)
  let scan_iter_body t ~tid ~n k visit =
    let count = ref 0 in
    let rec from_key k =
      let items, _, hi =
        with_epoch t ~tid @@ fun () -> Iterator.snapshot_node t ~tid k
      in
      let len = P.length items in
      let pos = ref (P.lower_bound ~tid items k) in
      while !pos < len && !count < n do
        visit (P.key items !pos) (P.value items !pos);
        incr count;
        incr pos
      done;
      if !count < n then
        match hi with
        | Pos_inf -> ()
        | B next_k -> from_key next_k
        | Neg_inf -> assert false
    in
    from_key k;
    !count

  let scan_iter t ?(tid = 0) ?(n = max_int) k visit =
    match t.o with
    | Bw_obs.Null -> scan_iter_body t ~tid ~n k visit
    | Bw_obs.To _ ->
        timed t ~tid Bw_obs.Lat_scan (fun () -> scan_iter_body t ~tid ~n k visit)

  let scan_body t ~tid ~n k =
    let out = ref [] in
    ignore (scan_iter_body t ~tid ~n k (fun k v -> out := (k, v) :: !out));
    List.rev !out

  let scan t ?(tid = 0) ?(n = max_int) k =
    match t.o with
    | Bw_obs.Null -> scan_body t ~tid ~n k
    | Bw_obs.To _ ->
        timed t ~tid Bw_obs.Lat_scan (fun () -> scan_body t ~tid ~n k)

  let scan_all t ?(tid = 0) () =
    let it = Iterator.seek_first t ~tid () in
    let out = ref [] in
    let rec go () =
      match Iterator.current it with
      | Some kv ->
          out := kv :: !out;
          Iterator.next it;
          go ()
      | None -> ()
    in
    go ();
    List.rev !out

  let cardinal t = List.length (scan_all t ())

  (* Checkpoint traversal: every non-empty logical leaf as one page, in
     key order (leftmost spine down, then the sibling high keys).
     Depth-0 leaves are handed out zero-copy — with packed pages the
     checkpoint then serializes their key bytes without re-encoding.
     Chained leaves materialize through the single-merge path with
     [~reuse:false]: a fresh arena, so a checkpoint never consumes the
     live pages' shared gap space. *)
  let iter_leaf_pages t ?(tid = 0) f =
    let materialize head =
      match head with
      | Leaf b -> b.lb_page
      | _ -> (
          match consolidate_leaf_chain ~tid ~reuse:false head with
          | Some merged -> merged.P.m_page
          | None ->
              P.build ~packed:t.cfg.packed_leaves
                (Growable.to_array (gather_leaf ~tid head)))
    in
    let first =
      with_epoch t ~tid @@ fun () ->
      retry_loop t ~tid @@ fun () ->
      let rec down id =
        let head = mt_get t ~tid id in
        (match head with
        | LD { l_op = L_remove; _ } | ID { i_op = I_remove; _ } ->
            raise Restart
        | _ -> ());
        if is_leaf_elem head then head
        else
          let items = gather_inner ~tid head in
          down (snd (Growable.get items 0))
      in
      let head = down (Atomic.get t.root) in
      (materialize head, (meta_of head).hi)
    in
    let rec go (page, hi) =
      if P.length page > 0 then f page;
      match hi with
      | Pos_inf -> ()
      | B k ->
          go
            (with_epoch t ~tid @@ fun () ->
             retry_loop t ~tid @@ fun () ->
             let _, _, head = locate t ~tid k in
             (materialize head, (meta_of head).hi))
      | Neg_inf -> assert false
    in
    go first

  (* ---------------------------------------------------------------- *)
  (* GC control                                                        *)
  (* ---------------------------------------------------------------- *)

  let gc_advance t = Epoch.advance t.epoch

  let start_gc_thread t ?(interval_s = 0.04) () =
    Epoch.start_background t.epoch ~interval_s

  let stop_gc_thread t = Epoch.stop_background t.epoch
  let quiesce t ~tid = Epoch.quiesce t.epoch ~tid

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                     *)
  (* ---------------------------------------------------------------- *)

  let op_stats t =
    {
      inserts = ssum t f_inserts;
      deletes = ssum t f_deletes;
      updates = ssum t f_updates;
      lookups = ssum t f_lookups;
      splits = ssum t f_splits;
      merges = ssum t f_merges;
      consolidations = ssum t f_consolidations;
      failed_cas = ssum t f_failed_cas;
      restarts = ssum t f_restarts;
      smo_helps = ssum t f_smo_helps;
      prealloc_overflows = ssum t f_prealloc_overflows;
    }

  let prealloc_util = function
    | None -> None
    | Some pre ->
        let used = min (Atomic.get pre.used) pre.cap in
        let wasted = min (Atomic.get pre.wasted) used in
        Some (float_of_int (used - wasted) /. float_of_int pre.cap)

  let structure_stats t =
    let tid = 0 in
    let inner_nodes = ref 0
    and leaf_nodes = ref 0
    and inner_chain = ref 0
    and leaf_chain = ref 0
    and inner_size = ref 0
    and leaf_size = ref 0
    and iutil = ref 0.0
    and iutil_n = ref 0
    and lutil = ref 0.0
    and lutil_n = ref 0 in
    let rec walk id depth max_depth =
      let head = mt_get t ~tid id in
      let m = meta_of head in
      if is_leaf_elem head then begin
        incr leaf_nodes;
        leaf_chain := !leaf_chain + m.depth;
        leaf_size := !leaf_size + m.size;
        (match prealloc_util (prealloc_of head) with
        | Some u ->
            lutil := !lutil +. u;
            incr lutil_n
        | None -> ());
        max !max_depth (depth + 1) |> fun d -> max_depth := d
      end
      else begin
        incr inner_nodes;
        inner_chain := !inner_chain + m.depth;
        inner_size := !inner_size + m.size;
        (match prealloc_util (prealloc_of head) with
        | Some u ->
            iutil := !iutil +. u;
            incr iutil_n
        | None -> ());
        let children = gather_inner ~tid head in
        Growable.iter (fun (_, cid) -> walk cid (depth + 1) max_depth) children
      end
    in
    let max_depth = ref 0 in
    walk (Atomic.get t.root) 0 max_depth;
    let avg num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
    {
      inner_nodes = !inner_nodes;
      leaf_nodes = !leaf_nodes;
      avg_inner_chain = avg !inner_chain !inner_nodes;
      avg_leaf_chain = avg !leaf_chain !leaf_nodes;
      avg_inner_size = avg !inner_size !inner_nodes;
      avg_leaf_size = avg !leaf_size !leaf_nodes;
      inner_prealloc_util =
        (if !iutil_n = 0 then 0.0 else !iutil /. float_of_int !iutil_n);
      leaf_prealloc_util =
        (if !lutil_n = 0 then 0.0 else !lutil /. float_of_int !lutil_n);
      depth = !max_depth;
    }

  let iter_nodes t f =
    let tid = 0 in
    let rec walk id =
      let head = mt_get t ~tid id in
      let m = meta_of head in
      f ~leaf:(is_leaf_elem head) ~chain:m.depth ~size:m.size;
      if not (is_leaf_elem head) then
        Growable.iter (fun (_, cid) -> walk cid) (gather_inner ~tid head)
    in
    walk (Atomic.get t.root)

  (* Cheap invariant probe for stress harnesses: one walk, no allocation
     beyond the traversal itself. *)
  let max_chains t =
    let leaf_max = ref 0 and inner_max = ref 0 in
    iter_nodes t (fun ~leaf ~chain ~size:_ ->
        if leaf then (if chain > !leaf_max then leaf_max := chain)
        else if chain > !inner_max then inner_max := chain);
    (!leaf_max, !inner_max)

  let memory_words t = Obj.reachable_words (Obj.repr t)

  let mapping_table_stats t =
    {
      allocated = Mapping_table.high_water t.table;
      freed = Mapping_table.free_list_length t.table;
      chunks = Mapping_table.chunks_allocated t.table;
      table_capacity = Mapping_table.capacity t.table;
    }

  let leaf_cache_stats t =
    {
      lc_hits = ssum t f_lc_hits;
      lc_misses = ssum t f_lc_misses;
      lc_stale_verifies = ssum t f_lc_stale;
      lc_invalidations = ssum t f_lc_inval;
      lc_smo_events = Atomic.get t.smo_epoch;
      lc_occupied =
        (let n = ref 0 in
         for s = 0 to (Array.length t.lcache / 3) - 1 do
           if t.lcache.(3 * s) >= 0 then incr n
         done;
         !n);
      lc_slots = Array.length t.lcache / 3;
    }

  (* Harness oracle: a validated cache hit must name the same leaf a
     from-root descent finds. A concurrent SMO can move the key between
     the probe and the descent, so a single disagreement proves nothing;
     each retry re-validates against the then-current tree, so an
     implementation whose validation is sound converges while one that
     can serve a wrong leaf disagrees persistently. *)
  let leaf_cache_check t ~tid k =
    let rec go attempts =
      let agree =
        with_epoch t ~tid @@ fun () ->
        retry_loop t ~tid @@ fun () ->
        match lc_probe t ~tid k with
        | None -> true
        | Some (id, _) ->
            let _, oid, _ = locate t ~tid k in
            id = oid
      in
      agree || (attempts > 1 && go (attempts - 1))
    in
    go 4

  (* ---------------------------------------------------------------- *)
  (* Invariant checking (tests)                                        *)
  (* ---------------------------------------------------------------- *)

  exception Invariant_violation of string

  let fail_inv fmt = Format.kasprintf (fun s -> raise (Invariant_violation s)) fmt

  (* Single-threaded full check: key ordering, bound containment, meta
     consistency, leaf-level sibling chain continuity. *)
  let verify_invariants t =
    let tid = 0 in
    let leaves : (bound * bound * int * int) Growable.t = Growable.create () in
    (* (lo, hi, right, id) in key order *)
    let rec walk id ~lo ~hi =
      let head = mt_get t ~tid id in
      let m = meta_of head in
      if cmp_bound m.lo lo <> 0 then
        fail_inv "node %d: lo %a expected %a" id pp_bound m.lo pp_bound lo;
      if cmp_bound m.hi hi > 0 then
        fail_inv "node %d: hi %a beyond expected %a" id pp_bound m.hi pp_bound hi;
      if is_leaf_elem head then begin
        let items = Growable.to_array (gather_leaf ~tid head) in
        if Array.length items <> m.size then
          fail_inv "leaf %d: meta size %d but %d items" id m.size
            (Array.length items);
        Array.iteri
          (fun i (k, _) ->
            if kb k m.lo < 0 then fail_inv "leaf %d: key below lo" id;
            if kb k m.hi >= 0 then fail_inv "leaf %d: key above hi" id;
            if i > 0 && K.compare (fst items.(i - 1)) k > 0 then
              fail_inv "leaf %d: keys out of order" id;
            if
              t.cfg.unique_keys && i > 0
              && K.compare (fst items.(i - 1)) k = 0
            then fail_inv "leaf %d: duplicate key in unique mode" id)
          items;
        Growable.push leaves (m.lo, m.hi, m.right, id)
      end
      else begin
        let items = Growable.to_array (gather_inner ~tid head) in
        if Array.length items <> m.size then
          fail_inv "inner %d: meta size %d but %d items" id m.size
            (Array.length items);
        if Array.length items = 0 then fail_inv "inner %d: empty" id;
        if cmp_bound (fst items.(0)) m.lo <> 0 then
          fail_inv "inner %d: first separator is not lo" id;
        Array.iteri
          (fun i (sep, cid) ->
            if i > 0 && cmp_bound (fst items.(i - 1)) sep >= 0 then
              fail_inv "inner %d: separators out of order" id;
            let child_hi =
              if i + 1 < Array.length items then fst items.(i + 1) else m.hi
            in
            walk cid ~lo:sep ~hi:child_hi)
          items
      end
    in
    walk (Atomic.get t.root) ~lo:Neg_inf ~hi:Pos_inf;
    (* leaf sibling chain: hi of each leaf equals lo of the next *)
    let n = Growable.length leaves in
    for i = 0 to n - 2 do
      let _, hi, right, id = Growable.get leaves i in
      let lo', _, _, id' = Growable.get leaves (i + 1) in
      if cmp_bound hi lo' <> 0 then
        fail_inv "leaves %d,%d: hi/lo mismatch" id id';
      if right <> id' then
        fail_inv "leaf %d: right sibling %d, expected %d" id right id'
    done;
    if n > 0 then begin
      let _, hi, right, id = Growable.get leaves (n - 1) in
      if cmp_bound hi Pos_inf <> 0 || right <> nil_id then
        fail_inv "last leaf %d: hi/right not terminal" id
    end

  (* Render the physical structure — every logical node with its delta
     chain — for debugging and test failure forensics. *)
  let dump t ppf =
    let tid = 0 in
    let pp_op ppf = function
      | L_ins (k, _) -> Format.fprintf ppf "ins(%a)" K.pp k
      | L_del (k, _) -> Format.fprintf ppf "del(%a)" K.pp k
      | L_upd (k, _, _) -> Format.fprintf ppf "upd(%a)" K.pp k
      | L_split (k, rid) -> Format.fprintf ppf "SPLIT(%a,->%d)" K.pp k rid
      | L_merge (k, _, rid) -> Format.fprintf ppf "MERGE(%a,absorbed %d)" K.pp k rid
      | L_remove -> Format.fprintf ppf "REMOVE"
    in
    let pp_iop ppf = function
      | I_ins (k, cid, ns) ->
          Format.fprintf ppf "ins(%a->%d,next %a)" K.pp k cid pp_bound ns
      | I_del (k, k0, n0, k2) ->
          Format.fprintf ppf "del(%a; [%a,%a)->%d)" K.pp k pp_bound k0
            pp_bound k2 n0
      | I_split (k, rid) -> Format.fprintf ppf "SPLIT(%a,->%d)" K.pp k rid
      | I_merge (k, _, rid) -> Format.fprintf ppf "MERGE(%a,absorbed %d)" K.pp k rid
      | I_remove -> Format.fprintf ppf "REMOVE"
      | I_abort -> Format.fprintf ppf "ABORT"
    in
    let rec pp_chain ppf e =
      match e with
      | Leaf b ->
          Format.fprintf ppf "base[%d items%s]" (P.length b.lb_page)
            (if P.is_packed b.lb_page then ", packed" else "")
      | Inner b ->
          Format.fprintf ppf "base{";
          Array.iteri
            (fun i s ->
              Format.fprintf ppf "%s%a->%d"
                (if i > 0 then " " else "")
                pp_bound s b.ib_ids.(i))
            b.ib_seps;
          Format.fprintf ppf "}"
      | LD d ->
          Format.fprintf ppf "%a :: %a" pp_op d.l_op pp_chain d.l_next
      | ID d ->
          Format.fprintf ppf "%a :: %a" pp_iop d.i_op pp_chain d.i_next
    in
    let rec walk id indent =
      let head = mt_get t ~tid id in
      let m = meta_of head in
      Format.fprintf ppf "%s%s %d [%a,%a) right=%d size=%d depth=%d: %a@."
        indent
        (if is_leaf_elem head then "leaf" else "inner")
        id pp_bound m.lo pp_bound m.hi m.right m.size m.depth pp_chain head;
      if not (is_leaf_elem head) then
        Growable.iter
          (fun (_, cid) -> walk cid (indent ^ "  "))
          (gather_inner ~tid head)
    in
    walk (Atomic.get t.root) ""

  (* ---------------------------------------------------------------- *)
  (* §6.3: frozen direct-pointer tree (mapping table disabled)         *)
  (* ---------------------------------------------------------------- *)

  type frozen = F_leaf of P.t | F_inner of bound array * frozen array

  let freeze t =
    consolidate_all t;
    let tid = 0 in
    let rec conv id =
      match mt_get t ~tid id with
      | Leaf b -> F_leaf b.lb_page
      | Inner b -> F_inner (b.ib_seps, Array.map conv b.ib_ids)
      | LD _ | ID _ ->
          (* consolidate_all left a delta behind (concurrent writer):
             freezing is a single-threaded operation *)
          invalid_arg "Bwtree.freeze: tree is being mutated"
    in
    conv (Atomic.get t.root)

  let frozen_lookup fz k =
    let tid = 0 in
    let rec go = function
      | F_inner (seps, children) ->
          cnt tid Counters.Pointer_deref;
          let i = sep_index ~tid seps (Array.length seps) k in
          go children.(i)
      | F_leaf pg ->
          let n = P.length pg in
          let pos = P.lower_bound ~tid pg k in
          let out = ref [] in
          let i = ref pos in
          while !i < n && K.compare (P.key pg !i) k = 0 do
            out := P.value pg !i :: !out;
            incr i
          done;
          !out
    in
    go fz
end
