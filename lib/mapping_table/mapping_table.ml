type 'a t = {
  dummy : 'a;
  chunk_bits : int;
  chunk_mask : int;
  (* A directory slot holds [absent] (a shared sentinel) until its chunk is
     faulted in. *)
  directory : 'a Atomic.t array Atomic.t array;
  absent : 'a Atomic.t array;
  next_id : int Atomic.t;
  free : int list Atomic.t;
  chunks : int Atomic.t;
  obs : Bw_obs.sink;
}

let create ?(chunk_bits = 16) ?(dir_bits = 12) ?(obs = Bw_obs.Null) ~dummy ()
    =
  if chunk_bits < 1 || chunk_bits > 24 then
    invalid_arg "Mapping_table.create: chunk_bits out of range";
  if dir_bits < 1 || dir_bits > 20 then
    invalid_arg "Mapping_table.create: dir_bits out of range";
  let absent = [||] in
  let t =
    {
      dummy;
      chunk_bits;
      chunk_mask = (1 lsl chunk_bits) - 1;
      directory = Array.init (1 lsl dir_bits) (fun _ -> Atomic.make absent);
      absent;
      next_id = Atomic.make 0;
      free = Atomic.make [];
      chunks = Atomic.make 0;
      obs;
    }
  in
  Bw_obs.register_gauge obs Bw_obs.G_mt_chunks (fun () -> Atomic.get t.chunks);
  Bw_obs.register_gauge obs Bw_obs.G_mt_free_ids (fun () ->
      List.length (Atomic.get t.free));
  t

let capacity t = Array.length t.directory lsl t.chunk_bits

(* Fault in the chunk covering [id], racing installers resolved by CaS: the
   loser's freshly-built chunk is garbage-collected, mirroring how the OS
   hands a single physical page to racing faulting threads. *)
let chunk_for t id =
  if id < 0 || id >= capacity t then invalid_arg "Mapping_table: id out of range";
  let slot = t.directory.(id lsr t.chunk_bits) in
  let c = Atomic.get slot in
  if c != t.absent then c
  else begin
    let fresh =
      Array.init (1 lsl t.chunk_bits) (fun _ -> Atomic.make t.dummy)
    in
    if Atomic.compare_and_set slot t.absent fresh then begin
      ignore (Atomic.fetch_and_add t.chunks 1);
      if Bw_obs.enabled t.obs then begin
        (* a chunk fault can come from any thread, including foreground
           readers with no spare budget — anon context keeps it simple *)
        Bw_obs.incr_anon t.obs Bw_obs.C_mt_growths;
        Bw_obs.event_anon t.obs Bw_obs.Ev_mt_grow ~a:(id lsr t.chunk_bits)
          ~b:(Atomic.get t.chunks)
      end;
      fresh
    end
    else Atomic.get slot
  end

let cell t id = (chunk_for t id).(id land t.chunk_mask)

let get t id = Atomic.get (cell t id)

let cas t id ~expect ~repl = Atomic.compare_and_set (cell t id) expect repl

let cas_unsafe t id ~expect ~repl =
  let c = cell t id in
  if Atomic.get c == expect then begin
    Atomic.set c repl;
    true
  end
  else false

let set t id v = Atomic.set (cell t id) v

let rec pop_free t =
  match Atomic.get t.free with
  | [] -> None
  | id :: rest as old ->
      if Atomic.compare_and_set t.free old rest then Some id else pop_free t

let allocate t v =
  let id =
    match pop_free t with
    | Some id -> id
    | None -> Atomic.fetch_and_add t.next_id 1
  in
  set t id v;
  id

let free_id t id =
  (* The dummy store must happen exactly once, before the id is published
     on the free list: once the push below succeeds, a racing [allocate]
     may pop [id] and install a live pointer immediately, and a dummy
     store re-executed on a CaS retry would stomp it. *)
  set t id t.dummy;
  let rec push () =
    let old = Atomic.get t.free in
    if not (Atomic.compare_and_set t.free old (id :: old)) then push ()
  in
  push ()

let chunks_allocated t = Atomic.get t.chunks
let high_water t = Atomic.get t.next_id
let free_list_length t = List.length (Atomic.get t.free)
let rebuild_capacity_hint t = high_water t - free_list_length t
