(** The Bw-Tree's indirection layer (§2.2, §3.3).

    Maps logical node ids to physical pointers, so a single
    compare-and-swap redirects every logical link to a node at once.

    The paper grows the table by reserving a huge virtual address range and
    letting the OS fault in physical pages lazily (the KISS-tree trick).
    OCaml cannot hook page faults into its heap, so this implementation uses
    the closest equivalent with the same observable property — lock-free,
    incremental growth with no stop-the-world resize: a fixed directory of
    chunk slots whose 2{^chunk_bits}-entry chunks are allocated on first
    touch and installed with CaS (a losing racer's chunk is discarded).

    Shrinking is impossible without blocking all threads, exactly as the
    paper concedes; {!rebuild_capacity_hint} documents that path.

    Ids of removed nodes (after node merges) are recycled through a
    lock-free Treiber stack. *)

type 'a t

val create :
  ?chunk_bits:int -> ?dir_bits:int -> ?obs:Bw_obs.sink -> dummy:'a -> unit ->
  'a t
(** [create ~dummy ()] makes an empty table. [dummy] fills never-assigned
    cells (reading an unallocated id returns it). Default geometry:
    [chunk_bits = 16] (64 Ki entries per chunk), [dir_bits = 12] (4096
    chunks ⇒ capacity 2{^28} ids). [obs] (default {!Bw_obs.Null}) receives
    [Ev_mt_grow] events on chunk faults and registers the [G_mt_chunks]
    and [G_mt_free_ids] gauge providers. *)

val allocate : 'a t -> 'a -> int
(** Claim a fresh (or recycled) id and install the given pointer. *)

val get : 'a t -> int -> 'a
(** Current physical pointer for an id. *)

val cas : 'a t -> int -> expect:'a -> repl:'a -> bool
(** Atomic pointer swing; compares by physical equality. This is the single
    linearization primitive of the Bw-Tree. *)

val set : 'a t -> int -> 'a -> unit
(** Unconditional store — only for initialization and tests. *)

val cas_unsafe : 'a t -> int -> expect:'a -> repl:'a -> bool
(** Non-atomic compare-then-store: a plain load, comparison and store with
    no read-modify-write instruction. Exists solely for the paper's §6.3
    "disable CaS" decomposition experiment and is only correct
    single-threaded. *)

val free_id : 'a t -> int -> unit
(** Recycle an id whose node has been removed. The caller must guarantee
    (via epochs) that no thread can still traverse to it, and must not
    free the same id twice. The cell is reset to [dummy] strictly before
    the id becomes poppable by {!allocate}, so a recycled id never
    exposes its previous pointer. *)

val capacity : 'a t -> int
(** Maximum number of ids the directory geometry can address. *)

val chunks_allocated : 'a t -> int
val high_water : 'a t -> int
(** Highest id ever handed out, plus one. *)

val free_list_length : 'a t -> int

val rebuild_capacity_hint : 'a t -> int
(** The paper's only answer to shrinking: block the world and rebuild. This
    reports the id count a rebuilt table would need ([high_water] minus
    recycled ids) so a caller implementing offline rebuild can size it. *)
