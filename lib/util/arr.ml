(* Stdlib [Array.map], [Array.init], [Array.of_list] and [Array.make]
   seed the result array with the first produced element. When that seed
   is a young heap block and the array is larger than [Max_young_wosize]
   (256 fields) the runtime's [caml_make_vect] forces a full minor
   collection rather than create a major->minor reference per slot. One
   stop-the-world minor GC per constructed array is invisible for small
   arrays and a throughput cliff for batch-sized ones (OCaml 5 must also
   handshake every other domain), so the batch paths build their arrays
   through these variants: allocate seeded with an immediate, then
   overwrite every slot through the normal write barrier.

   The immediate seed means the result is always an ordinary tag-0
   array, so these must not be used at float element type (flat float
   arrays have a different layout); the batch paths only carry variants
   and tuples. *)

let alloc : int -> 'a array = fun n -> Obj.magic (Array.make n 0 : int array)

let map f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let r = alloc n in
    for i = 0 to n - 1 do
      Array.unsafe_set r i (f (Array.unsafe_get a i))
    done;
    r
  end

let init n f =
  if n = 0 then [||]
  else begin
    let r = alloc n in
    for i = 0 to n - 1 do
      Array.unsafe_set r i (f i)
    done;
    r
  end

let make n x =
  if n = 0 then [||]
  else begin
    let r = alloc n in
    for i = 0 to n - 1 do
      Array.unsafe_set r i x
    done;
    r
  end

let of_list l =
  match l with
  | [] -> [||]
  | l ->
      let n = List.length l in
      let r = alloc n in
      List.iteri (fun i x -> Array.unsafe_set r i x) l;
      r
