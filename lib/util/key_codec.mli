(** Binary-comparable key encodings.

    Trie-based indexes (ART, Masstree) need keys whose byte-wise
    lexicographic order matches the logical order (§6: "keys must be
    preprocessed to have a totally ordered binary form"). These codecs
    produce such encodings. *)

val of_int : int -> string
(** 8-byte big-endian encoding of a signed 63-bit OCaml int with the sign
    bit flipped, so that byte-wise comparison matches integer comparison
    (including negatives). *)

val to_int : string -> int
(** Inverse of {!of_int}. Raises [Invalid_argument] on malformed input. *)

val int_at_least : string -> int option
(** The smallest int whose {!of_int} encoding sorts at or above the
    arbitrary binary string [s] — [Some min_int] when [s] sorts below
    every encoded int, [None] when it sorts above every encoded int
    (clamped exactly like [Bw_shard.Part.floor_int]). Scan start keys
    are lower bounds, not keys: cluster range boundaries and scan
    continuation cursors need not be exactly 8 bytes. *)

val of_string : string -> string
(** Identity: raw strings already compare byte-wise. *)

val slice64 : string -> int -> int64
(** [slice64 s i] reads the [i]-th 8-byte slice of [s] as a big-endian
    unsigned value, zero-padding past the end. Used by Masstree's layers. *)

val slice_count : string -> int
(** Number of 8-byte slices needed to cover the string (at least 1). *)
