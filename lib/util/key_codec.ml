let of_int k =
  (* Flip the sign bit so negative ints sort below non-negative ones under
     unsigned byte-wise comparison. *)
  let v = Int64.logxor (Int64.of_int k) Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let to_int s =
  if String.length s <> 8 then invalid_arg "Key_codec.to_int: need 8 bytes";
  let v = Bytes.get_int64_be (Bytes.unsafe_of_string s) 0 in
  Int64.to_int (Int64.logxor v Int64.min_int)

let int_at_least s =
  (* Scan start keys are lower bounds over the binary key space, not
     keys: range boundaries and continuation cursors (floor_binary of a
     slice, last_key ^ "\000") are rarely exactly 8 bytes. An 8-byte
     string >= a longer [s] must exceed its first 8 bytes; a shorter [s]
     zero-pads to its own floor. *)
  let u = ref 0L in
  for j = 0 to 7 do
    let byte = if j < String.length s then Char.code s.[j] else 0 in
    u := Int64.logor (Int64.shift_left !u 8) (Int64.of_int byte)
  done;
  let u = !u in
  (* OCaml's 63-bit ints cover only the middle half of the 64-bit key
     space, so clamp: a bound below enc(min_int) floors to min_int, one
     above enc(max_int) has no int at or above it. (Int64.to_int alone
     would silently wrap both ends.) *)
  let clamp u =
    let k64 = Int64.logxor u Int64.min_int in
    if Int64.compare k64 (Int64.of_int min_int) < 0 then Some min_int
    else if Int64.compare k64 (Int64.of_int max_int) > 0 then None
    else Some (Int64.to_int k64)
  in
  if String.length s <= 8 then clamp u
  else if Int64.equal u (-1L) then None
  else clamp (Int64.add u 1L)

let of_string s = s

let slice64 s i =
  let off = i * 8 in
  let len = String.length s in
  let v = ref 0L in
  for j = 0 to 7 do
    let byte = if off + j < len then Char.code s.[off + j] else 0 in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
  done;
  !v

let slice_count s =
  let len = String.length s in
  if len = 0 then 1 else (len + 7) / 8
