type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 8) () =
  { data = [||]; len = 0 } |> fun t ->
  ignore capacity;
  t

(* The backing array is created lazily on first push because we have no
   dummy element of type 'a. *)

let length t = t.len

(* Capacity growth and [to_array] go through [Arr.alloc]'s
   immediate-seeded allocation: [Array.make new_cap elt] with a young
   [elt] and more than 256 slots forces a stop-the-world minor GC per
   growth step (see arr.ml), and batch-sized gathers — leaf replays,
   iterator snapshots — hit exactly that range. The immediate seed means
   Growable must never be used at float element type (flat float arrays
   have a different layout); every instantiation in the tree carries
   variants or tuples. *)
let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Arr.alloc new_cap in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len >= Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Growable: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let clear t =
  t.data <- [||];
  t.len <- 0

let reset t = t.len <- 0

let to_array t =
  if t.len = 0 then [||]
  else begin
    let a = Arr.alloc t.len in
    Array.blit t.data 0 a 0 t.len;
    a
  end

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let insert_at t i x =
  if i < 0 || i > t.len then invalid_arg "Growable.insert_at";
  if t.len >= Array.length t.data then grow t;
  Array.blit t.data i t.data (i + 1) (t.len - i);
  t.data.(i) <- x;
  t.len <- t.len + 1

let remove_at t i =
  check t i;
  Array.blit t.data (i + 1) t.data i (t.len - 1 - i);
  t.len <- t.len - 1

let truncate t n =
  if n < 0 then invalid_arg "Growable.truncate";
  if n < t.len then t.len <- n
