(** Array constructors that never force a minor collection.

    The stdlib constructors seed the result with the first produced
    element; [caml_make_vect] responds to a young-block seed in a
    [> Max_young_wosize] (256-field) array by forcing a stop-the-world
    minor collection — once per constructed array, which on the batch
    execution path means once per batch per conversion layer. These
    variants seed with an immediate and overwrite every slot instead.

    Never instantiate at [float] element type: the results are ordinary
    tag-0 arrays, not flat float arrays. *)

val alloc : int -> 'a array
(** An [n]-slot array seeded with the immediate [0]. GC-safe as is
    (every slot is an immediate), but reading a slot before writing it
    is unsound at any non-int element type — callers must overwrite (or
    provably never read) every slot. The building block of the
    constructors below; exposed for fill-then-publish builders
    ({!Growable} growth, leaf-page construction). *)

val map : ('a -> 'b) -> 'a array -> 'b array
(** Same observable behaviour as {!Array.map} (applied in index order). *)

val init : int -> (int -> 'a) -> 'a array
(** Same observable behaviour as {!Array.init} (applied in index
    order); no negative-length check, callers pass real counts. *)

val make : int -> 'a -> 'a array
(** Same observable behaviour as {!Array.make}. *)

val of_list : 'a list -> 'a array
(** Same observable behaviour as {!Array.of_list}. *)
