(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Amortized O(1) push; not thread-safe. Used for thread-local garbage
    lists, iterator buffers and consolidation scratch space.

    Storage growth and {!to_array} use {!Arr}'s immediate-seeded
    allocation so that batch-sized gathers never force a minor
    collection; consequently a Growable must never hold [float] elements
    (see arr.ml — flat float arrays have a different layout). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
(** Drops all elements (and their references, so they can be collected). *)

val reset : 'a t -> unit
(** Empties the array but keeps the backing storage, so a steady-state
    fill/drain cycle (batch scratch buffers) allocates nothing. The
    retained slots still reference their old elements; use {!clear} when
    those must become collectable. *)

val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Sorts the populated prefix in place. *)

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val insert_at : 'a t -> int -> 'a -> unit
(** [insert_at t i x] shifts elements [i..] right and writes [x] at [i].
    [i] may equal [length t] (append). *)

val remove_at : 'a t -> int -> unit
(** Shifts elements left over position [i]. *)

val truncate : 'a t -> int -> unit
(** Keeps only the first [n] elements. No-op if already shorter. *)
