(** Multi-domain stress and invariant-check harness.

    Runs configurable insert/read/update/remove/scan mixes across N worker
    domains against any index, while concurrently driving epoch advancement
    and mapping-table allocate/free churn, and checks global invariants at
    phase barriers:

    - {b No lost or duplicated keys.} Each worker owns a disjoint key
      stripe and records every operation with its observed result in a
      per-thread journal. At each barrier the journals are replayed against
      a sequential oracle: on a worker's own stripe every result must match
      the oracle exactly; cross-stripe reads are checked for value
      provenance (every value encodes its key). A full sweep of the key
      space then compares the index against the union of the oracles, both
      for presence and for absence.
    - {b No leaked garbage.} With every worker quiesced, [Epoch.flush]
      must bring [Epoch.pending] to zero — the property the reclamation
      race fixes of this PR guarantee.
    - {b Mapping-table accounting.} Live ids are globally distinct, every
      live cell still reads the value its allocator installed, and
      [live + free-list length = high water] whenever churn is paused.
    - {b Bounded delta chains} and the tree's own {!Bwtree.S.verify_invariants}
      structural check.
    - {b Leaf-cache agreement.} When the subject exposes a leaf-cache
      probe, sampled keys check that every surviving cache entry serves
      the same leaf a from-root descent reaches, and that stale
      re-validations never outrun invalidations + SMO events.

    Violations are collected as strings rather than raised, so a long
    soak run reports everything it saw. *)

(** Relative operation weights; they need not sum to anything. *)
type mix = {
  w_insert : int;
  w_read : int;
  w_update : int;
  w_remove : int;
  w_scan : int;
}

val default_mix : mix

type config = {
  domains : int;  (** worker domains (dense tids [0, domains)) *)
  keys_per_domain : int;  (** size of each worker's private key stripe *)
  ops_per_phase : int;  (** operations each worker runs between barriers *)
  phases : int;  (** barrier/check rounds (ignored with [time_budget_s]) *)
  time_budget_s : float option;
      (** long-running mode: keep cycling phases until this much wall
          clock has elapsed *)
  mix : mix;
  scan_len : int;
  seed : int;
  churn_domains : int;  (** extra domains churning a standalone mapping table *)
  churn_ops_per_phase : int;
  drive_advance : bool;  (** spawn a domain hammering [Epoch.advance] *)
  batch : int;
      (** > 1: workers buffer point ops and submit them through the
          subject's [s_batch] path in groups of this size (scans flush
          the pending group and run per-op) *)
  verbose : bool;  (** print a progress line per phase *)
}

val short_config : config
(** The [dune runtest] / [--short] shape: 4 workers, 2 churn domains, 3
    phases, a few hundred ops per worker per phase. *)

(** Point operations in batch-submission form; results mirror the point
    entry points ([Sb_values] for lookups, [Sb_applied] otherwise). *)
type batch_op =
  | Sb_insert of int * int
  | Sb_lookup of int
  | Sb_update of int * int
  | Sb_remove of int * int

type batch_res = Sb_applied of bool | Sb_values of int list

(** One index under stress. Probe fields may be [None] for indexes that
    do not expose them; the corresponding checks are skipped. *)
type subject = {
  s_name : string;
  s_unique : bool;  (** unique-key semantics (affects the oracle) *)
  s_insert : tid:int -> int -> int -> bool;
  s_lookup : tid:int -> int -> int list;
  s_update : tid:int -> int -> int -> bool;
  s_remove : tid:int -> int -> int -> bool;
      (** removes the exact (key, value) pair in non-unique mode *)
  s_scan : tid:int -> int -> int -> int;
  s_batch : (tid:int -> batch_op array -> batch_res array) option;
      (** multi-op submission path, exercised when [config.batch] > 1;
          results must be in submission order *)
  s_quiesce : tid:int -> unit;
  s_start_aux : unit -> unit;
  s_stop_aux : unit -> unit;
  s_obs : Bw_obs.sink;
      (** the subject's metrics sink, if any; lets the checker cross-check
          gauges against direct probes *)
  s_epoch : Epoch.t option;
  s_verify : (unit -> unit) option;
  s_max_chains : (unit -> int * int) option;
  s_chain_bound : int option;
      (** longest delta chain tolerated at a quiesced barrier *)
  s_cache_check : (tid:int -> int -> bool) option;
      (** leaf-cache agreement oracle: [probe ~tid k] must confirm that
          any cached leaf for [k] matches a from-root descent; sampled
          over the key space at every barrier *)
  s_cache_stats : (unit -> Bwtree.leaf_cache_stats) option;
      (** leaf-cache counters, checked for protocol accounting
          (stale verifies never outrun invalidations + SMO events) *)
}

val bwtree_subject :
  ?config:Bwtree.config ->
  ?obs:Bw_obs.sink ->
  domains:int ->
  unit ->
  subject
(** A fresh integer-keyed Bw-Tree with every probe wired up.
    [config.max_threads] is raised to [domains + 1] if needed (the
    checker uses tid [domains]). *)

val of_driver : int Harness.Runner.driver -> subject
(** Wrap any harness driver (SkipList, B+Tree, ART, Masstree, …) as a
    probe-less unique-key subject. *)

type report = {
  r_ops : int;  (** index operations executed by workers *)
  r_churn_ops : int;  (** mapping-table churn operations *)
  r_phases : int;
  r_checks : int;  (** individual invariant assertions evaluated *)
  r_violations : string list;
  r_seconds : float;
  r_epoch : Epoch.stats option;  (** final epoch counters, if probed *)
}

val run : config -> subject -> report
(** Spawns the worker, churn and advancer domains, cycles the phases, and
    returns the aggregated report. A clean run has [r_violations = []]. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Crash-recovery stress}

    Drives a durable (pagestore-backed) Bw-Tree — single tree or
    range-partitioned forest — through load → quiesced checkpoint →
    more load → simulated crash, then corrupts the WAL tail (torn
    truncation or a random bit flip, chosen per shard), recovers, and
    checks:

    - the replayed WAL ops form a prefix of each (worker, shard)
      applied-write journal — the durability contract of the
      group-commit WAL;
    - the recovered contents equal the checkpoint state plus exactly
      those replayed prefixes (full keyspace sweep);
    - the recovered store accepts new writes, and a checkpoint + clean
      reopen reproduces the same contents with an empty WAL.

    Each round wipes and reuses [cc_dir]; the dir is removed at the
    end. *)

type crash_config = {
  cc_domains : int;  (** writer domains (disjoint key stripes) *)
  cc_keys_per_domain : int;
  cc_ops_per_phase : int;  (** ops per worker, per phase (two phases) *)
  cc_batch : int;  (** > 1: submit through the batch/group-commit path *)
  cc_shards : int;  (** > 1: durable forest, one WAL per shard *)
  cc_fsync : bool;  (** fsync per commit (slow; off for tests) *)
  cc_segment_bytes : int;  (** small segments force multi-segment WALs *)
  cc_rounds : int;  (** independent crash/recover cycles *)
  cc_seed : int;
  cc_dir : string;  (** scratch data dir; wiped per round, removed at end *)
  cc_verbose : bool;
}

val short_crash_config : dir:string -> crash_config
(** A dune-runtest-sized configuration (3 domains, 3 rounds). *)

type crash_report = {
  cr_rounds : int;
  cr_ops : int;  (** applied writes journaled across all rounds *)
  cr_replayed : int;  (** WAL ops replayed over all recoveries *)
  cr_torn_bytes : int;
  cr_dropped_segments : int;
  cr_checks : int;
  cr_violations : string list;
}

val run_crash_recovery : crash_config -> crash_report

val pp_crash_report : Format.formatter -> crash_report -> unit
